package soi

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark regenerates its artifact through internal/experiments —
// the same code path cmd/soibench uses to print the full-scale tables.
//
// Benchmarks default to a reduced dataset scale so `go test -bench=.`
// completes quickly; set SOI_BENCH_SCALE=1 to run at the paper's Table 1
// dataset sizes (cmd/soibench does this by default).

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/rtree"
)

func benchScale() float64 {
	if s := os.Getenv("SOI_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05
}

var benchState struct {
	once   sync.Once
	cities []*experiments.City
	err    error
}

func benchCities(b *testing.B) []*experiments.City {
	b.Helper()
	benchState.once.Do(func() {
		benchState.cities, benchState.err = experiments.LoadCities(benchScale())
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
	return benchState.cities
}

// BenchmarkTable1DatasetStats regenerates Table 1 (dataset statistics).
func BenchmarkTable1DatasetStats(b *testing.B) {
	cities := benchCities(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(cities)
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable2ShoppingRecall regenerates Table 2 (top-10 shopping
// streets in Berlin vs the two authoritative source lists).
func BenchmarkTable2ShoppingRecall(b *testing.B) {
	cities := benchCities(b)
	berlin := cities[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(berlin, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.TopK) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable3MethodScores regenerates Table 3 (normalized objective
// scores of the nine description methods across the three cities).
func BenchmarkTable3MethodScores(b *testing.B) {
	cities := benchCities(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(cities, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatal("wrong method count")
		}
	}
}

// BenchmarkTable4RelevantPOIs regenerates Table 4 (relevant POIs per |Ψ|).
func BenchmarkTable4RelevantPOIs(b *testing.B) {
	cities := benchCities(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(cities)
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFigure4SOIvsBL regenerates Figure 4: the SOI vs BL parameter
// sweeps (varying k and |Ψ|), one sub-benchmark per city.
func BenchmarkFigure4SOIvsBL(b *testing.B) {
	for _, c := range benchCities(b) {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				panels, err := experiments.Figure4(c, 1)
				if err != nil {
					b.Fatal(err)
				}
				if len(panels) != 2 {
					b.Fatal("wrong panel count")
				}
			}
		})
	}
}

// BenchmarkFigure5Tradeoff regenerates Figure 5: the relevance–diversity
// trade-off curve over λ for the three cities.
func BenchmarkFigure5Tradeoff(b *testing.B) {
	cities := benchCities(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure5(cities, experiments.Figure6DefaultK)
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 3 {
			b.Fatal("wrong curve count")
		}
	}
}

// BenchmarkFigure6DescribeSweeps regenerates Figure 6: ST_Rel+Div vs BL
// varying k, λ and w, one sub-benchmark per city.
func BenchmarkFigure6DescribeSweeps(b *testing.B) {
	for _, c := range benchCities(b) {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				panels, err := experiments.Figure6(c, 1)
				if err != nil {
					b.Fatal(err)
				}
				if len(panels) != 3 {
					b.Fatal("wrong panel count")
				}
			}
		})
	}
}

// --- micro-benchmarks of the two core queries and their baselines ---

// BenchmarkSOIQuery times a single SOI evaluation at the paper's default
// parameters (k=50, |Ψ|=3, ε=0.0005) per city.
func BenchmarkSOIQuery(b *testing.B) {
	benchIdentify(b, func(ix *core.Index, q core.Query) error {
		_, _, err := ix.SOI(q)
		return err
	})
}

// BenchmarkBaselineQuery times the exhaustive BL on the same workload.
func BenchmarkBaselineQuery(b *testing.B) {
	benchIdentify(b, func(ix *core.Index, q core.Query) error {
		_, _, err := ix.Baseline(q)
		return err
	})
}

func benchIdentify(b *testing.B, eval func(*core.Index, core.Query) error) {
	for _, c := range benchCities(b) {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			q := core.Query{
				Keywords: experiments.KeywordProgression[:3],
				K:        50,
				Epsilon:  experiments.Epsilon,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eval(c.Index, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDescribeSTRelDiv times one ST_Rel+Div summary construction at
// the Figure 6 defaults (k=20, λ=w=0.5) per city.
func BenchmarkDescribeSTRelDiv(b *testing.B) {
	benchDescribe(b, func(ctx *diversify.Context, p diversify.Params) error {
		_, err := ctx.STRelDiv(p)
		return err
	})
}

// BenchmarkDescribeBaseline times the exhaustive greedy BL on the same
// workload.
func BenchmarkDescribeBaseline(b *testing.B) {
	benchDescribe(b, func(ctx *diversify.Context, p diversify.Params) error {
		_, err := ctx.Baseline(p)
		return err
	})
}

func benchDescribe(b *testing.B, eval func(*diversify.Context, diversify.Params) error) {
	for _, c := range benchCities(b) {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			ctx, err := experiments.DescriptionContext(c)
			if err != nil {
				b.Fatal(err)
			}
			p := diversify.Params{
				K:      experiments.Figure6DefaultK,
				Lambda: 0.5,
				W:      0.5,
				Rho:    experiments.Rho,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eval(ctx, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStrategy times the two SOI access strategies (the
// design-choice ablation of DESIGN.md) on the Berlin-like city.
func BenchmarkAblationStrategy(b *testing.B) {
	cities := benchCities(b)
	berlin := cities[1]
	q := core.Query{
		Keywords: experiments.KeywordProgression[:3],
		K:        50,
		Epsilon:  experiments.Epsilon,
	}
	for _, strat := range []core.Strategy{core.CostAware, core.RoundRobin} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := berlin.Index.SOIWithStrategy(q, strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAggregate times the street aggregation modes.
func BenchmarkAblationAggregate(b *testing.B) {
	cities := benchCities(b)
	berlin := cities[1]
	q := core.Query{Keywords: []string{"shop"}, K: 10, Epsilon: experiments.Epsilon}
	for _, agg := range []core.Aggregate{core.MaxSegment, core.MeanSegment, core.TotalDensity} {
		agg := agg
		b.Run(agg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := berlin.Index.BaselineAggregate(q, agg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDescribeVisual times the visual-feature greedy extension
// against the plain greedy on the same street.
func BenchmarkDescribeVisual(b *testing.B) {
	cities := benchCities(b)
	ctx, err := experiments.DescriptionContext(cities[1])
	if err != nil {
		b.Fatal(err)
	}
	if err := ctx.SetFeatures(diversify.HashFeatures(ctx.Photos(), 8)); err != nil {
		b.Fatal(err)
	}
	p := diversify.VisualParams{
		Params: diversify.Params{
			K: experiments.Figure6DefaultK, Lambda: 0.5, W: 0.5, Rho: experiments.Rho,
		},
		VisualWeight: 0.3,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.GreedyVisual(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpatialSubstrates compares the grid (the paper's index) with
// the STR R-tree alternative on the ε-near-segment predicate of Def. 1,
// over the Berlin POI layout.
func BenchmarkSpatialSubstrates(b *testing.B) {
	cities := benchCities(b)
	berlin := cities[1]
	all := berlin.Dataset.POIs.All()
	pts := make([]geo.Point, len(all))
	for i := range all {
		pts[i] = all[i].Loc
	}
	segs := berlin.Dataset.Network.Segments()
	probe := make([]geo.Segment, 0, 200)
	for i := 0; i < len(segs) && len(probe) < 200; i += len(segs)/200 + 1 {
		probe = append(probe, segs[i].Geom)
	}

	b.Run("grid", func(b *testing.B) {
		g := berlin.Index.Grid()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var hits int
			for _, seg := range probe {
				epsSq := experiments.Epsilon * experiments.Epsilon
				for _, cid := range g.CellsNearSegment(seg, experiments.Epsilon) {
					for _, m := range g.CellAt(cid).Members {
						if seg.DistToPointSq(pts[m]) <= epsSq {
							hits++
						}
					}
				}
			}
			if hits == 0 {
				b.Fatal("no hits")
			}
		}
	})
	b.Run("rtree", func(b *testing.B) {
		tr, err := rtree.Build(pts, rtree.Config{})
		if err != nil {
			b.Fatal(err)
		}
		var dst []uint32
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var hits int
			for _, seg := range probe {
				dst = tr.WithinSegment(dst[:0], seg, experiments.Epsilon)
				hits += len(dst)
			}
			if hits == 0 {
				b.Fatal("no hits")
			}
		}
	})
}
