package soi

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/geo"
	"repro/internal/ingest"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/stats"
	"repro/internal/vocab"
)

// LiveConfig extends Config with the write-path knobs of a live engine.
type LiveConfig struct {
	Config
	// BatchSize, when positive, auto-publishes a new index epoch once
	// the pending delta log reaches this many POIs; 0 means epochs are
	// published only by explicit Publish calls.
	BatchSize int
	// CompactAfter, when positive, auto-compacts the delta log into a
	// new base after this many publishes; 0 means compaction runs only
	// by explicit Compact calls.
	CompactAfter int
	// SnapshotPath, when non-empty, makes every compaction persist the
	// folded base as a .soi snapshot at this path.
	SnapshotPath string
}

// ErrNotLive is returned by the write-path methods of an engine that was
// not built with NewLiveEngine.
var ErrNotLive = errors.New("soi: engine has no ingest path (built without NewLiveEngine)")

// NewLiveEngine builds an engine whose POI corpus accepts live writes:
// POIs stream in through AddPOIs, are folded into immutable index epochs
// by Publish (or automatically per LiveConfig.BatchSize), and queries
// always evaluate against the epoch current at their start — readers
// never lock, and the result caches are keyed by epoch so a publish can
// never serve stale answers. The street network and photo corpus remain
// fixed for the engine's lifetime; only POIs churn.
//
// Call Close when done: it stops the background publisher/compactor.
func NewLiveEngine(streets []StreetInput, pois []POIInput, photos []PhotoInput, cfg LiveConfig) (*Engine, error) {
	nb := network.NewBuilder()
	for _, s := range streets {
		pts := make([]geo.Point, len(s.Polyline))
		for i, p := range s.Polyline {
			pts[i] = geo.Pt(p.X, p.Y)
		}
		nb.AddStreet(s.Name, pts)
	}
	net, err := nb.Build()
	if err != nil {
		return nil, fmt.Errorf("soi: building network: %w", err)
	}
	// Photos keep their own dictionary: DescribeStreet resolves tags
	// against it, while each POI epoch interns a fresh dictionary of its
	// own (keyword ids never cross the epoch boundary).
	dict := vocab.NewDictionary()
	phc := photoBuilderFromInputs(photos, dict)

	cell := cfg.GridCellSize
	if cell == 0 {
		cell = DefaultCellSize
	}
	rec := stats.NewRecorder()
	base := make([]ingest.Delta, len(pois))
	for i, p := range pois {
		base[i] = ingest.Delta{Loc: geo.Pt(p.X, p.Y), Keywords: p.Keywords, Weight: p.Weight}
	}
	var phSpecs []ingest.PhotoSpec
	if cfg.SnapshotPath != "" {
		phSpecs = make([]ingest.PhotoSpec, len(photos))
		for i, p := range photos {
			phSpecs[i] = ingest.PhotoSpec{Loc: geo.Pt(p.X, p.Y), Tags: p.Tags}
		}
	}
	ing, err := ingest.New(net, base, ingest.Config{
		CellSize:     cell,
		BatchSize:    cfg.BatchSize,
		CompactAfter: cfg.CompactAfter,
		SnapshotPath: cfg.SnapshotPath,
		Photos:       phSpecs,
		Recorder:     rec,
	})
	if err != nil {
		return nil, err
	}
	exec := engine.New(nil, engine.Config{
		Workers:      cfg.Workers,
		CacheSize:    cfg.CacheSize,
		QueueDepth:   cfg.QueueDepth,
		MaxQueueWait: cfg.MaxQueueWait,
		QueryTimeout: cfg.QueryTimeout,
		Recorder:     rec,
		Source:       ing,
	})
	return &Engine{net: net, photos: phc, dict: dict, exec: exec, rec: rec, ing: ing, trajCfg: cfg.Config}, nil
}

// NewLiveEngineFromCorpora is NewLiveEngine over already-built internal
// corpora (datagen/dataio datasets): the POI corpus seeds the ingest
// base and its keywords are re-interned per epoch, so the input corpus
// stays untouched.
func NewLiveEngineFromCorpora(net *network.Network, pois *poi.Corpus, photos *photo.Corpus, cfg LiveConfig) (*Engine, error) {
	cell := cfg.GridCellSize
	if cell == 0 {
		cell = DefaultCellSize
	}
	rec := stats.NewRecorder()
	dict := pois.Dict()
	base := make([]ingest.Delta, pois.Len())
	for i := range base {
		p := pois.Get(poi.ID(i))
		base[i] = ingest.Delta{Loc: p.Loc, Keywords: dict.Names(p.Keywords), Weight: p.Weight}
	}
	var phSpecs []ingest.PhotoSpec
	if cfg.SnapshotPath != "" {
		phDict := photos.Dict()
		phSpecs = make([]ingest.PhotoSpec, photos.Len())
		for i := range phSpecs {
			ph := photos.Get(photo.ID(i))
			phSpecs[i] = ingest.PhotoSpec{Loc: ph.Loc, Tags: phDict.Names(ph.Tags)}
		}
	}
	ing, err := ingest.New(net, base, ingest.Config{
		CellSize:     cell,
		BatchSize:    cfg.BatchSize,
		CompactAfter: cfg.CompactAfter,
		SnapshotPath: cfg.SnapshotPath,
		Photos:       phSpecs,
		Recorder:     rec,
	})
	if err != nil {
		return nil, err
	}
	exec := engine.New(nil, engine.Config{
		Workers:      cfg.Workers,
		CacheSize:    cfg.CacheSize,
		QueueDepth:   cfg.QueueDepth,
		MaxQueueWait: cfg.MaxQueueWait,
		QueryTimeout: cfg.QueryTimeout,
		Recorder:     rec,
		Source:       ing,
	})
	return &Engine{net: net, photos: photos, dict: photos.Dict(), exec: exec, rec: rec, ing: ing, trajCfg: cfg.Config}, nil
}

// Live reports whether the engine accepts POI writes.
func (e *Engine) Live() bool { return e.ing != nil }

// AddPOIs appends POIs to the live engine's delta log and returns the
// pending (not yet published) count. The call is a slice append under a
// mutex — it never builds an index and is never blocked by one.
func (e *Engine) AddPOIs(pois []POIInput) (pending int, err error) {
	if e.ing == nil {
		return 0, ErrNotLive
	}
	ds := make([]ingest.Delta, len(pois))
	for i, p := range pois {
		ds[i] = ingest.Delta{Loc: geo.Pt(p.X, p.Y), Keywords: p.Keywords, Weight: p.Weight}
	}
	return e.ing.AddBatch(ds), nil
}

// Publish folds the pending deltas into a fresh index epoch and installs
// it; queries started after Publish returns see the new POIs. It returns
// the installed epoch's sequence number and how many deltas were folded
// (0 when nothing was pending).
func (e *Engine) Publish() (epoch uint64, folded int, err error) {
	if e.ing == nil {
		return 0, 0, ErrNotLive
	}
	return e.ing.Publish()
}

// Compact folds the published deltas into the base corpus, installs the
// compacted epoch (bit-identical answers to the epoch it replaces) and
// retires the old one. With LiveConfig.SnapshotPath set the folded base
// is also persisted as a .soi snapshot.
func (e *Engine) Compact() (epoch uint64, folded int, err error) {
	if e.ing == nil {
		return 0, 0, ErrNotLive
	}
	return e.ing.Compact()
}

// Epoch returns the sequence number of the currently serving index epoch
// (0 for engines without an ingest path; live epochs start at 1).
func (e *Engine) Epoch() uint64 {
	if e.ing == nil {
		return 0
	}
	return e.ing.Current().Seq()
}

// IngestCounts returns the live corpus accounting: POIs in the compacted
// base, published deltas awaiting compaction, and pending deltas
// awaiting publish. Zeroes for non-live engines.
func (e *Engine) IngestCounts() (base, published, pending int) {
	if e.ing == nil {
		return 0, 0, 0
	}
	return e.ing.Counts()
}

// IngestErr returns the last background publish/compaction failure of a
// live engine, nil otherwise.
func (e *Engine) IngestErr() error {
	if e.ing == nil {
		return nil
	}
	return e.ing.Err()
}
