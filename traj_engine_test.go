package soi_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	soi "repro"
	"repro/internal/faults"
)

// trajEngine builds a 3×3 street grid (spacing 0.001) with shop and cafe
// POIs clustered on the middle horizontal street.
func trajEngine(t *testing.T, cfg soi.Config) *soi.Engine {
	t.Helper()
	var streets []soi.StreetInput
	for i := 0; i < 3; i++ {
		y := float64(i) * 0.001
		streets = append(streets, soi.StreetInput{
			Name:     "H" + string(rune('0'+i)),
			Polyline: []soi.Point{{X: 0, Y: y}, {X: 0.001, Y: y}, {X: 0.002, Y: y}},
		})
	}
	for j := 0; j < 3; j++ {
		x := float64(j) * 0.001
		streets = append(streets, soi.StreetInput{
			Name:     "V" + string(rune('0'+j)),
			Polyline: []soi.Point{{X: x, Y: 0}, {X: x, Y: 0.001}, {X: x, Y: 0.002}},
		})
	}
	var pois []soi.POIInput
	for k := 0; k < 8; k++ {
		x := 0.0002 + float64(k)*0.0002
		pois = append(pois,
			soi.POIInput{X: x, Y: 0.001, Keywords: []string{"shop"}},
			soi.POIInput{X: x, Y: 0.00105, Keywords: []string{"cafe"}},
		)
	}
	pois = append(pois, soi.POIInput{X: 0.0005, Y: 0, Keywords: []string{"shop"}})
	photos := []soi.PhotoInput{{X: 0.001, Y: 0.001, Tags: []string{"shop"}}}
	e, err := soi.NewEngine(streets, pois, photos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineTopRoutes(t *testing.T) {
	e := trajEngine(t, soi.Config{})
	routes, err := e.TopRoutes(soi.RouteQuery{
		Src: soi.Point{X: 0, Y: 0}, Dst: soi.Point{X: 0.002, Y: 0.002},
		Keywords: []string{"shop"}, K: 3, Epsilon: 0.0005, Budget: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 {
		t.Fatal("no routes")
	}
	for i, r := range routes {
		if len(r.Polyline) < 2 || len(r.Streets) == 0 {
			t.Fatalf("route %d missing geometry: %+v", i, r)
		}
		if r.Polyline[0] != (soi.Point{X: 0, Y: 0}) {
			t.Fatalf("route %d starts at %+v", i, r.Polyline[0])
		}
		if last := r.Polyline[len(r.Polyline)-1]; last != (soi.Point{X: 0.002, Y: 0.002}) {
			t.Fatalf("route %d ends at %+v", i, last)
		}
	}
	// The grid's interest lives on H1: the best route should walk it.
	found := false
	for _, name := range routes[0].Streets {
		if name == "H1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("best route %v skips the interesting street H1", routes[0].Streets)
	}
	snap := e.StatsSnapshot()
	if snap.Traj.RouteQueries == 0 || snap.Traj.Expansions == 0 {
		t.Fatalf("route counters not recorded: %+v", snap.Traj)
	}
}

// Adding keywords can only add interest to every segment, so the best
// route's score is monotone in the keyword set — exactly, not modulo
// rounding, because each segment interest grows pointwise.
func TestEngineRoutesKeywordSupersetMonotonicity(t *testing.T) {
	e := trajEngine(t, soi.Config{})
	q := soi.RouteQuery{
		Src: soi.Point{X: 0, Y: 0}, Dst: soi.Point{X: 0.002, Y: 0.002},
		Keywords: []string{"shop"}, K: 1, Epsilon: 0.0005, Budget: 0.02,
	}
	base, err := e.TopRoutes(q)
	if err != nil || len(base) == 0 {
		t.Fatalf("base query: routes=%d err=%v", len(base), err)
	}
	q.Keywords = []string{"shop", "cafe"}
	super, err := e.TopRoutes(q)
	if err != nil || len(super) == 0 {
		t.Fatalf("superset query: routes=%d err=%v", len(super), err)
	}
	if super[0].Score < base[0].Score {
		t.Fatalf("superset keywords lowered top score: %v -> %v", base[0].Score, super[0].Score)
	}
}

func TestEngineTrajectorySOI(t *testing.T) {
	e := trajEngine(t, soi.Config{})
	res, err := e.TrajectorySOI(soi.TrajectoryQuery{
		Traces: [][]soi.Point{{
			{X: 0.0001, Y: 0.00101}, {X: 0.001, Y: 0.00099}, {X: 0.0019, Y: 0.00101},
		}},
		Keywords: []string{"shop"}, K: 5, Epsilon: 0.0005, Radius: 0.0003,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Name != "H1" {
		t.Fatalf("corridor ranking = %+v, want H1 first", res)
	}
	if res[0].Coverage <= 0 || res[0].Coverage > 1 {
		t.Fatalf("coverage = %v", res[0].Coverage)
	}
	snap := e.StatsSnapshot()
	if snap.Traj.TrajQueries == 0 || snap.Traj.TracePoints != 3 || snap.Traj.MatchedPoints == 0 {
		t.Fatalf("trajectory counters not recorded: %+v", snap.Traj)
	}

	if _, err := e.TrajectorySOI(soi.TrajectoryQuery{Keywords: []string{"shop"}, K: 3}); !errors.Is(err, soi.ErrNoTraces) {
		t.Fatalf("err = %v, want ErrNoTraces", err)
	}
}

// Regression: a request-supplied radius orders of magnitude below the
// network extent must be answered (with few or no matches), not wedge a
// worker building an unbounded matching grid; a NaN radius is rejected.
// Repeats of the default-radius query hit the cached matcher and must
// return identical results.
func TestEngineTrajectorySOIRadiusEdgeCases(t *testing.T) {
	e := trajEngine(t, soi.Config{})
	q := soi.TrajectoryQuery{
		Traces:   [][]soi.Point{{{X: 0.0001, Y: 0.00101}, {X: 0.001, Y: 0.00099}}},
		Keywords: []string{"shop"}, K: 5, Epsilon: 0.0005,
	}

	tiny := q
	tiny.Radius = 1e-15
	if _, err := e.TrajectorySOI(tiny); err != nil {
		t.Fatalf("tiny radius: %v", err)
	}

	nan := q
	nan.Radius = math.NaN()
	if _, err := e.TrajectorySOI(nan); err == nil {
		t.Fatal("NaN radius accepted")
	}

	first, err := e.TrajectorySOI(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.TrajectorySOI(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("cached-matcher repeat changed answer size: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached-matcher repeat diverged at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestEngineTrajShedsUnderLoad(t *testing.T) {
	defer faults.Reset()
	e := trajEngine(t, soi.Config{Workers: 1, QueueDepth: 1})
	q := soi.RouteQuery{
		Src: soi.Point{X: 0, Y: 0}, Dst: soi.Point{X: 0.002, Y: 0.002},
		Keywords: []string{"shop"}, K: 1, Epsilon: 0.0005, Budget: 0.02,
	}

	block := make(chan struct{})
	faults.Activate("traj.search", faults.Fault{Block: block})

	// Query 1 takes the only worker slot and parks on the fault site.
	done1 := make(chan error, 1)
	go func() { _, err := e.TopRoutes(q); done1 <- err }()
	waitFor(t, func() bool { return faults.Visits("traj.search") >= 1 })

	// Query 2 fills the one queue slot.
	done2 := make(chan error, 1)
	go func() { _, err := e.TopRoutes(q); done2 <- err }()
	time.Sleep(50 * time.Millisecond)

	// Query 3 finds the queue full and is shed immediately.
	if _, err := e.TopRoutes(q); !errors.Is(err, soi.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}

	close(block)
	if err := <-done1; err != nil {
		t.Fatalf("query 1: %v", err)
	}
	if err := <-done2; err != nil {
		t.Fatalf("query 2: %v", err)
	}
	if shed := e.StatsSnapshot().Traj.Shed; shed == 0 {
		t.Fatal("shed counter not recorded")
	}
}

func TestEngineTrajQueryTimeout(t *testing.T) {
	defer faults.Reset()
	e := trajEngine(t, soi.Config{QueryTimeout: 20 * time.Millisecond})
	faults.Activate("traj.search", faults.Fault{Delay: 30 * time.Millisecond})
	_, err := e.TopRoutes(soi.RouteQuery{
		Src: soi.Point{X: 0, Y: 0}, Dst: soi.Point{X: 0.002, Y: 0.002},
		Keywords: []string{"shop"}, K: 1, Epsilon: 0.0005, Budget: 0.02,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if n := e.StatsSnapshot().Traj.DeadlineExceeded; n == 0 {
		t.Fatal("deadline counter not recorded")
	}
}

func TestEngineTrajPanicIsolation(t *testing.T) {
	defer faults.Reset()
	e := trajEngine(t, soi.Config{})
	faults.Activate("traj.search", faults.Fault{Panic: true, PanicValue: "boom", Times: 1})
	_, err := e.TopRoutes(soi.RouteQuery{
		Src: soi.Point{X: 0, Y: 0}, Dst: soi.Point{X: 0.002, Y: 0.002},
		Keywords: []string{"shop"}, K: 1, Epsilon: 0.0005, Budget: 0.02,
	})
	var pe *soi.PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("err = %v, want PanicError{boom}", err)
	}
	if n := e.StatsSnapshot().Traj.PanicsRecovered; n != 1 {
		t.Fatalf("panics recovered = %d, want 1", n)
	}
	// The engine still serves after recovering.
	faults.Deactivate("traj.search")
	if _, err := e.TopRoutes(soi.RouteQuery{
		Src: soi.Point{X: 0, Y: 0}, Dst: soi.Point{X: 0.002, Y: 0.002},
		Keywords: []string{"shop"}, K: 1, Epsilon: 0.0005, Budget: 0.02,
	}); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
