package soi

import (
	"errors"
	"testing"
)

// fixtureEngine builds a small end-to-end scenario through the public API.
func fixtureEngine(t *testing.T) *Engine {
	t.Helper()
	streets := []StreetInput{
		{Name: "High St", Polyline: []Point{{0, 0}, {0.001, 0}, {0.002, 0}}},
		{Name: "Low St", Polyline: []Point{{0, 0.002}, {0.001, 0.002}}},
		{Name: "Quiet St", Polyline: []Point{{0, 0.005}, {0.001, 0.005}}},
	}
	var pois []POIInput
	// Dense shops along High St.
	for i := 0; i < 8; i++ {
		pois = append(pois, POIInput{
			X: 0.0002 * float64(i), Y: 0.0001,
			Keywords: []string{"shop"},
		})
	}
	// One shop near Low St.
	pois = append(pois, POIInput{X: 0.0005, Y: 0.0021, Keywords: []string{"shop"}})
	// A museum near Quiet St.
	pois = append(pois, POIInput{X: 0.0005, Y: 0.0051, Keywords: []string{"museum"}})

	var photos []PhotoInput
	for i := 0; i < 12; i++ {
		photos = append(photos, PhotoInput{
			X: 0.0002 * float64(i%9), Y: -0.0001,
			Tags: []string{"high", "shopfront"},
		})
	}
	photos = append(photos,
		PhotoInput{X: 0.0018, Y: 0.0001, Tags: []string{"high", "parade", "crowd"}},
		PhotoInput{X: 0.0011, Y: 0.00005, Tags: []string{"construction"}},
	)
	eng, err := NewEngine(streets, pois, photos, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineCounts(t *testing.T) {
	eng := fixtureEngine(t)
	if eng.NumStreets() != 3 {
		t.Errorf("NumStreets = %d", eng.NumStreets())
	}
	if eng.NumPOIs() != 10 {
		t.Errorf("NumPOIs = %d", eng.NumPOIs())
	}
	if eng.NumPhotos() != 14 {
		t.Errorf("NumPhotos = %d", eng.NumPhotos())
	}
}

func TestTopStreets(t *testing.T) {
	eng := fixtureEngine(t)
	res, err := eng.TopStreets(Query{Keywords: []string{"shop"}, K: 3, Epsilon: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %+v, want High St and Low St only", res)
	}
	if res[0].Name != "High St" || res[1].Name != "Low St" {
		t.Fatalf("ranking = %q, %q", res[0].Name, res[1].Name)
	}
	if res[0].Mass != 8 {
		t.Errorf("High St mass = %v", res[0].Mass)
	}
	if res[0].Interest <= res[1].Interest {
		t.Error("interest not descending")
	}
}

func TestTopStreetsErrors(t *testing.T) {
	eng := fixtureEngine(t)
	if _, err := eng.TopStreets(Query{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDescribeStreet(t *testing.T) {
	eng := fixtureEngine(t)
	sum, err := eng.DescribeStreet("High St", SummaryParams{K: 3, Epsilon: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Photos) != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.CandidateCount != 14 {
		t.Errorf("CandidateCount = %d", sum.CandidateCount)
	}
	if sum.Objective <= 0 {
		t.Errorf("Objective = %v", sum.Objective)
	}
	// A balanced summary should not be 3 near-duplicates: at least two
	// distinct tag signatures among the selected photos.
	sig := map[string]bool{}
	for _, p := range sum.Photos {
		key := ""
		for _, tag := range p.Tags {
			key += tag + "|"
		}
		sig[key] = true
	}
	if len(sig) < 2 {
		t.Errorf("summary photos all share one tag signature: %+v", sum.Photos)
	}
}

func TestDescribeStreetErrors(t *testing.T) {
	eng := fixtureEngine(t)
	if _, err := eng.DescribeStreet("Nope St", SummaryParams{K: 3}); !errors.Is(err, ErrUnknownStreet) {
		t.Fatalf("err = %v", err)
	}
	if _, err := eng.DescribeStreet("Quiet St", SummaryParams{K: 3, Epsilon: 0.0001}); !errors.Is(err, ErrNoPhotos) {
		t.Fatalf("err = %v", err)
	}
	if _, err := eng.DescribeStreet("High St", SummaryParams{K: -1}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSummaryParamsDefaults(t *testing.T) {
	p := SummaryParams{K: 3}.withDefaults()
	if p.Lambda != 0.5 || p.W != 0.5 || p.Rho != 0.0001 || p.Epsilon != DefaultCellSize {
		t.Fatalf("defaults = %+v", p)
	}
	// Explicit values survive.
	q := SummaryParams{K: 3, Lambda: 0.25, W: 0.75, Rho: 0.01, Epsilon: 0.002}.withDefaults()
	if q.Lambda != 0.25 || q.W != 0.75 || q.Rho != 0.01 || q.Epsilon != 0.002 {
		t.Fatalf("explicit params overridden: %+v", q)
	}
}

func TestNewEngineErrors(t *testing.T) {
	_, err := NewEngine([]StreetInput{{Name: "bad", Polyline: []Point{{0, 0}}}}, nil, nil, Config{})
	if err == nil {
		t.Fatal("expected error for 1-point polyline")
	}
}

func TestWarmIdempotent(t *testing.T) {
	eng := fixtureEngine(t)
	eng.Warm(0.0005)
	eng.Warm(0.0005)
	res, err := eng.TopStreets(Query{Keywords: []string{"shop"}, K: 1, Epsilon: 0.0005})
	if err != nil || len(res) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestRecommendTourFacade(t *testing.T) {
	eng := fixtureEngine(t)
	tour, err := eng.RecommendTour(Query{Keywords: []string{"shop"}, K: 3, Epsilon: 0.0005}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Stops) == 0 {
		t.Fatal("empty tour")
	}
	if tour.Stops[0].Street != "High St" {
		t.Fatalf("tour starts at %q", tour.Stops[0].Street)
	}
	if tour.Stops[0].Walk != 0 {
		t.Fatalf("first stop walk = %v", tour.Stops[0].Walk)
	}
	if tour.Interest <= 0 || tour.Length <= 0 {
		t.Fatalf("tour totals: %+v", tour)
	}
}

func TestRecommendTourErrors(t *testing.T) {
	eng := fixtureEngine(t)
	if _, err := eng.RecommendTour(Query{}, 1); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := eng.RecommendTour(Query{Keywords: []string{"unicorn"}, K: 2, Epsilon: 0.0005}, 1); err == nil {
		t.Fatal("expected no-match error")
	}
	if _, err := eng.RecommendTour(Query{Keywords: []string{"shop"}, K: 2, Epsilon: 0.0005}, 0); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestDescribeStreetConsistentWithScan(t *testing.T) {
	// The facade's grid-backed photo extraction must produce the same
	// candidate count on repeated calls (index is built once).
	eng := fixtureEngine(t)
	a, err := eng.DescribeStreet("High St", SummaryParams{K: 2, Epsilon: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.DescribeStreet("High St", SummaryParams{K: 2, Epsilon: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if a.CandidateCount != b.CandidateCount || len(a.Photos) != len(b.Photos) {
		t.Fatalf("inconsistent summaries: %+v vs %+v", a, b)
	}
	for i := range a.Photos {
		if a.Photos[i].X != b.Photos[i].X || a.Photos[i].Y != b.Photos[i].Y {
			t.Fatal("summary photos differ across calls")
		}
	}
}
