package soi

import (
	"math"
	"path/filepath"
	"testing"
)

// TestEngineSnapshotRoundTrip writes the fixture engine to a snapshot,
// reopens it memory-mapped and verifies the reloaded engine answers
// every query surface bit-identically.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	eng := fixtureEngine(t)
	path := filepath.Join(t.TempDir(), "fixture.soi")
	if err := eng.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewEngineFromSnapshot(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := loaded.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if loaded.NumStreets() != eng.NumStreets() || loaded.NumPOIs() != eng.NumPOIs() || loaded.NumPhotos() != eng.NumPhotos() {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d",
			loaded.NumStreets(), loaded.NumPOIs(), loaded.NumPhotos(),
			eng.NumStreets(), eng.NumPOIs(), eng.NumPhotos())
	}

	for _, q := range []Query{
		{Keywords: []string{"shop"}, K: 3, Epsilon: 0.0005},
		{Keywords: []string{"shop", "museum"}, K: 2, Epsilon: 0.001},
	} {
		want, err := eng.TopStreets(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.TopStreets(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %+v: %d results, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].Name != want[i].Name ||
				math.Float64bits(got[i].Interest) != math.Float64bits(want[i].Interest) ||
				math.Float64bits(got[i].Mass) != math.Float64bits(want[i].Mass) {
				t.Fatalf("query %+v rank %d: %+v, want %+v", q, i+1, got[i], want[i])
			}
		}
	}

	sum, err := loaded.DescribeStreet("High St", SummaryParams{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.DescribeStreet("High St", SummaryParams{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Objective != ref.Objective || len(sum.Photos) != len(ref.Photos) {
		t.Fatalf("summary differs: %+v vs %+v", sum, ref)
	}
}

// TestEngineSnapshotErrors covers the failure surface of the snapshot
// constructors.
func TestEngineSnapshotErrors(t *testing.T) {
	if _, err := NewEngineFromSnapshot(filepath.Join(t.TempDir(), "absent.soi"), Config{}); err == nil {
		t.Fatal("missing snapshot accepted")
	}
	eng := fixtureEngine(t)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close on a non-snapshot engine must be a no-op, got %v", err)
	}
}
