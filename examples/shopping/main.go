// Shopping reproduces the paper's Section 5.1.1 scenario: identify the
// top shopping streets of a Berlin-like city and compare them against two
// "authoritative" street lists (the paper's TripAdvisor and GlobalBlue
// sources, planted by the data generator). It also prints the top-20
// listing that stands in for the Figure 1(b) map.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.25, "dataset volume scale factor (1 = Table 1 sizes)")
	flag.Parse()

	fmt.Println("Generating the Berlin-like city...")
	ds, err := datagen.Generate(datagen.Scale(datagen.Berlin(), *scale))
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Network.Stats()
	fmt.Printf("  %d streets, %d segments, %d POIs\n\n", st.NumStreets, st.NumSegments, ds.POIs.Len())

	ix, err := core.NewIndex(ds.Network, ds.POIs, core.IndexConfig{CellSize: 0.0005})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's query: Ψ={"shop"}, k=10, ε=0.0005° ≈ 55 m.
	res, stats, err := ix.SOI(core.Query{Keywords: []string{"shop"}, K: 20, Epsilon: 0.0005})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Top-20 Streets of Interest for \"shop\" (evaluated in %v, saw %d/%d segments):\n",
		stats.Total(), stats.SegmentsSeen, stats.TotalSegments)
	top10 := map[string]bool{}
	for i, r := range res {
		marker := ""
		if inList(r.Name, ds.Truth.SourceLists[0]) || inList(r.Name, ds.Truth.SourceLists[1]) {
			marker = "   <- in an authoritative source list"
		}
		fmt.Printf("%3d. %-32s interest %12.0f%s\n", i+1, r.Name, r.Interest, marker)
		if i < 10 {
			top10[r.Name] = true
		}
	}

	fmt.Println("\nRecall@10 against the two authoritative sources:")
	for i, src := range ds.Truth.SourceLists {
		hits := 0
		for _, s := range src {
			if top10[s] {
				hits++
			}
		}
		fmt.Printf("  Source #%d: %d/%d = %.2f\n", i+1, hits, len(src), float64(hits)/float64(len(src)))
	}
	fmt.Println("\nStreets the generator planted as shopping sites, by density rank:")
	for i, s := range ds.Truth.ShoppingStreets {
		fmt.Printf("  %2d. %s\n", i+1, s)
	}
}

func inList(s string, list []string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
