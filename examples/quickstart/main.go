// Quickstart: build an Engine from plain inputs, identify the most
// interesting street for a keyword, and describe it with a diversified
// photo summary — the two queries of the paper in ~60 lines.
package main

import (
	"fmt"
	"log"
	"strings"

	soi "repro"
)

func main() {
	// A toy town: two streets, a handful of shops, a few photos. All
	// coordinates are planar degrees; 0.0005 ≈ 55 m.
	streets := []soi.StreetInput{
		{Name: "Market Street", Polyline: []soi.Point{{X: 0, Y: 0}, {X: 0.002, Y: 0}, {X: 0.004, Y: 0}}},
		{Name: "Church Lane", Polyline: []soi.Point{{X: 0, Y: 0.003}, {X: 0.002, Y: 0.003}}},
	}
	pois := []soi.POIInput{
		{X: 0.0005, Y: 0.0001, Keywords: []string{"shop", "bakery"}},
		{X: 0.0010, Y: -0.0002, Keywords: []string{"shop", "books"}},
		{X: 0.0015, Y: 0.0002, Keywords: []string{"shop", "clothes"}},
		{X: 0.0021, Y: 0.0001, Keywords: []string{"shop"}},
		{X: 0.0008, Y: 0.0031, Keywords: []string{"church"}},
		{X: 0.0012, Y: 0.0029, Keywords: []string{"shop"}},
	}
	photos := []soi.PhotoInput{
		{X: 0.0006, Y: 0.0001, Tags: []string{"market", "bakery", "morning"}},
		{X: 0.0007, Y: 0.0001, Tags: []string{"market", "bakery", "morning"}},
		{X: 0.0011, Y: -0.0001, Tags: []string{"market", "books"}},
		{X: 0.0030, Y: 0.0002, Tags: []string{"market", "festival", "crowd"}},
		{X: 0.0016, Y: 0.0001, Tags: []string{"clothes", "window"}},
	}

	eng, err := soi.NewEngine(streets, pois, photos, soi.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Task 1 — identify: the k-SOI query (Problem 1 of the paper).
	top, err := eng.TopStreets(soi.Query{Keywords: []string{"shop"}, K: 2, Epsilon: 0.0005})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Streets of Interest for \"shop\":")
	for i, s := range top {
		fmt.Printf("  %d. %-15s interest %.0f (mass %.0f)\n", i+1, s.Name, s.Interest, s.Mass)
	}

	// Task 2 — describe: a diversified photo summary (Problem 2).
	sum, err := eng.DescribeStreet(top[0].Name, soi.SummaryParams{K: 3, Epsilon: 0.0005})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d-photo summary of %s (from %d candidates, F=%.3f):\n",
		len(sum.Photos), sum.Street, sum.CandidateCount, sum.Objective)
	for i, p := range sum.Photos {
		fmt.Printf("  %d. (%.4f, %.4f) %s\n", i+1, p.X, p.Y, strings.Join(p.Tags, ", "))
	}
}
