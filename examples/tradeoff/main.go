// Tradeoff reproduces the paper's Figure 5 analysis: sweep the λ
// parameter of the diversification objective on a Vienna-like city and
// report how the summary's relevance falls as its diversity rises,
// showing why λ = 0.5 sits at the knee of the curve.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/diversify"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.5, "dataset volume scale factor")
	photosK := flag.Int("photos", 20, "summary size (the paper's Figure 5 default)")
	flag.Parse()

	fmt.Println("Generating the Vienna-like city...")
	ds, err := datagen.Generate(datagen.Scale(datagen.Vienna(), *scale))
	if err != nil {
		log.Fatal(err)
	}
	streetName := ds.Truth.PhotoStreet
	st := ds.Network.StreetByName(streetName)
	if st == nil {
		log.Fatalf("photo street %q missing", streetName)
	}
	rs, maxD := diversify.ExtractStreetPhotos(ds.Network, st.ID, ds.Photos, 0.0005)
	ctx, err := diversify.NewContext(rs, diversify.FreqFromPhotos(ds.Dict, rs), maxD, 0.0001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  summarizing %q (%d candidate photos, k=%d, w=0.5)\n\n", streetName, len(rs), *photosK)

	fmt.Printf("%8s %12s %12s   %s\n", "lambda", "relevance", "diversity", "(bar: diversity gained)")
	for _, lambda := range []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1} {
		res, err := ctx.STRelDiv(diversify.Params{K: *photosK, Lambda: lambda, W: 0.5, Rho: 0.0001})
		if err != nil {
			log.Fatal(err)
		}
		rel := ctx.RelScore(res.Selected, 0.5)
		div := ctx.DivScore(res.Selected, 0.5)
		bar := ""
		for i := 0; i < int(div*40); i++ {
			bar += "#"
		}
		fmt.Printf("%8.3f %12.4f %12.4f   %s\n", lambda, rel, div, bar)
	}
	fmt.Println("\nAs in the paper, diversity rises quickly at small λ while relevance")
	fmt.Println("is still high; past the λ≈0.5 knee each extra unit of diversity costs")
	fmt.Println("progressively more relevance, motivating the default λ = 0.5.")
}
