// Photosummary reproduces the paper's Figure 3 comparison: summarize the
// photo street of a London-like city under three criteria — S_Rel (pure
// spatial relevance), T_Rel (pure textual relevance) and ST_Rel+Div (the
// paper's method) — and show how the first two collapse onto the photo
// hotspot and the tag burst while ST_Rel+Div spans both plus the long
// tail.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/datagen"
	"repro/internal/diversify"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.25, "dataset volume scale factor")
	photosK := flag.Int("photos", 3, "summary size (the paper uses 3 for Figure 3)")
	flag.Parse()

	fmt.Println("Generating the London-like city...")
	ds, err := datagen.Generate(datagen.Scale(datagen.London(), *scale))
	if err != nil {
		log.Fatal(err)
	}
	streetName := ds.Truth.PhotoStreet
	st := ds.Network.StreetByName(streetName)
	if st == nil {
		log.Fatalf("photo street %q missing", streetName)
	}
	rs, maxD := diversify.ExtractStreetPhotos(ds.Network, st.ID, ds.Photos, 0.0005)
	fmt.Printf("  %q has %d associated photos\n\n", streetName, len(rs))

	ctx, err := diversify.NewContext(rs, diversify.FreqFromPhotos(ds.Dict, rs), maxD, 0.0001)
	if err != nil {
		log.Fatal(err)
	}
	base := diversify.Params{K: *photosK, Lambda: 0.5, W: 0.5, Rho: 0.0001}

	for _, v := range []diversify.Variant{diversify.SRel, diversify.TRel, diversify.STRelDivVariant} {
		res, err := ctx.RunVariant(v, base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (objective %.3f under the balanced score):\n", v, res.Objective)
		for i, idx := range res.Selected {
			p := rs[idx]
			fmt.Printf("  %d. (%.5f, %.5f) %s\n", i+1, p.Loc.X, p.Loc.Y,
				strings.Join(ds.Dict.Names(p.Tags), ", "))
		}
		fmt.Println()
	}
	fmt.Println("Note how S_Rel returns near-duplicates from the densest photo spot")
	fmt.Println("(the paper's HMV storefront effect), T_Rel returns the event tag")
	fmt.Println("burst (the demonstration effect), and ST_Rel+Div mixes sources.")
}
