// Tour demonstrates the paper's future-work extension: "to provide route
// recommendations based on the discovered streets of interest"
// (Section 6). It identifies the top shopping streets of a Vienna-like
// city and plans a walking tour over them within a length budget.
package main

import (
	"flag"
	"fmt"
	"log"

	soi "repro"
	"repro/internal/datagen"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.25, "dataset volume scale factor")
	budgetKm := flag.Float64("budget", 6.0, "walking budget in kilometers")
	flag.Parse()

	fmt.Println("Generating the Vienna-like city...")
	ds, err := datagen.Generate(datagen.Scale(datagen.Vienna(), *scale))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := soi.NewEngineFromCorpora(ds.Network, ds.POIs, ds.Photos, soi.Config{})
	if err != nil {
		log.Fatal(err)
	}

	const degPerKm = 0.0005 / 0.055 // ≈ 0.00909°/km at European latitudes
	budget := *budgetKm * degPerKm
	tour, err := eng.RecommendTour(
		soi.Query{Keywords: []string{"shop"}, K: 10, Epsilon: 0.0005},
		budget,
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nA %.1f km shopping walk (of the %.1f km budget), total interest %.0f:\n\n",
		tour.Length/degPerKm, *budgetKm, tour.Interest)
	for i, s := range tour.Stops {
		if i == 0 {
			fmt.Printf("  start at   %-32s (interest %.0f)\n", s.Street, s.Interest)
			continue
		}
		fmt.Printf("  walk %4.0f m to %-28s (interest %.0f)\n",
			s.Walk/degPerKm*1000, s.Street, s.Interest)
	}
}
