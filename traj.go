package soi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/traj"
)

// This file wires the trajectory query family (internal/traj) into the
// public engine: k most interesting routes between two points, and
// trajectory-aware SOI over user movement traces. Both run behind their
// own admission gate with the same shed/timeout/panic-isolation contract
// as the k-SOI executor, and both resolve the serving index per query so
// live engines answer against the currently published epoch.

// RouteQuery asks for the k most interesting walking routes between two
// free points, which are snapped to their nearest network vertices.
type RouteQuery struct {
	Src, Dst Point
	// Keywords select the POIs whose interest the route collects.
	Keywords []string
	// K is the number of routes to return.
	K int
	// Epsilon is the segment-interest distance threshold ε.
	Epsilon float64
	// Budget caps the route's total walking length (coordinate units).
	Budget float64
	// Alpha is the travel-cost weight: route score = interest − α·length.
	Alpha float64
}

// RouteResult is one ranked route of a TopRoutes answer.
type RouteResult struct {
	// Polyline is the walked vertex sequence as coordinates.
	Polyline []Point
	// Streets names the traversed streets in walk order, consecutive
	// duplicates collapsed.
	Streets []string
	// Length is the total walked length; Interest the collected segment
	// interest; Score = Interest − α·Length.
	Length   float64
	Interest float64
	Score    float64
}

// TrajectoryQuery ranks streets by interest restricted to corridors the
// given movement traces actually traveled.
type TrajectoryQuery struct {
	// Traces are the movement polylines.
	Traces [][]Point
	// Keywords select the POIs contributing interest.
	Keywords []string
	// K is the number of streets to return.
	K int
	// Epsilon is the segment-interest distance threshold ε.
	Epsilon float64
	// Radius is the map-matching snap radius; 0 means a default derived
	// from the network's mean segment length.
	Radius float64
}

// CorridorStreet is one ranked street of a TrajectorySOI answer.
type CorridorStreet struct {
	Name string
	// Coverage is the traveled fraction of the street in (0, 1].
	Coverage float64
	// Interest is the maximum segment interest among traveled segments.
	Interest float64
	// Score = Coverage × Interest.
	Score float64
}

// ErrNoTraces is returned by TrajectorySOI when the query has no traces.
var ErrNoTraces = errors.New("soi: trajectory query has no traces")

// trajGraph lazily builds the shared trajectory search graph.
func (e *Engine) trajGraphLazy() *traj.Graph {
	e.trajOnce.Do(func() {
		e.trajG = traj.NewGraph(e.net, traj.DefaultSnap(e.net))
	})
	return e.trajG
}

// trajMatcherCacheSize bounds the per-radius matcher cache. The network
// is immutable, so a matcher never goes stale; the bound only stops
// requests sweeping distinct radii from growing the map without limit —
// past it, matchers are built per query and not retained.
const trajMatcherCacheSize = 8

// trajMatcherLazy returns the map-matching grid for one snap radius,
// cached across queries (the default radius is the common case, paid
// once — mirroring trajGraphLazy). Construction happens outside the
// lock so concurrent first requests for different radii don't serialize;
// a racing duplicate build is benign (identical, immutable matchers).
func (e *Engine) trajMatcherLazy(radius float64) *traj.Matcher {
	e.trajMatchMu.Lock()
	if m, ok := e.trajMatchers[radius]; ok {
		e.trajMatchMu.Unlock()
		return m
	}
	e.trajMatchMu.Unlock()
	m := traj.NewMatcher(e.net, radius)
	e.trajMatchMu.Lock()
	defer e.trajMatchMu.Unlock()
	if cached, ok := e.trajMatchers[radius]; ok {
		return cached
	}
	if e.trajMatchers == nil {
		e.trajMatchers = make(map[float64]*traj.Matcher)
	}
	if len(e.trajMatchers) < trajMatcherCacheSize {
		e.trajMatchers[radius] = m
	}
	return m
}

// servingIndex resolves the index queries should run against: the
// currently published epoch for live engines, the static index otherwise.
func (e *Engine) servingIndex() *core.Index {
	if e.ing != nil {
		return e.ing.Current().Index()
	}
	return e.index
}

// trajAcquire admits one trajectory query: it bounds concurrency to the
// engine's worker count, sheds when the wait queue is over depth or the
// max queue wait elapses (ErrOverloaded), and applies the per-query
// timeout. The returned release func must be called exactly once; the
// returned context must be used for the query body.
func (e *Engine) trajAcquire(ctx context.Context) (context.Context, context.CancelFunc, func(), error) {
	gate := e.trajGateLazy()
	cfg := e.trajCfg
	if cfg.QueueDepth > 0 && e.trajWaiters.Load() >= int64(cfg.QueueDepth) {
		e.rec.Traj.Shed.Add(1)
		return nil, nil, nil, ErrOverloaded
	}
	e.trajWaiters.Add(1)
	defer e.trajWaiters.Add(-1)

	var waitC <-chan time.Time
	if cfg.MaxQueueWait > 0 {
		t := time.NewTimer(cfg.MaxQueueWait)
		defer t.Stop()
		waitC = t.C
	}
	select {
	case gate <- struct{}{}:
	case <-waitC:
		e.rec.Traj.Shed.Add(1)
		return nil, nil, nil, ErrOverloaded
	case <-ctx.Done():
		e.trajOutcome(ctx.Err())
		return nil, nil, nil, ctx.Err()
	}
	qctx, cancel := ctx, context.CancelFunc(func() {})
	if cfg.QueryTimeout > 0 {
		qctx, cancel = context.WithTimeout(ctx, cfg.QueryTimeout)
	}
	release := func() { <-gate }
	return qctx, cancel, release, nil
}

func (e *Engine) trajGateLazy() chan struct{} {
	e.trajGateOnce.Do(func() {
		n := e.trajCfg.Workers
		if n <= 0 {
			n = defaultTrajWorkers
		}
		e.trajGate = make(chan struct{}, n)
	})
	return e.trajGate
}

const defaultTrajWorkers = 4

// trajOutcome folds a query error into the admission-outcome counters.
func (e *Engine) trajOutcome(err error) {
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		e.rec.Traj.Cancelled.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		e.rec.Traj.DeadlineExceeded.Add(1)
	}
}

// TopRoutes evaluates the k most interesting routes query.
func (e *Engine) TopRoutes(q RouteQuery) ([]RouteResult, error) {
	return e.TopRoutesCtx(context.Background(), q)
}

// TopRoutesCtx is TopRoutes under a context: the search observes
// cancellation at cooperative checkpoints, the engine's QueryTimeout
// bounds it, and an overloaded engine sheds with ErrOverloaded.
func (e *Engine) TopRoutesCtx(ctx context.Context, q RouteQuery) (result []RouteResult, err error) {
	e.rec.Traj.RouteQueries.Add(1)
	qctx, cancel, release, err := e.trajAcquire(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer release()
	defer func() {
		if v := recover(); v != nil {
			e.rec.Traj.PanicsRecovered.Add(1)
			result, err = nil, &PanicError{Value: v}
		}
	}()
	start := time.Now()
	defer func() { e.rec.Traj.SearchNanos.Add(time.Since(start).Nanoseconds()) }()

	g := e.trajGraphLazy()
	src, ok := traj.NearestVertex(e.net, geo.Pt(q.Src.X, q.Src.Y))
	if !ok {
		return nil, errors.New("soi: empty network")
	}
	dst, _ := traj.NearestVertex(e.net, geo.Pt(q.Dst.X, q.Dst.Y))
	ix := e.servingIndex()
	set, _ := ix.POIs().Dict().LookupAll(q.Keywords)
	tq := traj.RouteQuery{Src: src, Dst: dst, K: q.K, Budget: q.Budget, Alpha: q.Alpha}
	routes, st, err := traj.TopKRoutes(qctx, g, func(sid network.SegmentID) float64 {
		return ix.SegmentInterest(sid, set, q.Epsilon)
	}, tq, traj.SearchOptions{})
	e.rec.Traj.Expansions.Add(int64(st.Expansions))
	if err != nil {
		e.trajOutcome(err)
		return nil, err
	}
	out := make([]RouteResult, len(routes))
	for i, r := range routes {
		out[i] = toRouteResult(e.net, r)
	}
	return out, nil
}

func toRouteResult(net *network.Network, r traj.Route) RouteResult {
	res := RouteResult{Length: r.Length, Interest: r.Interest, Score: r.Score}
	for _, v := range r.Vertices {
		p := net.Vertex(v)
		res.Polyline = append(res.Polyline, Point{X: p.X, Y: p.Y})
	}
	for _, sid := range r.Segments {
		name := net.Street(net.Segment(sid).Street).Name
		if n := len(res.Streets); n == 0 || res.Streets[n-1] != name {
			res.Streets = append(res.Streets, name)
		}
	}
	return res
}

// TrajectorySOI evaluates the trajectory-aware SOI query.
func (e *Engine) TrajectorySOI(q TrajectoryQuery) ([]CorridorStreet, error) {
	return e.TrajectorySOICtx(context.Background(), q)
}

// TrajectorySOICtx is TrajectorySOI under a context, with the same
// admission, timeout and panic-isolation contract as TopRoutesCtx.
func (e *Engine) TrajectorySOICtx(ctx context.Context, q TrajectoryQuery) (result []CorridorStreet, err error) {
	e.rec.Traj.TrajQueries.Add(1)
	if len(q.Traces) == 0 {
		return nil, ErrNoTraces
	}
	qctx, cancel, release, err := e.trajAcquire(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer release()
	defer func() {
		if v := recover(); v != nil {
			e.rec.Traj.PanicsRecovered.Add(1)
			result, err = nil, &PanicError{Value: v}
		}
	}()
	start := time.Now()
	defer func() { e.rec.Traj.MatchNanos.Add(time.Since(start).Nanoseconds()) }()

	radius := q.Radius
	if radius == 0 {
		radius = traj.DefaultSnap(e.net)
	}
	if !(radius > 0) || math.IsInf(radius, 1) {
		return nil, fmt.Errorf("soi: match radius %v is not a positive finite number", radius)
	}
	traces := make([][]geo.Point, len(q.Traces))
	for i, tr := range q.Traces {
		pts := make([]geo.Point, len(tr))
		for j, p := range tr {
			pts[j] = geo.Pt(p.X, p.Y)
		}
		traces[i] = pts
	}
	ix := e.servingIndex()
	set, _ := ix.POIs().Dict().LookupAll(q.Keywords)
	m := e.trajMatcherLazy(radius)
	res, st, err := traj.TrajectorySOI(qctx, m, func(sid network.SegmentID) float64 {
		return ix.SegmentInterest(sid, set, q.Epsilon)
	}, traj.TrajQuery{Traces: traces, K: q.K, Radius: radius})
	e.rec.Traj.TracePoints.Add(int64(st.TracePoints))
	e.rec.Traj.MatchedPoints.Add(int64(st.Matched))
	if err != nil {
		e.trajOutcome(err)
		return nil, err
	}
	out := make([]CorridorStreet, len(res))
	for i, r := range res {
		out[i] = CorridorStreet{Name: r.Name, Coverage: r.Coverage, Interest: r.Interest, Score: r.Score}
	}
	return out, nil
}
