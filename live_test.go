package soi

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

// liveFixture builds a small live engine through the public API.
func liveFixture(t *testing.T, cfg LiveConfig) *Engine {
	t.Helper()
	streets := []StreetInput{
		{Name: "High St", Polyline: []Point{{0, 0}, {0.001, 0}, {0.002, 0}}},
		{Name: "Low St", Polyline: []Point{{0, 0.002}, {0.001, 0.002}}},
		{Name: "Quiet St", Polyline: []Point{{0, 0.005}, {0.001, 0.005}}},
	}
	var pois []POIInput
	for i := 0; i < 6; i++ {
		pois = append(pois, POIInput{X: 0.0002 * float64(i), Y: 0.0001, Keywords: []string{"shop"}})
	}
	photos := []PhotoInput{
		{X: 0.0004, Y: 0.0001, Tags: []string{"shop", "street"}},
		{X: 0.0008, Y: 0.0002, Tags: []string{"market"}},
		{X: 0.0012, Y: 0.0001, Tags: []string{"shop"}},
	}
	eng, err := NewLiveEngine(streets, pois, photos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func TestLiveEngineEndToEnd(t *testing.T) {
	eng := liveFixture(t, LiveConfig{})
	if !eng.Live() {
		t.Fatal("NewLiveEngine built a non-live engine")
	}
	if got := eng.Epoch(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}
	q := Query{Keywords: []string{"museum"}, K: 3, Epsilon: 0.0005}

	// No museums yet.
	res, err := eng.TopStreets(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("museum query before ingest: %d results, want 0", len(res))
	}

	// Stream two museums near Quiet St; the query must not change until
	// a publish installs a new epoch.
	pending, err := eng.AddPOIs([]POIInput{
		{X: 0.0004, Y: 0.0051, Keywords: []string{"museum"}},
		{X: 0.0008, Y: 0.0049, Keywords: []string{"museum"}},
	})
	if err != nil || pending != 2 {
		t.Fatalf("AddPOIs = (%d, %v), want (2, nil)", pending, err)
	}
	if res, err := eng.TopStreets(q); err != nil || len(res) != 0 {
		t.Fatalf("unpublished deltas visible: %d results, err %v", len(res), err)
	}
	if got := eng.NumPOIs(); got != 6 {
		t.Fatalf("NumPOIs before publish = %d, want 6 indexed", got)
	}

	epoch, folded, err := eng.Publish()
	if err != nil || epoch != 2 || folded != 2 {
		t.Fatalf("Publish = (%d, %d, %v), want (2, 2, nil)", epoch, folded, err)
	}
	res, trace, err := eng.TopStreetsTraced(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "Quiet St" {
		t.Fatalf("museum query after publish: %+v, want Quiet St", res)
	}
	if trace.Epoch != 2 {
		t.Fatalf("trace epoch = %d, want 2", trace.Epoch)
	}
	if got := eng.NumPOIs(); got != 8 {
		t.Fatalf("NumPOIs after publish = %d, want 8", got)
	}

	// Compaction must not change answers, but advances the epoch.
	preBits := math.Float64bits(res[0].Interest)
	epoch, folded, err = eng.Compact()
	if err != nil || epoch != 3 || folded != 2 {
		t.Fatalf("Compact = (%d, %d, %v), want (3, 2, nil)", epoch, folded, err)
	}
	res2, trace2, err := eng.TopStreetsTraced(q)
	if err != nil {
		t.Fatal(err)
	}
	if trace2.Epoch != 3 || trace2.Cached {
		t.Fatalf("post-compaction trace = {Epoch %d Cached %t}, want fresh epoch-3 evaluation", trace2.Epoch, trace2.Cached)
	}
	if len(res2) != 1 || math.Float64bits(res2[0].Interest) != preBits {
		t.Fatalf("compaction changed the answer: %+v vs interest bits %x", res2, preBits)
	}

	// The static serving surface still works on a live engine.
	if _, err := eng.DescribeStreet("High St", SummaryParams{K: 2}); err != nil {
		t.Fatalf("DescribeStreet on live engine: %v", err)
	}
	snap := eng.StatsSnapshot()
	if snap.Ingest.Publishes != 1 || snap.Ingest.Compactions != 1 || snap.Ingest.EpochSeq != 3 {
		t.Fatalf("ingest stats: %+v", snap.Ingest)
	}
}

func TestWritePathRequiresLiveEngine(t *testing.T) {
	eng := fixtureEngine(t)
	if eng.Live() {
		t.Fatal("static engine reports Live")
	}
	if _, err := eng.AddPOIs([]POIInput{{X: 0, Y: 0, Keywords: []string{"x"}}}); !errors.Is(err, ErrNotLive) {
		t.Fatalf("AddPOIs on static engine: %v, want ErrNotLive", err)
	}
	if _, _, err := eng.Publish(); !errors.Is(err, ErrNotLive) {
		t.Fatalf("Publish on static engine: %v, want ErrNotLive", err)
	}
	if _, _, err := eng.Compact(); !errors.Is(err, ErrNotLive) {
		t.Fatalf("Compact on static engine: %v, want ErrNotLive", err)
	}
	if got := eng.Epoch(); got != 0 {
		t.Fatalf("static engine epoch = %d, want 0", got)
	}
}

// TestConcurrentWritesAndQueries is the regression test for the
// core.Index.AddPOI read-only-contract hole: through the public API,
// concurrent writes and queries can no longer race on a shared mutable
// index, because writes go through the ingest delta log and queries pin
// immutable epochs. The old failure mode — AddPOI mutating the grid and
// inverted index under a running evaluation — is structurally
// unreachable: no public method mutates a serving index in place. Run
// under -race this test fails if any such path reappears.
func TestConcurrentWritesAndQueries(t *testing.T) {
	eng := liveFixture(t, LiveConfig{BatchSize: 4})
	q := Query{Keywords: []string{"shop", "museum"}, K: 5, Epsilon: 0.0008}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.TopStreetsCtx(context.Background(), q); err != nil {
					t.Errorf("query during live writes: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		x := 0.0002 * float64(i%10)
		if _, err := eng.AddPOIs([]POIInput{{X: x, Y: 0.0049, Keywords: []string{"museum"}}}); err != nil {
			t.Fatal(err)
		}
		if i%16 == 15 {
			if _, _, err := eng.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := eng.Publish(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if err := eng.IngestErr(); err != nil {
		t.Fatalf("background ingest error: %v", err)
	}
	// Everything streamed is now queryable.
	res, err := eng.TopStreets(Query{Keywords: []string{"museum"}, K: 3, Epsilon: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "Quiet St" {
		t.Fatalf("museum query after streaming: %+v, want Quiet St", res)
	}
}
