package soi_test

import (
	"fmt"
	"log"

	soi "repro"
)

// exampleEngine builds a deterministic toy town shared by the examples.
func exampleEngine() *soi.Engine {
	streets := []soi.StreetInput{
		{Name: "Market Street", Polyline: []soi.Point{{X: 0, Y: 0}, {X: 0.002, Y: 0}, {X: 0.004, Y: 0}}},
		{Name: "Church Lane", Polyline: []soi.Point{{X: 0, Y: 0.003}, {X: 0.002, Y: 0.003}}},
	}
	pois := []soi.POIInput{
		{X: 0.0005, Y: 0.0001, Keywords: []string{"shop", "bakery"}},
		{X: 0.0010, Y: -0.0002, Keywords: []string{"shop", "books"}},
		{X: 0.0015, Y: 0.0002, Keywords: []string{"shop", "clothes"}},
		{X: 0.0008, Y: 0.0031, Keywords: []string{"church"}},
	}
	photos := []soi.PhotoInput{
		{X: 0.0006, Y: 0.0001, Tags: []string{"market", "bakery"}},
		{X: 0.0007, Y: 0.0001, Tags: []string{"market", "bakery"}},
		{X: 0.0030, Y: 0.0002, Tags: []string{"festival", "crowd"}},
	}
	eng, err := soi.NewEngine(streets, pois, photos, soi.Config{})
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

// ExampleEngine_TopStreets evaluates the paper's k-SOI query: the streets
// with the highest density of query-relevant POIs.
func ExampleEngine_TopStreets() {
	eng := exampleEngine()
	top, err := eng.TopStreets(soi.Query{Keywords: []string{"shop"}, K: 2, Epsilon: 0.0005})
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range top {
		fmt.Printf("%d. %s (mass %.0f)\n", i+1, s.Name, s.Mass)
	}
	// Output:
	// 1. Market Street (mass 3)
}

// ExampleEngine_DescribeStreet builds a small diversified photo summary
// (the paper's ST_Rel+Div algorithm) for a street.
func ExampleEngine_DescribeStreet() {
	eng := exampleEngine()
	sum, err := eng.DescribeStreet("Market Street", soi.SummaryParams{K: 2, Epsilon: 0.0005})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d photos from %d candidates\n", len(sum.Photos), sum.CandidateCount)
	// A relevant and a diverse photo: the duplicate pair contributes one.
	fmt.Println(sum.Photos[0].Tags[0] != "" && len(sum.Photos) == 2)
	// Output:
	// 2 photos from 3 candidates
	// true
}

// ExampleEngine_RecommendTour plans a walking tour over the discovered
// streets of interest — the paper's future-work extension.
func ExampleEngine_RecommendTour() {
	eng := exampleEngine()
	tour, err := eng.RecommendTour(
		soi.Query{Keywords: []string{"shop", "church"}, K: 5, Epsilon: 0.0005},
		1.0, // generous budget in coordinate units
	)
	if err != nil {
		log.Fatal(err)
	}
	for i, stop := range tour.Stops {
		fmt.Printf("%d. %s\n", i+1, stop.Street)
	}
	// Output:
	// 1. Market Street
	// 2. Church Lane
}
