// Package soi identifies and describes Streets of Interest, implementing
// Skoutas, Sacharidis and Stamatoukos, "Identifying and Describing
// Streets of Interest" (EDBT 2016).
//
// Given a road network, a set of keyword-tagged POIs and a set of tagged
// photos, the package answers two queries:
//
//   - TopStreets ranks streets by interest: the density of query-relevant
//     POIs within distance ε of the street's best segment (the k-SOI
//     query, evaluated with the paper's SOI top-k algorithm).
//   - DescribeStreet selects a small, spatio-textually relevant and
//     diverse photo summary for a street (the SOI diversification
//     problem, evaluated with the paper's ST_Rel+Div algorithm).
//
// The Engine is built from plain input values so that callers need no
// knowledge of the internal index structures:
//
//	eng, err := soi.NewEngine(streets, pois, photos, soi.Config{})
//	top, err := eng.TopStreets(soi.Query{Keywords: []string{"shop"}, K: 10, Epsilon: 0.0005})
//	sum, err := eng.DescribeStreet(top[0].Name, soi.SummaryParams{K: 4, Epsilon: 0.0005})
package soi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/engine"
	"repro/internal/geo"
	"repro/internal/ingest"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/traj"
	"repro/internal/vocab"
)

// Point is a planar coordinate (longitude/latitude treated as Euclidean).
type Point struct {
	X, Y float64
}

// StreetInput describes one street as a named polyline; each consecutive
// point pair becomes one street segment.
type StreetInput struct {
	Name     string
	Polyline []Point
}

// POIInput is a point of interest with its keywords and an optional
// importance weight (0 means 1).
type POIInput struct {
	X, Y     float64
	Keywords []string
	Weight   float64
}

// PhotoInput is a geo-tagged photo.
type PhotoInput struct {
	X, Y float64
	Tags []string
}

// Config controls engine construction.
type Config struct {
	// GridCellSize is the spatial index cell side; defaults to 0.0005
	// (≈55 m at European latitudes), the paper's ε.
	GridCellSize float64
	// Workers bounds the number of k-SOI queries evaluated concurrently
	// over the shared index; 0 means GOMAXPROCS.
	Workers int
	// CacheSize is the query result cache capacity; 0 means the engine
	// default, negative disables caching.
	CacheSize int
	// QueueDepth bounds how many k-SOI queries may wait for a worker
	// slot at once; excess load is shed with ErrOverloaded instead of
	// queueing unboundedly. 0 disables the bound.
	QueueDepth int
	// MaxQueueWait bounds how long an admitted query may wait for a
	// worker slot before being shed with ErrOverloaded. 0 means no bound.
	MaxQueueWait time.Duration
	// QueryTimeout is the per-query deadline applied to every k-SOI
	// query on top of the caller's context; 0 means none.
	QueryTimeout time.Duration
}

// DefaultCellSize is the grid cell side used when Config leaves it zero.
const DefaultCellSize = 0.0005

// Query is a k-SOI query ⟨Ψ, k, ε⟩.
type Query struct {
	// Keywords is the query keyword set Ψ.
	Keywords []string
	// K is the number of streets to return.
	K int
	// Epsilon is the distance threshold ε in coordinate units.
	Epsilon float64
}

// Street is one ranked street of a TopStreets answer.
type Street struct {
	Name string
	// Interest is the street's mass density (Definitions 1–3).
	Interest float64
	// Mass is the relevant-POI mass of the street's best segment.
	Mass float64
}

// SummaryParams configures DescribeStreet.
type SummaryParams struct {
	// K is the number of photos to select.
	K int
	// Lambda trades relevance (0) against diversity (1); default 0.5.
	Lambda float64
	// W trades the textual (0) against the spatial (1) aspect; default 0.5.
	W float64
	// Rho is the spatial-relevance neighborhood radius; default 0.0001.
	Rho float64
	// Epsilon associates photos within this distance with the street;
	// default 0.0005.
	Epsilon float64
}

// withDefaults fills zero fields with the paper's default parameters.
func (p SummaryParams) withDefaults() SummaryParams {
	if p.Lambda == 0 {
		p.Lambda = 0.5
	}
	if p.W == 0 {
		p.W = 0.5
	}
	if p.Rho == 0 {
		p.Rho = 0.0001
	}
	if p.Epsilon == 0 {
		p.Epsilon = DefaultCellSize
	}
	return p
}

// SummaryPhoto is one selected photo of a street summary.
type SummaryPhoto struct {
	X, Y float64
	Tags []string
}

// Summary is the result of DescribeStreet.
type Summary struct {
	Street string
	Photos []SummaryPhoto
	// Objective is the F score (Eq. 2) of the selected set.
	Objective float64
	// CandidateCount is |Rs|, the number of photos associated with the
	// street.
	CandidateCount int
}

// Engine evaluates k-SOI and description queries over one dataset. It is
// safe for concurrent use after construction: all k-SOI traffic runs
// through a shared parallel executor with a bounded worker pool and an
// LRU result cache.
type Engine struct {
	net    *network.Network
	pois   *poi.Corpus
	photos *photo.Corpus
	dict   *vocab.Dictionary
	index  *core.Index
	exec   *engine.Executor
	rec    *stats.Recorder

	// ing backs a live engine (NewLiveEngine): the write path that
	// publishes immutable index epochs. index and pois are nil for live
	// engines — the serving index is resolved per query via the epoch
	// source.
	ing *ingest.Ingestor

	// mapping backs a snapshot-loaded engine (the index's slab aliases
	// the mapped file); nil for engines built from in-memory data.
	mapping io.Closer

	graphOnce sync.Once
	graph     *route.Graph

	photoIdxOnce sync.Once
	photoIdx     *diversify.PhotoIndex
	photoIdxErr  error

	// Trajectory query family (traj.go): lazily built search graph and
	// a dedicated admission gate mirroring the executor's contract.
	trajCfg      Config
	trajOnce     sync.Once
	trajG        *traj.Graph
	trajGateOnce sync.Once
	trajGate     chan struct{}
	trajWaiters  atomic.Int64
	trajMatchMu  sync.Mutex
	trajMatchers map[float64]*traj.Matcher
}

// ErrUnknownStreet is returned by DescribeStreet for a street name that
// does not exist in the network.
var ErrUnknownStreet = errors.New("soi: unknown street")

// ErrNoPhotos is returned by DescribeStreet when the street has no
// associated photos within ε.
var ErrNoPhotos = diversify.ErrNoPhotos

// ErrOverloaded is returned when the engine's admission control sheds a
// query instead of queueing it (the bounded wait queue was full or the
// maximum queue wait elapsed). It signals retryable backpressure.
var ErrOverloaded = engine.ErrOverloaded

// PanicError is the per-query error a recovered evaluation panic is
// converted into; the engine keeps serving. Servers should map it to an
// internal-error status, not a client error.
type PanicError = engine.PanicError

// NewEngine builds an engine from plain inputs. Streets must have at
// least two polyline points each.
func NewEngine(streets []StreetInput, pois []POIInput, photos []PhotoInput, cfg Config) (*Engine, error) {
	nb := network.NewBuilder()
	for _, s := range streets {
		pts := make([]geo.Point, len(s.Polyline))
		for i, p := range s.Polyline {
			pts[i] = geo.Pt(p.X, p.Y)
		}
		nb.AddStreet(s.Name, pts)
	}
	net, err := nb.Build()
	if err != nil {
		return nil, fmt.Errorf("soi: building network: %w", err)
	}
	dict := vocab.NewDictionary()
	pb := poiBuilderFromInputs(pois, dict)
	rb := photoBuilderFromInputs(photos, dict)
	return newEngine(net, pb, rb, dict, cfg)
}

func poiBuilderFromInputs(in []POIInput, dict *vocab.Dictionary) *poi.Corpus {
	pb := poi.NewBuilder(dict)
	for _, p := range in {
		pb.AddWeighted(geo.Pt(p.X, p.Y), p.Keywords, p.Weight)
	}
	return pb.Build()
}

func photoBuilderFromInputs(in []PhotoInput, dict *vocab.Dictionary) *photo.Corpus {
	rb := photo.NewBuilder(dict)
	for _, p := range in {
		rb.Add(geo.Pt(p.X, p.Y), p.Tags)
	}
	return rb.Build()
}

// NewEngineFromCorpora wires an engine over already-built internal
// corpora; it is the constructor used by the repository's tools, examples
// and benchmarks, which generate data with internal/datagen.
func NewEngineFromCorpora(net *network.Network, pois *poi.Corpus, photos *photo.Corpus, cfg Config) (*Engine, error) {
	return newEngine(net, pois, photos, pois.Dict(), cfg)
}

func newEngine(net *network.Network, pois *poi.Corpus, photos *photo.Corpus, dict *vocab.Dictionary, cfg Config) (*Engine, error) {
	cell := cfg.GridCellSize
	if cell == 0 {
		cell = DefaultCellSize
	}
	// Compact attaches the flattened slab layout alongside the map
	// structures: the default cost-aware strategy evaluates on it with
	// zero steady-state allocations and bit-identical answers.
	ix, err := core.NewIndex(net, pois, core.IndexConfig{CellSize: cell, Compact: true})
	if err != nil {
		return nil, fmt.Errorf("soi: building index: %w", err)
	}
	return newEngineWithIndex(net, pois, photos, dict, ix, cfg), nil
}

// newEngineWithIndex assembles the serving stack around an already-built
// index (fresh build or snapshot load).
func newEngineWithIndex(net *network.Network, pois *poi.Corpus, photos *photo.Corpus, dict *vocab.Dictionary, ix *core.Index, cfg Config) *Engine {
	rec := stats.NewRecorder()
	exec := engine.New(ix, engine.Config{
		Workers:      cfg.Workers,
		CacheSize:    cfg.CacheSize,
		QueueDepth:   cfg.QueueDepth,
		MaxQueueWait: cfg.MaxQueueWait,
		QueryTimeout: cfg.QueryTimeout,
		Recorder:     rec,
	})
	return &Engine{net: net, pois: pois, photos: photos, dict: dict, index: ix, exec: exec, rec: rec, trajCfg: cfg}
}

// Warm precomputes the ε-dependent index structures so that subsequent
// query latencies exclude one-time augmentation work. For a live engine
// it warms the currently serving epoch.
func (e *Engine) Warm(epsilon float64) {
	if e.ing != nil {
		e.ing.Current().Index().Warm(epsilon)
		return
	}
	e.index.Warm(epsilon)
}

// NumStreets returns the number of streets in the network.
func (e *Engine) NumStreets() int { return e.net.NumStreets() }

// NumPOIs returns the number of indexed POIs: for a live engine, the
// POIs served by the current epoch (base plus published deltas; pending
// deltas are not yet indexed).
func (e *Engine) NumPOIs() int {
	if e.ing != nil {
		base, published, _ := e.ing.Counts()
		return base + published
	}
	return e.pois.Len()
}

// NumPhotos returns the number of indexed photos.
func (e *Engine) NumPhotos() int { return e.photos.Len() }

// TopStreets evaluates the k-SOI query with the SOI algorithm and returns
// the ranked streets (highest interest first). Streets with zero interest
// are omitted, so fewer than K results may return. Repeated queries are
// served from the engine's result cache.
func (e *Engine) TopStreets(q Query) ([]Street, error) {
	return e.TopStreetsCtx(context.Background(), q)
}

// TopStreetsCtx is TopStreets under a context: the query observes
// cancellation promptly (at the worker queue, at dedup joins and at the
// algorithm's cooperative checkpoints) and the engine's QueryTimeout, if
// configured, bounds the evaluation. An overloaded engine sheds the
// query with ErrOverloaded instead of queueing it unboundedly.
func (e *Engine) TopStreetsCtx(ctx context.Context, q Query) ([]Street, error) {
	res := e.exec.DoCtx(ctx, core.Query{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon})
	if res.Err != nil {
		return nil, res.Err
	}
	return toStreets(res.Streets), nil
}

// QueryTrace reports the per-stage work of one k-SOI evaluation: the
// phase timings of the paper's Figure 4 and the accessed-cell/segment
// counts of its Section 6 measurements. For a cached result the trace
// describes the original evaluation.
type QueryTrace struct {
	// Cached reports whether the answer was served without evaluation
	// (LRU result cache or an identical in-flight query).
	Cached bool `json:"cached"`
	// Epoch is the index epoch the answer was evaluated against (0 for
	// engines without a live ingest path; live epochs start at 1).
	Epoch uint64 `json:"epoch"`
	// Phase wall times in microseconds (Figure 4's breakdown).
	BuildListsMicros int64 `json:"build_lists_us"`
	FilterMicros     int64 `json:"filter_us"`
	RefineMicros     int64 `json:"refine_us"`
	// Source-list access counts: cells popped from SL1, segments
	// finalized via SL2 and SL3.
	SL1CellsPopped    int `json:"sl1_cells_popped"`
	SL2SegmentsPopped int `json:"sl2_segments_popped"`
	SL3SegmentsPopped int `json:"sl3_segments_popped"`
	// FilterIterations counts UB/LBk bound comparisons of the filter
	// loop.
	FilterIterations int `json:"filter_iterations"`
	// CellVisits counts per-segment cell visits (UpdateInterest calls
	// that did work).
	CellVisits int `json:"cell_visits"`
	// SegmentsSeen / SegmentsFinal count segments touched and segments
	// brought to exact mass; RefineDrained counts finalizations deferred
	// to the refinement phase.
	SegmentsSeen  int `json:"segments_seen"`
	SegmentsFinal int `json:"segments_final"`
	RefineDrained int `json:"refine_drained"`
	// MassCacheHits counts segments answered from the shared mass cache
	// without any cell visit.
	MassCacheHits int `json:"mass_cache_hits"`
	// TotalSegments and TotalCells size the search space the pruning is
	// measured against.
	TotalSegments int `json:"total_segments"`
	TotalCells    int `json:"total_cells"`
}

// traceOf converts an executor result's per-run stats into the public
// trace form.
func traceOf(res engine.Result) QueryTrace {
	s := res.Stats
	return QueryTrace{
		Cached:            res.Cached,
		Epoch:             res.Epoch,
		BuildListsMicros:  s.BuildListsTime.Microseconds(),
		FilterMicros:      s.FilterTime.Microseconds(),
		RefineMicros:      s.RefineTime.Microseconds(),
		SL1CellsPopped:    s.CellAccesses,
		SL2SegmentsPopped: s.SL2Accesses,
		SL3SegmentsPopped: s.SL3Accesses,
		FilterIterations:  s.FilterIterations,
		CellVisits:        s.CellVisits,
		SegmentsSeen:      s.SegmentsSeen,
		SegmentsFinal:     s.SegmentsFinal,
		RefineDrained:     s.RefineDrained,
		MassCacheHits:     s.SegmentCacheHits,
		TotalSegments:     s.TotalSegments,
		TotalCells:        s.TotalCells,
	}
}

// TopStreetsTraced is TopStreets returning the evaluation's per-stage
// trace alongside the answer.
func (e *Engine) TopStreetsTraced(q Query) ([]Street, QueryTrace, error) {
	return e.TopStreetsTracedCtx(context.Background(), q)
}

// TopStreetsTracedCtx is TopStreetsTraced under a context.
func (e *Engine) TopStreetsTracedCtx(ctx context.Context, q Query) ([]Street, QueryTrace, error) {
	res := e.exec.DoCtx(ctx, core.Query{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon})
	if res.Err != nil {
		return nil, QueryTrace{}, res.Err
	}
	return toStreets(res.Streets), traceOf(res), nil
}

func toStreets(res []core.StreetResult) []Street {
	out := make([]Street, len(res))
	for i, r := range res {
		out[i] = Street{Name: r.Name, Interest: r.Interest, Mass: r.Mass}
	}
	return out
}

// BatchResult is one entry of a TopStreetsBatch answer.
type BatchResult struct {
	Streets []Street
	Err     error
	// Trace describes the evaluation that produced the entry (shared by
	// every query coalesced into it).
	Trace QueryTrace
}

// TopStreetsBatch evaluates many k-SOI queries concurrently over the
// shared index with the engine's bounded worker pool, returning results
// in input order. Each query succeeds or fails independently.
func (e *Engine) TopStreetsBatch(qs []Query) []BatchResult {
	return e.TopStreetsBatchCtx(context.Background(), qs)
}

// TopStreetsBatchCtx is TopStreetsBatch under a context: a cancelled
// context fails the batch's not-yet-evaluated entries promptly, and the
// engine's QueryTimeout bounds each coalesced evaluation.
func (e *Engine) TopStreetsBatchCtx(ctx context.Context, qs []Query) []BatchResult {
	cqs := make([]core.Query, len(qs))
	for i, q := range qs {
		cqs[i] = core.Query{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon}
	}
	results := e.exec.BatchCtx(ctx, cqs)
	out := make([]BatchResult, len(results))
	for i, r := range results {
		if r.Err != nil {
			out[i] = BatchResult{Err: r.Err}
			continue
		}
		out[i] = BatchResult{Streets: toStreets(r.Streets), Trace: traceOf(r)}
	}
	return out
}

// QueryMetrics reports the engine's cumulative k-SOI executor counters.
func (e *Engine) QueryMetrics() engine.Metrics { return e.exec.Metrics() }

// StatsRecorder returns the engine's observability recorder; all k-SOI
// and description traffic folds into it.
func (e *Engine) StatsRecorder() *stats.Recorder { return e.rec }

// StatsSnapshot returns a point-in-time copy of every observability
// counter and latency histogram.
func (e *Engine) StatsSnapshot() stats.Snapshot { return e.rec.Snapshot() }

// TourStop is one street visit of a recommended tour.
type TourStop struct {
	Street   string
	Interest float64
	// Walk is the walking distance from the previous stop (0 for the
	// first stop).
	Walk float64
}

// UnreachedStreet is a k-SOI result street the tour planner dropped
// because no path connects it to the tour (it lies in a disconnected
// component of the walking graph), with its forgone interest.
type UnreachedStreet struct {
	Street   string
	Interest float64
}

// Tour is a recommended walking route over streets of interest.
type Tour struct {
	Stops []TourStop
	// Length is the total walking length including the visited streets.
	Length float64
	// Interest is the summed interest of the visited streets.
	Interest float64
	// Unreached lists result streets the planner could not connect to
	// the tour at all; streets merely over budget are not listed.
	Unreached []UnreachedStreet
}

// RecommendTour implements the paper's future-work extension: evaluate
// the k-SOI query and plan a walking tour over the resulting streets
// within the given length budget (coordinate units), greedily maximizing
// interest per walking distance.
func (e *Engine) RecommendTour(q Query, budget float64) (Tour, error) {
	return e.RecommendTourCtx(context.Background(), q, budget)
}

// RecommendTourCtx is RecommendTour under a context; the k-SOI
// evaluation it builds on observes cancellation and deadlines.
func (e *Engine) RecommendTourCtx(ctx context.Context, q Query, budget float64) (Tour, error) {
	er := e.exec.DoCtx(ctx, core.Query{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon})
	if er.Err != nil {
		return Tour{}, er.Err
	}
	res := er.Streets
	if len(res) == 0 {
		return Tour{}, errors.New("soi: no street matches the query")
	}
	cands := make([]route.Candidate, len(res))
	for i, r := range res {
		cands[i] = route.Candidate{Street: r.Street, Interest: r.Interest}
	}
	e.graphOnce.Do(func() {
		// Join streets that cross without sharing a vertex (the normal
		// case for digitized data) with pedestrian connectors sized to
		// the network's typical segment length.
		st := e.net.Stats()
		snap := 0.0
		if st.NumSegments > 0 {
			snap = 1.5 * st.TotalLen / float64(st.NumSegments)
		}
		e.graph = route.NewGraphConnected(e.net, snap)
	})
	tour, err := route.Recommend(e.graph, cands, budget)
	if err != nil {
		return Tour{}, err
	}
	out := Tour{Length: tour.Length, Interest: tour.Interest}
	for _, s := range tour.Stops {
		out.Stops = append(out.Stops, TourStop{
			Street:   s.Name,
			Interest: s.Interest,
			Walk:     s.Approach.Length,
		})
	}
	for _, u := range tour.Unreached {
		out.Unreached = append(out.Unreached, UnreachedStreet{Street: u.Name, Interest: u.Interest})
	}
	return out, nil
}

// DescribeStreet selects a diversified photo summary for the named street
// using the ST_Rel+Div algorithm with the paper's default parameters
// where SummaryParams fields are zero.
func (e *Engine) DescribeStreet(name string, p SummaryParams) (Summary, error) {
	p = p.withDefaults()
	st := e.net.StreetByName(name)
	if st == nil {
		return Summary{}, fmt.Errorf("%w: %q", ErrUnknownStreet, name)
	}
	e.photoIdxOnce.Do(func() {
		e.photoIdx, e.photoIdxErr = diversify.NewPhotoIndex(e.photos, DefaultCellSize)
	})
	if e.photoIdxErr != nil {
		return Summary{}, e.photoIdxErr
	}
	rs, maxD := e.photoIdx.StreetPhotos(e.net, st.ID, p.Epsilon)
	if len(rs) == 0 {
		return Summary{}, fmt.Errorf("%w: street %q", ErrNoPhotos, name)
	}
	freq := diversify.FreqFromPhotos(e.dict, rs)
	ctx, err := diversify.NewContext(rs, freq, maxD, p.Rho)
	if err != nil {
		return Summary{}, err
	}
	res, err := ctx.STRelDiv(diversify.Params{K: p.K, Lambda: p.Lambda, W: p.W, Rho: p.Rho})
	if err != nil {
		return Summary{}, err
	}
	res.Stats.Record(e.rec, len(rs))
	sum := Summary{
		Street:         name,
		Objective:      res.Objective,
		CandidateCount: len(rs),
	}
	for _, i := range res.Selected {
		ph := rs[i]
		sum.Photos = append(sum.Photos, SummaryPhoto{
			X:    ph.Loc.X,
			Y:    ph.Loc.Y,
			Tags: e.dict.Names(ph.Tags),
		})
	}
	return sum, nil
}
