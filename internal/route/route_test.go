package route

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/network"
)

// gridNetwork builds an n×n lattice of unit-length streets: horizontal
// streets "h<i>" and vertical streets "v<j>", all intersecting.
func gridNetwork(t *testing.T, n int) *network.Network {
	t.Helper()
	b := network.NewBuilder()
	for i := 0; i < n; i++ {
		pts := make([]geo.Point, n)
		for j := 0; j < n; j++ {
			pts[j] = geo.Pt(float64(j), float64(i))
		}
		b.AddStreet("h", pts)
	}
	for j := 0; j < n; j++ {
		pts := make([]geo.Point, n)
		for i := 0; i < n; i++ {
			pts[i] = geo.Pt(float64(j), float64(i))
		}
		b.AddStreet("v", pts)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestShortestPathStraightLine(t *testing.T) {
	b := network.NewBuilder()
	b.AddStreet("line", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0)})
	net, _ := b.Build()
	g := NewGraph(net)
	p, err := g.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Length-3) > 1e-12 {
		t.Fatalf("Length = %v", p.Length)
	}
	if len(p.Vertices) != 4 || len(p.Segments) != 3 {
		t.Fatalf("path = %+v", p)
	}
	if p.Vertices[0] != 0 || p.Vertices[3] != 3 {
		t.Fatalf("endpoints = %v", p.Vertices)
	}
}

func TestShortestPathSameVertex(t *testing.T) {
	net := gridNetwork(t, 3)
	g := NewGraph(net)
	p, err := g.ShortestPath(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Length != 0 || len(p.Segments) != 0 {
		t.Fatalf("self path = %+v", p)
	}
}

func TestShortestPathGrid(t *testing.T) {
	net := gridNetwork(t, 4)
	g := NewGraph(net)
	// Opposite corners of a 4x4 lattice: Manhattan distance 6.
	var src, dst network.VertexID
	found := 0
	for v := 0; v < net.NumVertices(); v++ {
		switch net.Vertex(network.VertexID(v)) {
		case geo.Pt(0, 0):
			src = network.VertexID(v)
			found++
		case geo.Pt(3, 3):
			dst = network.VertexID(v)
			found++
		}
	}
	if found != 2 {
		t.Fatal("corner vertices not found")
	}
	p, err := g.ShortestPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Length-6) > 1e-12 {
		t.Fatalf("Length = %v, want 6", p.Length)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	b := network.NewBuilder()
	b.AddStreet("a", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	b.AddStreet("b", []geo.Point{geo.Pt(10, 10), geo.Pt(11, 10)})
	net, _ := b.Build()
	g := NewGraph(net)
	if _, err := g.ShortestPath(0, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestShortestPathOutOfRange(t *testing.T) {
	net := gridNetwork(t, 2)
	g := NewGraph(net)
	if _, err := g.ShortestPath(0, 9999); err == nil {
		t.Fatal("expected error")
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over
// random vertex triples and agree with path reconstruction.
func TestDijkstraProperties(t *testing.T) {
	net := gridNetwork(t, 6)
	g := NewGraph(net)
	rng := rand.New(rand.NewSource(71))
	n := net.NumVertices()
	for trial := 0; trial < 50; trial++ {
		a := network.VertexID(rng.Intn(n))
		b := network.VertexID(rng.Intn(n))
		c := network.VertexID(rng.Intn(n))
		da := g.ShortestDistances(a)
		db := g.ShortestDistances(b)
		if da[c] > da[b]+db[c]+1e-9 {
			t.Fatalf("triangle inequality violated: d(%d,%d)=%v > %v+%v", a, c, da[c], da[b], db[c])
		}
		p, err := g.ShortestPath(a, c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Length-da[c]) > 1e-9 {
			t.Fatalf("reconstructed length %v != distance %v", p.Length, da[c])
		}
		// The path's segment lengths sum to its length.
		var sum float64
		for _, sid := range p.Segments {
			sum += net.Segment(sid).Length()
		}
		if math.Abs(sum-p.Length) > 1e-9 {
			t.Fatalf("segment sum %v != length %v", sum, p.Length)
		}
		// Consecutive vertices are joined by the listed segments.
		for i, sid := range p.Segments {
			seg := net.Segment(sid)
			u, v := p.Vertices[i], p.Vertices[i+1]
			if !(seg.From == u && seg.To == v) && !(seg.From == v && seg.To == u) {
				t.Fatalf("segment %d does not join vertices %d-%d", sid, u, v)
			}
		}
	}
}

func TestRecommendBasic(t *testing.T) {
	net := gridNetwork(t, 5)
	g := NewGraph(net)
	cands := []Candidate{
		{Street: 0, Interest: 10}, // h0
		{Street: 1, Interest: 30}, // h1 — best, tour starts here
		{Street: 5, Interest: 20}, // v0
	}
	tour, err := Recommend(g, cands, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Stops) != 3 {
		t.Fatalf("stops = %d, want all 3 within the generous budget", len(tour.Stops))
	}
	if tour.Stops[0].Street != 1 {
		t.Fatalf("tour starts at street %d, want the most interesting (1)", tour.Stops[0].Street)
	}
	if tour.Interest != 60 {
		t.Fatalf("Interest = %v", tour.Interest)
	}
	if tour.Length <= 0 {
		t.Fatalf("Length = %v", tour.Length)
	}
	// The first stop has no approach path; later stops reconstruct one.
	if len(tour.Stops[0].Approach.Segments) != 0 {
		t.Fatal("first stop should have no approach")
	}
}

func TestRecommendBudget(t *testing.T) {
	net := gridNetwork(t, 5)
	g := NewGraph(net)
	cands := []Candidate{
		{Street: 0, Interest: 10},
		{Street: 1, Interest: 30},
		{Street: 5, Interest: 20},
	}
	// Budget fits only the starting street (length 4).
	tour, err := Recommend(g, cands, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Stops) != 1 {
		t.Fatalf("stops = %d, want 1 under a tight budget", len(tour.Stops))
	}
	// Budget accounting: tour length never exceeds the budget when more
	// than the first street is added.
	tour2, err := Recommend(g, cands, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(tour2.Stops) > 1 && tour2.Length > 15 {
		t.Fatalf("tour length %v exceeds budget", tour2.Length)
	}
}

func TestRecommendErrors(t *testing.T) {
	net := gridNetwork(t, 3)
	g := NewGraph(net)
	if _, err := Recommend(g, nil, 10); err == nil {
		t.Fatal("expected error for no candidates")
	}
	if _, err := Recommend(g, []Candidate{{Street: 0, Interest: 1}}, 0); err == nil {
		t.Fatal("expected error for zero budget")
	}
}

func TestRecommendSkipsUnreachable(t *testing.T) {
	b := network.NewBuilder()
	b.AddStreet("a", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	b.AddStreet("island", []geo.Point{geo.Pt(10, 10), geo.Pt(11, 10)})
	net, _ := b.Build()
	g := NewGraph(net)
	tour, err := Recommend(g, []Candidate{
		{Street: 0, Interest: 5},
		{Street: 1, Interest: 1},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Stops) != 1 || tour.Stops[0].Street != 0 {
		t.Fatalf("tour = %+v, want only the reachable street", tour)
	}
	if len(tour.Unreached) != 1 || tour.Unreached[0].Street != 1 {
		t.Fatalf("unreached = %+v, want the island street", tour.Unreached)
	}
	if tour.Unreached[0].Name != "island" || tour.Unreached[0].Interest != 1 {
		t.Fatalf("unreached entry = %+v, want name/interest carried over", tour.Unreached[0])
	}
}

// Regression: a graph split into several components reports every
// candidate outside the start's component as Unreached — in candidate
// order — while reachable-but-over-budget streets stay unlisted.
func TestRecommendDisconnectedComponents(t *testing.T) {
	b := network.NewBuilder()
	b.AddStreet("main", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})            // street 0, component A
	b.AddStreet("side", []geo.Point{geo.Pt(1, 0), geo.Pt(1, 5)})            // street 1, component A (shares vertex)
	b.AddStreet("island1", []geo.Point{geo.Pt(100, 100), geo.Pt(101, 100)}) // street 2, component B
	b.AddStreet("island2", []geo.Point{geo.Pt(200, 200), geo.Pt(201, 200)}) // street 3, component C
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(net)
	tour, err := Recommend(g, []Candidate{
		{Street: 2, Interest: 4}, // island1: unreachable
		{Street: 0, Interest: 9}, // main: the start
		{Street: 3, Interest: 2}, // island2: unreachable
		{Street: 1, Interest: 1}, // side: reachable but over budget
	}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Stops) != 1 || tour.Stops[0].Name != "main" {
		t.Fatalf("stops = %+v, want only main", tour.Stops)
	}
	want := []Unreached{
		{Street: 2, Name: "island1", Interest: 4},
		{Street: 3, Name: "island2", Interest: 2},
	}
	if len(tour.Unreached) != len(want) {
		t.Fatalf("unreached = %+v, want %+v", tour.Unreached, want)
	}
	for i, u := range tour.Unreached {
		if u != want[i] {
			t.Fatalf("unreached[%d] = %+v, want %+v", i, u, want[i])
		}
	}
	// "side" is in the tour's component: over budget is not unreached.
	for _, u := range tour.Unreached {
		if u.Name == "side" {
			t.Fatalf("side listed as unreached: %+v", tour.Unreached)
		}
	}
}

// Regression: a fully connected candidate set yields no Unreached
// entries even when the budget stops the tour early.
func TestRecommendUnreachedEmptyWhenConnected(t *testing.T) {
	net := gridNetwork(t, 4)
	g := NewGraph(net)
	var cands []Candidate
	for i := 0; i < 4; i++ {
		cands = append(cands, Candidate{Street: network.StreetID(i), Interest: float64(i + 1)})
	}
	tour, err := Recommend(g, cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Unreached) != 0 {
		t.Fatalf("unreached = %+v, want none on a connected grid", tour.Unreached)
	}
}

// Property: the tour's recomputed length from its parts matches the
// reported total.
func TestRecommendLengthAccounting(t *testing.T) {
	net := gridNetwork(t, 6)
	g := NewGraph(net)
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 25; trial++ {
		var cands []Candidate
		for i := 0; i < 5; i++ {
			cands = append(cands, Candidate{
				Street:   network.StreetID(rng.Intn(net.NumStreets())),
				Interest: rng.Float64() * 100,
			})
		}
		tour, err := Recommend(g, cands, 10+rng.Float64()*40)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, s := range tour.Stops {
			sum += s.Approach.Length + net.Street(s.Street).Length()
		}
		if math.Abs(sum-tour.Length) > 1e-9 {
			t.Fatalf("length accounting: parts %v != total %v", sum, tour.Length)
		}
	}
}

func TestNewGraphConnected(t *testing.T) {
	// Two crossing streets that share no vertex.
	b := network.NewBuilder()
	b.AddStreet("h", []geo.Point{geo.Pt(0, 0.5), geo.Pt(1, 0.5)})
	b.AddStreet("v", []geo.Point{geo.Pt(0.5, 0), geo.Pt(0.5, 1)})
	net, _ := b.Build()

	// Without connectors the streets are disconnected.
	plain := NewGraph(net)
	if _, err := plain.ShortestPath(0, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("plain graph err = %v, want unreachable", err)
	}
	// With a snap radius covering the endpoint gap they connect.
	g := NewGraphConnected(net, 0.8)
	p, err := g.ShortestPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Length <= 0 {
		t.Fatalf("connected path length = %v", p.Length)
	}
	// Connector hops do not appear in the segment list.
	for _, sid := range p.Segments {
		if int(sid) >= net.NumSegments() {
			t.Fatalf("connector leaked into Segments: %d", sid)
		}
	}
	// Zero snap is a no-op.
	if g0 := NewGraphConnected(net, 0); len(g0.adj[0]) != len(plain.adj[0]) {
		t.Fatal("snap=0 added edges")
	}
}

// Property: connector edges never shorten paths below the straight-line
// distance between the endpoints.
func TestConnectedPathsLowerBound(t *testing.T) {
	net := gridNetwork(t, 5)
	g := NewGraphConnected(net, 1.2)
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 50; trial++ {
		a := network.VertexID(rng.Intn(net.NumVertices()))
		b := network.VertexID(rng.Intn(net.NumVertices()))
		p, err := g.ShortestPath(a, b)
		if err != nil {
			t.Fatal(err)
		}
		straight := net.Vertex(a).Dist(net.Vertex(b))
		if p.Length < straight-1e-9 {
			t.Fatalf("path %v shorter than straight line %v", p.Length, straight)
		}
	}
}
