// Package route implements the paper's stated future work: "to provide
// route recommendations based on the discovered streets of interest"
// (Section 6). Given the ranked streets of a k-SOI answer, it plans a
// walking tour over the road network that visits as many of them as
// possible within a length budget.
//
// The substrate is a standard shortest-path layer over the network's
// vertex graph (binary-heap Dijkstra); the planner is a greedy
// insertion tour: starting from the most interesting street, repeatedly
// append the street with the best interest-per-detour ratio while the
// budget allows, then emit the full vertex path.
package route

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/network"
)

// Graph is an adjacency-list view of a road network, treating every
// street segment as a bidirectional edge weighted by its length (the
// paper's networks are directed graphs digitized from OSM ways; walking
// tours traverse them in both directions).
type Graph struct {
	net *network.Network
	adj [][]edge
}

// connectorSeg marks an edge that is a pedestrian connector between two
// nearby vertices rather than a street segment.
const connectorSeg = int32(-2)

type edge struct {
	to  network.VertexID
	seg int32 // segment id, or connectorSeg
	w   float64
}

// NewGraph builds the adjacency structure of the network using only its
// street segments. Streets that cross geometrically but share no vertex
// (common in digitized data) remain disconnected; use NewGraphConnected
// for tour planning over such networks.
func NewGraph(net *network.Network) *Graph {
	g := &Graph{net: net, adj: make([][]edge, net.NumVertices())}
	for _, seg := range net.Segments() {
		g.adj[seg.From] = append(g.adj[seg.From], edge{to: seg.To, seg: int32(seg.ID), w: seg.Length()})
		g.adj[seg.To] = append(g.adj[seg.To], edge{to: seg.From, seg: int32(seg.ID), w: seg.Length()})
	}
	return g
}

// NewGraphConnected builds the adjacency structure and additionally adds
// pedestrian connector edges between every pair of vertices closer than
// snap, weighted by their Euclidean distance. This joins streets whose
// geometries cross or nearly touch without sharing a vertex.
func NewGraphConnected(net *network.Network, snap float64) *Graph {
	g := NewGraph(net)
	if snap <= 0 || net.NumVertices() == 0 {
		return g
	}
	// Bucket vertices on a grid of cell size snap; candidates live in
	// the 3×3 cell block around each vertex.
	type cellKey struct{ x, y int32 }
	buckets := make(map[cellKey][]network.VertexID)
	keyOf := func(v network.VertexID) cellKey {
		p := net.Vertex(v)
		return cellKey{int32(math.Floor(p.X / snap)), int32(math.Floor(p.Y / snap))}
	}
	for v := 0; v < net.NumVertices(); v++ {
		k := keyOf(network.VertexID(v))
		buckets[k] = append(buckets[k], network.VertexID(v))
	}
	for v := 0; v < net.NumVertices(); v++ {
		vid := network.VertexID(v)
		pv := net.Vertex(vid)
		k := keyOf(vid)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, u := range buckets[cellKey{k.x + dx, k.y + dy}] {
					if u <= vid {
						continue // add each pair once, skip self
					}
					d := pv.Dist(net.Vertex(u))
					if d <= snap {
						g.adj[vid] = append(g.adj[vid], edge{to: u, seg: connectorSeg, w: d})
						g.adj[u] = append(g.adj[u], edge{to: vid, seg: connectorSeg, w: d})
					}
				}
			}
		}
	}
	return g
}

// Network returns the underlying road network.
func (g *Graph) Network() *network.Network { return g.net }

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	v    network.VertexID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Path is a shortest path between two vertices.
type Path struct {
	Vertices []network.VertexID
	Segments []network.SegmentID
	Length   float64
}

// ErrUnreachable is returned when no path connects the endpoints.
var ErrUnreachable = errors.New("route: vertices not connected")

// ShortestPath runs Dijkstra from src and reconstructs the path to dst.
func (g *Graph) ShortestPath(src, dst network.VertexID) (Path, error) {
	if int(src) >= len(g.adj) || int(dst) >= len(g.adj) {
		return Path{}, fmt.Errorf("route: vertex out of range (src=%d dst=%d of %d)", src, dst, len(g.adj))
	}
	dist, prevV, prevS := g.dijkstra(src, dst)
	if math.IsInf(dist[dst], 1) {
		return Path{}, fmt.Errorf("%w: %d -> %d", ErrUnreachable, src, dst)
	}
	return g.reconstruct(src, dst, dist, prevV, prevS), nil
}

// ShortestDistances runs Dijkstra from src to every vertex, returning the
// distance slice (math.Inf(1) for unreachable vertices).
func (g *Graph) ShortestDistances(src network.VertexID) []float64 {
	dist, _, _ := g.dijkstra(src, network.VertexID(math.MaxUint32))
	return dist
}

// dijkstra computes shortest distances from src; when stop is a valid
// vertex the search may terminate once it is settled.
func (g *Graph) dijkstra(src, stop network.VertexID) (dist []float64, prevV []int32, prevS []int32) {
	n := len(g.adj)
	dist = make([]float64, n)
	prevV = make([]int32, n)
	prevS = make([]int32, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevV[i] = -1
		prevS[i] = -1
	}
	dist[src] = 0
	q := pq{{v: src, dist: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.v] {
			continue // stale entry
		}
		if it.v == stop {
			return dist, prevV, prevS
		}
		for _, e := range g.adj[it.v] {
			if nd := it.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				prevV[e.to] = int32(it.v)
				prevS[e.to] = e.seg
				heap.Push(&q, pqItem{v: e.to, dist: nd})
			}
		}
	}
	return dist, prevV, prevS
}

func (g *Graph) reconstruct(src, dst network.VertexID, dist []float64, prevV, prevS []int32) Path {
	var vs []network.VertexID
	var segs []network.SegmentID
	for v := dst; ; {
		vs = append(vs, v)
		if v == src {
			break
		}
		if prevS[v] != connectorSeg {
			segs = append(segs, network.SegmentID(prevS[v]))
		}
		v = network.VertexID(prevV[v])
	}
	// Reverse into src→dst order.
	for i, j := 0, len(vs)-1; i < j; i, j = i+1, j-1 {
		vs[i], vs[j] = vs[j], vs[i]
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return Path{Vertices: vs, Segments: segs, Length: dist[dst]}
}

// Stop is one street visit of a recommended tour.
type Stop struct {
	Street   network.StreetID
	Name     string
	Interest float64
	// Approach is the path walked from the previous stop (empty for the
	// first stop).
	Approach Path
}

// Unreached records a candidate street the planner had to drop because
// no path connects it to the tour — it lives in a different connected
// component of the graph. It is distinct from streets that were merely
// over budget: those are reachable and simply omitted.
type Unreached struct {
	Street   network.StreetID
	Name     string
	Interest float64
}

// Tour is a recommended walking route over streets of interest.
type Tour struct {
	Stops []Stop
	// Length is the total walking length: approach paths plus the
	// traversed length of every visited street.
	Length float64
	// Interest is the summed interest of the visited streets.
	Interest float64
	// Unreached lists the candidate streets in no connected component of
	// the tour, in candidate order. Callers that must visit everything
	// can rebuild the graph with a larger connector snap radius (see
	// NewGraphConnected) and re-plan.
	Unreached []Unreached
}

// Candidate pairs a street with its interest score; the k-SOI answer in
// planner form.
type Candidate struct {
	Street   network.StreetID
	Interest float64
}

// Recommend plans a tour over the candidate streets: it starts at the
// most interesting street and greedily appends the street with the
// highest interest-per-detour ratio until the length budget is exhausted.
// Unreachable candidates are skipped. At least one stop is always
// returned when any candidate exists, even if its street alone exceeds
// the budget.
func Recommend(g *Graph, candidates []Candidate, budget float64) (Tour, error) {
	if len(candidates) == 0 {
		return Tour{}, errors.New("route: no candidate streets")
	}
	if budget <= 0 {
		return Tour{}, fmt.Errorf("route: non-positive budget %v", budget)
	}
	// Pick the start: the highest-interest candidate.
	start := 0
	for i, c := range candidates {
		if c.Interest > candidates[start].Interest {
			start = i
		}
	}
	visited := map[int]bool{start: true}
	startStreet := g.net.Street(candidates[start].Street)
	tour := Tour{
		Stops: []Stop{{
			Street:   candidates[start].Street,
			Name:     startStreet.Name,
			Interest: candidates[start].Interest,
		}},
		Length:   startStreet.Length(),
		Interest: candidates[start].Interest,
	}
	// Current position: the end vertex of the last visited street.
	cur := streetEnd(g.net, candidates[start].Street)
	for len(visited) < len(candidates) {
		dist, prevV, prevS := g.dijkstra(cur, network.VertexID(math.MaxUint32))
		bestIdx := -1
		var bestRatio float64
		var bestPath Path
		for i, c := range candidates {
			if visited[i] {
				continue
			}
			entry := streetStart(g.net, c.Street)
			d := dist[entry]
			if math.IsInf(d, 1) {
				continue
			}
			st := g.net.Street(c.Street)
			cost := d + st.Length()
			if tour.Length+cost > budget {
				continue
			}
			ratio := c.Interest / (cost + 1e-12)
			if bestIdx == -1 || ratio > bestRatio {
				bestIdx = i
				bestRatio = ratio
				bestPath = g.reconstruct(cur, entry, dist, prevV, prevS)
			}
		}
		if bestIdx == -1 {
			break // nothing reachable fits the budget
		}
		c := candidates[bestIdx]
		st := g.net.Street(c.Street)
		visited[bestIdx] = true
		tour.Stops = append(tour.Stops, Stop{
			Street:   c.Street,
			Name:     st.Name,
			Interest: c.Interest,
			Approach: bestPath,
		})
		tour.Length += bestPath.Length + st.Length()
		tour.Interest += c.Interest
		cur = streetEnd(g.net, c.Street)
	}
	if len(visited) < len(candidates) {
		// Classify the leftovers: reachability is a component property of
		// the undirected graph, so one distance pass from the final
		// position settles it for every remaining candidate.
		dist, _, _ := g.dijkstra(cur, network.VertexID(math.MaxUint32))
		for i, c := range candidates {
			if visited[i] {
				continue
			}
			if math.IsInf(dist[streetStart(g.net, c.Street)], 1) {
				tour.Unreached = append(tour.Unreached, Unreached{
					Street:   c.Street,
					Name:     g.net.Street(c.Street).Name,
					Interest: c.Interest,
				})
			}
		}
	}
	return tour, nil
}

// streetStart returns the first vertex of the street's segment path.
func streetStart(net *network.Network, id network.StreetID) network.VertexID {
	return net.Segment(net.Street(id).Segments[0]).From
}

// streetEnd returns the last vertex of the street's segment path.
func streetEnd(net *network.Network, id network.StreetID) network.VertexID {
	segs := net.Street(id).Segments
	return net.Segment(segs[len(segs)-1]).To
}
