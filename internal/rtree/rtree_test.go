package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/grid"
)

func randomPoints(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	return pts
}

func TestBuildEmpty(t *testing.T) {
	tr, err := Build(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if got := tr.WithinPoint(nil, geo.Pt(0, 0), 1); len(got) != 0 {
		t.Fatalf("query on empty tree = %v", got)
	}
	if got := tr.WithinSegment(nil, geo.Segment{A: geo.Pt(0, 0), B: geo.Pt(1, 1)}, 1); len(got) != 0 {
		t.Fatalf("segment query on empty tree = %v", got)
	}
}

func TestBuildBadFanout(t *testing.T) {
	if _, err := Build(randomPoints(rand.New(rand.NewSource(1)), 5), Config{Fanout: 1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildSinglePoint(t *testing.T) {
	tr, err := Build([]geo.Point{geo.Pt(3, 4)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d", tr.Height())
	}
	if got := tr.WithinPoint(nil, geo.Pt(0, 0), 5); len(got) != 1 || got[0] != 0 {
		t.Fatalf("got %v", got)
	}
	if got := tr.WithinPoint(nil, geo.Pt(0, 0), 4.9); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestStructureInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, n := range []int{1, 2, 15, 16, 17, 100, 1000, 5000} {
		for _, fanout := range []int{2, 4, 16, 64} {
			tr, err := Build(randomPoints(rng, n), Config{Fanout: fanout})
			if err != nil {
				t.Fatal(err)
			}
			total, err := tr.validate()
			if err != nil {
				t.Fatalf("n=%d fanout=%d: %v", n, fanout, err)
			}
			if total != n {
				t.Fatalf("n=%d fanout=%d: %d points reachable", n, fanout, total)
			}
		}
	}
}

func sortedIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Property: range queries agree exactly with brute force.
func TestWithinPointBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 30; trial++ {
		pts := randomPoints(rng, rng.Intn(800)+1)
		tr, err := Build(pts, Config{Fanout: rng.Intn(30) + 2})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 20; probe++ {
			q := geo.Pt(rng.Float64()*12-1, rng.Float64()*12-1)
			eps := rng.Float64() * 3
			got := sortedIDs(tr.WithinPoint(nil, q, eps))
			var want []uint32
			for i, p := range pts {
				if p.Dist(q) <= eps {
					want = append(want, uint32(i))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: ids differ at %d", trial, i)
				}
			}
		}
	}
}

func TestWithinSegmentBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		pts := randomPoints(rng, rng.Intn(800)+1)
		tr, err := Build(pts, Config{Fanout: rng.Intn(30) + 2})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 10; probe++ {
			seg := geo.Segment{
				A: geo.Pt(rng.Float64()*10, rng.Float64()*10),
				B: geo.Pt(rng.Float64()*10, rng.Float64()*10),
			}
			eps := rng.Float64() * 2
			got := sortedIDs(tr.WithinSegment(nil, seg, eps))
			var want []uint32
			for i, p := range pts {
				if seg.DistToPoint(p) <= eps {
					want = append(want, uint32(i))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: ids differ at %d", trial, i)
				}
			}
		}
	}
}

// Reusing the dst slice must append, not clobber.
func TestDstAppend(t *testing.T) {
	tr, err := Build([]geo.Point{geo.Pt(0, 0), geo.Pt(5, 5)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dst := []uint32{99}
	dst = tr.WithinPoint(dst, geo.Pt(0, 0), 1)
	if len(dst) != 2 || dst[0] != 99 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	tr, err := Build(randomPoints(rng, 10000), Config{Fanout: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 10^4 points at fanout 10 → height ~4-5 (STR may add one level).
	if h := tr.Height(); h < 4 || h > 6 {
		t.Fatalf("height = %d", h)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geo.Point, 50)
	for i := range pts {
		pts[i] = geo.Pt(1, 1) // all identical
	}
	tr, err := Build(pts, Config{Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.WithinPoint(nil, geo.Pt(1, 1), 0); len(got) != 50 {
		t.Fatalf("got %d hits, want all 50", len(got))
	}
	if _, err := tr.validate(); err != nil {
		t.Fatal(err)
	}
}

// The R-tree and the grid must agree on the ε-near point sets around
// segments (the geometric predicate both spatial substrates serve).
func TestAgreesWithGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 15; trial++ {
		pts := randomPoints(rng, rng.Intn(500)+20)
		tr, err := Build(pts, Config{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := grid.Build(grid.Config{CellSize: 0.3 + rng.Float64()}, pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 10; probe++ {
			seg := geo.Segment{
				A: geo.Pt(rng.Float64()*10, rng.Float64()*10),
				B: geo.Pt(rng.Float64()*10, rng.Float64()*10),
			}
			eps := rng.Float64() * 1.5
			fromTree := sortedIDs(tr.WithinSegment(nil, seg, eps))
			var fromGrid []uint32
			epsSq := eps * eps
			for _, cid := range g.CellsNearSegment(seg, eps) {
				for _, m := range g.CellAt(cid).Members {
					if seg.DistToPointSq(pts[m]) <= epsSq {
						fromGrid = append(fromGrid, m)
					}
				}
			}
			fromGrid = sortedIDs(fromGrid)
			if len(fromTree) != len(fromGrid) {
				t.Fatalf("trial %d: tree %d vs grid %d hits", trial, len(fromTree), len(fromGrid))
			}
			for i := range fromTree {
				if fromTree[i] != fromGrid[i] {
					t.Fatalf("trial %d: id mismatch at %d", trial, i)
				}
			}
		}
	}
}
