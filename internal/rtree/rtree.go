// Package rtree implements a static, bulk-loaded R-tree over points using
// Sort-Tile-Recursive (STR) packing. The paper's related work builds
// spatio-textual indexes on R-trees (Section 2.1, e.g. the IR-tree
// family); this package provides that classic substrate as an alternative
// to the uniform grid for the geometric primitives the SOI algorithms
// need: range queries around points and around street segments.
//
// The tree is immutable after Build and safe for concurrent queries.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// DefaultFanout is the node capacity used when Config leaves it zero.
const DefaultFanout = 16

// Config controls tree construction.
type Config struct {
	// Fanout is the maximum number of children per node (and points per
	// leaf); defaults to DefaultFanout.
	Fanout int
}

// node is one R-tree node. Leaves hold point indices; internal nodes hold
// child node indices. All nodes live in one slice for locality.
type node struct {
	box      geo.Rect
	leaf     bool
	children []int32 // child node indices, or point ids for leaves
}

// Tree is a static R-tree over points.
type Tree struct {
	pts   []geo.Point
	nodes []node
	root  int32
}

// Build bulk-loads the tree from the points with STR packing.
func Build(pts []geo.Point, cfg Config) (*Tree, error) {
	fanout := cfg.Fanout
	if fanout == 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		return nil, fmt.Errorf("rtree: fanout %d below 2", fanout)
	}
	t := &Tree{pts: pts}
	if len(pts) == 0 {
		t.root = -1
		return t, nil
	}

	// Level 0: pack points into leaves with STR: sort by x, slice into
	// vertical runs, sort each run by y, cut into leaves.
	ids := make([]int32, len(pts))
	for i := range ids {
		ids[i] = int32(i)
	}
	leaves := t.packLevel(ids, fanout, true)

	// Upper levels: repeatedly pack node indices until one root remains.
	level := leaves
	for len(level) > 1 {
		level = t.packLevel(level, fanout, false)
	}
	t.root = level[0]
	return t, nil
}

// packLevel groups the given items (point ids when leaf, node indices
// otherwise) into nodes of at most fanout entries using STR tiling, and
// returns the indices of the created nodes.
func (t *Tree) packLevel(items []int32, fanout int, leaf bool) []int32 {
	n := len(items)
	nNodes := (n + fanout - 1) / fanout
	nSlices := int(math.Ceil(math.Sqrt(float64(nNodes))))
	sliceSize := nSlices * fanout

	centerOf := func(id int32) geo.Point {
		if leaf {
			return t.pts[id]
		}
		return t.nodes[id].box.Center()
	}
	sort.Slice(items, func(i, j int) bool {
		a, b := centerOf(items[i]), centerOf(items[j])
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})

	var out []int32
	for s := 0; s < n; s += sliceSize {
		e := s + sliceSize
		if e > n {
			e = n
		}
		run := items[s:e]
		sort.Slice(run, func(i, j int) bool {
			a, b := centerOf(run[i]), centerOf(run[j])
			if a.Y != b.Y {
				return a.Y < b.Y
			}
			return a.X < b.X
		})
		for o := 0; o < len(run); o += fanout {
			oe := o + fanout
			if oe > len(run) {
				oe = len(run)
			}
			chunk := run[o:oe]
			nd := node{leaf: leaf, children: append([]int32(nil), chunk...)}
			nd.box = t.boxOf(chunk, leaf)
			t.nodes = append(t.nodes, nd)
			out = append(out, int32(len(t.nodes)-1))
		}
	}
	return out
}

func (t *Tree) boxOf(items []int32, leaf bool) geo.Rect {
	var box geo.Rect
	for i, id := range items {
		var r geo.Rect
		if leaf {
			p := t.pts[id]
			r = geo.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
		} else {
			r = t.nodes[id].box
		}
		if i == 0 {
			box = r
		} else {
			box = box.Union(r)
		}
	}
	return box
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Height returns the number of levels (0 for an empty tree).
func (t *Tree) Height() int {
	if t.root < 0 {
		return 0
	}
	h := 1
	n := &t.nodes[t.root]
	for !n.leaf {
		h++
		n = &t.nodes[n.children[0]]
	}
	return h
}

// WithinPoint appends to dst the ids of all points within eps of q and
// returns the extended slice.
func (t *Tree) WithinPoint(dst []uint32, q geo.Point, eps float64) []uint32 {
	if t.root < 0 {
		return dst
	}
	epsSq := eps * eps
	var stack []int32
	stack = append(stack, t.root)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[ni]
		if nd.box.MinDistToPoint(q) > eps {
			continue
		}
		if nd.leaf {
			for _, id := range nd.children {
				if t.pts[id].DistSq(q) <= epsSq {
					dst = append(dst, uint32(id))
				}
			}
			continue
		}
		stack = append(stack, nd.children...)
	}
	return dst
}

// WithinSegment appends to dst the ids of all points within eps of the
// segment and returns the extended slice. This is the geometric predicate
// of the paper's Definition 1 (POIs within ε of a street segment).
func (t *Tree) WithinSegment(dst []uint32, seg geo.Segment, eps float64) []uint32 {
	if t.root < 0 {
		return dst
	}
	epsSq := eps * eps
	var stack []int32
	stack = append(stack, t.root)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[ni]
		if nd.box.DistToSegment(seg) > eps {
			continue
		}
		if nd.leaf {
			for _, id := range nd.children {
				if seg.DistToPointSq(t.pts[id]) <= epsSq {
					dst = append(dst, uint32(id))
				}
			}
			continue
		}
		stack = append(stack, nd.children...)
	}
	return dst
}

// validate checks the structural invariants; used by tests. It returns
// the number of points reachable from the root.
func (t *Tree) validate() (int, error) {
	if t.root < 0 {
		if len(t.pts) != 0 {
			return 0, fmt.Errorf("rtree: %d points but no root", len(t.pts))
		}
		return 0, nil
	}
	seen := make(map[int32]bool)
	var walk func(ni int32) (int, error)
	walk = func(ni int32) (int, error) {
		nd := &t.nodes[ni]
		if len(nd.children) == 0 {
			return 0, fmt.Errorf("rtree: empty node %d", ni)
		}
		if nd.leaf {
			total := 0
			for _, id := range nd.children {
				if seen[id] {
					return 0, fmt.Errorf("rtree: point %d in two leaves", id)
				}
				seen[id] = true
				p := t.pts[id]
				if !nd.box.Contains(p) {
					return 0, fmt.Errorf("rtree: point %d outside its leaf box", id)
				}
				total++
			}
			return total, nil
		}
		total := 0
		for _, ci := range nd.children {
			child := &t.nodes[ci]
			u := nd.box.Union(child.box)
			if u != nd.box {
				return 0, fmt.Errorf("rtree: child box escapes parent at node %d", ni)
			}
			sub, err := walk(ci)
			if err != nil {
				return 0, err
			}
			total += sub
		}
		return total, nil
	}
	return walk(t.root)
}
