package core

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteKth computes the k-th largest value of a map, or 0 when fewer than
// k entries exist.
func bruteKth(m map[uint32]float64, k int) float64 {
	if len(m) < k {
		return 0
	}
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	return vals[k-1]
}

func TestStreetTopKBasic(t *testing.T) {
	tk := newStreetTopK(2)
	if got := tk.Bound(); got != 0 {
		t.Fatalf("empty Bound = %v", got)
	}
	tk.Update(1, 5)
	if got := tk.Bound(); got != 0 {
		t.Fatalf("one-street Bound = %v", got)
	}
	tk.Update(2, 3)
	if got := tk.Bound(); got != 3 {
		t.Fatalf("Bound = %v, want 3", got)
	}
	tk.Update(3, 4) // evicts street 2
	if got := tk.Bound(); got != 4 {
		t.Fatalf("Bound = %v, want 4", got)
	}
	tk.Update(2, 10) // street 2 re-enters, evicting street 3
	if got := tk.Bound(); got != 5 {
		t.Fatalf("Bound = %v, want 5", got)
	}
	// Same-street improvement.
	tk.Update(1, 20)
	if got := tk.Bound(); got != 10 {
		t.Fatalf("Bound = %v, want 10", got)
	}
	// Non-improving update is ignored.
	tk.Update(1, 1)
	if got := tk.Bound(); got != 10 {
		t.Fatalf("Bound after no-op update = %v, want 10", got)
	}
}

func TestStreetTopKK1(t *testing.T) {
	tk := newStreetTopK(1)
	tk.Update(7, 2)
	if got := tk.Bound(); got != 2 {
		t.Fatalf("Bound = %v", got)
	}
	tk.Update(8, 1)
	if got := tk.Bound(); got != 2 {
		t.Fatalf("Bound = %v", got)
	}
	tk.Update(8, 9)
	if got := tk.Bound(); got != 9 {
		t.Fatalf("Bound = %v", got)
	}
}

// Property: against a brute-force oracle over random increase-only
// updates, the lazy structure always reports the exact k-th largest
// per-street best value.
func TestStreetTopKAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(5) + 1
		tk := newStreetTopK(k)
		oracle := make(map[uint32]float64)
		for step := 0; step < 300; step++ {
			street := uint32(rng.Intn(20))
			v := rng.Float64() * 100
			tk.Update(street, v)
			if v > oracle[street] {
				oracle[street] = v
			}
			want := bruteKth(oracle, k)
			if got := tk.Bound(); got != want {
				t.Fatalf("trial %d step %d: Bound = %v, want %v (k=%d)", trial, step, got, want, k)
			}
		}
	}
}
