package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
)

// propertyQueries builds a mixed query workload over a random scenario,
// deliberately including the edge shapes the engine must handle: k larger
// than the street count, ε larger than the network extent, and keyword
// sets unknown to the corpus.
func propertyQueries(rng *rand.Rand, ix *Index) []Query {
	nStreets := ix.Network().NumStreets()
	return []Query{
		{Keywords: []string{"shop"}, K: rng.Intn(4) + 1, Epsilon: 0.05 + rng.Float64()*0.4},
		{Keywords: []string{"shop", "food"}, K: nStreets + 7, Epsilon: 0.05 + rng.Float64()*0.4},
		// The scenario fits in a 10×10 box; ε=40 covers it from anywhere.
		{Keywords: []string{"museum", "park"}, K: rng.Intn(4) + 1, Epsilon: 40},
		{Keywords: []string{"zeppelin", "submarine"}, K: 3, Epsilon: 0.2},
		{Keywords: []string{"school", "shop", "museum"}, K: nStreets, Epsilon: 0.01},
	}
}

// TestPropertyStrategiesMatchBaseline is the property-based equivalence
// test: on random scenarios, both access schedules must agree with the
// baseline ranking, bit-exactly with each other, and behave sensibly on
// the edge-case queries.
func TestPropertyStrategiesMatchBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		ix := randomScenario(rng)
		for _, q := range propertyQueries(rng, ix) {
			ca, _, err := ix.SOIWithStrategy(q, CostAware)
			if err != nil {
				t.Fatal(err)
			}
			rr, _, err := ix.SOIWithStrategy(q, RoundRobin)
			if err != nil {
				t.Fatal(err)
			}
			// The two schedules traverse differently but fold masses
			// canonically, so their answers are identical to the bit.
			requireSameResults(t, "cost-aware vs round-robin", ca, rr)
			bl, _, err := ix.Baseline(q)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, "strategies vs baseline", ca, bl)
			if len(ca) > q.K {
				t.Fatalf("got %d results for k=%d", len(ca), q.K)
			}
			if len(ca) > ix.Network().NumStreets() {
				t.Fatalf("got %d results for %d streets", len(ca), ix.Network().NumStreets())
			}
		}
	}
}

// TestPropertyInvalidQueriesAgree: queries rejected by validation (empty
// keyword set, k=0, non-positive ε) must fail identically across both
// schedules and the baseline, never panic or return partial results.
func TestPropertyInvalidQueriesAgree(t *testing.T) {
	ix := buildFixture(t)
	invalid := []Query{
		{K: 1, Epsilon: 0.1},                            // empty keywords
		{Keywords: []string{}, K: 1, Epsilon: 0.1},      // empty keywords
		{Keywords: []string{"shop"}, K: 0, Epsilon: 1},  // k = 0
		{Keywords: []string{"shop"}, K: -3, Epsilon: 1}, // negative k
		{Keywords: []string{"shop"}, K: 1, Epsilon: 0},  // zero ε
	}
	for _, q := range invalid {
		res, _, errCA := ix.SOIWithStrategy(q, CostAware)
		if errCA == nil || res != nil {
			t.Fatalf("cost-aware accepted %+v", q)
		}
		_, _, errRR := ix.SOIWithStrategy(q, RoundRobin)
		_, _, errBL := ix.Baseline(q)
		if errRR == nil || errBL == nil {
			t.Fatalf("schedules disagree on %+v: rr=%v bl=%v", q, errRR, errBL)
		}
		if errCA.Error() != errRR.Error() || errCA.Error() != errBL.Error() {
			t.Fatalf("error text differs: %q / %q / %q", errCA, errRR, errBL)
		}
	}
}

// TestPropertyRankPrefix pins the invariant the batch executor's
// coalescing relies on: the top-k answer is bit-for-bit the first k
// entries of any larger-k answer for the same ⟨Ψ, ε⟩.
func TestPropertyRankPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 20; trial++ {
		ix := randomScenario(rng)
		eps := 0.05 + rng.Float64()*0.5
		kws := []string{"shop", "food"}
		big, _, err := ix.SOI(Query{Keywords: kws, K: 50, Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 3, 5, 8} {
			small, _, err := ix.SOI(Query{Keywords: kws, K: k, Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			want := big
			if len(want) > k {
				want = want[:k]
			}
			requireSameResults(t, "prefix", small, want)
		}
	}
}

// TestConcurrentSharedIndex is the core-level concurrency test: many
// goroutines evaluate a mixed workload (both schedules, shared ε-memos,
// a shared MassCache) against one Index, and every answer must equal the
// sequential one bit-for-bit. Run under -race this also proves the index
// read paths are race-free.
func TestConcurrentSharedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ix := randomScenario(rng)
	var queries []Query
	for i := 0; i < 12; i++ {
		queries = append(queries, Query{
			Keywords: [][]string{{"shop"}, {"food", "park"}, {"museum"}}[i%3],
			K:        i%5 + 1,
			Epsilon:  []float64{0.1, 0.25, 0.4}[i%3],
		})
	}
	strategies := []Strategy{CostAware, RoundRobin}
	want := make([][]StreetResult, len(queries)*len(strategies))
	for qi, q := range queries {
		for si, strat := range strategies {
			res, _, err := ix.SOIWithStrategy(q, strat)
			if err != nil {
				t.Fatal(err)
			}
			want[qi*len(strategies)+si] = res
		}
	}

	const goroutines = 16
	mc := NewMassCache(0)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for qi, q := range queries {
					for si, strat := range strategies {
						// Half the goroutines share a MassCache, half
						// run standalone; both must agree.
						cache := mc
						if g%2 == 0 {
							cache = nil
						}
						res, _, err := ix.SOIWithCache(q, strat, cache)
						if err != nil {
							errs <- err
							return
						}
						if !bitEqualResults(res, want[qi*len(strategies)+si]) {
							errs <- &mismatchError{goroutine: g, query: qi}
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ goroutine, query int }

func (e *mismatchError) Error() string {
	return "concurrent result mismatch"
}

// requireSameResults asserts two result lists are identical to the bit.
func requireSameResults(t *testing.T, label string, got, want []StreetResult) {
	t.Helper()
	if !bitEqualResults(got, want) {
		t.Fatalf("%s: results differ\n got: %+v\nwant: %+v", label, got, want)
	}
}

func bitEqualResults(a, b []StreetResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Street != b[i].Street ||
			a[i].BestSegment != b[i].BestSegment ||
			math.Float64bits(a[i].Interest) != math.Float64bits(b[i].Interest) ||
			math.Float64bits(a[i].Mass) != math.Float64bits(b[i].Mass) {
			return false
		}
	}
	return true
}

// TestGoldenTieBreak is the deterministic tie-breaking audit: six
// congruent streets carry identical POI constellations, so their
// interests are exactly equal, and every evaluation path must break the
// tie by ascending street id — on every repetition, regardless of map
// iteration order.
func TestGoldenTieBreak(t *testing.T) {
	nb := network.NewBuilder()
	pb := poi.NewBuilder(nil)
	const streets = 6
	for i := 0; i < streets; i++ {
		// Spacing 3.0 keeps the ε-neighborhoods disjoint.
		y := float64(i) * 3
		nb.AddStreet("tied", []geo.Point{geo.Pt(0, y), geo.Pt(2, y)})
		pb.Add(geo.Pt(0.4, y+0.05), []string{"shop"})
		pb.Add(geo.Pt(1.1, y-0.05), []string{"shop"})
		pb.Add(geo.Pt(1.7, y+0.02), []string{"shop"})
	}
	net, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(net, pb.Build(), IndexConfig{CellSize: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: []string{"shop"}, K: 3, Epsilon: 0.2}
	golden := []network.StreetID{0, 1, 2}
	for rep := 0; rep < 25; rep++ {
		for _, strat := range []Strategy{CostAware, RoundRobin} {
			res, _, err := ix.SOIWithStrategy(q, strat)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != len(golden) {
				t.Fatalf("%v rep %d: %d results, want %d", strat, rep, len(res), len(golden))
			}
			for i, want := range golden {
				if res[i].Street != want {
					t.Fatalf("%v rep %d rank %d: street %d, want %d (ties must break by id)",
						strat, rep, i, res[i].Street, want)
				}
			}
			for i := 1; i < len(res); i++ {
				if math.Float64bits(res[i].Interest) != math.Float64bits(res[0].Interest) {
					t.Fatalf("%v: interests not exactly tied: %v vs %v",
						strat, res[i].Interest, res[0].Interest)
				}
			}
		}
		bl, _, err := ix.Baseline(q)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range golden {
			if bl[i].Street != want {
				t.Fatalf("baseline rep %d rank %d: street %d, want %d", rep, i, bl[i].Street, want)
			}
		}
	}
}
