package core

import "container/heap"

// streetTopK maintains the k-th largest per-street best segment interest
// lower bound under increase-only updates. This realizes Algorithm 1's
// LBk = int−(ℓµ), using the observation that the µ-th segment of the
// ranked seen list (the first segment of the k-th distinct street) carries
// exactly the k-th largest per-street maximum.
//
// Implementation: a map from street to its current best value, plus a
// lazy-deletion min-heap over the current top-k streets.
type streetTopK struct {
	k     int
	best  map[uint32]float64 // street → best value seen
	inTop map[uint32]bool    // street currently counted in the top-k
	h     entryHeap          // min-heap over (street, value); may hold stale entries
	nTop  int                // number of streets currently in the top-k
}

type heapEntry struct {
	street uint32
	value  float64
}

type entryHeap []heapEntry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].value < h[j].value }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func newStreetTopK(k int) *streetTopK {
	return &streetTopK{
		k:     k,
		best:  make(map[uint32]float64),
		inTop: make(map[uint32]bool),
	}
}

// popStale removes heap entries that no longer reflect the current state:
// entries for streets out of the top set or with outdated values.
func (t *streetTopK) popStale() {
	for len(t.h) > 0 {
		top := t.h[0]
		if t.inTop[top.street] && t.best[top.street] == top.value {
			return
		}
		heap.Pop(&t.h)
	}
}

// Update raises the best value of street to v when it improves, and
// rebalances the top-k set.
func (t *streetTopK) Update(street uint32, v float64) {
	if cur, ok := t.best[street]; ok && v <= cur {
		return
	}
	t.best[street] = v
	if t.inTop[street] {
		// Value changed; the old heap entry is now stale. Push the fresh one.
		heap.Push(&t.h, heapEntry{street, v})
		return
	}
	if t.nTop < t.k {
		t.inTop[street] = true
		t.nTop++
		heap.Push(&t.h, heapEntry{street, v})
		return
	}
	t.popStale()
	if len(t.h) == 0 || v <= t.h[0].value {
		return
	}
	// Evict the current minimum and admit street.
	evicted := heap.Pop(&t.h).(heapEntry)
	delete(t.inTop, evicted.street)
	t.inTop[street] = true
	heap.Push(&t.h, heapEntry{street, v})
}

// Bound returns the current LBk: the k-th largest per-street best value,
// or 0 while fewer than k streets have been seen.
func (t *streetTopK) Bound() float64 {
	if t.nTop < t.k {
		return 0
	}
	t.popStale()
	if len(t.h) == 0 {
		return 0
	}
	return t.h[0].value
}
