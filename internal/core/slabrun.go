package core

import (
	"context"
	"sort"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/vocab"
)

// slabRun is the pooled per-query scratch of a SlabIndex evaluation. All
// per-segment, per-cell and per-street state lives in dense arrays
// stamped with a run epoch: a slot belongs to the current run only when
// its stamp equals the epoch, so "clearing" the state between runs is a
// single counter increment. Epoch zero is reserved for never-written
// slots; when the counter wraps, every stamp array is zeroed once.
//
// The run replicates soiRun's control flow exactly (cost-aware schedule);
// see the SlabIndex doc comment for the bit-identical contract.
type slabRun struct {
	six  *SlabIndex
	plan *slabPlan

	epoch uint32

	ctx   context.Context
	query vocab.Set
	k     int
	eps   float64
	tick  int
	mc    *MassCache
	psi   uint32

	// SL1: parallel cell-ordinal and weight arrays. For single-keyword
	// queries they alias the slab's inverted index directly.
	sl1Cell []int32
	sl1W    []float64
	// Multi-keyword SL1 scratch: per-ordinal accumulators and the owned
	// buffers the sorted list is built in.
	accW       []float64
	accStamp   []uint32
	accTouched []int32
	sl1CellBuf []int32
	sl1WBuf    []float64
	sl1Sorter  sl1Sorter

	p1, p2, p3 int

	// Per-segment state (sized to the segment count).
	segSeen      []uint32 // stamp: segment left the unseen state
	segFinal     []uint32 // stamp: exact mass known
	segMass      []float64
	segRemaining []int32

	// Per-(segment, cell) pair state (sized to len(plan.segCell)).
	visited []uint32 // stamp: cell visited for its segment
	contrib []float64

	seen []uint32 // segment ids in first-touch order

	topk  slabTopK // filter-phase LBk
	exact slabTopK // refine-phase exact top-k

	// Per-cell relevant-POI cache: resolved once per visited cell into the
	// shared relX/relY/relW arenas, delimited by [relStart, relEnd).
	relStamp         []uint32
	relStart, relEnd []uint32
	relX, relY, relW []float64
	mergeLo, mergeHi []uint32 // postings-merge list heads (≤ |query|)

	// Refine scratch: per-ordinal relevant weights, the candidate arrays
	// and the per-street best-segment table.
	cwVal      []float64
	cwStamp    []uint32
	candSid    []uint32
	candUB     []float64
	candSorter candSorter
	sbStamp    []uint32
	sbInterest []float64
	sbSeg      []uint32
	sbMass     []float64
	sbTouched  []uint32
	resSorter  resultSorter

	stats Stats
}

// grow returns a slice of length n, reusing s's storage when it is large
// enough. Fresh storage is zeroed by the runtime, which the stamp arrays
// rely on (epoch zero means never written).
func growU32(s []uint32, n int) []uint32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint32, n)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// begin prepares the run for one evaluation over the given plan: bumps
// the epoch, sizes every arena, resets the append buffers and builds SL1.
func (r *slabRun) begin(plan *slabPlan) {
	r.plan = plan
	six := r.six
	numSegs := len(six.segLen)
	numCells := six.slab.NumCells()
	numStreets := six.net.NumStreets()
	numPairs := len(plan.segCell)

	r.epoch++
	wrapped := r.epoch == 0
	if wrapped {
		r.epoch = 1
	}

	r.segSeen = growU32(r.segSeen, numSegs)
	r.segFinal = growU32(r.segFinal, numSegs)
	r.segMass = growF64(r.segMass, numSegs)
	r.segRemaining = growI32(r.segRemaining, numSegs)
	r.visited = growU32(r.visited, numPairs)
	r.contrib = growF64(r.contrib, numPairs)
	r.relStamp = growU32(r.relStamp, numCells)
	r.relStart = growU32(r.relStart, numCells)
	r.relEnd = growU32(r.relEnd, numCells)
	r.accW = growF64(r.accW, numCells)
	r.accStamp = growU32(r.accStamp, numCells)
	r.cwVal = growF64(r.cwVal, numCells)
	r.cwStamp = growU32(r.cwStamp, numCells)
	r.sbStamp = growU32(r.sbStamp, numStreets)
	r.sbInterest = growF64(r.sbInterest, numStreets)
	r.sbSeg = growU32(r.sbSeg, numStreets)
	r.sbMass = growF64(r.sbMass, numStreets)
	r.topk.init(r.k, numStreets)
	r.exact.init(r.k, numStreets)
	if wrapped {
		for _, s := range [][]uint32{r.segSeen, r.segFinal, r.visited, r.relStamp,
			r.accStamp, r.cwStamp, r.sbStamp, r.topk.bestStamp, r.topk.inTop,
			r.exact.bestStamp, r.exact.inTop} {
			for i := range s {
				s[i] = 0
			}
		}
	}

	r.seen = r.seen[:0]
	r.relX, r.relY, r.relW = r.relX[:0], r.relY[:0], r.relW[:0]
	r.accTouched = r.accTouched[:0]
	r.sbTouched = r.sbTouched[:0]
	r.p1, r.p2, r.p3 = 0, 0, 0
	r.tick = 0
	r.stats = Stats{TotalSegments: numSegs, TotalCells: numCells}

	r.buildSL1()
}

// release drops the per-evaluation references so a pooled run does not
// pin the caller's context or query beyond the evaluation.
func (r *slabRun) release() {
	r.ctx = nil
	r.query = nil
	r.mc = nil
	r.plan = nil
	r.sl1Cell = nil
	r.sl1W = nil
}

// buildSL1 mirrors Index.buildSL1 over the slab's vocab-major inverted
// index. A single-keyword list aliases the slab directly; multi-keyword
// accumulation sums each keyword's cell weights in query order (the same
// per-cell addition order as the map layout) and caps at the cell's total
// weight before sorting decreasingly by weight, ties by cell.
func (r *slabRun) buildSL1() {
	s := r.six.slab
	inRange := func(kw vocab.ID) bool { return int(kw) < s.VocabN }
	if len(r.query) == 1 {
		kw := r.query[0]
		if !inRange(kw) {
			r.sl1Cell, r.sl1W = nil, nil
			return
		}
		lo, hi := s.InvOff[kw], s.InvOff[kw+1]
		r.sl1Cell = s.InvCell[lo:hi]
		r.sl1W = s.InvWeight[lo:hi]
		return
	}
	for _, kw := range r.query {
		if !inRange(kw) {
			continue
		}
		for j := s.InvOff[kw]; j < s.InvOff[kw+1]; j++ {
			ord := s.InvCell[j]
			if r.accStamp[ord] != r.epoch {
				r.accStamp[ord] = r.epoch
				r.accW[ord] = 0
				r.accTouched = append(r.accTouched, ord)
			}
			r.accW[ord] += s.InvWeight[j]
		}
	}
	r.sl1CellBuf = r.sl1CellBuf[:0]
	r.sl1WBuf = r.sl1WBuf[:0]
	for _, ord := range r.accTouched {
		w := r.accW[ord]
		if tw := s.CellWeight[ord]; w > tw {
			w = tw
		}
		r.sl1CellBuf = append(r.sl1CellBuf, ord)
		r.sl1WBuf = append(r.sl1WBuf, w)
	}
	r.sl1Sorter.cells = r.sl1CellBuf
	r.sl1Sorter.weights = r.sl1WBuf
	sort.Sort(&r.sl1Sorter)
	r.sl1Cell = r.sl1CellBuf
	r.sl1W = r.sl1WBuf
}

// sl1Sorter orders parallel (cell ordinal, weight) slices decreasingly by
// weight, ties by ascending ordinal — the sortEntries order (ordinal
// order is cell-id order).
type sl1Sorter struct {
	cells   []int32
	weights []float64
}

func (s *sl1Sorter) Len() int { return len(s.cells) }
func (s *sl1Sorter) Less(i, j int) bool {
	if s.weights[i] != s.weights[j] {
		return s.weights[i] > s.weights[j]
	}
	return s.cells[i] < s.cells[j]
}
func (s *sl1Sorter) Swap(i, j int) {
	s.cells[i], s.cells[j] = s.cells[j], s.cells[i]
	s.weights[i], s.weights[j] = s.weights[j], s.weights[i]
}

// checkpoint mirrors soiRun.checkpoint: fault site visit plus periodic
// context poll.
func (r *slabRun) checkpoint(site string) error {
	if err := faults.InjectCtx(r.ctx, site); err != nil {
		return err
	}
	r.tick++
	if r.tick%cancelCheckEvery != 0 {
		return nil
	}
	return r.ctx.Err()
}

// segGeom reconstructs a segment's geometry from the flattened arrays.
func (r *slabRun) segGeom(sid uint32) geo.Segment {
	six := r.six
	return geo.Segment{
		A: geo.Point{X: six.segAX[sid], Y: six.segAY[sid]},
		B: geo.Point{X: six.segBX[sid], Y: six.segBY[sid]},
	}
}

// relRange resolves the query-relevant POIs of a cell into the shared
// arenas, once per run (soiRun.relevantInCell). The POIs appear in
// ascending id order: single-keyword postings are already sorted, and the
// multi-keyword path merges the sorted postings ranges synchronously,
// deduplicating ids — the same order the map layout produces.
func (r *slabRun) relRange(ord int32) (uint32, uint32) {
	if r.relStamp[ord] == r.epoch {
		return r.relStart[ord], r.relEnd[ord]
	}
	r.relStamp[ord] = r.epoch
	lo := uint32(len(r.relX))
	s := r.six.slab
	kwLo, kwHi := s.KwOff[ord], s.KwOff[ord+1]
	if len(r.query) == 1 {
		if j := findKw(s.CellKw[kwLo:kwHi], r.query[0]); j >= 0 {
			pj := kwLo + uint32(j)
			r.appendRel(s.Postings[s.PostOff[pj]:s.PostOff[pj+1]])
		}
	} else {
		r.mergeLo = r.mergeLo[:0]
		r.mergeHi = r.mergeHi[:0]
		for _, kw := range r.query {
			j := findKw(s.CellKw[kwLo:kwHi], kw)
			if j < 0 {
				continue
			}
			pj := kwLo + uint32(j)
			if s.PostOff[pj] < s.PostOff[pj+1] {
				r.mergeLo = append(r.mergeLo, s.PostOff[pj])
				r.mergeHi = append(r.mergeHi, s.PostOff[pj+1])
			}
		}
		const sentinel = ^uint32(0)
		for {
			minID := sentinel
			for i, lo := range r.mergeLo {
				if lo < r.mergeHi[i] && s.Postings[lo] < minID {
					minID = s.Postings[lo]
				}
			}
			if minID == sentinel {
				break
			}
			for i, lo := range r.mergeLo {
				if lo < r.mergeHi[i] && s.Postings[lo] == minID {
					r.mergeLo[i]++
				}
			}
			r.relX = append(r.relX, s.ObjX[minID])
			r.relY = append(r.relY, s.ObjY[minID])
			r.relW = append(r.relW, s.ObjW[minID])
		}
	}
	hi := uint32(len(r.relX))
	r.relStart[ord], r.relEnd[ord] = lo, hi
	return lo, hi
}

// appendRel copies the POIs of one postings range into the arenas.
func (r *slabRun) appendRel(postings []uint32) {
	s := r.six.slab
	for _, m := range postings {
		r.relX = append(r.relX, s.ObjX[m])
		r.relY = append(r.relY, s.ObjY[m])
		r.relW = append(r.relW, s.ObjW[m])
	}
}

// findKw binary-searches a sorted keyword range for kw, returning its
// index or -1.
func findKw(kws []uint32, kw vocab.ID) int {
	lo, hi := 0, len(kws)
	for lo < hi {
		mid := (lo + hi) / 2
		if kws[mid] < kw {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(kws) && kws[lo] == kw {
		return lo
	}
	return -1
}

// ensureSeen initializes a segment's state on first touch, including the
// MassCache fast path (soiRun.state).
func (r *slabRun) ensureSeen(sid uint32) {
	if r.segSeen[sid] == r.epoch {
		return
	}
	r.segSeen[sid] = r.epoch
	r.seen = append(r.seen, sid)
	r.stats.SegmentsSeen++
	lo, hi := r.plan.segCellOff[sid], r.plan.segCellOff[sid+1]
	if lo == hi {
		r.segMass[sid] = 0
		r.segFinal[sid] = r.epoch
		r.stats.SegmentsFinal++
		return
	}
	if r.mc != nil {
		if m, ok := r.mc.getFinal(finalKey{sid: network.SegmentID(sid), psi: r.psi, eps: r.eps}); ok {
			r.segMass[sid] = m
			r.segFinal[sid] = r.epoch
			r.stats.SegmentsFinal++
			r.stats.SegmentCacheHits++
			if m > 0 {
				r.topk.update(r.six.segStreet[sid], Interest(m, r.six.segLen[sid], r.eps), r.epoch)
			}
			return
		}
	}
	r.segMass[sid] = 0
	r.segFinal[sid] = 0
	r.segRemaining[sid] = int32(hi - lo)
}

// updateInterest visits cell ord for segment sid (soiRun.updateInterest):
// locate the cell in the segment's canonical Cε(ℓ) range, mark it
// visited, and apply the visit.
func (r *slabRun) updateInterest(sid uint32, ord int32) {
	r.ensureSeen(sid)
	if r.segFinal[sid] == r.epoch {
		return
	}
	lo, hi := r.plan.segCellOff[sid], r.plan.segCellOff[sid+1]
	for j := lo; j < hi; j++ {
		if r.plan.segCell[j] == ord {
			if r.visited[j] == r.epoch {
				return
			}
			r.visited[j] = r.epoch
			r.segRemaining[sid]--
			r.applyVisit(sid, j, ord)
			return
		}
	}
}

// applyVisit computes one cell's mass contribution with the batched
// distance kernel and folds it into the segment state
// (soiRun.applyVisit). The kernel's per-point arithmetic is identical to
// DistToPointSq, and the POIs stream in the same order, so the
// contribution is the same float the map layout computes.
func (r *slabRun) applyVisit(sid uint32, pair uint32, ord int32) {
	r.stats.CellVisits++
	lo, hi := r.relRange(ord)
	seg := r.segGeom(sid)
	epsSq := r.eps * r.eps
	contrib := seg.AccumWeightsWithin(r.relX[lo:hi], r.relY[lo:hi], r.relW[lo:hi], epsSq)
	r.contrib[pair] = contrib
	r.segMass[sid] += contrib
	if r.segRemaining[sid] == 0 {
		r.finalizeMass(sid)
	}
	if r.segMass[sid] > 0 {
		r.topk.update(r.six.segStreet[sid], Interest(r.segMass[sid], r.six.segLen[sid], r.eps), r.epoch)
	}
}

// finalizeMass refolds the exact mass in canonical Cε(ℓ) order
// (soiRun.finalizeMass), making it a pure function of ⟨segment, Ψ, ε⟩.
func (r *slabRun) finalizeMass(sid uint32) {
	var m float64
	for _, c := range r.contrib[r.plan.segCellOff[sid]:r.plan.segCellOff[sid+1]] {
		m += c
	}
	r.segMass[sid] = m
	r.segFinal[sid] = r.epoch
	r.stats.SegmentsFinal++
	if r.mc != nil {
		r.mc.putFinal(finalKey{sid: network.SegmentID(sid), psi: r.psi, eps: r.eps}, m)
	}
}

// skipFinal advances a segment-list pointer past final segments.
func (r *slabRun) skipFinal(list []network.SegmentID, p int) int {
	for p < len(list) && r.segFinal[list[p]] == r.epoch {
		p++
	}
	return p
}

// unseenUpperBound computes UB = top(SL1)·top(SL2) / (2ε·top(SL3) + πε²)
// (soiRun.unseenUpperBound).
func (r *slabRun) unseenUpperBound() float64 {
	r.p2 = r.skipFinal(r.plan.sl2, r.p2)
	r.p3 = r.skipFinal(r.six.segsByLen, r.p3)
	if r.p1 >= len(r.sl1Cell) || r.p2 >= len(r.plan.sl2) || r.p3 >= len(r.six.segsByLen) {
		return 0
	}
	top1 := r.sl1W[r.p1]
	sid2 := r.plan.sl2[r.p2]
	top2 := float64(r.plan.segCellOff[sid2+1] - r.plan.segCellOff[sid2])
	top3 := r.six.segLen[r.six.segsByLen[r.p3]]
	return Interest(top1*top2, top3, r.eps)
}

// remainingCells mirrors soiRun.remainingCells.
func (r *slabRun) remainingCells(sid network.SegmentID) int {
	if r.segSeen[sid] == r.epoch {
		return int(r.segRemaining[sid])
	}
	return int(r.plan.segCellOff[sid+1] - r.plan.segCellOff[sid])
}

// finalizeSegment visits every remaining cell of a segment
// (soiRun.finalizeSegment).
func (r *slabRun) finalizeSegment(sid network.SegmentID) {
	r.stats.SegmentAccesses++
	r.ensureSeen(uint32(sid))
	r.drainSegment(uint32(sid))
}

// drainSegment visits the remaining cells of a seen segment in canonical
// order (soiRun.drainSegment).
func (r *slabRun) drainSegment(sid uint32) {
	lo, hi := r.plan.segCellOff[sid], r.plan.segCellOff[sid+1]
	for j := lo; j < hi; j++ {
		if r.segFinal[sid] == r.epoch {
			return
		}
		if r.visited[j] == r.epoch {
			continue
		}
		r.visited[j] = r.epoch
		r.segRemaining[sid]--
		r.applyVisit(sid, j, r.plan.segCell[j])
	}
}

// filter is the cost-aware main loop of Algorithm 1, identical in control
// flow to soiRun.filter (CostAware branch).
func (r *slabRun) filter() error {
	totalPairs := len(r.plan.segCell)
	numSegs := len(r.six.segLen)
	avgCells := 1.0
	if numSegs > 0 {
		avgCells = float64(totalPairs) / float64(numSegs)
	}
	monsterCells := int(4 * avgCells)
	cheapCells := int(avgCells / 2)
	if cheapCells < 4 {
		cheapCells = 4
	}
	for {
		r.stats.FilterIterations++
		if err := r.checkpoint(SiteFilter); err != nil {
			return err
		}
		if ub := r.unseenUpperBound(); ub == 0 || ub < r.topk.bound(r.epoch) {
			return nil
		}
		if r.p1 >= len(r.sl1Cell) {
			return nil
		}
		ord := r.sl1Cell[r.p1]
		r.p1++
		r.stats.CellAccesses++
		for _, sid := range r.plan.cellSeg[r.plan.cellSegOff[ord]:r.plan.cellSegOff[ord+1]] {
			r.updateInterest(sid, ord)
		}
		r.p3 = r.skipFinal(r.six.segsByLen, r.p3)
		for burst := 0; burst < 4 && r.p3 < len(r.six.segsByLen); burst++ {
			sid := r.six.segsByLen[r.p3]
			if r.remainingCells(sid) > cheapCells {
				break
			}
			r.stats.SL3Accesses++
			r.finalizeSegment(sid)
			r.p3++
			r.p3 = r.skipFinal(r.six.segsByLen, r.p3)
		}
		r.p2 = r.skipFinal(r.plan.sl2, r.p2)
		if r.p2 < len(r.plan.sl2) {
			sid := r.plan.sl2[r.p2]
			if int(r.plan.segCellOff[sid+1]-r.plan.segCellOff[sid]) >= monsterCells {
				r.stats.SL2Accesses++
				r.finalizeSegment(sid)
				r.p2++
			}
		}
	}
}

// refine extracts the k most interesting streets from the seen segments,
// identical in control flow to soiRun.refine; per-street and per-cell
// maps become stamped arrays, and candidates sort in owned buffers.
func (r *slabRun) refine(out []StreetResult) ([]StreetResult, error) {
	for i, ord := range r.sl1Cell {
		r.cwVal[ord] = r.sl1W[i]
		r.cwStamp[ord] = r.epoch
	}
	r.candSid = r.candSid[:0]
	r.candUB = r.candUB[:0]
	for _, sid := range r.seen {
		pot := r.segMass[sid]
		if r.segFinal[sid] != r.epoch {
			for j := r.plan.segCellOff[sid]; j < r.plan.segCellOff[sid+1]; j++ {
				if r.visited[j] != r.epoch {
					if ord := r.plan.segCell[j]; r.cwStamp[ord] == r.epoch {
						pot += r.cwVal[ord]
					}
				}
			}
		}
		if pot <= 0 {
			continue
		}
		r.candSid = append(r.candSid, sid)
		r.candUB = append(r.candUB, Interest(pot, r.six.segLen[sid], r.eps))
	}
	r.candSorter.sids = r.candSid
	r.candSorter.ubs = r.candUB
	sort.Sort(&r.candSorter)

	for i, sid := range r.candSid {
		if err := r.checkpoint(SiteRefine); err != nil {
			return nil, err
		}
		if bound := r.exact.bound(r.epoch); bound > 0 && r.candUB[i] < bound {
			break
		}
		if r.segFinal[sid] != r.epoch {
			r.stats.RefineDrained++
			r.drainSegment(sid)
		}
		mass := r.segMass[sid]
		if mass <= 0 {
			continue
		}
		in := Interest(mass, r.six.segLen[sid], r.eps)
		street := r.six.segStreet[sid]
		r.exact.update(street, in, r.epoch)
		if r.sbStamp[street] != r.epoch {
			r.sbStamp[street] = r.epoch
			r.sbTouched = append(r.sbTouched, street)
			r.sbInterest[street] = in
			r.sbSeg[street] = sid
			r.sbMass[street] = mass
		} else if in > r.sbInterest[street] || (in == r.sbInterest[street] && sid < r.sbSeg[street]) {
			r.sbInterest[street] = in
			r.sbSeg[street] = sid
			r.sbMass[street] = mass
		}
	}
	base := len(out)
	for _, street := range r.sbTouched {
		out = append(out, StreetResult{
			Street:      network.StreetID(street),
			Name:        r.six.net.Street(network.StreetID(street)).Name,
			Interest:    r.sbInterest[street],
			BestSegment: network.SegmentID(r.sbSeg[street]),
			Mass:        r.sbMass[street],
		})
	}
	r.resSorter.rs = out[base:]
	sort.Sort(&r.resSorter)
	r.resSorter.rs = nil
	if len(out)-base > r.k {
		out = out[:base+r.k]
	}
	return out, nil
}

// candSorter orders parallel (segment id, upper bound) slices decreasingly
// by bound, ties by ascending segment id.
type candSorter struct {
	sids []uint32
	ubs  []float64
}

func (s *candSorter) Len() int { return len(s.sids) }
func (s *candSorter) Less(i, j int) bool {
	if s.ubs[i] != s.ubs[j] {
		return s.ubs[i] > s.ubs[j]
	}
	return s.sids[i] < s.sids[j]
}
func (s *candSorter) Swap(i, j int) {
	s.sids[i], s.sids[j] = s.sids[j], s.sids[i]
	s.ubs[i], s.ubs[j] = s.ubs[j], s.ubs[i]
}

// resultSorter orders street results canonically (sortResults) without
// the sort.Slice closure allocation.
type resultSorter struct {
	rs []StreetResult
}

func (s *resultSorter) Len() int { return len(s.rs) }
func (s *resultSorter) Less(i, j int) bool {
	if s.rs[i].Interest != s.rs[j].Interest {
		return s.rs[i].Interest > s.rs[j].Interest
	}
	return s.rs[i].Street < s.rs[j].Street
}
func (s *resultSorter) Swap(i, j int) { s.rs[i], s.rs[j] = s.rs[j], s.rs[i] }

// slabTopK is streetTopK rebuilt on stamped arrays and a manual binary
// min-heap over parallel slices: per-street best values under
// increase-only updates, with bound() returning the k-th largest. The
// update/evict decisions compare the same floats as streetTopK, and
// bound() returns the minimum valid heap value — the same k-th largest —
// so the two implementations produce identical bound sequences.
type slabTopK struct {
	k    int
	nTop int

	best      []float64 // per street, valid when bestStamp matches
	bestStamp []uint32
	inTop     []uint32 // stamp: street counted in the top-k

	hs []uint32 // heap: street ids
	hv []float64
}

// init sizes the arrays for a run and empties the heap. Stamped slots
// from earlier runs invalidate themselves via the epoch.
func (t *slabTopK) init(k, numStreets int) {
	t.k = k
	t.nTop = 0
	t.best = growF64(t.best, numStreets)
	t.bestStamp = growU32(t.bestStamp, numStreets)
	t.inTop = growU32(t.inTop, numStreets)
	t.hs = t.hs[:0]
	t.hv = t.hv[:0]
}

func (t *slabTopK) push(s uint32, v float64) {
	t.hs = append(t.hs, s)
	t.hv = append(t.hv, v)
	i := len(t.hv) - 1
	for i > 0 {
		p := (i - 1) / 2
		if t.hv[p] <= t.hv[i] {
			break
		}
		t.hs[p], t.hs[i] = t.hs[i], t.hs[p]
		t.hv[p], t.hv[i] = t.hv[i], t.hv[p]
		i = p
	}
}

func (t *slabTopK) pop() (uint32, float64) {
	s, v := t.hs[0], t.hv[0]
	n := len(t.hv) - 1
	t.hs[0], t.hv[0] = t.hs[n], t.hv[n]
	t.hs, t.hv = t.hs[:n], t.hv[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && t.hv[l] < t.hv[min] {
			min = l
		}
		if r < n && t.hv[r] < t.hv[min] {
			min = r
		}
		if min == i {
			break
		}
		t.hs[i], t.hs[min] = t.hs[min], t.hs[i]
		t.hv[i], t.hv[min] = t.hv[min], t.hv[i]
		i = min
	}
	return s, v
}

// popStale drops heap entries that no longer reflect a street's current
// best value or top-k membership.
func (t *slabTopK) popStale(epoch uint32) {
	for len(t.hv) > 0 {
		s, v := t.hs[0], t.hv[0]
		if t.inTop[s] == epoch && t.best[s] == v {
			return
		}
		t.pop()
	}
}

// update raises street's best value to v when it improves (streetTopK.Update).
func (t *slabTopK) update(street uint32, v float64, epoch uint32) {
	if t.bestStamp[street] == epoch && v <= t.best[street] {
		return
	}
	t.best[street] = v
	t.bestStamp[street] = epoch
	if t.inTop[street] == epoch {
		t.push(street, v)
		return
	}
	if t.nTop < t.k {
		t.inTop[street] = epoch
		t.nTop++
		t.push(street, v)
		return
	}
	t.popStale(epoch)
	if len(t.hv) == 0 || v <= t.hv[0] {
		return
	}
	evicted, _ := t.pop()
	t.inTop[evicted] = 0
	t.inTop[street] = epoch
	t.push(street, v)
}

// bound returns the current k-th largest best value, or 0 while fewer
// than k streets have been seen (streetTopK.Bound).
func (t *slabTopK) bound(epoch uint32) float64 {
	if t.nTop < t.k {
		return 0
	}
	t.popStale(epoch)
	if len(t.hv) == 0 {
		return 0
	}
	return t.hv[0]
}
