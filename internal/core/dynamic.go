package core

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// This file adds dynamic POI maintenance to the index. The paper's
// motivation is that "the amount of crowdsourced geospatial content on
// the Web is constantly increasing"; the offline structures of Section
// 3.2.1 extend to appends without a rebuild: the new POI lands in its
// grid cell, the affected keywords of the global inverted index are
// re-sorted lazily, and the ε-augmented cell↔segment maps are
// invalidated only when a previously empty cell becomes populated.
//
// In-place mutation is superseded by the epoch-based ingest path
// (internal/ingest): under live traffic, writers append deltas and a
// publisher installs fresh immutable epochs via atomic pointer swap, so
// readers never observe a mutating index. AddPOI remains for offline,
// single-goroutine index maintenance (and as the differential harness's
// incremental-build reference); it is not reachable through the public
// soi API, whose live engines route every write through ingest.

// AddPOI appends a POI to the indexed corpus and updates every index
// structure. The keyword strings are interned into the corpus dictionary.
//
// AddPOI is the one operation outside the Index read-only contract: it
// mutates the grid, corpus and inverted index in place and must be
// externally serialized against every concurrent reader (stop query
// traffic, insert, then resume — or rebuild a fresh Index and swap it
// in). Batch insertions and re-Warm afterwards for best performance.
// New code serving concurrent queries should use internal/ingest
// instead, which publishes copy-on-write epochs and never mutates an
// index under readers.
func (ix *Index) AddPOI(loc geo.Point, keywords []string, weight float64) (poi.ID, error) {
	set := ix.pois.Dict().InternAll(keywords)
	return ix.addPOISet(loc, set, weight)
}

func (ix *Index) addPOISet(loc geo.Point, set vocab.Set, weight float64) (poi.ID, error) {
	if !ix.grid.Bounds().Contains(loc) {
		// The grid clamps out-of-bounds objects into border cells, which
		// would silently misplace the POI relative to ε-distance queries.
		return 0, fmt.Errorf("core: POI at %v outside the indexed bounds %v", loc, ix.grid.Bounds())
	}
	// The flattened slab no longer reflects the corpus after an append;
	// drop it so queries fall back to the (updated) map structures.
	ix.six = nil

	id := ix.pois.Append(loc, set, weight)
	p := ix.pois.Get(id)

	cid := ix.grid.CellIndex(loc)
	wasEmpty := ix.grid.CellAt(cid) == nil
	if err := ix.grid.Insert(uint32(id), loc, set); err != nil {
		return 0, err
	}
	ix.cellWeight[cid] += p.Weight
	for _, kw := range set {
		kp := ix.inv[kw]
		if kp == nil {
			kp = &kwPostings{weights: make(map[grid.CellID]float64)}
			ix.inv[kw] = kp
		}
		kp.weights[cid] += p.Weight
		kp.dirty = true
	}
	if wasEmpty {
		// A newly populated cell may now be within ε of segments whose
		// memoized Cε(ℓ) lists were computed without it; drop every
		// ε-dependent memo so the next query rebuilds them.
		ix.mu.Lock()
		ix.segCells = make(map[float64][][]grid.CellID)
		ix.cellSegs = make(map[float64]map[grid.CellID][]network.SegmentID)
		ix.sl2 = make(map[float64][]network.SegmentID)
		ix.mu.Unlock()
	}
	return id, nil
}
