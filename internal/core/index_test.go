package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
)

func TestSegmentsByCellCountSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	ix := randomScenario(rng)
	eps := 0.3
	sl2 := ix.SegmentsByCellCount(eps)
	sc := ix.SegmentCells(eps)
	if len(sl2) != ix.Network().NumSegments() {
		t.Fatalf("SL2 len = %d", len(sl2))
	}
	for i := 1; i < len(sl2); i++ {
		a, b := len(sc[sl2[i-1]]), len(sc[sl2[i]])
		if a < b {
			t.Fatalf("SL2 not sorted desc at %d: %d then %d", i, a, b)
		}
		if a == b && sl2[i-1] >= sl2[i] {
			t.Fatalf("SL2 tie not broken by id at %d", i)
		}
	}
	// Memoized: same slice on second call.
	again := ix.SegmentsByCellCount(eps)
	if &again[0] != &sl2[0] {
		t.Fatal("SL2 not memoized")
	}
}

func TestSegsByLenSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	ix := randomScenario(rng)
	net := ix.Network()
	prev := -1.0
	for _, sid := range ix.segsByLen {
		l := net.Segment(sid).Length()
		if l < prev {
			t.Fatalf("SL3 not sorted ascending: %v after %v", l, prev)
		}
		prev = l
	}
}

// buildSL1 must cap multi-keyword cell weights at the cell's total POI
// weight (Algorithm 1 line 2: min(|Pc|, Σψ I[ψ][c])).
func TestBuildSL1Cap(t *testing.T) {
	nb := network.NewBuilder()
	nb.AddStreet("s", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	net, _ := nb.Build()
	pb := poi.NewBuilder(nil)
	// One POI carrying both keywords: the naive sum over keywords counts
	// it twice, the cap brings it back to 1.
	pb.Add(geo.Pt(0.5, 0.01), []string{"shop", "food"})
	ix, err := NewIndex(net, pb.Build(), IndexConfig{CellSize: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	query, _ := ix.POIs().Dict().LookupAll([]string{"shop", "food"})
	sl1 := ix.buildSL1(query)
	if len(sl1) != 1 {
		t.Fatalf("SL1 = %v", sl1)
	}
	if sl1[0].Weight != 1 {
		t.Fatalf("SL1 weight = %v, want capped at 1", sl1[0].Weight)
	}
}

func TestBuildSL1SortedDesc(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ix := randomScenario(rng)
	query, _ := ix.POIs().Dict().LookupAll([]string{"shop", "food"})
	sl1 := ix.buildSL1(query)
	for i := 1; i < len(sl1); i++ {
		if sl1[i].Weight > sl1[i-1].Weight {
			t.Fatalf("SL1 not sorted desc at %d", i)
		}
	}
	// Unknown keyword → empty SL1.
	if got := ix.buildSL1(nil); len(got) != 0 {
		t.Fatalf("empty query SL1 = %v", got)
	}
}

// cellMassScan (the baseline's grid-only evaluation) must agree with the
// postings-based cellMassContribution on every (cell, segment) pair.
func TestCellMassScanAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 10; trial++ {
		ix := randomScenario(rng)
		query, _ := ix.POIs().Dict().LookupAll([]string{"shop", "museum"})
		eps := 0.1 + rng.Float64()*0.4
		sc := ix.SegmentCells(eps)
		for sid := 0; sid < ix.Network().NumSegments(); sid++ {
			for _, cid := range sc[sid] {
				cell := ix.Grid().CellAt(cid)
				a := ix.cellMassContribution(cell, query, network.SegmentID(sid), eps)
				b := ix.cellMassScan(cell, query, network.SegmentID(sid), eps)
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("trial %d seg %d cell %d: postings %v != scan %v", trial, sid, cid, a, b)
				}
			}
		}
	}
}

// The unseen upper bound must never underestimate the interest of an
// actually-unseen segment: run the filter to completion on random data
// and verify against the exhaustive oracle that no unseen segment beats
// the reported k-th street.
func TestUnseenBoundSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for trial := 0; trial < 15; trial++ {
		ix := randomScenario(rng)
		q := Query{Keywords: []string{"shop"}, K: 2, Epsilon: 0.1 + rng.Float64()*0.3}
		res, _, err := ix.SOI(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) < q.K {
			continue // fewer than k interesting streets exist
		}
		kth := res[len(res)-1].Interest
		ints, err := ix.AllSegmentInterests(q)
		if err != nil {
			t.Fatal(err)
		}
		// Count streets strictly above the k-th reported interest; there
		// must be fewer than k (otherwise SOI missed one).
		streetBest := map[network.StreetID]float64{}
		for sid, in := range ints {
			street := ix.Network().Segment(network.SegmentID(sid)).Street
			if in > streetBest[street] {
				streetBest[street] = in
			}
		}
		var above int
		for _, v := range streetBest {
			if v > kth+1e-9 {
				above++
			}
		}
		if above >= q.K {
			t.Fatalf("trial %d: %d streets beat the reported k-th interest %v", trial, above, kth)
		}
	}
}

func TestWarmCoversAllStructures(t *testing.T) {
	ix := buildFixture(t)
	ix.Warm(0.1)
	ix.mu.Lock()
	_, sc := ix.segCells[0.1]
	_, cs := ix.cellSegs[0.1]
	_, sl := ix.sl2[0.1]
	ix.mu.Unlock()
	if !sc || !cs || !sl {
		t.Fatalf("Warm left structures cold: segCells=%v cellSegs=%v sl2=%v", sc, cs, sl)
	}
}

// CellSegments must be the exact inverse of SegmentCells.
func TestCellSegmentInversion(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	ix := randomScenario(rng)
	eps := 0.25
	sc := ix.SegmentCells(eps)
	cs := ix.CellSegments(eps)
	// Forward: every (segment, cell) pair appears in the inverse.
	for sid, cells := range sc {
		for _, cid := range cells {
			found := false
			for _, s := range cs[cid] {
				if int(s) == sid {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("pair (%d, %d) missing from inverse", sid, cid)
			}
		}
	}
	// Backward: counts match.
	var fwd, bwd int
	for _, cells := range sc {
		fwd += len(cells)
	}
	for _, segs := range cs {
		bwd += len(segs)
	}
	if fwd != bwd {
		t.Fatalf("pair counts: forward %d, backward %d", fwd, bwd)
	}
}

// AllSegmentInterests must rank identically to sorting exact per-segment
// computations.
func TestAllSegmentInterestsConsistency(t *testing.T) {
	ix := buildFixture(t)
	q := Query{Keywords: []string{"shop"}, K: 3, Epsilon: 0.1}
	ints, err := ix.AllSegmentInterests(q)
	if err != nil {
		t.Fatal(err)
	}
	query, _ := ix.POIs().Dict().LookupAll(q.Keywords)
	for sid := range ints {
		want := ix.SegmentInterest(network.SegmentID(sid), query, q.Epsilon)
		if math.Abs(ints[sid]-want) > 1e-12 {
			t.Fatalf("segment %d: %v != %v", sid, ints[sid], want)
		}
	}
	// And the order is stable under sorting by interest.
	idx := make([]int, len(ints))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return ints[idx[i]] > ints[idx[j]] })
	if ints[idx[0]] < ints[idx[len(idx)-1]] {
		t.Fatal("sorting sanity failed")
	}
}

// Index must support concurrent queries after warming (run with -race to
// verify).
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	ix := randomScenario(rng)
	ix.Warm(0.2)
	q := Query{Keywords: []string{"shop", "food"}, K: 3, Epsilon: 0.2}
	want, _, err := ix.SOI(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got, _, err := ix.SOI(q)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want) {
					errs <- fmt.Errorf("concurrent result drift: %d vs %d", len(got), len(want))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
