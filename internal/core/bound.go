package core

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/network"
)

// deriveBounds resolves the grid extent for an index build: an explicit
// IndexConfig.Bounds wins (spatial shards pass the global extent so the
// cell lattice is shared), otherwise the union of the network bounds and
// every POI location is used so no object is clamped away.
func deriveBounds(net *network.Network, pts []geo.Point, cfg IndexConfig) (geo.Rect, error) {
	if cfg.Bounds != (geo.Rect{}) {
		if !cfg.Bounds.IsValid() {
			return geo.Rect{}, fmt.Errorf("core: invalid index bounds %v", cfg.Bounds)
		}
		return cfg.Bounds, nil
	}
	bounds := net.Bounds()
	for i, p := range pts {
		r := geo.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
		if i == 0 && net.NumVertices() == 0 {
			bounds = r
		} else {
			bounds = bounds.Union(r)
		}
	}
	if !bounds.IsValid() {
		return geo.Rect{}, fmt.Errorf("core: cannot derive bounds from empty network and corpus")
	}
	return bounds, nil
}

// UnseenBound returns the initial value of Algorithm 1's unseen upper
// bound for this index: UB = top(SL1)·top(SL2) / (2ε·top(SL3) + πε²)
// before any source-list pop. Because the source lists are untouched,
// the value bounds the interest of EVERY segment in the index, not just
// unseen ones: mass(ℓ) ≤ top(SL1)·|Cε(ℓ)| ≤ top(SL1)·top(SL2) and
// len(ℓ) ≥ top(SL3). The scatter-gather coordinator (internal/shard)
// uses it as each shard's static UB: once the merged global LBk strictly
// dominates a shard's UB, no street of that shard can reach the top-k
// and the shard is pruned without being evaluated.
//
// An exhausted list makes the bound zero: the index holds no
// query-relevant mass (SL1 empty) or no segments at all (SL2/SL3
// empty). The bound is deterministic — a pure function of ⟨index, Ψ, ε⟩.
func (ix *Index) UnseenBound(q Query) (float64, error) {
	query, err := ix.resolveQuery(q)
	if err != nil {
		return 0, err
	}
	sl1 := ix.buildSL1(query)
	if len(sl1) == 0 {
		return 0, nil
	}
	sl2 := ix.SegmentsByCellCount(q.Epsilon)
	sl3 := ix.segsByLen
	if len(sl2) == 0 || len(sl3) == 0 {
		return 0, nil
	}
	top2 := float64(len(ix.SegmentCells(q.Epsilon)[sl2[0]]))
	top3 := ix.net.Segment(sl3[0]).Length()
	return Interest(sl1[0].Weight*top2, top3, q.Epsilon), nil
}
