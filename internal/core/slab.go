package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// SlabIndex evaluates k-SOI queries over the flattened struct-of-arrays
// grid layout (grid.Slab) instead of the map-based Index structures. The
// evaluation is Algorithm 1 with the cost-aware access schedule, step for
// step the same as Index.SOIContext under CostAware: every float operation
// happens in the same order on the same values, so results (and all
// interest values in them) are bit-identical to the map layout. What
// changes is the machinery: source lists, postings and ε-augmented maps
// are offset ranges into contiguous arrays, the per-query state lives in a
// pooled scratch arena addressed by dense ordinals instead of maps, and
// the steady-state query path performs zero heap allocations.
//
// A SlabIndex is immutable and safe for concurrent use; each evaluation
// checks out a private scratch run from an internal pool.
type SlabIndex struct {
	net  *network.Network
	pois *poi.Corpus
	slab *grid.Slab

	// Flattened network: segment endpoint coordinates, cached lengths and
	// street ids, indexed by segment id.
	segAX, segAY []float64
	segBX, segBY []float64
	segLen       []float64
	segStreet    []uint32

	// segsByLen is SL3: segment ids sorted increasingly by length, ties by
	// id — the same order Index.segsByLen uses.
	segsByLen []network.SegmentID

	// mu guards the per-ε plan memos.
	mu    sync.RWMutex
	plans map[float64]*slabPlan

	pool sync.Pool // *slabRun
}

// slabPlan is the ε-dependent part of the index: the cell↔segment maps
// and SL2, in CSR form over cell ordinals. Plans are built once per ε and
// shared read-only by every run.
type slabPlan struct {
	// segCellOff[sid] .. segCellOff[sid+1] delimits segment sid's ε-near
	// cell ordinals in segCell — the canonical Cε(ℓ), in the exact order
	// grid.CellsNearSegment produces.
	segCellOff []uint32
	segCell    []int32
	// cellSegOff[ord] .. cellSegOff[ord+1] delimits cell ord's ε-near
	// segments in cellSeg, ascending by segment id (the map layout builds
	// its cell→segments lists by scanning segments in id order).
	cellSegOff []uint32
	cellSeg    []uint32
	// sl2 lists segment ids decreasingly by |Cε(ℓ)|, ties ascending by id.
	sl2 []network.SegmentID
}

// NewSlabIndex builds a slab index over a network and POI corpus. The
// grid construction (bounds, cell assignment) is identical to NewIndex,
// so the flattened structures mirror the map-based ones exactly.
func NewSlabIndex(net *network.Network, pois *poi.Corpus, cfg IndexConfig) (*SlabIndex, error) {
	slab, err := buildSlab(net, pois, cfg)
	if err != nil {
		return nil, err
	}
	return NewSlabIndexFromSlab(net, pois, slab)
}

// buildSlab constructs the grid exactly as NewIndex does and flattens it.
func buildSlab(net *network.Network, pois *poi.Corpus, cfg IndexConfig) (*grid.Slab, error) {
	if cfg.CellSize <= 0 {
		return nil, fmt.Errorf("core: non-positive cell size %v", cfg.CellSize)
	}
	all := pois.All()
	pts := make([]geo.Point, len(all))
	keys := make([]vocab.Set, len(all))
	weights := make([]float64, len(all))
	for i := range all {
		pts[i] = all[i].Loc
		keys[i] = all[i].Keywords
		weights[i] = all[i].Weight
	}
	bounds, err := deriveBounds(net, pts, cfg)
	if err != nil {
		return nil, err
	}
	g, err := grid.Build(grid.Config{CellSize: cfg.CellSize, Bounds: bounds}, pts, keys)
	if err != nil {
		return nil, err
	}
	return grid.NewSlab(g, pts, weights)
}

// NewSlabIndexFromSlab wraps a prebuilt (for example, snapshot-loaded)
// slab. The slab must index exactly the corpus's POIs.
func NewSlabIndexFromSlab(net *network.Network, pois *poi.Corpus, slab *grid.Slab) (*SlabIndex, error) {
	if slab.NumObjects != pois.Len() {
		return nil, fmt.Errorf("core: slab indexes %d objects but corpus has %d POIs", slab.NumObjects, pois.Len())
	}
	segs := net.Segments()
	six := &SlabIndex{
		net:       net,
		pois:      pois,
		slab:      slab,
		segAX:     make([]float64, len(segs)),
		segAY:     make([]float64, len(segs)),
		segBX:     make([]float64, len(segs)),
		segBY:     make([]float64, len(segs)),
		segLen:    make([]float64, len(segs)),
		segStreet: make([]uint32, len(segs)),
		plans:     make(map[float64]*slabPlan),
	}
	for i := range segs {
		s := &segs[i]
		six.segAX[i], six.segAY[i] = s.Geom.A.X, s.Geom.A.Y
		six.segBX[i], six.segBY[i] = s.Geom.B.X, s.Geom.B.Y
		six.segLen[i] = s.Length()
		six.segStreet[i] = uint32(s.Street)
	}
	six.segsByLen = make([]network.SegmentID, len(segs))
	for i := range segs {
		six.segsByLen[i] = segs[i].ID
	}
	sort.Slice(six.segsByLen, func(i, j int) bool {
		a, b := six.segsByLen[i], six.segsByLen[j]
		if six.segLen[a] != six.segLen[b] {
			return six.segLen[a] < six.segLen[b]
		}
		return a < b
	})
	six.pool.New = func() interface{} { return &slabRun{six: six} }
	return six, nil
}

// Network returns the indexed road network.
func (six *SlabIndex) Network() *network.Network { return six.net }

// POIs returns the indexed POI corpus.
func (six *SlabIndex) POIs() *poi.Corpus { return six.pois }

// Slab returns the underlying flattened grid.
func (six *SlabIndex) Slab() *grid.Slab { return six.slab }

// Warm precomputes the ε-dependent plan so that subsequent query timings
// measure only query work.
func (six *SlabIndex) Warm(eps float64) { six.plan(eps) }

// plan returns the ε plan, building and memoizing it on first use.
// Concurrent callers may race to build a fresh ε; each computes an
// identical value and the last store wins.
func (six *SlabIndex) plan(eps float64) *slabPlan {
	six.mu.RLock()
	p, ok := six.plans[eps]
	six.mu.RUnlock()
	if ok {
		return p
	}
	numSegs := len(six.segLen)
	numCells := six.slab.NumCells()
	p = &slabPlan{segCellOff: make([]uint32, numSegs+1)}
	var buf []int32
	for sid := 0; sid < numSegs; sid++ {
		seg := geo.Segment{
			A: geo.Point{X: six.segAX[sid], Y: six.segAY[sid]},
			B: geo.Point{X: six.segBX[sid], Y: six.segBY[sid]},
		}
		buf = six.slab.CellsNearSegmentInto(seg, eps, buf[:0])
		p.segCell = append(p.segCell, buf...)
		p.segCellOff[sid+1] = uint32(len(p.segCell))
	}
	// Invert to cell→segments: counting pass, then fill in ascending sid
	// order so each cell's list is sorted by segment id.
	p.cellSegOff = make([]uint32, numCells+1)
	for _, ord := range p.segCell {
		p.cellSegOff[ord+1]++
	}
	for i := 1; i <= numCells; i++ {
		p.cellSegOff[i] += p.cellSegOff[i-1]
	}
	p.cellSeg = make([]uint32, len(p.segCell))
	next := make([]uint32, numCells)
	copy(next, p.cellSegOff[:numCells])
	for sid := 0; sid < numSegs; sid++ {
		for _, ord := range p.segCell[p.segCellOff[sid]:p.segCellOff[sid+1]] {
			p.cellSeg[next[ord]] = uint32(sid)
			next[ord]++
		}
	}
	// SL2: segments by decreasing ε-near cell count, ties by id.
	p.sl2 = make([]network.SegmentID, numSegs)
	for i := range p.sl2 {
		p.sl2[i] = network.SegmentID(i)
	}
	counts := func(sid network.SegmentID) uint32 {
		return p.segCellOff[sid+1] - p.segCellOff[sid]
	}
	sort.Slice(p.sl2, func(i, j int) bool {
		a, b := p.sl2[i], p.sl2[j]
		if counts(a) != counts(b) {
			return counts(a) > counts(b)
		}
		return a < b
	})
	six.mu.Lock()
	six.plans[eps] = p
	six.mu.Unlock()
	return p
}

// Resolve interns the query keywords against the corpus dictionary,
// dropping unknown ones — the same resolution Index.SOIContext performs.
// Use with SOIResolved to evaluate repeated queries allocation-free.
func (six *SlabIndex) Resolve(q Query) (vocab.Set, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	set, _ := six.pois.Dict().LookupAll(q.Keywords)
	return set, nil
}

// SOI evaluates a k-SOI query. Results are bit-identical to
// Index.SOI on an index over the same data.
func (six *SlabIndex) SOI(q Query) ([]StreetResult, Stats, error) {
	return six.SOIContext(context.Background(), q, nil)
}

// SOIContext evaluates a k-SOI query under a context with an optional
// shared MassCache, mirroring Index.SOIContext (CostAware strategy).
func (six *SlabIndex) SOIContext(ctx context.Context, q Query, mc *MassCache) ([]StreetResult, Stats, error) {
	return six.SOIInto(ctx, q, mc, nil)
}

// SOIInto is SOIContext appending results into out's capacity, for
// callers that reuse a result buffer across queries.
func (six *SlabIndex) SOIInto(ctx context.Context, q Query, mc *MassCache, out []StreetResult) ([]StreetResult, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	query, err := six.Resolve(q)
	if err != nil {
		return nil, Stats{}, err
	}
	return six.SOIResolved(ctx, query, q.K, q.Epsilon, mc, out)
}

// SOIResolved is the steady-state entry point: it evaluates a
// pre-resolved query, appending the k results into out's capacity. With a
// nil MassCache and a warmed ε it performs zero heap allocations once the
// internal scratch pool has seen the world size. k and eps must be
// positive; query must come from Resolve (sorted, deduplicated, known
// keywords only).
func (six *SlabIndex) SOIResolved(ctx context.Context, query vocab.Set, k int, eps float64, mc *MassCache, out []StreetResult) ([]StreetResult, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	if k <= 0 || eps <= 0 {
		return nil, Stats{}, fmt.Errorf("core: non-positive k %d or epsilon %v", k, eps)
	}
	r := six.pool.Get().(*slabRun)
	defer six.pool.Put(r)
	r.ctx = ctx
	r.query = query
	r.k = k
	r.eps = eps
	r.mc = mc
	if mc != nil {
		r.psi = mc.psiID(query)
	}

	start := time.Now()
	r.begin(six.plan(eps))
	r.stats.BuildListsTime = time.Since(start)

	start = time.Now()
	err := r.filter()
	r.stats.FilterTime = time.Since(start)
	if err != nil {
		r.release()
		return nil, r.stats, err
	}

	start = time.Now()
	out, err = r.refine(out)
	r.stats.RefineTime = time.Since(start)
	stats := r.stats
	r.release()
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}
