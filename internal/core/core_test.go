package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
)

// buildFixture creates a small deterministic scenario:
//
//	High St   — 2 segments along y=0 from x=0..2, dense shop POIs
//	Low St    — 1 segment along y=1 from x=0..1, one shop POI
//	Empty St  — 1 segment along y=3, no relevant POIs
func buildFixture(t *testing.T) *Index {
	t.Helper()
	nb := network.NewBuilder()
	nb.AddStreet("High St", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0)})
	nb.AddStreet("Low St", []geo.Point{geo.Pt(0, 1), geo.Pt(1, 1)})
	nb.AddStreet("Empty St", []geo.Point{geo.Pt(0, 3), geo.Pt(1, 3)})
	net, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	pb := poi.NewBuilder(nil)
	// Dense shops along High St's first segment.
	pb.Add(geo.Pt(0.1, 0.05), []string{"shop"})
	pb.Add(geo.Pt(0.3, -0.05), []string{"shop", "clothes"})
	pb.Add(geo.Pt(0.6, 0.02), []string{"shop"})
	pb.Add(geo.Pt(0.9, 0.01), []string{"shop"})
	// One shop near Low St.
	pb.Add(geo.Pt(0.5, 1.05), []string{"shop"})
	// Irrelevant POIs near Empty St.
	pb.Add(geo.Pt(0.5, 3.01), []string{"museum"})
	pb.Add(geo.Pt(0.7, 3.02), []string{"park"})
	ix, err := NewIndex(net, pb.Build(), IndexConfig{CellSize: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestQueryValidate(t *testing.T) {
	tests := []struct {
		name string
		q    Query
		ok   bool
	}{
		{"valid", Query{Keywords: []string{"shop"}, K: 1, Epsilon: 0.1}, true},
		{"no keywords", Query{K: 1, Epsilon: 0.1}, false},
		{"zero k", Query{Keywords: []string{"x"}, Epsilon: 0.1}, false},
		{"negative eps", Query{Keywords: []string{"x"}, K: 1, Epsilon: -1}, false},
		{"zero eps", Query{Keywords: []string{"x"}, K: 1}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.q.Validate(); (err == nil) != tc.ok {
				t.Errorf("Validate = %v, ok=%v", err, tc.ok)
			}
		})
	}
}

func TestInterestFormula(t *testing.T) {
	// mass=10, len=2, eps=0.5: area = 2*0.5*2 + π*0.25.
	got := Interest(10, 2, 0.5)
	want := 10 / (2 + math.Pi*0.25)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Interest = %v, want %v", got, want)
	}
	// Zero-length segment still has the πε² disk area.
	if got := Interest(1, 0, 0.5); math.Abs(got-1/(math.Pi*0.25)) > 1e-12 {
		t.Fatalf("zero-length Interest = %v", got)
	}
}

func TestNewIndexErrors(t *testing.T) {
	nb := network.NewBuilder()
	nb.AddStreet("s", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	net, _ := nb.Build()
	if _, err := NewIndex(net, poi.NewBuilder(nil).Build(), IndexConfig{CellSize: 0}); err == nil {
		t.Fatal("expected error for zero cell size")
	}
}

func TestSegmentMassFixture(t *testing.T) {
	ix := buildFixture(t)
	query, _ := ix.POIs().Dict().LookupAll([]string{"shop"})
	// Segment 0 = High St x∈[0,1]: all 4 shops are within ε=0.1 of it.
	if got := ix.SegmentMass(0, query, 0.1); got != 4 {
		t.Fatalf("segment 0 mass = %v, want 4", got)
	}
	// Segment 1 = High St x∈[1,2]: no shop within 0.1 horizontally past x=1.
	// POI at x=0.9 is within 0.1 of segment start (1,0): dist = hypot(0.1, 0.01) > 0.1.
	if got := ix.SegmentMass(1, query, 0.1); got != 0 {
		t.Fatalf("segment 1 mass = %v, want 0", got)
	}
	// Larger ε picks it up.
	if got := ix.SegmentMass(1, query, 0.2); got != 1 {
		t.Fatalf("segment 1 mass at eps 0.2 = %v, want 1", got)
	}
	// Low St segment: one shop at dist 0.05.
	low := ix.Network().StreetByName("Low St")
	if got := ix.SegmentMass(low.Segments[0], query, 0.1); got != 1 {
		t.Fatalf("Low St mass = %v, want 1", got)
	}
}

func TestSOIFixtureRanking(t *testing.T) {
	ix := buildFixture(t)
	res, stats, err := ix.SOI(Query{Keywords: []string{"shop"}, K: 2, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].Name != "High St" || res[1].Name != "Low St" {
		t.Fatalf("ranking = %q, %q", res[0].Name, res[1].Name)
	}
	if res[0].Interest <= res[1].Interest {
		t.Fatalf("interests not descending: %v %v", res[0].Interest, res[1].Interest)
	}
	if res[0].Mass != 4 {
		t.Fatalf("High St best mass = %v", res[0].Mass)
	}
	if stats.Total() < 0 {
		t.Fatal("negative total time")
	}
}

func TestSOIExcludesZeroInterest(t *testing.T) {
	ix := buildFixture(t)
	res, _, err := ix.SOI(Query{Keywords: []string{"shop"}, K: 10, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Interest <= 0 {
			t.Fatalf("zero-interest street %q reported", r.Name)
		}
		if r.Name == "Empty St" {
			t.Fatal("Empty St reported")
		}
	}
}

func TestSOIMultiKeyword(t *testing.T) {
	ix := buildFixture(t)
	res, _, err := ix.SOI(Query{Keywords: []string{"museum", "park"}, K: 3, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "Empty St" {
		t.Fatalf("multi-keyword results = %+v", res)
	}
	// Both POIs near Empty St match (union semantics, each counted once).
	if res[0].Mass != 2 {
		t.Fatalf("Empty St mass = %v, want 2", res[0].Mass)
	}
}

func TestSOIDuplicateCountedOnce(t *testing.T) {
	// A POI carrying both query keywords must be counted once.
	nb := network.NewBuilder()
	nb.AddStreet("s", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	net, _ := nb.Build()
	pb := poi.NewBuilder(nil)
	pb.Add(geo.Pt(0.5, 0.01), []string{"shop", "food"})
	ix, err := NewIndex(net, pb.Build(), IndexConfig{CellSize: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ix.SOI(Query{Keywords: []string{"shop", "food"}, K: 1, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Mass != 1 {
		t.Fatalf("results = %+v, want mass 1", res)
	}
}

func TestSOIUnknownKeywords(t *testing.T) {
	ix := buildFixture(t)
	res, _, err := ix.SOI(Query{Keywords: []string{"zeppelin"}, K: 3, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("unknown keyword returned %d results", len(res))
	}
}

func TestSOIBadQuery(t *testing.T) {
	ix := buildFixture(t)
	if _, _, err := ix.SOI(Query{}); err == nil {
		t.Fatal("expected error")
	}
	if _, _, err := ix.Baseline(Query{}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ix.AllSegmentInterests(Query{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestBaselineMatchesFixture(t *testing.T) {
	ix := buildFixture(t)
	q := Query{Keywords: []string{"shop"}, K: 2, Epsilon: 0.1}
	bl, _, err := ix.Baseline(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(bl) != 2 || bl[0].Name != "High St" || bl[1].Name != "Low St" {
		t.Fatalf("baseline = %+v", bl)
	}
}

func TestWeightedMass(t *testing.T) {
	nb := network.NewBuilder()
	nb.AddStreet("s", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	net, _ := nb.Build()
	pb := poi.NewBuilder(nil)
	pb.AddWeighted(geo.Pt(0.5, 0.01), []string{"shop"}, 3)
	pb.AddWeighted(geo.Pt(0.6, 0.01), []string{"shop"}, 0.5)
	ix, err := NewIndex(net, pb.Build(), IndexConfig{CellSize: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: []string{"shop"}, K: 1, Epsilon: 0.1}
	res, _, err := ix.SOI(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || math.Abs(res[0].Mass-3.5) > 1e-12 {
		t.Fatalf("weighted results = %+v, want mass 3.5", res)
	}
	bl, _, _ := ix.Baseline(q)
	if math.Abs(bl[0].Mass-res[0].Mass) > 1e-12 {
		t.Fatalf("baseline weighted mass %v != SOI %v", bl[0].Mass, res[0].Mass)
	}
}

// randomScenario builds a random network + POI corpus for equivalence
// testing.
func randomScenario(rng *rand.Rand) *Index {
	nb := network.NewBuilder()
	nStreets := rng.Intn(15) + 3
	for s := 0; s < nStreets; s++ {
		nPts := rng.Intn(4) + 2
		pts := make([]geo.Point, nPts)
		x, y := rng.Float64()*10, rng.Float64()*10
		pts[0] = geo.Pt(x, y)
		for i := 1; i < nPts; i++ {
			x += rng.NormFloat64()
			y += rng.NormFloat64()
			pts[i] = geo.Pt(x, y)
		}
		nb.AddStreet("street", pts)
	}
	net, err := nb.Build()
	if err != nil {
		panic(err)
	}
	kws := []string{"shop", "food", "museum", "park", "school"}
	pb := poi.NewBuilder(nil)
	nPOIs := rng.Intn(200) + 20
	for i := 0; i < nPOIs; i++ {
		var tags []string
		for _, kw := range kws {
			if rng.Float64() < 0.3 {
				tags = append(tags, kw)
			}
		}
		pb.Add(geo.Pt(rng.Float64()*10, rng.Float64()*10), tags)
	}
	ix, err := NewIndex(net, pb.Build(), IndexConfig{CellSize: 0.3 + rng.Float64()*0.5})
	if err != nil {
		panic(err)
	}
	return ix
}

// exhaustiveTopK derives the top-k street interests directly from the
// per-segment oracle.
func exhaustiveTopK(t *testing.T, ix *Index, q Query) []StreetResult {
	t.Helper()
	ints, err := ix.AllSegmentInterests(q)
	if err != nil {
		t.Fatal(err)
	}
	masses := make([]float64, len(ints))
	query, _ := ix.POIs().Dict().LookupAll(q.Keywords)
	for sid := range masses {
		masses[sid] = ix.SegmentMass(network.SegmentID(sid), query, q.Epsilon)
	}
	out := aggregateStreets(ix.Network(), masses, q.Epsilon, MaxSegment)
	if len(out) > q.K {
		out = out[:q.K]
	}
	return out
}

// TestSOIEquivalence is the central correctness property: on random
// scenarios, SOI, BL and the exhaustive oracle agree on the ranked
// interest values, and agree on street identity wherever interests are
// untied.
func TestSOIEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	queries := [][]string{{"shop"}, {"shop", "food"}, {"museum", "park", "school"}}
	for trial := 0; trial < 40; trial++ {
		ix := randomScenario(rng)
		for _, kws := range queries {
			q := Query{
				Keywords: kws,
				K:        rng.Intn(6) + 1,
				Epsilon:  0.05 + rng.Float64()*0.8,
			}
			soi, _, err := ix.SOI(q)
			if err != nil {
				t.Fatal(err)
			}
			bl, _, err := ix.Baseline(q)
			if err != nil {
				t.Fatal(err)
			}
			oracle := exhaustiveTopK(t, ix, q)
			compareResults(t, "SOI vs oracle", soi, oracle)
			compareResults(t, "BL vs oracle", bl, oracle)
		}
	}
}

// compareResults requires identical ranked interest sequences and, where
// an interest value is unique within the list, identical street ids.
func compareResults(t *testing.T, label string, got, want []StreetResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\n got: %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if math.Abs(got[i].Interest-want[i].Interest) > 1e-9*(1+want[i].Interest) {
			t.Fatalf("%s: rank %d interest %v, want %v", label, i, got[i].Interest, want[i].Interest)
		}
	}
	for i := range got {
		unique := true
		for j := range want {
			if j != i && math.Abs(want[j].Interest-want[i].Interest) < 1e-12 {
				unique = false
				break
			}
		}
		if unique && got[i].Street != want[i].Street {
			t.Fatalf("%s: rank %d street %d, want %d", label, i, got[i].Street, want[i].Street)
		}
	}
}

// TestSOIPrunes verifies the point of the algorithm: on a scenario with a
// clear hotspot, SOI terminates without finalizing every segment.
func TestSOIPrunes(t *testing.T) {
	nb := network.NewBuilder()
	// One hot street and many cold ones.
	nb.AddStreet("hot", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	for i := 1; i <= 50; i++ {
		y := float64(i)
		nb.AddStreet("cold", []geo.Point{geo.Pt(0, y), geo.Pt(1, y)})
	}
	net, _ := nb.Build()
	pb := poi.NewBuilder(nil)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		pb.Add(geo.Pt(rng.Float64(), rng.NormFloat64()*0.02), []string{"shop"})
	}
	// Sparse relevant POIs elsewhere.
	for i := 1; i <= 50; i += 5 {
		pb.Add(geo.Pt(0.5, float64(i)+0.01), []string{"shop"})
	}
	ix, err := NewIndex(net, pb.Build(), IndexConfig{CellSize: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := ix.SOI(Query{Keywords: []string{"shop"}, K: 1, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Name != "hot" {
		t.Fatalf("results = %+v", res)
	}
	if stats.SegmentsSeen >= stats.TotalSegments {
		t.Fatalf("no pruning: saw %d of %d segments", stats.SegmentsSeen, stats.TotalSegments)
	}
}

func TestAggregateModes(t *testing.T) {
	ix := buildFixture(t)
	q := Query{Keywords: []string{"shop"}, K: 3, Epsilon: 0.1}
	for _, agg := range []Aggregate{MaxSegment, MeanSegment, TotalDensity} {
		res, _, err := ix.BaselineAggregate(q, agg)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		if len(res) == 0 {
			t.Fatalf("%v: empty results", agg)
		}
		for i := 1; i < len(res); i++ {
			if res[i].Interest > res[i-1].Interest {
				t.Fatalf("%v: not sorted", agg)
			}
		}
		if agg.String() == "" {
			t.Fatal("empty aggregate name")
		}
	}
	// MeanSegment penalizes High St (one empty segment) relative to MaxSegment.
	maxRes, _, _ := ix.BaselineAggregate(q, MaxSegment)
	meanRes, _, _ := ix.BaselineAggregate(q, MeanSegment)
	var maxHigh, meanHigh float64
	for _, r := range maxRes {
		if r.Name == "High St" {
			maxHigh = r.Interest
		}
	}
	for _, r := range meanRes {
		if r.Name == "High St" {
			meanHigh = r.Interest
		}
	}
	if meanHigh >= maxHigh {
		t.Fatalf("mean %v should be below max %v for High St", meanHigh, maxHigh)
	}
}

func TestIndexMemoization(t *testing.T) {
	ix := buildFixture(t)
	a := ix.SegmentCells(0.1)
	b := ix.SegmentCells(0.1)
	if &a[0] != &b[0] {
		t.Fatal("SegmentCells not memoized")
	}
	ca := ix.CellSegments(0.1)
	cb := ix.CellSegments(0.1)
	if len(ca) != len(cb) {
		t.Fatal("CellSegments mismatch")
	}
}

func TestStatsPhasesPopulated(t *testing.T) {
	ix := buildFixture(t)
	_, stats, err := ix.SOI(Query{Keywords: []string{"shop"}, K: 1, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSegments != ix.Network().NumSegments() {
		t.Errorf("TotalSegments = %d", stats.TotalSegments)
	}
	if stats.SegmentsSeen == 0 || stats.CellVisits == 0 {
		t.Errorf("work counters empty: %+v", stats)
	}
}

// TestStrategyEquivalence: both access strategies must return identical
// ranked interest sequences (the paper: "the correctness of our method is
// not affected by the access strategy").
func TestStrategyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		ix := randomScenario(rng)
		q := Query{
			Keywords: []string{"shop", "food"},
			K:        rng.Intn(5) + 1,
			Epsilon:  0.05 + rng.Float64()*0.5,
		}
		a, _, err := ix.SOIWithStrategy(q, CostAware)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ix.SOIWithStrategy(q, RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, "cost-aware vs round-robin", a, b)
	}
}

func TestStrategyString(t *testing.T) {
	if CostAware.String() == "" || RoundRobin.String() == "" || Strategy(9).String() == "" {
		t.Fatal("empty strategy name")
	}
}
