package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/vocab"
)

func TestAddPOIBasic(t *testing.T) {
	ix := buildFixture(t)
	q := Query{Keywords: []string{"shop"}, K: 3, Epsilon: 0.1}
	before, _, err := ix.SOI(q)
	if err != nil {
		t.Fatal(err)
	}
	// Add shops near the previously empty street.
	for i := 0; i < 10; i++ {
		if _, err := ix.AddPOI(geo.Pt(0.1*float64(i), 3.02), []string{"shop"}, 1); err != nil {
			t.Fatal(err)
		}
	}
	after, _, err := ix.SOI(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("results after insert = %d, want %d", len(after), len(before)+1)
	}
	found := false
	for _, r := range after {
		if r.Name == "Empty St" {
			found = true
		}
	}
	if !found {
		t.Fatal("Empty St did not appear after inserting shops")
	}
}

func TestAddPOIOutOfBounds(t *testing.T) {
	ix := buildFixture(t)
	if _, err := ix.AddPOI(geo.Pt(99, 99), []string{"shop"}, 1); err == nil {
		t.Fatal("expected error for out-of-bounds POI")
	}
}

func TestAddPOIDefaultWeight(t *testing.T) {
	ix := buildFixture(t)
	id, err := ix.AddPOI(geo.Pt(0.5, 0.5), []string{"shop"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.POIs().Get(id).Weight; got != 1 {
		t.Fatalf("weight = %v", got)
	}
}

// TestIncrementalEquivalence: an index built with half the POIs upfront
// and half via AddPOI must answer every query exactly like an index built
// with all POIs at once.
func TestIncrementalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 15; trial++ {
		nb := network.NewBuilder()
		nStreets := rng.Intn(10) + 3
		for s := 0; s < nStreets; s++ {
			x, y := rng.Float64()*8+1, rng.Float64()*8+1
			nb.AddStreet("s", []geo.Point{geo.Pt(x, y), geo.Pt(x+rng.Float64(), y+rng.Float64())})
		}
		net, err := nb.Build()
		if err != nil {
			t.Fatal(err)
		}
		kws := []string{"shop", "food", "park"}
		type rawPOI struct {
			loc  geo.Point
			tags []string
			w    float64
		}
		var raws []rawPOI
		n := rng.Intn(150) + 20
		for i := 0; i < n; i++ {
			var tags []string
			for _, kw := range kws {
				if rng.Float64() < 0.4 {
					tags = append(tags, kw)
				}
			}
			raws = append(raws, rawPOI{
				loc:  geo.Pt(rng.Float64()*10, rng.Float64()*10),
				tags: tags,
				w:    1 + rng.Float64(),
			})
		}
		cell := 0.3 + rng.Float64()*0.4

		// Full index.
		fullB := poi.NewBuilder(vocab.NewDictionary())
		for _, r := range raws {
			fullB.AddWeighted(r.loc, r.tags, r.w)
		}
		full, err := NewIndex(net, fullB.Build(), IndexConfig{CellSize: cell})
		if err != nil {
			t.Fatal(err)
		}

		// Incremental index: half upfront, half appended (with a warm in
		// between to exercise memo invalidation).
		half := len(raws) / 2
		incB := poi.NewBuilder(vocab.NewDictionary())
		for _, r := range raws[:half] {
			incB.AddWeighted(r.loc, r.tags, r.w)
		}
		inc, err := NewIndex(net, incB.Build(), IndexConfig{CellSize: cell})
		if err != nil {
			t.Fatal(err)
		}
		eps := 0.1 + rng.Float64()*0.4
		inc.Warm(eps)
		for _, r := range raws[half:] {
			if _, err := inc.AddPOI(r.loc, r.tags, r.w); err != nil {
				// Out-of-bounds relative to the half-index bounds can
				// happen; rebuild-scale equivalence only makes sense for
				// in-bounds inserts, so skip the trial.
				t.Skipf("insert outside half-index bounds: %v", err)
			}
		}
		q := Query{Keywords: kws[:rng.Intn(3)+1], K: rng.Intn(5) + 1, Epsilon: eps}
		a, _, err := full.SOI(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := inc.SOI(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i].Interest-b[i].Interest) > 1e-9*(1+a[i].Interest) {
				t.Fatalf("trial %d rank %d: interest %v vs %v", trial, i, a[i].Interest, b[i].Interest)
			}
			if math.Abs(a[i].Mass-b[i].Mass) > 1e-9 {
				t.Fatalf("trial %d rank %d: mass %v vs %v", trial, i, a[i].Mass, b[i].Mass)
			}
		}
		// The baselines agree too.
		ab, _, err := full.Baseline(q)
		if err != nil {
			t.Fatal(err)
		}
		bb, _, err := inc.Baseline(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ab) != len(bb) {
			t.Fatalf("trial %d: baseline %d vs %d results", trial, len(ab), len(bb))
		}
	}
}
