package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/poi"
)

// slabFromIndex builds a SlabIndex over the same data and cell size as an
// existing map index.
func slabFromIndex(t *testing.T, ix *Index) *SlabIndex {
	t.Helper()
	six, err := NewSlabIndex(ix.Network(), ix.POIs(), IndexConfig{CellSize: ix.Grid().CellSize()})
	if err != nil {
		t.Fatal(err)
	}
	return six
}

// sameWork asserts that two evaluations did identical work, counter by
// counter — much stronger than result equality: it means the two
// implementations walked the same source-list schedule.
func sameWork(t *testing.T, label string, a, b Stats) {
	t.Helper()
	type counters struct {
		cellAccesses, segmentAccesses, sl2, sl3      int
		filterIterations, cellVisits, cacheHits      int
		segmentsSeen, segmentsFinal, refineDrained   int
		totalSegments, totalCells                    int
	}
	ca := counters{a.CellAccesses, a.SegmentAccesses, a.SL2Accesses, a.SL3Accesses,
		a.FilterIterations, a.CellVisits, a.SegmentCacheHits,
		a.SegmentsSeen, a.SegmentsFinal, a.RefineDrained, a.TotalSegments, a.TotalCells}
	cb := counters{b.CellAccesses, b.SegmentAccesses, b.SL2Accesses, b.SL3Accesses,
		b.FilterIterations, b.CellVisits, b.SegmentCacheHits,
		b.SegmentsSeen, b.SegmentsFinal, b.RefineDrained, b.TotalSegments, b.TotalCells}
	if ca != cb {
		t.Fatalf("%s: work differs\n map:  %+v\n slab: %+v", label, ca, cb)
	}
}

// TestSlabMatchesMapPath is the core bit-identity property: on random
// scenarios, the slab evaluator must return the same results as the map
// layout's cost-aware path — same floats, same tie-breaks — and perform
// the exact same work.
func TestSlabMatchesMapPath(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		ix := randomScenario(rng)
		six := slabFromIndex(t, ix)
		for _, q := range propertyQueries(rng, ix) {
			want, ws, err := ix.SOIWithStrategy(q, CostAware)
			if err != nil {
				t.Fatal(err)
			}
			got, gs, err := six.SOI(q)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, "slab vs map", got, want)
			sameWork(t, "slab vs map", ws, gs)
		}
	}
}

// TestSlabMatchesMapPathWeighted repeats the bit-identity check over a
// corpus with non-uniform POI weights, which exercises the weighted
// inverted index and mass summation orders.
func TestSlabMatchesMapPathWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		ix := weightedScenario(rng)
		six := slabFromIndex(t, ix)
		for _, q := range propertyQueries(rng, ix) {
			want, _, err := ix.SOIWithStrategy(q, CostAware)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := six.SOI(q)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, "weighted slab vs map", got, want)
		}
	}
}

func weightedScenario(rng *rand.Rand) *Index {
	ix := randomScenario(rng)
	pb := poi.NewBuilder(nil)
	for _, p := range ix.POIs().All() {
		pb.AddWeighted(geo.Point{X: p.Loc.X, Y: p.Loc.Y},
			ix.POIs().Dict().Names(p.Keywords), 0.25+rng.Float64()*3)
	}
	wix, err := NewIndex(ix.Network(), pb.Build(), IndexConfig{CellSize: ix.Grid().CellSize()})
	if err != nil {
		panic(err)
	}
	return wix
}

// TestSlabWithMassCache verifies the slab evaluator with a shared
// MassCache: the cache must warm across repeated queries, and results
// must stay bit-identical to the uncached map path throughout.
func TestSlabWithMassCache(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := randomScenario(rng)
	six := slabFromIndex(t, ix)
	mc := NewMassCache(0)
	queries := propertyQueries(rng, ix)
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			want, _, err := ix.SOIWithStrategy(q, CostAware)
			if err != nil {
				t.Fatal(err)
			}
			got, gs, err := six.SOIContext(context.Background(), q, mc)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, "cached slab vs map", got, want)
			if round > 0 && gs.SegmentsFinal > 0 && gs.SegmentCacheHits == 0 && gs.CellVisits > 0 {
				// Warmed rounds should serve at least some masses from the
				// cache when any were stored.
				if mc.Len() > 0 {
					t.Logf("round %d: no cache hits (%d entries); query %+v", round, mc.Len(), q)
				}
			}
		}
	}
	if mc.Len() == 0 {
		t.Fatal("mass cache never admitted an entry")
	}
}

// TestCompactIndexRouting checks the IndexConfig.Compact wiring: the
// cost-aware strategy routes through the slab and matches the plain
// index; round-robin still uses the map path; AddPOI invalidates the slab
// and keeps answers correct.
func TestCompactIndexRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ix := randomScenario(rng)
	cix, err := NewIndex(ix.Network(), ix.POIs(), IndexConfig{CellSize: ix.Grid().CellSize(), Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	if cix.SlabIndex() == nil {
		t.Fatal("Compact index has no slab")
	}
	q := Query{Keywords: []string{"shop", "food"}, K: 3, Epsilon: 0.4}
	want, _, err := ix.SOIWithStrategy(q, CostAware)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := cix.SOIWithStrategy(q, CostAware)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "compact routing", got, want)
	rr, _, err := cix.SOIWithStrategy(q, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "compact round-robin", rr, want)

	// Dynamic insertion drops the slab; answers must reflect the new POI.
	center := ix.Grid().Bounds().Center()
	if _, err := cix.AddPOI(center, []string{"shop"}, 1); err != nil {
		t.Fatal(err)
	}
	if cix.SlabIndex() != nil {
		t.Fatal("slab survived AddPOI")
	}
	if _, err := ix.AddPOI(center, []string{"shop"}, 1); err != nil {
		t.Fatal(err)
	}
	want2, _, err := ix.SOIWithStrategy(q, CostAware)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := cix.SOIWithStrategy(q, CostAware)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "post-insert", got2, want2)
}

// TestIndexFromSlabRoundTrip rebuilds an index from an encoded+decoded
// slab and verifies both evaluation paths against the original.
func TestIndexFromSlabRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	ix := randomScenario(rng)
	six := slabFromIndex(t, ix)
	dec, err := grid.DecodeSlab(six.Slab().AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	rix, err := NewIndexFromSlab(ix.Network(), ix.POIs(), dec)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range propertyQueries(rng, ix) {
		want, _, err := ix.SOIWithStrategy(q, CostAware)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := rix.SOIWithStrategy(q, CostAware)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "from-slab cost-aware", got, want)
		gotRR, _, err := rix.SOIWithStrategy(q, RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "from-slab round-robin", gotRR, want)
	}
}

// TestSlabContext covers the cancellation surface of the slab path: an
// expired context fails fast, and invalid parameters are rejected.
func TestSlabContext(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix := randomScenario(rng)
	six := slabFromIndex(t, ix)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := six.SOIContext(ctx, Query{Keywords: []string{"shop"}, K: 1, Epsilon: 0.2}, nil); err == nil {
		t.Fatal("expired context accepted")
	}
	if _, _, err := six.SOI(Query{Keywords: []string{"shop"}, K: 0, Epsilon: 0.2}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := six.SOIResolved(context.Background(), nil, 1, -1, nil, nil); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

// TestSlabRunReuse hammers one SlabIndex with many queries from the same
// goroutine so pooled runs are reused across epochs, and cross-checks
// every answer — stale scratch state would surface as a mismatch.
func TestSlabRunReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ix := randomScenario(rng)
	six := slabFromIndex(t, ix)
	queries := propertyQueries(rng, ix)
	for round := 0; round < 40; round++ {
		q := queries[round%len(queries)]
		want, _, err := ix.SOIWithStrategy(q, CostAware)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := six.SOI(q)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "reuse", got, want)
	}
}
