package core

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/network"
	"repro/internal/vocab"
)

// segState tracks the per-segment state of Algorithm 1. A segment is
// unseen until its first UpdateInterest, partial while unvisited cells
// remain, and final once every ε-near cell has been visited. cells is
// the canonical Cε(ℓ) list shared with the index (never mutated);
// visited and contrib run parallel to it. Keeping each cell's
// contribution lets the final mass be folded in canonical cell order, a
// pure function of ⟨segment, Ψ, ε⟩ shareable across runs. Cε(ℓ) holds a
// few dozen cells at most, so a linear scan beats a map.
type segState struct {
	seen      bool
	final     bool
	mass      float64       // mass−(ℓ) accounted so far, in visit order
	cells     []grid.CellID // canonical Cε(ℓ); read-only
	visited   []bool
	contrib   []float64 // per-cell mass contribution, canonical index
	remaining int
}

// visit marks cid visited, returning its canonical index in Cε(ℓ) or -1
// when the cell is unknown or already visited.
func (st *segState) visit(cid grid.CellID) int {
	for i, c := range st.cells {
		if c == cid {
			if st.visited[i] {
				return -1
			}
			st.visited[i] = true
			st.remaining--
			return i
		}
	}
	return -1
}

// relPOI caches the location and weight of one query-relevant POI.
type relPOI struct {
	loc geo.Point
	w   float64
}

// MassCache shares exact segment masses across query evaluations over
// one index. Once every ε-near cell of a segment has been visited, the
// segment's exact mass depends only on ⟨segment, Ψ, ε⟩ — not on k or on
// the algorithm's traversal state — so later runs over the same keyword
// set skip the segment's cell visits entirely. Cached values are the
// bit-exact floats the uncached path computes (final masses fold
// per-cell contributions in canonical Cε(ℓ) order; each contribution
// streams POIs in id order), so results are identical with and without
// the cache. MassCache is safe for concurrent use; it is sharded to keep
// lock contention off the hot path.
//
// The cache grows up to a configured entry budget and then stops
// admitting new entries (existing ones keep serving hits); call Clear
// after mutating the index.
type MassCache struct {
	psiMu sync.Mutex
	psis  map[string]uint32 // canonical resolved keyword set → dense id

	limit  int64
	size   int64 // guarded by psiMu
	finals [massCacheShards]finalShard
}

const massCacheShards = 64

// DefaultMassCacheEntries bounds a MassCache built with size 0: at ~50
// bytes per entry this is on the order of 100 MB, far below the index
// itself for city-scale datasets.
const DefaultMassCacheEntries = 1 << 21

type finalShard struct {
	mu sync.RWMutex
	m  map[finalKey]float64
}

type finalKey struct {
	sid network.SegmentID
	psi uint32
	eps float64
}

// NewMassCache returns a cache bounded to maxEntries contributions (0
// means DefaultMassCacheEntries).
func NewMassCache(maxEntries int) *MassCache {
	if maxEntries <= 0 {
		maxEntries = DefaultMassCacheEntries
	}
	mc := &MassCache{psis: make(map[string]uint32), limit: int64(maxEntries)}
	for i := range mc.finals {
		mc.finals[i].m = make(map[finalKey]float64)
	}
	return mc
}

// Clear drops every cached mass and keyword-set id.
func (mc *MassCache) Clear() {
	for i := range mc.finals {
		s := &mc.finals[i]
		s.mu.Lock()
		s.m = make(map[finalKey]float64)
		s.mu.Unlock()
	}
	mc.psiMu.Lock()
	mc.psis = make(map[string]uint32)
	mc.size = 0
	mc.psiMu.Unlock()
}

// Len returns the number of cached segment masses.
func (mc *MassCache) Len() int {
	var n int
	for i := range mc.finals {
		s := &mc.finals[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// psiID interns a resolved keyword set into a dense id, so that mass keys
// stay small and hash quickly.
func (mc *MassCache) psiID(query vocab.Set) uint32 {
	var b strings.Builder
	for _, id := range query {
		b.WriteByte(byte(id))
		b.WriteByte(byte(id >> 8))
		b.WriteByte(byte(id >> 16))
		b.WriteByte(byte(id >> 24))
	}
	key := b.String()
	mc.psiMu.Lock()
	defer mc.psiMu.Unlock()
	if id, ok := mc.psis[key]; ok {
		return id
	}
	id := uint32(len(mc.psis))
	mc.psis[key] = id
	return id
}

func (mc *MassCache) finalShardFor(k finalKey) *finalShard {
	h := uint64(uint32(k.sid))*0x9e3779b1 ^ uint64(k.psi)<<21
	return &mc.finals[h%massCacheShards]
}

func (mc *MassCache) getFinal(k finalKey) (float64, bool) {
	s := mc.finalShardFor(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

func (mc *MassCache) putFinal(k finalKey, v float64) {
	if !mc.admit() {
		return
	}
	s := mc.finalShardFor(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// admit charges one entry against the budget, reporting whether the
// cache may still grow.
func (mc *MassCache) admit() bool {
	mc.psiMu.Lock()
	defer mc.psiMu.Unlock()
	if mc.size >= mc.limit {
		return false
	}
	mc.size++
	return true
}

// Fault-injection site names of the evaluation path (see internal/faults).
// Unarmed sites cost one atomic load; the chaos test suite arms them to
// wedge, delay or crash an evaluation at a precise point.
const (
	// SiteFilter is visited once per filter-loop iteration.
	SiteFilter = "core.filter"
	// SiteRefine is visited once per refine candidate.
	SiteRefine = "core.refine"
)

// cancelCheckEvery is the checkpoint stride: the filter and refine loops
// poll ctx.Err() every cancelCheckEvery iterations, keeping the hot path
// branch-cheap while bounding cancellation latency to a few dozen
// source-list pops.
const cancelCheckEvery = 32

// soiRun carries the mutable state of one SOI evaluation.
type soiRun struct {
	ix    *Index
	query vocab.Set
	k     int
	eps   float64
	strat Strategy

	// ctx carries the evaluation's cancellation signal; tick strides the
	// cooperative checkpoints.
	ctx  context.Context
	tick int

	// mc, when non-nil, shares per-(segment, cell) mass contributions
	// with other runs over the same index; psi is the query's interned id
	// in the cache.
	mc  *MassCache
	psi uint32

	segCells [][]grid.CellID
	cellSegs map[grid.CellID][]network.SegmentID

	sl1    []weightedEntry     // cells desc by relevant weight
	sl2    []network.SegmentID // segments desc by |Cε(ℓ)|
	sl3    []network.SegmentID // segments asc by length
	p1, p2 int                 // pointers into SL1, SL2
	p3     int                 // pointer into SL3

	states []segState
	seen   []network.SegmentID // ids of seen segments (Lseen membership)
	topk   *streetTopK

	// relCache memoizes the query-relevant POIs of each visited cell: a
	// cell is visited once per ε-near segment, so resolving its postings
	// lists once and replaying locations pays off quickly.
	relCache map[grid.CellID][]relPOI

	stats Stats
}

// Strategy selects the source-list access schedule of the filtering
// phase. The paper states that "the correctness of our method is not
// affected by the access strategy" and describes alternating between SL1
// and SL3 with occasional SL2 accesses; both schedules below terminate
// with the same result set.
type Strategy int

const (
	// CostAware is the default: SL1 drives the search, SL3 is consumed
	// while its head is cheap to finalize, SL2 only while its head is an
	// outlier in neighboring-cell count.
	CostAware Strategy = iota
	// RoundRobin is the literal Algorithm 1 schedule: one access from
	// SL1, then SL2, then SL3, cyclically.
	RoundRobin
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case CostAware:
		return "cost-aware"
	case RoundRobin:
		return "round-robin"
	default:
		return "strategy(?)"
	}
}

// SOI evaluates a k-SOI query with Algorithm 1: it pops cells and
// segments from the three ranked source lists, maintaining the seen
// lower bound LBk and the unseen upper bound UB, stops when LBk ≥ UB,
// and refines the seen segments to extract the k most interesting
// streets. The default cost-aware access strategy is used; see
// SOIWithStrategy for the ablation.
func (ix *Index) SOI(q Query) ([]StreetResult, Stats, error) {
	return ix.SOIWithStrategy(q, CostAware)
}

// SOIWithStrategy is SOI with an explicit source-list access strategy.
func (ix *Index) SOIWithStrategy(q Query, strat Strategy) ([]StreetResult, Stats, error) {
	return ix.SOIWithCache(q, strat, nil)
}

// SOIWithCache is SOIWithStrategy with an optional shared MassCache. A
// nil cache evaluates the query standalone. Because cached contributions
// are the bit-exact values the standalone path computes, the results are
// identical either way; only the work to obtain them is shared.
func (ix *Index) SOIWithCache(q Query, strat Strategy, mc *MassCache) ([]StreetResult, Stats, error) {
	return ix.SOIContext(context.Background(), q, strat, mc)
}

// SOIContext is the full evaluation entry point: SOIWithCache under a
// context. An already-expired context returns its error without touching
// the index; a context cancelled mid-evaluation is observed at a
// cooperative checkpoint inside the filter and refine loops (every
// cancelCheckEvery iterations) and surfaces as the context's error with
// the partial Stats accumulated so far. On the non-cancelled path the
// checkpoints read state only, so results remain bit-identical to an
// uncancellable evaluation.
func (ix *Index) SOIContext(ctx context.Context, q Query, strat Strategy, mc *MassCache) ([]StreetResult, Stats, error) {
	if six := ix.six; six != nil && strat == CostAware {
		// The compact slab path evaluates the same cost-aware schedule
		// allocation-free and returns bit-identical results.
		return six.SOIContext(ctx, q, mc)
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	query, err := ix.resolveQuery(q)
	if err != nil {
		return nil, Stats{}, err
	}
	r := &soiRun{ix: ix, query: query, k: q.K, eps: q.Epsilon, strat: strat, mc: mc, ctx: ctx}
	if mc != nil {
		r.psi = mc.psiID(query)
	}
	r.stats.TotalSegments = ix.net.NumSegments()
	r.stats.TotalCells = ix.grid.NumCells()

	start := time.Now()
	r.buildLists()
	r.stats.BuildListsTime = time.Since(start)

	start = time.Now()
	err = r.filter()
	r.stats.FilterTime = time.Since(start)
	if err != nil {
		return nil, r.stats, err
	}

	start = time.Now()
	res, err := r.refine()
	r.stats.RefineTime = time.Since(start)
	if err != nil {
		return nil, r.stats, err
	}
	return res, r.stats, nil
}

// checkpoint is one cooperative cancellation poll: the armed-fault site
// fires every visit (one atomic load when unarmed), the context is
// polled every cancelCheckEvery visits. A non-nil return aborts the
// evaluation with that error.
func (r *soiRun) checkpoint(site string) error {
	if err := faults.InjectCtx(r.ctx, site); err != nil {
		return err
	}
	r.tick++
	if r.tick%cancelCheckEvery != 0 {
		return nil
	}
	return r.ctx.Err()
}

// buildLists constructs the three source lists (Algorithm 1 lines 1–7).
// SL3 is query-independent and precomputed by the index; SL1 depends on
// the query keywords and SL2 on ε.
func (r *soiRun) buildLists() {
	ix := r.ix
	r.segCells = ix.SegmentCells(r.eps)
	r.cellSegs = ix.CellSegments(r.eps)
	r.sl1 = ix.buildSL1(r.query)
	r.sl2 = ix.SegmentsByCellCount(r.eps)
	r.sl3 = ix.segsByLen
	r.states = make([]segState, ix.net.NumSegments())
	r.topk = newStreetTopK(r.k)
	r.relCache = make(map[grid.CellID][]relPOI)
}

// relevantInCell returns the query-relevant POIs of the cell, resolved
// from its postings lists once and cached for the rest of the run.
func (r *soiRun) relevantInCell(cid grid.CellID) []relPOI {
	if rel, ok := r.relCache[cid]; ok {
		return rel
	}
	cell := r.ix.grid.CellAt(cid)
	var rel []relPOI
	collect := func(id uint32) {
		p := r.ix.pois.Get(id)
		rel = append(rel, relPOI{loc: p.Loc, w: p.Weight})
	}
	if len(r.query) == 1 {
		for _, id := range cell.Inv[r.query[0]] {
			collect(id)
		}
	} else {
		// Synchronous merge of the sorted postings lists, deduplicating
		// POIs that match several query keywords.
		lists := make([][]uint32, 0, len(r.query))
		for _, kw := range r.query {
			if ps := cell.Inv[kw]; len(ps) > 0 {
				lists = append(lists, ps)
			}
		}
		const sentinel = ^uint32(0)
		for {
			minID := sentinel
			for _, l := range lists {
				if len(l) > 0 && l[0] < minID {
					minID = l[0]
				}
			}
			if minID == sentinel {
				break
			}
			for i := range lists {
				if len(lists[i]) > 0 && lists[i][0] == minID {
					lists[i] = lists[i][1:]
				}
			}
			collect(minID)
		}
	}
	r.relCache[cid] = rel
	return rel
}

// state returns the segment state, initializing it from Cε(ℓ) on first
// touch. When a shared cache already holds the segment's exact mass for
// this ⟨Ψ, ε⟩, the segment starts out final and its cell visits are
// skipped entirely.
func (r *soiRun) state(sid network.SegmentID) *segState {
	st := &r.states[sid]
	if st.seen {
		return st
	}
	st.seen = true
	r.seen = append(r.seen, sid)
	r.stats.SegmentsSeen++
	cells := r.segCells[sid]
	if len(cells) == 0 {
		st.final = true
		r.stats.SegmentsFinal++
		return st
	}
	if r.mc != nil {
		if m, ok := r.mc.getFinal(finalKey{sid: sid, psi: r.psi, eps: r.eps}); ok {
			st.mass = m
			st.final = true
			r.stats.SegmentsFinal++
			r.stats.SegmentCacheHits++
			if m > 0 {
				seg := r.ix.net.Segment(sid)
				r.topk.Update(seg.Street, Interest(m, seg.Length(), r.eps))
			}
			return st
		}
	}
	st.cells = cells
	st.visited = make([]bool, len(cells))
	st.contrib = make([]float64, len(cells))
	st.remaining = len(cells)
	return st
}

// updateInterest visits cell c for segment sid (procedure UpdateInterest):
// it counts the query-relevant POIs of c within ε of the segment, raises
// mass−(ℓ), and propagates the improved interest lower bound to LBk.
func (r *soiRun) updateInterest(sid network.SegmentID, cid grid.CellID) {
	st := r.state(sid)
	if st.final {
		return
	}
	i := st.visit(cid)
	if i < 0 {
		return // already visited for this segment
	}
	r.applyVisit(sid, st, i, cid)
}

// applyVisit performs the work of one cell visit. The cell's contribution
// is folded into a local sum before being added to the segment mass, so
// the value is a pure function of ⟨segment, cell, Ψ, ε⟩ (POIs stream in
// id order) regardless of the visit order the run uses.
func (r *soiRun) applyVisit(sid network.SegmentID, st *segState, i int, cid grid.CellID) {
	r.stats.CellVisits++
	var contrib float64
	seg := r.ix.net.Segment(sid).Geom
	epsSq := r.eps * r.eps
	for _, p := range r.relevantInCell(cid) {
		if seg.DistToPointSq(p.loc) <= epsSq {
			contrib += p.w
		}
	}
	st.contrib[i] = contrib
	st.mass += contrib
	if st.remaining == 0 {
		r.finalizeMass(sid, st)
	}
	if st.mass > 0 {
		seg := r.ix.net.Segment(sid)
		r.topk.Update(seg.Street, Interest(st.mass, seg.Length(), r.eps))
	}
}

// finalizeMass recomputes the now-exact segment mass as the fold of its
// per-cell contributions in canonical Cε(ℓ) order. The canonical fold
// makes the final mass independent of the visit order this particular
// run happened to use — a pure function of ⟨segment, Ψ, ε⟩ — so it can
// be shared bit-exactly across runs.
func (r *soiRun) finalizeMass(sid network.SegmentID, st *segState) {
	var m float64
	for _, c := range st.contrib {
		m += c
	}
	st.mass = m
	st.final = true
	r.stats.SegmentsFinal++
	if r.mc != nil {
		r.mc.putFinal(finalKey{sid: sid, psi: r.psi, eps: r.eps}, m)
	}
}

// skipFinal advances a segment-list pointer past segments that are
// already final; accessing them again cannot change any bound.
func (r *soiRun) skipFinal(list []network.SegmentID, p int) int {
	for p < len(list) && r.states[list[p]].final {
		p++
	}
	return p
}

// unseenUpperBound computes UB = top(SL1)·top(SL2) / (2ε·top(SL3) + πε²),
// the largest possible interest of any segment not yet encountered
// (Algorithm 1 line 22). An exhausted list makes the bound zero: no
// unseen segment can carry mass (SL1 empty) or exist at all (SL2/SL3
// empty).
func (r *soiRun) unseenUpperBound() float64 {
	r.p2 = r.skipFinal(r.sl2, r.p2)
	r.p3 = r.skipFinal(r.sl3, r.p3)
	if r.p1 >= len(r.sl1) || r.p2 >= len(r.sl2) || r.p3 >= len(r.sl3) {
		return 0
	}
	top1 := r.sl1[r.p1].Weight
	top2 := float64(len(r.segCells[r.sl2[r.p2]]))
	top3 := r.ix.net.Segment(r.sl3[r.p3]).Length()
	return Interest(top1*top2, top3, r.eps)
}

// filter is the main loop of Algorithm 1 (lines 8–24). The paper leaves
// the source access strategy free ("the correctness of our method is not
// affected by the access strategy") and notes that, in practice, it
// alternates between SL1 and SL3 and dips into SL2 only when a few
// segments with a large number of neighboring cells exist. We implement
// that strategy cost-aware: SL1 drives the search; SL3 is consumed while
// its next segment is cheap to finalize (few ε-near cells); SL2 is
// consumed only while its next segment has an outlier cell count.
func (r *soiRun) filter() error {
	if r.strat == RoundRobin {
		return r.filterRoundRobin()
	}
	// avgCells calibrates the SL2 outlier threshold.
	var totalPairs int
	for _, cs := range r.segCells {
		totalPairs += len(cs)
	}
	avgCells := 1.0
	if len(r.segCells) > 0 {
		avgCells = float64(totalPairs) / float64(len(r.segCells))
	}
	monsterCells := int(4 * avgCells)
	cheapCells := int(avgCells / 2)
	if cheapCells < 4 {
		cheapCells = 4
	}
	for {
		// Stop only when every unseen segment is STRICTLY below the seen
		// lower bound (or provably massless). The strict comparison keeps
		// exact ties at the k-th rank inside the seen set, so the result
		// is a pure function of the query even when a shared MassCache
		// changes how fast LBk rises.
		r.stats.FilterIterations++
		if err := r.checkpoint(SiteFilter); err != nil {
			return err
		}
		if ub := r.unseenUpperBound(); ub == 0 || ub < r.topk.Bound() {
			return nil
		}
		if r.p1 >= len(r.sl1) {
			// SL1 exhausted: no unseen segment can have positive mass, so
			// the unseen upper bound is zero and the loop above returns on
			// the next check once the segment lists are advanced.
			return nil
		}
		// SL1 access: pop the cell with the largest relevant weight and
		// update every segment within ε of it.
		cid := r.sl1[r.p1].Cell
		r.p1++
		r.stats.CellAccesses++
		for _, sid := range r.cellSegs[cid] {
			r.updateInterest(sid, cid)
		}
		// SL3 accesses: finalize short segments while cheap; each pop
		// raises top(SL3) and with it the unseen bound's denominator.
		r.p3 = r.skipFinal(r.sl3, r.p3)
		for burst := 0; burst < 4 && r.p3 < len(r.sl3); burst++ {
			sid := r.sl3[r.p3]
			if r.remainingCells(sid) > cheapCells {
				break
			}
			r.stats.SL3Accesses++
			r.finalizeSegment(sid)
			r.p3++
			r.p3 = r.skipFinal(r.sl3, r.p3)
		}
		// SL2 access: finalize a segment only while the head of SL2 is an
		// outlier in neighboring-cell count, shrinking top(SL2).
		r.p2 = r.skipFinal(r.sl2, r.p2)
		if r.p2 < len(r.sl2) && len(r.segCells[r.sl2[r.p2]]) >= monsterCells {
			r.stats.SL2Accesses++
			r.finalizeSegment(r.sl2[r.p2])
			r.p2++
		}
	}
}

// filterRoundRobin is the literal Algorithm 1 schedule: SL1 → SL2 → SL3,
// one access each, cyclically, until LBk ≥ UB. Kept as an ablation of the
// access strategy; it yields the same result set but typically finalizes
// far more segments than the cost-aware schedule.
func (r *soiRun) filterRoundRobin() error {
	src := 0
	for {
		// Strict stop, as in the cost-aware schedule: ties at the k-th
		// rank must be seen before the filter may stop.
		r.stats.FilterIterations++
		if err := r.checkpoint(SiteFilter); err != nil {
			return err
		}
		if ub := r.unseenUpperBound(); ub == 0 || ub < r.topk.Bound() {
			return nil
		}
		switch src {
		case 0:
			if r.p1 < len(r.sl1) {
				cid := r.sl1[r.p1].Cell
				r.p1++
				r.stats.CellAccesses++
				for _, sid := range r.cellSegs[cid] {
					r.updateInterest(sid, cid)
				}
			} else if r.p2 >= len(r.sl2) && r.p3 >= len(r.sl3) {
				return nil // every list exhausted; UB is zero
			}
		case 1:
			r.p2 = r.skipFinal(r.sl2, r.p2)
			if r.p2 < len(r.sl2) {
				r.stats.SL2Accesses++
				r.finalizeSegment(r.sl2[r.p2])
				r.p2++
			}
		default:
			r.p3 = r.skipFinal(r.sl3, r.p3)
			if r.p3 < len(r.sl3) {
				r.stats.SL3Accesses++
				r.finalizeSegment(r.sl3[r.p3])
				r.p3++
			}
		}
		src = (src + 1) % 3
	}
}

// remainingCells returns how many cells a segment still needs to visit to
// become final (all of Cε(ℓ) when unseen).
func (r *soiRun) remainingCells(sid network.SegmentID) int {
	if st := &r.states[sid]; st.seen {
		return st.remaining
	}
	return len(r.segCells[sid])
}

// finalizeSegment visits every remaining ε-near cell of the segment,
// bringing it to the final state with exact interest.
func (r *soiRun) finalizeSegment(sid network.SegmentID) {
	r.stats.SegmentAccesses++
	r.state(sid)
	r.drainSegment(sid)
}

// drainSegment visits every remaining cell of a seen segment.
func (r *soiRun) drainSegment(sid network.SegmentID) {
	st := &r.states[sid]
	for i, c := range st.cells {
		if st.final {
			return
		}
		if st.visited[i] {
			continue
		}
		st.visited[i] = true
		st.remaining--
		r.applyVisit(sid, st, i, c)
	}
}

// refine extracts the k most interesting streets from the seen segments
// (Algorithm 1 lines 25–28), finalizing segments only "as necessary":
// candidates are processed in decreasing order of an interest upper bound
// (accounted mass plus the full relevant weight of every unvisited cell),
// and processing stops once the next candidate's upper bound cannot beat
// the k-th best exact street interest. Streets with zero interest are not
// reported; ties are broken by street id for determinism.
func (r *soiRun) refine() ([]StreetResult, error) {
	// Relevant weight per cell, for the per-segment upper bounds. SL1
	// entries carry exactly min(|Pc|, Σψ I[ψ][c]).
	cellW := make(map[grid.CellID]float64, len(r.sl1))
	for _, e := range r.sl1 {
		cellW[e.Cell] = e.Weight
	}
	type candidate struct {
		sid network.SegmentID
		ub  float64
	}
	cands := make([]candidate, 0, len(r.seen))
	for _, sid := range r.seen {
		st := &r.states[sid]
		pot := st.mass
		for i, c := range st.cells {
			if !st.visited[i] {
				pot += cellW[c]
			}
		}
		if pot <= 0 {
			continue
		}
		cands = append(cands, candidate{
			sid: sid,
			ub:  Interest(pot, r.ix.net.Segment(sid).Length(), r.eps),
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ub != cands[j].ub {
			return cands[i].ub > cands[j].ub
		}
		return cands[i].sid < cands[j].sid
	})

	type best struct {
		interest float64
		seg      network.SegmentID
		mass     float64
	}
	streetBest := make(map[network.StreetID]best)
	exactTopK := newStreetTopK(r.k)
	for _, c := range cands {
		if err := r.checkpoint(SiteRefine); err != nil {
			return nil, err
		}
		// Strictly below the k-th exact interest: the candidate can
		// neither enter nor tie into the top-k. The comparison must be
		// strict so that exact ties at the boundary are always drained —
		// that keeps the reported set a pure function of the query, no
		// matter how much of the search earlier runs short-circuited
		// through a shared MassCache.
		if bound := exactTopK.Bound(); bound > 0 && c.ub < bound {
			break
		}
		st := &r.states[c.sid]
		if !st.final {
			r.stats.RefineDrained++
			r.drainSegment(c.sid)
		}
		if st.mass <= 0 {
			continue
		}
		in := Interest(st.mass, r.ix.net.Segment(c.sid).Length(), r.eps)
		street := r.ix.net.Segment(c.sid).Street
		exactTopK.Update(uint32(street), in)
		cur, ok := streetBest[street]
		if !ok || in > cur.interest || (in == cur.interest && c.sid < cur.seg) {
			streetBest[street] = best{interest: in, seg: c.sid, mass: st.mass}
		}
	}
	out := make([]StreetResult, 0, len(streetBest))
	for street, b := range streetBest {
		out = append(out, StreetResult{
			Street:      street,
			Name:        r.ix.net.Street(street).Name,
			Interest:    b.interest,
			BestSegment: b.seg,
			Mass:        b.mass,
		})
	}
	sortResults(out)
	if len(out) > r.k {
		out = out[:r.k]
	}
	return out, nil
}

// SortResults orders street results canonically: by decreasing interest,
// breaking ties by ascending street id. Every evaluator in this package
// reports results in this order; external reference implementations (the
// brute-force oracle in internal/oracle) use it so that result lists are
// comparable element-wise.
func SortResults(rs []StreetResult) { sortResults(rs) }

// sortResults orders street results by decreasing interest, breaking ties
// by street id.
func sortResults(rs []StreetResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Interest != rs[j].Interest {
			return rs[i].Interest > rs[j].Interest
		}
		return rs[i].Street < rs[j].Street
	})
}
