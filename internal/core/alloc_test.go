package core

import (
	"context"
	"math/rand"
	"testing"
)

// allocWorld builds a deterministic mid-size scenario plus a query whose
// evaluation touches filter, refine and drain paths.
func allocWorld(tb testing.TB) (*Index, *SlabIndex, Query) {
	tb.Helper()
	rng := rand.New(rand.NewSource(4242))
	var ix *Index
	for {
		ix = randomScenario(rng)
		if ix.POIs().Len() >= 120 && ix.Network().NumSegments() >= 20 {
			break
		}
	}
	six, err := NewSlabIndex(ix.Network(), ix.POIs(), IndexConfig{CellSize: ix.Grid().CellSize()})
	if err != nil {
		tb.Fatal(err)
	}
	q := Query{Keywords: []string{"shop", "food"}, K: 5, Epsilon: 0.6}
	return ix, six, q
}

// TestSlabQueryZeroAllocs pins the steady-state allocation budget of the
// slab hot path at exactly zero: after the ε-plan is memoized and the
// pooled run has grown its arenas, a resolved query must not allocate.
// If this test starts failing, some scratch structure stopped being
// reused — treat it as a performance regression, not flakiness.
func TestSlabQueryZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are not meaningful under -race")
	}
	_, six, q := allocWorld(t)
	six.Warm(q.Epsilon)
	resolved, err := six.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	out := make([]StreetResult, 0, q.K)
	// Prime the pool so arena growth happens outside the measured runs.
	for i := 0; i < 3; i++ {
		if out, _, err = six.SOIResolved(ctx, resolved, q.K, q.Epsilon, nil, out[:0]); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) == 0 {
		t.Fatal("query returned no results; world too sparse for the gate to mean anything")
	}
	allocs := testing.AllocsPerRun(200, func() {
		out, _, err = six.SOIResolved(ctx, resolved, q.K, q.Epsilon, nil, out[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("slab query allocated %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkSOIMap and BenchmarkSOISlab measure the same query on the two
// index layouts; -benchmem makes the allocation gap visible and
// `benchstat` the throughput one. The slab path must stay at 0 allocs/op.
func BenchmarkSOIMap(b *testing.B) {
	ix, _, q := allocWorld(b)
	ix.Warm(q.Epsilon)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.SOIWithStrategy(q, CostAware); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSOISlab(b *testing.B) {
	_, six, q := allocWorld(b)
	six.Warm(q.Epsilon)
	resolved, err := six.Resolve(q)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	out := make([]StreetResult, 0, q.K)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, _, err = six.SOIResolved(ctx, resolved, q.K, q.Epsilon, nil, out[:0]); err != nil {
			b.Fatal(err)
		}
	}
}
