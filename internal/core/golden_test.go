package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/stats"
)

// TestGoldenPruningCounts pins the exact observability counters of a
// fixed-seed workload. The synthetic city, the index construction and
// Algorithm 1 are all deterministic, so any drift in these numbers means
// the pruning behavior changed — a change that must be deliberate, since
// the counters are the paper's Section 6 efficiency evidence. Update the
// expected values only alongside an intentional algorithm change.
func TestGoldenPruningCounts(t *testing.T) {
	ds, err := datagen.Generate(datagen.Small(1))
	if err != nil {
		t.Fatal(err)
	}
	const epsilon = 0.0005
	ix, err := NewIndex(ds.Network, ds.POIs, IndexConfig{CellSize: epsilon})
	if err != nil {
		t.Fatal(err)
	}

	// The paper's keyword progression, one query per prefix, evaluated
	// twice over one shared mass cache: the first pass computes every
	// exact mass (all misses), the second answers them from the cache, so
	// the hit/miss split is part of the golden contract too.
	progression := []string{"religion", "education", "food", "services"}
	rec := stats.NewRecorder()
	mc := NewMassCache(0)
	for pass := 0; pass < 2; pass++ {
		for n := 1; n <= len(progression); n++ {
			q := Query{Keywords: progression[:n], K: 10, Epsilon: epsilon}
			_, st, err := ix.SOIWithCache(q, CostAware, mc)
			if err != nil {
				t.Fatalf("pass %d, query ψ=%d: %v", pass, n, err)
			}
			st.Record(rec)
		}
	}
	// One literal Algorithm 1 schedule on a cold mass cache, so the SL2
	// counter (zero under the cost-aware schedule on this workload) is
	// exercised too.
	q := Query{Keywords: progression, K: 10, Epsilon: epsilon}
	_, st, err := ix.SOIWithCache(q, RoundRobin, NewMassCache(0))
	if err != nil {
		t.Fatal(err)
	}
	st.Record(rec)

	got := rec.Snapshot().Core
	want := stats.CoreSnapshot{
		Evaluations:       9,
		SL1CellsPopped:    3065,
		SL2SegmentsPopped: 164,
		SL3SegmentsPopped: 180,
		FilterIterations:  3402,
		CellVisits:        13723,
		SegmentsSeen:      4976,
		SegmentsFinal:     463,
		MassCacheHits:     62,
		MassCacheMisses:   401,
		RefineDrained:     59,
	}
	// Wall-clock fields vary run to run; compare only the counters.
	got.BuildListsNanos, got.FilterNanos, got.RefineNanos = 0, 0, 0
	if got != want {
		t.Fatalf("pruning counters drifted:\n got %+v\nwant %+v", got, want)
	}
}
