package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// IndexConfig controls offline index construction.
type IndexConfig struct {
	// CellSize is the grid cell side length; must be positive. The paper
	// leaves the cell size arbitrary; a size close to the query ε keeps
	// the ε-augmented maps small.
	CellSize float64
	// Compact additionally flattens the grid into a struct-of-arrays slab
	// (grid.Slab) and routes cost-aware SOI evaluations through the
	// allocation-free slab path. Results are bit-identical either way;
	// only the evaluation machinery differs. Dynamic insertions (AddPOI)
	// drop the slab and fall back to the map path.
	Compact bool
	// Bounds, when non-zero, fixes the grid extent instead of deriving it
	// from the network and corpus. Spatial sharding (internal/shard) sets
	// it to the unpartitioned world's bounds so that every shard index
	// uses the exact global cell lattice: identical cell ids, identical
	// Cε(ℓ) cell orders, and therefore bit-identical mass folds. Objects
	// outside the given bounds are clamped into border cells by the grid.
	Bounds geo.Rect
}

// weightedEntry is one entry of the weighted global inverted index: the
// total weight of POIs in Cell carrying a keyword.
type weightedEntry struct {
	Cell   grid.CellID
	Weight float64
}

// kwPostings holds one keyword's cell weights, with the sorted entry list
// rebuilt lazily after dynamic POI insertions dirty it.
type kwPostings struct {
	weights map[grid.CellID]float64
	sorted  []weightedEntry
	dirty   bool
}

// entries returns the keyword's cells sorted decreasingly by relevant
// weight, rebuilding after insertions.
func (kp *kwPostings) entries() []weightedEntry {
	if kp.dirty {
		kp.sorted = kp.sorted[:0]
		for cell, w := range kp.weights {
			kp.sorted = append(kp.sorted, weightedEntry{Cell: cell, Weight: w})
		}
		sortEntries(kp.sorted)
		kp.dirty = false
	}
	return kp.sorted
}

// sortEntries orders entries decreasingly by weight, ties by cell id.
func sortEntries(es []weightedEntry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Weight != es[j].Weight {
			return es[i].Weight > es[j].Weight
		}
		return es[i].Cell < es[j].Cell
	})
}

// Index is the offline data structure set of Section 3.2.1: a spatial grid
// over the POIs with per-cell inverted indexes, a global inverted index
// from keywords to cells, and the cell↔segment maps. Segment lists
// augmented by a query distance ε are computed on first use and memoized
// per ε.
//
// Read-only contract: once built, an Index is immutable from the point of
// view of query evaluation and safe for any number of concurrent readers
// (SOI, Baseline, the accessor methods, and the ε-memo getters, which
// guard their caches internally). All per-run mutable state lives in
// soiRun, allocated fresh per evaluation. The only mutating operation is
// AddPOI, which must be externally serialized against all readers; see
// dynamic.go.
type Index struct {
	net  *network.Network
	pois *poi.Corpus
	grid *grid.Grid

	// inv is the weighted global inverted index: keyword → cells sorted
	// decreasingly by relevant POI weight.
	inv map[vocab.ID]*kwPostings
	// cellWeight is the total POI weight per non-empty cell (|Pc| in the
	// unweighted setting).
	cellWeight map[grid.CellID]float64

	// segsByLen lists segment ids sorted increasingly by length (the
	// query-independent source list SL3).
	segsByLen []network.SegmentID

	// mu guards the ε-memo maps below and the lazily rebuilt postings
	// entries; the read paths take the read lock only, so concurrent
	// queries over distinct or warmed ε values do not serialize.
	mu       sync.RWMutex
	segCells map[float64][][]grid.CellID // ε → per-segment Cε(ℓ)
	cellSegs map[float64]map[grid.CellID][]network.SegmentID
	sl2      map[float64][]network.SegmentID // ε → segments desc by |Cε(ℓ)|

	// six, when non-nil, is the compact slab evaluator cost-aware SOI
	// queries route through (IndexConfig.Compact or NewIndexFromSlab).
	// AddPOI sets it to nil, falling back to the map path.
	six *SlabIndex
}

// NewIndex builds the offline index over a network and POI corpus.
func NewIndex(net *network.Network, pois *poi.Corpus, cfg IndexConfig) (*Index, error) {
	if cfg.CellSize <= 0 {
		return nil, fmt.Errorf("core: non-positive cell size %v", cfg.CellSize)
	}
	all := pois.All()
	pts := make([]geo.Point, len(all))
	keys := make([]vocab.Set, len(all))
	for i := range all {
		pts[i] = all[i].Loc
		keys[i] = all[i].Keywords
	}
	bounds, err := deriveBounds(net, pts, cfg)
	if err != nil {
		return nil, err
	}
	g, err := grid.Build(grid.Config{CellSize: cfg.CellSize, Bounds: bounds}, pts, keys)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		net:        net,
		pois:       pois,
		grid:       g,
		inv:        make(map[vocab.ID]*kwPostings),
		cellWeight: make(map[grid.CellID]float64),
		segCells:   make(map[float64][][]grid.CellID),
		cellSegs:   make(map[float64]map[grid.CellID][]network.SegmentID),
		sl2:        make(map[float64][]network.SegmentID),
	}
	ix.buildInverted()
	// SL3: segments by increasing length, ties by id.
	segs := net.Segments()
	ix.segsByLen = make([]network.SegmentID, len(segs))
	for i := range segs {
		ix.segsByLen[i] = segs[i].ID
	}
	sort.Slice(ix.segsByLen, func(i, j int) bool {
		a, b := net.Segment(ix.segsByLen[i]), net.Segment(ix.segsByLen[j])
		if a.Length() != b.Length() {
			return a.Length() < b.Length()
		}
		return a.ID < b.ID
	})
	if cfg.Compact {
		weights := make([]float64, len(all))
		for i := range all {
			weights[i] = all[i].Weight
		}
		slab, err := grid.NewSlab(g, pts, weights)
		if err != nil {
			return nil, err
		}
		ix.six, err = NewSlabIndexFromSlab(net, pois, slab)
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// NewIndexFromSlab reconstructs a full index from a prebuilt slab (for
// example, one loaded from a snapshot) without re-ingesting the POIs: the
// map-layout grid aliases the slab's arrays, the weighted inverted index
// and per-cell weights are read straight out of the slab's vocab-major
// CSR (already in sortEntries order), and cost-aware SOI evaluations
// route through the slab path. The resulting index answers every query
// bit-identically to NewIndex over the same data with Compact set.
func NewIndexFromSlab(net *network.Network, pois *poi.Corpus, slab *grid.Slab) (*Index, error) {
	six, err := NewSlabIndexFromSlab(net, pois, slab)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		net:        net,
		pois:       pois,
		grid:       grid.FromSlab(slab),
		inv:        make(map[vocab.ID]*kwPostings, slab.VocabN),
		cellWeight: make(map[grid.CellID]float64, slab.NumCells()),
		segCells:   make(map[float64][][]grid.CellID),
		cellSegs:   make(map[float64]map[grid.CellID][]network.SegmentID),
		sl2:        make(map[float64][]network.SegmentID),
		six:        six,
	}
	for ord, cid := range slab.CellIDs {
		ix.cellWeight[grid.CellID(cid)] = slab.CellWeight[ord]
	}
	for kw := 0; kw < slab.VocabN; kw++ {
		lo, hi := slab.InvOff[kw], slab.InvOff[kw+1]
		if lo == hi {
			continue
		}
		kp := &kwPostings{
			weights: make(map[grid.CellID]float64, hi-lo),
			sorted:  make([]weightedEntry, 0, hi-lo),
		}
		// The slab's entries are sorted decreasingly by weight, ties by
		// ascending ordinal — exactly the sortEntries order, since cell
		// ordinals are cell-id order.
		for j := lo; j < hi; j++ {
			cid := grid.CellID(slab.CellIDs[slab.InvCell[j]])
			kp.weights[cid] = slab.InvWeight[j]
			kp.sorted = append(kp.sorted, weightedEntry{Cell: cid, Weight: slab.InvWeight[j]})
		}
		ix.inv[vocab.ID(kw)] = kp
	}
	segs := net.Segments()
	ix.segsByLen = make([]network.SegmentID, len(segs))
	for i := range segs {
		ix.segsByLen[i] = segs[i].ID
	}
	sort.Slice(ix.segsByLen, func(i, j int) bool {
		a, b := net.Segment(ix.segsByLen[i]), net.Segment(ix.segsByLen[j])
		if a.Length() != b.Length() {
			return a.Length() < b.Length()
		}
		return a.ID < b.ID
	})
	return ix, nil
}

// SlabIndex returns the compact slab evaluator attached to this index, or
// nil when the index was built without Compact (or invalidated by AddPOI).
func (ix *Index) SlabIndex() *SlabIndex { return ix.six }

// parallelInvThreshold is the non-empty-cell count below which the
// sharded inverted-index build is not worth the goroutine overhead.
const parallelInvThreshold = 512

// buildInverted derives the weighted global inverted index and the
// per-cell total weights from the grid, sharding the per-cell work across
// GOMAXPROCS workers for large grids. Each worker owns a disjoint chunk
// of cells and accumulates private maps; the merge assigns disjoint
// (keyword, cell) entries, so the result is identical to a sequential
// build. The sorted entry lists are materialized before returning so a
// freshly built index is immediately safe for concurrent queries.
func (ix *Index) buildInverted() {
	cells := ix.grid.NonEmptyCells()
	workers := runtime.GOMAXPROCS(0)
	if len(cells) < parallelInvThreshold || workers < 2 {
		for _, cid := range cells {
			ix.accumulateCell(cid, ix.grid.CellAt(cid), ix.inv)
		}
		for _, kp := range ix.inv {
			kp.entries()
		}
		return
	}
	partials := make([]map[vocab.ID]*kwPostings, workers)
	weights := make([]map[grid.CellID]float64, workers)
	var wg sync.WaitGroup
	chunk := (len(cells) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= len(cells) {
			break
		}
		if hi > len(cells) {
			hi = len(cells)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sub := &Index{pois: ix.pois, cellWeight: make(map[grid.CellID]float64)}
			inv := make(map[vocab.ID]*kwPostings)
			for _, cid := range cells[lo:hi] {
				sub.accumulateCell(cid, ix.grid.CellAt(cid), inv)
			}
			partials[w] = inv
			weights[w] = sub.cellWeight
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range partials {
		for cid, total := range weights[w] {
			ix.cellWeight[cid] = total
		}
		for kw, part := range partials[w] {
			kp := ix.inv[kw]
			if kp == nil {
				ix.inv[kw] = part
				continue
			}
			for cid, wt := range part.weights {
				kp.weights[cid] = wt
			}
		}
	}
	// Materialize the sorted entry lists in parallel: each keyword's
	// postings struct is touched by exactly one worker.
	kps := make([]*kwPostings, 0, len(ix.inv))
	for _, kp := range ix.inv {
		kp.dirty = true
		kps = append(kps, kp)
	}
	chunk = (len(kps) + workers - 1) / workers
	for lo := 0; lo < len(kps); lo += chunk {
		hi := lo + chunk
		if hi > len(kps) {
			hi = len(kps)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for _, kp := range kps[lo:hi] {
				kp.entries()
			}
		}(lo, hi)
	}
	wg.Wait()
}

// accumulateCell folds one cell's members into the total-weight map and
// its postings into the given inverted index.
func (ix *Index) accumulateCell(id grid.CellID, c *grid.Cell, inv map[vocab.ID]*kwPostings) {
	var total float64
	for _, m := range c.Members {
		total += ix.pois.Get(m).Weight
	}
	ix.cellWeight[id] = total
	for kw, postings := range c.Inv {
		var w float64
		for _, m := range postings {
			w += ix.pois.Get(m).Weight
		}
		kp := inv[kw]
		if kp == nil {
			kp = &kwPostings{weights: make(map[grid.CellID]float64)}
			inv[kw] = kp
		}
		kp.weights[id] = w
		kp.dirty = true
	}
}

// Network returns the indexed road network.
func (ix *Index) Network() *network.Network { return ix.net }

// POIs returns the indexed POI corpus.
func (ix *Index) POIs() *poi.Corpus { return ix.pois }

// Grid returns the underlying POI grid.
func (ix *Index) Grid() *grid.Grid { return ix.grid }

// SegmentCells returns the ε-augmented segment-to-cell map: for every
// segment, the non-empty grid cells within distance eps. The result is
// memoized per eps; callers must not modify it. Concurrent callers may
// race to build the map for a fresh eps; each computes an identical value
// and the last store wins, so every returned map is valid.
func (ix *Index) SegmentCells(eps float64) [][]grid.CellID {
	ix.mu.RLock()
	sc, ok := ix.segCells[eps]
	ix.mu.RUnlock()
	if ok {
		return sc
	}
	segs := ix.net.Segments()
	sc = make([][]grid.CellID, len(segs))
	for i := range segs {
		sc[i] = ix.grid.CellsNearSegment(segs[i].Geom, eps)
	}
	ix.mu.Lock()
	ix.segCells[eps] = sc
	ix.mu.Unlock()
	return sc
}

// CellSegments returns the ε-augmented cell-to-segment map Lε: for every
// non-empty cell, the segments within distance eps. Memoized per eps;
// callers must not modify it.
func (ix *Index) CellSegments(eps float64) map[grid.CellID][]network.SegmentID {
	ix.mu.RLock()
	cs, ok := ix.cellSegs[eps]
	ix.mu.RUnlock()
	if ok {
		return cs
	}
	sc := ix.SegmentCells(eps)
	cs = make(map[grid.CellID][]network.SegmentID)
	for sid, cells := range sc {
		for _, c := range cells {
			cs[c] = append(cs[c], network.SegmentID(sid))
		}
	}
	ix.mu.Lock()
	ix.cellSegs[eps] = cs
	ix.mu.Unlock()
	return cs
}

// SegmentsByCellCount returns the segments sorted decreasingly by the
// number of ε-near cells (the SOI source list SL2). Like the cell↔segment
// maps, it depends only on ε and is memoized; the paper treats these maps
// as offline structures augmented once per ε.
func (ix *Index) SegmentsByCellCount(eps float64) []network.SegmentID {
	ix.mu.RLock()
	sl, ok := ix.sl2[eps]
	ix.mu.RUnlock()
	if ok {
		return sl
	}
	sc := ix.SegmentCells(eps)
	sl = make([]network.SegmentID, len(sc))
	for i := range sc {
		sl[i] = network.SegmentID(i)
	}
	sort.Slice(sl, func(i, j int) bool {
		a, b := sl[i], sl[j]
		if len(sc[a]) != len(sc[b]) {
			return len(sc[a]) > len(sc[b])
		}
		return a < b
	})
	ix.mu.Lock()
	ix.sl2[eps] = sl
	ix.mu.Unlock()
	return sl
}

// Warm precomputes every ε-dependent structure (the augmented cell↔segment
// maps and SL2) so that subsequent query timings measure only query work.
func (ix *Index) Warm(eps float64) {
	ix.SegmentCells(eps)
	ix.CellSegments(eps)
	ix.SegmentsByCellCount(eps)
	if ix.six != nil {
		ix.six.Warm(eps)
	}
}

// buildSL1 returns the query's source list SL1: cells sorted decreasingly
// by min(|Pc|, Σψ I[ψ][c]) (Algorithm 1 line 2, generalized to POI
// weights). For a single keyword the list is the keyword's inverted entry
// itself, which is already capped and sorted.
func (ix *Index) buildSL1(query vocab.Set) []weightedEntry {
	if len(query) == 1 {
		return ix.entriesFor(query[0])
	}
	acc := make(map[grid.CellID]float64)
	for _, kw := range query {
		for _, e := range ix.entriesFor(kw) {
			acc[e.Cell] += e.Weight
		}
	}
	out := make([]weightedEntry, 0, len(acc))
	for cell, w := range acc {
		if tw := ix.cellWeight[cell]; w > tw {
			w = tw
		}
		out = append(out, weightedEntry{Cell: cell, Weight: w})
	}
	sortEntries(out)
	return out
}

// cellMassContribution returns the total weight of POIs in cell c that
// match the query and lie within eps of segment geometry seg. It realizes
// the body of procedure UpdateInterest: the per-keyword postings lists of
// the cell are traversed synchronously (they are sorted by POI id) so each
// matching POI is counted once.
func (ix *Index) cellMassContribution(c *grid.Cell, query vocab.Set, sid network.SegmentID, eps float64) float64 {
	seg := ix.net.Segment(sid).Geom
	epsSq := eps * eps
	var mass float64
	switch len(query) {
	case 0:
		return 0
	case 1:
		for _, m := range c.Inv[query[0]] {
			p := ix.pois.Get(m)
			if seg.DistToPointSq(p.Loc) <= epsSq {
				mass += p.Weight
			}
		}
		return mass
	}
	// Synchronous traversal of the sorted postings lists: repeatedly take
	// the smallest id across list heads, skipping duplicates.
	lists := make([][]uint32, 0, len(query))
	for _, kw := range query {
		if ps := c.Inv[kw]; len(ps) > 0 {
			lists = append(lists, ps)
		}
	}
	const sentinel = ^uint32(0)
	for {
		minID := sentinel
		for _, l := range lists {
			if len(l) > 0 && l[0] < minID {
				minID = l[0]
			}
		}
		if minID == sentinel {
			break
		}
		for i := range lists {
			if len(lists[i]) > 0 && lists[i][0] == minID {
				lists[i] = lists[i][1:]
			}
		}
		p := ix.pois.Get(minID)
		if seg.DistToPointSq(p.Loc) <= epsSq {
			mass += p.Weight
		}
	}
	return mass
}

// entriesFor returns a keyword's sorted cell entries. The fast path is a
// read-locked lookup of the materialized list; the write lock is taken
// only to rebuild entries dirtied by dynamic insertions.
func (ix *Index) entriesFor(kw vocab.ID) []weightedEntry {
	ix.mu.RLock()
	kp := ix.inv[kw]
	if kp == nil {
		ix.mu.RUnlock()
		return nil
	}
	if !kp.dirty {
		es := kp.sorted
		ix.mu.RUnlock()
		return es
	}
	ix.mu.RUnlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return kp.entries()
}

// cellMassScan computes the same quantity as cellMassContribution but the
// way the paper's baseline BL does: it "uses only the spatial grid index",
// scanning every POI of the cell and testing the keyword predicate
// directly, without the per-cell inverted indexes. Its cost is therefore
// independent of |Ψ| (the paper notes "the value of |Ψ| has no effect in
// BL").
func (ix *Index) cellMassScan(c *grid.Cell, query vocab.Set, sid network.SegmentID, eps float64) float64 {
	seg := ix.net.Segment(sid).Geom
	epsSq := eps * eps
	var mass float64
	for _, m := range c.Members {
		p := ix.pois.Get(m)
		if p.Keywords.Intersects(query) && seg.DistToPointSq(p.Loc) <= epsSq {
			mass += p.Weight
		}
	}
	return mass
}

// SegmentMass computes the exact relevant mass of a segment (Def. 1) by
// visiting every ε-near cell.
func (ix *Index) SegmentMass(sid network.SegmentID, query vocab.Set, eps float64) float64 {
	var mass float64
	for _, cid := range ix.SegmentCells(eps)[sid] {
		mass += ix.cellMassContribution(ix.grid.CellAt(cid), query, sid, eps)
	}
	return mass
}

// SegmentInterest computes the exact interest of a segment (Def. 2).
func (ix *Index) SegmentInterest(sid network.SegmentID, query vocab.Set, eps float64) float64 {
	return Interest(ix.SegmentMass(sid, query, eps), ix.net.Segment(sid).Length(), eps)
}

// CountRelevantInCells returns the number of POIs matching the query, per
// the weighted global inverted index (used by the Table 4 experiment).
func (ix *Index) CountRelevant(query vocab.Set) int {
	return ix.pois.CountRelevant(query)
}
