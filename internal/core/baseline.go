package core

import (
	"fmt"
	"time"

	"repro/internal/network"
)

// Aggregate selects how a street's interest is derived from its segments.
// The paper uses MaxSegment (Definition 3, Eq. 1); the others are the
// "several alternatives" the paper mentions, kept as ablation options of
// the baseline evaluator.
type Aggregate int

const (
	// MaxSegment takes the maximum segment interest (the paper's Eq. 1).
	MaxSegment Aggregate = iota
	// MeanSegment averages segment interests over the street.
	MeanSegment
	// TotalDensity divides the street's total mass by its total
	// ε-neighborhood area, treating the street as one long segment.
	TotalDensity
)

// String implements fmt.Stringer.
func (a Aggregate) String() string {
	switch a {
	case MaxSegment:
		return "max-segment"
	case MeanSegment:
		return "mean-segment"
	case TotalDensity:
		return "total-density"
	default:
		return fmt.Sprintf("aggregate(%d)", int(a))
	}
}

// Baseline evaluates a k-SOI query exactly, the paper's BL: it uses only
// the spatial grid to compute the interest of every segment, then ranks
// streets. It returns the same result set as SOI (up to ties at the k-th
// interest value).
func (ix *Index) Baseline(q Query) ([]StreetResult, Stats, error) {
	return ix.BaselineAggregate(q, MaxSegment)
}

// BaselineAggregate is Baseline with a configurable street aggregation.
func (ix *Index) BaselineAggregate(q Query, agg Aggregate) ([]StreetResult, Stats, error) {
	query, err := ix.resolveQuery(q)
	if err != nil {
		return nil, Stats{}, err
	}
	var stats Stats
	stats.TotalSegments = ix.net.NumSegments()
	stats.TotalCells = ix.grid.NumCells()

	start := time.Now()
	segCells := ix.SegmentCells(q.Epsilon)
	stats.BuildListsTime = time.Since(start)

	start = time.Now()
	masses := make([]float64, ix.net.NumSegments())
	for sid := range masses {
		var m float64
		for _, cid := range segCells[sid] {
			m += ix.cellMassScan(ix.grid.CellAt(cid), query, network.SegmentID(sid), q.Epsilon)
			stats.CellVisits++
		}
		masses[sid] = m
		stats.SegmentAccesses++
	}
	stats.SegmentsSeen = len(masses)
	stats.SegmentsFinal = len(masses)
	stats.FilterTime = time.Since(start)

	start = time.Now()
	out := aggregateStreets(ix.net, masses, q.Epsilon, agg)
	if len(out) > q.K {
		out = out[:q.K]
	}
	stats.RefineTime = time.Since(start)
	return out, stats, nil
}

// aggregateStreets folds exact segment masses into ranked street results.
func aggregateStreets(net *network.Network, masses []float64, eps float64, agg Aggregate) []StreetResult {
	out := make([]StreetResult, 0, 64)
	for i := range net.Streets() {
		st := net.Street(network.StreetID(i))
		var (
			res       StreetResult
			sumInt    float64
			sumMass   float64
			sumLength float64
			bestSet   bool
		)
		for _, sid := range st.Segments {
			m := masses[sid]
			seg := net.Segment(sid)
			in := Interest(m, seg.Length(), eps)
			sumInt += in
			sumMass += m
			sumLength += seg.Length()
			if !bestSet || in > res.Interest {
				bestSet = true
				res.Interest = in
				res.BestSegment = sid
				res.Mass = m
			}
		}
		switch agg {
		case MeanSegment:
			res.Interest = sumInt / float64(len(st.Segments))
		case TotalDensity:
			res.Interest = Interest(sumMass, sumLength, eps)
		}
		if res.Interest <= 0 {
			continue
		}
		res.Street = st.ID
		res.Name = st.Name
		out = append(out, res)
	}
	sortResults(out)
	return out
}

// AllSegmentInterests computes the exact interest of every segment; the
// exhaustive oracle used by tests and effectiveness studies.
func (ix *Index) AllSegmentInterests(q Query) ([]float64, error) {
	query, err := ix.resolveQuery(q)
	if err != nil {
		return nil, err
	}
	out := make([]float64, ix.net.NumSegments())
	for sid := range out {
		out[sid] = Interest(
			ix.SegmentMass(network.SegmentID(sid), query, q.Epsilon),
			ix.net.Segment(network.SegmentID(sid)).Length(),
			q.Epsilon,
		)
	}
	return out, nil
}
