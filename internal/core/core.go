// Package core implements the paper's first contribution: the k-SOI query
// (Problem 1) and the SOI top-k algorithm (Algorithm 1) that evaluates it,
// together with the exact baseline BL used in the paper's performance
// study (Section 5.2.1).
//
// Given a road network, a POI corpus and a query q = ⟨Ψ, k, ε⟩, the k-SOI
// query returns the k streets with the highest interest, where a segment's
// interest is its relevant-POI mass density over the ε-neighborhood area
// 2ε·len(ℓ) + πε² (Definitions 1–2) and a street's interest is the maximum
// interest among its segments (Definition 3).
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/vocab"
)

// Query is a k-SOI query q = ⟨Ψ, k, ε⟩.
type Query struct {
	// Keywords is the query keyword set Ψ.
	Keywords []string
	// K is the number of streets to return.
	K int
	// Epsilon is the distance threshold ε in coordinate units.
	Epsilon float64
}

// Validate reports whether the query is well formed.
func (q Query) Validate() error {
	if len(q.Keywords) == 0 {
		return errors.New("core: query needs at least one keyword")
	}
	if q.K <= 0 {
		return fmt.Errorf("core: non-positive k %d", q.K)
	}
	if q.Epsilon <= 0 {
		return fmt.Errorf("core: non-positive epsilon %v", q.Epsilon)
	}
	return nil
}

// StreetResult is one entry of a k-SOI answer.
type StreetResult struct {
	Street      network.StreetID
	Name        string
	Interest    float64
	BestSegment network.SegmentID
	// Mass is the relevant-POI mass of the best segment.
	Mass float64
}

// Stats records the work performed by a query evaluation, including the
// per-phase timing breakdown reported in the paper's Figure 4.
type Stats struct {
	BuildListsTime time.Duration
	FilterTime     time.Duration
	RefineTime     time.Duration

	// CellAccesses counts pops from source list SL1.
	CellAccesses int
	// SegmentAccesses counts pops from source lists SL2 and SL3.
	SegmentAccesses int
	// SL2Accesses and SL3Accesses split SegmentAccesses by source list:
	// finalizations driven by the cell-count order (SL2) versus the
	// length order (SL3).
	SL2Accesses int
	SL3Accesses int
	// FilterIterations counts iterations of the filter phase's UB/LBk
	// loop (one bound comparison each).
	FilterIterations int
	// CellVisits counts UpdateInterest invocations that did work.
	CellVisits int
	// SegmentCacheHits counts segments whose exact mass was answered from
	// a shared MassCache, skipping every cell visit.
	SegmentCacheHits int
	// SegmentsSeen counts segments that left the unseen state.
	SegmentsSeen int
	// SegmentsFinal counts segments whose exact interest was computed.
	SegmentsFinal int
	// RefineDrained counts segments finalized during the refinement
	// phase — the "as necessary" exact-mass computations of Algorithm 1
	// lines 25–28.
	RefineDrained int
	// TotalSegments and TotalCells size the search space.
	TotalSegments int
	TotalCells    int
}

// Record folds one evaluation's counters into a shared recorder. A nil
// recorder is a no-op, so the disabled path costs a single branch per
// query; the per-cell hot loops never touch an atomic.
func (s Stats) Record(rec *stats.Recorder) {
	if rec == nil {
		return
	}
	c := &rec.Core
	c.Evaluations.Add(1)
	c.SL1CellsPopped.Add(int64(s.CellAccesses))
	c.SL2SegmentsPopped.Add(int64(s.SL2Accesses))
	c.SL3SegmentsPopped.Add(int64(s.SL3Accesses))
	c.FilterIterations.Add(int64(s.FilterIterations))
	c.CellVisits.Add(int64(s.CellVisits))
	c.SegmentsSeen.Add(int64(s.SegmentsSeen))
	c.SegmentsFinal.Add(int64(s.SegmentsFinal))
	c.MassCacheHits.Add(int64(s.SegmentCacheHits))
	c.MassCacheMisses.Add(int64(s.SegmentsFinal - s.SegmentCacheHits))
	c.RefineDrained.Add(int64(s.RefineDrained))
	c.BuildListsNanos.Add(s.BuildListsTime.Nanoseconds())
	c.FilterNanos.Add(s.FilterTime.Nanoseconds())
	c.RefineNanos.Add(s.RefineTime.Nanoseconds())
}

// Total returns the end-to-end evaluation time.
func (s Stats) Total() time.Duration {
	return s.BuildListsTime + s.FilterTime + s.RefineTime
}

// Interest computes the mass-density interest of Definition 2:
// mass / (2ε·len + πε²).
func Interest(mass, length, eps float64) float64 {
	return mass / (2*eps*length + math.Pi*eps*eps)
}

// resolveQuery interns the query keywords against the corpus dictionary.
// Unknown keywords contribute no POIs and are dropped.
func (ix *Index) resolveQuery(q Query) (vocab.Set, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	set, _ := ix.pois.Dict().LookupAll(q.Keywords)
	return set, nil
}
