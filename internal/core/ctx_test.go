package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestSOIContextExpiredBeforeStart: a context that is already done must
// fail the query before any list is built or popped — no evaluation work.
func TestSOIContextExpiredBeforeStart(t *testing.T) {
	ix := buildFixture(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, st, err := ix.SOIContext(ctx, Query{Keywords: []string{"shop"}, K: 2, Epsilon: 0.1}, CostAware, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatalf("results = %v, want nil (no evaluation)", res)
	}
	if st.FilterIterations != 0 || st.SegmentsSeen != 0 {
		t.Fatalf("stats = %+v, want zero work before the first checkpoint", st)
	}
}

// TestSOIContextCancelMidFilter: a cancellation that lands while the
// filter loop is parked (a wedged source, modelled by a Block fault at the
// filter checkpoint) must surface context.Canceled promptly instead of
// hanging.
func TestSOIContextCancelMidFilter(t *testing.T) {
	ix := buildFixture(t)
	block := make(chan struct{})
	defer close(block)
	faults.Activate(SiteFilter, faults.Fault{Block: block})
	defer faults.Deactivate(SiteFilter)

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res []StreetResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, _, err := ix.SOIContext(ctx, Query{Keywords: []string{"shop"}, K: 2, Epsilon: 0.1}, CostAware, nil)
		done <- outcome{res, err}
	}()

	deadline := time.After(2 * time.Second)
	for faults.Visits(SiteFilter) == 0 {
		select {
		case <-deadline:
			t.Fatal("filter checkpoint never visited")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case o := <-done:
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", o.err)
		}
		if o.res != nil {
			t.Fatalf("results = %v, want nil on cancellation", o.res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SOIContext did not observe cancellation at the filter checkpoint")
	}
}

// TestSOIContextBackgroundIdentical: threading a live background context
// must not change any answer — the checkpoints are read-only on the
// non-cancelled path.
func TestSOIContextBackgroundIdentical(t *testing.T) {
	ix := buildFixture(t)
	q := Query{Keywords: []string{"shop"}, K: 2, Epsilon: 0.1}
	want, _, err := ix.SOI(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.SOIContext(context.Background(), q, CostAware, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "ctx", got, want)
}
