// Package oracle is the correctness harness of the repository: a
// deliberately simple, allocation-heavy but obviously-correct reference
// implementation of the paper's definitions (Def. 1–3 / Eq. 1 for the
// k-SOI query, Eq. 2–5 for the MaxSum diversification objective), a
// differential driver that cross-checks every production evaluator —
// baseline BL, Algorithm 1 under both access strategies, the shared
// MassCache path, a dynamically-grown index and the parallel engine —
// against the oracle over seeded deterministic worlds, a metamorphic
// suite encoding invariants the oracle cannot check alone, and a shrinker
// that reduces a failing world to a minimal GeoJSON repro.
//
// Everything here trades speed for transparency: the oracle never touches
// a grid, an inverted index or a bound; it scans every POI against every
// segment. That makes it the acceptance gate for every performance or
// refactoring change to the query path — if a clever implementation and
// the oracle disagree, the clever implementation is wrong.
package oracle

import (
	"fmt"
	"io"
	"math"

	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/geojson"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// StreetSpec is one street of a plain-data world: a name and its
// polyline. Street ids are positional.
type StreetSpec struct {
	Name   string
	Points []geo.Point
}

// POISpec is one POI of a plain-data world, with keyword strings instead
// of interned ids so worlds survive rebuilds with different dictionaries.
type POISpec struct {
	Loc      geo.Point
	Keywords []string
	Weight   float64
}

// PhotoSpec is one photo of a plain-data world.
type PhotoSpec struct {
	Loc  geo.Point
	Tags []string
}

// World is a city reduced to plain data: the shrinker removes streets and
// POIs from it, the differential driver rebuilds indexes from it, and the
// repro writer serializes it as GeoJSON. A World is cheap to copy and
// deterministic to rebuild.
type World struct {
	Streets []StreetSpec
	POIs    []POISpec
	Photos  []PhotoSpec
	// Traces are free movement polylines for the trajectory queries.
	// They reference no street ids, so they survive street removal
	// during shrinking.
	Traces [][]geo.Point
}

// FromDataset flattens a generated dataset into a plain-data world.
func FromDataset(ds *datagen.Dataset) World {
	return fromDataset(ds, ds.POIs)
}

// FromDatasetWeighted is FromDataset with the dataset's prestige
// importance weights applied to the POIs, so the harness also exercises
// the weighted-mass paths.
func FromDatasetWeighted(ds *datagen.Dataset) World {
	return fromDataset(ds, ds.WeightedPOIs())
}

func fromDataset(ds *datagen.Dataset, pois *poi.Corpus) World {
	var w World
	net := ds.Network
	for i := range net.Streets() {
		st := net.Street(network.StreetID(i))
		first := net.Segment(st.Segments[0])
		pts := []geo.Point{first.Geom.A}
		for _, sid := range st.Segments {
			pts = append(pts, net.Segment(sid).Geom.B)
		}
		w.Streets = append(w.Streets, StreetSpec{Name: st.Name, Points: pts})
	}
	for _, p := range pois.All() {
		w.POIs = append(w.POIs, POISpec{
			Loc:      p.Loc,
			Keywords: ds.Dict.Names(p.Keywords),
			Weight:   p.Weight,
		})
	}
	for _, p := range ds.Photos.All() {
		w.Photos = append(w.Photos, PhotoSpec{Loc: p.Loc, Tags: ds.Dict.Names(p.Tags)})
	}
	return w
}

// Clone returns a deep copy; shrink steps mutate copies only.
func (w World) Clone() World {
	out := World{
		Streets: make([]StreetSpec, len(w.Streets)),
		POIs:    make([]POISpec, len(w.POIs)),
		Photos:  make([]PhotoSpec, len(w.Photos)),
	}
	for i, s := range w.Streets {
		out.Streets[i] = StreetSpec{Name: s.Name, Points: append([]geo.Point(nil), s.Points...)}
	}
	for i, p := range w.POIs {
		out.POIs[i] = POISpec{Loc: p.Loc, Keywords: append([]string(nil), p.Keywords...), Weight: p.Weight}
	}
	for i, p := range w.Photos {
		out.Photos[i] = PhotoSpec{Loc: p.Loc, Tags: append([]string(nil), p.Tags...)}
	}
	out.Traces = make([][]geo.Point, len(w.Traces))
	for i, tr := range w.Traces {
		out.Traces[i] = append([]geo.Point(nil), tr...)
	}
	return out
}

// Transform returns the world with every coordinate mapped through f —
// the rigid-motion metamorphic checks translate and rotate worlds this
// way. Keyword data is shared with the receiver.
func (w World) Transform(f func(geo.Point) geo.Point) World {
	out := World{
		Streets: make([]StreetSpec, len(w.Streets)),
		POIs:    make([]POISpec, len(w.POIs)),
		Photos:  make([]PhotoSpec, len(w.Photos)),
	}
	for i, s := range w.Streets {
		pts := make([]geo.Point, len(s.Points))
		for j, p := range s.Points {
			pts[j] = f(p)
		}
		out.Streets[i] = StreetSpec{Name: s.Name, Points: pts}
	}
	for i, p := range w.POIs {
		out.POIs[i] = POISpec{Loc: f(p.Loc), Keywords: p.Keywords, Weight: p.Weight}
	}
	for i, p := range w.Photos {
		out.Photos[i] = PhotoSpec{Loc: f(p.Loc), Tags: p.Tags}
	}
	out.Traces = make([][]geo.Point, len(w.Traces))
	for i, tr := range w.Traces {
		pts := make([]geo.Point, len(tr))
		for j, p := range tr {
			pts[j] = f(p)
		}
		out.Traces[i] = pts
	}
	return out
}

// Translate returns the world shifted by (dx, dy).
func (w World) Translate(dx, dy float64) World {
	return w.Transform(func(p geo.Point) geo.Point { return geo.Pt(p.X+dx, p.Y+dy) })
}

// Rotate returns the world rotated by theta radians around (cx, cy).
func (w World) Rotate(theta, cx, cy float64) World {
	sin, cos := math.Sin(theta), math.Cos(theta)
	return w.Transform(func(p geo.Point) geo.Point {
		x, y := p.X-cx, p.Y-cy
		return geo.Pt(cx+x*cos-y*sin, cy+x*sin+y*cos)
	})
}

// Center returns the centroid of the world's street vertices (POI
// centroid when there are no streets) — the pivot the rigid-motion checks
// rotate around.
func (w World) Center() geo.Point {
	var sx, sy float64
	n := 0
	for _, s := range w.Streets {
		for _, p := range s.Points {
			sx += p.X
			sy += p.Y
			n++
		}
	}
	if n == 0 {
		for _, p := range w.POIs {
			sx += p.Loc.X
			sy += p.Loc.Y
			n++
		}
	}
	if n == 0 {
		return geo.Pt(0, 0)
	}
	return geo.Pt(sx/float64(n), sy/float64(n))
}

// Build materializes the world into the real data structures every
// implementation consumes: a road network, a POI corpus and a photo
// corpus sharing one dictionary. Building is deterministic: street,
// segment, POI and photo ids follow spec order.
func (w World) Build() (*network.Network, *poi.Corpus, *photo.Corpus, *vocab.Dictionary, error) {
	nb := network.NewBuilder()
	for _, s := range w.Streets {
		nb.AddStreet(s.Name, s.Points)
	}
	net, err := nb.Build()
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("oracle: building network: %w", err)
	}
	dict := vocab.NewDictionary()
	pb := poi.NewBuilder(dict)
	for _, p := range w.POIs {
		weight := p.Weight
		if weight == 0 {
			weight = 1
		}
		pb.AddWeighted(p.Loc, p.Keywords, weight)
	}
	phb := photo.NewBuilder(dict)
	for _, p := range w.Photos {
		phb.Add(p.Loc, p.Tags)
	}
	return net, pb.Build(), phb.Build(), dict, nil
}

// WriteGeoJSON serializes the world as a GeoJSON FeatureCollection —
// streets as LineStrings, POIs and photos as Points — with extra
// annotation features appended (soicheck attaches the diverging query).
func (w World) WriteGeoJSON(out io.Writer, extra ...geojson.Feature) error {
	net, pois, photos, _, err := w.Build()
	if err != nil {
		return err
	}
	fc := geojson.NewCollection()
	fc.AddNetwork(net)
	fc.AddPOIs(pois)
	fc.AddPhotos(photos)
	fc.AddTraces(w.Traces)
	fc.Features = append(fc.Features, extra...)
	return fc.Write(out)
}
