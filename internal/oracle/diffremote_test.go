package oracle

import (
	"testing"
)

// TestDifferentialMatrixRemote runs a small slice of the matrix with the
// cross-process comparison enabled: every shard behind a real loopback
// HTTP server, gathered by the fault-tolerant remote client, must stay
// bit-identical to the brute-force oracle. One seed in quick mode with a
// single cell size and two tile counts keeps the HTTP round trips
// affordable for `go test`; soicheck -remote sweeps the full range.
func TestDifferentialMatrixRemote(t *testing.T) {
	if testing.Short() {
		t.Skip("remote matrix crosses the wire per shard per query")
	}
	opt := Options{
		Remote:      true,
		CellSizes:   []float64{0.0005},
		ShardCounts: []int{2, 9},
		SkipEngine:  true,
		SkipDynamic: true,
	}
	for _, cfg := range MatrixConfigs(1, true) {
		w, err := cfg.BuildWorld()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label(), err)
		}
		divs, err := DiffWorld(w, cfg.Queries, opt)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label(), err)
		}
		for _, d := range divs {
			t.Errorf("%s: %s", cfg.Label(), d)
		}
	}
}
