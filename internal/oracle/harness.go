package oracle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/diversify"
	"repro/internal/network"
)

// This file is the matrix layer: it turns a seed into deterministic
// worlds and query grids so `go test` and the soicheck CLI sweep exactly
// the same configurations.

// SeedConfig is one cell of the check matrix: a world (seed × POI
// density × weighted or not) plus the queries to run over it.
type SeedConfig struct {
	Seed int64
	// Density multiplies the Tiny profile's POI count (the |P| dimension
	// of the matrix).
	Density float64
	// Weighted applies the dataset's prestige weights, exercising the
	// weighted-mass paths.
	Weighted bool
	Queries  []core.Query
}

// Label names the config in reports.
func (c SeedConfig) Label() string {
	return fmt.Sprintf("seed=%d density=%g weighted=%t", c.Seed, c.Density, c.Weighted)
}

// BuildWorld materializes the config's world deterministically.
func (c SeedConfig) BuildWorld() (World, error) {
	p := datagen.Tiny(c.Seed)
	if c.Density > 0 {
		p.NumPOIs = int(float64(p.NumPOIs) * c.Density)
		p.NumPhotos = int(float64(p.NumPhotos) * c.Density)
		if p.HotStreetPhotos > p.NumPhotos {
			p.HotStreetPhotos = p.NumPhotos
		}
	}
	ds, err := datagen.Generate(p)
	if err != nil {
		return World{}, err
	}
	w := FromDataset(ds)
	if c.Weighted {
		w = FromDatasetWeighted(ds)
	}
	// Every world carries a few deterministic movement traces so the
	// trajectory checks always have corridors to match.
	w.Traces = datagen.Traces(ds.Network, c.Seed+1000, 6)
	return w, nil
}

// matrixVocab is the keyword pool the query grid draws from: the Tiny
// profile's categories, "shop", two long-tail noise words, and one word
// no POI carries (so empty-result and dropped-keyword paths stay covered).
var matrixVocab = []string{
	"shop", "food", "services", "education", "hotel", "park", "museum",
	"religion", "market", "cafe", "quixotic",
}

// matrixEpsilons spans sub-segment to multi-cell buffers on the Tiny
// extent (local segments are ~0.0013 long).
var matrixEpsilons = []float64{0.0002, 0.0005, 0.0012}

// matrixKs spans trivial, typical and larger-than-result-set k.
var matrixKs = []int{1, 3, 25}

// MatrixQueries returns the deterministic query grid for a seed: the
// full ε × k cross product with |Ψ| cycling 1..3 over the keyword pool,
// or a 3-query slice of it in quick mode. Different seeds rotate through
// different keyword combinations.
func MatrixQueries(seed int64, quick bool) []core.Query {
	var out []core.Query
	n := 0
	for ki, k := range matrixKs {
		for ei, eps := range matrixEpsilons {
			if quick && ki != ei {
				continue
			}
			psi := 1 + n%3
			kws := make([]string, 0, psi)
			for j := 0; j < psi; j++ {
				kws = append(kws, matrixVocab[int(seed*7+int64(n*5+j*3))%len(matrixVocab)])
			}
			out = append(out, core.Query{Keywords: dedup(kws), K: k, Epsilon: eps})
			n++
		}
	}
	return out
}

func dedup(words []string) []string {
	seen := make(map[string]bool, len(words))
	out := words[:0]
	for _, w := range words {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// MatrixConfigs returns the matrix cells for one seed: a single
// unit-density world in quick mode, three densities (one weighted) in
// full mode.
func MatrixConfigs(seed int64, quick bool) []SeedConfig {
	queries := MatrixQueries(seed, quick)
	if quick {
		return []SeedConfig{{Seed: seed, Density: 1, Weighted: seed%2 == 1, Queries: queries}}
	}
	return []SeedConfig{
		{Seed: seed, Density: 0.5, Weighted: false, Queries: queries},
		{Seed: seed, Density: 1, Weighted: seed%2 == 1, Queries: queries},
		{Seed: seed, Density: 2, Weighted: true, Queries: queries},
	}
}

// SummaryParams are the diversification parameters the per-world summary
// cross-check uses.
var SummaryParams = diversify.Params{K: 3, Lambda: 0.4, W: 0.5, Rho: 0.0004}

// MaxSummaryPool caps the photo pool of the diversification cross-check
// so exhaustive enumeration stays cheap (C(12,3) subsets).
const MaxSummaryPool = 12

// CheckSummary cross-checks the diversification layer over the world's
// photo-richest street, truncating the pool to MaxSummaryPool photos.
// Worlds whose richest street has fewer than two photos are skipped.
func CheckSummary(w World, p diversify.Params) ([]Divergence, error) {
	net, _, photos, dict, err := w.Build()
	if err != nil {
		return nil, err
	}
	if photos.Len() == 0 || net.NumStreets() == 0 {
		return nil, nil
	}
	const eps = 0.0005
	bestStreet, bestCount := network.StreetID(0), -1
	for i := range net.Streets() {
		rs, _ := diversify.ExtractStreetPhotos(net, network.StreetID(i), photos, eps)
		if len(rs) > bestCount {
			bestStreet, bestCount = network.StreetID(i), len(rs)
		}
	}
	rs, maxD := diversify.ExtractStreetPhotos(net, bestStreet, photos, eps)
	if len(rs) < 2 || maxD <= 0 {
		return nil, nil
	}
	if len(rs) > MaxSummaryPool {
		rs = rs[:MaxSummaryPool]
	}
	sum := Summary{Photos: rs, Freq: diversify.FreqFromPhotos(dict, rs), MaxD: maxD}
	return DiffSummary(sum, p, MaxSummaryPool)
}

// CheckConfig runs the whole battery — differential matrix, metamorphic
// suite and diversification cross-check — over one matrix cell.
func CheckConfig(c SeedConfig, opt Options) ([]Divergence, error) {
	w, err := c.BuildWorld()
	if err != nil {
		return nil, fmt.Errorf("oracle: building world (%s): %w", c.Label(), err)
	}
	divs, err := DiffWorld(w, c.Queries, opt)
	if err != nil {
		return nil, err
	}
	mdivs, err := Metamorphic(w, c.Queries, opt)
	if err != nil {
		return nil, err
	}
	sdivs, err := CheckSummary(w, SummaryParams)
	if err != nil {
		return nil, err
	}
	tdivs, err := DiffTraj(w, c.Seed, opt)
	if err != nil {
		return nil, err
	}
	divs = append(divs, mdivs...)
	divs = append(divs, sdivs...)
	return append(divs, tdivs...), nil
}
