package oracle

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/photo"
	"repro/internal/vocab"
)

// handWorld is a world small enough to rank by inspection: two parallel
// unit streets with different relevant mass, one far-away street, and a
// pair of identical streets for tie-breaking.
func handWorld() World {
	return World{
		Streets: []StreetSpec{
			{Name: "Alpha", Points: []geo.Point{geo.Pt(0, 0), geo.Pt(0.001, 0)}},
			{Name: "Beta", Points: []geo.Point{geo.Pt(0, 0.01), geo.Pt(0.001, 0.01)}},
			{Name: "Far", Points: []geo.Point{geo.Pt(0.5, 0.5), geo.Pt(0.501, 0.5)}},
			{Name: "TieOne", Points: []geo.Point{geo.Pt(0, 0.02), geo.Pt(0.001, 0.02)}},
			{Name: "TieTwo", Points: []geo.Point{geo.Pt(0, 0.03), geo.Pt(0.001, 0.03)}},
		},
		POIs: []POISpec{
			{Loc: geo.Pt(0.0005, 0.0001), Keywords: []string{"shop"}},
			{Loc: geo.Pt(0.0005, 0.0101), Keywords: []string{"shop", "food"}, Weight: 2},
			{Loc: geo.Pt(0.5005, 0.7), Keywords: []string{"shop"}},
			{Loc: geo.Pt(0.0005, 0.02), Keywords: []string{"shop"}},
			{Loc: geo.Pt(0.0005, 0.03), Keywords: []string{"shop"}},
		},
	}
}

func TestTopKHandWorld(t *testing.T) {
	w := handWorld()
	net, pois, _, _, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{Keywords: []string{"shop"}, K: 10, Epsilon: 0.0002}
	got, err := TopK(net, pois, q)
	if err != nil {
		t.Fatal(err)
	}
	// Beta has mass 2 on the same geometry as Alpha's mass 1; the tie pair
	// matches Alpha's interest and must rank by ascending street id. Far's
	// POI is ~0.2 away and contributes nothing.
	wantNames := []string{"Beta", "Alpha", "TieOne", "TieTwo"}
	if len(got) != len(wantNames) {
		t.Fatalf("got %d results, want %d: %+v", len(got), len(wantNames), got)
	}
	for i, name := range wantNames {
		if got[i].Name != name {
			t.Fatalf("rank %d: street %q, want %q (results %+v)", i+1, got[i].Name, name, got)
		}
	}
	if got[0].Mass != 2 || got[1].Mass != 1 {
		t.Fatalf("masses %v/%v, want 2/1", got[0].Mass, got[1].Mass)
	}
	// Interests must be the canonical Def. 2 value.
	wantInterest := core.Interest(1, net.Segment(got[1].BestSegment).Length(), q.Epsilon)
	if math.Float64bits(got[1].Interest) != math.Float64bits(wantInterest) {
		t.Fatalf("Alpha interest %v, want %v", got[1].Interest, wantInterest)
	}
	if got[1].Interest != got[2].Interest || got[2].Interest != got[3].Interest {
		t.Fatalf("tie group interests differ: %v %v %v", got[1].Interest, got[2].Interest, got[3].Interest)
	}

	// K truncation.
	top1, err := TopK(net, pois, core.Query{Keywords: []string{"shop"}, K: 1, Epsilon: 0.0002})
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != 1 || top1[0].Name != "Beta" {
		t.Fatalf("k=1: %+v, want just Beta", top1)
	}

	// A keyword no POI carries yields no results, not an error.
	empty, err := TopK(net, pois, core.Query{Keywords: []string{"quixotic"}, K: 5, Epsilon: 0.0002})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("unknown keyword: %+v, want empty", empty)
	}

	// Invalid queries are rejected.
	if _, err := TopK(net, pois, core.Query{K: 1, Epsilon: 0.0002}); err == nil {
		t.Fatal("no keywords: want error")
	}
}

func TestEqual(t *testing.T) {
	a := []core.StreetResult{{Street: 1, Name: "A", Interest: 2, BestSegment: 7, Mass: 4}}
	if d := Equal(a, a); d != "" {
		t.Fatalf("self-compare: %q", d)
	}
	b := []core.StreetResult{{Street: 1, Name: "A", Interest: 2.0000000001, BestSegment: 7, Mass: 4}}
	if d := Equal(a, b); d == "" {
		t.Fatal("interest mismatch not reported")
	}
	if d := Equal(a, nil); d == "" {
		t.Fatal("length mismatch not reported")
	}
}

func TestEqualRanked(t *testing.T) {
	a := []core.StreetResult{
		{Street: 1, Interest: 10},
		{Street: 2, Interest: 5},
	}
	// Same streets, interests within tolerance, swapped order of a true tie.
	b := []core.StreetResult{
		{Street: 1, Interest: 10 * (1 + 1e-12)},
		{Street: 2, Interest: 5},
	}
	if d := EqualRanked(a, b, 1e-9); d != "" {
		t.Fatalf("tolerant compare: %q", d)
	}
	// Separated interests out of order must be reported.
	c := []core.StreetResult{
		{Street: 2, Interest: 5},
		{Street: 1, Interest: 10},
	}
	if d := EqualRanked(c, a, 1e-9); d == "" {
		t.Fatal("order violation not reported")
	}
	// A different street set must be reported.
	e := []core.StreetResult{
		{Street: 1, Interest: 10},
		{Street: 3, Interest: 5},
	}
	if d := EqualRanked(e, a, 1e-9); d == "" {
		t.Fatal("street set mismatch not reported")
	}
}

func TestSummaryObjective(t *testing.T) {
	dict := vocab.NewDictionary()
	pb := photo.NewBuilder(dict)
	pb.Add(geo.Pt(0, 0), []string{"sunny", "shop"})
	pb.Add(geo.Pt(0.0004, 0), []string{"rain"})
	pb.Add(geo.Pt(0, 0.0004), []string{"sunny"})
	pb.Add(geo.Pt(0.0004, 0.0004), []string{"shop"})
	rs := pb.Build().All()
	freq := vocab.NewFreq(dict)
	for i := range rs {
		freq.AddSet(rs[i].Tags, 1)
	}
	s := Summary{Photos: rs, Freq: freq, MaxD: 0.001}

	// A single selection has no diversity term: F = (1-λ)·rel.
	const lambda, w, rho = 0.3, 0.5, 0.0005
	if got, want := s.Objective([]int{0}, lambda, w, rho), (1-lambda)*s.Rel(0, w, rho); got != want {
		t.Fatalf("single-photo objective %v, want %v", got, want)
	}
	// The empty selection scores zero.
	if got := s.Objective(nil, lambda, w, rho); got != 0 {
		t.Fatalf("empty objective %v, want 0", got)
	}

	// The exhaustive optimum can never score below any explicit subset.
	best, bestVal := s.ExhaustiveBest(2, lambda, w, rho)
	if len(best) != 2 {
		t.Fatalf("ExhaustiveBest returned %v", best)
	}
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			if v := s.Objective([]int{i, j}, lambda, w, rho); v > bestVal {
				t.Fatalf("subset {%d,%d} scores %v above claimed optimum %v", i, j, v, bestVal)
			}
		}
	}

	// λ=0 top-k is ranked by relevance, ascending index on ties.
	top := s.GreedyRelevanceTopK(2, w, rho)
	if len(top) != 2 {
		t.Fatalf("GreedyRelevanceTopK returned %v", top)
	}
	if s.Rel(top[0], w, rho) < s.Rel(top[1], w, rho) {
		t.Fatalf("relevance order violated: %v", top)
	}
}

func TestWorldTransformsAndGeoJSON(t *testing.T) {
	ds, err := datagen.Generate(datagen.Tiny(1))
	if err != nil {
		t.Fatal(err)
	}
	w := FromDataset(ds)
	if len(w.Streets) == 0 || len(w.POIs) == 0 || len(w.Photos) == 0 {
		t.Fatalf("empty world from Tiny dataset: %d streets %d pois %d photos",
			len(w.Streets), len(w.POIs), len(w.Photos))
	}

	// Rebuilding the flattened world must preserve the oracle's answer
	// exactly (street ids are positional in both representations).
	q := core.Query{Keywords: []string{"shop"}, K: 5, Epsilon: 0.0005}
	fromDS, err := TopK(ds.Network, ds.POIs, q)
	if err != nil {
		t.Fatal(err)
	}
	net, pois, _, _, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := TopK(net, pois, q)
	if err != nil {
		t.Fatal(err)
	}
	if d := Equal(rebuilt, fromDS); d != "" {
		t.Fatalf("rebuild changed the answer: %s", d)
	}

	// Clone isolates mutations.
	c := w.Clone()
	c.POIs[0].Keywords[0] = "mutated"
	if w.POIs[0].Keywords[0] == "mutated" {
		t.Fatal("Clone shares keyword storage")
	}

	// Translate and Rotate are inverses up to float noise.
	back := w.Translate(0.25, -0.125).Translate(-0.25, 0.125)
	if math.Abs(back.POIs[0].Loc.X-w.POIs[0].Loc.X) > 1e-12 {
		t.Fatalf("translate round-trip moved POI 0 by %v", back.POIs[0].Loc.X-w.POIs[0].Loc.X)
	}

	var buf bytes.Buffer
	if err := w.WriteGeoJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FeatureCollection") || !strings.Contains(out, "LineString") {
		t.Fatalf("GeoJSON output missing expected members: %.120s", out)
	}
}
