package oracle

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/remote"
	"repro/internal/shard"
)

// diffRemote cross-checks the cross-process scatter-gather path against
// the oracle reference at every swept tile count: each shard of the
// partition is served by a real HTTP server (loopback, in-process), the
// fault-tolerant client talks to it over the wire, and the remote
// coordinator's answer must be bit-identical to the oracle — Equal on
// ranked ids, names, best segments, Float64bits interests and masses.
// With every shard reachable no run may degrade, and the gather counters
// must partition the shard set exactly like the in-process coordinator's.
// This is the strongest form of the serialization metamorphic property:
// JSON transport, retry plumbing and replica selection may not move a
// single bit.
func diffRemote(net *network.Network, pois *poi.Corpus, queries []core.Query,
	want [][]core.StreetResult, cell float64, opt Options,
	report func(impl string, q core.Query, detail string)) error {

	halo := 0.0
	for _, q := range queries {
		if q.Epsilon > halo {
			halo = q.Epsilon
		}
	}
	if halo == 0 || net.NumStreets() == 0 {
		return nil
	}
	for _, tiles := range opt.shardCounts() {
		if err := diffRemoteTiles(net, pois, queries, want, cell, halo, tiles, report); err != nil {
			return err
		}
	}
	return nil
}

func diffRemoteTiles(net *network.Network, pois *poi.Corpus, queries []core.Query,
	want [][]core.StreetResult, cell, halo float64, tiles int,
	report func(impl string, q core.Query, detail string)) error {

	w, err := shard.Partition(net, pois, shard.Config{Tiles: tiles, Halo: halo, CellSize: cell})
	if err != nil {
		return fmt.Errorf("oracle: partitioning %d tiles for remote (cell %g): %w", tiles, cell, err)
	}
	servers := make([]*httptest.Server, len(w.Shards))
	addrs := make([][]string, len(w.Shards))
	for i, s := range w.Shards {
		hs := httptest.NewServer(remote.NewServer(remote.ShardData{
			ShardID:  s.ID,
			Shards:   len(w.Shards),
			TileX:    s.TileX,
			TileY:    s.TileY,
			Halo:     w.Halo,
			CellSize: w.CellSize,
			Index:    s.Index,
			Streets:  s.Streets,
			Segments: s.Segments,
		}, remote.ServerConfig{}))
		defer hs.Close()
		servers[i] = hs
		addrs[i] = []string{hs.URL}
	}
	// The sweep runs over healthy loopback servers: hedging and breaking
	// would only add noise, and a single retry absorbs transient listener
	// hiccups without masking a systematic failure.
	client, err := remote.NewClient(remote.Config{
		Addrs:          addrs,
		AttemptTimeout: 30 * time.Second,
		MaxAttempts:    2,
		DisableHedge:   true,
	})
	if err != nil {
		return fmt.Errorf("oracle: remote client for %d tiles (cell %g): %w", tiles, cell, err)
	}
	defer client.Close()

	coord := shard.NewRemoteCoordinator(client, w.Halo)
	impl := fmt.Sprintf("remote/%d", tiles)
	for i, q := range queries {
		res, gs, err := coord.TopK(context.Background(), q, false)
		if err != nil {
			report(impl, q, "error: "+err.Error())
			continue
		}
		if gs.Degraded || len(gs.MissingShards) != 0 {
			report(impl, q, fmt.Sprintf("degraded over healthy shards: missing %v", gs.MissingShards))
			continue
		}
		if d := Equal(res, want[i]); d != "" {
			report(impl, q, d)
			continue
		}
		if gs.ShardsEvaluated+gs.ShardsPruned != gs.ShardsTotal {
			report(impl, q, fmt.Sprintf("gather counters do not partition the shards: total=%d evaluated=%d pruned=%d",
				gs.ShardsTotal, gs.ShardsEvaluated, gs.ShardsPruned))
		}
	}
	return nil
}
