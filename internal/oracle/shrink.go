package oracle

import "repro/internal/geo"

// Predicate reports whether a world still reproduces the failure under
// investigation. Shrinking removes streets, POIs and photos, which
// renumbers ids — predicates should re-detect the divergence (e.g. by
// re-running the differential driver) rather than match remembered ids.
type Predicate func(World) bool

// DefaultShrinkChecks bounds predicate evaluations when Shrink is called
// with a non-positive budget.
const DefaultShrinkChecks = 2000

// Shrink reduces a failing world to a (locally) minimal one that still
// satisfies pred, ddmin-style: it repeatedly removes chunks of photos,
// POIs and streets, halving the chunk size on failure, until a whole pass
// removes nothing or the predicate budget is exhausted. The input world
// must satisfy pred; the result always does.
func Shrink(w World, pred Predicate, maxChecks int) World {
	if maxChecks <= 0 {
		maxChecks = DefaultShrinkChecks
	}
	budget := maxChecks
	cur := w.Clone()

	// Photos rarely matter for query-path divergences: try dropping them
	// wholesale before chunked minimization touches anything.
	if len(cur.Photos) > 0 && budget > 0 {
		cand := cur.Clone()
		cand.Photos = nil
		budget--
		if pred(cand) {
			cur = cand
		}
	}

	for budget > 0 {
		before := cur.size()
		cur.POIs = minimize(cur.POIs, func(pois []POISpec) bool {
			cand := cur
			cand.POIs = pois
			return pred(cand)
		}, &budget)
		cur.Streets = minimize(cur.Streets, func(streets []StreetSpec) bool {
			cand := cur
			cand.Streets = streets
			return pred(cand)
		}, &budget)
		cur.Photos = minimize(cur.Photos, func(photos []PhotoSpec) bool {
			cand := cur
			cand.Photos = photos
			return pred(cand)
		}, &budget)
		cur.Traces = minimize(cur.Traces, func(traces [][]geo.Point) bool {
			cand := cur
			cand.Traces = traces
			return pred(cand)
		}, &budget)
		if cur.size() == before {
			break
		}
	}
	return cur
}

func (w World) size() int {
	return len(w.Streets) + len(w.POIs) + len(w.Photos) + len(w.Traces)
}

// minimize greedily removes chunks of items while test keeps passing,
// halving the chunk size whenever a full pass at the current size removes
// nothing. Each test call decrements *budget; minimization stops when it
// reaches zero.
func minimize[T any](items []T, test func([]T) bool, budget *int) []T {
	size := (len(items) + 1) / 2
	for size >= 1 && len(items) > 0 {
		removed := false
		for start := 0; start < len(items); {
			if *budget <= 0 {
				return items
			}
			end := start + size
			if end > len(items) {
				end = len(items)
			}
			cand := make([]T, 0, len(items)-(end-start))
			cand = append(cand, items[:start]...)
			cand = append(cand, items[end:]...)
			*budget--
			if test(cand) {
				items = cand
				removed = true
			} else {
				start = end
			}
		}
		if size == 1 {
			if !removed {
				break
			}
			continue
		}
		size /= 2
	}
	return items
}
