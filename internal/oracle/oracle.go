package oracle

import (
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// This file is the brute-force reference for the paper's first problem.
// It implements Definitions 1–3 and Eq. 1 directly from their statements:
//
//	Def. 1  mass(ℓ)     = Σ weight(p) over POIs p with at least one query
//	                      keyword and dist(p, ℓ) ≤ ε — computed here by
//	                      scanning EVERY POI against the segment, no grid,
//	                      no inverted index, no bound.
//	Def. 2  int(ℓ)      = mass(ℓ) / (2ε·len(ℓ) + πε²)
//	Def. 3  int(s)      = max over segments ℓ of s of int(ℓ)
//	Eq. 1   k-SOI       = the k streets with the largest int(s), positive
//	                      interest only, ties broken by ascending street id.
//
// The arithmetic deliberately mirrors the production evaluators at the
// two spots where floating point could otherwise diverge: masses are
// accumulated in POI-id order (weights are integral in harness worlds, so
// any order gives the same float; id order keeps even weighted worlds
// comparable), and interests are computed through core.Interest so the
// denominator is the same expression bit for bit.

// ResolveKeywords interns query keywords against a corpus dictionary the
// way core.Index does: normalized, deduplicated, unknown keywords dropped.
func ResolveKeywords(pois *poi.Corpus, keywords []string) vocab.Set {
	set, _ := pois.Dict().LookupAll(keywords)
	return set
}

// SegmentMass computes Def. 1 for one segment by exhaustive pairwise
// point-to-segment distance over the whole corpus.
func SegmentMass(net *network.Network, pois *poi.Corpus, sid network.SegmentID, query vocab.Set, eps float64) float64 {
	seg := net.Segment(sid).Geom
	epsSq := eps * eps
	var mass float64
	for _, p := range pois.All() {
		if !p.Keywords.Intersects(query) {
			continue
		}
		if seg.DistToPointSq(p.Loc) <= epsSq {
			mass += p.Weight
		}
	}
	return mass
}

// AllSegmentMasses computes Def. 1 for every segment of the network.
func AllSegmentMasses(net *network.Network, pois *poi.Corpus, query vocab.Set, eps float64) []float64 {
	out := make([]float64, net.NumSegments())
	for sid := range out {
		out[sid] = SegmentMass(net, pois, network.SegmentID(sid), query, eps)
	}
	return out
}

// SegmentInterest computes Def. 2 for one segment.
func SegmentInterest(net *network.Network, pois *poi.Corpus, sid network.SegmentID, query vocab.Set, eps float64) float64 {
	return core.Interest(
		SegmentMass(net, pois, sid, query, eps),
		net.Segment(sid).Length(),
		eps,
	)
}

// TopK evaluates the k-SOI query exactly from the definitions: every
// street's interest is the maximum of its segments' interests (Def. 3),
// the best segment breaks interest ties by ascending segment id (the
// canonical tie-break every production evaluator uses), streets with zero
// interest are not reported, and the ranking breaks interest ties by
// ascending street id.
func TopK(net *network.Network, pois *poi.Corpus, q core.Query) ([]core.StreetResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	query := ResolveKeywords(pois, q.Keywords)
	out := make([]core.StreetResult, 0, net.NumStreets())
	for i := range net.Streets() {
		st := net.Street(network.StreetID(i))
		var best core.StreetResult
		for _, sid := range st.Segments {
			mass := SegmentMass(net, pois, sid, query, q.Epsilon)
			in := core.Interest(mass, net.Segment(sid).Length(), q.Epsilon)
			if in > best.Interest {
				best = core.StreetResult{Interest: in, BestSegment: sid, Mass: mass}
			}
		}
		if best.Interest <= 0 {
			continue
		}
		best.Street = st.ID
		best.Name = st.Name
		out = append(out, best)
	}
	core.SortResults(out)
	if len(out) > q.K {
		out = out[:q.K]
	}
	return out, nil
}

// rigidMotions enumerates the transformations the rigid-motion checks
// apply; exposed for tests via Motions.
type rigidMotion struct {
	name string
	fn   func(World) World
}

// motions returns the harness's rigid motions around the world center:
// a translation by a non-round offset and two rotations.
func motions(w World) []rigidMotion {
	c := w.Center()
	return []rigidMotion{
		{"translate(+0.37,-0.19)", func(w World) World { return w.Translate(0.37, -0.19) }},
		{"rotate(π/3)", func(w World) World { return w.Rotate(1.0471975511965976, c.X, c.Y) }},
		{"rotate(-1.234)", func(w World) World { return w.Rotate(-1.234, c.X, c.Y) }},
	}
}

// pointNear reports whether p lies within eps of any segment of the
// network — a helper for choosing metamorphic insertion points.
func pointNear(net *network.Network, p geo.Point, eps float64) bool {
	epsSq := eps * eps
	for i := 0; i < net.NumSegments(); i++ {
		if net.Segment(network.SegmentID(i)).Geom.DistToPointSq(p) <= epsSq {
			return true
		}
	}
	return false
}
