package oracle

import (
	"fmt"
	"testing"
)

// TestDiffInterleaved runs the interleaved differential mode over a few
// seeds: concurrent queries against a live-publishing ingestor must
// answer bit-identically to the brute-force oracle at every epoch, and
// the compacted index must match a cold rebuild. The full 50-seed
// matrix runs through soicheck -interleaved in CI.
func TestDiffInterleaved(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := MatrixConfigs(seed, true)[0]
			divs, rep, err := DiffInterleaved(c, InterleaveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range divs {
				t.Error(d.String())
			}
			if rep.Rounds == 0 || rep.Streamed == 0 {
				t.Fatalf("nothing streamed: %+v", rep)
			}
			if rep.FinalEpoch != uint64(rep.Rounds)+2 {
				t.Fatalf("final epoch %d after %d rounds, want %d", rep.FinalEpoch, rep.Rounds, rep.Rounds+2)
			}
			if rep.Answers < len(c.Queries) {
				t.Fatalf("only %d answers cross-checked over %d queries", rep.Answers, len(c.Queries))
			}
		})
	}
}

// TestDiffInterleavedWeighted covers the weighted-mass path under
// interleaving: prestige weights must survive the delta log bit-exactly.
func TestDiffInterleavedWeighted(t *testing.T) {
	c := MatrixConfigs(1, true)[0]
	c.Weighted = true
	divs, _, err := DiffInterleaved(c, InterleaveOptions{Rounds: 2, QueryWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range divs {
		t.Error(d.String())
	}
}
