package oracle

import (
	"math"

	"repro/internal/photo"
	"repro/internal/vocab"
)

// This file is the brute-force reference for the paper's second problem:
// the MaxSum diversification objective F of Eq. 2–5 over a street's photo
// set Rs, evaluated with no grid, no per-cell bounds and no precomputed
// neighborhood counts, and maximized by exhaustive subset enumeration.
// Everything is recomputed from the definitions on every call:
//
//	Def. 4  spatial_rel(r)   = |{r' ∈ Rs : dist(r, r') ≤ ρ}| / |Rs|
//	Def. 5  spatial_div(r,r')= dist(r, r') / maxD(s)
//	Def. 6  textual_rel(r)   = Σ_{ψ∈Ψr} Φs(ψ) / ‖Φs‖₁
//	Def. 7  textual_div(r,r')= Jaccard distance of the tag sets
//	Eq. 4   rel(R) = Σ rel(r) / |R|        (rel = w·spatial + (1−w)·textual)
//	Eq. 5   div(R) = Σ div(r,r') · 2/(|R|(|R|−1)) over unordered pairs
//	Eq. 2   F(R)   = (1−λ)·rel(R) + λ·div(R)

// Summary bundles the inputs of the diversification objective: the
// street's photos Rs, its keyword frequency vector Φs and the diversity
// normalizer maxD(s).
type Summary struct {
	Photos []photo.Photo
	Freq   vocab.Freq
	MaxD   float64
}

// SpatialRel computes Def. 4 for photo i by scanning all of Rs.
func (s Summary) SpatialRel(i int, rho float64) float64 {
	cnt := 0
	for j := range s.Photos {
		if s.Photos[i].Loc.Dist(s.Photos[j].Loc) <= rho {
			cnt++
		}
	}
	return float64(cnt) / float64(len(s.Photos))
}

// TextualRel computes Def. 6 for photo i.
func (s Summary) TextualRel(i int) float64 {
	l1 := s.Freq.L1()
	if l1 == 0 {
		return 0
	}
	return s.Freq.SumOver(s.Photos[i].Tags) / l1
}

// Rel blends Def. 4 and Def. 6 with weight w on the spatial aspect.
func (s Summary) Rel(i int, w, rho float64) float64 {
	return w*s.SpatialRel(i, rho) + (1-w)*s.TextualRel(i)
}

// Div blends Def. 5 and Def. 7 for a photo pair.
func (s Summary) Div(i, j int, w float64) float64 {
	spatial := s.Photos[i].Loc.Dist(s.Photos[j].Loc) / s.MaxD
	textual := s.Photos[i].Tags.JaccardDistance(s.Photos[j].Tags)
	return w*spatial + (1-w)*textual
}

// Objective computes F of Eq. 2 for a selected subset, directly from
// Eq. 4 and Eq. 5.
func (s Summary) Objective(selected []int, lambda, w, rho float64) float64 {
	if len(selected) == 0 {
		return 0
	}
	var rel float64
	for _, i := range selected {
		rel += s.Rel(i, w, rho)
	}
	rel /= float64(len(selected))
	var div float64
	if len(selected) >= 2 {
		var sum float64
		for a := 0; a < len(selected); a++ {
			for b := a + 1; b < len(selected); b++ {
				sum += s.Div(selected[a], selected[b], w)
			}
		}
		k := float64(len(selected))
		div = sum / (k * (k - 1) / 2)
	}
	return (1-lambda)*rel + lambda*div
}

// ExhaustiveBest enumerates every k-subset of Rs in lexicographic order
// and returns the first subset attaining the maximum objective (so ties
// resolve to the lexicographically smallest subset, matching
// diversify.Exhaustive's canonical choice) together with its F value.
// Only feasible for small |Rs| and k.
func (s Summary) ExhaustiveBest(k int, lambda, w, rho float64) ([]int, float64) {
	n := len(s.Photos)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil, 0
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	best := append([]int(nil), idx...)
	bestVal := s.Objective(idx, lambda, w, rho)
	for {
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
		if v := s.Objective(idx, lambda, w, rho); v > bestVal {
			bestVal = v
			copy(best, idx)
		}
	}
	return best, bestVal
}

// GreedyRelevanceTopK returns the k photos ranked purely by relevance
// (Rel descending, index ascending on ties) — the selection every MMR
// construction must degenerate to at λ = 0.
func (s Summary) GreedyRelevanceTopK(k int, w, rho float64) []int {
	type scored struct {
		idx int
		rel float64
	}
	all := make([]scored, len(s.Photos))
	for i := range s.Photos {
		all[i] = scored{i, s.Rel(i, w, rho)}
	}
	// Selection sort keeps the oracle free of subtle comparator bugs: pick
	// the best remaining photo k times, exactly like a greedy construction.
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, 0, k)
	used := make([]bool, len(all))
	for len(out) < k {
		best := -1
		bestVal := math.Inf(-1)
		for i, sc := range all {
			if used[i] {
				continue
			}
			if sc.rel > bestVal || (sc.rel == bestVal && (best < 0 || sc.idx < all[best].idx)) {
				bestVal = sc.rel
				best = i
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		out = append(out, all[best].idx)
	}
	return out
}
