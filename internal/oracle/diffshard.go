package oracle

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/shard"
)

// DefaultShardCounts are the tile counts swept by the sharded
// differential pass: a 2×1 split (one border), a 2×2 split (corner
// crossing) and a 3×3 split (interior tile with borders on all sides).
var DefaultShardCounts = []int{2, 4, 9}

func (o Options) shardCounts() []int {
	if len(o.ShardCounts) > 0 {
		return o.ShardCounts
	}
	return DefaultShardCounts
}

// diffShards cross-checks the scatter-gather coordinator against the
// oracle reference at every swept tile count. The halo is sized to the
// largest query ε, so queries at ε = halo exercise maximal border
// replication while staying exact; the coordinator must nevertheless be
// bit-identical at every ε below that too. The comparison uses Equal —
// ranked ids, names, best segments, Float64bits interests and masses —
// and additionally requires the gather counters to partition the shard
// set (every shard either evaluated or pruned, exactly once).
func diffShards(net *network.Network, pois *poi.Corpus, queries []core.Query,
	want [][]core.StreetResult, cell float64, opt Options,
	report func(impl string, q core.Query, detail string)) error {

	halo := 0.0
	for _, q := range queries {
		if q.Epsilon > halo {
			halo = q.Epsilon
		}
	}
	if halo == 0 || net.NumStreets() == 0 {
		return nil
	}
	for _, tiles := range opt.shardCounts() {
		w, err := shard.Partition(net, pois, shard.Config{Tiles: tiles, Halo: halo, CellSize: cell})
		if err != nil {
			return fmt.Errorf("oracle: partitioning %d tiles (cell %g): %w", tiles, cell, err)
		}
		coord := shard.NewCoordinator(w)
		impl := fmt.Sprintf("shard/%d", tiles)
		for i, q := range queries {
			res, gs, err := coord.TopK(context.Background(), q)
			if err != nil {
				report(impl, q, "error: "+err.Error())
				continue
			}
			if d := Equal(res, want[i]); d != "" {
				report(impl, q, d)
				continue
			}
			if gs.ShardsEvaluated+gs.ShardsPruned != gs.ShardsTotal {
				report(impl, q, fmt.Sprintf("gather counters do not partition the shards: total=%d evaluated=%d pruned=%d",
					gs.ShardsTotal, gs.ShardsEvaluated, gs.ShardsPruned))
			}
		}
	}
	return nil
}
