package oracle

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/engine"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/snapshot"
)

// Divergence records one disagreement between an implementation and the
// reference answer for a query over a world.
type Divergence struct {
	// Impl names the implementation that disagreed (e.g. "soi/cost-aware",
	// "engine/batch", "metamorphic/eps-monotonicity").
	Impl string
	// CellSize is the index cell size under which the divergence appeared
	// (0 when the check is index-free).
	CellSize float64
	// Query is the diverging query (zero-valued for non-query checks).
	Query core.Query
	// Detail describes the first observed mismatch.
	Detail string
}

// String renders the divergence as a one-line report.
func (d Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", d.Impl)
	if d.CellSize > 0 {
		fmt.Fprintf(&b, " [cell=%g]", d.CellSize)
	}
	if len(d.Query.Keywords) > 0 {
		fmt.Fprintf(&b, " q=⟨Ψ=%v,k=%d,ε=%g⟩", d.Query.Keywords, d.Query.K, d.Query.Epsilon)
	}
	fmt.Fprintf(&b, ": %s", d.Detail)
	return b.String()
}

// Options configures a differential run.
type Options struct {
	// CellSizes are the index cell sizes to sweep; correctness must not
	// depend on this free parameter. Empty means DefaultCellSizes.
	CellSizes []float64
	// Workers is the parallel engine's worker count; 0 means 4.
	Workers int
	// SkipEngine disables the parallel-engine comparison (the shrinker
	// uses this to keep predicate evaluations cheap).
	SkipEngine bool
	// SkipDynamic disables the incrementally-built index comparison.
	SkipDynamic bool
	// SkipShards disables the sharded scatter-gather comparison.
	SkipShards bool
	// ShardCounts are the tile counts swept by the sharded comparison.
	// Empty means DefaultShardCounts (2, 4, 9).
	ShardCounts []int
	// Remote additionally runs the cross-process scatter-gather
	// comparison: every shard served over real loopback HTTP, queried
	// through the fault-tolerant remote client. Opt-in — each query
	// crosses the wire per shard, so the sweep is markedly slower than
	// the in-process matrix.
	Remote bool
	// Routes additionally runs the k most interesting routes
	// differential: the pruned best-first search against exhaustive
	// simple-path enumeration (DiffTraj).
	Routes bool
	// Traj additionally runs the trajectory-SOI differential: the grid
	// map-matcher and corridor ranking against full scans (DiffTraj).
	Traj bool
}

// DefaultCellSizes are the index cell sizes swept when Options leaves
// them empty: one near the default query ε and one deliberately
// mismatched, since the paper leaves the cell size arbitrary.
var DefaultCellSizes = []float64{0.0005, 0.0013}

func (o Options) cellSizes() []float64 {
	if len(o.CellSizes) > 0 {
		return o.CellSizes
	}
	return DefaultCellSizes
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 4
}

// Equal compares two ranked result lists for exact agreement: same
// length, and at every rank the same street, name, best segment and
// bit-identical interest and mass. It returns "" on agreement and a
// description of the first mismatch otherwise.
func Equal(got, want []core.StreetResult) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		switch {
		case g.Street != w.Street:
			return fmt.Sprintf("rank %d: street %d (%q, interest %v), want street %d (%q, interest %v)",
				i+1, g.Street, g.Name, g.Interest, w.Street, w.Name, w.Interest)
		case g.Name != w.Name:
			return fmt.Sprintf("rank %d: name %q, want %q", i+1, g.Name, w.Name)
		case math.Float64bits(g.Interest) != math.Float64bits(w.Interest):
			return fmt.Sprintf("rank %d (street %d): interest %v, want %v", i+1, g.Street, g.Interest, w.Interest)
		case g.BestSegment != w.BestSegment:
			return fmt.Sprintf("rank %d (street %d): best segment %d, want %d", i+1, g.Street, g.BestSegment, w.BestSegment)
		case math.Float64bits(g.Mass) != math.Float64bits(w.Mass):
			return fmt.Sprintf("rank %d (street %d): mass %v, want %v", i+1, g.Street, g.Mass, w.Mass)
		}
	}
	return ""
}

// EqualRanked compares two rankings under a relative interest tolerance:
// the same streets must appear, each with interest within relTol, and the
// order may differ only between entries whose interests are within relTol
// of each other. The rigid-motion metamorphic checks use it because
// rotating a world perturbs segment lengths in the last float bits.
func EqualRanked(got, want []core.StreetResult, relTol float64) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d, want %d", len(got), len(want))
	}
	close := func(a, b float64) bool {
		scale := math.Max(math.Abs(a), math.Abs(b))
		if scale == 0 {
			return true
		}
		return math.Abs(a-b) <= relTol*scale
	}
	byStreet := make(map[network.StreetID]float64, len(want))
	for _, r := range want {
		byStreet[r.Street] = r.Interest
	}
	for i, g := range got {
		w, ok := byStreet[g.Street]
		if !ok {
			return fmt.Sprintf("rank %d: street %d (%q) absent from reference ranking", i+1, g.Street, g.Name)
		}
		if !close(g.Interest, w) {
			return fmt.Sprintf("rank %d (street %d): interest %v, reference %v", i+1, g.Street, g.Interest, w)
		}
	}
	// Order check: strictly separated interests must keep their relative
	// order; only tolerance-close entries may permute.
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if close(got[i].Interest, got[j].Interest) {
				continue
			}
			if got[i].Interest < got[j].Interest {
				return fmt.Sprintf("ranks %d/%d: streets %d and %d out of interest order (%v < %v)",
					i+1, j+1, got[i].Street, got[j].Street, got[i].Interest, got[j].Interest)
			}
		}
	}
	return ""
}

// DiffWorld runs the differential matrix over one world: for every query,
// the brute-force oracle answer is compared against the exact baseline
// BL, Algorithm 1 under both access strategies, Algorithm 1 over a shared
// MassCache (two passes, so both the miss and hit paths are exercised),
// the compact slab layout (directly and after a snapshot
// serialize/reload round trip), the spatially sharded scatter-gather
// coordinator (2/4/9 tiles, halo sized to the largest query ε), an
// index grown incrementally with AddPOI, and the parallel batch engine
// — each under every swept index cell size. The world build error,
// if any, is returned as-is; implementations disagreeing with the oracle
// are returned as divergences.
func DiffWorld(w World, queries []core.Query, opt Options) ([]Divergence, error) {
	net, pois, photos, _, err := w.Build()
	if err != nil {
		return nil, err
	}
	// Oracle answers are index-free: compute them once.
	want := make([][]core.StreetResult, len(queries))
	for i, q := range queries {
		want[i], err = TopK(net, pois, q)
		if err != nil {
			return nil, fmt.Errorf("oracle: query %d invalid: %w", i, err)
		}
	}

	var divs []Divergence
	for _, cell := range opt.cellSizes() {
		ix, err := core.NewIndex(net, pois, core.IndexConfig{CellSize: cell})
		if err != nil {
			return nil, fmt.Errorf("oracle: building index (cell %g): %w", cell, err)
		}
		report := func(impl string, q core.Query, detail string) {
			divs = append(divs, Divergence{Impl: impl, CellSize: cell, Query: q, Detail: detail})
		}

		mc := core.NewMassCache(0)
		for pass, label := range []string{"soi/cached-cold", "soi/cached-warm"} {
			for i, q := range queries {
				res, _, err := ix.SOIWithCache(q, core.CostAware, mc)
				if err != nil {
					report(label, q, "error: "+err.Error())
					continue
				}
				if d := Equal(res, want[i]); d != "" {
					report(label, q, d)
				}
				_ = pass
			}
		}
		for i, q := range queries {
			if res, _, err := ix.Baseline(q); err != nil {
				report("baseline", q, "error: "+err.Error())
			} else if d := Equal(res, want[i]); d != "" {
				report("baseline", q, d)
			}
			if res, _, err := ix.SOI(q); err != nil {
				report("soi/cost-aware", q, "error: "+err.Error())
			} else if d := Equal(res, want[i]); d != "" {
				report("soi/cost-aware", q, d)
			}
			if res, _, err := ix.SOIWithStrategy(q, core.RoundRobin); err != nil {
				report("soi/round-robin", q, "error: "+err.Error())
			} else if d := Equal(res, want[i]); d != "" {
				report("soi/round-robin", q, d)
			}
		}

		// The compact slab layout must be indistinguishable from the map
		// layout, both evaluated directly and after a serialize/reload
		// round trip through the snapshot container (the metamorphic
		// property: persistence is lossless down to the last float bit).
		six, err := core.NewSlabIndex(net, pois, core.IndexConfig{CellSize: cell})
		if err != nil {
			return nil, fmt.Errorf("oracle: building slab index (cell %g): %w", cell, err)
		}
		for i, q := range queries {
			if res, _, err := six.SOI(q); err != nil {
				report("soi/slab", q, "error: "+err.Error())
			} else if d := Equal(res, want[i]); d != "" {
				report("soi/slab", q, d)
			}
		}
		blob, err := snapshot.Encode(&snapshot.Snapshot{Net: net, POIs: pois, Photos: photos, Slab: six.Slab()})
		if err != nil {
			return nil, fmt.Errorf("oracle: encoding snapshot (cell %g): %w", cell, err)
		}
		snap, err := snapshot.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("oracle: decoding snapshot (cell %g): %w", cell, err)
		}
		reloaded, err := core.NewIndexFromSlab(snap.Net, snap.POIs, snap.Slab)
		if err != nil {
			return nil, fmt.Errorf("oracle: rebuilding index from snapshot (cell %g): %w", cell, err)
		}
		for i, q := range queries {
			if res, _, err := reloaded.SOI(q); err != nil {
				report("snapshot/reload", q, "error: "+err.Error())
			} else if d := EqualRanked(res, want[i], 0); d != "" {
				// relTol 0 makes EqualRanked exact: reloading may not move
				// a single interest bit or swap any strictly ordered pair.
				report("snapshot/reload", q, d)
			} else if d := Equal(res, want[i]); d != "" {
				report("snapshot/reload", q, d)
			}
		}

		// The sharded scatter-gather coordinator must match the oracle —
		// and therefore the slab path, already checked bit-exact above —
		// at every tile count, with the halo sized to the largest ε.
		if !opt.SkipShards {
			if err := diffShards(net, pois, queries, want, cell, opt, report); err != nil {
				return nil, err
			}
		}

		// Opt-in: the same comparison across process boundaries — every
		// shard behind a real HTTP server, gathered by the remote client.
		if opt.Remote {
			if err := diffRemote(net, pois, queries, want, cell, opt, report); err != nil {
				return nil, err
			}
		}

		if !opt.SkipDynamic {
			dyn, err := dynamicIndex(net, w, cell)
			if err != nil {
				return nil, err
			}
			for i, q := range queries {
				if res, _, err := dyn.SOI(q); err != nil {
					report("dynamic/soi", q, "error: "+err.Error())
				} else if d := Equal(res, want[i]); d != "" {
					report("dynamic/soi", q, d)
				}
			}
		}

		if !opt.SkipEngine {
			exec := engine.New(ix, engine.Config{Workers: opt.workers()})
			// Append duplicates so in-flight dedup and the LRU result cache
			// both participate; the second batch is answered mostly cached.
			batch := append(append([]core.Query(nil), queries...), queries...)
			for round, label := range []string{"engine/batch", "engine/batch-cached"} {
				results := exec.Batch(batch)
				for i, r := range results {
					q := batch[i]
					ref := want[i%len(queries)]
					if r.Err != nil {
						report(label, q, "error: "+r.Err.Error())
						continue
					}
					if d := Equal(r.Streets, ref); d != "" {
						report(label, q, d)
					}
				}
				_ = round
			}
		}
	}
	return divs, nil
}

// dynamicIndex builds an index over a subset of the world's POIs and
// grows it to the full corpus with AddPOI. The initial subset always
// contains the POIs attaining the coordinate extremes, so the grid bounds
// match a fresh full build and no append is rejected.
func dynamicIndex(net *network.Network, w World, cell float64) (*core.Index, error) {
	initial := make(map[int]bool)
	if n := len(w.POIs); n > 0 {
		minX, maxX, minY, maxY := 0, 0, 0, 0
		for i, p := range w.POIs {
			if p.Loc.X < w.POIs[minX].Loc.X {
				minX = i
			}
			if p.Loc.X > w.POIs[maxX].Loc.X {
				maxX = i
			}
			if p.Loc.Y < w.POIs[minY].Loc.Y {
				minY = i
			}
			if p.Loc.Y > w.POIs[maxY].Loc.Y {
				maxY = i
			}
		}
		for _, i := range []int{minX, maxX, minY, maxY} {
			initial[i] = true
		}
		for i := 0; i < n/2; i++ {
			initial[i] = true
		}
	}
	pb := poi.NewBuilder(nil)
	for i, p := range w.POIs {
		if initial[i] {
			pb.AddWeighted(p.Loc, p.Keywords, specWeight(p))
		}
	}
	ix, err := core.NewIndex(net, pb.Build(), core.IndexConfig{CellSize: cell})
	if err != nil {
		return nil, fmt.Errorf("oracle: building dynamic index: %w", err)
	}
	for i, p := range w.POIs {
		if initial[i] {
			continue
		}
		if _, err := ix.AddPOI(p.Loc, p.Keywords, specWeight(p)); err != nil {
			return nil, fmt.Errorf("oracle: dynamic AddPOI %d: %w", i, err)
		}
	}
	return ix, nil
}

func specWeight(p POISpec) float64 {
	if p.Weight == 0 {
		return 1
	}
	return p.Weight
}

// DiffSummary cross-checks the diversification layer over one street-like
// photo pool: the grid-pruned ST_Rel+Div construction must equal the
// exact greedy baseline photo for photo, the exhaustive optimum must
// match the oracle's definition-level enumeration, and the greedy
// objective can never exceed the exhaustive one. Pools larger than
// maxExhaustive photos skip the enumeration checks.
func DiffSummary(s Summary, p diversify.Params, maxExhaustive int) ([]Divergence, error) {
	ctx, err := diversify.NewContext(s.Photos, s.Freq, s.MaxD, p.Rho)
	if err != nil {
		return nil, err
	}
	var divs []Divergence
	report := func(impl, detail string) {
		divs = append(divs, Divergence{Impl: impl, Detail: detail})
	}

	greedy, err := ctx.STRelDiv(p)
	if err != nil {
		return nil, err
	}
	exact, err := ctx.Baseline(p)
	if err != nil {
		return nil, err
	}
	if !equalInts(greedy.Selected, exact.Selected) {
		report("diversify/strel-div", fmt.Sprintf("grid-pruned selection %v, exact greedy %v", greedy.Selected, exact.Selected))
	}
	// The context's objective and the oracle's definition-level objective
	// must agree on the same selection.
	const tol = 1e-12
	if o := s.Objective(greedy.Selected, p.Lambda, p.W, p.Rho); math.Abs(o-greedy.Objective) > tol {
		report("diversify/objective", fmt.Sprintf("context F=%v, oracle F=%v for selection %v", greedy.Objective, o, greedy.Selected))
	}

	if len(s.Photos) <= maxExhaustive {
		exh, err := ctx.Exhaustive(p)
		if err != nil {
			return nil, err
		}
		_, bestVal := s.ExhaustiveBest(p.K, p.Lambda, p.W, p.Rho)
		if math.Abs(exh.Objective-bestVal) > tol {
			report("diversify/exhaustive", fmt.Sprintf("optimum F=%v, oracle optimum F=%v", exh.Objective, bestVal))
		}
		if greedy.Objective > bestVal+tol {
			report("diversify/greedy-bound", fmt.Sprintf("greedy F=%v exceeds exhaustive optimum F=%v", greedy.Objective, bestVal))
		}
	}
	return divs, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
