package oracle

// Interleaved differential mode: the harness's answer to "is the
// epoch-based ingest path exactly correct under concurrency?". A writer
// streams the second half of a seeded world's POIs through an
// ingest.Ingestor in rounds — publishing an epoch per round and
// compacting at the end — while query goroutines hammer an
// epoch-threaded engine.Executor. Every answer carries the epoch it was
// evaluated at; the corpus of every epoch is a known prefix of the
// world's POI list, so each answer is cross-checked bit-exactly
// (Float64bits, via Equal) against the brute-force oracle rebuilt over
// that prefix. After compaction the final epoch is additionally checked
// against a cold core.NewIndex rebuild of the full corpus — the
// delta-log path and an offline build must be indistinguishable.

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// InterleaveOptions configures one interleaved differential run.
type InterleaveOptions struct {
	// Rounds is the number of publish rounds the writer performs; 0
	// means 4. Each round folds an equal share of the streamed half.
	Rounds int
	// QueryWorkers is the number of concurrent query goroutines; 0
	// means 4.
	QueryWorkers int
	// CellSize is the index cell size; 0 means 0.0005 (the paper's ε).
	CellSize float64
}

func (o InterleaveOptions) rounds() int {
	if o.Rounds > 0 {
		return o.Rounds
	}
	return 4
}

func (o InterleaveOptions) queryWorkers() int {
	if o.QueryWorkers > 0 {
		return o.QueryWorkers
	}
	return 4
}

func (o InterleaveOptions) cellSize() float64 {
	if o.CellSize > 0 {
		return o.CellSize
	}
	return 0.0005
}

// InterleaveReport summarizes one interleaved run for progress output.
type InterleaveReport struct {
	// Rounds is the number of publishes the writer performed.
	Rounds int
	// FinalEpoch is the compacted epoch's sequence number.
	FinalEpoch uint64
	// Answers is how many query answers were cross-checked.
	Answers int
	// Streamed is how many POIs arrived through the delta log.
	Streamed int
}

// DiffInterleaved runs the interleaved differential check over one
// matrix cell. Divergences carry the epoch they were observed at in
// their Impl tag.
func DiffInterleaved(c SeedConfig, opt InterleaveOptions) ([]Divergence, InterleaveReport, error) {
	w, err := c.BuildWorld()
	if err != nil {
		return nil, InterleaveReport{}, fmt.Errorf("oracle: building world (%s): %w", c.Label(), err)
	}
	net, _, _, _, err := w.Build()
	if err != nil {
		return nil, InterleaveReport{}, err
	}
	rounds := opt.rounds()
	half := len(w.POIs) / 2
	base, streamed := w.POIs[:half], w.POIs[half:]

	ing, err := ingest.New(net, specsToDeltas(base), ingest.Config{CellSize: opt.cellSize()})
	if err != nil {
		return nil, InterleaveReport{}, err
	}
	defer ing.Close()
	exec := engine.New(nil, engine.Config{Source: ing, Workers: opt.queryWorkers()})

	// Epoch seq → corpus prefix length. Sequences are dense by
	// construction: epoch 1 is the base, publish r installs 1+r, the
	// final compaction installs rounds+2 over the full corpus.
	chunk := (len(streamed) + rounds - 1) / rounds
	if chunk == 0 {
		chunk = 1
	}
	prefixEnd := map[uint64]int{1: half}
	var chunks [][]POISpec
	for pos := 0; pos < len(streamed); pos += chunk {
		end := pos + chunk
		if end > len(streamed) {
			end = len(streamed)
		}
		chunks = append(chunks, streamed[pos:end])
		prefixEnd[uint64(len(chunks))+1] = half + end
	}
	rounds = len(chunks) // short worlds may not fill every round
	if rounds == 0 {
		return nil, InterleaveReport{}, fmt.Errorf("oracle: world (%s) too small to stream: %d POIs", c.Label(), len(w.POIs))
	}
	prefixEnd[uint64(rounds)+2] = len(w.POIs)

	// The oracle corpus and per-query reference answer for each epoch,
	// built on first use and memoized — many answers share an epoch.
	var oracleMu sync.Mutex
	corpora := map[uint64]*poi.Corpus{}
	type refKey struct {
		seq uint64
		qi  int
	}
	refs := map[refKey][]core.StreetResult{}
	refAnswer := func(seq uint64, qi int) ([]core.StreetResult, error) {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		if want, ok := refs[refKey{seq, qi}]; ok {
			return want, nil
		}
		corpus, ok := corpora[seq]
		if !ok {
			end, known := prefixEnd[seq]
			if !known {
				return nil, fmt.Errorf("answer at unexpected epoch %d", seq)
			}
			pb := poi.NewBuilder(vocab.NewDictionary())
			for _, p := range w.POIs[:end] {
				pb.AddWeighted(p.Loc, p.Keywords, specWeight(p))
			}
			corpus = pb.Build()
			corpora[seq] = corpus
		}
		want, err := TopK(net, corpus, c.Queries[qi])
		if err != nil {
			return nil, err
		}
		refs[refKey{seq, qi}] = want
		return want, nil
	}

	var divMu sync.Mutex
	var divs []Divergence
	answers := 0
	check := func(qi int, res engine.Result) error {
		if res.Err != nil {
			return fmt.Errorf("query %d at epoch %d: %w", qi, res.Epoch, res.Err)
		}
		want, err := refAnswer(res.Epoch, qi)
		if err != nil {
			return err
		}
		divMu.Lock()
		defer divMu.Unlock()
		answers++
		if msg := Equal(res.Streets, want); msg != "" {
			divs = append(divs, Divergence{
				Impl:     fmt.Sprintf("ingest/interleaved@epoch=%d", res.Epoch),
				CellSize: opt.cellSize(),
				Query:    c.Queries[qi],
				Detail:   msg,
			})
		}
		return nil
	}

	// Query goroutines sweep the matrix grid continuously while the
	// writer publishes; the first error (not divergence) stops the run.
	stop := make(chan struct{})
	errc := make(chan error, opt.queryWorkers())
	var wg sync.WaitGroup
	for g := 0; g < opt.queryWorkers(); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				for qi := range c.Queries {
					select {
					case <-stop:
						return
					default:
					}
					if err := check(qi, exec.Do(c.Queries[qi])); err != nil {
						select {
						case errc <- err:
						default:
						}
						return
					}
				}
			}
		}()
	}

	var runErr error
	for _, ch := range chunks {
		ing.AddBatch(specsToDeltas(ch))
		if _, _, err := ing.Publish(); err != nil {
			runErr = err
			break
		}
	}
	if runErr == nil {
		if _, _, err := ing.Compact(); err != nil {
			runErr = err
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		if runErr == nil {
			runErr = err
		}
	default:
	}
	if runErr != nil {
		return divs, InterleaveReport{}, runErr
	}

	// Post-compaction pass: every query once more on the settled final
	// epoch, plus the cold-rebuild comparison — the compacted delta-log
	// index must answer bit-identically to an offline build of the same
	// corpus.
	finalSeq := uint64(rounds) + 2
	coldIx, err := core.NewIndex(net, fullCorpus(w), core.IndexConfig{CellSize: opt.cellSize()})
	if err != nil {
		return divs, InterleaveReport{}, fmt.Errorf("cold rebuild: %w", err)
	}
	for qi, q := range c.Queries {
		res := exec.Do(q)
		if res.Err != nil {
			return divs, InterleaveReport{}, fmt.Errorf("post-compaction query %d: %w", qi, res.Err)
		}
		if res.Epoch != finalSeq {
			divs = append(divs, Divergence{
				Impl:     "ingest/interleaved@final",
				CellSize: opt.cellSize(),
				Query:    q,
				Detail:   fmt.Sprintf("post-compaction answer at epoch %d, want %d", res.Epoch, finalSeq),
			})
			continue
		}
		if err := check(qi, res); err != nil {
			return divs, InterleaveReport{}, err
		}
		cold, _, err := coldIx.SOIWithStrategy(q, core.CostAware)
		if err != nil {
			return divs, InterleaveReport{}, fmt.Errorf("cold rebuild query %d: %w", qi, err)
		}
		if msg := Equal(res.Streets, cold); msg != "" {
			divs = append(divs, Divergence{
				Impl:     "ingest/compacted-vs-cold",
				CellSize: opt.cellSize(),
				Query:    q,
				Detail:   msg,
			})
		}
	}
	return divs, InterleaveReport{
		Rounds:     rounds,
		FinalEpoch: finalSeq,
		Answers:    answers,
		Streamed:   len(streamed),
	}, nil
}

func specsToDeltas(specs []POISpec) []ingest.Delta {
	out := make([]ingest.Delta, len(specs))
	for i, p := range specs {
		out[i] = ingest.Delta{Loc: p.Loc, Keywords: p.Keywords, Weight: specWeight(p)}
	}
	return out
}

func fullCorpus(w World) *poi.Corpus {
	pb := poi.NewBuilder(vocab.NewDictionary())
	for _, p := range w.POIs {
		pb.AddWeighted(p.Loc, p.Keywords, specWeight(p))
	}
	return pb.Build()
}
