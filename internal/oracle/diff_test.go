package oracle

import (
	"testing"
)

// TestDifferentialMatrix is the PR-time slice of the soicheck sweep: for
// a handful of seeds, every production evaluator must agree with the
// brute-force oracle on every query of the matrix grid, under every
// swept index cell size — and the metamorphic relations must hold.
func TestDifferentialMatrix(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, cfg := range MatrixConfigs(seed, true) {
			divs, err := CheckConfig(cfg, Options{})
			if err != nil {
				t.Fatalf("%s: %v", cfg.Label(), err)
			}
			for _, d := range divs {
				t.Errorf("%s: %s", cfg.Label(), d)
			}
		}
	}
}

// TestDifferentialMatrixFull runs one full-mode (three densities,
// weighted worlds, full query grid) cell to keep the non-quick path
// exercised by `go test` without the nightly sweep's runtime.
func TestDifferentialMatrixFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix cell is not short")
	}
	for _, cfg := range MatrixConfigs(4, false) {
		divs, err := CheckConfig(cfg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label(), err)
		}
		for _, d := range divs {
			t.Errorf("%s: %s", cfg.Label(), d)
		}
	}
}

func TestMatrixQueriesDeterministic(t *testing.T) {
	a := MatrixQueries(7, false)
	b := MatrixQueries(7, false)
	if len(a) == 0 {
		t.Fatal("empty query grid")
	}
	for i := range a {
		if a[i].K != b[i].K || a[i].Epsilon != b[i].Epsilon || len(a[i].Keywords) != len(b[i].Keywords) {
			t.Fatalf("query grid not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if err := a[i].Validate(); err != nil {
			t.Fatalf("grid query %d invalid: %v", i, err)
		}
	}
	quick := MatrixQueries(7, true)
	if len(quick) >= len(a) {
		t.Fatalf("quick grid (%d) not smaller than full grid (%d)", len(quick), len(a))
	}
}
