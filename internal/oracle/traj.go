package oracle

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/traj"
	"repro/internal/vocab"
)

// This file is the brute-force reference for the trajectory query
// family: exhaustive simple-path enumeration for the k most interesting
// routes and a full-scan corridor computation for trajectory-aware SOI.
// The oracle builds its own adjacency (an O(V²) pairwise connector scan,
// so the production graph's grid bucketing is itself under test), runs a
// plain DFS whose only pruning is provable budget infeasibility — never
// a score bound — and computes every per-segment interest by the
// exhaustive pairwise scan. Both sides accumulate path sums in traversal
// order and finish with the same canonical sort, so answers must agree
// bit for bit.

// RouteCase is one derived route query of the trajectory matrix.
type RouteCase struct {
	Src, Dst network.VertexID
	Keywords []string
	Epsilon  float64
	K        int
	Alpha    float64
	Budget   float64
}

// Label names the case in divergence reports.
func (c RouteCase) Label() string {
	return fmt.Sprintf("src=%d dst=%d α=%g budget=%g", c.Src, c.Dst, c.Alpha, c.Budget)
}

// TrajCase is one derived trajectory-SOI query of the matrix.
type TrajCase struct {
	Keywords []string
	Epsilon  float64
	K        int
	Radius   float64
}

// trajAlphas are the travel-cost weights the route matrix sweeps: pure
// interest collection, and a penalty sized so α·length is comparable to
// segment interests on the Tiny extent.
var trajAlphas = []float64{0, 5e8}

// trajRadii are the map-matching snap radii the trajectory matrix
// sweeps, below and above the trace generator's jitter scale.
var trajRadii = []float64{0.0001, 0.0003}

// oracleMaxDFSSteps bounds the exhaustive route enumeration. Hitting it
// is a harness-sizing bug (the derived cases are meant to stay small),
// reported as a loud error rather than a divergence.
const oracleMaxDFSSteps = 5_000_000

// routeCaseCap bounds the budget-feasible path space of a derived route
// case, measured in DFS steps: candidate cases whose exhaustive
// enumeration would exceed it are skipped. The gate keeps both the
// oracle's enumeration and the harness wall-clock small, and it is
// computed before either implementation runs, so skipping is
// deterministic and cannot mask a divergence.
const routeCaseCap = 30_000

// pathSpaceSteps counts the steps of the same budget-feasibility-pruned
// simple-path DFS the oracle runs (lengths only, no scores), giving up
// once the count passes cap.
func pathSpaceSteps(g *traj.Graph, src, dst network.VertexID, budget float64, cap int) int {
	distToDst := g.Distances(dst)
	if math.IsInf(distToDst[src], 1) {
		return 0
	}
	budgetCap := budget * (1 + 1e-9)
	steps := 0
	verts := []network.VertexID{src}
	var dfs func(length float64)
	dfs = func(length float64) {
		steps++
		if steps > cap {
			return
		}
		at := verts[len(verts)-1]
		if at == dst {
			return
		}
		for _, e := range g.Adjacent(at) {
			revisit := false
			for _, v := range verts {
				if v == e.To {
					revisit = true
					break
				}
			}
			if revisit {
				continue
			}
			newLen := length + e.Len
			if newLen > budget || newLen+distToDst[e.To] > budgetCap {
				continue
			}
			verts = append(verts, e.To)
			dfs(newLen)
			verts = verts[:len(verts)-1]
			if steps > cap {
				return
			}
		}
	}
	dfs(0)
	return steps
}

// RouteCases derives the deterministic route-query grid for one seed
// over a built trajectory graph. Destinations are drawn from a shortest-
// path distance band around each source so the enumerable path space
// stays small; unreachable, degenerate or combinatorially oversized
// picks are skipped. Budgets are 1.2× the shortest-path distance,
// leaving room for detours.
func RouteCases(g *traj.Graph, seed int64) []RouteCase {
	nv := g.NumVertices()
	if nv == 0 {
		return nil
	}
	st := g.Network().Stats()
	if st.NumSegments == 0 {
		return nil
	}
	meanLen := st.TotalLen / float64(st.NumSegments)
	var out []RouteCase
	for i := 0; len(out) < 4 && i < 12; i++ {
		src := network.VertexID((seed7(seed)*31 + int64(i)*97) % int64(nv))
		dist := g.Distances(src)
		// Candidate destinations: within a few segment lengths, sorted by
		// (distance, id) so the pick is deterministic.
		type cand struct {
			v network.VertexID
			d float64
		}
		var cands []cand
		for v := 0; v < nv; v++ {
			d := dist[v]
			if d > 1.5*meanLen && d < 5*meanLen {
				cands = append(cands, cand{network.VertexID(v), d})
			}
		}
		if len(cands) == 0 {
			continue
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].v < cands[b].v
		})
		pick := cands[int(seed7(seed)+int64(i)*13)%len(cands)]
		budget := 1.2 * pick.d
		if pathSpaceSteps(g, src, pick.v, budget, routeCaseCap) > routeCaseCap {
			continue
		}
		n := len(out)
		psi := 1 + n%2
		kws := make([]string, 0, psi)
		for j := 0; j < psi; j++ {
			kws = append(kws, matrixVocab[int(seed7(seed)+int64(n*5+j*3))%len(matrixVocab)])
		}
		out = append(out, RouteCase{
			Src:      src,
			Dst:      pick.v,
			Keywords: dedup(kws),
			Epsilon:  matrixEpsilons[n%len(matrixEpsilons)],
			K:        2 + n%2,
			Alpha:    trajAlphas[n%len(trajAlphas)],
			Budget:   budget,
		})
	}
	return out
}

// seed7 folds a seed into a non-negative rotation base.
func seed7(seed int64) int64 {
	s := seed * 7
	if s < 0 {
		s = -s
	}
	return s
}

// TrajCases derives the deterministic trajectory-SOI query grid for one
// seed: the radius sweep with rotating keyword sets.
func TrajCases(seed int64) []TrajCase {
	var out []TrajCase
	for i, r := range trajRadii {
		psi := 1 + i%2
		kws := make([]string, 0, psi)
		for j := 0; j < psi; j++ {
			kws = append(kws, matrixVocab[int(seed7(seed)+int64(17+i*5+j*3))%len(matrixVocab)])
		}
		out = append(out, TrajCase{
			Keywords: dedup(kws),
			Epsilon:  matrixEpsilons[i%len(matrixEpsilons)],
			K:        3,
			Radius:   r,
		})
	}
	return out
}

// BruteAdjacency builds the oracle's own adjacency view of the network:
// every segment in both directions plus a connector for every vertex
// pair within snap, found by a plain O(V²) scan instead of the
// production graph's grid buckets. Lists end in the same canonical
// (To, Seg) order, and connector lengths use the same Dist call, so the
// edge sets — and their floats — must match the production graph
// exactly.
func BruteAdjacency(net *network.Network, snap float64) [][]traj.Edge {
	adj := make([][]traj.Edge, net.NumVertices())
	for i := range net.Segments() {
		seg := net.Segment(network.SegmentID(i))
		adj[seg.From] = append(adj[seg.From], traj.Edge{To: seg.To, Seg: int32(seg.ID), Len: seg.Length()})
		adj[seg.To] = append(adj[seg.To], traj.Edge{To: seg.From, Seg: int32(seg.ID), Len: seg.Length()})
	}
	if snap > 0 {
		for u := 0; u < net.NumVertices(); u++ {
			pu := net.Vertex(network.VertexID(u))
			for v := u + 1; v < net.NumVertices(); v++ {
				if d := pu.Dist(net.Vertex(network.VertexID(v))); d <= snap {
					adj[u] = append(adj[u], traj.Edge{To: network.VertexID(v), Seg: traj.ConnectorSeg, Len: d})
					adj[v] = append(adj[v], traj.Edge{To: network.VertexID(u), Seg: traj.ConnectorSeg, Len: d})
				}
			}
		}
	}
	for v := range adj {
		es := adj[v]
		sort.Slice(es, func(i, j int) bool {
			if es[i].To != es[j].To {
				return es[i].To < es[j].To
			}
			return es[i].Seg < es[j].Seg
		})
	}
	return adj
}

// bruteDistances is a heap-free O(V²) Dijkstra over an oracle adjacency,
// used only for the provable budget-infeasibility prune.
func bruteDistances(adj [][]traj.Edge, src network.VertexID) []float64 {
	n := len(adj)
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for {
		best, bestD := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < bestD {
				best, bestD = v, dist[v]
			}
		}
		if best < 0 {
			return dist
		}
		done[best] = true
		for _, e := range adj[best] {
			if nd := bestD + e.Len; nd < dist[e.To] {
				dist[e.To] = nd
			}
		}
	}
}

// RouteTopK enumerates every vertex-simple path from src to dst whose
// running length never exceeds the budget — a plain DFS whose only
// pruning is provable infeasibility (the path has already overrun the
// budget, or cannot possibly reach the destination within it). No score
// bound is ever applied, so the enumeration is exhaustive over the
// definition. Interest and length accumulate in traversal order with the
// same float operations as the production search.
func RouteTopK(adj [][]traj.Edge, interests []float64, q traj.RouteQuery) ([]traj.Route, error) {
	if int(q.Src) >= len(adj) || int(q.Dst) >= len(adj) {
		return nil, fmt.Errorf("oracle: route vertex out of range")
	}
	distToDst := bruteDistances(adj, q.Dst)
	if math.IsInf(distToDst[q.Src], 1) {
		return []traj.Route{}, nil
	}
	budgetCap := q.Budget * (1 + 1e-9)
	var (
		completions []traj.Route
		steps       int
		verts       = []network.VertexID{q.Src}
		segs        []network.SegmentID
	)
	var dfs func(length, interest float64) error
	dfs = func(length, interest float64) error {
		steps++
		if steps > oracleMaxDFSSteps {
			return fmt.Errorf("oracle: route enumeration exceeded %d steps (harness case too large)", oracleMaxDFSSteps)
		}
		at := verts[len(verts)-1]
		if at == q.Dst {
			completions = append(completions, traj.Route{
				Vertices: append([]network.VertexID(nil), verts...),
				Segments: append([]network.SegmentID(nil), segs...),
				Length:   length,
				Interest: interest,
				Score:    interest - q.Alpha*length,
			})
			return nil
		}
		for _, e := range adj[at] {
			revisit := false
			for _, v := range verts {
				if v == e.To {
					revisit = true
					break
				}
			}
			if revisit {
				continue
			}
			newLen := length + e.Len
			if newLen > q.Budget {
				continue
			}
			if newLen+distToDst[e.To] > budgetCap {
				continue
			}
			newInterest := interest
			if e.Seg != traj.ConnectorSeg {
				newInterest += interests[e.Seg]
			}
			verts = append(verts, e.To)
			if e.Seg != traj.ConnectorSeg {
				segs = append(segs, network.SegmentID(e.Seg))
			}
			err := dfs(newLen, newInterest)
			verts = verts[:len(verts)-1]
			if e.Seg != traj.ConnectorSeg {
				segs = segs[:len(segs)-1]
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(0, 0); err != nil {
		return nil, err
	}
	traj.SortRoutes(completions)
	if len(completions) > q.K {
		completions = completions[:q.K]
	}
	return completions, nil
}

// MatchPoint is the oracle map-matcher: a full ascending scan over every
// segment with a strict < improvement test, accepting the winner only
// within the radius. The production grid matcher must agree exactly.
func MatchPoint(net *network.Network, p geo.Point, radius float64) (network.SegmentID, bool) {
	var (
		best   network.SegmentID
		bestD2 = math.Inf(1)
	)
	for sid := 0; sid < net.NumSegments(); sid++ {
		if d2 := net.Segment(network.SegmentID(sid)).Geom.DistToPointSq(p); d2 < bestD2 {
			best, bestD2 = network.SegmentID(sid), d2
		}
	}
	if bestD2 <= radius*radius {
		return best, true
	}
	return 0, false
}

// TrajTopK is the oracle trajectory-SOI: full-scan matching of every
// trace point, then the canonical corridor aggregation over exhaustively
// computed segment interests.
func TrajTopK(net *network.Network, pois *poi.Corpus, traces [][]geo.Point, q traj.TrajQuery, query vocab.Set, eps float64) []traj.CorridorResult {
	covered := make([]bool, net.NumSegments())
	for _, trace := range traces {
		for _, p := range trace {
			if sid, ok := MatchPoint(net, p, q.Radius); ok {
				covered[sid] = true
			}
		}
	}
	return traj.CorridorRanking(net, covered, func(sid network.SegmentID) float64 {
		return SegmentInterest(net, pois, sid, query, eps)
	}, q.K, nil)
}

// EqualRoutes compares two route rankings for exact agreement: same
// paths rank by rank, with bit-identical length, interest and score.
func EqualRoutes(got, want []traj.Route) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if !equalVerts(g.Vertices, w.Vertices) {
			return fmt.Sprintf("rank %d: vertices %v, want %v", i+1, g.Vertices, w.Vertices)
		}
		if !equalSegs(g.Segments, w.Segments) {
			return fmt.Sprintf("rank %d: segments %v, want %v", i+1, g.Segments, w.Segments)
		}
		switch {
		case math.Float64bits(g.Length) != math.Float64bits(w.Length):
			return fmt.Sprintf("rank %d: length %v, want %v", i+1, g.Length, w.Length)
		case math.Float64bits(g.Interest) != math.Float64bits(w.Interest):
			return fmt.Sprintf("rank %d: interest %v, want %v", i+1, g.Interest, w.Interest)
		case math.Float64bits(g.Score) != math.Float64bits(w.Score):
			return fmt.Sprintf("rank %d: score %v, want %v", i+1, g.Score, w.Score)
		}
	}
	return ""
}

// EqualCorridors compares two corridor rankings for exact agreement.
func EqualCorridors(got, want []traj.CorridorResult) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		switch {
		case g.Street != w.Street:
			return fmt.Sprintf("rank %d: street %d (%q, score %v), want street %d (%q, score %v)",
				i+1, g.Street, g.Name, g.Score, w.Street, w.Name, w.Score)
		case g.Name != w.Name:
			return fmt.Sprintf("rank %d: name %q, want %q", i+1, g.Name, w.Name)
		case math.Float64bits(g.Coverage) != math.Float64bits(w.Coverage):
			return fmt.Sprintf("rank %d (street %d): coverage %v, want %v", i+1, g.Street, g.Coverage, w.Coverage)
		case math.Float64bits(g.Interest) != math.Float64bits(w.Interest):
			return fmt.Sprintf("rank %d (street %d): interest %v, want %v", i+1, g.Street, g.Interest, w.Interest)
		case math.Float64bits(g.Score) != math.Float64bits(w.Score):
			return fmt.Sprintf("rank %d (street %d): score %v, want %v", i+1, g.Street, g.Score, w.Score)
		}
	}
	return ""
}

func equalVerts(a, b []network.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalSegs(a, b []network.SegmentID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DiffTraj runs the trajectory differential matrix over one world. For
// every derived route case it first pins every per-segment interest of
// the production index bit-identical to the exhaustive scan (so any
// route divergence isolates the search, not interest provenance), then
// compares the pruned best-first search against exhaustive enumeration
// over the oracle's own adjacency. For every trajectory case it compares
// the grid matcher against the full scan point by point, then the
// end-to-end corridor rankings. Options.Routes / Options.Traj select the
// halves; cell sizes sweep as in DiffWorld.
func DiffTraj(w World, seed int64, opt Options) ([]Divergence, error) {
	if !opt.Routes && !opt.Traj {
		return nil, nil
	}
	net, pois, _, dict, err := w.Build()
	if err != nil {
		return nil, err
	}
	if net.NumSegments() == 0 {
		return nil, nil
	}
	ctx := context.Background()
	snap := traj.DefaultSnap(net)
	g := traj.NewGraph(net, snap)
	var divs []Divergence

	// The matcher differential is index-free: run it once per radius.
	if opt.Traj && len(w.Traces) > 0 {
		for _, c := range TrajCases(seed) {
			m := traj.NewMatcher(net, c.Radius)
			for ti, trace := range w.Traces {
				for pi, p := range trace {
					gs, gok := m.Match(p)
					ws, wok := MatchPoint(net, p, c.Radius)
					if gok != wok || (gok && gs != ws) {
						divs = append(divs, Divergence{
							Impl: "traj/match",
							Detail: fmt.Sprintf("trace %d point %d (r=%g): grid match (%d,%t), full scan (%d,%t)",
								ti, pi, c.Radius, gs, gok, ws, wok),
						})
					}
				}
			}
		}
	}

	var adj [][]traj.Edge
	var routeCases []RouteCase
	if opt.Routes {
		adj = BruteAdjacency(net, snap)
		routeCases = RouteCases(g, seed)
	}

	for _, cell := range opt.cellSizes() {
		ix, err := core.NewIndex(net, pois, core.IndexConfig{CellSize: cell})
		if err != nil {
			return nil, fmt.Errorf("oracle: building index (cell %g): %w", cell, err)
		}
		report := func(impl string, q core.Query, detail string) {
			divs = append(divs, Divergence{Impl: impl, CellSize: cell, Query: q, Detail: detail})
		}

		if opt.Routes {
			for _, c := range routeCases {
				rq := core.Query{Keywords: c.Keywords, K: c.K, Epsilon: c.Epsilon}
				set, _ := dict.LookupAll(c.Keywords)
				interests := make([]float64, net.NumSegments())
				diverged := false
				for sid := range interests {
					interests[sid] = SegmentInterest(net, pois, network.SegmentID(sid), set, c.Epsilon)
					got := ix.SegmentInterest(network.SegmentID(sid), set, c.Epsilon)
					if math.Float64bits(got) != math.Float64bits(interests[sid]) {
						report("routes/interest", rq, fmt.Sprintf("segment %d: index interest %v, exhaustive %v", sid, got, interests[sid]))
						diverged = true
						break
					}
				}
				if diverged {
					continue
				}
				tq := traj.RouteQuery{Src: c.Src, Dst: c.Dst, K: c.K, Budget: c.Budget, Alpha: c.Alpha}
				got, _, err := traj.TopKRoutes(ctx, g, func(sid network.SegmentID) float64 {
					return ix.SegmentInterest(sid, set, c.Epsilon)
				}, tq, traj.SearchOptions{})
				if err != nil {
					report("routes/topk", rq, fmt.Sprintf("%s: error: %v", c.Label(), err))
					continue
				}
				want, err := RouteTopK(adj, interests, tq)
				if err != nil {
					return nil, err
				}
				if d := EqualRoutes(got, want); d != "" {
					report("routes/topk", rq, fmt.Sprintf("%s: %s", c.Label(), d))
				}
			}
		}

		if opt.Traj && len(w.Traces) > 0 {
			for _, c := range TrajCases(seed) {
				rq := core.Query{Keywords: c.Keywords, K: c.K, Epsilon: c.Epsilon}
				set, _ := dict.LookupAll(c.Keywords)
				tq := traj.TrajQuery{Traces: w.Traces, K: c.K, Radius: c.Radius}
				m := traj.NewMatcher(net, c.Radius)
				got, _, err := traj.TrajectorySOI(ctx, m, func(sid network.SegmentID) float64 {
					return ix.SegmentInterest(sid, set, c.Epsilon)
				}, tq)
				if err != nil {
					report("traj/soi", rq, fmt.Sprintf("r=%g: error: %v", c.Radius, err))
					continue
				}
				want := TrajTopK(net, pois, w.Traces, tq, set, c.Epsilon)
				if d := EqualCorridors(got, want); d != "" {
					report("traj/soi", rq, fmt.Sprintf("r=%g: %s", c.Radius, d))
				}
			}
		}
	}
	return divs, nil
}
