package oracle

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// brokenTopK is a deliberately bugged evaluator: an off-by-one makes it
// ignore the corpus's last POI. The shrink test uses it to demonstrate
// that a real divergence of this class is (a) detected and (b) reduced
// to a tiny reproducing world.
func brokenTopK(w World, q core.Query) ([]core.StreetResult, error) {
	clipped := w.Clone()
	if n := len(clipped.POIs); n > 0 {
		clipped.POIs = clipped.POIs[:n-1]
	}
	net, pois, _, _, err := clipped.Build()
	if err != nil {
		return nil, err
	}
	return TopK(net, pois, q)
}

func TestShrinkOffByOneRepro(t *testing.T) {
	// K covers every street with positive interest, so losing any relevant
	// POI near any street must change the reported answer.
	q := core.Query{Keywords: []string{"shop"}, K: 50, Epsilon: 0.0005}
	pred := func(w World) bool {
		net, pois, _, _, err := w.Build()
		if err != nil {
			return false
		}
		want, err := TopK(net, pois, q)
		if err != nil {
			return false
		}
		got, err := brokenTopK(w, q)
		if err != nil {
			return false
		}
		return Equal(got, want) != ""
	}

	// Find a seed whose Tiny world exposes the bug (the planted shop POIs
	// are appended last, so dropping the final POI almost always moves a
	// planted street's mass).
	var world World
	found := false
	for seed := int64(1); seed <= 6 && !found; seed++ {
		w, err := SeedConfig{Seed: seed, Density: 1}.BuildWorld()
		if err != nil {
			t.Fatal(err)
		}
		if pred(w) {
			world, found = w, true
		}
	}
	if !found {
		t.Fatal("no Tiny seed in 1..6 exposes the injected off-by-one; the harness would miss a dropped-POI bug")
	}

	shrunk := Shrink(world, pred, 3000)
	if !pred(shrunk) {
		t.Fatal("shrunk world no longer reproduces the divergence")
	}
	if got := len(shrunk.POIs); got > 20 {
		t.Errorf("shrunk world still has %d POIs, want ≤ 20", got)
	}
	if got := len(shrunk.Streets); got > 6 {
		t.Errorf("shrunk world still has %d streets, want ≤ 6", got)
	}
	if len(shrunk.Photos) != 0 {
		t.Errorf("shrunk world kept %d photos irrelevant to the divergence", len(shrunk.Photos))
	}
	t.Logf("shrunk to %d streets, %d POIs", len(shrunk.Streets), len(shrunk.POIs))

	// The repro must serialize.
	var buf bytes.Buffer
	if err := shrunk.WriteGeoJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty GeoJSON repro")
	}
}

func TestShrinkRespectsBudget(t *testing.T) {
	w, err := SeedConfig{Seed: 1, Density: 1}.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	pred := func(World) bool {
		calls++
		return true // everything reproduces: maximal shrinking pressure
	}
	shrunk := Shrink(w, pred, 50)
	if calls > 51 { // +1 for the wholesale photo drop
		t.Fatalf("predicate called %d times with budget 50", calls)
	}
	if shrunk.size() >= w.size() {
		t.Fatalf("no progress within budget: %d → %d items", w.size(), shrunk.size())
	}
}

func TestShrinkToMinimalWorld(t *testing.T) {
	w, err := SeedConfig{Seed: 2, Density: 1}.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	// An always-true predicate must shrink to the empty world.
	shrunk := Shrink(w, func(World) bool { return true }, 0)
	if shrunk.size() != 0 {
		t.Fatalf("always-true predicate left %d streets, %d POIs, %d photos",
			len(shrunk.Streets), len(shrunk.POIs), len(shrunk.Photos))
	}
}
