package oracle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/geo"
	"repro/internal/network"
)

// This file is the metamorphic suite: properties the definitions imply
// about RELATED inputs, which catch bug classes a point-wise differential
// check cannot (the oracle and the implementation sharing a misreading of
// the paper, for instance). Checked relations:
//
//   - keyword-superset mass monotonicity: dropping a query keyword can
//     never increase any segment's mass (Def. 1 sums over matching POIs).
//   - ε-monotonicity: widening the buffer can never decrease any
//     segment's mass.
//   - rigid-motion invariance: translating or rotating the whole world
//     preserves every distance, hence every mass, interest and ranking
//     (up to float rounding of rotated coordinates).
//   - POI-insertion monotonicity: adding a relevant POI can only grow
//     masses, and grows the covered segment by at least its weight.
//   - λ = 0 degeneration: with diversity weighted zero, every MMR
//     construction must select exactly the pure-relevance top-k.

// RelTolMotion is the relative interest tolerance for rigid-motion
// comparisons; rotation perturbs segment lengths in the last float bits.
const RelTolMotion = 1e-9

// Metamorphic runs the metamorphic suite over one world and returns every
// violated relation as a divergence.
func Metamorphic(w World, queries []core.Query, opt Options) ([]Divergence, error) {
	net, pois, photos, dict, err := w.Build()
	if err != nil {
		return nil, err
	}
	cell := opt.cellSizes()[0]
	ix, err := core.NewIndex(net, pois, core.IndexConfig{CellSize: cell})
	if err != nil {
		return nil, fmt.Errorf("oracle: building index: %w", err)
	}

	var divs []Divergence
	report := func(impl string, q core.Query, detail string) {
		divs = append(divs, Divergence{Impl: impl, CellSize: cell, Query: q, Detail: detail})
	}

	baseTopK := make([][]core.StreetResult, len(queries))
	for qi, q := range queries {
		qset := ResolveKeywords(pois, q.Keywords)
		full := AllSegmentMasses(net, pois, qset, q.Epsilon)

		// Per-segment differential: the grid-indexed mass must equal the
		// exhaustive-scan mass on every segment, not just the reported ones.
		for sid, want := range full {
			if got := ix.SegmentMass(network.SegmentID(sid), qset, q.Epsilon); got != want {
				report("index/segment-mass", q, fmt.Sprintf("segment %d: mass %v, oracle %v", sid, got, want))
				break
			}
		}

		if len(q.Keywords) >= 2 {
			subSet, _ := pois.Dict().LookupAll(q.Keywords[:len(q.Keywords)-1])
			sub := AllSegmentMasses(net, pois, subSet, q.Epsilon)
			for sid := range sub {
				if sub[sid] > full[sid] {
					report("metamorphic/keyword-superset", q,
						fmt.Sprintf("segment %d: mass %v under Ψ'=%v exceeds %v under superset Ψ",
							sid, sub[sid], q.Keywords[:len(q.Keywords)-1], full[sid]))
					break
				}
			}
		}

		wider := AllSegmentMasses(net, pois, qset, 2*q.Epsilon)
		for sid := range full {
			if full[sid] > wider[sid] {
				report("metamorphic/eps-monotonicity", q,
					fmt.Sprintf("segment %d: mass %v at ε exceeds %v at 2ε", sid, full[sid], wider[sid]))
				break
			}
		}

		baseTopK[qi], err = TopK(net, pois, q)
		if err != nil {
			return nil, err
		}
	}

	// Rigid motions: one transformed build checks every query.
	for _, m := range motions(w) {
		tw := m.fn(w)
		tnet, tpois, _, _, err := tw.Build()
		if err != nil {
			return nil, fmt.Errorf("oracle: building %s world: %w", m.name, err)
		}
		tix, err := core.NewIndex(tnet, tpois, core.IndexConfig{CellSize: cell})
		if err != nil {
			return nil, fmt.Errorf("oracle: indexing %s world: %w", m.name, err)
		}
		for qi, q := range queries {
			tor, err := TopK(tnet, tpois, q)
			if err != nil {
				return nil, err
			}
			if d := EqualRanked(tor, baseTopK[qi], RelTolMotion); d != "" {
				report("metamorphic/"+m.name+"/oracle", q, d)
			}
			if res, _, err := tix.SOI(q); err != nil {
				report("metamorphic/"+m.name+"/soi", q, "error: "+err.Error())
			} else if d := EqualRanked(res, baseTopK[qi], RelTolMotion); d != "" {
				report("metamorphic/"+m.name+"/soi", q, d)
			}
		}
	}

	// POI insertion: drop a fresh relevant POI onto a segment and require
	// every mass to be non-decreasing, the covered segment to gain at
	// least the new weight, and the top street interest not to drop.
	for qi, q := range queries {
		target := network.SegmentID(0)
		if len(baseTopK[qi]) > 0 {
			target = baseTopK[qi][0].BestSegment
		} else if net.NumSegments() == 0 {
			continue
		}
		seg := net.Segment(target).Geom
		mid := geo.Pt((seg.A.X+seg.B.X)/2, (seg.A.Y+seg.B.Y)/2)
		const weight = 3.0
		grown := w.Clone()
		grown.POIs = append(grown.POIs, POISpec{Loc: mid, Keywords: q.Keywords, Weight: weight})
		gnet, gpois, _, _, err := grown.Build()
		if err != nil {
			return nil, fmt.Errorf("oracle: building grown world: %w", err)
		}
		qset := ResolveKeywords(pois, q.Keywords)
		gset := ResolveKeywords(gpois, q.Keywords)
		before := AllSegmentMasses(net, pois, qset, q.Epsilon)
		after := AllSegmentMasses(gnet, gpois, gset, q.Epsilon)
		for sid := range before {
			if after[sid] < before[sid] {
				report("metamorphic/poi-insertion", q,
					fmt.Sprintf("segment %d: mass dropped from %v to %v after inserting a POI", sid, before[sid], after[sid]))
				break
			}
		}
		if after[target] < before[target]+weight {
			report("metamorphic/poi-insertion", q,
				fmt.Sprintf("segment %d: mass %v after inserting weight-%v POI on it, want ≥ %v",
					target, after[target], weight, before[target]+weight))
		}
		gix, err := core.NewIndex(gnet, gpois, core.IndexConfig{CellSize: cell})
		if err != nil {
			return nil, fmt.Errorf("oracle: indexing grown world: %w", err)
		}
		if res, _, err := gix.SOI(q); err != nil {
			report("metamorphic/poi-insertion", q, "error: "+err.Error())
		} else if len(baseTopK[qi]) > 0 {
			if len(res) == 0 || res[0].Interest < baseTopK[qi][0].Interest {
				top := 0.0
				if len(res) > 0 {
					top = res[0].Interest
				}
				report("metamorphic/poi-insertion", q,
					fmt.Sprintf("top interest dropped from %v to %v after inserting a relevant POI",
						baseTopK[qi][0].Interest, top))
			}
		}
	}

	// λ = 0 degeneration on the photo-richest street.
	if len(w.Photos) > 0 && net.NumStreets() > 0 {
		const eps = 0.0005
		bestStreet, bestCount := network.StreetID(0), -1
		for i := range net.Streets() {
			rs, _ := diversify.ExtractStreetPhotos(net, network.StreetID(i), photos, eps)
			if len(rs) > bestCount {
				bestStreet, bestCount = network.StreetID(i), len(rs)
			}
		}
		rs, maxD := diversify.ExtractStreetPhotos(net, bestStreet, photos, eps)
		if len(rs) >= 2 && maxD > 0 {
			sum := Summary{Photos: rs, Freq: diversify.FreqFromPhotos(dict, rs), MaxD: maxD}
			p := diversify.Params{K: minInt(4, len(rs)), Lambda: 0, W: 0.5, Rho: maxD / 4}
			want := sum.GreedyRelevanceTopK(p.K, p.W, p.Rho)
			ctx, err := diversify.NewContext(rs, sum.Freq, maxD, p.Rho)
			if err != nil {
				return nil, err
			}
			for name, run := range map[string]func(diversify.Params) (diversify.Result, error){
				"strel-div": ctx.STRelDiv,
				"baseline":  ctx.Baseline,
			} {
				res, err := run(p)
				if err != nil {
					report("metamorphic/lambda-zero/"+name, core.Query{}, "error: "+err.Error())
					continue
				}
				if !equalInts(res.Selected, want) {
					report("metamorphic/lambda-zero/"+name, core.Query{},
						fmt.Sprintf("street %d: selection %v at λ=0, pure-relevance top-k is %v", bestStreet, res.Selected, want))
				}
			}
		}
	}

	return divs, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
