package vocab

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("Shop")
	b := d.Intern("shop")
	c := d.Intern("  SHOP ")
	if a != b || b != c {
		t.Fatalf("normalization failed: %d %d %d", a, b, c)
	}
	e := d.Intern("food")
	if e == a {
		t.Fatal("distinct keywords share an id")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Name(a) != "shop" || d.Name(e) != "food" {
		t.Fatalf("Name round-trip failed: %q %q", d.Name(a), d.Name(e))
	}
}

func TestDictionaryZeroValue(t *testing.T) {
	var d Dictionary
	id := d.Intern("x")
	if got, ok := d.Lookup("X"); !ok || got != id {
		t.Fatalf("Lookup after zero-value Intern = %d, %v", got, ok)
	}
}

func TestDictionaryLookup(t *testing.T) {
	d := NewDictionary()
	d.Intern("shop")
	if _, ok := d.Lookup("shop"); !ok {
		t.Error("known keyword not found")
	}
	if _, ok := d.Lookup("museum"); ok {
		t.Error("unknown keyword found")
	}
}

func TestDictionaryInternAll(t *testing.T) {
	d := NewDictionary()
	s := d.InternAll([]string{"b", "a", "b", "C", "c"})
	if s.Len() != 3 {
		t.Fatalf("InternAll Len = %d, want 3", s.Len())
	}
	s.validate()
	names := d.Names(s)
	want := map[string]bool{"a": true, "b": true, "c": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected name %q", n)
		}
	}
}

func TestDictionaryLookupAll(t *testing.T) {
	d := NewDictionary()
	d.Intern("shop")
	d.Intern("food")
	s, unknown := d.LookupAll([]string{"shop", "museum", "food", "zoo"})
	if s.Len() != 2 {
		t.Fatalf("LookupAll Len = %d, want 2", s.Len())
	}
	if !reflect.DeepEqual(unknown, []string{"museum", "zoo"}) {
		t.Fatalf("unknown = %v", unknown)
	}
}

func TestNewSetDedup(t *testing.T) {
	s := NewSet([]ID{5, 1, 5, 3, 1, 1})
	if !s.Equal(Set{1, 3, 5}) {
		t.Fatalf("NewSet = %v", s)
	}
	s.validate()
	if NewSet(nil) != nil {
		t.Error("NewSet(nil) should be nil")
	}
}

func TestSetContains(t *testing.T) {
	s := Set{2, 4, 9}
	for _, id := range []ID{2, 4, 9} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range []ID{0, 3, 10} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
	if (Set{}).Contains(1) {
		t.Error("empty set contains")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Set{1, 2, 3, 7}
	b := Set{2, 3, 5}
	if got := a.Intersect(b); !got.Equal(Set{2, 3}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.IntersectCount(b); got != 2 {
		t.Errorf("IntersectCount = %d", got)
	}
	if got := a.Union(b); !got.Equal(Set{1, 2, 3, 5, 7}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Diff(b); !got.Equal(Set{1, 7}) {
		t.Errorf("Diff = %v", got)
	}
	if got := a.DiffCount(b); got != 2 {
		t.Errorf("DiffCount = %d", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	if a.Intersects(Set{4, 6}) {
		t.Error("disjoint Intersects = true")
	}
	if a.Intersects(nil) || Set(nil).Intersects(a) {
		t.Error("nil Intersects = true")
	}
}

func TestJaccardDistance(t *testing.T) {
	tests := []struct {
		name string
		a, b Set
		want float64
	}{
		{"identical", Set{1, 2}, Set{1, 2}, 0},
		{"disjoint", Set{1}, Set{2}, 1},
		{"half", Set{1, 2}, Set{2, 3}, 1 - 1.0/3},
		{"both empty", nil, nil, 0},
		{"one empty", Set{1}, nil, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.JaccardDistance(tc.b); mathAbs(got-tc.want) > 1e-12 {
				t.Errorf("Jaccard = %v, want %v", got, tc.want)
			}
		})
	}
}

func randomSet(rng *rand.Rand, maxID ID, n int) Set {
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(rng.Intn(int(maxID)))
	}
	return NewSet(ids)
}

// Properties of the set algebra checked on random inputs.
func TestSetAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := randomSet(rng, 30, rng.Intn(15))
		b := randomSet(rng, 30, rng.Intn(15))
		inter := a.Intersect(b)
		union := a.Union(b)
		diff := a.Diff(b)
		inter.validate()
		union.validate()
		diff.validate()
		if len(inter)+len(union) != len(a)+len(b) {
			t.Fatalf("|∩|+|∪| != |a|+|b| for %v %v", a, b)
		}
		if len(diff)+len(inter) != len(a) {
			t.Fatalf("|a\\b|+|a∩b| != |a| for %v %v", a, b)
		}
		if !inter.Equal(b.Intersect(a)) {
			t.Fatalf("intersect not commutative for %v %v", a, b)
		}
		if !union.Equal(b.Union(a)) {
			t.Fatalf("union not commutative for %v %v", a, b)
		}
		if a.Intersects(b) != (len(inter) > 0) {
			t.Fatalf("Intersects mismatch for %v %v", a, b)
		}
		// Jaccard symmetry and range.
		dj := a.JaccardDistance(b)
		if dj != b.JaccardDistance(a) || dj < 0 || dj > 1 {
			t.Fatalf("Jaccard invalid: %v", dj)
		}
	}
}

// Jaccard distance satisfies the triangle inequality (it is a metric).
func TestJaccardTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		a := randomSet(rng, 12, rng.Intn(8)+1)
		b := randomSet(rng, 12, rng.Intn(8)+1)
		c := randomSet(rng, 12, rng.Intn(8)+1)
		if a.JaccardDistance(c) > a.JaccardDistance(b)+b.JaccardDistance(c)+1e-12 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestSetClone(t *testing.T) {
	a := Set{1, 2}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Error("Clone aliases the original")
	}
	if Set(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestNewSetSortedProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		ids := make([]ID, len(raw))
		for i, v := range raw {
			ids[i] = ID(v % 1000)
		}
		s := NewSet(ids)
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreq(t *testing.T) {
	d := NewDictionary()
	shop := d.Intern("shop")
	food := d.Intern("food")
	d.Intern("park")
	f := NewFreq(d)
	if len(f) != 3 {
		t.Fatalf("NewFreq len = %d", len(f))
	}
	f.AddSet(Set{shop, food}, 1)
	f.AddSet(Set{shop}, 2)
	if f[shop] != 3 || f[food] != 1 {
		t.Fatalf("AddSet failed: %v", f)
	}
	if got := f.L1(); got != 4 {
		t.Errorf("L1 = %v", got)
	}
	if got := f.SumOver(Set{shop}); got != 3 {
		t.Errorf("SumOver = %v", got)
	}
	if got := f.SumOver(Set{99}); got != 0 {
		t.Errorf("SumOver out-of-range = %v", got)
	}
	if got := f.Support(); !got.Equal(Set{shop, food}) {
		t.Errorf("Support = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"  Shop ":   "shop",
		"FOOD":      "food",
		"café":      "café",
		"":          "",
		"\tmix ED ": "mix ed",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: Diff and Intersect partition the left operand.
func TestDiffIntersectPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		a := randomSet(rng, 20, rng.Intn(10))
		b := randomSet(rng, 20, rng.Intn(10))
		union := a.Diff(b).Union(a.Intersect(b))
		if !union.Equal(a) {
			t.Fatalf("(a\\b) ∪ (a∩b) = %v != a = %v", union, a)
		}
	}
}
