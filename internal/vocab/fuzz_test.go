package vocab

import (
	"strings"
	"testing"
)

// FuzzNormalize checks the normalization invariants interning relies on:
// idempotence (a normalized keyword re-normalizes to itself) and
// dictionary consistency (interning any string yields an id whose stored
// name is the normalized form and which Lookup finds again under every
// spelling that normalizes the same way).
func FuzzNormalize(f *testing.F) {
	f.Add("Shop")
	f.Add("  food  ")
	f.Add("ÄÖÜ straße")
	f.Add("ſ") // long s: ToLower("ſ") = "ſ", distinct from "s"
	f.Add(" nbsp ")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		if again := Normalize(n); again != n {
			t.Fatalf("Normalize not idempotent: %q → %q → %q", s, n, again)
		}
		d := NewDictionary()
		id := d.Intern(s)
		if got := d.Name(id); got != n {
			t.Fatalf("Name(Intern(%q)) = %q, want %q", s, got, n)
		}
		if lid, ok := d.Lookup(s); !ok || lid != id {
			t.Fatalf("Lookup(%q) = %d,%v after Intern returned %d", s, lid, ok, id)
		}
		if lid, ok := d.Lookup(strings.ToUpper(s)); ok && lid != id {
			// Upper-casing may change the normalized form (e.g. ß→SS), in
			// which case the keyword is legitimately unknown — but if it
			// is known it must be the same entry.
			if Normalize(strings.ToUpper(s)) == n {
				t.Fatalf("case-variant lookup returned different id")
			}
		}
		if d.Intern(s) != id || d.Len() != 1 {
			t.Fatalf("re-interning %q changed the dictionary", s)
		}
	})
}

// FuzzSetOps checks the Set algebra laws on arbitrary id multisets.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 4})
	f.Add([]byte{}, []byte{0, 0, 0})
	f.Add([]byte{255, 0, 128}, []byte{128})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		toSet := func(bs []byte) Set {
			ids := make([]ID, len(bs))
			for i, b := range bs {
				ids[i] = ID(b)
			}
			return NewSet(ids)
		}
		a, b := toSet(ab), toSet(bb)
		for _, s := range []Set{a, b} {
			for i := 1; i < len(s); i++ {
				if s[i] <= s[i-1] {
					t.Fatalf("NewSet not strictly sorted: %v", s)
				}
			}
		}
		inter, union, diff := a.Intersect(b), a.Union(b), a.Diff(b)
		if len(union) != len(a)+len(b)-len(inter) {
			t.Fatalf("|A∪B| = %d, want |A|+|B|-|A∩B| = %d", len(union), len(a)+len(b)-len(inter))
		}
		if a.IntersectCount(b) != len(inter) {
			t.Fatalf("IntersectCount = %d, Intersect len = %d", a.IntersectCount(b), len(inter))
		}
		if a.DiffCount(b) != len(diff) {
			t.Fatalf("DiffCount = %d, Diff len = %d", a.DiffCount(b), len(diff))
		}
		if a.Intersects(b) != (len(inter) > 0) {
			t.Fatal("Intersects disagrees with Intersect")
		}
		for _, id := range inter {
			if !a.Contains(id) || !b.Contains(id) {
				t.Fatalf("intersection member %d missing from an operand", id)
			}
		}
		for _, id := range diff {
			if !a.Contains(id) || b.Contains(id) {
				t.Fatalf("difference member %d misplaced", id)
			}
		}
		for _, id := range a {
			if !union.Contains(id) {
				t.Fatalf("union lost %d", id)
			}
		}
		if jd := a.JaccardDistance(b); jd < 0 || jd > 1 {
			t.Fatalf("Jaccard distance %v outside [0,1]", jd)
		}
		if !a.Equal(a.Clone()) {
			t.Fatal("clone not equal to original")
		}
	})
}
