// Package vocab provides the textual substrate of the SOI library: a
// keyword dictionary that interns strings into dense integer ids, and
// sorted keyword sets with the set algebra (intersection, union, Jaccard
// distance) the paper's textual relevance and diversity measures need.
//
// Keyword ids are dense and start at 0, so frequency vectors over a
// dictionary can be plain slices.
package vocab

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies an interned keyword within a Dictionary.
type ID = uint32

// Dictionary interns keyword strings into dense ids. The zero value is
// ready to use. Dictionary is not safe for concurrent mutation; concurrent
// read-only use is safe.
type Dictionary struct {
	byName map[string]ID
	names  []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]ID)}
}

// Intern returns the id of the keyword, creating it when unseen. Keywords
// are normalized to lower case with surrounding whitespace removed.
func (d *Dictionary) Intern(keyword string) ID {
	k := Normalize(keyword)
	if d.byName == nil {
		d.byName = make(map[string]ID)
	}
	if id, ok := d.byName[k]; ok {
		return id
	}
	id := ID(len(d.names))
	d.byName[k] = id
	d.names = append(d.names, k)
	return id
}

// Lookup returns the id of the keyword and whether it is known.
func (d *Dictionary) Lookup(keyword string) (ID, bool) {
	id, ok := d.byName[Normalize(keyword)]
	return id, ok
}

// Name returns the string form of id. It panics when id is out of range,
// which indicates ids from a different dictionary.
func (d *Dictionary) Name(id ID) string {
	return d.names[id]
}

// Len returns the number of interned keywords.
func (d *Dictionary) Len() int { return len(d.names) }

// InternAll interns every keyword and returns the resulting sorted,
// deduplicated Set.
func (d *Dictionary) InternAll(keywords []string) Set {
	ids := make([]ID, 0, len(keywords))
	for _, k := range keywords {
		ids = append(ids, d.Intern(k))
	}
	return NewSet(ids)
}

// LookupAll resolves the keywords that are known and returns them as a
// Set, along with the keywords that were unknown.
func (d *Dictionary) LookupAll(keywords []string) (Set, []string) {
	ids := make([]ID, 0, len(keywords))
	var unknown []string
	for _, k := range keywords {
		if id, ok := d.Lookup(k); ok {
			ids = append(ids, id)
		} else {
			unknown = append(unknown, k)
		}
	}
	return NewSet(ids), unknown
}

// Names returns the string forms of every id in s.
func (d *Dictionary) Names(s Set) []string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = d.Name(id)
	}
	return out
}

// Normalize lower-cases a keyword and trims surrounding whitespace.
func Normalize(keyword string) string {
	return strings.ToLower(strings.TrimSpace(keyword))
}

// Set is a sorted, duplicate-free slice of keyword ids. The zero value is
// the empty set.
type Set []ID

// NewSet sorts and deduplicates ids into a Set. The input slice may be
// reordered.
func NewSet(ids []ID) Set {
	if len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return Set(out)
}

// Len returns the cardinality of the set.
func (s Set) Len() int { return len(s) }

// Contains reports whether id is a member of s.
func (s Set) Contains(id ID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// IntersectCount returns |s ∩ t|.
func (s Set) IntersectCount(t Set) int {
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Intersect returns s ∩ t as a new Set.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Union returns s ∪ t as a new Set.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Diff returns s \ t as a new Set.
func (s Set) Diff(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	return out
}

// DiffCount returns |s \ t|.
func (s Set) DiffCount(t Set) int {
	return len(s) - s.IntersectCount(t)
}

// Intersects reports whether s ∩ t is non-empty. This realizes the paper's
// relevance predicate Ψp ∩ Ψ ≠ ∅ (Def. 1).
func (s Set) Intersects(t Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// JaccardDistance returns 1 − |s∩t| / |s∪t| (Def. 7). The distance of two
// empty sets is 0 by convention.
func (s Set) JaccardDistance(t Set) float64 {
	inter := s.IntersectCount(t)
	union := len(s) + len(t) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// Equal reports whether s and t have identical members.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// validate panics when s is not sorted and duplicate-free; used by tests.
func (s Set) validate() {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			panic(fmt.Sprintf("vocab: set not strictly sorted at %d: %v", i, s))
		}
	}
}

// Freq is a keyword frequency vector over a dictionary, indexed by keyword
// id. It realizes the paper's street keyword vector Φs.
type Freq []float64

// NewFreq returns a zeroed frequency vector sized for the dictionary.
func NewFreq(d *Dictionary) Freq {
	return make(Freq, d.Len())
}

// AddSet increments the frequency of every keyword in s by weight.
func (f Freq) AddSet(s Set, weight float64) {
	for _, id := range s {
		f[id] += weight
	}
}

// L1 returns the L1 norm ‖Φ‖₁ = Σ Φ(ψ), the normalizer of Def. 6.
func (f Freq) L1() float64 {
	var sum float64
	for _, v := range f {
		sum += v
	}
	return sum
}

// SumOver returns Σ_{ψ∈s} Φ(ψ).
func (f Freq) SumOver(s Set) float64 {
	var sum float64
	for _, id := range s {
		if int(id) < len(f) {
			sum += f[id]
		}
	}
	return sum
}

// Support returns the set of keywords with non-zero frequency (the
// paper's Ψs).
func (f Freq) Support() Set {
	var ids []ID
	for id, v := range f {
		if v != 0 {
			ids = append(ids, ID(id))
		}
	}
	return Set(ids)
}
