// Package osm imports road networks from OpenStreetMap XML extracts —
// the source the paper's road networks come from ("road networks from
// OpenStreetMap"). It parses nodes and highway-tagged ways into the
// repository's network model: each way becomes one street whose
// consecutive node pairs become segments, named by the way's "name" tag
// (or "way/<id>" when unnamed).
//
// Only the features the SOI algorithms consume are extracted; relations,
// metadata and non-highway ways are skipped. The parser is streaming
// (encoding/xml decoder), so city-scale extracts do not need to fit in
// memory as a DOM.
package osm

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
)

// Options filter the import.
type Options struct {
	// Highways restricts the imported ways to these highway tag values
	// (e.g. "primary", "residential"). Empty imports every way that has
	// any highway tag.
	Highways []string
	// MinNodes drops ways with fewer referenced nodes (default 2, the
	// minimum for one segment).
	MinNodes int
}

// poiTagKeys are the node tag keys whose values become POI keywords —
// the categories the paper's POI crawl drew from OSM.
var poiTagKeys = []string{"amenity", "shop", "tourism", "leisure", "religion"}

// ParseXML reads an OSM XML extract and builds the road network plus a
// POI corpus from tagged nodes (nodes carrying an amenity/shop/tourism/
// leisure/religion tag; the tag values become the POI keywords, plus the
// node's name when present). Ways referencing unknown nodes are skipped
// with a counted warning rather than failing the import (crawled
// extracts routinely clip ways at the bounding box).
func ParseXML(r io.Reader, opts Options) (*network.Network, *poi.Corpus, *Stats, error) {
	minNodes := opts.MinNodes
	if minNodes < 2 {
		minNodes = 2
	}
	allowed := map[string]bool{}
	for _, h := range opts.Highways {
		allowed[h] = true
	}

	dec := xml.NewDecoder(r)
	nodes := map[int64]geo.Point{}
	type way struct {
		id      int64
		name    string
		highway string
		refs    []int64
	}
	var ways []way
	stats := &Stats{}
	pb := poi.NewBuilder(nil)

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("osm: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch se.Name.Local {
		case "node":
			var id int64
			var lat, lon float64
			var idOK, latOK, lonOK bool
			for _, a := range se.Attr {
				switch a.Name.Local {
				case "id":
					v, err := strconv.ParseInt(a.Value, 10, 64)
					if err != nil {
						return nil, nil, nil, fmt.Errorf("osm: node id %q: %w", a.Value, err)
					}
					id, idOK = v, true
				case "lat":
					v, err := strconv.ParseFloat(a.Value, 64)
					if err != nil {
						return nil, nil, nil, fmt.Errorf("osm: node lat %q: %w", a.Value, err)
					}
					lat, latOK = v, true
				case "lon":
					v, err := strconv.ParseFloat(a.Value, 64)
					if err != nil {
						return nil, nil, nil, fmt.Errorf("osm: node lon %q: %w", a.Value, err)
					}
					lon, lonOK = v, true
				}
			}
			if idOK && latOK && lonOK {
				nodes[id] = geo.Pt(lon, lat)
				stats.Nodes++
			}
			// Walk the node's children for POI tags.
			tags := map[string]string{}
			depth := 1
			for depth > 0 {
				tok, err := dec.Token()
				if err != nil {
					return nil, nil, nil, fmt.Errorf("osm: node %d: %w", id, err)
				}
				switch el := tok.(type) {
				case xml.StartElement:
					depth++
					if el.Name.Local == "tag" {
						var k, v string
						for _, a := range el.Attr {
							switch a.Name.Local {
							case "k":
								k = a.Value
							case "v":
								v = a.Value
							}
						}
						tags[k] = v
					}
				case xml.EndElement:
					depth--
				}
			}
			if idOK && latOK && lonOK {
				var kws []string
				for _, key := range poiTagKeys {
					if v, ok := tags[key]; ok && v != "" {
						kws = append(kws, v)
					}
				}
				if len(kws) > 0 {
					if name, ok := tags["name"]; ok && name != "" {
						kws = append(kws, name)
					}
					pb.Add(geo.Pt(lon, lat), kws)
					stats.POIs++
				}
			}
		case "way":
			w := way{}
			for _, a := range se.Attr {
				if a.Name.Local == "id" {
					v, err := strconv.ParseInt(a.Value, 10, 64)
					if err != nil {
						return nil, nil, nil, fmt.Errorf("osm: way id %q: %w", a.Value, err)
					}
					w.id = v
				}
			}
			// Walk the way's children: nd refs and tags.
			depth := 1
			for depth > 0 {
				tok, err := dec.Token()
				if err != nil {
					return nil, nil, nil, fmt.Errorf("osm: way %d: %w", w.id, err)
				}
				switch el := tok.(type) {
				case xml.StartElement:
					depth++
					switch el.Name.Local {
					case "nd":
						for _, a := range el.Attr {
							if a.Name.Local == "ref" {
								v, err := strconv.ParseInt(a.Value, 10, 64)
								if err != nil {
									return nil, nil, nil, fmt.Errorf("osm: way %d nd ref %q: %w", w.id, a.Value, err)
								}
								w.refs = append(w.refs, v)
							}
						}
					case "tag":
						var k, v string
						for _, a := range el.Attr {
							switch a.Name.Local {
							case "k":
								k = a.Value
							case "v":
								v = a.Value
							}
						}
						switch k {
						case "highway":
							w.highway = v
						case "name":
							w.name = v
						}
					}
				case xml.EndElement:
					depth--
				}
			}
			stats.Ways++
			if w.highway == "" {
				stats.SkippedNonHighway++
				continue
			}
			if len(allowed) > 0 && !allowed[w.highway] {
				stats.SkippedFiltered++
				continue
			}
			ways = append(ways, w)
		}
	}

	b := network.NewBuilder()
	for _, w := range ways {
		pts := make([]geo.Point, 0, len(w.refs))
		missing := false
		for _, ref := range w.refs {
			p, ok := nodes[ref]
			if !ok {
				missing = true
				break
			}
			pts = append(pts, p)
		}
		if missing {
			stats.SkippedDangling++
			continue
		}
		if len(pts) < minNodes {
			stats.SkippedShort++
			continue
		}
		name := w.name
		if name == "" {
			name = fmt.Sprintf("way/%d", w.id)
		}
		b.AddStreet(name, pts)
		stats.Streets++
	}
	net, err := b.Build()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("osm: building network: %w", err)
	}
	return net, pb.Build(), stats, nil
}

// Stats summarizes an import.
type Stats struct {
	Nodes             int
	POIs              int
	Ways              int
	Streets           int
	SkippedNonHighway int
	SkippedFiltered   int
	SkippedDangling   int
	SkippedShort      int
}

// String implements fmt.Stringer.
func (s *Stats) String() string {
	return fmt.Sprintf("osm: %d nodes (%d POIs), %d ways -> %d streets (skipped: %d non-highway, %d filtered, %d dangling, %d short)",
		s.Nodes, s.POIs, s.Ways, s.Streets, s.SkippedNonHighway, s.SkippedFiltered, s.SkippedDangling, s.SkippedShort)
}
