package osm

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataio"
)

const sample = `<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="test">
  <bounds minlat="51.5" minlon="-0.15" maxlat="51.52" maxlon="-0.13"/>
  <node id="1" lat="51.5150" lon="-0.1420"/>
  <node id="2" lat="51.5151" lon="-0.1410"/>
  <node id="3" lat="51.5152" lon="-0.1400"/>
  <node id="4" lat="51.5140" lon="-0.1405"/>
  <node id="5" lat="51.5160" lon="-0.1405">
    <tag k="amenity" v="cafe"/>
  </node>
  <way id="100">
    <nd ref="1"/>
    <nd ref="2"/>
    <nd ref="3"/>
    <tag k="highway" v="primary"/>
    <tag k="name" v="Oxford Street"/>
  </way>
  <way id="101">
    <nd ref="2"/>
    <nd ref="4"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="102">
    <nd ref="3"/>
    <nd ref="5"/>
    <tag k="building" v="yes"/>
  </way>
  <way id="103">
    <nd ref="1"/>
    <nd ref="999"/>
    <tag k="highway" v="primary"/>
  </way>
  <way id="104">
    <nd ref="4"/>
    <tag k="highway" v="footway"/>
  </way>
  <relation id="200">
    <member type="way" ref="100" role="outer"/>
  </relation>
</osm>`

func TestParseXMLBasic(t *testing.T) {
	net, pois, stats, err := ParseXML(strings.NewReader(sample), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 5 || stats.Ways != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	// way 100 (named), way 101 (unnamed highway) imported; 102 is a
	// building, 103 dangles, 104 has one node.
	if net.NumStreets() != 2 {
		t.Fatalf("streets = %d", net.NumStreets())
	}
	if stats.SkippedNonHighway != 1 || stats.SkippedDangling != 1 || stats.SkippedShort != 1 {
		t.Fatalf("skip counters = %+v", stats)
	}
	ox := net.StreetByName("Oxford Street")
	if ox == nil {
		t.Fatal("Oxford Street missing")
	}
	if len(ox.Segments) != 2 {
		t.Fatalf("Oxford Street segments = %d", len(ox.Segments))
	}
	// Coordinates are (lon, lat).
	if got := net.Segment(ox.Segments[0]).Geom.A; math.Abs(got.X-(-0.1420)) > 1e-12 || math.Abs(got.Y-51.5150) > 1e-12 {
		t.Fatalf("first vertex = %v", got)
	}
	if net.StreetByName("way/101") == nil {
		t.Fatal("unnamed way did not get a synthetic name")
	}
	if stats.String() == "" {
		t.Fatal("empty stats string")
	}
	// Node 5 carries an amenity tag and becomes a POI.
	if stats.POIs != 1 || pois.Len() != 1 {
		t.Fatalf("POIs = %d / %d", stats.POIs, pois.Len())
	}
	q, _ := pois.Dict().LookupAll([]string{"cafe"})
	if pois.CountRelevant(q) != 1 {
		t.Fatal("cafe POI keyword missing")
	}
}

func TestParseXMLHighwayFilter(t *testing.T) {
	net, _, stats, err := ParseXML(strings.NewReader(sample), Options{Highways: []string{"primary"}})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumStreets() != 1 {
		t.Fatalf("streets = %d", net.NumStreets())
	}
	// Both the residential way and the footway are filtered out.
	if stats.SkippedFiltered != 2 {
		t.Fatalf("filtered = %d", stats.SkippedFiltered)
	}
}

func TestParseXMLMinNodes(t *testing.T) {
	net, _, _, err := ParseXML(strings.NewReader(sample), Options{MinNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Only the 3-node Oxford Street survives.
	if net.NumStreets() != 1 || net.StreetByName("Oxford Street") == nil {
		t.Fatalf("streets = %d", net.NumStreets())
	}
}

func TestParseXMLErrors(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"truncated", `<osm><way id="1"><nd ref="1"/>`},
		{"bad node id", `<osm><node id="zz" lat="1" lon="2"/></osm>`},
		{"bad lat", `<osm><node id="1" lat="north" lon="2"/></osm>`},
		{"bad way id", `<osm><way id="abc"></way></osm>`},
		{"bad nd ref", `<osm><way id="1"><nd ref="x"/></way></osm>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := ParseXML(strings.NewReader(tc.xml), Options{}); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestParseXMLEmpty(t *testing.T) {
	net, _, stats, err := ParseXML(strings.NewReader(`<osm/>`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumStreets() != 0 || stats.Nodes != 0 {
		t.Fatalf("net=%d stats=%+v", net.NumStreets(), stats)
	}
}

func TestParseXMLIncompleteNodeIgnored(t *testing.T) {
	// A node missing lat is not indexed; the way referencing it dangles.
	src := `<osm>
	  <node id="1" lon="2"/>
	  <node id="2" lat="1" lon="2"/>
	  <way id="9"><nd ref="1"/><nd ref="2"/><tag k="highway" v="primary"/></way>
	</osm>`
	net, _, stats, err := ParseXML(strings.NewReader(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumStreets() != 0 || stats.SkippedDangling != 1 {
		t.Fatalf("net=%d stats=%+v", net.NumStreets(), stats)
	}
}

// The imported network and POIs must survive the CSV round trip and be
// queryable end-to-end (the soiosm → soiquery pipeline).
func TestOSMToCSVToQuery(t *testing.T) {
	net, pois, _, err := ParseXML(strings.NewReader(sample), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var nb, pb bytes.Buffer
	if err := dataio.WriteNetwork(&nb, net); err != nil {
		t.Fatal(err)
	}
	if err := dataio.WritePOIs(&pb, pois); err != nil {
		t.Fatal(err)
	}
	net2, err := dataio.ReadNetwork(&nb)
	if err != nil {
		t.Fatal(err)
	}
	pois2, err := dataio.ReadPOIs(&pb, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.NewIndex(net2, pois2, core.IndexConfig{CellSize: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ix.SOI(core.Query{Keywords: []string{"cafe"}, K: 3, Epsilon: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no street found for the cafe POI")
	}
}
