package experiments

import (
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/lcmsr"
	"repro/internal/network"
)

// LCMSRResult contrasts the k-SOI ranking with the length-constrained
// maximum-sum region query of the paper's reference [7], under a length
// budget equal to the total length of the k-SOI answer streets. The
// paper's Section 1 argues that [7] returns one connected blob that (a)
// cannot surface several disjoint interesting sites, and (b) includes
// low-value streets purely for connectivity; this experiment quantifies
// both effects on the planted cities.
type LCMSRResult struct {
	City string
	// Budget is the shared length budget (degrees).
	Budget float64

	// SOIStreets / RegionStreets are the street names of each answer.
	SOIStreets    []string
	RegionStreets []string
	// SOISites / RegionSites are the distinct planted shopping sites
	// covered by each answer.
	SOISites    int
	RegionSites int
	// RegionFillers counts region streets that are neither planted nor in
	// the SOI answer — connectivity filler.
	RegionFillers int
}

// LCMSRCompare runs both methods on the "shop" query.
func LCMSRCompare(c *City, k int) (LCMSRResult, error) {
	out := LCMSRResult{City: c.Name()}
	q := core.Query{Keywords: []string{"shop"}, K: k, Epsilon: Epsilon}
	res, _, err := c.Index.SOI(q)
	if err != nil {
		return out, err
	}
	net := c.Dataset.Network
	for _, r := range res {
		out.SOIStreets = append(out.SOIStreets, r.Name)
		out.Budget += net.Street(r.Street).Length()
	}

	// Vertex scores with the grid as the snap prefilter: candidate
	// segments are those within ε of the POI's surroundings.
	query, _ := c.Dataset.Dict.LookupAll(q.Keywords)
	cellSegs := c.Index.CellSegments(Epsilon)
	g := c.Index.Grid()
	scores := lcmsr.VertexScoresWith(net, c.Dataset.POIs, query, func(loc geo.Point) []network.SegmentID {
		return cellSegs[g.CellIndex(loc)]
	})
	st := net.Stats()
	snap := 0.0
	if st.NumSegments > 0 {
		snap = 1.5 * st.TotalLen / float64(st.NumSegments)
	}
	region, err := lcmsr.Query(net, scores, out.Budget, lcmsr.Options{SnapRadius: snap})
	if err != nil {
		return out, err
	}
	for _, sid := range region.Streets(net) {
		out.RegionStreets = append(out.RegionStreets, net.Street(sid).Name)
	}
	sort.Strings(out.RegionStreets)

	siteOf := map[string]int{}
	for rank, site := range c.Dataset.Profile.ShopSites {
		for _, s := range site.Streets {
			siteOf[s] = rank
		}
	}
	countSites := func(streets []string) int {
		sites := map[int]bool{}
		for _, s := range streets {
			if r, ok := siteOf[s]; ok {
				sites[r] = true
			}
		}
		return len(sites)
	}
	out.SOISites = countSites(out.SOIStreets)
	out.RegionSites = countSites(out.RegionStreets)

	inSOI := map[string]bool{}
	for _, s := range out.SOIStreets {
		inSOI[s] = true
	}
	for _, s := range out.RegionStreets {
		if _, planted := siteOf[s]; !planted && !inSOI[s] {
			out.RegionFillers++
		}
	}
	return out, nil
}

// PrintLCMSR renders the comparison.
func PrintLCMSR(w io.Writer, r LCMSRResult) {
	line(w, "k-SOI vs LCMSR [7] — %s, \"shop\", shared length budget %.4f°", r.City, r.Budget)
	line(w, "  k-SOI answer: %d streets covering %d planted sites", len(r.SOIStreets), r.SOISites)
	for i, s := range r.SOIStreets {
		line(w, "    %2d. %s", i+1, s)
	}
	line(w, "  LCMSR region: %d streets covering %d planted site(s), %d connectivity fillers",
		len(r.RegionStreets), r.RegionSites, r.RegionFillers)
	for _, s := range r.RegionStreets {
		line(w, "        %s", s)
	}
	line(w, "  (the paper's Section 1 critique: the connected region concentrates on")
	line(w, "   one site and pads with filler streets, while k-SOI surfaces disjoint sites)")
}
