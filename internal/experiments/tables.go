package experiments

import (
	"io"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/stats"
)

// Table1Row is one dataset statistics row (paper Table 1).
type Table1Row struct {
	Dataset     string
	NumSegments int
	MinSegLenM  float64
	MaxSegLenM  float64
	NumPOIs     int
}

// metersPerDeg converts coordinate degrees to the paper's meters.
const metersPerDeg = 55 / 0.0005

// Table1 computes the dataset statistics of the paper's Table 1.
func Table1(cities []*City) []Table1Row {
	rows := make([]Table1Row, 0, len(cities))
	for _, c := range cities {
		st := c.Dataset.Network.Stats()
		rows = append(rows, Table1Row{
			Dataset:     c.Name(),
			NumSegments: st.NumSegments,
			MinSegLenM:  st.MinSegmentLen * metersPerDeg,
			MaxSegLenM:  st.MaxSegmentLen * metersPerDeg,
			NumPOIs:     c.Dataset.POIs.Len(),
		})
	}
	return rows
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	line(w, "Table 1: Datasets used in the evaluation.")
	line(w, "%-10s %12s %16s %16s %12s", "Dataset", "Num of segm.", "Min segm. len(m)", "Max segm. len(m)", "Num of POIs")
	for _, r := range rows {
		line(w, "%-10s %12d %16.2f %16.2f %12d", r.Dataset, r.NumSegments, r.MinSegLenM, r.MaxSegLenM, r.NumPOIs)
	}
}

// Table2Result is the shopping-streets effectiveness study (paper Table 2
// plus the Figure 2 site classification).
type Table2Result struct {
	City    string
	TopK    []string    // ranked SOI result
	Sources [2][]string // the two authoritative lists
	Recall  [2]float64  // recall@k against each source
	// NDCG grades the ranking against the planted ground truth, using
	// each street's planted site density as its relevance grade.
	NDCG float64
	// Tau is Kendall's rank correlation between the answer and the
	// planted density ranking over their common streets.
	Tau float64
	// SiteOf classifies every street appearing anywhere: planted site
	// rank (0 = densest) or -1 for an unplanted street.
	SiteOf map[string]int
}

// Table2 runs the paper's Table 2 scenario on a city: top-k streets for
// the "shop" keyword, compared against the two planted source lists.
func Table2(c *City, k int) (Table2Result, error) {
	res, _, err := c.Index.SOI(core.Query{Keywords: []string{"shop"}, K: k, Epsilon: Epsilon})
	if err != nil {
		return Table2Result{}, err
	}
	out := Table2Result{
		City:    c.Name(),
		Sources: c.Dataset.Truth.SourceLists,
		SiteOf:  map[string]int{},
	}
	for _, r := range res {
		out.TopK = append(out.TopK, r.Name)
	}
	for i, src := range out.Sources {
		out.Recall[i] = stats.RecallAtK(out.TopK, src, k)
	}
	grades := map[string]float64{}
	for rank, site := range c.Dataset.Profile.ShopSites {
		for _, s := range site.Streets {
			out.SiteOf[s] = rank
			grades[s] = site.Density
		}
	}
	out.NDCG = stats.NDCGAtK(out.TopK, grades, k)
	out.Tau = stats.KendallTau(out.TopK, c.Dataset.Truth.ShoppingStreets)
	return out, nil
}

// PrintTable2 renders the Table 2 comparison plus a Figure-2-style
// classification of each returned street.
func PrintTable2(w io.Writer, r Table2Result) {
	line(w, "Table 2: Comparison of identified top SOIs for \"shop\" in %s.", r.City)
	line(w, "%-4s %-32s %-28s %-28s", "", "Top SOIs", "Source #1", "Source #2")
	n := len(r.TopK)
	if len(r.Sources[0]) > n {
		n = len(r.Sources[0])
	}
	if len(r.Sources[1]) > n {
		n = len(r.Sources[1])
	}
	at := func(s []string, i int) string {
		if i < len(s) {
			return s[i]
		}
		return ""
	}
	for i := 0; i < n; i++ {
		line(w, "%-4d %-32s %-28s %-28s", i+1, at(r.TopK, i), at(r.Sources[0], i), at(r.Sources[1], i))
	}
	line(w, "recall@%d vs Source #1: %.2f   vs Source #2: %.2f   nDCG@%d vs planted: %.2f   Kendall τ: %.2f",
		len(r.TopK), r.Recall[0], r.Recall[1], len(r.TopK), r.NDCG, r.Tau)
	line(w, "")
	line(w, "Figure 2 analogue: classification of returned streets")
	inSource := func(s string) bool {
		for _, src := range r.Sources {
			for _, x := range src {
				if x == s {
					return true
				}
			}
		}
		return false
	}
	for _, s := range r.TopK {
		class := "false positive (unplanted)"
		if site, ok := r.SiteOf[s]; ok {
			if inSource(s) {
				class = "true positive"
			} else {
				class = "valid adjacent street" // planted but not in a source list
			}
			line(w, "  %-32s site %d, %s", s, site+1, class)
			continue
		}
		line(w, "  %-32s %s", s, class)
	}
	for _, src := range r.Sources {
		for _, s := range src {
			found := false
			for _, x := range r.TopK {
				if x == s {
					found = true
				}
			}
			if !found {
				line(w, "  %-32s false negative (in a source, below rank %d)", s, len(r.TopK))
			}
		}
	}
}

// Table3Row is one method's normalized objective score per city.
type Table3Row struct {
	Method string
	Scores []float64 // parallel to the city list; normalized to ST_Rel+Div
}

// Table3 scores the nine selection criteria on each city's photo street
// with the balanced objective (λ = w = 0.5), normalized by ST_Rel+Div's
// score, as the paper's Table 3 reports.
func Table3(cities []*City, k int) ([]Table3Row, error) {
	base := diversify.Params{K: k, Lambda: 0.5, W: 0.5, Rho: Rho}
	rows := make([]Table3Row, len(diversify.Variants))
	for i, v := range diversify.Variants {
		rows[i] = Table3Row{Method: v.String(), Scores: make([]float64, len(cities))}
	}
	for ci, c := range cities {
		ctx, _, err := descriptionContext(c)
		if err != nil {
			return nil, err
		}
		raw := make([]float64, len(rows))
		var ref float64
		for vi, v := range diversify.Variants {
			res, err := ctx.RunVariant(v, base)
			if err != nil {
				return nil, err
			}
			raw[vi] = res.Objective
			if v == diversify.STRelDivVariant {
				ref = res.Objective
			}
		}
		for vi := range rows {
			if ref > 0 {
				rows[vi].Scores[ci] = raw[vi] / ref
			}
		}
	}
	return rows, nil
}

// PrintTable3 renders Table 3.
func PrintTable3(w io.Writer, cities []*City, rows []Table3Row) {
	line(w, "Table 3: Objective scores (Eq. 2 after normalization), k=3 photos, λ=w=0.5.")
	header := "%-12s"
	args := []interface{}{"Method"}
	for _, c := range cities {
		header += " %10s"
		args = append(args, c.Name())
	}
	line(w, header, args...)
	for _, r := range rows {
		vals := []interface{}{r.Method}
		f := "%-12s"
		for _, s := range r.Scores {
			f += " %10.3f"
			vals = append(vals, s)
		}
		line(w, f, vals...)
	}
}

// Table4Row is one city's relevant-POI counts per keyword prefix.
type Table4Row struct {
	Dataset string
	Counts  []int // counts for |Ψ| = 1..len(KeywordProgression)
}

// Table4 counts the POIs relevant to each prefix of the paper's keyword
// progression (paper Table 4).
func Table4(cities []*City) []Table4Row {
	rows := make([]Table4Row, 0, len(cities))
	for _, c := range cities {
		row := Table4Row{Dataset: c.Name()}
		for n := 1; n <= len(KeywordProgression); n++ {
			q, _ := c.Dataset.Dict.LookupAll(KeywordProgression[:n])
			row.Counts = append(row.Counts, c.Dataset.POIs.CountRelevant(q))
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintTable4 renders Table 4.
func PrintTable4(w io.Writer, rows []Table4Row) {
	line(w, "Table 4: Relevant POIs according to |Ψ|.")
	line(w, "%-10s %10s %10s %10s %10s", "Dataset", "|Ψ|=1", "|Ψ|=2", "|Ψ|=3", "|Ψ|=4")
	for _, r := range rows {
		line(w, "%-10s %10d %10d %10d %10d", r.Dataset, r.Counts[0], r.Counts[1], r.Counts[2], r.Counts[3])
	}
}
