package experiments

import (
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/diversify"
)

// Fig4Point is one bar of the paper's Figure 4: SOI (with its phase
// breakdown) versus BL at one parameter setting.
type Fig4Point struct {
	X         int // the varied parameter value (k or |Ψ|)
	SOITotal  time.Duration
	SOIBuild  time.Duration
	SOIFilter time.Duration
	SOIRefine time.Duration
	BLTotal   time.Duration
	Speedup   float64
	SeenFrac  float64 // fraction of segments SOI saw
}

// Fig4Panel is one of Figure 4's six panels.
type Fig4Panel struct {
	City    string
	Varying string // "k" or "|Psi|"
	Points  []Fig4Point
}

// Figure4Ks are the k values swept in the varying-k panels.
var Figure4Ks = []int{10, 25, 50, 100, 200}

// Figure4DefaultK is the fixed k of the varying-|Ψ| panels (the paper's
// default k = 50).
const Figure4DefaultK = 50

// Figure4DefaultPsi is the fixed |Ψ| of the varying-k panels.
const Figure4DefaultPsi = 3

// Figure4 reproduces the paper's Figure 4 for one city: SOI vs BL total
// time, varying k at |Ψ|=3 and varying |Ψ| at k=50.
func Figure4(c *City, trials int) ([]Fig4Panel, error) {
	varyK := Fig4Panel{City: c.Name(), Varying: "k"}
	for _, k := range Figure4Ks {
		pt, err := fig4Point(c, k, KeywordProgression[:Figure4DefaultPsi], trials)
		if err != nil {
			return nil, err
		}
		pt.X = k
		varyK.Points = append(varyK.Points, pt)
	}
	varyPsi := Fig4Panel{City: c.Name(), Varying: "|Psi|"}
	for n := 1; n <= len(KeywordProgression); n++ {
		pt, err := fig4Point(c, Figure4DefaultK, KeywordProgression[:n], trials)
		if err != nil {
			return nil, err
		}
		pt.X = n
		varyPsi.Points = append(varyPsi.Points, pt)
	}
	return []Fig4Panel{varyK, varyPsi}, nil
}

func fig4Point(c *City, k int, keywords []string, trials int) (Fig4Point, error) {
	if trials < 1 {
		trials = 1
	}
	q := core.Query{Keywords: keywords, K: k, Epsilon: Epsilon}
	// Per-trial phase stats; the median trial (by total phase time) is
	// reported, which keeps the phase breakdown consistent with the total
	// and is robust against GC pauses hitting one trial.
	soiStats := make([]core.Stats, trials)
	for i := range soiStats {
		_, s, err := c.Index.SOI(q)
		if err != nil {
			return Fig4Point{}, err
		}
		soiStats[i] = s
	}
	sort.Slice(soiStats, func(i, j int) bool { return soiStats[i].Total() < soiStats[j].Total() })
	stats := soiStats[trials/2]

	blTotals := make([]time.Duration, trials)
	for i := range blTotals {
		_, s, err := c.Index.Baseline(q)
		if err != nil {
			return Fig4Point{}, err
		}
		blTotals[i] = s.Total()
	}
	sort.Slice(blTotals, func(i, j int) bool { return blTotals[i] < blTotals[j] })
	blT := blTotals[trials/2]

	pt := Fig4Point{
		SOITotal:  stats.Total(),
		SOIBuild:  stats.BuildListsTime,
		SOIFilter: stats.FilterTime,
		SOIRefine: stats.RefineTime,
		BLTotal:   blT,
	}
	if pt.SOITotal > 0 {
		pt.Speedup = float64(blT) / float64(pt.SOITotal)
	}
	if stats.TotalSegments > 0 {
		pt.SeenFrac = float64(stats.SegmentsSeen) / float64(stats.TotalSegments)
	}
	return pt, nil
}

// PrintFigure4 renders one Figure 4 panel as a time series table.
func PrintFigure4(w io.Writer, p Fig4Panel) {
	line(w, "Figure 4: %s — varying %s (SOI phases vs BL, times in ms)", p.City, p.Varying)
	line(w, "%6s %10s %10s %10s %10s %10s %9s %6s",
		p.Varying, "SOI", "build", "filter", "refine", "BL", "speedup", "seen")
	for _, pt := range p.Points {
		line(w, "%6d %10s %10s %10s %10s %10s %8.2fx %5.0f%%",
			pt.X, ms(pt.SOITotal), ms(pt.SOIBuild), ms(pt.SOIFilter), ms(pt.SOIRefine),
			ms(pt.BLTotal), pt.Speedup, pt.SeenFrac*100)
	}
}

// Fig5Point is one λ setting of the paper's Figure 5 trade-off curve.
type Fig5Point struct {
	Lambda    float64
	Relevance float64 // normalized rel(Rk)
	Diversity float64 // normalized div(Rk)
}

// Fig5Curve is one city's relevance–diversity trade-off curve.
type Fig5Curve struct {
	City   string
	Points []Fig5Point
}

// Figure5Lambdas are the λ values of the paper's Figure 5.
var Figure5Lambdas = []float64{0, 0.25, 0.5, 0.75, 1}

// Figure5 sweeps λ on each city's photo street and reports the relevance
// and diversity of the constructed k-photo summary, normalized by the
// maximum attained across the sweep (the paper plots normalized units).
func Figure5(cities []*City, k int) ([]Fig5Curve, error) {
	var out []Fig5Curve
	for _, c := range cities {
		ctx, _, err := descriptionContext(c)
		if err != nil {
			return nil, err
		}
		curve := Fig5Curve{City: c.Name()}
		var maxRel, maxDiv float64
		rels := make([]float64, len(Figure5Lambdas))
		divs := make([]float64, len(Figure5Lambdas))
		for i, l := range Figure5Lambdas {
			res, err := ctx.STRelDiv(diversify.Params{K: k, Lambda: l, W: 0.5, Rho: Rho})
			if err != nil {
				return nil, err
			}
			rels[i] = ctx.RelScore(res.Selected, 0.5)
			divs[i] = ctx.DivScore(res.Selected, 0.5)
			if rels[i] > maxRel {
				maxRel = rels[i]
			}
			if divs[i] > maxDiv {
				maxDiv = divs[i]
			}
		}
		for i, l := range Figure5Lambdas {
			pt := Fig5Point{Lambda: l}
			if maxRel > 0 {
				pt.Relevance = rels[i] / maxRel
			}
			if maxDiv > 0 {
				pt.Diversity = divs[i] / maxDiv
			}
			curve.Points = append(curve.Points, pt)
		}
		out = append(out, curve)
	}
	return out, nil
}

// PrintFigure5 renders the trade-off curves.
func PrintFigure5(w io.Writer, curves []Fig5Curve) {
	line(w, "Figure 5: Trade-off between relevance and diversity (w = 0.5).")
	line(w, "%-10s %8s %12s %12s", "City", "lambda", "relevance", "diversity")
	for _, c := range curves {
		for _, p := range c.Points {
			line(w, "%-10s %8.2f %12.3f %12.3f", c.City, p.Lambda, p.Relevance, p.Diversity)
		}
	}
}

// Fig6Point is one parameter setting of the paper's Figure 6.
type Fig6Point struct {
	X        float64 // the varied parameter (k, λ, or w)
	STTotal  time.Duration
	BLTotal  time.Duration
	Speedup  float64
	Photos   int // photos evaluated by ST_Rel+Div
	Baseline int // photos evaluated by BL
}

// Fig6Panel is one of Figure 6's nine panels.
type Fig6Panel struct {
	City    string
	Varying string // "k", "lambda", or "w"
	Points  []Fig6Point
}

// Figure 6 parameter sweeps (paper defaults k=20, λ=0.5, w=0.5).
var (
	Figure6Ks      = []int{10, 20, 30, 40, 50}
	Figure6Lambdas = []float64{0, 0.25, 0.5, 0.75, 1}
	Figure6Ws      = []float64{0, 0.25, 0.5, 0.75, 1}
)

// Figure6DefaultK is the default summary size of Figure 6.
const Figure6DefaultK = 20

// Figure6 reproduces the paper's Figure 6 for one city: ST_Rel+Div vs BL
// on the photo street, varying k, λ and w.
func Figure6(c *City, trials int) ([]Fig6Panel, error) {
	ctx, _, err := descriptionContext(c)
	if err != nil {
		return nil, err
	}
	panels := []Fig6Panel{
		{City: c.Name(), Varying: "k"},
		{City: c.Name(), Varying: "lambda"},
		{City: c.Name(), Varying: "w"},
	}
	for _, k := range Figure6Ks {
		pt, err := fig6Point(ctx, diversify.Params{K: k, Lambda: 0.5, W: 0.5, Rho: Rho}, trials)
		if err != nil {
			return nil, err
		}
		pt.X = float64(k)
		panels[0].Points = append(panels[0].Points, pt)
	}
	for _, l := range Figure6Lambdas {
		pt, err := fig6Point(ctx, diversify.Params{K: Figure6DefaultK, Lambda: l, W: 0.5, Rho: Rho}, trials)
		if err != nil {
			return nil, err
		}
		pt.X = l
		panels[1].Points = append(panels[1].Points, pt)
	}
	for _, w := range Figure6Ws {
		pt, err := fig6Point(ctx, diversify.Params{K: Figure6DefaultK, Lambda: 0.5, W: w, Rho: Rho}, trials)
		if err != nil {
			return nil, err
		}
		pt.X = w
		panels[2].Points = append(panels[2].Points, pt)
	}
	return panels, nil
}

func fig6Point(ctx *diversify.Context, p diversify.Params, trials int) (Fig6Point, error) {
	var (
		stRes, blRes diversify.Result
		lastErr      error
	)
	stT := medianOf(trials, func() {
		r, err := ctx.STRelDiv(p)
		if err != nil {
			lastErr = err
		}
		stRes = r
	})
	if lastErr != nil {
		return Fig6Point{}, lastErr
	}
	blT := medianOf(trials, func() {
		r, err := ctx.Baseline(p)
		if err != nil {
			lastErr = err
		}
		blRes = r
	})
	if lastErr != nil {
		return Fig6Point{}, lastErr
	}
	pt := Fig6Point{
		STTotal:  stT,
		BLTotal:  blT,
		Photos:   stRes.Stats.PhotosEvaluated,
		Baseline: blRes.Stats.PhotosEvaluated,
	}
	if stT > 0 {
		pt.Speedup = float64(blT) / float64(stT)
	}
	return pt, nil
}

// PrintFigure6 renders one Figure 6 panel.
func PrintFigure6(w io.Writer, p Fig6Panel) {
	line(w, "Figure 6: %s — varying %s (ST_Rel+Div vs BL, times in ms)", p.City, p.Varying)
	line(w, "%8s %12s %12s %9s %12s %12s", p.Varying, "ST_Rel+Div", "BL", "speedup", "ST photos", "BL photos")
	for _, pt := range p.Points {
		line(w, "%8.2f %12s %12s %8.2fx %12d %12d",
			pt.X, ms(pt.STTotal), ms(pt.BLTotal), pt.Speedup, pt.Photos, pt.Baseline)
	}
}
