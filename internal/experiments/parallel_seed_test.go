package experiments

import (
	"fmt"
	"testing"
)

func TestParallelWorkloadSeeded(t *testing.T) {
	render := func(seed int64) string {
		return fmt.Sprint(ParallelWorkloadSeeded(40, seed))
	}

	// Seed 0 is the canonical enumeration order.
	if render(0) != fmt.Sprint(ParallelWorkload(40)) {
		t.Fatal("seed 0 does not preserve the canonical workload order")
	}
	// The same seed reproduces the same order; different seeds differ.
	if render(7) != render(7) {
		t.Fatal("same seed produced different orders")
	}
	if render(7) == render(0) {
		t.Fatal("seed 7 left the workload in enumeration order")
	}
	if render(7) == render(8) {
		t.Fatal("seeds 7 and 8 produced the same order")
	}

	// Shuffling permutes, never drops or duplicates: the multisets match.
	count := func(seed int64) map[string]int {
		m := map[string]int{}
		for _, q := range ParallelWorkloadSeeded(40, seed) {
			m[fmt.Sprintf("%v|%d|%g", q.Keywords, q.K, q.Epsilon)]++
		}
		return m
	}
	a, b := count(0), count(7)
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("shuffle changed multiplicity of %s: %d vs %d", k, v, b[k])
		}
	}
	if len(a) != len(b) {
		t.Fatalf("shuffle changed distinct query count: %d vs %d", len(a), len(b))
	}
}
