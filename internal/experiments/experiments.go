// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 5) over the synthetic cities of
// internal/datagen. Each experiment is a runner that returns a structured
// result plus a printer that renders it in the shape of the paper's
// artifact; cmd/soibench and the repository benchmarks drive them.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/diversify"
	"repro/internal/network"
)

// Epsilon is the paper's distance threshold: 0.0005° ≈ 55 m.
const Epsilon = 0.0005

// Rho is the paper's spatial-relevance radius: 0.0001°.
const Rho = 0.0001

// KeywordProgression is the paper's Table 4 keyword prefix set.
var KeywordProgression = []string{"religion", "education", "food", "services"}

// City bundles a generated dataset with its warmed k-SOI index.
type City struct {
	Dataset *datagen.Dataset
	Index   *core.Index
}

// Name returns the city name.
func (c *City) Name() string { return c.Dataset.Profile.Name }

// LoadCity generates the profile at the given scale, builds the index and
// warms the ε-dependent structures.
func LoadCity(p datagen.Profile, scale float64) (*City, error) {
	ds, err := datagen.Generate(datagen.Scale(p, scale))
	if err != nil {
		return nil, err
	}
	ix, err := core.NewIndex(ds.Network, ds.POIs, core.IndexConfig{CellSize: Epsilon})
	if err != nil {
		return nil, err
	}
	ix.Warm(Epsilon)
	return &City{Dataset: ds, Index: ix}, nil
}

// LoadCities loads the three paper cities at the given scale.
func LoadCities(scale float64) ([]*City, error) {
	var out []*City
	for _, p := range datagen.Profiles() {
		c, err := LoadCity(p, scale)
		if err != nil {
			return nil, fmt.Errorf("experiments: loading %s: %w", p.Name, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// LoadCitiesNamed loads the named subset of the paper cities (case
// insensitive, surrounding whitespace ignored) at the given scale.
func LoadCitiesNamed(names []string, scale float64) ([]*City, error) {
	profiles := map[string]datagen.Profile{}
	for _, p := range datagen.Profiles() {
		profiles[strings.ToLower(p.Name)] = p
	}
	var out []*City
	for _, raw := range names {
		name := strings.ToLower(strings.TrimSpace(raw))
		if name == "" {
			continue
		}
		p, ok := profiles[name]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown city %q", raw)
		}
		c, err := LoadCity(p, scale)
		if err != nil {
			return nil, fmt.Errorf("experiments: loading %s: %w", p.Name, err)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no cities selected")
	}
	return out, nil
}

// medianOf repeats f trials times and returns the median duration.
func medianOf(trials int, f func()) time.Duration {
	if trials < 1 {
		trials = 1
	}
	ds := make([]time.Duration, trials)
	for i := range ds {
		start := time.Now()
		f()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[trials/2]
}

// ms renders a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// DescriptionContext builds the diversification context for the city's
// photo street; the benchmarks use it to time single summary queries.
func DescriptionContext(c *City) (*diversify.Context, error) {
	ctx, _, err := descriptionContext(c)
	return ctx, err
}

// descriptionContext builds the diversification context for the city's
// designated photo street (the densest planted street, the analogue of
// the paper's "top SOI" whose photos drive Section 5's description
// experiments).
func descriptionContext(c *City) (*diversify.Context, *network.Street, error) {
	st := c.Dataset.Network.StreetByName(c.Dataset.Truth.PhotoStreet)
	if st == nil {
		return nil, nil, fmt.Errorf("experiments: photo street %q missing in %s",
			c.Dataset.Truth.PhotoStreet, c.Name())
	}
	rs, maxD := diversify.ExtractStreetPhotos(c.Dataset.Network, st.ID, c.Dataset.Photos, Epsilon)
	freq := diversify.FreqFromPhotos(c.Dataset.Dict, rs)
	ctx, err := diversify.NewContext(rs, freq, maxD, Rho)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s photo street context: %w", c.Name(), err)
	}
	return ctx, st, nil
}

// line writes one formatted line, ignoring write errors (experiment
// output goes to a terminal or a buffer).
func line(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format+"\n", args...)
}
