package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
)

// smallCities loads all three profiles at a tiny scale once per test run.
func smallCities(t *testing.T) []*City {
	t.Helper()
	cities, err := LoadCities(0.01)
	if err != nil {
		t.Fatal(err)
	}
	return cities
}

// smallCity loads one city suitable for description experiments: the
// Small profile keeps a meaningful photo street at low cost.
func smallCity(t *testing.T) *City {
	t.Helper()
	c, err := LoadCity(datagen.Small(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMedianOf(t *testing.T) {
	n := 0
	d := medianOf(5, func() { n++ })
	if n != 5 {
		t.Fatalf("f called %d times", n)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
	if medianOf(0, func() {}) < 0 {
		t.Fatal("trials<1 must still run once")
	}
}

func TestMs(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.50" {
		t.Fatalf("ms = %q", got)
	}
}

func TestTable1(t *testing.T) {
	cities := smallCities(t)
	rows := Table1(cities)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.NumSegments <= 0 || r.NumPOIs <= 0 {
			t.Errorf("row %d empty: %+v", i, r)
		}
		if r.MinSegLenM <= 0 || r.MaxSegLenM <= r.MinSegLenM {
			t.Errorf("row %d length stats: %+v", i, r)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "London") {
		t.Error("printout missing London")
	}
}

func TestTable2(t *testing.T) {
	c := smallCity(t)
	res, err := Table2(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 {
		t.Fatal("no top streets")
	}
	for i, r := range res.Recall {
		if r < 0 || r > 1 {
			t.Errorf("recall[%d] = %v", i, r)
		}
	}
	// On the planted data most of each source list should be recovered.
	if res.Recall[0] < 0.4 && res.Recall[1] < 0.4 {
		t.Errorf("both recalls low: %v", res.Recall)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "recall@") || !strings.Contains(out, "Figure 2") {
		t.Errorf("printout incomplete:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	c := smallCity(t)
	rows, err := Table3([]*City{c}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 methods", len(rows))
	}
	var stScore float64
	for _, r := range rows {
		if len(r.Scores) != 1 {
			t.Fatalf("scores = %v", r.Scores)
		}
		if r.Method == "ST_Rel+Div" {
			stScore = r.Scores[0]
		}
	}
	if stScore != 1.0 {
		t.Fatalf("ST_Rel+Div normalized score = %v, want 1", stScore)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, []*City{c}, rows)
	if !strings.Contains(buf.String(), "S_Rel") {
		t.Error("printout missing methods")
	}
}

func TestTable4(t *testing.T) {
	cities := smallCities(t)
	rows := Table4(cities)
	for _, r := range rows {
		if len(r.Counts) != 4 {
			t.Fatalf("counts = %v", r.Counts)
		}
		// Counts are cumulative over the keyword prefix: non-decreasing.
		for i := 1; i < len(r.Counts); i++ {
			if r.Counts[i] < r.Counts[i-1] {
				t.Errorf("%s: counts not monotone: %v", r.Dataset, r.Counts)
			}
		}
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "|Ψ|=4") {
		t.Error("printout missing header")
	}
}

func TestFigure4(t *testing.T) {
	c := smallCity(t)
	panels, err := Figure4(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("panels = %d", len(panels))
	}
	if len(panels[0].Points) != len(Figure4Ks) {
		t.Fatalf("k panel points = %d", len(panels[0].Points))
	}
	if len(panels[1].Points) != len(KeywordProgression) {
		t.Fatalf("psi panel points = %d", len(panels[1].Points))
	}
	for _, p := range panels {
		for _, pt := range p.Points {
			if pt.SOITotal <= 0 || pt.BLTotal <= 0 {
				t.Errorf("%s x=%d: zero time", p.Varying, pt.X)
			}
			if pt.SeenFrac < 0 || pt.SeenFrac > 1 {
				t.Errorf("seen fraction %v", pt.SeenFrac)
			}
		}
	}
	var buf bytes.Buffer
	PrintFigure4(&buf, panels[0])
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("printout missing speedup column")
	}
}

func TestFigure5(t *testing.T) {
	c := smallCity(t)
	curves, err := Figure5([]*City{c}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 1 || len(curves[0].Points) != len(Figure5Lambdas) {
		t.Fatalf("curves = %+v", curves)
	}
	pts := curves[0].Points
	// λ=0 maximizes relevance; λ=1 maximizes diversity (normalized to 1).
	if pts[0].Relevance != 1 {
		t.Errorf("rel at λ=0 = %v, want 1 (max)", pts[0].Relevance)
	}
	if pts[len(pts)-1].Diversity != 1 {
		t.Errorf("div at λ=1 = %v, want 1 (max)", pts[len(pts)-1].Diversity)
	}
	// Diversity should not decrease as λ grows (greedy is not perfectly
	// monotone, so allow small slack).
	for i := 1; i < len(pts); i++ {
		if pts[i].Diversity < pts[i-1].Diversity-0.2 {
			t.Errorf("diversity dropped sharply at λ=%v: %v -> %v",
				pts[i].Lambda, pts[i-1].Diversity, pts[i].Diversity)
		}
	}
	var buf bytes.Buffer
	PrintFigure5(&buf, curves)
	if !strings.Contains(buf.String(), "lambda") {
		t.Error("printout missing lambda column")
	}
}

func TestFigure6(t *testing.T) {
	c := smallCity(t)
	panels, err := Figure6(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
	wantLens := []int{len(Figure6Ks), len(Figure6Lambdas), len(Figure6Ws)}
	for i, p := range panels {
		if len(p.Points) != wantLens[i] {
			t.Fatalf("panel %s points = %d", p.Varying, len(p.Points))
		}
		for _, pt := range p.Points {
			if pt.STTotal <= 0 || pt.BLTotal <= 0 {
				t.Errorf("%s x=%v: zero time", p.Varying, pt.X)
			}
			if pt.Photos <= 0 || pt.Baseline <= 0 {
				t.Errorf("%s x=%v: zero work counters", p.Varying, pt.X)
			}
		}
	}
	var buf bytes.Buffer
	PrintFigure6(&buf, panels[0])
	if !strings.Contains(buf.String(), "ST_Rel+Div") {
		t.Error("printout missing method")
	}
}

func TestDescriptionContext(t *testing.T) {
	c := smallCity(t)
	ctx, st, err := descriptionContext(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != c.Dataset.Truth.PhotoStreet {
		t.Errorf("street = %q", st.Name)
	}
	if ctx.Len() < 10 {
		t.Errorf("photo street context has only %d photos", ctx.Len())
	}
}

func TestLoadCitiesPropagatesErrors(t *testing.T) {
	bad := datagen.Small(1)
	bad.NumPOIs = -1
	if _, err := LoadCity(bad, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestAblationStrategy(t *testing.T) {
	c := smallCity(t)
	rows, err := AblationStrategy(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(KeywordProgression) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CostAware <= 0 || r.RoundRobin <= 0 {
			t.Errorf("|Psi|=%d: zero times", r.Psi)
		}
		if r.SeenCostAware <= 0 || r.SeenCostAware > 1 || r.SeenRoundRobin <= 0 || r.SeenRoundRobin > 1 {
			t.Errorf("|Psi|=%d: seen fractions %v %v", r.Psi, r.SeenCostAware, r.SeenRoundRobin)
		}
	}
	var buf bytes.Buffer
	PrintAblationStrategy(&buf, rows)
	if !strings.Contains(buf.String(), "round-robin") {
		t.Error("printout incomplete")
	}
	PrintAblationStrategy(&buf, nil) // no-op on empty input
}

func TestAblationAggregate(t *testing.T) {
	c := smallCity(t)
	rows, err := AblationAggregate(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Overlap != 1 {
		t.Fatalf("max-segment overlap with itself = %v", rows[0].Overlap)
	}
	for _, r := range rows {
		if r.Overlap < 0 || r.Overlap > 1 {
			t.Errorf("%v overlap = %v", r.Aggregate, r.Overlap)
		}
		if r.TopStreet == "" {
			t.Errorf("%v has no top street", r.Aggregate)
		}
	}
	var buf bytes.Buffer
	PrintAblationAggregate(&buf, rows)
	if !strings.Contains(buf.String(), "max-segment") {
		t.Error("printout incomplete")
	}
}

func TestAblationCellSize(t *testing.T) {
	c := smallCity(t)
	rows, err := AblationCellSize(c, []float64{Epsilon, 2 * Epsilon}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cells <= 0 || r.SOITime <= 0 || r.BLTime <= 0 {
			t.Errorf("row %+v has zero fields", r)
		}
	}
	// Larger cells produce fewer non-empty cells.
	if rows[1].Cells >= rows[0].Cells {
		t.Errorf("cell counts not decreasing: %d then %d", rows[0].Cells, rows[1].Cells)
	}
	var buf bytes.Buffer
	PrintAblationCellSize(&buf, rows)
	if !strings.Contains(buf.String(), "cells") {
		t.Error("printout incomplete")
	}
}

func TestWeightedTable2(t *testing.T) {
	c := smallCity(t)
	res, err := WeightedTable2(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnweightedTopK) == 0 || len(res.WeightedTopK) == 0 {
		t.Fatal("empty rankings")
	}
	for i := range res.WeightedRecall {
		if res.WeightedRecall[i] < res.UnweightedRecall[i]-0.21 {
			t.Errorf("weighting hurt recall vs source %d: %.2f -> %.2f",
				i+1, res.UnweightedRecall[i], res.WeightedRecall[i])
		}
	}
	var buf bytes.Buffer
	PrintWeightedTable2(&buf, res)
	if !strings.Contains(buf.String(), "prestige-weighted") {
		t.Error("printout incomplete")
	}
}

func TestLCMSRCompare(t *testing.T) {
	c := smallCity(t)
	res, err := LCMSRCompare(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SOIStreets) == 0 || len(res.RegionStreets) == 0 {
		t.Fatalf("empty answers: %+v", res)
	}
	if res.Budget <= 0 {
		t.Fatalf("budget = %v", res.Budget)
	}
	// The paper's critique: the connected region covers no more sites
	// than the disjoint k-SOI ranking.
	if res.RegionSites > res.SOISites {
		t.Errorf("region covers %d sites, SOI %d", res.RegionSites, res.SOISites)
	}
	var buf bytes.Buffer
	PrintLCMSR(&buf, res)
	if !strings.Contains(buf.String(), "LCMSR") {
		t.Error("printout incomplete")
	}
}

func TestTable2RankMetrics(t *testing.T) {
	c := smallCity(t)
	res, err := Table2(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.NDCG <= 0 || res.NDCG > 1 {
		t.Errorf("nDCG = %v", res.NDCG)
	}
	if res.Tau < -1 || res.Tau > 1 {
		t.Errorf("tau = %v", res.Tau)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, res)
	if !strings.Contains(buf.String(), "nDCG") {
		t.Error("printout missing nDCG")
	}
}
