package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
)

// ParallelResult reports one parallel-throughput measurement: the same
// query workload evaluated sequentially and through the batch executor
// over one shared index.
type ParallelResult struct {
	City       string
	Workers    int
	Queries    int
	Sequential time.Duration
	Parallel   time.Duration
	// Identical reports whether every parallel answer matched the
	// sequential answer exactly (street ids and interest bits).
	Identical bool
}

// Speedup returns the sequential/parallel wall-clock ratio.
func (r ParallelResult) Speedup() float64 {
	if r.Parallel <= 0 {
		return 0
	}
	return float64(r.Sequential) / float64(r.Parallel)
}

// SequentialQPS returns the sequential throughput in queries per second.
func (r ParallelResult) SequentialQPS() float64 { return qps(r.Queries, r.Sequential) }

// ParallelQPS returns the parallel throughput in queries per second.
func (r ParallelResult) ParallelQPS() float64 { return qps(r.Queries, r.Parallel) }

func qps(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// ParallelWorkload builds n pairwise-distinct k-SOI queries over the
// paper's keyword progression: every combination of a non-empty keyword
// subset, a k value and a warmed ε is enumerated in a mixed-radix order,
// cycling when n exceeds the combination count. Distinct queries keep the
// executor's in-flight deduplication out of the measurement, so the
// parallel run exercises true concurrent evaluation.
func ParallelWorkload(n int) []core.Query {
	// 15 non-empty subsets of the 4-keyword progression.
	var subsets [][]string
	for mask := 1; mask < 1<<len(KeywordProgression); mask++ {
		var kws []string
		for b, kw := range KeywordProgression {
			if mask&(1<<b) != 0 {
				kws = append(kws, kw)
			}
		}
		subsets = append(subsets, kws)
	}
	ks := []int{1, 5, 10, 20, 50}
	out := make([]core.Query, n)
	for i := range out {
		out[i] = core.Query{
			Keywords: subsets[i%len(subsets)],
			K:        ks[(i/len(subsets))%len(ks)],
			Epsilon:  Epsilon,
		}
	}
	return out
}

// ParallelWorkloadSeeded is ParallelWorkload shuffled by an explicitly
// seeded deterministic RNG, so a benchmark run can vary the arrival order
// (which drives executor scheduling and cache interleaving) while staying
// exactly reproducible from the printed seed. Seed 0 keeps the canonical
// enumeration order.
func ParallelWorkloadSeeded(n int, seed int64) []core.Query {
	queries := ParallelWorkload(n)
	if seed != 0 {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(queries), func(i, j int) {
			queries[i], queries[j] = queries[j], queries[i]
		})
	}
	return queries
}

// ParallelBench runs the default synthetic workload over the city's
// shared index twice — a sequential loop of standalone evaluations, then
// the batch executor with the given worker count — and verifies the
// parallel results are identical to the sequential ones. Result caching
// is disabled so no query is answered without evaluation; the speedup
// comes from concurrent evaluation plus the executor's cross-query mass
// sharing over the one shared index.
func ParallelBench(c *City, workers, n int) (ParallelResult, error) {
	return ParallelBenchRecorded(c, workers, n, nil)
}

// ParallelBenchRecorded is ParallelBench with an optional observability
// recorder attached to the parallel executor, so a benchmark run
// captures the engine's pruning and latency counters alongside
// throughput. The sequential baseline loop is never recorded.
func ParallelBenchRecorded(c *City, workers, n int, rec *stats.Recorder) (ParallelResult, error) {
	return ParallelBenchContext(context.Background(), c, workers, n, rec, 0)
}

// ParallelBenchContext is ParallelBenchRecorded under a context with an
// optional per-query deadline: the sequential loop and the batch both
// observe ctx cancellation (a cut-short run returns the context error),
// and a non-zero deadline is applied to every executor query, so the
// bench harness exercises the engine's cancellation path end to end.
func ParallelBenchContext(ctx context.Context, c *City, workers, n int, rec *stats.Recorder, deadline time.Duration) (ParallelResult, error) {
	return ParallelBenchSeeded(ctx, c, workers, n, 0, rec, deadline)
}

// ParallelBenchSeeded is ParallelBenchContext over the seed-shuffled
// workload (see ParallelWorkloadSeeded).
func ParallelBenchSeeded(ctx context.Context, c *City, workers, n int, seed int64, rec *stats.Recorder, deadline time.Duration) (ParallelResult, error) {
	queries := ParallelWorkloadSeeded(n, seed)
	res := ParallelResult{City: c.Name(), Workers: workers, Queries: len(queries)}

	seq := make([][]core.StreetResult, len(queries))
	start := time.Now()
	for i, q := range queries {
		r, _, err := c.Index.SOIContext(ctx, q, core.CostAware, nil)
		if err != nil {
			return res, fmt.Errorf("experiments: sequential query %d: %w", i, err)
		}
		seq[i] = r
	}
	res.Sequential = time.Since(start)

	exec := engine.New(c.Index, engine.Config{Workers: workers, CacheSize: -1, Recorder: rec, QueryTimeout: deadline})
	start = time.Now()
	par := exec.BatchCtx(ctx, queries)
	res.Parallel = time.Since(start)

	res.Identical = true
	for i := range par {
		if par[i].Err != nil {
			return res, fmt.Errorf("experiments: parallel query %d: %w", i, par[i].Err)
		}
		if !sameStreetResults(par[i].Streets, seq[i]) {
			res.Identical = false
		}
	}
	return res, nil
}

// sameStreetResults reports whether two ranked result lists agree exactly
// on street ids and interest values.
func sameStreetResults(a, b []core.StreetResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Street != b[i].Street ||
			math.Float64bits(a[i].Interest) != math.Float64bits(b[i].Interest) {
			return false
		}
	}
	return true
}

// PrintParallelBench renders one parallel-throughput measurement.
func PrintParallelBench(w io.Writer, r ParallelResult) {
	line(w, "Parallel query throughput — %s (%d queries, %d workers)", r.City, r.Queries, r.Workers)
	line(w, "  sequential: %8s ms total   %8.1f q/s", ms(r.Sequential), r.SequentialQPS())
	line(w, "  parallel:   %8s ms total   %8.1f q/s", ms(r.Parallel), r.ParallelQPS())
	identical := "yes"
	if !r.Identical {
		identical = "NO — MISMATCH"
	}
	line(w, "  speedup: %.2fx   results identical: %s", r.Speedup(), identical)
}
