package experiments

import (
	"io"

	"repro/internal/core"
)

// WeightedResult contrasts the shopping-street ranking with and without
// POI importance weights. The paper observes (§5.1.1) that
// Kurfürstendamm-style streets rank low because "they essentially house
// big luxury brands" — few shops with high importance — and suggests
// weighting POIs by ratings/check-ins metadata. The synthetic generator
// plants exactly that structure (a prestigious low-density site), and
// this experiment shows the weighted ranking recovering it.
type WeightedResult struct {
	City string
	// UnweightedTopK and WeightedTopK are the ranked street names.
	UnweightedTopK []string
	WeightedTopK   []string
	// Recalls against the two source lists, before and after weighting.
	UnweightedRecall [2]float64
	WeightedRecall   [2]float64
	// Promoted lists source-list streets absent from the unweighted
	// top-k that the weighting brings in.
	Promoted []string
}

// WeightedTable2 runs the Table 2 query on the unweighted corpus and on
// the prestige-weighted corpus (Def. 1's weighted adaptation).
func WeightedTable2(c *City, k int) (WeightedResult, error) {
	q := core.Query{Keywords: []string{"shop"}, K: k, Epsilon: Epsilon}
	out := WeightedResult{City: c.Name()}

	plain, _, err := c.Index.SOI(q)
	if err != nil {
		return out, err
	}
	wix, err := core.NewIndex(c.Dataset.Network, c.Dataset.WeightedPOIs(), core.IndexConfig{CellSize: Epsilon})
	if err != nil {
		return out, err
	}
	weighted, _, err := wix.SOI(q)
	if err != nil {
		return out, err
	}
	for _, r := range plain {
		out.UnweightedTopK = append(out.UnweightedTopK, r.Name)
	}
	for _, r := range weighted {
		out.WeightedTopK = append(out.WeightedTopK, r.Name)
	}
	inPlain := make(map[string]bool)
	for _, s := range out.UnweightedTopK {
		inPlain[s] = true
	}
	inWeighted := make(map[string]bool)
	for _, s := range out.WeightedTopK {
		inWeighted[s] = true
	}
	seenPromoted := make(map[string]bool)
	for i, src := range c.Dataset.Truth.SourceLists {
		var hitsP, hitsW int
		for _, s := range src {
			if inPlain[s] {
				hitsP++
			}
			if inWeighted[s] {
				hitsW++
			}
			if inWeighted[s] && !inPlain[s] && !seenPromoted[s] {
				seenPromoted[s] = true
				out.Promoted = append(out.Promoted, s)
			}
		}
		out.UnweightedRecall[i] = float64(hitsP) / float64(len(src))
		out.WeightedRecall[i] = float64(hitsW) / float64(len(src))
	}
	return out, nil
}

// PrintWeightedTable2 renders the weighted-vs-unweighted comparison.
func PrintWeightedTable2(w io.Writer, r WeightedResult) {
	line(w, "Weighted POIs (paper §5.1.1 suggestion) — %s, \"shop\" top-%d", r.City, len(r.UnweightedTopK))
	line(w, "%-4s %-32s %-32s", "", "unweighted", "prestige-weighted")
	n := len(r.UnweightedTopK)
	if len(r.WeightedTopK) > n {
		n = len(r.WeightedTopK)
	}
	at := func(s []string, i int) string {
		if i < len(s) {
			return s[i]
		}
		return ""
	}
	for i := 0; i < n; i++ {
		line(w, "%-4d %-32s %-32s", i+1, at(r.UnweightedTopK, i), at(r.WeightedTopK, i))
	}
	line(w, "recall vs Source #1: %.2f -> %.2f   vs Source #2: %.2f -> %.2f",
		r.UnweightedRecall[0], r.WeightedRecall[0], r.UnweightedRecall[1], r.WeightedRecall[1])
	if len(r.Promoted) > 0 {
		line(w, "promoted into the top-k by weighting: %v", r.Promoted)
	}
}
