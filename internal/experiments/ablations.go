package experiments

import (
	"io"
	"time"

	"repro/internal/core"
)

// This file holds the ablation studies of design choices DESIGN.md calls
// out: the SOI source-list access strategy, the street-interest
// aggregation function, and the spatial-grid cell size. None of these
// appear in the paper's evaluation; they quantify the knobs the paper
// leaves open.

// StrategyAblationRow compares the two source-list access strategies on
// one query setting.
type StrategyAblationRow struct {
	City       string
	Psi        int
	CostAware  time.Duration
	RoundRobin time.Duration
	// SeenCostAware/SeenRoundRobin are the fractions of segments each
	// strategy left the unseen state.
	SeenCostAware  float64
	SeenRoundRobin float64
}

// AblationStrategy times the cost-aware schedule against the literal
// round-robin of Algorithm 1 across the keyword progression.
func AblationStrategy(c *City, trials int) ([]StrategyAblationRow, error) {
	var rows []StrategyAblationRow
	for n := 1; n <= len(KeywordProgression); n++ {
		q := core.Query{Keywords: KeywordProgression[:n], K: Figure4DefaultK, Epsilon: Epsilon}
		row := StrategyAblationRow{City: c.Name(), Psi: n}
		var caStats, rrStats core.Stats
		var lastErr error
		row.CostAware = medianOf(trials, func() {
			_, s, err := c.Index.SOIWithStrategy(q, core.CostAware)
			if err != nil {
				lastErr = err
			}
			caStats = s
		})
		row.RoundRobin = medianOf(trials, func() {
			_, s, err := c.Index.SOIWithStrategy(q, core.RoundRobin)
			if err != nil {
				lastErr = err
			}
			rrStats = s
		})
		if lastErr != nil {
			return nil, lastErr
		}
		if caStats.TotalSegments > 0 {
			row.SeenCostAware = float64(caStats.SegmentsSeen) / float64(caStats.TotalSegments)
			row.SeenRoundRobin = float64(rrStats.SegmentsSeen) / float64(rrStats.TotalSegments)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAblationStrategy renders the strategy ablation.
func PrintAblationStrategy(w io.Writer, rows []StrategyAblationRow) {
	if len(rows) == 0 {
		return
	}
	line(w, "Ablation: SOI access strategy — %s (times in ms; both return identical results)", rows[0].City)
	line(w, "%6s %12s %12s %10s %10s", "|Psi|", "cost-aware", "round-robin", "seen(ca)", "seen(rr)")
	for _, r := range rows {
		line(w, "%6d %12s %12s %9.0f%% %9.0f%%",
			r.Psi, ms(r.CostAware), ms(r.RoundRobin), r.SeenCostAware*100, r.SeenRoundRobin*100)
	}
}

// AggregateAblationRow compares a street-interest aggregation mode to the
// paper's MaxSegment.
type AggregateAblationRow struct {
	City      string
	Aggregate core.Aggregate
	// Overlap is |top-k ∩ top-k(MaxSegment)| / k.
	Overlap float64
	// TopStreet is the highest-ranked street under the mode.
	TopStreet string
}

// AblationAggregate contrasts the three street aggregation functions on
// the Table 2 query, reporting how much of the paper's top-k survives a
// change of aggregation.
func AblationAggregate(c *City, k int) ([]AggregateAblationRow, error) {
	q := core.Query{Keywords: []string{"shop"}, K: k, Epsilon: Epsilon}
	ref, _, err := c.Index.BaselineAggregate(q, core.MaxSegment)
	if err != nil {
		return nil, err
	}
	refSet := make(map[string]bool, len(ref))
	for _, r := range ref {
		refSet[r.Name] = true
	}
	var rows []AggregateAblationRow
	for _, agg := range []core.Aggregate{core.MaxSegment, core.MeanSegment, core.TotalDensity} {
		res, _, err := c.Index.BaselineAggregate(q, agg)
		if err != nil {
			return nil, err
		}
		row := AggregateAblationRow{City: c.Name(), Aggregate: agg}
		hits := 0
		for _, r := range res {
			if refSet[r.Name] {
				hits++
			}
		}
		if len(ref) > 0 {
			row.Overlap = float64(hits) / float64(len(ref))
		}
		if len(res) > 0 {
			row.TopStreet = res[0].Name
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAblationAggregate renders the aggregation ablation.
func PrintAblationAggregate(w io.Writer, rows []AggregateAblationRow) {
	if len(rows) == 0 {
		return
	}
	line(w, "Ablation: street aggregation — %s (\"shop\" query, overlap with the paper's max-segment top-k)", rows[0].City)
	line(w, "%-15s %10s   %s", "aggregate", "overlap", "top street")
	for _, r := range rows {
		line(w, "%-15s %9.0f%%   %s", r.Aggregate, r.Overlap*100, r.TopStreet)
	}
}

// CellSizeAblationRow reports query latency as a function of the grid
// cell size.
type CellSizeAblationRow struct {
	City      string
	CellSize  float64
	IndexTime time.Duration
	WarmTime  time.Duration
	SOITime   time.Duration
	BLTime    time.Duration
	Cells     int
}

// AblationCellSize rebuilds the index at several grid cell sizes and
// measures the default query under each. The paper leaves the cell size
// "arbitrary"; this quantifies the trade-off around the ε-sized default.
func AblationCellSize(c *City, sizes []float64, trials int) ([]CellSizeAblationRow, error) {
	q := core.Query{Keywords: KeywordProgression[:Figure4DefaultPsi], K: Figure4DefaultK, Epsilon: Epsilon}
	var rows []CellSizeAblationRow
	for _, size := range sizes {
		row := CellSizeAblationRow{City: c.Name(), CellSize: size}
		start := time.Now()
		ix, err := core.NewIndex(c.Dataset.Network, c.Dataset.POIs, core.IndexConfig{CellSize: size})
		if err != nil {
			return nil, err
		}
		row.IndexTime = time.Since(start)
		start = time.Now()
		ix.Warm(Epsilon)
		row.WarmTime = time.Since(start)
		row.Cells = ix.Grid().NumCells()
		var lastErr error
		row.SOITime = medianOf(trials, func() {
			if _, _, err := ix.SOI(q); err != nil {
				lastErr = err
			}
		})
		row.BLTime = medianOf(trials, func() {
			if _, _, err := ix.Baseline(q); err != nil {
				lastErr = err
			}
		})
		if lastErr != nil {
			return nil, lastErr
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DefaultCellSizes is the sweep of AblationCellSize: around the ε-sized
// default in both directions.
var DefaultCellSizes = []float64{Epsilon / 2, Epsilon, 2 * Epsilon, 4 * Epsilon}

// PrintAblationCellSize renders the cell-size ablation.
func PrintAblationCellSize(w io.Writer, rows []CellSizeAblationRow) {
	if len(rows) == 0 {
		return
	}
	line(w, "Ablation: grid cell size — %s (|Psi|=3, k=50; times in ms)", rows[0].City)
	line(w, "%10s %10s %10s %10s %10s %10s", "cell", "index", "warm", "SOI", "BL", "cells")
	for _, r := range rows {
		line(w, "%10.5f %10s %10s %10s %10s %10d",
			r.CellSize, ms(r.IndexTime), ms(r.WarmTime), ms(r.SOITime), ms(r.BLTime), r.Cells)
	}
}
