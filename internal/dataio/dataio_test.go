package dataio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/vocab"
)

func TestNetworkRoundTrip(t *testing.T) {
	b := network.NewBuilder()
	b.AddStreet("Main, St", []geo.Point{geo.Pt(0, 0), geo.Pt(1.5, 0.25), geo.Pt(2, 1)})
	b.AddStreet("Side", []geo.Point{geo.Pt(2, 1), geo.Pt(2, 2)})
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStreets() != net.NumStreets() || got.NumSegments() != net.NumSegments() {
		t.Fatalf("round trip: %d/%d streets, %d/%d segments",
			got.NumStreets(), net.NumStreets(), got.NumSegments(), net.NumSegments())
	}
	// The CSV-quoted comma in the street name survives.
	if got.StreetByName("Main, St") == nil {
		t.Fatal("street name with comma lost")
	}
	for i := 0; i < net.NumSegments(); i++ {
		a := net.Segment(uint32(i)).Geom
		bseg := got.Segment(uint32(i)).Geom
		if a != bseg {
			t.Fatalf("segment %d geometry changed: %v vs %v", i, a, bseg)
		}
	}
}

func TestPOIRoundTrip(t *testing.T) {
	pb := poi.NewBuilder(nil)
	pb.AddWeighted(geo.Pt(1.25, -3.5), []string{"shop", "food"}, 2.5)
	pb.Add(geo.Pt(0, 0), nil)
	c := pb.Build()
	var buf bytes.Buffer
	if err := WritePOIs(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPOIs(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
	p := got.Get(0)
	if p.Loc != geo.Pt(1.25, -3.5) || p.Weight != 2.5 || p.Keywords.Len() != 2 {
		t.Fatalf("POI 0 = %+v", p)
	}
	if got.Get(1).Keywords.Len() != 0 {
		t.Fatal("empty keywords not preserved")
	}
}

func TestPhotoRoundTrip(t *testing.T) {
	pb := photo.NewBuilder(nil)
	pb.Add(geo.Pt(7, 8), []string{"oxford", "night"})
	c := pb.Build()
	var buf bytes.Buffer
	if err := WritePhotos(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPhotos(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Get(0).Tags.Len() != 2 {
		t.Fatalf("round trip = %+v", got.Get(0))
	}
}

func TestSharedDictionaryRoundTrip(t *testing.T) {
	ds, err := datagen.Generate(datagen.Scale(datagen.Small(1), 0.1))
	if err != nil {
		t.Fatal(err)
	}
	var nb, pb, rb bytes.Buffer
	if err := WriteNetwork(&nb, ds.Network); err != nil {
		t.Fatal(err)
	}
	if err := WritePOIs(&pb, ds.POIs); err != nil {
		t.Fatal(err)
	}
	if err := WritePhotos(&rb, ds.Photos); err != nil {
		t.Fatal(err)
	}
	dict := vocab.NewDictionary()
	pois, err := ReadPOIs(&pb, dict)
	if err != nil {
		t.Fatal(err)
	}
	photos, err := ReadPhotos(&rb, dict)
	if err != nil {
		t.Fatal(err)
	}
	if pois.Dict() != dict || photos.Dict() != dict {
		t.Fatal("dictionary not shared")
	}
	if pois.Len() != ds.POIs.Len() || photos.Len() != ds.Photos.Len() {
		t.Fatal("counts changed in round trip")
	}
	// Keyword membership is preserved (set ids differ across
	// dictionaries, so compare sorted name lists).
	for i := 0; i < pois.Len(); i++ {
		want := ds.Dict.Names(ds.POIs.Get(uint32(i)).Keywords)
		got := dict.Names(pois.Get(uint32(i)).Keywords)
		sort.Strings(want)
		sort.Strings(got)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("POI %d keywords %v != %v", i, got, want)
		}
	}
}

func TestReadNetworkErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"too few fields", "a,1,2\n"},
		{"odd coordinates", "a,1,2,3\n"},
		{"bad x", "a,zzz,2,3,4\n"},
		{"bad y", "a,1,zzz,3,4\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadNetwork(strings.NewReader(tc.csv)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestReadPOIErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"wrong field count", "1,2,3\n"},
		{"bad x", "a,2,1,k\n"},
		{"bad y", "1,b,1,k\n"},
		{"bad weight", "1,2,w,k\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPOIs(strings.NewReader(tc.csv), nil); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestReadPhotoErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"wrong field count", "1,2\n"},
		{"bad x", "a,2,k\n"},
		{"bad y", "1,b,k\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPhotos(strings.NewReader(tc.csv), nil); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestSeparatorInKeywordRejected(t *testing.T) {
	pb := poi.NewBuilder(nil)
	pb.Add(geo.Pt(0, 0), []string{"bad;keyword"})
	var buf bytes.Buffer
	if err := WritePOIs(&buf, pb.Build()); err == nil {
		t.Fatal("expected error for ';' in keyword")
	}
	rb := photo.NewBuilder(nil)
	rb.Add(geo.Pt(0, 0), []string{"also;bad"})
	if err := WritePhotos(&buf, rb.Build()); err == nil {
		t.Fatal("expected error for ';' in tag")
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := ReadPOIs(strings.NewReader(""), nil); err != nil {
		t.Fatalf("empty pois: %v", err)
	}
	if _, err := ReadPhotos(strings.NewReader(""), nil); err != nil {
		t.Fatalf("empty photos: %v", err)
	}
	if _, err := ReadNetwork(strings.NewReader("")); err == nil {
		// An empty network has no streets; the builder currently permits
		// this, so reading succeeds with zero streets.
		return
	}
}

// Random inputs must never panic the parsers; errors are acceptable.
func TestParsersNeverPanic(t *testing.T) {
	f := func(raw []byte) bool {
		s := string(raw)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadNetwork panicked on %q: %v", s, r)
				}
			}()
			_, _ = ReadNetwork(strings.NewReader(s))
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadPOIs panicked on %q: %v", s, r)
				}
			}()
			_, _ = ReadPOIs(strings.NewReader(s), nil)
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadPhotos panicked on %q: %v", s, r)
				}
			}()
			_, _ = ReadPhotos(strings.NewReader(s), nil)
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLoadDir(t *testing.T) {
	ds, err := datagen.Generate(datagen.Scale(datagen.Small(2), 0.3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, fill func(io.Writer) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := fill(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("streets.csv", func(w io.Writer) error { return WriteNetwork(w, ds.Network) })
	write("pois.csv", func(w io.Writer) error { return WritePOIs(w, ds.POIs) })
	write("photos.csv", func(w io.Writer) error { return WritePhotos(w, ds.Photos) })

	net, pois, photos, dict, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumStreets() != ds.Network.NumStreets() {
		t.Fatalf("streets %d != %d", net.NumStreets(), ds.Network.NumStreets())
	}
	if pois.Len() != ds.POIs.Len() || photos.Len() != ds.Photos.Len() {
		t.Fatal("corpus sizes changed")
	}
	if pois.Dict() != dict || photos.Dict() != dict {
		t.Fatal("dictionary not shared")
	}
}

func TestLoadDirMissingFiles(t *testing.T) {
	if _, _, _, _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("expected error for empty dir")
	}
}
