package dataio

import (
	"bytes"
	"testing"
)

// The fuzz targets share one property: any input the readers accept must
// canonicalize. Writing the parsed value and reading it back must
// succeed, and a second write must reproduce the first byte-for-byte —
// the write∘read pass is idempotent. floats survive because fmtF uses
// strconv's shortest round-trippable form; keyword lists survive because
// interning normalizes and deduplicates on first read.

func FuzzReadNetwork(f *testing.F) {
	f.Add([]byte("High St,0,0,1,0,2,0\nLow St,0,1,1,1\n"))
	f.Add([]byte("\"a,b\",0.5,-0.25,1e-3,2\n"))
	f.Add([]byte("n,NaN,0,1,0\n"))
	f.Add([]byte("loop,0,0,0,0\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := ReadNetwork(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		var w1 bytes.Buffer
		if err := WriteNetwork(&w1, net); err != nil {
			t.Fatalf("write of accepted network failed: %v", err)
		}
		net2, err := ReadNetwork(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written network failed: %v\n%s", err, w1.Bytes())
		}
		if net2.NumStreets() != net.NumStreets() || net2.NumSegments() != net.NumSegments() {
			t.Fatalf("round-trip changed shape: %d/%d streets, %d/%d segments",
				net.NumStreets(), net2.NumStreets(), net.NumSegments(), net2.NumSegments())
		}
		var w2 bytes.Buffer
		if err := WriteNetwork(&w2, net2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write not idempotent:\nfirst:  %q\nsecond: %q", w1.Bytes(), w2.Bytes())
		}
	})
}

func FuzzReadPOIs(f *testing.F) {
	f.Add([]byte("0.5,1.5,1,shop;food\n"))
	f.Add([]byte("0,0,2.5,a; B ;a\n"))
	f.Add([]byte("1,2,0,\n"))
	f.Add([]byte("-0,1e-300,NaN,x\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadPOIs(bytes.NewReader(data), nil)
		if err != nil {
			t.Skip()
		}
		var w1 bytes.Buffer
		if err := WritePOIs(&w1, c); err != nil {
			t.Fatalf("write of accepted corpus failed: %v", err)
		}
		c2, err := ReadPOIs(bytes.NewReader(w1.Bytes()), nil)
		if err != nil {
			t.Fatalf("re-read of written corpus failed: %v\n%s", err, w1.Bytes())
		}
		if c2.Len() != c.Len() {
			t.Fatalf("round-trip changed POI count: %d → %d", c.Len(), c2.Len())
		}
		var w2 bytes.Buffer
		if err := WritePOIs(&w2, c2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write not idempotent:\nfirst:  %q\nsecond: %q", w1.Bytes(), w2.Bytes())
		}
	})
}

func FuzzReadPhotos(f *testing.F) {
	f.Add([]byte("0.5,1.5,sunset;bridge\n"))
	f.Add([]byte("0,0,\n"))
	f.Add([]byte("2,3,\"tag,comma\"\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadPhotos(bytes.NewReader(data), nil)
		if err != nil {
			t.Skip()
		}
		var w1 bytes.Buffer
		if err := WritePhotos(&w1, c); err != nil {
			t.Fatalf("write of accepted corpus failed: %v", err)
		}
		c2, err := ReadPhotos(bytes.NewReader(w1.Bytes()), nil)
		if err != nil {
			t.Fatalf("re-read of written corpus failed: %v\n%s", err, w1.Bytes())
		}
		if c2.Len() != c.Len() {
			t.Fatalf("round-trip changed photo count: %d → %d", c.Len(), c2.Len())
		}
		var w2 bytes.Buffer
		if err := WritePhotos(&w2, c2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write not idempotent:\nfirst:  %q\nsecond: %q", w1.Bytes(), w2.Bytes())
		}
	})
}
