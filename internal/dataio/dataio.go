// Package dataio persists road networks, POI corpora and photo corpora as
// CSV files, the interchange format of the repository's command-line
// tools. The formats are line-oriented and human-inspectable:
//
//	streets.csv:  street_name,x1,y1,x2,y2,...   (one polyline per line)
//	pois.csv:     x,y,weight,kw1;kw2;...
//	photos.csv:   x,y,tag1;tag2;...
//
// Keywords use ';' as an internal separator and therefore must not
// contain it; writers reject such values instead of corrupting the file.
package dataio

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// WriteNetwork writes the street polylines of a network as CSV.
func WriteNetwork(w io.Writer, net *network.Network) error {
	cw := csv.NewWriter(w)
	for _, st := range net.Streets() {
		rec := []string{st.Name}
		first := net.Segment(st.Segments[0])
		rec = append(rec, fmtF(first.Geom.A.X), fmtF(first.Geom.A.Y))
		for _, sid := range st.Segments {
			p := net.Segment(sid).Geom.B
			rec = append(rec, fmtF(p.X), fmtF(p.Y))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataio: write street %q: %w", st.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadNetwork parses a streets CSV back into a network.
func ReadNetwork(r io.Reader) (*network.Network, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	b := network.NewBuilder()
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataio: streets line %d: %w", line+1, err)
		}
		line++
		if len(rec) < 5 || len(rec)%2 == 0 {
			return nil, fmt.Errorf("dataio: streets line %d: want name plus ≥2 coordinate pairs, got %d fields", line, len(rec))
		}
		pts := make([]geo.Point, 0, (len(rec)-1)/2)
		for i := 1; i < len(rec); i += 2 {
			x, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataio: streets line %d field %d: %w", line, i+1, err)
			}
			y, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataio: streets line %d field %d: %w", line, i+2, err)
			}
			pts = append(pts, geo.Pt(x, y))
		}
		b.AddStreet(rec[0], pts)
	}
	return b.Build()
}

// WritePOIs writes a POI corpus as CSV.
func WritePOIs(w io.Writer, c *poi.Corpus) error {
	cw := csv.NewWriter(w)
	for _, p := range c.All() {
		kws, err := joinKeywords(c.Dict(), p.Keywords)
		if err != nil {
			return fmt.Errorf("dataio: POI %d: %w", p.ID, err)
		}
		rec := []string{fmtF(p.Loc.X), fmtF(p.Loc.Y), fmtF(p.Weight), kws}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataio: write POI %d: %w", p.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPOIs parses a POIs CSV into a corpus using the given dictionary (a
// fresh one when nil).
func ReadPOIs(r io.Reader, dict *vocab.Dictionary) (*poi.Corpus, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	b := poi.NewBuilder(dict)
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataio: pois line %d: %w", line+1, err)
		}
		line++
		x, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataio: pois line %d: bad x: %w", line, err)
		}
		y, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataio: pois line %d: bad y: %w", line, err)
		}
		wt, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataio: pois line %d: bad weight: %w", line, err)
		}
		b.AddWeighted(geo.Pt(x, y), splitKeywords(rec[3]), wt)
	}
	return b.Build(), nil
}

// WritePhotos writes a photo corpus as CSV.
func WritePhotos(w io.Writer, c *photo.Corpus) error {
	cw := csv.NewWriter(w)
	for _, p := range c.All() {
		tags, err := joinKeywords(c.Dict(), p.Tags)
		if err != nil {
			return fmt.Errorf("dataio: photo %d: %w", p.ID, err)
		}
		rec := []string{fmtF(p.Loc.X), fmtF(p.Loc.Y), tags}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataio: write photo %d: %w", p.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPhotos parses a photos CSV into a corpus using the given dictionary
// (a fresh one when nil).
func ReadPhotos(r io.Reader, dict *vocab.Dictionary) (*photo.Corpus, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	b := photo.NewBuilder(dict)
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataio: photos line %d: %w", line+1, err)
		}
		line++
		x, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataio: photos line %d: bad x: %w", line, err)
		}
		y, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataio: photos line %d: bad y: %w", line, err)
		}
		b.Add(geo.Pt(x, y), splitKeywords(rec[2]))
	}
	return b.Build(), nil
}

func fmtF(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func joinKeywords(d *vocab.Dictionary, s vocab.Set) (string, error) {
	names := make([]string, len(s))
	for i, id := range s {
		n := d.Name(id)
		if strings.ContainsRune(n, ';') {
			return "", fmt.Errorf("keyword %q contains the ';' separator", n)
		}
		names[i] = n
	}
	return strings.Join(names, ";"), nil
}

func splitKeywords(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ";")
}

// LoadDir reads a dataset directory produced by soigen (streets.csv,
// pois.csv, photos.csv), sharing one dictionary between the POI and
// photo corpora.
func LoadDir(dir string) (*network.Network, *poi.Corpus, *photo.Corpus, *vocab.Dictionary, error) {
	net, err := loadWith(filepath.Join(dir, "streets.csv"), func(r io.Reader) (*network.Network, error) {
		return ReadNetwork(r)
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	dict := vocab.NewDictionary()
	pois, err := loadWith(filepath.Join(dir, "pois.csv"), func(r io.Reader) (*poi.Corpus, error) {
		return ReadPOIs(r, dict)
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	photos, err := loadWith(filepath.Join(dir, "photos.csv"), func(r io.Reader) (*photo.Corpus, error) {
		return ReadPhotos(r, dict)
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return net, pois, photos, dict, nil
}

func loadWith[T any](path string, read func(io.Reader) (T, error)) (T, error) {
	var zero T
	f, err := os.Open(path)
	if err != nil {
		return zero, err
	}
	defer f.Close()
	v, err := read(bufio.NewReader(f))
	if err != nil {
		return zero, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}
