package server

import (
	"net/http"
	"strings"
	"testing"
)

func TestRoutesTopK(t *testing.T) {
	s := testServer(t)
	rec, body := post(t, s, "/api/routes/topk",
		`{"src":[0,0],"dst":[0.002,0.002],"keywords":["shop"],"k":2,"budget":0.02}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	routes := body["routes"].([]interface{})
	if len(routes) == 0 {
		t.Fatalf("no routes: %v", body)
	}
	first := routes[0].(map[string]interface{})
	poly := first["polyline"].([]interface{})
	if len(poly) < 2 {
		t.Fatalf("route polyline = %v", poly)
	}
	streets := first["streets"].([]interface{})
	if len(streets) == 0 || streets[0] != "High St" {
		t.Fatalf("route streets = %v", streets)
	}
	if first["score"].(float64) < 0 {
		t.Fatalf("route score = %v", first["score"])
	}
}

func TestRoutesTopKValidation(t *testing.T) {
	s := testServer(t)
	cases := []string{
		`{`, // malformed JSON
		`{"src":[0,0],"dst":[0.002,0],"budget":0.02}`,                             // no keywords
		`{"src":[0,0],"dst":[0.002,0],"keywords":["shop"]}`,                       // no budget
		`{"src":[0,0],"dst":[0.002,0],"keywords":["shop"],"budget":-1}`,           // negative budget
		`{"src":[0,0],"dst":[0.002,0],"keywords":["shop"],"budget":1,"alpha":-1}`, // negative alpha
		`{"src":[0,0],"dst":[0.002,0],"keywords":["shop"],"budget":1,"k":-2}`,     // negative k
		`{"src":[0,0],"dst":[0.002,0],"keywords":["shop"],"budget":1,"eps":-1}`,   // negative eps
		`{"src":[0,0],"dst":[0.002,0],"keywords":["shop"],"budget":1e999}`,        // out-of-range budget
		`{"src":[1e999,0],"dst":[0.002,0],"keywords":["shop"],"budget":1}`,        // out-of-range coordinate
	}
	for _, c := range cases {
		rec, body := post(t, s, "/api/routes/topk", c)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%v)", c, rec.Code, body)
		}
	}
}

func TestRoutesTopKMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	rec, _ := get(t, s, "/api/routes/topk")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q", allow)
	}
}

func TestTrajectorySOIEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := post(t, s, "/api/trajectories/soi",
		`{"traces":[[[0.0002,0.00005],[0.001,-0.00005],[0.0018,0.00005]]],"keywords":["shop"],"k":5,"radius":0.0003}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	streets := body["streets"].([]interface{})
	if len(streets) == 0 {
		t.Fatalf("no corridor streets: %v", body)
	}
	first := streets[0].(map[string]interface{})
	if first["name"] != "High St" {
		t.Fatalf("top corridor = %v", first)
	}
	cov := first["coverage"].(float64)
	if cov <= 0 || cov > 1 {
		t.Fatalf("coverage = %v", cov)
	}
}

func TestTrajectorySOIValidation(t *testing.T) {
	s := testServer(t)
	cases := []string{
		`{`,                     // malformed JSON
		`{"keywords":["shop"]}`, // no traces
		`{"traces":[[[0,0]]]}`,  // no keywords
		`{"traces":[[[0,0]]],"keywords":["shop"],"radius":-1}`, // negative radius
		`{"traces":[[[0,0]]],"keywords":["shop"],"k":-1}`,      // negative k
		`{"traces":[[[0,0]]],"keywords":["shop"],"eps":-1}`,    // negative eps
		`{"traces":[[[0,0]]],"keywords":["shop"],"radius":1e999}`, // out-of-range radius
	}
	for _, c := range cases {
		rec, body := post(t, s, "/api/trajectories/soi", c)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%.60s: status = %d (%v)", c, rec.Code, body)
		}
	}
}

func TestTrajectorySOITooManyPoints(t *testing.T) {
	// A request under the byte cap but over the point cap trips the
	// dedicated limit. 70k copies of "[0,0]" exceed 65536 points but the
	// body (~420 KB) must fit, so raise the byte cap for this server.
	s := testServer(t)
	s.maxBatchBytes = 8 << 20
	var b strings.Builder
	b.WriteString(`{"traces":[[`)
	for i := 0; i < 70000; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("[0,0]")
	}
	b.WriteString(`]],"keywords":["shop"]}`)
	rec, body := post(t, s, "/api/trajectories/soi", b.String())
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d (%v)", rec.Code, body)
	}
	if !strings.Contains(body["error"].(string), "trace points") {
		t.Fatalf("error = %v", body["error"])
	}
}

func TestTrajectorySOIBodyTooLarge(t *testing.T) {
	s := testServer(t)
	big := `{"traces":[[` + strings.Repeat("[0,0],", 300000) + `[0,0]]],"keywords":["shop"]}`
	rec, body := post(t, s, "/api/trajectories/soi", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (%v)", rec.Code, body)
	}
}
