package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	soi "repro"
	"repro/internal/engine"
	"repro/internal/faults"
)

// testServerConfigured is testServer with explicit engine and server
// configuration, for exercising admission control and body limits.
func testServerConfigured(t *testing.T, ecfg soi.Config, scfg Config) *Server {
	t.Helper()
	streets := []soi.StreetInput{
		{Name: "High St", Polyline: []soi.Point{{X: 0, Y: 0}, {X: 0.002, Y: 0}}},
		{Name: "Side St", Polyline: []soi.Point{{X: 0.002, Y: 0}, {X: 0.002, Y: 0.002}}},
	}
	var pois []soi.POIInput
	for i := 0; i < 6; i++ {
		pois = append(pois, soi.POIInput{X: 0.0003 * float64(i), Y: 0.0001, Keywords: []string{"shop", "food"}})
	}
	eng, err := soi.NewEngine(streets, pois, nil, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(eng, scfg)
}

func TestBatchRejectsNonPOST(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/streets/batch")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want %q", allow, http.MethodPost)
	}
	if body["error"] == nil {
		t.Fatalf("missing JSON error body: %v", body)
	}
}

func TestBatchBodyLimit(t *testing.T) {
	s := testServerConfigured(t, soi.Config{}, Config{MaxBatchBytes: 128})
	// A syntactically valid request that exceeds the 128-byte cap.
	big := `{"queries":[{"keywords":["` + strings.Repeat(`shop","`, 40) + `shop"],"k":3}]}`
	req := httptest.NewRequest(http.MethodPost, "/api/streets/batch", strings.NewReader(big))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413\n%s", rec.Code, rec.Body.String())
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("413 body is not JSON: %v\n%s", err, rec.Body.String())
	}
	msg, _ := body["error"].(string)
	if !strings.Contains(msg, "128-byte batch limit") {
		t.Fatalf("error = %q, want the byte limit named", msg)
	}
}

func TestBatchBodyLimitDisabled(t *testing.T) {
	s := testServerConfigured(t, soi.Config{}, Config{MaxBatchBytes: -1})
	big := `{"queries":[{"keywords":["shop"],"k":3,"pad":"` + strings.Repeat("x", 2<<20) + `"}]}`
	req := httptest.NewRequest(http.MethodPost, "/api/streets/batch", strings.NewReader(big))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 with the limit disabled\n%s", rec.Code, rec.Body.String())
	}
}

// TestShedMapsTo503: with one worker wedged at the evaluate fault site
// and a tiny queue wait, a second concurrent query is shed by admission
// control and the server reports 503 with a Retry-After hint.
func TestShedMapsTo503(t *testing.T) {
	block := make(chan struct{})
	faults.Activate(engine.SiteEvaluate, faults.Fault{Block: block})
	defer faults.Deactivate(engine.SiteEvaluate)

	s := testServerConfigured(t,
		soi.Config{Workers: 1, CacheSize: -1, MaxQueueWait: 20 * time.Millisecond}, Config{})

	wedged := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/streets?keywords=shop&k=2", nil))
		wedged <- rec
	}()
	deadline := time.Now().Add(2 * time.Second)
	for faults.Visits(engine.SiteEvaluate) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached the evaluate site")
		}
		time.Sleep(time.Millisecond)
	}

	// A distinct query (different keywords) cannot dedup-join the wedged
	// one; it waits past MaxQueueWait and is shed.
	rec, body := get(t, s, "/api/streets?keywords=food&k=2")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %v", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}

	close(block)
	select {
	case w := <-wedged:
		if w.Code != http.StatusOK {
			t.Fatalf("wedged query finished with %d after unwedge\n%s", w.Code, w.Body.String())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wedged query never completed")
	}

	// The shed is visible on both observability surfaces.
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), "soi_shed_total 1") {
		t.Fatalf("/metrics missing soi_shed_total 1:\n%s", mrec.Body.String())
	}
	_, stats := get(t, s, "/api/stats")
	eng := stats["stats"].(map[string]any)["engine"].(map[string]any)
	if got := eng["shed"].(float64); got != 1 {
		t.Fatalf("/api/stats engine.shed = %v, want 1", got)
	}
}

// TestPanicMapsTo500AndCounters: an injected evaluation panic surfaces
// as 500 (not a client error), bumps soi_panics_recovered_total on
// /metrics and /api/stats, and the server keeps answering.
func TestPanicMapsTo500AndCounters(t *testing.T) {
	faults.Activate(engine.SiteEvaluate, faults.Fault{Panic: true, Times: 1})
	defer faults.Deactivate(engine.SiteEvaluate)

	s := testServerConfigured(t, soi.Config{}, Config{})
	rec, body := get(t, s, "/api/streets?keywords=shop&k=2")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %v", rec.Code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "panicked") {
		t.Fatalf("error = %q, want the recovered panic described", msg)
	}

	// The process keeps serving: the same query succeeds on retry.
	rec2, body2 := get(t, s, "/api/streets?keywords=shop&k=2")
	if rec2.Code != http.StatusOK {
		t.Fatalf("retry status = %d, want 200: %v", rec2.Code, body2)
	}

	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), "soi_panics_recovered_total 1") {
		t.Fatalf("/metrics missing soi_panics_recovered_total 1:\n%s", mrec.Body.String())
	}
	_, stats := get(t, s, "/api/stats")
	eng := stats["stats"].(map[string]any)["engine"].(map[string]any)
	if got := eng["panics_recovered"].(float64); got != 1 {
		t.Fatalf("/api/stats engine.panics_recovered = %v, want 1", got)
	}
}

// TestRobustnessCountersExposed: all four robustness counters are
// present on both surfaces even at zero, so dashboards can rely on them.
func TestRobustnessCountersExposed(t *testing.T) {
	s := testServer(t)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	text := mrec.Body.String()
	for _, name := range []string{"soi_shed_total", "soi_cancelled_total", "soi_deadline_exceeded_total", "soi_panics_recovered_total"} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	_, stats := get(t, s, "/api/stats")
	eng := stats["stats"].(map[string]any)["engine"].(map[string]any)
	for _, key := range []string{"shed", "cancelled", "deadline_exceeded", "panics_recovered"} {
		if _, ok := eng[key]; !ok {
			t.Errorf("/api/stats engine snapshot missing %q", key)
		}
	}
}
