package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func jsonUnmarshalBytes(b []byte, into *map[string]interface{}) error {
	return json.Unmarshal(b, into)
}

// TestTenantLRUEvictionRaceStress hammers a MaxOpen-1 tenant server from
// many goroutines across three cities, so every request races eviction
// and reload of the engines it touches: a query can hold a refcounted
// engine while another goroutine evicts it, and a third reloads the same
// city concurrently. Under -race this pins the refcount discipline —
// an evicted engine must stay usable until its last in-flight query
// drops it, must never be resurrected into the table, and no response
// may ever carry another tenant's data.
func TestTenantLRUEvictionRaceStress(t *testing.T) {
	cities := []string{"berlin", "vienna", "london"}
	dir := writeTenantSnapshots(t, cities...)
	ts := newTestTenantServer(t, TenantConfig{Dir: dir, MaxOpen: 1})

	const (
		goroutines = 8
		iterations = 60
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				city := cities[(g+i)%len(cities)]
				req := httptest.NewRequest(http.MethodGet,
					"/api/"+city+"/streets?keywords=shop&k=1&eps=0.0005", nil)
				rec := httptest.NewRecorder()
				ts.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("goroutine %d iter %d: %s answered %d: %s",
						g, i, city, rec.Code, rec.Body.String())
					return
				}
				// The snapshot encodes the city in its street names: any
				// other prefix is a cross-tenant leak through a racing
				// evict/reload.
				var body map[string]interface{}
				if err := jsonDecodeBody(rec, &body); err != nil {
					errc <- fmt.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if got := topStreetNameRaw(body); got != city+" High St" {
					errc <- fmt.Errorf("goroutine %d iter %d: %s answered %q", g, i, city, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The storm settled: every tenant still answers correctly after its
	// engines were evicted and reloaded dozens of times. (During the
	// storm the resident set may legitimately exceed MaxOpen — when all
	// residents are mid-request the server admits over cap rather than
	// evicting a busy engine.)
	for _, city := range cities {
		rec, body := tget(t, ts, "/api/"+city+"/streets?keywords=shop&k=1&eps=0.0005")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s after storm: status %d", city, rec.Code)
		}
		if got := topStreetName(t, body); got != city+" High St" {
			t.Errorf("%s after storm answered %q", city, got)
		}
	}
	// Serial traffic shrinks the resident set back under the cap: each
	// acquire evicts the now-idle LRU engines, so the last city queried
	// is the sole resident.
	_, body := tget(t, ts, "/api/tenants")
	resident := body["resident"].([]interface{})
	if len(resident) != 1 || resident[0] != cities[len(cities)-1] {
		t.Errorf("resident after serial traffic = %v, want [%s]", resident, cities[len(cities)-1])
	}
}

// jsonDecodeBody and topStreetNameRaw are goroutine-safe variants of the
// t.Helper-based accessors (t.Fatal must not be called off the test
// goroutine).
func jsonDecodeBody(rec *httptest.ResponseRecorder, into *map[string]interface{}) error {
	return jsonUnmarshalBytes(rec.Body.Bytes(), into)
}

func topStreetNameRaw(body map[string]interface{}) string {
	results, ok := body["streets"].([]interface{})
	if !ok || len(results) == 0 {
		return ""
	}
	first, ok := results[0].(map[string]interface{})
	if !ok {
		return ""
	}
	name, _ := first["Name"].(string)
	return name
}
