package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	soi "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/httperr"
	"repro/internal/remote"
	"repro/internal/shard"
	"repro/internal/stats"
)

// TestHealthReadyEndpoints: /healthz is pure liveness, /readyz follows
// the drain flag — the same contract soishard exposes, so a load
// balancer (or the remote client's breaker probe) can treat every
// serving surface alike.
func TestHealthReadyEndpoints(t *testing.T) {
	s := testServer(t)
	check := func(path string, want int) {
		t.Helper()
		rec, _ := get(t, s, path)
		if rec.Code != want {
			t.Errorf("%s: status %d, want %d", path, rec.Code, want)
		}
	}
	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusOK)
	s.SetDraining(true)
	check("/healthz", http.StatusOK) // draining is still alive
	check("/readyz", http.StatusServiceUnavailable)
	s.SetDraining(false)
	check("/readyz", http.StatusOK)
}

// TestDeadlineMapsTo504: an expired per-query deadline surfaces as 504
// Gateway Timeout through the shared mapper — not 400, not 500.
func TestDeadlineMapsTo504(t *testing.T) {
	defer faults.Reset()
	block := make(chan struct{})
	defer close(block)
	faults.Activate(engine.SiteEvaluate, faults.Fault{Block: block, Times: 1})

	s := testServerConfigured(t,
		soi.Config{Workers: 1, CacheSize: -1, QueryTimeout: 30 * time.Millisecond}, Config{})
	rec, body := get(t, s, "/api/streets?keywords=shop&k=2")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %v", rec.Code, body)
	}
	if body["error"] == nil {
		t.Fatal("504 without a JSON error body")
	}
}

// TestClientCancelMapsTo499: a client that goes away mid-evaluation is
// recorded as the nginx-convention 499, not blamed on the query (400)
// or the server (500).
func TestClientCancelMapsTo499(t *testing.T) {
	defer faults.Reset()
	block := make(chan struct{})
	defer close(block)
	faults.Activate(engine.SiteEvaluate, faults.Fault{Block: block, Times: 1})

	s := testServerConfigured(t, soi.Config{Workers: 1, CacheSize: -1}, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/api/streets?keywords=shop&k=2", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(rec, req)
		close(done)
	}()
	waitUntil(t, func() bool { return faults.Visits(engine.SiteEvaluate) >= 1 })
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not return after client cancellation")
	}
	if rec.Code != httperr.StatusClientClosedRequest {
		t.Fatalf("status = %d, want 499\n%s", rec.Code, rec.Body.String())
	}
}

// serverRemoteQuerier adapts an in-process partitioned world to
// shard.RemoteQuerier with per-shard kill switches, so the remote
// serving surface is testable without sockets.
type serverRemoteQuerier struct {
	w    *shard.World
	dead map[int]bool
}

func (f *serverRemoteQuerier) Shards() int { return len(f.w.Shards) }

func (f *serverRemoteQuerier) Bound(ctx context.Context, sh int, q core.Query) (float64, error) {
	if f.dead[sh] {
		return 0, context.DeadlineExceeded
	}
	return f.w.Shards[sh].Index.UnseenBound(q)
}

func (f *serverRemoteQuerier) Query(ctx context.Context, sh int, q core.Query) (*remote.QueryResponse, error) {
	if f.dead[sh] {
		return nil, context.DeadlineExceeded
	}
	s := f.w.Shards[sh]
	res, st, err := s.Index.SOIContext(ctx, q, core.CostAware, nil)
	if err != nil {
		return nil, err
	}
	out := &remote.QueryResponse{Shard: sh, Stats: st}
	out.UB, _ = s.Index.UnseenBound(q)
	for _, r := range res {
		r.Street = s.Streets[r.Street]
		r.BestSegment = s.Segments[r.BestSegment]
		out.Results = append(out.Results, r)
	}
	return out, nil
}

func newTestRemoteServer(t *testing.T, dead map[int]bool) (*RemoteServer, *stats.Recorder) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Tiny(7))
	if err != nil {
		t.Fatal(err)
	}
	w, err := shard.Partition(ds.Network, ds.POIs, shard.Config{Tiles: 4, Halo: 0.0012, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	rec := stats.NewRecorder()
	coord := shard.NewRemoteCoordinator(&serverRemoteQuerier{w: w, dead: dead}, w.Halo)
	return NewRemoteServer(RemoteConfig{Coordinator: coord, Recorder: rec}), rec
}

func rget(t *testing.T, s *RemoteServer, url string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]interface{}
	if len(rec.Body.Bytes()) > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("invalid JSON from %s: %v\n%s", url, err, rec.Body.String())
		}
	}
	return rec, body
}

// TestRemoteServerCleanAnswerUntagged: with every shard reachable the
// remote surface answers like the single-process one — 200, streets,
// and neither degradation field present.
func TestRemoteServerCleanAnswerUntagged(t *testing.T) {
	s, _ := newTestRemoteServer(t, nil)
	rec, body := rget(t, s, "/api/streets?keywords=shop,food&k=5&eps=0.0005")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	if _, present := body["degraded"]; present {
		t.Errorf("clean answer carries a degraded tag: %v", body)
	}
	if _, present := body["missing_shards"]; present {
		t.Errorf("clean answer carries missing_shards: %v", body)
	}
	if body["streets"] == nil {
		t.Errorf("no streets in %v", body)
	}
}

// TestRemoteServerUnavailableMapsTo503: a query that cannot reach every
// shard it needs refuses with 503 + Retry-After by default — the shared
// mapper routing the coordinator's typed unavailable error.
func TestRemoteServerUnavailableMapsTo503(t *testing.T) {
	s, _ := newTestRemoteServer(t, map[int]bool{0: true})
	rec, body := rget(t, s, "/api/streets?keywords=shop,food&k=5&eps=0.0005")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %v", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without a Retry-After hint")
	}
	msg, _ := body["error"].(string)
	if !strings.Contains(msg, "shard") {
		t.Errorf("error %q does not name the missing shards", msg)
	}
}

// TestRemoteServerPartialOptIn: ?partial=1 opts into graceful
// degradation — 200 with the degraded tag and the missing shard list,
// and the degradation counters bumped.
func TestRemoteServerPartialOptIn(t *testing.T) {
	s, rec0 := newTestRemoteServer(t, map[int]bool{0: true})
	rec, body := rget(t, s, "/api/streets?keywords=shop,food&k=5&eps=0.0005&partial=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200: %v", rec.Code, body)
	}
	if body["degraded"] != true {
		t.Fatalf("partial answer not tagged degraded: %v", body)
	}
	missing, ok := body["missing_shards"].([]interface{})
	if !ok || len(missing) == 0 {
		t.Fatalf("missing_shards absent or empty: %v", body)
	}
	snap := rec0.Snapshot()
	if snap.Remote.Degraded < 1 || snap.Remote.ShardsMissing < 1 {
		t.Errorf("degradation counters not bumped: %+v", snap.Remote)
	}
}

// TestRemoteServerValidationMapsTo400: malformed queries answer 400
// before any shard is consulted, same as the single-process surface.
func TestRemoteServerValidationMapsTo400(t *testing.T) {
	s, _ := newTestRemoteServer(t, nil)
	for _, url := range []string{
		"/api/streets?keywords=shop&k=0",          // invalid k
		"/api/streets?keywords=shop&k=abc",        // unparsable k
		"/api/streets?keywords=shop&k=5&eps=0.5",  // ε exceeds the halo
		"/api/streets?keywords=shop&k=5&eps=-0.1", // negative ε
	} {
		rec, body := rget(t, s, url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", url, rec.Code, body)
		}
	}
}
