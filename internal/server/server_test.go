package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	soi "repro"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	streets := []soi.StreetInput{
		{Name: "High St", Polyline: []soi.Point{{X: 0, Y: 0}, {X: 0.002, Y: 0}}},
		{Name: "Side St", Polyline: []soi.Point{{X: 0.002, Y: 0}, {X: 0.002, Y: 0.002}}},
	}
	var pois []soi.POIInput
	for i := 0; i < 6; i++ {
		pois = append(pois, soi.POIInput{X: 0.0003 * float64(i), Y: 0.0001, Keywords: []string{"shop"}})
	}
	pois = append(pois, soi.POIInput{X: 0.0021, Y: 0.001, Keywords: []string{"shop"}})
	photos := []soi.PhotoInput{
		{X: 0.0005, Y: 0.0001, Tags: []string{"high", "shopfront"}},
		{X: 0.0010, Y: -0.0001, Tags: []string{"high", "crowd"}},
		{X: 0.0015, Y: 0.0001, Tags: []string{"construction"}},
	}
	eng, err := soi.NewEngine(streets, pois, photos, soi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(eng)
}

func get(t *testing.T, s *Server, url string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("invalid JSON from %s: %v\n%s", url, err, rec.Body.String())
	}
	return rec, body
}

func TestStats(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if body["streets"].(float64) != 2 || body["pois"].(float64) != 7 || body["photos"].(float64) != 3 {
		t.Fatalf("body = %v", body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
}

func TestStreets(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/streets?keywords=shop&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	streets := body["streets"].([]interface{})
	if len(streets) != 2 {
		t.Fatalf("streets = %v", streets)
	}
	first := streets[0].(map[string]interface{})
	if first["Name"] != "High St" {
		t.Fatalf("top street = %v", first)
	}
}

func TestStreetsValidation(t *testing.T) {
	s := testServer(t)
	cases := []string{
		"/api/streets",                     // no keywords
		"/api/streets?keywords=shop&k=abc", // bad k
		"/api/streets?keywords=shop&eps=x", // bad eps
		"/api/streets?keywords=shop&k=0",   // invalid k
	}
	for _, url := range cases {
		rec, body := get(t, s, url)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%v)", url, rec.Code, body)
		}
		if body["error"] == "" {
			t.Errorf("%s: missing error message", url)
		}
	}
}

func TestStreetsEmptyResult(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/streets?keywords=unicorns")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if streets := body["streets"].([]interface{}); len(streets) != 0 {
		t.Fatalf("streets = %v, want empty list (not null)", streets)
	}
}

func TestDescribe(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/describe?street=High+St&k=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	if body["Street"] != "High St" {
		t.Fatalf("body = %v", body)
	}
	photos := body["Photos"].([]interface{})
	if len(photos) != 2 {
		t.Fatalf("photos = %v", photos)
	}
}

func TestDescribeErrors(t *testing.T) {
	s := testServer(t)
	if rec, _ := get(t, s, "/api/describe"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing street: status = %d", rec.Code)
	}
	if rec, _ := get(t, s, "/api/describe?street=Ghost+Road&k=2"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown street: status = %d", rec.Code)
	}
	if rec, _ := get(t, s, "/api/describe?street=High+St&k=zzz"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad k: status = %d", rec.Code)
	}
	if rec, _ := get(t, s, "/api/describe?street=High+St&lambda=nope"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad lambda: status = %d", rec.Code)
	}
	// Side St has no photos within a tiny eps.
	if rec, _ := get(t, s, "/api/describe?street=Side+St&eps=0.00001"); rec.Code != http.StatusNotFound {
		t.Errorf("no photos: status = %d", rec.Code)
	}
}

func TestTour(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/tour?keywords=shop&k=5&budget=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	stops := body["Stops"].([]interface{})
	if len(stops) < 1 {
		t.Fatalf("stops = %v", stops)
	}
	first := stops[0].(map[string]interface{})
	if first["Street"] != "High St" {
		t.Fatalf("tour start = %v", first)
	}
}

func TestTourErrors(t *testing.T) {
	s := testServer(t)
	if rec, _ := get(t, s, "/api/tour?keywords=shop"); rec.Code != http.StatusBadRequest {
		t.Errorf("zero budget: status = %d", rec.Code)
	}
	if rec, _ := get(t, s, "/api/tour?budget=1"); rec.Code != http.StatusBadRequest {
		t.Errorf("no keywords: status = %d", rec.Code)
	}
	if rec, _ := get(t, s, "/api/tour?keywords=unicorns&budget=1"); rec.Code != http.StatusBadRequest {
		t.Errorf("no matches: status = %d", rec.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	for _, url := range []string{"/api/stats", "/api/streets", "/api/describe", "/api/tour"} {
		req := httptest.NewRequest(http.MethodPost, url, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status = %d", url, rec.Code)
		}
	}
}

func TestUnknownPath(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/nope", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d", rec.Code)
	}
}
