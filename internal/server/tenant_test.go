package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	soi "repro"
	"repro/internal/faults"
)

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for condition")
		}
		time.Sleep(time.Millisecond)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func stringsReader(s string) io.Reader { return strings.NewReader(s) }

// writeTenantSnapshots builds a directory of small city snapshots whose
// top street names encode the city, so responses prove routing isolation.
func writeTenantSnapshots(t *testing.T, names ...string) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range names {
		streets := []soi.StreetInput{
			{Name: name + " High St", Polyline: []soi.Point{{X: 0, Y: 0}, {X: 0.002, Y: 0}}},
			{Name: name + " Side St", Polyline: []soi.Point{{X: 0.002, Y: 0}, {X: 0.002, Y: 0.002}}},
		}
		var pois []soi.POIInput
		for i := 0; i < 6; i++ {
			pois = append(pois, soi.POIInput{X: 0.0003 * float64(i), Y: 0.0001, Keywords: []string{"shop"}})
		}
		eng, err := soi.NewEngine(streets, pois, nil, soi.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.WriteSnapshot(filepath.Join(dir, name+".soi")); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func newTestTenantServer(t *testing.T, cfg TenantConfig) *TenantServer {
	t.Helper()
	ts, err := NewTenantServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := ts.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return ts
}

func tget(t *testing.T, ts *TenantServer, url string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	ts.ServeHTTP(rec, req)
	var body map[string]interface{}
	if len(rec.Body.Bytes()) > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("invalid JSON from %s: %v\n%s", url, err, rec.Body.String())
		}
	}
	return rec, body
}

// topStreetName extracts the first ranked street name from a
// /api/{city}/streets response body.
func topStreetName(t *testing.T, body map[string]interface{}) string {
	t.Helper()
	results, ok := body["streets"].([]interface{})
	if !ok || len(results) == 0 {
		t.Fatalf("no streets in %v", body)
	}
	first := results[0].(map[string]interface{})
	return first["Name"].(string)
}

func TestTenantRoutingIsolation(t *testing.T) {
	dir := writeTenantSnapshots(t, "berlin", "vienna")
	ts := newTestTenantServer(t, TenantConfig{Dir: dir})

	for _, city := range []string{"berlin", "vienna"} {
		rec, body := tget(t, ts, "/api/"+city+"/streets?keywords=shop&k=1&eps=0.0005")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", city, rec.Code, rec.Body.String())
		}
		if got := topStreetName(t, body); got != city+" High St" {
			t.Errorf("tenant %s answered %q — cross-tenant leak", city, got)
		}
	}

	rec, _ := tget(t, ts, "/api/atlantis/streets?keywords=shop&k=1&eps=0.0005")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant: status %d, want 404", rec.Code)
	}
}

func TestTenantListEndpoint(t *testing.T) {
	dir := writeTenantSnapshots(t, "berlin", "vienna", "london")
	ts := newTestTenantServer(t, TenantConfig{Dir: dir, MaxOpen: 2})

	rec, body := tget(t, ts, "/api/tenants")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	names := body["tenants"].([]interface{})
	if len(names) != 3 {
		t.Fatalf("tenants = %v, want 3 entries", names)
	}
	if body["resident"] == nil || len(body["resident"].([]interface{})) != 0 {
		t.Errorf("resident should start empty, got %v", body["resident"])
	}

	tget(t, ts, "/api/berlin/streets?keywords=shop&k=1&eps=0.0005")
	_, body = tget(t, ts, "/api/tenants")
	if got := body["resident"].([]interface{}); len(got) != 1 || got[0] != "berlin" {
		t.Errorf("resident = %v, want [berlin]", got)
	}
}

// TestTenantLRUEviction: with MaxOpen 2, touching a third city evicts
// the least recently used engine, and the evicted city still answers on
// the next request (a reload, bit-identical because the snapshot is
// immutable).
func TestTenantLRUEviction(t *testing.T) {
	dir := writeTenantSnapshots(t, "berlin", "vienna", "london")
	ts := newTestTenantServer(t, TenantConfig{Dir: dir, MaxOpen: 2})

	query := "/streets?keywords=shop&k=1&eps=0.0005"
	tget(t, ts, "/api/berlin"+query)
	tget(t, ts, "/api/vienna"+query)
	tget(t, ts, "/api/london"+query) // must evict berlin (LRU)

	_, body := tget(t, ts, "/api/tenants")
	resident := fmt.Sprint(body["resident"])
	if resident != "[london vienna]" {
		t.Errorf("resident after eviction = %v, want [london vienna]", resident)
	}

	rec, body := tget(t, ts, "/api/berlin"+query)
	if rec.Code != http.StatusOK {
		t.Fatalf("evicted tenant did not reload: %d", rec.Code)
	}
	if got := topStreetName(t, body); got != "berlin High St" {
		t.Errorf("reloaded tenant answered %q", got)
	}
}

// TestTenantAdmissionQuota: the per-tenant inflight cap sheds with 503 +
// Retry-After while another tenant keeps serving — quota is per tenant,
// not global.
func TestTenantAdmissionQuota(t *testing.T) {
	defer faults.Reset()
	dir := writeTenantSnapshots(t, "berlin", "vienna")
	ts := newTestTenantServer(t, TenantConfig{Dir: dir, MaxInflight: 1})

	// Park one berlin request inside the engine evaluation so the quota
	// slot stays held.
	block := make(chan struct{})
	faults.Activate("engine.evaluate", faults.Fault{Block: block, Times: 1})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec, _ := tget(t, ts, "/api/berlin/streets?keywords=shop&k=1&eps=0.0005")
		if rec.Code != http.StatusOK {
			t.Errorf("parked request finished %d", rec.Code)
		}
		close(release)
	}()
	// Wait until the parked request holds the quota slot.
	waitUntil(t, func() bool { return faults.Visits("engine.evaluate") >= 1 })

	rec, _ := tget(t, ts, "/api/berlin/streets?keywords=shop&k=2&eps=0.0005")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("over-quota berlin request: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After hint")
	}
	// The sibling tenant is untouched by berlin's quota.
	rec, _ = tget(t, ts, "/api/vienna/streets?keywords=shop&k=1&eps=0.0005")
	if rec.Code != http.StatusOK {
		t.Errorf("vienna starved by berlin quota: status %d", rec.Code)
	}

	close(block)
	<-release
	wg.Wait()
	rec, _ = tget(t, ts, "/api/berlin/streets?keywords=shop&k=3&eps=0.0005")
	if rec.Code != http.StatusOK {
		t.Errorf("berlin did not recover after quota release: %d", rec.Code)
	}
}

// TestTenantPanicIsolation: a panicking evaluation in one tenant maps
// to 500 there while other tenants keep serving.
func TestTenantPanicIsolation(t *testing.T) {
	defer faults.Reset()
	dir := writeTenantSnapshots(t, "berlin", "vienna")
	ts := newTestTenantServer(t, TenantConfig{Dir: dir})

	faults.Activate("engine.evaluate", faults.Fault{Panic: true, PanicValue: "tenant crash", Times: 1})
	rec, _ := tget(t, ts, "/api/berlin/streets?keywords=shop&k=1&eps=0.0005")
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panicking tenant: status %d, want 500", rec.Code)
	}
	rec, body := tget(t, ts, "/api/vienna/streets?keywords=shop&k=1&eps=0.0005")
	if rec.Code != http.StatusOK {
		t.Errorf("vienna down after berlin panic: status %d", rec.Code)
	}
	if got := topStreetName(t, body); got != "vienna High St" {
		t.Errorf("vienna answered %q", got)
	}
	// And berlin itself recovers on the next request.
	rec, _ = tget(t, ts, "/api/berlin/streets?keywords=shop&k=1&eps=0.0005")
	if rec.Code != http.StatusOK {
		t.Errorf("berlin did not recover after panic: %d", rec.Code)
	}
}

// TestTenantMetricsAndBatch exercises the path rewrite for the
// non-/api endpoints and the batch POST through the tenant router.
func TestTenantMetricsAndBatch(t *testing.T) {
	dir := writeTenantSnapshots(t, "berlin")
	ts := newTestTenantServer(t, TenantConfig{Dir: dir})

	req := httptest.NewRequest(http.MethodGet, "/api/berlin/metrics", nil)
	rec := httptest.NewRecorder()
	ts.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !json.Valid([]byte(`1`)) {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if body := rec.Body.String(); !contains(body, "soi_") {
		t.Errorf("metrics body lacks soi_ namespace:\n%.200s", body)
	}

	payload := `{"queries":[{"keywords":["shop"],"k":1,"eps":0.0005}]}`
	req = httptest.NewRequest(http.MethodPost, "/api/berlin/streets/batch", stringsReader(payload))
	rec = httptest.NewRecorder()
	ts.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []struct {
			Streets []struct {
				Name string `json:"Name"`
			} `json:"streets"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("batch body: %v", err)
	}
	if len(out.Results) != 1 || len(out.Results[0].Streets) == 0 ||
		out.Results[0].Streets[0].Name != "berlin High St" {
		t.Errorf("batch answered %+v", out)
	}
}

func TestNewTenantServerValidation(t *testing.T) {
	if _, err := NewTenantServer(TenantConfig{Dir: t.TempDir()}); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := NewTenantServer(TenantConfig{Dir: "/nonexistent-path-xyz"}); err == nil {
		t.Error("missing dir accepted")
	}
	dir := writeTenantSnapshots(t, "berlin")
	if _, err := NewTenantServer(TenantConfig{Dir: dir, MaxOpen: -1}); err == nil {
		t.Error("negative MaxOpen accepted")
	}
	if _, err := NewTenantServer(TenantConfig{Dir: dir, MaxInflight: -1}); err == nil {
		t.Error("negative MaxInflight accepted")
	}
}
