package server

// Tests for the POST /api/pois write endpoint against a live engine:
// appends land in the delta log, an optional publish folds them into a
// fresh epoch visible to subsequent queries, and a read-only deployment
// answers 501.

import (
	"net/http"
	"strings"
	"testing"

	soi "repro"
)

func testLiveServer(t *testing.T, cfg soi.LiveConfig) *Server {
	t.Helper()
	streets := []soi.StreetInput{
		{Name: "High St", Polyline: []soi.Point{{X: 0, Y: 0}, {X: 0.002, Y: 0}}},
		{Name: "Side St", Polyline: []soi.Point{{X: 0, Y: 0.005}, {X: 0.002, Y: 0.005}}},
	}
	var pois []soi.POIInput
	for i := 0; i < 6; i++ {
		pois = append(pois, soi.POIInput{X: 0.0003 * float64(i), Y: 0.0001, Keywords: []string{"shop"}})
	}
	photos := []soi.PhotoInput{
		{X: 0.0005, Y: 0.0001, Tags: []string{"high", "shopfront"}},
	}
	eng, err := soi.NewLiveEngine(streets, pois, photos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return New(eng)
}

func TestPOIsAppendAndPublish(t *testing.T) {
	s := testLiveServer(t, soi.LiveConfig{})

	// Batch append without publish: deltas stay pending, epoch unchanged.
	rec, body := post(t, s, "/api/pois", `{"pois":[
		{"x":0.0004,"y":0.0051,"keywords":["museum"]},
		{"x":0.0008,"y":0.0049,"keywords":["museum"]}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	if body["added"].(float64) != 2 || body["pending"].(float64) != 2 ||
		body["epoch"].(float64) != 1 || body["published"].(bool) {
		t.Fatalf("append response = %v", body)
	}
	if rec, body := get(t, s, "/api/streets?keywords=museum"); rec.Code != http.StatusOK ||
		len(body["streets"].([]interface{})) != 0 {
		t.Fatalf("unpublished deltas visible: %v", body)
	}

	// Single inline POI with publish: everything pending folds.
	rec, body = post(t, s, "/api/pois", `{"x":0.0012,"y":0.005,"keywords":["museum"],"publish":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	if body["added"].(float64) != 1 || body["pending"].(float64) != 0 ||
		body["epoch"].(float64) != 2 || !body["published"].(bool) {
		t.Fatalf("publish response = %v", body)
	}
	rec, qbody := get(t, s, "/api/streets?keywords=museum")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, qbody)
	}
	streets := qbody["streets"].([]interface{})
	if len(streets) != 1 || streets[0].(map[string]interface{})["Name"] != "Side St" {
		t.Fatalf("published POIs not served: %v", streets)
	}
}

func TestPOIsValidation(t *testing.T) {
	s := testLiveServer(t, soi.LiveConfig{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"empty batch", `{"pois":[]}`, http.StatusBadRequest},
		{"bad json", `{"pois":`, http.StatusBadRequest},
		{"missing keywords", `{"pois":[{"x":1,"y":1}]}`, http.StatusBadRequest},
		{"out of bounds", `{"x":99,"y":99,"keywords":["shop"]}`, http.StatusOK},
	}
	for _, c := range cases {
		rec, body := post(t, s, "/api/pois", c.body)
		if rec.Code != c.status {
			t.Errorf("%s: status = %d, want %d (%v)", c.name, rec.Code, c.status, body)
		}
	}

	// Method and size guards.
	rec, _ := get(t, s, "/api/pois")
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("GET /api/pois: status %d Allow %q", rec.Code, rec.Header().Get("Allow"))
	}
	big := `{"pois":[` + strings.Repeat(`{"x":0,"y":0,"keywords":["shop"]},`, 40) + `{"x":0,"y":0,"keywords":["shop"]}]}`
	small := NewWithConfig(s.engine, Config{MaxBatchBytes: 64})
	if rec, _ := post(t, small, "/api/pois", big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rec.Code)
	}
}

func TestPOIsOnStaticEngineIs501(t *testing.T) {
	s := testServer(t)
	rec, body := post(t, s, "/api/pois", `{"x":0,"y":0,"keywords":["shop"]}`)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("static engine write: status %d body %v, want 501", rec.Code, body)
	}
}
