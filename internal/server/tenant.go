package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	soi "repro"
)

// DefaultMaxOpenTenants bounds how many snapshot engines stay resident
// when TenantConfig leaves MaxOpen zero.
const DefaultMaxOpenTenants = 4

// DefaultTenantInflight is the per-tenant admission quota when
// TenantConfig leaves MaxInflight zero: requests beyond it are shed
// with 503 before touching the tenant's engine, so one hot city cannot
// starve the others even when the shared engine queue would admit it.
const DefaultTenantInflight = 32

// TenantConfig tunes the multi-tenant router.
type TenantConfig struct {
	// Dir is scanned (non-recursively) for *.soi snapshots; each file's
	// base name becomes a tenant ("berlin.soi" → /api/berlin/...).
	Dir string
	// MaxOpen caps resident engines; the least recently used idle
	// engine is evicted (and its mmap released once the last in-flight
	// request finishes) when a new tenant must be admitted. 0 means
	// DefaultMaxOpenTenants.
	MaxOpen int
	// MaxInflight is the per-tenant admission quota. 0 means
	// DefaultTenantInflight.
	MaxInflight int
	// Engine configures each tenant's engine (workers, cache, queue).
	Engine soi.Config
	// HTTP configures each tenant's HTTP layer (batch body cap).
	HTTP Config
}

// tenant is one resident snapshot engine plus its routing state.
type tenant struct {
	name string
	eng  *soi.Engine
	srv  *Server
	// refs counts in-flight requests; lastUse orders LRU eviction.
	refs    int
	lastUse int64
	// evicted marks a tenant dropped from the resident set while
	// requests were still in flight; the last release closes it. Close
	// unmaps the snapshot, so it must never run with refs > 0.
	evicted  bool
	inflight chan struct{}
}

// TenantServer routes /api/{city}/... over an LRU of mmap-loaded
// snapshot engines with per-tenant admission quotas.
type TenantServer struct {
	cfg   TenantConfig
	known map[string]string // tenant name → snapshot path
	mux   *http.ServeMux

	mu    sync.Mutex
	open  map[string]*tenant
	clock int64
}

// NewTenantServer scans cfg.Dir for snapshots and builds the router.
// Engines load lazily on first request; the scan only fixes the tenant
// set, so adding a snapshot later requires a new server.
func NewTenantServer(cfg TenantConfig) (*TenantServer, error) {
	if cfg.MaxOpen == 0 {
		cfg.MaxOpen = DefaultMaxOpenTenants
	}
	if cfg.MaxOpen < 1 {
		return nil, fmt.Errorf("server: MaxOpen %d < 1", cfg.MaxOpen)
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultTenantInflight
	}
	if cfg.MaxInflight < 1 {
		return nil, fmt.Errorf("server: MaxInflight %d < 1", cfg.MaxInflight)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("server: scanning tenant dir: %w", err)
	}
	known := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".soi") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".soi")
		known[name] = filepath.Join(cfg.Dir, e.Name())
	}
	if len(known) == 0 {
		return nil, fmt.Errorf("server: no *.soi snapshots in %s", cfg.Dir)
	}
	ts := &TenantServer{
		cfg:   cfg,
		known: known,
		mux:   http.NewServeMux(),
		open:  make(map[string]*tenant),
	}
	ts.mux.HandleFunc("/api/tenants", ts.handleTenants)
	ts.mux.HandleFunc("/api/{city}/{rest...}", ts.handleTenant)
	return ts, nil
}

// ServeHTTP implements http.Handler.
func (ts *TenantServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ts.mux.ServeHTTP(w, r)
}

// Tenants returns the sorted tenant names the server routes.
func (ts *TenantServer) Tenants() []string {
	names := make([]string, 0, len(ts.known))
	for n := range ts.known {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close shuts every resident engine. It must not be called while
// requests are in flight.
func (ts *TenantServer) Close() error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var first error
	for name, t := range ts.open {
		if err := t.eng.Close(); err != nil && first == nil {
			first = err
		}
		delete(ts.open, name)
	}
	return first
}

// handleTenants lists the routable and currently resident tenants.
func (ts *TenantServer) handleTenants(w http.ResponseWriter, r *http.Request) {
	ts.mu.Lock()
	resident := make([]string, 0, len(ts.open))
	for n := range ts.open {
		resident = append(resident, n)
	}
	ts.mu.Unlock()
	sort.Strings(resident)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenants":  ts.Tenants(),
		"resident": resident,
		"max_open": ts.cfg.MaxOpen,
	})
}

// handleTenant resolves the tenant, applies its admission quota, and
// forwards the request to the tenant's single-city handler set with the
// city prefix stripped.
func (ts *TenantServer) handleTenant(w http.ResponseWriter, r *http.Request) {
	city := r.PathValue("city")
	if _, ok := ts.known[city]; !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: unknown tenant %q", city))
		return
	}
	t, err := ts.acquire(city)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer ts.release(t)

	// Per-tenant admission quota, layered in front of the engine's own
	// shedder: over-quota requests never enter the tenant's queue.
	select {
	case t.inflight <- struct{}{}:
		defer func() { <-t.inflight }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("server: tenant %q over admission quota", city))
		return
	}

	rest := r.PathValue("rest")
	r2 := r.Clone(r.Context())
	switch {
	case rest == "metrics":
		r2.URL.Path = "/metrics"
	case strings.HasPrefix(rest, "debug/pprof"):
		r2.URL.Path = "/" + rest
	default:
		r2.URL.Path = "/api/" + rest
	}
	t.srv.ServeHTTP(w, r2)
}

// acquire resolves a tenant, loading its engine on first use and
// evicting the least recently used idle engine when the resident set is
// full. The returned tenant holds a reference; callers must release it.
func (ts *TenantServer) acquire(city string) (*tenant, error) {
	path, ok := ts.known[city]
	if !ok {
		return nil, fmt.Errorf("server: unknown tenant %q", city)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.clock++
	if t, ok := ts.open[city]; ok {
		t.refs++
		t.lastUse = ts.clock
		return t, nil
	}
	for len(ts.open) >= ts.cfg.MaxOpen {
		lru := ts.lruLocked()
		if lru == nil {
			break // every resident tenant is mid-request; admit over cap
		}
		lru.evicted = true
		delete(ts.open, lru.name)
		if lru.refs == 0 {
			lru.eng.Close()
		}
	}
	eng, err := soi.NewEngineFromSnapshot(path, ts.cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("server: loading tenant %q: %w", city, err)
	}
	t := &tenant{
		name:     city,
		eng:      eng,
		srv:      NewWithConfig(eng, ts.cfg.HTTP),
		refs:     1,
		lastUse:  ts.clock,
		inflight: make(chan struct{}, ts.cfg.MaxInflight),
	}
	ts.open[city] = t
	return t, nil
}

// lruLocked returns the least recently used tenant with no requests in
// flight, or nil when all resident tenants are busy.
func (ts *TenantServer) lruLocked() *tenant {
	var lru *tenant
	for _, t := range ts.open {
		if t.refs > 0 {
			continue
		}
		if lru == nil || t.lastUse < lru.lastUse {
			lru = t
		}
	}
	return lru
}

// release drops a request's reference; the last reference of an evicted
// tenant closes its engine (unmapping the snapshot).
func (ts *TenantServer) release(t *tenant) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t.refs--
	if t.evicted && t.refs == 0 {
		t.eng.Close()
	}
	// A burst can admit tenants over MaxOpen when every resident engine
	// is mid-request; shrink back to the cap as requests drain, oldest
	// idle engines first. Without this the over-cap set would persist
	// until some non-resident tenant forces an eviction — forever, if
	// every tenant is already resident.
	for len(ts.open) > ts.cfg.MaxOpen {
		lru := ts.lruLocked()
		if lru == nil {
			return // everything still busy; the next release retries
		}
		lru.evicted = true
		delete(ts.open, lru.name)
		lru.eng.Close() // lruLocked only returns tenants with refs == 0
	}
}
