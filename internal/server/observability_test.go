package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// post issues a POST with a JSON body and decodes the JSON response.
func post(t *testing.T, s *Server, url, body string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON from %s: %v\n%s", url, err, rec.Body.String())
	}
	return rec, out
}

// TestStatsSchema pins the /api/stats payload shape: the original
// dataset keys plus the stats and runtime observability sections. The
// key sets are a contract — dashboards select on them — so additions
// are fine but renames and removals must fail here.
func TestStatsSchema(t *testing.T) {
	s := testServer(t)
	// Evaluate one query first so the engine section carries live data.
	if rec, _ := get(t, s, "/api/streets?keywords=shop&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("warm-up query: status = %d", rec.Code)
	}
	rec, body := get(t, s, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	for _, key := range []string{"streets", "pois", "photos", "stats", "runtime"} {
		if _, ok := body[key]; !ok {
			t.Errorf("missing top-level key %q", key)
		}
	}
	st, ok := body["stats"].(map[string]interface{})
	if !ok {
		t.Fatalf("stats section = %T", body["stats"])
	}
	for _, key := range []string{"core", "engine", "diversify"} {
		if _, ok := st[key]; !ok {
			t.Errorf("missing stats section %q", key)
		}
	}
	core := st["core"].(map[string]interface{})
	for _, key := range []string{
		"evaluations", "sl1_cells_popped", "sl2_segments_popped", "sl3_segments_popped",
		"filter_iterations", "cell_visits", "segments_seen", "segments_final",
		"mass_cache_hits", "mass_cache_misses", "refine_drained",
		"build_lists_ns", "filter_ns", "refine_ns",
	} {
		if _, ok := core[key]; !ok {
			t.Errorf("missing core counter %q", key)
		}
	}
	if core["evaluations"].(float64) < 1 {
		t.Errorf("core evaluations = %v after a served query, want ≥ 1", core["evaluations"])
	}
	eng := st["engine"].(map[string]interface{})
	for _, key := range []string{"queries", "result_cache_hits", "result_cache_misses",
		"dedup_joins", "query_latency", "queue_wait", "busy_ns"} {
		if _, ok := eng[key]; !ok {
			t.Errorf("missing engine counter %q", key)
		}
	}
	if lat := eng["query_latency"].(map[string]interface{}); lat["count"].(float64) < 1 {
		t.Errorf("query_latency count = %v after a served query, want ≥ 1", lat["count"])
	}
	rt := body["runtime"].(map[string]interface{})
	for _, key := range []string{"goroutines", "gomaxprocs", "num_cpu", "heap_alloc_bytes", "heap_sys_bytes", "num_gc"} {
		if _, ok := rt[key]; !ok {
			t.Errorf("missing runtime key %q", key)
		}
	}
	if rt["goroutines"].(float64) < 1 {
		t.Errorf("goroutines = %v", rt["goroutines"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	if rec, _ := get(t, s, "/api/streets?keywords=shop&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("warm-up query: status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE soi_engine_queries_total counter",
		"soi_engine_queries_total 1",
		"soi_core_sl1_cells_popped_total",
		"soi_engine_query_latency_seconds_bucket{le=\"+Inf\"} 1",
		"soi_runtime_goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// POST must be rejected like the JSON endpoints.
	req = httptest.NewRequest(http.MethodPost, "/metrics", strings.NewReader(""))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status = %d", rec.Code)
	}
}

func TestPprofWired(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline: status = %d", rec.Code)
	}
}

// TestTraceRoundTrip covers the ?trace=1 opt-in on /api/streets: the
// trace appears exactly when asked for and carries the per-stage
// counters of a real evaluation.
func TestTraceRoundTrip(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/streets?keywords=shop&k=5&trace=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	trace, ok := body["trace"].(map[string]interface{})
	if !ok {
		t.Fatalf("trace = %T (%v), want object", body["trace"], body["trace"])
	}
	for _, key := range []string{
		"cached", "build_lists_us", "filter_us", "refine_us",
		"sl1_cells_popped", "sl2_segments_popped", "sl3_segments_popped",
		"filter_iterations", "cell_visits", "segments_seen", "segments_final",
		"refine_drained", "mass_cache_hits", "total_segments", "total_cells",
	} {
		if _, ok := trace[key]; !ok {
			t.Errorf("trace missing key %q", key)
		}
	}
	if trace["cached"].(bool) {
		t.Error("first evaluation reported cached=true")
	}
	if trace["segments_final"].(float64) < 1 || trace["total_segments"].(float64) < 1 {
		t.Errorf("trace carries no work: %v", trace)
	}

	// The same query again is answered from the result cache and the
	// trace must say so.
	_, body = get(t, s, "/api/streets?keywords=shop&k=5&trace=1")
	if trace := body["trace"].(map[string]interface{}); !trace["cached"].(bool) {
		t.Error("repeat evaluation reported cached=false, want a result-cache hit")
	}

	// Without the parameter (or with a falsy value) no trace is emitted.
	for _, url := range []string{
		"/api/streets?keywords=shop&k=5",
		"/api/streets?keywords=shop&k=5&trace=0",
		"/api/streets?keywords=shop&k=5&trace=false",
	} {
		_, body := get(t, s, url)
		if _, ok := body["trace"]; ok {
			t.Errorf("%s: unexpected trace in response", url)
		}
	}
}

// TestBatchErrors is the table of /api/streets/batch failure modes.
func TestBatchErrors(t *testing.T) {
	s := testServer(t)
	oversized := `{"queries":[` + strings.Repeat(`{"keywords":["shop"],"k":1},`, 1024) + `{"keywords":["shop"],"k":1}]}`
	cases := []struct {
		name, body string
		status     int
		errSubstr  string
	}{
		{"malformed JSON", `{"queries":[`, http.StatusBadRequest, "decoding request"},
		{"not JSON at all", `hello`, http.StatusBadRequest, "decoding request"},
		{"empty body object", `{}`, http.StatusBadRequest, "no queries"},
		{"empty query list", `{"queries":[]}`, http.StatusBadRequest, "no queries"},
		{"oversized batch", oversized, http.StatusBadRequest, "batch limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec, body := post(t, s, "/api/streets/batch", c.body)
			if rec.Code != c.status {
				t.Fatalf("status = %d, want %d (%v)", rec.Code, c.status, body)
			}
			msg, _ := body["error"].(string)
			if !strings.Contains(msg, c.errSubstr) {
				t.Fatalf("error = %q, want substring %q", msg, c.errSubstr)
			}
		})
	}
	// GET is not a valid method for the batch endpoint.
	if rec, _ := get(t, s, "/api/streets/batch"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET batch: status = %d", rec.Code)
	}
}

// TestBatchMixedResults covers per-entry isolation: one request mixing a
// valid query, an unknown-keyword query and an invalid query must
// succeed per-entry and fail per-entry, in request order.
func TestBatchMixedResults(t *testing.T) {
	s := testServer(t)
	body := `{"queries":[
		{"keywords":["shop"],"k":5},
		{"keywords":["unicorns"],"k":5},
		{"k":5}
	]}`
	rec, out := post(t, s, "/api/streets/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	results := out["results"].([]interface{})
	if len(results) != 3 {
		t.Fatalf("results = %d entries, want 3", len(results))
	}
	first := results[0].(map[string]interface{})
	if errMsg, _ := first["error"].(string); errMsg != "" {
		t.Fatalf("valid query failed: %v", errMsg)
	}
	if streets := first["streets"].([]interface{}); len(streets) == 0 {
		t.Error("valid query returned no streets")
	}
	second := results[1].(map[string]interface{})
	if streets, ok := second["streets"].([]interface{}); !ok || len(streets) != 0 {
		t.Errorf("unknown keywords: streets = %v, want empty list", second["streets"])
	}
	third := results[2].(map[string]interface{})
	if errMsg, _ := third["error"].(string); errMsg == "" {
		t.Error("keyword-less query succeeded, want per-entry error")
	}
}

func TestBatchTrace(t *testing.T) {
	s := testServer(t)
	body := `{"queries":[{"keywords":["shop"],"k":5},{"keywords":["shop"],"k":5}]}`
	rec, out := post(t, s, "/api/streets/batch?trace=1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	results := out["results"].([]interface{})
	for i, r := range results {
		entry := r.(map[string]interface{})
		trace, ok := entry["trace"].(map[string]interface{})
		if !ok {
			t.Fatalf("entry %d missing trace: %v", i, entry)
		}
		if trace["segments_final"].(float64) < 1 {
			t.Errorf("entry %d trace carries no work: %v", i, trace)
		}
	}
	// Identical queries coalesce into one evaluation; with the trace they
	// share, both entries must report the same counters.
	if fmt.Sprint(results[0]) != fmt.Sprint(results[1]) {
		t.Errorf("coalesced entries diverge:\n%v\n%v", results[0], results[1])
	}
	// Without trace=1 no entry carries a trace.
	_, out = post(t, s, "/api/streets/batch", body)
	for i, r := range out["results"].([]interface{}) {
		if _, ok := r.(map[string]interface{})["trace"]; ok {
			t.Errorf("entry %d has unexpected trace", i)
		}
	}
}
