package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	soi "repro"
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/stats"
)

// RemoteConfig wires a RemoteServer.
type RemoteConfig struct {
	// Coordinator is the remote scatter-gather coordinator (required).
	Coordinator *shard.RemoteCoordinator
	// Recorder, when non-nil, backs /metrics and the stats section of
	// /api/stats, and receives the degradation counters
	// (soi_remote_degraded, soi_remote_shards_missing).
	Recorder *stats.Recorder
	// Breakers, when non-nil, reports the per-replica breaker states
	// surfaced in /api/stats (remote.Client.BreakerStates).
	Breakers func() [][]string
}

// RemoteServer serves k-SOI queries over shards running in other
// processes — the HTTP face of shard.RemoteCoordinator. The endpoint
// contract mirrors the single-process /api/streets, with one addition:
// availability is explicit. A query that cannot reach every shard it
// needs answers 503 (Retry-After: 1) by default; with ?partial=1 the
// client opts into graceful degradation and receives the merged top-k
// of the shards that answered, tagged "degraded": true with the
// "missing_shards" list. A non-degraded answer carries neither field
// and is bit-identical to the single-process oracle.
type RemoteServer struct {
	coord    *shard.RemoteCoordinator
	rec      *stats.Recorder
	breakers func() [][]string
	mux      *http.ServeMux
}

// NewRemoteServer wires the handler set around a remote coordinator.
func NewRemoteServer(cfg RemoteConfig) *RemoteServer {
	s := &RemoteServer{
		coord:    cfg.Coordinator,
		rec:      cfg.Recorder,
		breakers: cfg.Breakers,
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleHealthz) // a coordinator holds no index: up == ready
	s.mux.HandleFunc("/api/streets", s.handleStreets)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *RemoteServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *RemoteServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// remoteStreetsResponse extends the /api/streets payload with the
// degradation tags. Both are omitted on clean answers, so a
// non-degraded response is byte-identical in shape to the
// single-process one.
type remoteStreetsResponse struct {
	Streets       []soi.Street `json:"streets"`
	Degraded      bool         `json:"degraded,omitempty"`
	MissingShards []int        `json:"missing_shards,omitempty"`
}

// partialWanted reports whether the request opted into degraded
// answers.
func partialWanted(r *http.Request) bool {
	switch r.URL.Query().Get("partial") {
	case "", "0", "false":
		return false
	}
	return true
}

func (s *RemoteServer) handleStreets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	k, err := queryInt(r, "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	eps, err := queryFloat(r, "eps", soi.DefaultCellSize)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q := core.Query{Keywords: queryKeywords(r), K: k, Epsilon: eps}
	res, gather, err := s.coord.TopK(r.Context(), q, partialWanted(r))
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	if gather.Degraded && s.rec != nil {
		s.rec.Remote.Degraded.Add(1)
		s.rec.Remote.ShardsMissing.Add(int64(len(gather.MissingShards)))
	}
	resp := remoteStreetsResponse{
		Streets:       make([]soi.Street, len(res)),
		Degraded:      gather.Degraded,
		MissingShards: gather.MissingShards,
	}
	for i, sr := range res {
		resp.Streets[i] = soi.Street{Name: sr.Name, Interest: sr.Interest, Mass: sr.Mass}
	}
	writeJSON(w, http.StatusOK, resp)
}

// remoteStatsResponse is the coordinator's /api/stats payload: the
// shard fan-out shape, the live counters, and every replica breaker's
// state.
type remoteStatsResponse struct {
	Shards   int             `json:"shards"`
	Halo     float64         `json:"halo"`
	Breakers [][]string      `json:"breakers,omitempty"`
	Stats    *stats.Snapshot `json:"stats,omitempty"`
	Runtime  runtimeSnapshot `json:"runtime"`
}

func (s *RemoteServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	resp := remoteStatsResponse{
		Shards:  s.coord.ShardCount(),
		Halo:    s.coord.Halo(),
		Runtime: readRuntime(),
	}
	if s.breakers != nil {
		resp.Breakers = s.breakers()
	}
	if s.rec != nil {
		snap := s.rec.Snapshot()
		resp.Stats = &snap
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *RemoteServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.rec != nil {
		_ = s.rec.Snapshot().WritePrometheus(w)
	}
	rt := readRuntime()
	fmt.Fprintf(w, "# TYPE soi_runtime_goroutines gauge\nsoi_runtime_goroutines %d\n", rt.Goroutines)
	fmt.Fprintf(w, "# TYPE soi_remote_shards gauge\nsoi_remote_shards %s\n", strconv.Itoa(s.coord.ShardCount()))
}
