// Package server exposes the SOI engine over HTTP for online exploration
// — the usage mode the paper motivates ("allowing for online discovery
// and exploration of interesting parts of the road network").
//
// Endpoints (all GET, all JSON):
//
//	/api/stats                         dataset summary + engine/runtime observability counters
//	/api/streets?keywords=a,b&k=10&eps=0.0005[&trace=1]
//	/api/describe?street=NAME&k=4&lambda=0.5&w=0.5&rho=0.0001&eps=0.0005
//	/api/tour?keywords=a,b&k=10&eps=0.0005&budget=0.05
//
// plus two POST endpoints — one evaluating many k-SOI queries
// concurrently over the shared index, one appending POIs to a live
// engine's ingest log:
//
//	/api/streets/batch[?trace=1]       {"queries":[{"keywords":["a"],"k":10,"eps":0.0005}, ...]}
//	/api/pois                          {"x":..,"y":..,"keywords":["a"]} or {"pois":[...],"publish":true}
//
// and the trajectory query family (POST, JSON):
//
//	/api/routes/topk                   {"src":[x,y],"dst":[x,y],"keywords":["a"],"k":3,"budget":0.05,"alpha":0}
//	/api/trajectories/soi              {"traces":[[[x,y],...],...],"keywords":["a"],"k":10,"radius":0.0003}
//
// With trace=1 every k-SOI answer carries a per-stage trace: the phase
// timings of the paper's Figure 4 and the accessed-cell/segment counts
// of its Section 6 measurements.
//
// Observability is additionally exposed in scraper- and profiler-native
// forms:
//
//	/metrics                           Prometheus text exposition (soi_* namespace)
//	/debug/pprof/                      net/http/pprof profiles
//
// Handlers run concurrently (one goroutine per request, per net/http)
// against one shared engine; the engine's executor bounds how many k-SOI
// evaluations are in flight and caches repeated queries.
//
// The query path is robust under load and failure: every k-SOI handler
// threads the request context into the engine, so a client that goes
// away cancels its evaluation at the next cooperative checkpoint (499
// accounting), an expired per-query deadline maps to 504, and load shed
// by the engine's admission control maps to 503 with a Retry-After
// hint. The POST endpoints reject non-POST methods with 405 and cap
// their request bodies with Config.MaxBatchBytes (413 on overflow).
// /api/pois against an engine built without live ingest answers 501,
// since the deployment simply lacks a write path.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"

	soi "repro"
	"repro/internal/httperr"
	"repro/internal/stats"
)

// StatusClientClosedRequest is the nginx-convention 499 status recorded
// when the client cancelled the request before the answer was ready. No
// client sees it (the connection is gone); it keeps access accounting
// honest. It is an alias of the shared mapper's constant.
const StatusClientClosedRequest = httperr.StatusClientClosedRequest

// DefaultMaxBatchBytes bounds the /api/streets/batch request body when
// Config leaves MaxBatchBytes zero: 1 MiB fits the 1024-query batch
// limit with room to spare while keeping a hostile body from exhausting
// memory.
const DefaultMaxBatchBytes = 1 << 20

// Config tunes the HTTP layer's robustness knobs.
type Config struct {
	// MaxBatchBytes caps the /api/streets/batch request body; bodies over
	// the cap get the uniform JSON error with status 413. 0 means
	// DefaultMaxBatchBytes; negative disables the cap.
	MaxBatchBytes int64
}

// Server routes HTTP requests to an Engine.
type Server struct {
	engine        *soi.Engine
	mux           *http.ServeMux
	maxBatchBytes int64
	draining      atomic.Bool
}

// New wires the handler set around an engine with default Config.
func New(engine *soi.Engine) *Server {
	return NewWithConfig(engine, Config{})
}

// NewWithConfig wires the handler set around an engine.
func NewWithConfig(engine *soi.Engine, cfg Config) *Server {
	maxBatch := cfg.MaxBatchBytes
	if maxBatch == 0 {
		maxBatch = DefaultMaxBatchBytes
	}
	s := &Server{engine: engine, mux: http.NewServeMux(), maxBatchBytes: maxBatch}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/streets", s.handleStreets)
	s.mux.HandleFunc("/api/streets/batch", s.handleStreetsBatch)
	s.mux.HandleFunc("/api/pois", s.handlePOIs)
	s.mux.HandleFunc("/api/describe", s.handleDescribe)
	s.mux.HandleFunc("/api/tour", s.handleTour)
	s.mux.HandleFunc("/api/routes/topk", s.handleRoutesTopK)
	s.mux.HandleFunc("/api/trajectories/soi", s.handleTrajectorySOI)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	// net/http/pprof registers on the default mux; mirror its handlers
	// here so profiles are reachable through this server's mux too.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetDraining flips the readiness signal: a draining server keeps
// answering in-flight and new requests (graceful shutdown semantics)
// but reports 503 on /readyz so load balancers steer new traffic away.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the current drain flag.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleHealthz is pure liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: the engine is loaded and the server is not
// draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.engine == nil:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "engine not loaded"})
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// errorBody is the uniform JSON error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client;
	// the payloads here are plain structs that always encode.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeQueryError maps a query-path error through the shared
// internal/httperr mapper, so every serving surface — single-query,
// batch, tenant-routed and remote alike — wears the same status for the
// same failure: shed load → 503 with a Retry-After hint, an expired
// per-query deadline → 504, a client that went away → 499 (accounting
// only; the connection is gone), a recovered evaluation panic or an
// internal cancellation → 500, anything else → 400.
func writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	status, retry := httperr.Status(err, r.Context().Err() != nil)
	if retry {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, status, err)
}

// queryFloat parses an optional float parameter with a default.
func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", name, err)
	}
	return v, nil
}

// queryInt parses an optional integer parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", name, err)
	}
	return v, nil
}

func queryKeywords(r *http.Request) []string {
	raw := r.URL.Query().Get("keywords")
	if raw == "" {
		return nil
	}
	parts := strings.Split(raw, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// statsResponse is the /api/stats payload. The top-level dataset keys
// (streets, pois, photos) are a stable contract; the stats and runtime
// sections carry the live observability counters.
type statsResponse struct {
	Streets int             `json:"streets"`
	POIs    int             `json:"pois"`
	Photos  int             `json:"photos"`
	Stats   stats.Snapshot  `json:"stats"`
	Runtime runtimeSnapshot `json:"runtime"`
}

// runtimeSnapshot is the Go runtime section of /api/stats.
type runtimeSnapshot struct {
	Goroutines     int    `json:"goroutines"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
	NumCPU         int    `json:"num_cpu"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	NumGC          uint32 `json:"num_gc"`
}

func readRuntime() runtimeSnapshot {
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	return runtimeSnapshot{
		Goroutines:     runtime.NumGoroutine(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		HeapAllocBytes: mem.HeapAlloc,
		HeapSysBytes:   mem.HeapSys,
		NumGC:          mem.NumGC,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Streets: s.engine.NumStreets(),
		POIs:    s.engine.NumPOIs(),
		Photos:  s.engine.NumPhotos(),
		Stats:   s.engine.StatsSnapshot(),
		Runtime: readRuntime(),
	})
}

// handleMetrics serves the Prometheus text exposition: every recorder
// counter and histogram under the soi_ namespace plus a few Go runtime
// gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Exposition errors past the first byte cannot be reported; scrapers
	// detect truncation themselves.
	_ = s.engine.StatsSnapshot().WritePrometheus(w)
	rt := readRuntime()
	fmt.Fprintf(w, "# TYPE soi_runtime_goroutines gauge\nsoi_runtime_goroutines %d\n", rt.Goroutines)
	fmt.Fprintf(w, "# TYPE soi_runtime_gomaxprocs gauge\nsoi_runtime_gomaxprocs %d\n", rt.GOMAXPROCS)
	fmt.Fprintf(w, "# TYPE soi_runtime_heap_alloc_bytes gauge\nsoi_runtime_heap_alloc_bytes %d\n", rt.HeapAllocBytes)
	fmt.Fprintf(w, "# TYPE soi_runtime_num_gc_total counter\nsoi_runtime_num_gc_total %d\n", rt.NumGC)
}

// streetsResponse is the /api/streets payload; Trace is present only
// when the request asked for it with trace=1.
type streetsResponse struct {
	Streets []soi.Street    `json:"streets"`
	Trace   *soi.QueryTrace `json:"trace,omitempty"`
}

// traceWanted reports whether the request opted into per-query traces.
func traceWanted(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "", "0", "false":
		return false
	}
	return true
}

func (s *Server) handleStreets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q, err := s.parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := streetsResponse{}
	if traceWanted(r) {
		res, trace, err := s.engine.TopStreetsTracedCtx(r.Context(), q)
		if err != nil {
			writeQueryError(w, r, err)
			return
		}
		resp.Streets, resp.Trace = res, &trace
	} else {
		res, err := s.engine.TopStreetsCtx(r.Context(), q)
		if err != nil {
			writeQueryError(w, r, err)
			return
		}
		resp.Streets = res
	}
	if resp.Streets == nil {
		resp.Streets = []soi.Street{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchRequest is the /api/streets/batch request payload.
type batchRequest struct {
	Queries []batchQuery `json:"queries"`
}

// batchQuery is one k-SOI query of a batch request; k and eps fall back
// to the /api/streets defaults when omitted.
type batchQuery struct {
	Keywords []string `json:"keywords"`
	K        int      `json:"k"`
	Eps      float64  `json:"eps"`
}

// batchResponse is the /api/streets/batch payload: one entry per query,
// in request order, each succeeding or failing independently.
type batchResponse struct {
	Results []batchEntry `json:"results"`
}

type batchEntry struct {
	// Streets is an array (possibly empty) when the query succeeded and
	// null when Error is set, so clients can distinguish "no matching
	// streets" from a failure.
	Streets []soi.Street `json:"streets"`
	Error   string       `json:"error,omitempty"`
	// Trace is present when the request asked for trace=1; coalesced
	// queries share the trace of their one evaluation.
	Trace *soi.QueryTrace `json:"trace,omitempty"`
}

// maxBatchQueries caps one batch request; larger workloads should be
// split so that a single request cannot monopolize the worker pool.
const maxBatchQueries = 1024

func (s *Server) handleStreetsBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if s.maxBatchBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBatchBytes)
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte batch limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no queries"))
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%d queries exceed the batch limit %d", len(req.Queries), maxBatchQueries))
		return
	}
	qs := make([]soi.Query, len(req.Queries))
	for i, q := range req.Queries {
		k := q.K
		if k == 0 {
			k = 10
		}
		eps := q.Eps
		if eps == 0 {
			eps = soi.DefaultCellSize
		}
		qs[i] = soi.Query{Keywords: q.Keywords, K: k, Epsilon: eps}
	}
	withTrace := traceWanted(r)
	results := s.engine.TopStreetsBatchCtx(r.Context(), qs)
	resp := batchResponse{Results: make([]batchEntry, len(results))}
	allShed := len(results) > 0
	for i, res := range results {
		if res.Err == nil || !errors.Is(res.Err, soi.ErrOverloaded) {
			allShed = false
		}
		if res.Err != nil {
			resp.Results[i] = batchEntry{Error: res.Err.Error()}
			continue
		}
		streets := res.Streets
		if streets == nil {
			streets = []soi.Street{}
		}
		resp.Results[i] = batchEntry{Streets: streets}
		if withTrace {
			trace := res.Trace
			resp.Results[i].Trace = &trace
		}
	}
	if allShed {
		// Every query in the batch was shed: surface the overload as a
		// retryable 503 (the per-entry errors still describe each query).
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// poiBody is one POI of a write request.
type poiBody struct {
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Keywords []string `json:"keywords"`
	Weight   float64  `json:"weight"`
}

// poisRequest is the /api/pois request payload. A single POI can be
// given inline at the top level, a batch under "pois"; "publish" asks
// for the appended deltas to be folded into a fresh epoch before the
// response is written (otherwise they stay pending until the engine's
// batch threshold or an operator publish folds them).
type poisRequest struct {
	poiBody
	POIs    []poiBody `json:"pois"`
	Publish bool      `json:"publish"`
}

// poisResponse reports the write outcome: how many deltas this request
// appended, how many are pending in the delta log after it, the epoch
// serving queries when the response was written, and whether this
// request's publish ran.
type poisResponse struct {
	Added     int    `json:"added"`
	Pending   int    `json:"pending"`
	Epoch     uint64 `json:"epoch"`
	Published bool   `json:"published"`
}

// maxPOIBatch caps one write request, mirroring maxBatchQueries.
const maxPOIBatch = 1024

func (s *Server) handlePOIs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if !s.engine.Live() {
		// Not a client error and not a fault: this deployment was built
		// without a write path.
		writeError(w, http.StatusNotImplemented, soi.ErrNotLive)
		return
	}
	if s.maxBatchBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBatchBytes)
	}
	var req poisRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	bodies := req.POIs
	if len(bodies) == 0 && len(req.Keywords) > 0 {
		bodies = []poiBody{req.poiBody}
	}
	if len(bodies) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no POIs: give one inline or a non-empty \"pois\" array"))
		return
	}
	if len(bodies) > maxPOIBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%d POIs exceed the batch limit %d", len(bodies), maxPOIBatch))
		return
	}
	pois := make([]soi.POIInput, len(bodies))
	for i, b := range bodies {
		if len(b.Keywords) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("poi %d: keywords required", i))
			return
		}
		pois[i] = soi.POIInput{X: b.X, Y: b.Y, Keywords: b.Keywords, Weight: b.Weight}
	}
	pending, err := s.engine.AddPOIs(pois)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := poisResponse{Added: len(pois), Pending: pending}
	if req.Publish {
		if _, _, err := s.engine.Publish(); err != nil {
			// The appends landed; the publish failing is a server fault.
			writeError(w, http.StatusInternalServerError, fmt.Errorf("publish after append: %w", err))
			return
		}
		resp.Published = true
		_, _, resp.Pending = s.engine.IngestCounts()
	}
	resp.Epoch = s.engine.Epoch()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) parseQuery(r *http.Request) (soi.Query, error) {
	k, err := queryInt(r, "k", 10)
	if err != nil {
		return soi.Query{}, err
	}
	eps, err := queryFloat(r, "eps", soi.DefaultCellSize)
	if err != nil {
		return soi.Query{}, err
	}
	return soi.Query{Keywords: queryKeywords(r), K: k, Epsilon: eps}, nil
}

func (s *Server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	street := r.URL.Query().Get("street")
	if street == "" {
		writeError(w, http.StatusBadRequest, errors.New("parameter \"street\" required"))
		return
	}
	k, err := queryInt(r, "k", 4)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	lambda, err := queryFloat(r, "lambda", 0.5)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wWeight, err := queryFloat(r, "w", 0.5)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rho, err := queryFloat(r, "rho", 0.0001)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	eps, err := queryFloat(r, "eps", soi.DefaultCellSize)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sum, err := s.engine.DescribeStreet(street, soi.SummaryParams{
		K: k, Lambda: lambda, W: wWeight, Rho: rho, Epsilon: eps,
	})
	switch {
	case errors.Is(err, soi.ErrUnknownStreet), errors.Is(err, soi.ErrNoPhotos):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) handleTour(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q, err := s.parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	budget, err := queryFloat(r, "budget", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tour, err := s.engine.RecommendTourCtx(r.Context(), q, budget)
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, tour)
}
