package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"repro"
)

// This file serves the trajectory query family: POST /api/routes/topk
// (k most interesting routes) and POST /api/trajectories/soi
// (trajectory-aware SOI). Both follow the batch endpoint's conventions:
// POST-only with an Allow header on 405, a bounded request body (413 on
// overrun), 400 on malformed or invalid queries, and query-path errors
// mapped through the shared httperr table (503+Retry-After on shed, 504
// on deadline, 500 on recovered panics).

// maxTracePoints caps the summed trace points of one trajectory request.
const maxTracePoints = 65536

// finite rejects the NaN/±Inf request numerics that would otherwise
// slip through sign checks (NaN compares false against everything) into
// the query layer.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

type routesRequest struct {
	Src      [2]float64 `json:"src"`
	Dst      [2]float64 `json:"dst"`
	Keywords []string   `json:"keywords"`
	K        int        `json:"k"`
	Eps      float64    `json:"eps"`
	Budget   float64    `json:"budget"`
	Alpha    float64    `json:"alpha"`
}

type routeEntry struct {
	Polyline [][2]float64 `json:"polyline"`
	Streets  []string     `json:"streets"`
	Length   float64      `json:"length"`
	Interest float64      `json:"interest"`
	Score    float64      `json:"score"`
}

type routesResponse struct {
	Routes []routeEntry `json:"routes"`
}

func (s *Server) handleRoutesTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if s.maxBatchBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBatchBytes)
	}
	var req routesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Keywords) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no keywords"))
		return
	}
	for _, c := range [...]float64{req.Src[0], req.Src[1], req.Dst[0], req.Dst[1]} {
		if !finite(c) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("non-finite coordinate %v", c))
			return
		}
	}
	if req.Budget <= 0 || !finite(req.Budget) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("budget %v is not a positive finite number", req.Budget))
		return
	}
	if req.Alpha < 0 || !finite(req.Alpha) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("alpha %v is not a non-negative finite number", req.Alpha))
		return
	}
	k := req.K
	if k == 0 {
		k = 3
	}
	if k < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("negative k %d", k))
		return
	}
	eps := req.Eps
	if eps == 0 {
		eps = soi.DefaultCellSize
	}
	if eps < 0 || !finite(eps) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("eps %v is not a non-negative finite number", eps))
		return
	}
	routes, err := s.engine.TopRoutesCtx(r.Context(), soi.RouteQuery{
		Src:      soi.Point{X: req.Src[0], Y: req.Src[1]},
		Dst:      soi.Point{X: req.Dst[0], Y: req.Dst[1]},
		Keywords: req.Keywords,
		K:        k,
		Epsilon:  eps,
		Budget:   req.Budget,
		Alpha:    req.Alpha,
	})
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	resp := routesResponse{Routes: make([]routeEntry, len(routes))}
	for i, rt := range routes {
		entry := routeEntry{
			Polyline: make([][2]float64, len(rt.Polyline)),
			Streets:  rt.Streets,
			Length:   rt.Length,
			Interest: rt.Interest,
			Score:    rt.Score,
		}
		for j, p := range rt.Polyline {
			entry.Polyline[j] = [2]float64{p.X, p.Y}
		}
		resp.Routes[i] = entry
	}
	writeJSON(w, http.StatusOK, resp)
}

type trajRequest struct {
	Traces   [][][2]float64 `json:"traces"`
	Keywords []string       `json:"keywords"`
	K        int            `json:"k"`
	Eps      float64        `json:"eps"`
	Radius   float64        `json:"radius"`
}

type corridorEntry struct {
	Name     string  `json:"name"`
	Coverage float64 `json:"coverage"`
	Interest float64 `json:"interest"`
	Score    float64 `json:"score"`
}

type trajResponse struct {
	Streets []corridorEntry `json:"streets"`
}

func (s *Server) handleTrajectorySOI(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if s.maxBatchBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBatchBytes)
	}
	var req trajRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Traces) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no traces"))
		return
	}
	total := 0
	for _, tr := range req.Traces {
		total += len(tr)
	}
	if total > maxTracePoints {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%d trace points exceed the limit %d", total, maxTracePoints))
		return
	}
	if len(req.Keywords) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no keywords"))
		return
	}
	if req.Radius < 0 || !finite(req.Radius) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("radius %v is not a non-negative finite number", req.Radius))
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("negative k %d", k))
		return
	}
	eps := req.Eps
	if eps == 0 {
		eps = soi.DefaultCellSize
	}
	if eps < 0 || !finite(eps) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("eps %v is not a non-negative finite number", eps))
		return
	}
	traces := make([][]soi.Point, len(req.Traces))
	for i, tr := range req.Traces {
		pts := make([]soi.Point, len(tr))
		for j, p := range tr {
			pts[j] = soi.Point{X: p[0], Y: p[1]}
		}
		traces[i] = pts
	}
	res, err := s.engine.TrajectorySOICtx(r.Context(), soi.TrajectoryQuery{
		Traces:   traces,
		Keywords: req.Keywords,
		K:        k,
		Epsilon:  eps,
		Radius:   req.Radius,
	})
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	resp := trajResponse{Streets: make([]corridorEntry, len(res))}
	for i, c := range res {
		resp.Streets[i] = corridorEntry{Name: c.Name, Coverage: c.Coverage, Interest: c.Interest, Score: c.Score}
	}
	writeJSON(w, http.StatusOK, resp)
}
