package stats

// This file holds the ranking-quality measures used by the effectiveness
// experiments (absorbed from the former internal/metrics): set-based
// recall/precision at a cutoff (the paper's Table 2 reports recall@10),
// graded nDCG against a ground-truth ranking, and Kendall's tau between
// two rankings.

import (
	"math"
	"sort"
)

// RecallAtK returns |ranked[:k] ∩ relevant| / |relevant|; 0 when the
// relevant set is empty.
func RecallAtK(ranked []string, relevant []string, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	top := topSet(ranked, k)
	hits := 0
	for _, r := range relevant {
		if top[r] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// PrecisionAtK returns |ranked[:k] ∩ relevant| / min(k, |ranked|); 0 when
// no items were ranked.
func PrecisionAtK(ranked []string, relevant []string, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	rel := make(map[string]bool, len(relevant))
	for _, r := range relevant {
		rel[r] = true
	}
	hits := 0
	for _, s := range ranked[:k] {
		if rel[s] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// NDCGAtK computes normalized discounted cumulative gain at cutoff k
// against graded relevances (items absent from grades have gain 0). The
// ideal ordering is the grades sorted decreasingly.
func NDCGAtK(ranked []string, grades map[string]float64, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	var dcg float64
	for i := 0; i < k; i++ {
		if g, ok := grades[ranked[i]]; ok {
			dcg += g / math.Log2(float64(i)+2)
		}
	}
	ideal := make([]float64, 0, len(grades))
	for _, g := range grades {
		ideal = append(ideal, g)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	var idcg float64
	for i := 0; i < len(ideal) && i < k; i++ {
		idcg += ideal[i] / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// KendallTau computes Kendall's rank correlation between two rankings
// over their common items: +1 for identical relative order, −1 for
// reversed. Returns 0 when fewer than two items are shared.
func KendallTau(a, b []string) float64 {
	posB := make(map[string]int, len(b))
	for i, s := range b {
		posB[s] = i
	}
	// Common items in a's order, mapped to their positions in b.
	var seq []int
	for _, s := range a {
		if p, ok := posB[s]; ok {
			seq = append(seq, p)
		}
	}
	n := len(seq)
	if n < 2 {
		return 0
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case seq[i] < seq[j]:
				concordant++
			case seq[i] > seq[j]:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs)
}

func topSet(ranked []string, k int) map[string]bool {
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make(map[string]bool, k)
	for _, s := range ranked[:k] {
		out[s] = true
	}
	return out
}
