package stats

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// The histogram promises exactly reproducible bucket assignment: bounds
// are integer nanoseconds and an observation equal to a bound lands in
// that bound's bucket (le semantics), one nanosecond more in the next.

func TestBucketIndexBoundaries(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds) != NumBuckets-1 {
		t.Fatalf("len(BucketBounds()) = %d, want %d", len(bounds), NumBuckets-1)
	}
	for i, b := range bounds {
		if got := bucketIndex(b); got != i {
			t.Errorf("bucketIndex(%d) = %d, want %d (on-bound value belongs to its bucket)", b, got, i)
		}
		if got := bucketIndex(b + 1); got != i+1 {
			t.Errorf("bucketIndex(%d) = %d, want %d (one past the bound spills over)", b+1, got, i+1)
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	over := bounds[len(bounds)-1] + 1
	if got := bucketIndex(over); got != NumBuckets-1 {
		t.Errorf("bucketIndex(%d) = %d, want +Inf bucket %d", over, got, NumBuckets-1)
	}
}

func TestBucketBoundsIsACopy(t *testing.T) {
	a := BucketBounds()
	a[0] = -1
	if b := BucketBounds(); b[0] == -1 {
		t.Fatal("BucketBounds returned a view of the internal array")
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(1 * time.Microsecond)   // bucket 0 (≤ 1µs)
	h.Observe(1500 * time.Nanosecond) // bucket 1 (≤ 2µs)
	h.Observe(-time.Second)           // clamped to 0, bucket 0
	h.Observe(time.Hour)              // +Inf bucket
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	wantSum := time.Duration(1_000 + 1_500 + 0 + time.Hour.Nanoseconds())
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %v, want %v", got, wantSum)
	}
	s := h.Snapshot()
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 100 observations: 50 in the ≤1ms bucket, 45 in ≤10ms, 5 in ≤100ms.
	// Quantiles are upper-bound estimates of the ⌈q·n⌉-th sample, so the
	// values below are exact consequences of the bucket layout.
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 45; i++ {
		h.Observe(10 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		h.Observe(100 * time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, time.Millisecond},       // rank 50 is the last ≤1ms sample
		{0.51, 10 * time.Millisecond},  // rank 51 crosses into ≤10ms
		{0.95, 10 * time.Millisecond},  // rank 95 is the last ≤10ms sample
		{0.99, 100 * time.Millisecond}, // rank 99 lands in ≤100ms
		{1.00, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	// All samples beyond the last finite bound: quantiles report that
	// bound rather than inventing a number for the unbounded bucket.
	var h Histogram
	h.Observe(time.Hour)
	last := time.Duration(BucketBounds()[NumBuckets-2])
	if got := h.Quantile(0.5); got != last {
		t.Fatalf("Quantile(0.5) = %v, want last finite bound %v", got, last)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	a.Observe(time.Second)
	b.Observe(time.Millisecond)
	b.Observe(5 * time.Microsecond)
	a.Merge(&b)
	if got := a.Count(); got != 4 {
		t.Fatalf("merged Count = %d, want 4", got)
	}
	wantSum := time.Millisecond + time.Second + time.Millisecond + 5*time.Microsecond
	if got := a.Sum(); got != wantSum {
		t.Fatalf("merged Sum = %v, want %v", got, wantSum)
	}
	s := a.Snapshot()
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
}

func TestCounterSetMax(t *testing.T) {
	var c Counter
	c.SetMax(5)
	c.SetMax(3)
	if got := c.Load(); got != 5 {
		t.Fatalf("after SetMax(5), SetMax(3): Load = %d, want 5", got)
	}
	c.SetMax(9)
	if got := c.Load(); got != 9 {
		t.Fatalf("after SetMax(9): Load = %d, want 9", got)
	}
	if got := c.Add(-2); got != 7 {
		t.Fatalf("Add(-2) = %d, want 7", got)
	}
}

// TestConcurrentIncrements hammers one counter, one gauge-with-peak and
// one histogram from many goroutines; run under -race this doubles as
// the race-cleanliness proof, and the final values must be exact.
func TestConcurrentIncrements(t *testing.T) {
	const workers, perWorker = 16, 1000
	var (
		c    Counter
		peak Counter
		h    Histogram
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				peak.SetMax(int64(w*perWorker + i))
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := peak.Load(); got != workers*perWorker-1 {
		t.Errorf("peak = %d, want %d", got, workers*perWorker-1)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Every worker observes the same duration multiset, so the sum is
	// workers × Σ(i µs for i in [0, perWorker)).
	wantSum := int64(workers) * int64(perWorker*(perWorker-1)/2) * 1_000
	if got := h.Sum().Nanoseconds(); got != wantSum {
		t.Errorf("histogram sum = %d ns, want %d", got, wantSum)
	}
}

func TestNilRecorderSnapshot(t *testing.T) {
	var r *Recorder
	if s := r.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil recorder snapshot = %+v, want zero", s)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	r := NewRecorder()
	r.Core.SL1CellsPopped.Add(42)
	r.Engine.Queries.Add(7)
	r.Engine.QueryLatency.Observe(3 * time.Millisecond)
	var a, b bytes.Buffer
	if err := r.Snapshot().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two WriteText renderings of equal snapshots differ")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("lines not strictly sorted: %q before %q", lines[i-1], lines[i])
		}
	}
	for _, want := range []string{
		"core_sl1_cells_popped 42",
		"engine_queries 7",
		"engine_query_latency_seconds_count 1",
		"engine_query_latency_seconds_p50_ms 5.000",
	} {
		found := false
		for _, l := range lines {
			if l == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing line %q in:\n%s", want, a.String())
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRecorder()
	r.Engine.Queries.Add(3)
	r.Engine.InFlight.Add(2)
	r.Engine.QueryLatency.Observe(time.Millisecond)
	r.Engine.QueryLatency.Observe(time.Second)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE soi_engine_queries_total counter\nsoi_engine_queries_total 3\n",
		"# TYPE soi_engine_in_flight gauge\nsoi_engine_in_flight 2\n",
		"# TYPE soi_engine_query_latency_seconds histogram\n",
		`soi_engine_query_latency_seconds_bucket{le="0.001"} 1`,
		`soi_engine_query_latency_seconds_bucket{le="1"} 2`,
		`soi_engine_query_latency_seconds_bucket{le="+Inf"} 2`,
		"soi_engine_query_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative le buckets must be monotone non-decreasing.
	prev := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "soi_engine_query_latency_seconds_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = n
	}
}
