package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestRecallAtK(t *testing.T) {
	ranked := []string{"a", "b", "c", "d"}
	rel := []string{"b", "d", "z"}
	if got := RecallAtK(ranked, rel, 2); !almostEq(got, 1.0/3) {
		t.Errorf("recall@2 = %v", got)
	}
	if got := RecallAtK(ranked, rel, 4); !almostEq(got, 2.0/3) {
		t.Errorf("recall@4 = %v", got)
	}
	if got := RecallAtK(ranked, rel, 99); !almostEq(got, 2.0/3) {
		t.Errorf("recall@99 = %v", got)
	}
	if got := RecallAtK(ranked, nil, 2); got != 0 {
		t.Errorf("recall with empty relevant = %v", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	ranked := []string{"a", "b", "c"}
	rel := []string{"a", "c"}
	if got := PrecisionAtK(ranked, rel, 2); !almostEq(got, 0.5) {
		t.Errorf("precision@2 = %v", got)
	}
	if got := PrecisionAtK(ranked, rel, 3); !almostEq(got, 2.0/3) {
		t.Errorf("precision@3 = %v", got)
	}
	// k beyond the list clamps to the list length.
	if got := PrecisionAtK(ranked, rel, 10); !almostEq(got, 2.0/3) {
		t.Errorf("precision@10 = %v", got)
	}
	if got := PrecisionAtK(nil, rel, 5); got != 0 {
		t.Errorf("precision of empty ranking = %v", got)
	}
}

func TestNDCGPerfect(t *testing.T) {
	grades := map[string]float64{"a": 3, "b": 2, "c": 1}
	if got := NDCGAtK([]string{"a", "b", "c"}, grades, 3); !almostEq(got, 1) {
		t.Errorf("perfect nDCG = %v", got)
	}
}

func TestNDCGWorstOrder(t *testing.T) {
	grades := map[string]float64{"a": 3, "b": 2, "c": 1}
	rev := NDCGAtK([]string{"c", "b", "a"}, grades, 3)
	if rev >= 1 || rev <= 0 {
		t.Errorf("reversed nDCG = %v", rev)
	}
	// Hand-computed: DCG = 1/log2(2) + 2/log2(3) + 3/log2(4) = 1 + 1.26186 + 1.5
	// IDCG = 3 + 2/log2(3) + 1/2 = 4.76186
	want := (1 + 2/math.Log2(3) + 1.5) / (3 + 2/math.Log2(3) + 0.5)
	if !almostEq(rev, want) {
		t.Errorf("reversed nDCG = %v, want %v", rev, want)
	}
}

func TestNDCGEdgeCases(t *testing.T) {
	if got := NDCGAtK([]string{"x"}, map[string]float64{}, 3); got != 0 {
		t.Errorf("empty grades nDCG = %v", got)
	}
	if got := NDCGAtK(nil, map[string]float64{"a": 1}, 3); got != 0 {
		t.Errorf("empty ranking nDCG = %v", got)
	}
	// Unknown items contribute zero gain.
	grades := map[string]float64{"a": 1}
	if got := NDCGAtK([]string{"z", "a"}, grades, 2); got >= 1 || got <= 0 {
		t.Errorf("partial nDCG = %v", got)
	}
}

func TestKendallTau(t *testing.T) {
	if got := KendallTau([]string{"a", "b", "c"}, []string{"a", "b", "c"}); !almostEq(got, 1) {
		t.Errorf("identical tau = %v", got)
	}
	if got := KendallTau([]string{"a", "b", "c"}, []string{"c", "b", "a"}); !almostEq(got, -1) {
		t.Errorf("reversed tau = %v", got)
	}
	// One swap among three: 2 concordant, 1 discordant → 1/3.
	if got := KendallTau([]string{"a", "b", "c"}, []string{"b", "a", "c"}); !almostEq(got, 1.0/3) {
		t.Errorf("one-swap tau = %v", got)
	}
	// Disjoint rankings share nothing.
	if got := KendallTau([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("disjoint tau = %v", got)
	}
	// Only common items count.
	if got := KendallTau([]string{"a", "x", "b"}, []string{"a", "b", "y"}); !almostEq(got, 1) {
		t.Errorf("common-subset tau = %v", got)
	}
}

// Property: tau is antisymmetric under reversal of one argument, and
// bounded in [-1, 1].
func TestKendallTauProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	items := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 200; trial++ {
		a := append([]string(nil), items...)
		b := append([]string(nil), items...)
		rng.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		tau := KendallTau(a, b)
		if tau < -1-1e-12 || tau > 1+1e-12 {
			t.Fatalf("tau out of range: %v", tau)
		}
		rev := append([]string(nil), b...)
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		if !almostEq(KendallTau(a, rev), -tau) {
			t.Fatalf("tau not antisymmetric: %v vs %v", tau, KendallTau(a, rev))
		}
		// Symmetry in arguments.
		if !almostEq(KendallTau(b, a), tau) {
			t.Fatalf("tau not symmetric")
		}
	}
}
