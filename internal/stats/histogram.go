package stats

import (
	"sync/atomic"
	"time"
)

// bucketBoundsNanos are the histogram bucket upper bounds, a 1-2-5
// series from 1µs to 10s. Observations above the last bound land in an
// implicit +Inf bucket. The bounds are integers (nanoseconds) so bucket
// assignment involves no float comparison and is exactly reproducible.
var bucketBoundsNanos = [...]int64{
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
	10_000_000, 20_000_000, 50_000_000,
	100_000_000, 200_000_000, 500_000_000,
	1_000_000_000, 2_000_000_000, 5_000_000_000,
	10_000_000_000,
}

// NumBuckets is the number of histogram buckets, including the +Inf
// overflow bucket.
const NumBuckets = len(bucketBoundsNanos) + 1

// Histogram is a fixed-bucket latency histogram, safe for concurrent
// observation. The zero value is ready to use. Quantiles are
// upper-bound estimates: Quantile returns the upper bound of the bucket
// containing the requested rank, which makes the reported p50/p95/p99
// deterministic functions of the observation multiset.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// bucketIndex returns the index of the bucket holding an observation of
// d nanoseconds.
func bucketIndex(nanos int64) int {
	// Linear scan: 22 integer compares on a cold array beats binary
	// search bookkeeping at this size, and observation is not on the
	// per-cell hot path (one call per query).
	for i, b := range bucketBoundsNanos {
		if nanos <= b {
			return i
		}
	}
	return NumBuckets - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	h.counts[bucketIndex(n)].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Merge folds another histogram's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1) of the
// observed durations: the upper bound of the bucket containing the
// ⌈q·count⌉-th smallest observation. Observations beyond the last
// finite bound report that bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < NumBuckets-1; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return time.Duration(bucketBoundsNanos[i])
		}
	}
	return time.Duration(bucketBoundsNanos[len(bucketBoundsNanos)-1])
}

// HistogramSnapshot is a point-in-time copy of a histogram, with the
// standard latency summary quantiles precomputed.
type HistogramSnapshot struct {
	Count   int64 `json:"count"`
	SumNano int64 `json:"sum_ns"`
	P50Nano int64 `json:"p50_ns"`
	P95Nano int64 `json:"p95_ns"`
	P99Nano int64 `json:"p99_ns"`
	// Buckets holds the per-bucket counts in bound order; bucket i
	// covers (bound[i-1], bound[i]], the last bucket is +Inf.
	Buckets [NumBuckets]int64 `json:"buckets"`
}

// BucketBounds returns the finite bucket upper bounds in nanoseconds;
// the final bucket of a snapshot is unbounded.
func BucketBounds() []int64 {
	out := make([]int64, len(bucketBoundsNanos))
	copy(out, bucketBoundsNanos[:])
	return out
}

// Snapshot copies the histogram counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumNano: h.sum.Load(),
		P50Nano: h.Quantile(0.50).Nanoseconds(),
		P95Nano: h.Quantile(0.95).Nanoseconds(),
		P99Nano: h.Quantile(0.99).Nanoseconds(),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}
