// Package stats is the observability substrate of the SOI system: a
// lightweight, allocation-free Recorder of cumulative runtime counters
// and fixed-bucket latency histograms, plus the ranking-quality measures
// (recall, precision, nDCG, Kendall's tau) used by the effectiveness
// experiments.
//
// The Recorder mirrors the paper's Section 6 evaluation internals —
// accessed cells and segments, filter-versus-refine cost — as live
// counters so a served system can be tuned by the same signals the paper
// reports. It is organized in three groups matching the layers that feed
// it: Core (Algorithm 1 source-list pops, cell visits, refinements),
// Engine (result-cache and mass-cache traffic, in-flight dedup joins,
// worker-pool pressure, query latency) and Diversify (Algorithm 2 greedy
// iterations and pruning).
//
// All fields are safe for concurrent update and may be read at any time
// with Snapshot. Producers hold a *Recorder that may be nil: every fold
// helper (core.Stats.Record, diversify.Stats.Record, the engine's
// internal observation points) starts with a nil check, so a disabled
// recorder costs one predictable branch per query — nothing on the
// per-cell and per-segment hot paths, which accumulate into their
// existing per-run structs and fold once at the end of the run.
package stats

import "sync/atomic"

// Counter is a cumulative, race-clean counter (or gauge, when
// incremented and decremented). The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n and returns the new value.
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// SetMax raises the counter to v if v is larger, keeping the historical
// maximum of a gauge.
func (c *Counter) SetMax(v int64) {
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Store overwrites the counter with v. Used for gauges whose
// authoritative value lives elsewhere (e.g. the current epoch sequence
// or the pending-delta depth) and is mirrored into the recorder.
func (c *Counter) Store(v int64) { c.v.Store(v) }

// CoreStats aggregates Algorithm 1 work across every evaluation: the
// paper's "accessed cells and segments" (Sec. 6) as cumulative totals.
type CoreStats struct {
	// Evaluations counts SOI runs folded into this group.
	Evaluations Counter
	// SL1CellsPopped counts pops from source list SL1 (cells in
	// decreasing relevant-weight order).
	SL1CellsPopped Counter
	// SL2SegmentsPopped and SL3SegmentsPopped count segment finalizations
	// driven by SL2 (cell-count order) and SL3 (length order).
	SL2SegmentsPopped Counter
	SL3SegmentsPopped Counter
	// FilterIterations counts UB/LBk loop iterations of the filter phase.
	FilterIterations Counter
	// CellVisits counts UpdateInterest invocations that did work.
	CellVisits Counter
	// SegmentsSeen and SegmentsFinal count segments that left the unseen
	// state and segments whose exact interest was computed.
	SegmentsSeen  Counter
	SegmentsFinal Counter
	// MassCacheHits counts segments answered from a shared MassCache;
	// MassCacheMisses counts segments finalized by actual cell visits.
	MassCacheHits   Counter
	MassCacheMisses Counter
	// RefineDrained counts segments drained to exact mass during the
	// refinement phase (the paper's "as necessary" finalizations).
	RefineDrained Counter
	// BuildListsNanos, FilterNanos and RefineNanos accumulate the
	// per-phase wall time (the paper's Figure 4 breakdown).
	BuildListsNanos Counter
	FilterNanos     Counter
	RefineNanos     Counter
}

// EngineStats aggregates the batch executor's traffic and worker-pool
// pressure.
type EngineStats struct {
	// Queries counts every query received (Do and Batch).
	Queries Counter
	// ResultCacheHits / ResultCacheMisses count LRU result-cache lookups.
	ResultCacheHits   Counter
	ResultCacheMisses Counter
	// DedupJoins counts queries that joined an identical in-flight
	// evaluation instead of starting their own.
	DedupJoins Counter
	// Evaluations counts queries that ran the SOI algorithm.
	Evaluations Counter
	// BatchRequests, BatchQueries and BatchGroups count Batch calls,
	// their queries, and the coalesced ⟨Ψ, ε⟩ groups actually evaluated.
	BatchRequests Counter
	BatchQueries  Counter
	BatchGroups   Counter
	// InFlight is the number of evaluations currently holding a worker
	// slot; PeakInFlight its historical maximum.
	InFlight     Counter
	PeakInFlight Counter
	// QueueDepth is the number of evaluations currently blocked waiting
	// for a worker slot; PeakQueueDepth its historical maximum.
	QueueDepth     Counter
	PeakQueueDepth Counter
	// BusyNanos accumulates wall time spent inside evaluations;
	// utilization over an interval is BusyNanos / (workers × interval).
	BusyNanos Counter
	// Shed counts queries rejected by admission control (ErrOverloaded):
	// the wait queue was at depth or the max queue wait elapsed.
	Shed Counter
	// Cancelled counts queries that ended with context.Canceled — the
	// 499-style "client went away" outcome.
	Cancelled Counter
	// DeadlineExceeded counts queries that ended with
	// context.DeadlineExceeded (per-query deadline or caller timeout).
	DeadlineExceeded Counter
	// PanicsRecovered counts evaluations that panicked and were isolated
	// into a per-query error instead of crashing the process.
	PanicsRecovered Counter
	// QueueWait is the distribution of time spent waiting for a worker
	// slot; QueryLatency the distribution of evaluation wall time.
	QueueWait    Histogram
	QueryLatency Histogram
}

// DiversifyStats aggregates Algorithm 2 (ST_Rel+Div) work.
type DiversifyStats struct {
	// Summaries counts summary constructions folded into this group.
	Summaries Counter
	// Iterations counts greedy MMR selection rounds.
	Iterations Counter
	// CandidatePhotos accumulates |Rs|, the candidate pool size.
	CandidatePhotos Counter
	// PhotosEvaluated, CellsExamined and CellsPruned mirror the
	// filter/refine pruning measures of Section 6.2.
	PhotosEvaluated Counter
	CellsExamined   Counter
	CellsPruned     Counter
	// SummaryNanos accumulates summary construction wall time.
	SummaryNanos Counter
}

// IngestStats aggregates the epoch-based write path: delta-log traffic,
// epoch publishes, compactions and the epoch lifecycle gauges.
type IngestStats struct {
	// DeltasAppended counts POI deltas accepted into the delta log.
	DeltasAppended Counter
	// DeltasPending is a gauge: deltas appended but not yet folded into
	// a published epoch.
	DeltasPending Counter
	// Publishes counts successful epoch publishes (pointer swaps that
	// installed a new epoch built from base + delta log).
	Publishes Counter
	// Compactions counts successful compactions (delta log folded into
	// the base, old epochs retired).
	Compactions Counter
	// EpochSeq is a gauge: the sequence number of the currently
	// installed epoch.
	EpochSeq Counter
	// EpochsLive is a gauge: epochs whose refcount has not drained to
	// zero (the installed epoch plus any still pinned by in-flight
	// queries). EpochsRetired counts epochs fully released.
	EpochsLive    Counter
	EpochsRetired Counter
	// PublishNanos and CompactNanos accumulate rebuild wall time.
	PublishNanos Counter
	CompactNanos Counter
}

// RemoteStats aggregates the cross-process scatter-gather path: the
// fault-tolerant shard client's attempt/retry/hedge traffic, circuit
// breaker lifecycle, and the coordinator's degradation outcomes.
type RemoteStats struct {
	// Calls counts logical shard calls (bound or query, one per shard
	// per coordinator phase); Attempts counts the HTTP attempts they
	// expanded into (first tries, retries and hedges alike).
	Calls    Counter
	Attempts Counter
	// Retries counts attempts beyond a call's first (hedges excluded).
	Retries Counter
	// HedgesStarted counts speculative second attempts launched after
	// the hedge delay; HedgesWon counts hedges whose response was used,
	// HedgesWasted counts hedges whose primary finished first.
	HedgesStarted Counter
	HedgesWon     Counter
	HedgesWasted  Counter
	// BreakerOpens counts closed→open transitions; BreakerProbes counts
	// half-open readiness probes; BreakerShortCircuits counts attempts
	// denied because every eligible replica's breaker was open.
	BreakerOpens         Counter
	BreakerProbes        Counter
	BreakerShortCircuits Counter
	// Errors counts calls that failed after exhausting replicas and the
	// retry budget.
	Errors Counter
	// Degraded counts coordinator answers served with one or more shards
	// missing; ShardsMissing sums the shards those answers were missing.
	Degraded      Counter
	ShardsMissing Counter
}

// TrajStats aggregates the trajectory query family: route searches,
// trace matching and their admission outcomes.
type TrajStats struct {
	// RouteQueries and TrajQueries count k-routes and trajectory-SOI
	// queries received.
	RouteQueries Counter
	TrajQueries  Counter
	// Expansions accumulates route-search frontier pops.
	Expansions Counter
	// TracePoints and MatchedPoints count trace points examined and
	// those that snapped to a segment.
	TracePoints   Counter
	MatchedPoints Counter
	// Shed, Cancelled, DeadlineExceeded and PanicsRecovered mirror the
	// engine group's admission outcomes for the trajectory gate.
	Shed             Counter
	Cancelled        Counter
	DeadlineExceeded Counter
	PanicsRecovered  Counter
	// SearchNanos and MatchNanos accumulate wall time inside route
	// searches and trajectory-SOI evaluations.
	SearchNanos Counter
	MatchNanos  Counter
}

// Recorder is the process-wide sink for observability counters. One
// recorder is owned by the soi.Engine and shared by every layer under
// it; a nil *Recorder disables recording entirely.
type Recorder struct {
	Core      CoreStats
	Engine    EngineStats
	Diversify DiversifyStats
	Ingest    IngestStats
	Remote    RemoteStats
	Traj      TrajStats
}

// NewRecorder returns a zeroed recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// CoreSnapshot is the JSON form of CoreStats.
type CoreSnapshot struct {
	Evaluations       int64 `json:"evaluations"`
	SL1CellsPopped    int64 `json:"sl1_cells_popped"`
	SL2SegmentsPopped int64 `json:"sl2_segments_popped"`
	SL3SegmentsPopped int64 `json:"sl3_segments_popped"`
	FilterIterations  int64 `json:"filter_iterations"`
	CellVisits        int64 `json:"cell_visits"`
	SegmentsSeen      int64 `json:"segments_seen"`
	SegmentsFinal     int64 `json:"segments_final"`
	MassCacheHits     int64 `json:"mass_cache_hits"`
	MassCacheMisses   int64 `json:"mass_cache_misses"`
	RefineDrained     int64 `json:"refine_drained"`
	BuildListsNanos   int64 `json:"build_lists_ns"`
	FilterNanos       int64 `json:"filter_ns"`
	RefineNanos       int64 `json:"refine_ns"`
}

// EngineSnapshot is the JSON form of EngineStats.
type EngineSnapshot struct {
	Queries           int64             `json:"queries"`
	ResultCacheHits   int64             `json:"result_cache_hits"`
	ResultCacheMisses int64             `json:"result_cache_misses"`
	DedupJoins        int64             `json:"dedup_joins"`
	Evaluations       int64             `json:"evaluations"`
	BatchRequests     int64             `json:"batch_requests"`
	BatchQueries      int64             `json:"batch_queries"`
	BatchGroups       int64             `json:"batch_groups"`
	InFlight          int64             `json:"in_flight"`
	PeakInFlight      int64             `json:"peak_in_flight"`
	QueueDepth        int64             `json:"queue_depth"`
	PeakQueueDepth    int64             `json:"peak_queue_depth"`
	BusyNanos         int64             `json:"busy_ns"`
	Shed              int64             `json:"shed"`
	Cancelled         int64             `json:"cancelled"`
	DeadlineExceeded  int64             `json:"deadline_exceeded"`
	PanicsRecovered   int64             `json:"panics_recovered"`
	QueueWait         HistogramSnapshot `json:"queue_wait"`
	QueryLatency      HistogramSnapshot `json:"query_latency"`
}

// DiversifySnapshot is the JSON form of DiversifyStats.
type DiversifySnapshot struct {
	Summaries       int64 `json:"summaries"`
	Iterations      int64 `json:"iterations"`
	CandidatePhotos int64 `json:"candidate_photos"`
	PhotosEvaluated int64 `json:"photos_evaluated"`
	CellsExamined   int64 `json:"cells_examined"`
	CellsPruned     int64 `json:"cells_pruned"`
	SummaryNanos    int64 `json:"summary_ns"`
}

// IngestSnapshot is the JSON form of IngestStats.
type IngestSnapshot struct {
	DeltasAppended int64 `json:"deltas_appended"`
	DeltasPending  int64 `json:"deltas_pending"`
	Publishes      int64 `json:"publishes"`
	Compactions    int64 `json:"compactions"`
	EpochSeq       int64 `json:"epoch_seq"`
	EpochsLive     int64 `json:"epochs_live"`
	EpochsRetired  int64 `json:"epochs_retired"`
	PublishNanos   int64 `json:"publish_ns"`
	CompactNanos   int64 `json:"compact_ns"`
}

// RemoteSnapshot is the JSON form of RemoteStats.
type RemoteSnapshot struct {
	Calls                int64 `json:"calls"`
	Attempts             int64 `json:"attempts"`
	Retries              int64 `json:"retries"`
	HedgesStarted        int64 `json:"hedges_started"`
	HedgesWon            int64 `json:"hedges_won"`
	HedgesWasted         int64 `json:"hedges_wasted"`
	BreakerOpens         int64 `json:"breaker_opens"`
	BreakerProbes        int64 `json:"breaker_probes"`
	BreakerShortCircuits int64 `json:"breaker_short_circuits"`
	Errors               int64 `json:"errors"`
	Degraded             int64 `json:"degraded"`
	ShardsMissing        int64 `json:"shards_missing"`
}

// TrajSnapshot is the JSON form of TrajStats.
type TrajSnapshot struct {
	RouteQueries     int64 `json:"route_queries"`
	TrajQueries      int64 `json:"traj_queries"`
	Expansions       int64 `json:"expansions"`
	TracePoints      int64 `json:"trace_points"`
	MatchedPoints    int64 `json:"matched_points"`
	Shed             int64 `json:"shed"`
	Cancelled        int64 `json:"cancelled"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	PanicsRecovered  int64 `json:"panics_recovered"`
	SearchNanos      int64 `json:"search_ns"`
	MatchNanos       int64 `json:"match_ns"`
}

// Snapshot is a point-in-time copy of every recorder value, safe to
// serialize while traffic continues.
type Snapshot struct {
	Core      CoreSnapshot      `json:"core"`
	Engine    EngineSnapshot    `json:"engine"`
	Diversify DiversifySnapshot `json:"diversify"`
	Ingest    IngestSnapshot    `json:"ingest"`
	Remote    RemoteSnapshot    `json:"remote"`
	Traj      TrajSnapshot      `json:"traj"`
}

// Snapshot copies the current counter and histogram values. Each counter
// is read atomically; the snapshot as a whole is not one instant, which
// is fine for monitoring. A nil recorder yields a zero snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return Snapshot{
		Core: CoreSnapshot{
			Evaluations:       r.Core.Evaluations.Load(),
			SL1CellsPopped:    r.Core.SL1CellsPopped.Load(),
			SL2SegmentsPopped: r.Core.SL2SegmentsPopped.Load(),
			SL3SegmentsPopped: r.Core.SL3SegmentsPopped.Load(),
			FilterIterations:  r.Core.FilterIterations.Load(),
			CellVisits:        r.Core.CellVisits.Load(),
			SegmentsSeen:      r.Core.SegmentsSeen.Load(),
			SegmentsFinal:     r.Core.SegmentsFinal.Load(),
			MassCacheHits:     r.Core.MassCacheHits.Load(),
			MassCacheMisses:   r.Core.MassCacheMisses.Load(),
			RefineDrained:     r.Core.RefineDrained.Load(),
			BuildListsNanos:   r.Core.BuildListsNanos.Load(),
			FilterNanos:       r.Core.FilterNanos.Load(),
			RefineNanos:       r.Core.RefineNanos.Load(),
		},
		Engine: EngineSnapshot{
			Queries:           r.Engine.Queries.Load(),
			ResultCacheHits:   r.Engine.ResultCacheHits.Load(),
			ResultCacheMisses: r.Engine.ResultCacheMisses.Load(),
			DedupJoins:        r.Engine.DedupJoins.Load(),
			Evaluations:       r.Engine.Evaluations.Load(),
			BatchRequests:     r.Engine.BatchRequests.Load(),
			BatchQueries:      r.Engine.BatchQueries.Load(),
			BatchGroups:       r.Engine.BatchGroups.Load(),
			InFlight:          r.Engine.InFlight.Load(),
			PeakInFlight:      r.Engine.PeakInFlight.Load(),
			QueueDepth:        r.Engine.QueueDepth.Load(),
			PeakQueueDepth:    r.Engine.PeakQueueDepth.Load(),
			BusyNanos:         r.Engine.BusyNanos.Load(),
			Shed:              r.Engine.Shed.Load(),
			Cancelled:         r.Engine.Cancelled.Load(),
			DeadlineExceeded:  r.Engine.DeadlineExceeded.Load(),
			PanicsRecovered:   r.Engine.PanicsRecovered.Load(),
			QueueWait:         r.Engine.QueueWait.Snapshot(),
			QueryLatency:      r.Engine.QueryLatency.Snapshot(),
		},
		Diversify: DiversifySnapshot{
			Summaries:       r.Diversify.Summaries.Load(),
			Iterations:      r.Diversify.Iterations.Load(),
			CandidatePhotos: r.Diversify.CandidatePhotos.Load(),
			PhotosEvaluated: r.Diversify.PhotosEvaluated.Load(),
			CellsExamined:   r.Diversify.CellsExamined.Load(),
			CellsPruned:     r.Diversify.CellsPruned.Load(),
			SummaryNanos:    r.Diversify.SummaryNanos.Load(),
		},
		Remote: RemoteSnapshot{
			Calls:                r.Remote.Calls.Load(),
			Attempts:             r.Remote.Attempts.Load(),
			Retries:              r.Remote.Retries.Load(),
			HedgesStarted:        r.Remote.HedgesStarted.Load(),
			HedgesWon:            r.Remote.HedgesWon.Load(),
			HedgesWasted:         r.Remote.HedgesWasted.Load(),
			BreakerOpens:         r.Remote.BreakerOpens.Load(),
			BreakerProbes:        r.Remote.BreakerProbes.Load(),
			BreakerShortCircuits: r.Remote.BreakerShortCircuits.Load(),
			Errors:               r.Remote.Errors.Load(),
			Degraded:             r.Remote.Degraded.Load(),
			ShardsMissing:        r.Remote.ShardsMissing.Load(),
		},
		Ingest: IngestSnapshot{
			DeltasAppended: r.Ingest.DeltasAppended.Load(),
			DeltasPending:  r.Ingest.DeltasPending.Load(),
			Publishes:      r.Ingest.Publishes.Load(),
			Compactions:    r.Ingest.Compactions.Load(),
			EpochSeq:       r.Ingest.EpochSeq.Load(),
			EpochsLive:     r.Ingest.EpochsLive.Load(),
			EpochsRetired:  r.Ingest.EpochsRetired.Load(),
			PublishNanos:   r.Ingest.PublishNanos.Load(),
			CompactNanos:   r.Ingest.CompactNanos.Load(),
		},
		Traj: TrajSnapshot{
			RouteQueries:     r.Traj.RouteQueries.Load(),
			TrajQueries:      r.Traj.TrajQueries.Load(),
			Expansions:       r.Traj.Expansions.Load(),
			TracePoints:      r.Traj.TracePoints.Load(),
			MatchedPoints:    r.Traj.MatchedPoints.Load(),
			Shed:             r.Traj.Shed.Load(),
			Cancelled:        r.Traj.Cancelled.Load(),
			DeadlineExceeded: r.Traj.DeadlineExceeded.Load(),
			PanicsRecovered:  r.Traj.PanicsRecovered.Load(),
			SearchNanos:      r.Traj.SearchNanos.Load(),
			MatchNanos:       r.Traj.MatchNanos.Load(),
		},
	}
}
