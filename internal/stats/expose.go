package stats

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file renders a Snapshot in the two textual exposition formats the
// system serves: Prometheus text exposition (for /metrics scrapers) and
// a flat sorted key/value listing (for soibench -stats and golden-file
// tests). Both renderings are deterministic: keys are emitted in sorted
// order and every float uses a fixed formatting, so two snapshots with
// equal counters produce byte-identical output.

// counterRows returns every counter of the snapshot as ⟨name, value,
// isGauge⟩ rows, name in prometheus snake_case without the soi_ prefix.
func (s Snapshot) counterRows() []counterRow {
	return []counterRow{
		{"core_evaluations", s.Core.Evaluations, false},
		{"core_sl1_cells_popped", s.Core.SL1CellsPopped, false},
		{"core_sl2_segments_popped", s.Core.SL2SegmentsPopped, false},
		{"core_sl3_segments_popped", s.Core.SL3SegmentsPopped, false},
		{"core_filter_iterations", s.Core.FilterIterations, false},
		{"core_cell_visits", s.Core.CellVisits, false},
		{"core_segments_seen", s.Core.SegmentsSeen, false},
		{"core_segments_final", s.Core.SegmentsFinal, false},
		{"core_mass_cache_hits", s.Core.MassCacheHits, false},
		{"core_mass_cache_misses", s.Core.MassCacheMisses, false},
		{"core_refine_drained", s.Core.RefineDrained, false},
		{"core_build_lists_ns", s.Core.BuildListsNanos, false},
		{"core_filter_ns", s.Core.FilterNanos, false},
		{"core_refine_ns", s.Core.RefineNanos, false},
		{"engine_queries", s.Engine.Queries, false},
		{"engine_result_cache_hits", s.Engine.ResultCacheHits, false},
		{"engine_result_cache_misses", s.Engine.ResultCacheMisses, false},
		{"engine_dedup_joins", s.Engine.DedupJoins, false},
		{"engine_evaluations", s.Engine.Evaluations, false},
		{"engine_batch_requests", s.Engine.BatchRequests, false},
		{"engine_batch_queries", s.Engine.BatchQueries, false},
		{"engine_batch_groups", s.Engine.BatchGroups, false},
		{"engine_in_flight", s.Engine.InFlight, true},
		{"engine_peak_in_flight", s.Engine.PeakInFlight, true},
		{"engine_queue_depth", s.Engine.QueueDepth, true},
		{"engine_peak_queue_depth", s.Engine.PeakQueueDepth, true},
		{"engine_busy_ns", s.Engine.BusyNanos, false},
		// Robustness outcomes: kept un-prefixed so they read as
		// service-level counters (soi_shed_total, soi_cancelled_total,
		// soi_deadline_exceeded_total, soi_panics_recovered_total).
		{"shed", s.Engine.Shed, false},
		{"cancelled", s.Engine.Cancelled, false},
		{"deadline_exceeded", s.Engine.DeadlineExceeded, false},
		{"panics_recovered", s.Engine.PanicsRecovered, false},
		{"ingest_deltas_appended", s.Ingest.DeltasAppended, false},
		{"ingest_deltas_pending", s.Ingest.DeltasPending, true},
		{"ingest_publishes", s.Ingest.Publishes, false},
		{"ingest_compactions", s.Ingest.Compactions, false},
		{"ingest_epoch_seq", s.Ingest.EpochSeq, true},
		{"ingest_epochs_live", s.Ingest.EpochsLive, true},
		{"ingest_epochs_retired", s.Ingest.EpochsRetired, false},
		{"ingest_publish_ns", s.Ingest.PublishNanos, false},
		{"ingest_compact_ns", s.Ingest.CompactNanos, false},
		{"remote_calls", s.Remote.Calls, false},
		{"remote_attempts", s.Remote.Attempts, false},
		{"remote_retries", s.Remote.Retries, false},
		{"remote_hedges_started", s.Remote.HedgesStarted, false},
		{"remote_hedges_won", s.Remote.HedgesWon, false},
		{"remote_hedges_wasted", s.Remote.HedgesWasted, false},
		{"remote_breaker_opens", s.Remote.BreakerOpens, false},
		{"remote_breaker_probes", s.Remote.BreakerProbes, false},
		{"remote_breaker_short_circuits", s.Remote.BreakerShortCircuits, false},
		{"remote_errors", s.Remote.Errors, false},
		{"remote_degraded", s.Remote.Degraded, false},
		{"remote_shards_missing", s.Remote.ShardsMissing, false},
		{"traj_route_queries", s.Traj.RouteQueries, false},
		{"traj_traj_queries", s.Traj.TrajQueries, false},
		{"traj_expansions", s.Traj.Expansions, false},
		{"traj_trace_points", s.Traj.TracePoints, false},
		{"traj_matched_points", s.Traj.MatchedPoints, false},
		{"traj_shed", s.Traj.Shed, false},
		{"traj_cancelled", s.Traj.Cancelled, false},
		{"traj_deadline_exceeded", s.Traj.DeadlineExceeded, false},
		{"traj_panics_recovered", s.Traj.PanicsRecovered, false},
		{"traj_search_ns", s.Traj.SearchNanos, false},
		{"traj_match_ns", s.Traj.MatchNanos, false},
		{"diversify_summaries", s.Diversify.Summaries, false},
		{"diversify_iterations", s.Diversify.Iterations, false},
		{"diversify_candidate_photos", s.Diversify.CandidatePhotos, false},
		{"diversify_photos_evaluated", s.Diversify.PhotosEvaluated, false},
		{"diversify_cells_examined", s.Diversify.CellsExamined, false},
		{"diversify_cells_pruned", s.Diversify.CellsPruned, false},
		{"diversify_summary_ns", s.Diversify.SummaryNanos, false},
	}
}

type counterRow struct {
	name  string
	value int64
	gauge bool
}

type histRow struct {
	name string
	h    HistogramSnapshot
}

func (s Snapshot) histRows() []histRow {
	return []histRow{
		{"engine_queue_wait_seconds", s.Engine.QueueWait},
		{"engine_query_latency_seconds", s.Engine.QueryLatency},
	}
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format under the soi_ namespace. Counters get a _total suffix, gauges
// none; histograms render cumulative le buckets plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	rows := s.counterRows()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		name, typ := "soi_"+r.name+"_total", "counter"
		if r.gauge {
			name, typ = "soi_"+r.name, "gauge"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, typ, name, r.value); err != nil {
			return err
		}
	}
	hists := s.histRows()
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	bounds := BucketBounds()
	for _, hr := range hists {
		name := "soi_" + hr.name
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, b := range bounds {
			cum += hr.h.Buckets[i]
			le := strconv.FormatFloat(float64(b)/1e9, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		cum += hr.h.Buckets[NumBuckets-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			name, strconv.FormatFloat(float64(hr.h.SumNano)/1e9, 'g', -1, 64), name, hr.h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the snapshot as sorted "key value" lines: integer
// counters verbatim, histogram summaries as count plus fixed three-
// decimal millisecond quantiles. The sorted keys and fixed float format
// keep the output layout stable for golden-file testing.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, 48)
	for _, r := range s.counterRows() {
		lines = append(lines, fmt.Sprintf("%s %d", r.name, r.value))
	}
	for _, hr := range s.histRows() {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", hr.name, hr.h.Count),
			fmt.Sprintf("%s_sum_ms %.3f", hr.name, float64(hr.h.SumNano)/1e6),
			fmt.Sprintf("%s_p50_ms %.3f", hr.name, float64(hr.h.P50Nano)/1e6),
			fmt.Sprintf("%s_p95_ms %.3f", hr.name, float64(hr.h.P95Nano)/1e6),
			fmt.Sprintf("%s_p99_ms %.3f", hr.name, float64(hr.h.P99Nano)/1e6),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
