package lcmsr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
)

// lattice builds an n×n unit lattice.
func lattice(t *testing.T, n int) *network.Network {
	t.Helper()
	b := network.NewBuilder()
	for i := 0; i < n; i++ {
		pts := make([]geo.Point, n)
		for j := 0; j < n; j++ {
			pts[j] = geo.Pt(float64(j), float64(i))
		}
		b.AddStreet("h", pts)
	}
	for j := 0; j < n; j++ {
		pts := make([]geo.Point, n)
		for i := 0; i < n; i++ {
			pts[i] = geo.Pt(float64(j), float64(i))
		}
		b.AddStreet("v", pts)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// vertexAt finds the lattice vertex with the given coordinates.
func vertexAt(t *testing.T, net *network.Network, x, y float64) network.VertexID {
	t.Helper()
	for v := 0; v < net.NumVertices(); v++ {
		if net.Vertex(network.VertexID(v)) == geo.Pt(x, y) {
			return network.VertexID(v)
		}
	}
	t.Fatalf("no vertex at (%v,%v)", x, y)
	return 0
}

func TestQueryPicksDenseCluster(t *testing.T) {
	net := lattice(t, 5)
	scores := make([]float64, net.NumVertices())
	// Dense cluster around (1,1): scores 5 on four adjacent vertices.
	for _, c := range [][2]float64{{1, 1}, {2, 1}, {1, 2}, {2, 2}} {
		scores[vertexAt(t, net, c[0], c[1])] = 5
	}
	// A lone far vertex with a bigger single score.
	scores[vertexAt(t, net, 4, 4)] = 7
	r, err := Query(net, scores, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Score != 20 {
		t.Fatalf("score = %v, want the 4-vertex cluster (20)", r.Score)
	}
	if r.Length > 4 {
		t.Fatalf("budget exceeded: %v", r.Length)
	}
	if !r.Connected(net) {
		t.Fatal("region not connected")
	}
}

func TestQueryBudgetBinding(t *testing.T) {
	net := lattice(t, 4)
	scores := make([]float64, net.NumVertices())
	for v := range scores {
		scores[v] = 1 // uniform
	}
	r, err := Query(net, scores, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Budget 3 on unit edges → at most 3 edges → at most 4 vertices.
	if len(r.Segments) > 3 {
		t.Fatalf("segments = %d", len(r.Segments))
	}
	if r.Score != float64(len(r.Vertices)) {
		t.Fatalf("score %v != covered vertices %d", r.Score, len(r.Vertices))
	}
	if !r.Connected(net) {
		t.Fatal("region not connected")
	}
}

func TestQueryErrors(t *testing.T) {
	net := lattice(t, 2)
	scores := make([]float64, net.NumVertices())
	if _, err := Query(net, scores[:1], 1, Options{}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := Query(net, scores, 0, Options{}); err == nil {
		t.Fatal("expected budget error")
	}
	if _, err := Query(net, scores, 1, Options{}); err == nil {
		t.Fatal("expected no-score error")
	}
}

func TestQueryZeroBudgetEdgeCase(t *testing.T) {
	net := lattice(t, 3)
	scores := make([]float64, net.NumVertices())
	scores[0] = 3
	// Tiny budget: the region is just the best vertex.
	r, err := Query(net, scores, 1e-9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Segments) != 0 || r.Score != 3 {
		t.Fatalf("region = %+v", r)
	}
}

// Property: the region always respects the budget, stays connected, and
// its score equals the sum over its vertices.
func TestQueryInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 30; trial++ {
		net := lattice(t, rng.Intn(5)+3)
		scores := make([]float64, net.NumVertices())
		for v := range scores {
			if rng.Float64() < 0.4 {
				scores[v] = rng.Float64() * 10
			}
		}
		hasScore := false
		for _, s := range scores {
			if s > 0 {
				hasScore = true
			}
		}
		if !hasScore {
			continue
		}
		budget := rng.Float64() * 12
		if budget <= 0 {
			continue
		}
		r, err := Query(net, scores, budget, Options{Restarts: rng.Intn(5) + 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.Length > budget+1e-9 {
			t.Fatalf("trial %d: budget %v exceeded: %v", trial, budget, r.Length)
		}
		if !r.Connected(net) {
			t.Fatalf("trial %d: disconnected region", trial)
		}
		var sum float64
		for _, v := range r.Vertices {
			sum += scores[v]
		}
		if math.Abs(sum-r.Score) > 1e-9 {
			t.Fatalf("trial %d: score %v != vertex sum %v", trial, r.Score, sum)
		}
	}
}

func TestVertexScores(t *testing.T) {
	b := network.NewBuilder()
	b.AddStreet("s", []geo.Point{geo.Pt(0, 0), geo.Pt(2, 0)})
	net, _ := b.Build()
	pb := poi.NewBuilder(nil)
	pb.Add(geo.Pt(0.2, 0.1), []string{"shop"})             // snaps to vertex 0
	pb.AddWeighted(geo.Pt(1.9, -0.1), []string{"shop"}, 2) // snaps to vertex 1
	pb.Add(geo.Pt(1.0, 0.0), []string{"museum"})           // irrelevant
	corpus := pb.Build()
	query, _ := corpus.Dict().LookupAll([]string{"shop"})
	scores := VertexScores(net, corpus, query)
	if scores[0] != 1 || scores[1] != 2 {
		t.Fatalf("scores = %v", scores)
	}
}

func TestRegionStreets(t *testing.T) {
	net := lattice(t, 3)
	r := Region{Segments: []network.SegmentID{0, 1}}
	sts := r.Streets(net)
	if len(sts) != 1 {
		t.Fatalf("streets = %v (segments 0,1 are on the same street)", sts)
	}
}
