// Package lcmsr implements the closest prior work the paper argues
// against: the length-constrained maximum-sum region query of Cao et al.
// (PVLDB 2014, the paper's reference [7]). Given a road network whose
// vertices carry scores (relevant POIs snapped to their nearest vertex,
// the assumption the paper criticizes) and a total-length budget, LCMSR
// asks for a connected subgraph maximizing the summed score of covered
// vertices. The problem is NP-hard; like [7] we use a polynomial
// approximation — greedy expansion with multiple restarts.
//
// The package exists so the repository can demonstrate the paper's
// critique empirically (Section 1): the returned region is a single
// connected blob that favors POI quantity over density, drags in
// low-value filler edges to keep connectivity, and cannot surface
// several disjoint interesting streets at once — which is precisely what
// the k-SOI ranking does instead.
package lcmsr

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// Region is a connected subgraph returned by the query.
type Region struct {
	// Segments are the network segments included in the region.
	Segments []network.SegmentID
	// Vertices are the covered vertices (score is collected per vertex).
	Vertices []network.VertexID
	// Score is the summed score of the covered vertices.
	Score float64
	// Length is the summed length of the included segments.
	Length float64
}

// Streets returns the distinct streets the region's segments belong to.
func (r *Region) Streets(net *network.Network) []network.StreetID {
	seen := map[network.StreetID]bool{}
	var out []network.StreetID
	for _, sid := range r.Segments {
		st := net.Segment(sid).Street
		if !seen[st] {
			seen[st] = true
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VertexScores snaps every query-relevant POI to its nearest network
// vertex (the modeling assumption of [7] that the paper criticizes as
// unrealistic) and returns the per-vertex score vector. Nearest is
// resolved by brute force over all segments; corpus-scale callers should
// use VertexScoresWith and supply a spatial prefilter.
func VertexScores(net *network.Network, corpus *poi.Corpus, query vocab.Set) []float64 {
	all := allSegments(net)
	return VertexScoresWith(net, corpus, query, func(geo.Point) []network.SegmentID {
		return all
	})
}

func allSegments(net *network.Network) []network.SegmentID {
	out := make([]network.SegmentID, net.NumSegments())
	for i := range out {
		out[i] = network.SegmentID(i)
	}
	return out
}

// VertexScoresWith is VertexScores with a caller-supplied candidate
// generator: for each relevant POI the generator returns the segments to
// consider as its snap target (e.g. the segments near the POI's grid
// cell). A POI with no candidates is skipped, mirroring [7]'s silent
// restriction to POIs on the network.
func VertexScoresWith(net *network.Network, corpus *poi.Corpus, query vocab.Set, candidates func(geo.Point) []network.SegmentID) []float64 {
	scores := make([]float64, net.NumVertices())
	for _, p := range corpus.All() {
		if !p.Keywords.Intersects(query) {
			continue
		}
		cands := candidates(p.Loc)
		bestSeg := network.SegmentID(0)
		bestD := 0.0
		found := false
		for _, sid := range cands {
			d := net.Segment(sid).Geom.DistToPointSq(p.Loc)
			if !found || d < bestD {
				bestSeg = sid
				bestD = d
				found = true
			}
		}
		if !found {
			continue
		}
		seg := net.Segment(bestSeg)
		// Snap to the closer endpoint of the nearest segment.
		if p.Loc.DistSq(net.Vertex(seg.From)) <= p.Loc.DistSq(net.Vertex(seg.To)) {
			scores[seg.From] += p.Weight
		} else {
			scores[seg.To] += p.Weight
		}
	}
	return scores
}

// adjacency is the undirected segment adjacency of the network.
type adjacency struct {
	edges [][]adjEdge
}

type adjEdge struct {
	to  network.VertexID
	seg network.SegmentID
	w   float64
}

// connectorSeg marks a pedestrian connector between two near-miss
// vertices rather than a real street segment.
const connectorSeg = network.SegmentID(^uint32(0))

func buildAdjacency(net *network.Network, snap float64) *adjacency {
	a := &adjacency{edges: make([][]adjEdge, net.NumVertices())}
	for _, seg := range net.Segments() {
		a.edges[seg.From] = append(a.edges[seg.From], adjEdge{to: seg.To, seg: seg.ID, w: seg.Length()})
		a.edges[seg.To] = append(a.edges[seg.To], adjEdge{to: seg.From, seg: seg.ID, w: seg.Length()})
	}
	if snap <= 0 || net.NumVertices() == 0 {
		return a
	}
	// Join vertices closer than snap with connector edges, so streets
	// that cross without sharing a vertex are mutually reachable (the
	// connected-network assumption of [7]).
	type cellKey struct{ x, y int32 }
	buckets := make(map[cellKey][]network.VertexID)
	keyOf := func(v network.VertexID) cellKey {
		p := net.Vertex(v)
		return cellKey{int32(math.Floor(p.X / snap)), int32(math.Floor(p.Y / snap))}
	}
	for v := 0; v < net.NumVertices(); v++ {
		buckets[keyOf(network.VertexID(v))] = append(buckets[keyOf(network.VertexID(v))], network.VertexID(v))
	}
	for v := 0; v < net.NumVertices(); v++ {
		vid := network.VertexID(v)
		pv := net.Vertex(vid)
		k := keyOf(vid)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, u := range buckets[cellKey{k.x + dx, k.y + dy}] {
					if u <= vid {
						continue
					}
					if d := pv.Dist(net.Vertex(u)); d <= snap {
						a.edges[vid] = append(a.edges[vid], adjEdge{to: u, seg: connectorSeg, w: d})
						a.edges[u] = append(a.edges[u], adjEdge{to: vid, seg: connectorSeg, w: d})
					}
				}
			}
		}
	}
	return a
}

// frontierEdge is a candidate expansion ordered by score gain per length.
type frontierEdge struct {
	edge adjEdge
	gain float64 // score of the new vertex
}

type frontier []frontierEdge

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	// Maximize gain per unit length; zero-length edges are free wins.
	li, lj := f[i].edge.w, f[j].edge.w
	if li == 0 || lj == 0 {
		return li < lj
	}
	return f[i].gain/li > f[j].gain/lj
}
func (f frontier) Swap(i, j int)       { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x interface{}) { *f = append(*f, x.(frontierEdge)) }
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	e := old[n-1]
	*f = old[:n-1]
	return e
}

// Options control the approximation.
type Options struct {
	// Restarts is the number of top-scoring seed vertices to expand from
	// (the best region over all restarts is returned); defaults to 8.
	Restarts int
	// SnapRadius, when positive, joins vertices closer than this with
	// pedestrian connector edges so the region can expand across streets
	// that cross without a shared vertex.
	SnapRadius float64
}

// Query runs the greedy LCMSR approximation: from each seed vertex, grow
// a connected subgraph by repeatedly taking the frontier edge with the
// best score-per-length ratio while the length budget allows, then
// return the best region found.
func Query(net *network.Network, scores []float64, budget float64, opts Options) (Region, error) {
	if len(scores) != net.NumVertices() {
		return Region{}, fmt.Errorf("lcmsr: %d scores for %d vertices", len(scores), net.NumVertices())
	}
	if budget <= 0 {
		return Region{}, errors.New("lcmsr: non-positive budget")
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	// Seeds: the highest-scoring vertices.
	seeds := make([]network.VertexID, 0, restarts)
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if scores[order[i]] != scores[order[j]] {
			return scores[order[i]] > scores[order[j]]
		}
		return order[i] < order[j]
	})
	for i := 0; i < len(order) && len(seeds) < restarts; i++ {
		if scores[order[i]] <= 0 {
			break
		}
		seeds = append(seeds, network.VertexID(order[i]))
	}
	if len(seeds) == 0 {
		return Region{}, errors.New("lcmsr: no vertex carries a positive score")
	}
	adj := buildAdjacency(net, opts.SnapRadius)
	var best Region
	for _, seed := range seeds {
		r := expand(net, adj, scores, seed, budget)
		if r.Score > best.Score || (r.Score == best.Score && r.Length < best.Length) {
			best = r
		}
	}
	return best, nil
}

func expand(net *network.Network, adj *adjacency, scores []float64, seed network.VertexID, budget float64) Region {
	inRegion := map[network.VertexID]bool{seed: true}
	segUsed := map[network.SegmentID]bool{}
	r := Region{Vertices: []network.VertexID{seed}, Score: scores[seed]}
	var f frontier
	pushFrontier := func(v network.VertexID) {
		for _, e := range adj.edges[v] {
			used := e.seg != connectorSeg && segUsed[e.seg]
			if !inRegion[e.to] && !used {
				heap.Push(&f, frontierEdge{edge: e, gain: scores[e.to]})
			}
		}
	}
	pushFrontier(seed)
	for f.Len() > 0 {
		fe := heap.Pop(&f).(frontierEdge)
		if inRegion[fe.edge.to] || (fe.edge.seg != connectorSeg && segUsed[fe.edge.seg]) {
			continue // stale entry
		}
		if r.Length+fe.edge.w > budget {
			continue // this edge no longer fits; cheaper ones may
		}
		if fe.edge.seg != connectorSeg {
			segUsed[fe.edge.seg] = true
		}
		inRegion[fe.edge.to] = true
		if fe.edge.seg != connectorSeg {
			r.Segments = append(r.Segments, fe.edge.seg)
		}
		r.Vertices = append(r.Vertices, fe.edge.to)
		r.Score += scores[fe.edge.to]
		r.Length += fe.edge.w
		pushFrontier(fe.edge.to)
	}
	sort.Slice(r.Segments, func(i, j int) bool { return r.Segments[i] < r.Segments[j] })
	sort.Slice(r.Vertices, func(i, j int) bool { return r.Vertices[i] < r.Vertices[j] })
	return r
}

// Connected reports whether the region's segments form one connected
// component together with its vertices; used by tests and sanity checks.
func (r *Region) Connected(net *network.Network) bool {
	if len(r.Vertices) == 0 {
		return false
	}
	if len(r.Segments) == 0 {
		return len(r.Vertices) == 1
	}
	adjLocal := map[network.VertexID][]network.VertexID{}
	for _, sid := range r.Segments {
		seg := net.Segment(sid)
		adjLocal[seg.From] = append(adjLocal[seg.From], seg.To)
		adjLocal[seg.To] = append(adjLocal[seg.To], seg.From)
	}
	seen := map[network.VertexID]bool{}
	stack := []network.VertexID{r.Vertices[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, adjLocal[v]...)
	}
	for _, v := range r.Vertices {
		if !seen[v] {
			return false
		}
	}
	return true
}
