package lcmsr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// naiveVertexScores is an independent O(|P|·|L|) reference for the
// snapping rule: each query-relevant POI snaps to the closer endpoint of
// its nearest segment (ties by lowest segment id, endpoint ties to the
// From vertex), contributing its weight there. Accumulation runs in
// corpus order, so a correct production implementation matches it
// bit-for-bit.
func naiveVertexScores(net *network.Network, corpus *poi.Corpus, query vocab.Set) []float64 {
	scores := make([]float64, net.NumVertices())
	for _, p := range corpus.All() {
		if !p.Keywords.Intersects(query) {
			continue
		}
		if net.NumSegments() == 0 {
			continue
		}
		best := network.SegmentID(0)
		bestD := math.Inf(1)
		for sid := 0; sid < net.NumSegments(); sid++ {
			if d := net.Segment(network.SegmentID(sid)).Geom.DistToPointSq(p.Loc); d < bestD {
				best, bestD = network.SegmentID(sid), d
			}
		}
		seg := net.Segment(best)
		if p.Loc.DistSq(net.Vertex(seg.From)) <= p.Loc.DistSq(net.Vertex(seg.To)) {
			scores[seg.From] += p.Weight
		} else {
			scores[seg.To] += p.Weight
		}
	}
	return scores
}

// randomCorpus scatters n POIs with random keywords and weights over the
// unit-lattice extent of an s×s network.
func randomCorpus(rng *rand.Rand, s float64, n int) *poi.Corpus {
	vocabulary := []string{"shop", "cafe", "museum", "bar", "park"}
	pb := poi.NewBuilder(nil)
	for i := 0; i < n; i++ {
		kws := []string{vocabulary[rng.Intn(len(vocabulary))]}
		if rng.Intn(3) == 0 {
			kws = append(kws, vocabulary[rng.Intn(len(vocabulary))])
		}
		loc := geo.Pt(rng.Float64()*s, rng.Float64()*s)
		pb.AddWeighted(loc, kws, 0.5+rng.Float64()*4)
	}
	return pb.Build()
}

// Property: VertexScores agrees bit-for-bit with the independent naive
// reference over random corpora and keyword queries.
func TestVertexScoresMatchesNaiveReference(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(900 + int64(trial)))
		net := lattice(t, 3+rng.Intn(4))
		corpus := randomCorpus(rng, 5, 50+rng.Intn(150))
		kw := []string{"shop", "cafe", "museum", "bar", "park"}[rng.Intn(5)]
		query, _ := corpus.Dict().LookupAll([]string{kw})
		got := VertexScores(net, corpus, query)
		want := naiveVertexScores(net, corpus, query)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d scores, want %d", trial, len(got), len(want))
		}
		for v := range got {
			if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
				t.Fatalf("trial %d: vertex %d score %v != reference %v", trial, v, got[v], want[v])
			}
		}
	}
}

// Property: supplying the all-segments candidate generator to
// VertexScoresWith is exactly VertexScores, and a generator restricted
// to each POI's true nearest segment keeps the answer unchanged.
func TestVertexScoresWithGeneratorConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	net := lattice(t, 5)
	corpus := randomCorpus(rng, 4, 120)
	query, _ := corpus.Dict().LookupAll([]string{"shop", "bar"})
	base := VertexScores(net, corpus, query)

	all := allSegments(net)
	viaAll := VertexScoresWith(net, corpus, query, func(geo.Point) []network.SegmentID { return all })
	for v := range base {
		if math.Float64bits(base[v]) != math.Float64bits(viaAll[v]) {
			t.Fatalf("vertex %d: all-segments generator diverges: %v != %v", v, viaAll[v], base[v])
		}
	}

	nearestOnly := VertexScoresWith(net, corpus, query, func(p geo.Point) []network.SegmentID {
		best := network.SegmentID(0)
		bestD := math.Inf(1)
		for sid := 0; sid < net.NumSegments(); sid++ {
			if d := net.Segment(network.SegmentID(sid)).Geom.DistToPointSq(p); d < bestD {
				best, bestD = network.SegmentID(sid), d
			}
		}
		return []network.SegmentID{best}
	})
	for v := range base {
		if math.Float64bits(base[v]) != math.Float64bits(nearestOnly[v]) {
			t.Fatalf("vertex %d: nearest-only generator diverges: %v != %v", v, nearestOnly[v], base[v])
		}
	}
}

// Property: over random score vectors and budgets, Query returns a
// region that is connected, within budget, duplicate-free, correctly
// accounted, and at least as good as its best seed vertex alone.
func TestQueryRandomProperties(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(1700 + int64(trial)))
		net := lattice(t, 4+rng.Intn(3))
		scores := make([]float64, net.NumVertices())
		maxScore := 0.0
		for v := range scores {
			if rng.Intn(2) == 0 {
				scores[v] = rng.Float64() * 10
				if scores[v] > maxScore {
					maxScore = scores[v]
				}
			}
		}
		if maxScore == 0 {
			continue
		}
		budget := 0.5 + rng.Float64()*8
		r, err := Query(net, scores, budget, Options{Restarts: 1 + rng.Intn(6)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !r.Connected(net) {
			t.Fatalf("trial %d: region not connected: %+v", trial, r)
		}
		if r.Length > budget+1e-9 {
			t.Fatalf("trial %d: length %v exceeds budget %v", trial, r.Length, budget)
		}
		if r.Score < maxScore {
			t.Fatalf("trial %d: score %v below best single vertex %v", trial, r.Score, maxScore)
		}
		seenSeg := map[network.SegmentID]bool{}
		var segLen float64
		for _, sid := range r.Segments {
			if seenSeg[sid] {
				t.Fatalf("trial %d: duplicate segment %d", trial, sid)
			}
			seenSeg[sid] = true
			segLen += net.Segment(sid).Length()
		}
		// Connectors contribute length but no segments, so the segment
		// sum only bounds the reported length from below.
		if segLen > r.Length+1e-9 {
			t.Fatalf("trial %d: segment lengths %v exceed region length %v", trial, segLen, r.Length)
		}
		seenV := map[network.VertexID]bool{}
		var vertexSum float64
		for _, v := range r.Vertices {
			if seenV[v] {
				t.Fatalf("trial %d: duplicate vertex %d", trial, v)
			}
			seenV[v] = true
			vertexSum += scores[v]
		}
		if math.Abs(vertexSum-r.Score) > 1e-9 {
			t.Fatalf("trial %d: vertex score sum %v != region score %v", trial, vertexSum, r.Score)
		}
	}
}

// Degenerate inputs: empty corpora, irrelevant queries, score vectors of
// the wrong shape, and sub-edge budgets all behave predictably.
func TestQueryDegenerateInputs(t *testing.T) {
	net := lattice(t, 3)

	// An empty corpus scores every vertex zero, so Query refuses.
	empty := poi.NewBuilder(nil).Build()
	scores := VertexScores(net, empty, nil)
	for v, s := range scores {
		if s != 0 {
			t.Fatalf("vertex %d scored %v from an empty corpus", v, s)
		}
	}
	if _, err := Query(net, scores, 5, Options{}); err == nil {
		t.Fatal("expected error for all-zero scores")
	}

	// A query matching nothing behaves like an empty corpus.
	pb := poi.NewBuilder(nil)
	pb.Add(geo.Pt(1, 1), []string{"shop"})
	corpus := pb.Build()
	irrelevant := vocab.NewSet([]vocab.ID{9999})
	for v, s := range VertexScores(net, corpus, irrelevant) {
		if s != 0 {
			t.Fatalf("vertex %d scored %v under an irrelevant query", v, s)
		}
	}

	// Wrong-shape score vectors are rejected, not misindexed.
	if _, err := Query(net, make([]float64, 3), 5, Options{}); err == nil {
		t.Fatal("expected error for short score vector")
	}

	// A budget below every edge length still returns the seed vertex.
	good := make([]float64, net.NumVertices())
	good[4] = 7
	r, err := Query(net, good, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vertices) != 1 || r.Score != 7 || len(r.Segments) != 0 {
		t.Fatalf("sub-edge budget region = %+v, want the bare seed", r)
	}
}
