package ingest

import (
	"sync/atomic"

	"repro/internal/core"
)

// Epoch is one immutable generation of the serving index: a fully built
// core.Index over a fixed POI corpus, the epoch's private MassCache, and
// a dense sequence number that keys every result-cache entry derived
// from it. Epochs are reference-counted: installation holds one
// reference, and every in-flight query pins one more for the duration of
// its evaluation, so a retired epoch's memory (and its mass cache) is
// released only after the last reader drains.
type Epoch struct {
	seq  uint64
	ix   *core.Index
	mass *core.MassCache

	// refs counts the install reference plus in-flight readers. It is
	// created at 1 (the install reference); retire releases that
	// reference, and the epoch is dead once refs drains to 0.
	refs atomic.Int64

	// onRelease runs exactly once, when refs drains to zero.
	onRelease func(*Epoch)
}

// newEpoch returns an epoch holding its install reference.
func newEpoch(seq uint64, ix *core.Index, mass *core.MassCache, onRelease func(*Epoch)) *Epoch {
	ep := &Epoch{seq: seq, ix: ix, mass: mass, onRelease: onRelease}
	ep.refs.Add(1)
	return ep
}

// Seq returns the epoch's sequence number.
func (ep *Epoch) Seq() uint64 { return ep.seq }

// Index returns the epoch's immutable index.
func (ep *Epoch) Index() *core.Index { return ep.ix }

// Refs returns the current reference count (for tests and gauges).
func (ep *Epoch) Refs() int64 { return ep.refs.Load() }

// tryAcquire pins the epoch for a reader. It refuses to resurrect an
// epoch whose count has already drained to zero (the pointer the reader
// loaded was stale and the epoch may be mid-release); the caller must
// reload the current epoch and retry.
func (ep *Epoch) tryAcquire() bool {
	for {
		n := ep.refs.Load()
		if n <= 0 {
			return false
		}
		if ep.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops one reference, firing onRelease when the count drains to
// zero. Exactly one caller observes the transition to zero, so the hook
// runs once.
func (ep *Epoch) release() {
	if ep.refs.Add(-1) == 0 && ep.onRelease != nil {
		ep.onRelease(ep)
	}
}
