package ingest_test

// Chaos suite for the write path: faults armed at ingest.publish,
// ingest.compact and ingest.swap (see internal/faults) must never
// corrupt an installed epoch, leak an epoch reference, or let a query
// observe a half-published index. Every scenario runs under -race in CI.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ingest"
)

func newChaosIngestor(t *testing.T, seed int64) (*ingest.Ingestor, *rand.Rand) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ing, err := ingest.New(testNet(t), randDeltas(r, 30), ingest.Config{CellSize: testCell})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	return ing, r
}

// snapshotAnswers evaluates every test query on the current epoch.
func snapshotAnswers(t *testing.T, ing *ingest.Ingestor) (uint64, [][]core.StreetResult) {
	t.Helper()
	seq, ix, _, release := ing.AcquireEpoch()
	defer release()
	var out [][]core.StreetResult
	for _, q := range testQueries {
		out = append(out, runSOI(t, ix, q))
	}
	return seq, out
}

// TestPublishPanicLeavesEpochIntact arms a panic at each publish-path
// site in turn: the publish must fail as an error, the installed epoch
// and its answers must be byte-for-byte what they were, the delta log
// must still hold the unfolded deltas, and a retry must succeed.
func TestPublishPanicLeavesEpochIntact(t *testing.T) {
	for _, site := range []string{ingest.SitePublish, ingest.SiteSwap} {
		t.Run(site, func(t *testing.T) {
			ing, r := newChaosIngestor(t, 10)
			preSeq, pre := snapshotAnswers(t, ing)

			ing.AddBatch(randDeltas(r, 12))
			faults.Activate(site, faults.Fault{Panic: true, PanicValue: "chaos: " + site})
			_, _, err := ing.Publish()
			faults.Deactivate(site)
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("publish with panic at %s: err = %v, want recovered panic", site, err)
			}

			// Installed epoch untouched: same sequence, same answers.
			postSeq, post := snapshotAnswers(t, ing)
			if postSeq != preSeq {
				t.Fatalf("panic advanced the epoch: %d -> %d", preSeq, postSeq)
			}
			for i := range pre {
				mustEqualResults(t, fmt.Sprintf("after panic at %s, query %d", site, i), post[i], pre[i])
			}
			// Log untouched: deltas still pending, none published.
			if _, p, pend := ing.Counts(); p != 0 || pend != 12 {
				t.Fatalf("log after panic: published %d pending %d, want 0, 12", p, pend)
			}
			// Retry succeeds and folds exactly the surviving deltas.
			seq, folded, err := ing.Publish()
			if err != nil || seq != preSeq+1 || folded != 12 {
				t.Fatalf("retry publish = (%d, %d, %v), want (%d, 12, nil)", seq, folded, err, preSeq+1)
			}
			if live := ing.LiveEpochs(); live != 1 {
				t.Fatalf("live epochs = %d, want 1 (no leaked references)", live)
			}
		})
	}
}

// TestCompactPanicLeavesEpochIntact does the same for the compaction
// path: a panic at ingest.compact or at the pre-swap site must leave the
// base/published split, the epoch and its answers untouched.
func TestCompactPanicLeavesEpochIntact(t *testing.T) {
	for _, site := range []string{ingest.SiteCompact, ingest.SiteSwap} {
		t.Run(site, func(t *testing.T) {
			ing, r := newChaosIngestor(t, 11)
			ing.AddBatch(randDeltas(r, 10))
			if _, _, err := ing.Publish(); err != nil {
				t.Fatal(err)
			}
			preSeq, pre := snapshotAnswers(t, ing)

			faults.Activate(site, faults.Fault{Panic: true})
			_, _, err := ing.Compact()
			faults.Deactivate(site)
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("compact with panic at %s: err = %v, want recovered panic", site, err)
			}
			postSeq, post := snapshotAnswers(t, ing)
			if postSeq != preSeq {
				t.Fatalf("panic advanced the epoch: %d -> %d", preSeq, postSeq)
			}
			for i := range pre {
				mustEqualResults(t, fmt.Sprintf("after panic at %s, query %d", site, i), post[i], pre[i])
			}
			if b, p, _ := ing.Counts(); b != 30 || p != 10 {
				t.Fatalf("log after panic: base %d published %d, want 30, 10", b, p)
			}
			// Retry compacts cleanly.
			seq, folded, err := ing.Compact()
			if err != nil || seq != preSeq+1 || folded != 10 {
				t.Fatalf("retry compact = (%d, %d, %v), want (%d, 10, nil)", seq, folded, err, preSeq+1)
			}
		})
	}
}

// TestBlockedPublishDoesNotBlockReadersOrWriters wedges a publish on the
// ingest.publish site: while the publisher is parked, queries must keep
// answering from the installed epoch and writers must keep appending —
// the wedge may only stall the publish itself.
func TestBlockedPublishDoesNotBlockReadersOrWriters(t *testing.T) {
	ing, r := newChaosIngestor(t, 12)
	preSeq, pre := snapshotAnswers(t, ing)
	ing.AddBatch(randDeltas(r, 5))

	gate := make(chan struct{})
	faults.Activate(ingest.SitePublish, faults.Fault{Block: gate})
	defer faults.Deactivate(ingest.SitePublish)

	pubDone := make(chan error, 1)
	go func() {
		_, _, err := ing.Publish()
		pubDone <- err
	}()
	// Wait until the publisher is parked at the site.
	waitFor(t, "publisher to reach the block site", func() bool {
		return faults.Fired(ingest.SitePublish) == 1
	})

	// Readers: answers still come from the installed epoch, promptly.
	seq, got := snapshotAnswers(t, ing)
	if seq != preSeq {
		t.Fatalf("query during wedged publish saw epoch %d, want %d", seq, preSeq)
	}
	for i := range pre {
		mustEqualResults(t, fmt.Sprintf("during wedged publish, query %d", i), got[i], pre[i])
	}
	// Writers: appends return immediately.
	done := make(chan int, 1)
	go func() { done <- ing.AddBatch(randDeltas(r, 3)) }()
	select {
	case n := <-done:
		if n != 8 {
			t.Fatalf("pending after append during wedge = %d, want 8", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AddBatch blocked behind a wedged publish")
	}

	// Unwedge: the publish completes and folds every delta appended
	// before its log snapshot — which it takes after the block, so all 8.
	close(gate)
	if err := <-pubDone; err != nil {
		t.Fatalf("publish after unwedge: %v", err)
	}
	if got := ing.Current().Seq(); got != preSeq+1 {
		t.Fatalf("epoch after unwedge = %d, want %d", got, preSeq+1)
	}
}

// TestNoHalfPublishedEpochObservable hammers AcquireEpoch from many
// goroutines while publishes run with injected delays between build and
// swap: every acquired epoch must be fully built (its index non-nil and
// internally consistent — a query over it succeeds) and its sequence
// must never exceed the installed sequence or go backwards per reader.
func TestNoHalfPublishedEpochObservable(t *testing.T) {
	ing, r := newChaosIngestor(t, 13)
	faults.Activate(ingest.SiteSwap, faults.Fault{Delay: 2 * time.Millisecond})
	defer faults.Deactivate(ingest.SiteSwap)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seq, ix, _, release := ing.AcquireEpoch()
				if ix == nil {
					t.Error("acquired epoch with nil index")
					release()
					return
				}
				if seq < lastSeq {
					t.Errorf("epoch went backwards for one reader: %d after %d", seq, lastSeq)
					release()
					return
				}
				lastSeq = seq
				_ = runSOI(t, ix, testQueries[i%len(testQueries)])
				release()
			}
		}()
	}
	for i := 0; i < 5; i++ {
		ing.AddBatch(randDeltas(r, 6))
		if _, _, err := ing.Publish(); err != nil {
			t.Errorf("publish %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if live := ing.LiveEpochs(); live != 1 {
		t.Fatalf("live epochs after drain = %d, want 1", live)
	}
	if retired := ing.RetiredEpochs(); retired != 5 {
		t.Fatalf("retired epochs = %d, want 5", retired)
	}
}
