package ingest_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/ingest"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/vocab"
)

const testCell = 0.0005

var testKeywords = []string{"cafe", "shop", "park", "museum", "food"}

// testNet builds a small street grid: 4 horizontal and 4 vertical
// streets over a 0.01 × 0.01 extent.
func testNet(t *testing.T) *network.Network {
	t.Helper()
	nb := network.NewBuilder()
	for i := 0; i < 4; i++ {
		y := 0.001 + 0.0025*float64(i)
		nb.AddStreet(fmt.Sprintf("h%d", i), []geo.Point{
			geo.Pt(0, y), geo.Pt(0.004, y), geo.Pt(0.01, y),
		})
		x := 0.001 + 0.0025*float64(i)
		nb.AddStreet(fmt.Sprintf("v%d", i), []geo.Point{
			geo.Pt(x, 0), geo.Pt(x, 0.006), geo.Pt(x, 0.01),
		})
	}
	net, err := nb.Build()
	if err != nil {
		t.Fatalf("building network: %v", err)
	}
	return net
}

// randDeltas derives n deterministic deltas from the rng.
func randDeltas(r *rand.Rand, n int) []ingest.Delta {
	out := make([]ingest.Delta, n)
	for i := range out {
		kws := []string{testKeywords[r.Intn(len(testKeywords))]}
		if r.Intn(3) == 0 {
			kws = append(kws, testKeywords[r.Intn(len(testKeywords))])
		}
		out[i] = ingest.Delta{
			Loc:      geo.Pt(r.Float64()*0.01, r.Float64()*0.01),
			Keywords: kws,
			Weight:   1 + float64(r.Intn(3)),
		}
	}
	return out
}

// coldIndex builds a fresh compact index over the given corpus specs,
// mirroring what an epoch build does.
func coldIndex(t *testing.T, net *network.Network, corpus []ingest.Delta) *core.Index {
	t.Helper()
	pb := poi.NewBuilder(vocab.NewDictionary())
	for _, d := range corpus {
		pb.AddWeighted(d.Loc, d.Keywords, d.Weight)
	}
	ix, err := core.NewIndex(net, pb.Build(), core.IndexConfig{CellSize: testCell, Compact: true})
	if err != nil {
		t.Fatalf("cold index build: %v", err)
	}
	return ix
}

var testQueries = []core.Query{
	{Keywords: []string{"cafe"}, K: 5, Epsilon: 0.0008},
	{Keywords: []string{"shop", "park"}, K: 3, Epsilon: 0.0005},
	{Keywords: []string{"museum", "food", "cafe"}, K: 8, Epsilon: 0.0012},
}

// mustEqualResults compares two rankings bit-exactly.
func mustEqualResults(t *testing.T, label string, got, want []core.StreetResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Street != want[i].Street ||
			math.Float64bits(got[i].Interest) != math.Float64bits(want[i].Interest) ||
			math.Float64bits(got[i].Mass) != math.Float64bits(want[i].Mass) {
			t.Fatalf("%s: rank %d differs: got {street %d interest %x mass %x}, want {street %d interest %x mass %x}",
				label, i,
				got[i].Street, math.Float64bits(got[i].Interest), math.Float64bits(got[i].Mass),
				want[i].Street, math.Float64bits(want[i].Interest), math.Float64bits(want[i].Mass))
		}
	}
}

func runSOI(t *testing.T, ix *core.Index, q core.Query) []core.StreetResult {
	t.Helper()
	res, _, err := ix.SOIContext(context.Background(), q, core.CostAware, nil)
	if err != nil {
		t.Fatalf("SOI: %v", err)
	}
	return res
}

func TestPublishInstallsEquivalentEpoch(t *testing.T) {
	net := testNet(t)
	r := rand.New(rand.NewSource(1))
	base := randDeltas(r, 40)
	ing, err := ingest.New(net, base, ingest.Config{CellSize: testCell})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	if got := ing.Current().Seq(); got != 1 {
		t.Fatalf("initial epoch seq = %d, want 1", got)
	}

	delta := randDeltas(r, 25)
	if n := ing.AddBatch(delta); n != 25 {
		t.Fatalf("pending after AddBatch = %d, want 25", n)
	}
	seq, folded, err := ing.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || folded != 25 {
		t.Fatalf("Publish = (%d, %d), want (2, 25)", seq, folded)
	}
	b, p, pend := ing.Counts()
	if b != 40 || p != 25 || pend != 0 {
		t.Fatalf("Counts = (%d, %d, %d), want (40, 25, 0)", b, p, pend)
	}

	// The published epoch must answer bit-identically to a cold rebuild
	// over base ++ delta in append order.
	want := coldIndex(t, net, append(append([]ingest.Delta(nil), base...), delta...))
	gotSeq, ix, _, release := ing.AcquireEpoch()
	defer release()
	if gotSeq != 2 {
		t.Fatalf("AcquireEpoch seq = %d, want 2", gotSeq)
	}
	for _, q := range testQueries {
		mustEqualResults(t, fmt.Sprintf("epoch 2 vs cold, query %v", q.Keywords),
			runSOI(t, ix, q), runSOI(t, want, q))
	}

	// Publishing with nothing pending is a no-op.
	seq, folded, err = ing.Publish()
	if err != nil || seq != 2 || folded != 0 {
		t.Fatalf("no-op Publish = (%d, %d, %v), want (2, 0, nil)", seq, folded, err)
	}
}

func TestCompactFoldsLogAndPreservesAnswers(t *testing.T) {
	net := testNet(t)
	r := rand.New(rand.NewSource(2))
	ing, err := ingest.New(net, randDeltas(r, 30), ingest.Config{CellSize: testCell})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	ing.AddBatch(randDeltas(r, 20))
	if _, _, err := ing.Publish(); err != nil {
		t.Fatal(err)
	}
	ing.AddBatch(randDeltas(r, 10))
	if _, _, err := ing.Publish(); err != nil {
		t.Fatal(err)
	}

	_, preIx, _, preRelease := ing.AcquireEpoch()
	var pre [][]core.StreetResult
	for _, q := range testQueries {
		pre = append(pre, runSOI(t, preIx, q))
	}
	preRelease()

	seq, folded, err := ing.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 || folded != 30 {
		t.Fatalf("Compact = (%d, %d), want (4, 30)", seq, folded)
	}
	b, p, pend := ing.Counts()
	if b != 60 || p != 0 || pend != 0 {
		t.Fatalf("Counts after compact = (%d, %d, %d), want (60, 0, 0)", b, p, pend)
	}
	_, postIx, _, postRelease := ing.AcquireEpoch()
	defer postRelease()
	for i, q := range testQueries {
		mustEqualResults(t, fmt.Sprintf("compacted vs pre-compaction, query %v", q.Keywords),
			runSOI(t, postIx, q), pre[i])
	}

	// Compacting an already-compacted log is a no-op.
	seq, folded, err = ing.Compact()
	if err != nil || seq != 4 || folded != 0 {
		t.Fatalf("no-op Compact = (%d, %d, %v), want (4, 0, nil)", seq, folded, err)
	}
}

func TestEpochRefcountLifecycle(t *testing.T) {
	net := testNet(t)
	r := rand.New(rand.NewSource(3))
	rec := stats.NewRecorder()
	ing, err := ingest.New(net, randDeltas(r, 20), ingest.Config{CellSize: testCell, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	// Pin epoch 1, then publish twice: epoch 1 must survive until its
	// reader releases, epoch 2 must retire as soon as epoch 3 installs.
	seq1, ix1, _, release1 := ing.AcquireEpoch()
	if seq1 != 1 {
		t.Fatalf("pinned seq = %d, want 1", seq1)
	}
	ing.AddBatch(randDeltas(r, 5))
	if _, _, err := ing.Publish(); err != nil {
		t.Fatal(err)
	}
	ing.AddBatch(randDeltas(r, 5))
	if _, _, err := ing.Publish(); err != nil {
		t.Fatal(err)
	}
	if live, retired := ing.LiveEpochs(), ing.RetiredEpochs(); live != 2 || retired != 1 {
		t.Fatalf("with a pinned old epoch: live = %d retired = %d, want 2, 1", live, retired)
	}
	// The pinned index must still answer (its arrays were not released).
	_ = runSOI(t, ix1, testQueries[0])
	release1()
	if live, retired := ing.LiveEpochs(), ing.RetiredEpochs(); live != 1 || retired != 2 {
		t.Fatalf("after release: live = %d retired = %d, want 1, 2", live, retired)
	}

	snap := rec.Snapshot()
	if snap.Ingest.EpochSeq != 3 || snap.Ingest.Publishes != 2 || snap.Ingest.EpochsRetired != 2 || snap.Ingest.EpochsLive != 1 {
		t.Fatalf("recorder: %+v", snap.Ingest)
	}
	if snap.Ingest.DeltasAppended != 10 || snap.Ingest.DeltasPending != 0 {
		t.Fatalf("delta counters: %+v", snap.Ingest)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	net := testNet(t)
	r := rand.New(rand.NewSource(4))
	ing, err := ingest.New(net, randDeltas(r, 30), ingest.Config{CellSize: testCell})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	const rounds = 6
	deltas := make([][]ingest.Delta, rounds)
	for i := range deltas {
		deltas[i] = randDeltas(r, 8)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seq, ix, _, release := ing.AcquireEpoch()
				res := runSOI(t, ix, testQueries[i%len(testQueries)])
				release()
				if seq == 0 || (len(res) == 0 && seq > 1) {
					// seq 0 impossible; empty results tolerated but the
					// acquire itself must always yield a live epoch.
					if seq == 0 {
						t.Errorf("AcquireEpoch returned seq 0")
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < rounds; i++ {
		ing.AddBatch(deltas[i])
		if _, _, err := ing.Publish(); err != nil {
			t.Errorf("publish round %d: %v", i, err)
		}
	}
	if _, _, err := ing.Compact(); err != nil {
		t.Errorf("compact: %v", err)
	}
	close(stop)
	wg.Wait()

	if got := ing.Current().Seq(); got != uint64(rounds)+2 {
		t.Fatalf("final seq = %d, want %d", got, rounds+2)
	}
	if live := ing.LiveEpochs(); live != 1 {
		t.Fatalf("live epochs after drain = %d, want 1 (no refcount leaks)", live)
	}
}

func TestAutoPublishAndCompact(t *testing.T) {
	net := testNet(t)
	r := rand.New(rand.NewSource(5))
	ing, err := ingest.New(net, randDeltas(r, 20), ingest.Config{
		CellSize:     testCell,
		BatchSize:    10,
		CompactAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	// Two batches of 10 trigger two auto-publishes, which trigger one
	// auto-compaction.
	ing.AddBatch(randDeltas(r, 10))
	waitFor(t, "auto-publish 1", func() bool { return ing.Current().Seq() >= 2 })
	ing.AddBatch(randDeltas(r, 10))
	waitFor(t, "auto-publish 2 + auto-compact", func() bool {
		b, p, pend := ing.Counts()
		return ing.Current().Seq() >= 4 && b == 40 && p == 0 && pend == 0
	})
	if err := ing.Err(); err != nil {
		t.Fatalf("background error: %v", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCompactionSnapshotRoundTrip(t *testing.T) {
	net := testNet(t)
	r := rand.New(rand.NewSource(6))
	path := filepath.Join(t.TempDir(), "compacted.soi")
	ing, err := ingest.New(net, randDeltas(r, 25), ingest.Config{
		CellSize:     testCell,
		SnapshotPath: path,
		Photos: []ingest.PhotoSpec{
			{Loc: geo.Pt(0.002, 0.001), Tags: []string{"cafe", "street"}},
			{Loc: geo.Pt(0.004, 0.003), Tags: []string{"park"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	ing.AddBatch(randDeltas(r, 15))
	if _, _, err := ing.Publish(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ing.Compact(); err != nil {
		t.Fatal(err)
	}

	snap, m, err := snapshot.Open(path)
	if err != nil {
		t.Fatalf("opening compaction snapshot: %v", err)
	}
	defer m.Close()
	reloaded, err := core.NewIndexFromSlab(snap.Net, snap.POIs, snap.Slab)
	if err != nil {
		t.Fatalf("rebuilding from snapshot: %v", err)
	}
	if snap.Photos.Len() != 2 {
		t.Fatalf("snapshot photos = %d, want 2", snap.Photos.Len())
	}
	_, ix, _, release := ing.AcquireEpoch()
	defer release()
	for _, q := range testQueries {
		mustEqualResults(t, fmt.Sprintf("snapshot reload, query %v", q.Keywords),
			runSOI(t, reloaded, q), runSOI(t, ix, q))
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := ingest.New(testNet(t), nil, ingest.Config{}); err == nil {
		t.Fatal("New accepted a zero cell size")
	}
}
