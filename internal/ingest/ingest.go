// Package ingest is the write path of the SOI system: an epoch-based
// copy-on-write pipeline that lets POIs stream into a serving index
// whose readers never lock.
//
// Writers append deltas to a batched in-memory delta log (Add/AddBatch —
// a mutex-guarded slice append, never blocked by index builds). A
// publisher (Publish, or the background goroutine when Config.BatchSize
// is set) folds the base corpus plus every logged delta into a fresh
// immutable core.Index, wraps it in an Epoch with a private MassCache,
// and installs it with one atomic pointer swap. Queries resolve the
// current epoch per evaluation through AcquireEpoch (the
// engine.EpochSource contract): one atomic load plus a refcount
// increment, no locks, and results are keyed by the epoch's sequence
// number so stale cache entries can never serve post-publish queries.
//
// Background compaction (Compact, or the background goroutine when
// Config.CompactAfter is set) folds the published deltas into a new
// base, rebuilds the index — reusing the compact grid-slab build — and
// optionally persists the folded base as a .soi snapshot
// (internal/snapshot). The previous epoch is retired by releasing its
// install reference; its memory and mass cache are freed when the last
// in-flight reader drains.
//
// Determinism: every epoch's corpus is the base specs followed by the
// published and pending deltas in append order, and each epoch interns a
// fresh dictionary from those specs in that order. POI ids, grid builds
// and mass folds are therefore pure functions of the logical corpus, so
// an epoch's answers are bit-identical to a cold core.NewIndex build
// over the same POIs — the property the interleaved differential harness
// (internal/oracle) checks against the brute-force reference.
package ingest

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/vocab"
)

// Fault-injection sites visited by the write path (see internal/faults).
// The chaos suite arms them to delay, wedge or crash a publish or
// compaction at its most sensitive points; none of them can corrupt an
// installed epoch, because every site fires before the commit block that
// mutates the log and swaps the pointer.
const (
	// SitePublish is visited at the start of every publish, before the
	// delta log is read.
	SitePublish = "ingest.publish"
	// SiteCompact is visited at the start of every compaction.
	SiteCompact = "ingest.compact"
	// SiteSwap is visited after a publish or compaction has fully built
	// its new epoch, immediately before the commit block (log update +
	// atomic pointer swap).
	SiteSwap = "ingest.swap"
)

// Delta is one streamed POI: a location, keyword strings and an optional
// importance weight (0 means 1). Keywords are kept as strings — not
// interned ids — because every epoch builds a fresh dictionary, keeping
// dictionary mutation out of the concurrent write path.
type Delta struct {
	Loc      geo.Point
	Keywords []string
	Weight   float64
}

// PhotoSpec is a plain photo record used only when compaction persists
// snapshots: the photo corpus is re-interned into each snapshot's
// dictionary so the .soi file is self-consistent.
type PhotoSpec struct {
	Loc  geo.Point
	Tags []string
}

// Config controls the ingest pipeline.
type Config struct {
	// CellSize is the grid cell side of every epoch's index; 0 means
	// core's caller-facing default is NOT applied here — the Ingestor
	// requires a positive cell size and New rejects 0.
	CellSize float64
	// MassCacheEntries bounds each epoch's private MassCache; 0 means
	// core.DefaultMassCacheEntries, negative disables per-epoch mass
	// caching.
	MassCacheEntries int
	// BatchSize, when positive, auto-publishes once the pending delta
	// log reaches this many entries (the publish runs on the background
	// goroutine; writers never build indexes inline).
	BatchSize int
	// CompactAfter, when positive, auto-compacts after this many
	// publishes since the last compaction.
	CompactAfter int
	// SnapshotPath, when non-empty, makes every compaction persist the
	// folded base as a .soi snapshot at this path (written atomically).
	SnapshotPath string
	// Photos are included in persisted snapshots (the .soi format
	// requires a photo section); ignored when SnapshotPath is empty.
	Photos []PhotoSpec
	// Recorder, when non-nil, receives the ingest counters and gauges.
	Recorder *stats.Recorder
}

// Ingestor owns the delta log and the epoch lifecycle. It is safe for
// concurrent use: any number of writers (Add/AddBatch) and readers
// (AcquireEpoch) may run concurrently with at most one publish or
// compaction at a time.
type Ingestor struct {
	net *network.Network
	cfg Config

	// cur is the installed epoch; readers touch nothing else.
	cur atomic.Pointer[Epoch]

	// mu guards the delta log and lastErr. It is held only for slice
	// appends and snapshots of the log — never across an index build —
	// so writers are never blocked by a publish in progress.
	mu        sync.Mutex
	base      []Delta // compacted baseline, in original append order
	published []Delta // folded into the current epoch, not yet compacted
	pending   []Delta // appended, not yet folded into any epoch
	lastErr   error   // last background publish/compact failure

	// pubMu serializes publish and compaction; queries and writers never
	// take it.
	pubMu             sync.Mutex
	sinceCompact      int // publishes since the last compaction
	publishCh         chan struct{}
	compactCh         chan struct{}
	done              chan struct{}
	wg                sync.WaitGroup
	backgroundStarted bool

	live    atomic.Int64 // epochs not yet drained to zero refs
	retired atomic.Int64 // epochs fully released
}

// New builds an ingestor whose first epoch (sequence 1) indexes the base
// deltas. The base slice is not retained.
func New(net *network.Network, base []Delta, cfg Config) (*Ingestor, error) {
	if cfg.CellSize <= 0 {
		return nil, fmt.Errorf("ingest: non-positive cell size %v", cfg.CellSize)
	}
	ing := &Ingestor{
		net:       net,
		cfg:       cfg,
		base:      append([]Delta(nil), base...),
		publishCh: make(chan struct{}, 1),
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	ep, err := ing.buildEpoch(1, ing.base)
	if err != nil {
		return nil, err
	}
	ing.install(ep)
	if cfg.BatchSize > 0 || cfg.CompactAfter > 0 {
		ing.backgroundStarted = true
		ing.wg.Add(1)
		go ing.background()
	}
	return ing, nil
}

// buildEpoch builds a fresh immutable index epoch over the given corpus
// specs, in order. Each epoch interns its own dictionary so no shared
// dictionary is ever mutated under readers.
func (ing *Ingestor) buildEpoch(seq uint64, corpus []Delta) (*Epoch, error) {
	dict := vocab.NewDictionary()
	pb := poi.NewBuilder(dict)
	for _, d := range corpus {
		pb.AddWeighted(d.Loc, d.Keywords, d.Weight)
	}
	ix, err := core.NewIndex(ing.net, pb.Build(), core.IndexConfig{CellSize: ing.cfg.CellSize, Compact: true})
	if err != nil {
		return nil, fmt.Errorf("ingest: building epoch %d: %w", seq, err)
	}
	var mass *core.MassCache
	if ing.cfg.MassCacheEntries >= 0 {
		mass = core.NewMassCache(ing.cfg.MassCacheEntries)
	}
	return newEpoch(seq, ix, mass, ing.epochReleased), nil
}

// install makes ep the serving epoch and retires the previous one by
// releasing its install reference.
func (ing *Ingestor) install(ep *Epoch) {
	ing.live.Add(1)
	if rec := ing.cfg.Recorder; rec != nil {
		rec.Ingest.EpochSeq.Store(int64(ep.seq))
		rec.Ingest.EpochsLive.Store(ing.live.Load())
	}
	old := ing.cur.Swap(ep)
	if old != nil {
		old.release()
	}
}

// epochReleased is the onRelease hook of every epoch: it clears the
// epoch's mass cache (releasing its memory promptly) and folds the
// retirement into the gauges.
func (ing *Ingestor) epochReleased(ep *Epoch) {
	if ep.mass != nil {
		ep.mass.Clear()
	}
	ing.retired.Add(1)
	live := ing.live.Add(-1)
	if rec := ing.cfg.Recorder; rec != nil {
		rec.Ingest.EpochsRetired.Add(1)
		rec.Ingest.EpochsLive.Store(live)
	}
}

// AcquireEpoch pins the current epoch for one query evaluation and
// returns its sequence number, index, mass cache and release function.
// It implements engine.EpochSource: the fast path is one atomic pointer
// load plus one refcount CAS. The rare retry loop covers a reader that
// loaded an epoch pointer just as the epoch's last reference drained.
func (ing *Ingestor) AcquireEpoch() (uint64, *core.Index, *core.MassCache, func()) {
	for {
		ep := ing.cur.Load()
		if ep.tryAcquire() {
			return ep.seq, ep.ix, ep.mass, ep.release
		}
	}
}

// Current returns the installed epoch without pinning it (for
// inspection; the epoch may retire at any time).
func (ing *Ingestor) Current() *Epoch { return ing.cur.Load() }

// Add appends one delta to the log and returns the pending count.
func (ing *Ingestor) Add(d Delta) int { return ing.AddBatch([]Delta{d}) }

// AddBatch appends deltas to the log and returns the pending count. The
// call never blocks on index builds; when auto-publish is configured and
// the batch threshold is reached, the background publisher is signalled.
func (ing *Ingestor) AddBatch(ds []Delta) int {
	ing.mu.Lock()
	ing.pending = append(ing.pending, ds...)
	n := len(ing.pending)
	ing.mu.Unlock()
	if rec := ing.cfg.Recorder; rec != nil {
		rec.Ingest.DeltasAppended.Add(int64(len(ds)))
		rec.Ingest.DeltasPending.Store(int64(n))
	}
	if ing.cfg.BatchSize > 0 && n >= ing.cfg.BatchSize {
		select {
		case ing.publishCh <- struct{}{}:
		default:
		}
	}
	return n
}

// Counts returns the corpus accounting: base POIs, published deltas not
// yet compacted, and pending deltas not yet published.
func (ing *Ingestor) Counts() (base, published, pending int) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return len(ing.base), len(ing.published), len(ing.pending)
}

// Err returns the last background publish or compaction failure, if any.
func (ing *Ingestor) Err() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.lastErr
}

// Publish folds every pending delta into a fresh epoch and installs it.
// With nothing pending it is a no-op returning the current sequence.
// The build runs outside the log mutex, so writers keep appending and
// readers keep serving the previous epoch throughout; the swap is one
// atomic store. A panic during the build (including injected faults) is
// recovered into the returned error and leaves the installed epoch and
// the delta log untouched.
func (ing *Ingestor) Publish() (seq uint64, folded int, err error) {
	ing.pubMu.Lock()
	defer ing.pubMu.Unlock()
	defer func() {
		if v := recover(); v != nil {
			seq, folded = ing.cur.Load().seq, 0
			err = fmt.Errorf("ingest: publish panicked: %v", v)
		}
	}()
	faults.Inject(SitePublish)

	ing.mu.Lock()
	delta := ing.pending[:len(ing.pending):len(ing.pending)]
	corpus := make([]Delta, 0, len(ing.base)+len(ing.published)+len(delta))
	corpus = append(corpus, ing.base...)
	corpus = append(corpus, ing.published...)
	corpus = append(corpus, delta...)
	ing.mu.Unlock()
	cur := ing.cur.Load()
	if len(delta) == 0 {
		return cur.seq, 0, nil
	}

	start := time.Now()
	ep, err := ing.buildEpoch(cur.seq+1, corpus)
	if err != nil {
		return cur.seq, 0, err
	}
	faults.Inject(SiteSwap)

	// Commit block: from here on nothing can fail. Move the folded
	// prefix of the pending log to published (writers may have appended
	// more in the meantime; those stay pending), then swap the epoch.
	ing.mu.Lock()
	ing.published = append(ing.published, delta...)
	ing.pending = append([]Delta(nil), ing.pending[len(delta):]...)
	pendingNow := len(ing.pending)
	ing.mu.Unlock()
	ing.install(ep)
	ing.sinceCompact++
	if rec := ing.cfg.Recorder; rec != nil {
		rec.Ingest.Publishes.Add(1)
		rec.Ingest.PublishNanos.Add(time.Since(start).Nanoseconds())
		rec.Ingest.DeltasPending.Store(int64(pendingNow))
	}
	if ing.cfg.CompactAfter > 0 && ing.sinceCompact >= ing.cfg.CompactAfter {
		select {
		case ing.compactCh <- struct{}{}:
		default:
		}
	}
	return ep.seq, len(delta), nil
}

// Compact folds the published deltas into the base, rebuilds the index
// over the folded corpus — the exact POI sequence the current epoch
// serves, so the new epoch answers bit-identically — installs it as a
// new epoch, retires the old one, and (when configured) persists the
// folded base as a snapshot. With nothing published it is a no-op.
// Pending deltas are untouched: they belong to a future publish.
func (ing *Ingestor) Compact() (seq uint64, folded int, err error) {
	ing.pubMu.Lock()
	defer ing.pubMu.Unlock()
	defer func() {
		if v := recover(); v != nil {
			seq, folded = ing.cur.Load().seq, 0
			err = fmt.Errorf("ingest: compact panicked: %v", v)
		}
	}()
	faults.Inject(SiteCompact)

	ing.mu.Lock()
	nPub := len(ing.published)
	newBase := make([]Delta, 0, len(ing.base)+nPub)
	newBase = append(newBase, ing.base...)
	newBase = append(newBase, ing.published...)
	ing.mu.Unlock()
	cur := ing.cur.Load()
	if nPub == 0 {
		return cur.seq, 0, nil
	}

	start := time.Now()
	ep, err := ing.buildEpoch(cur.seq+1, newBase)
	if err != nil {
		return cur.seq, 0, err
	}
	if ing.cfg.SnapshotPath != "" {
		if err := ing.writeSnapshot(ep); err != nil {
			return cur.seq, 0, err
		}
	}
	faults.Inject(SiteSwap)

	// Commit block: fold the log, swap, retire.
	ing.mu.Lock()
	ing.base = newBase
	ing.published = nil
	ing.mu.Unlock()
	ing.install(ep)
	ing.sinceCompact = 0
	if rec := ing.cfg.Recorder; rec != nil {
		rec.Ingest.Compactions.Add(1)
		rec.Ingest.CompactNanos.Add(time.Since(start).Nanoseconds())
	}
	return ep.seq, nPub, nil
}

// writeSnapshot persists the epoch's corpus and slab as a .soi file,
// re-interning the configured photos into the epoch's dictionary so the
// snapshot is self-consistent.
func (ing *Ingestor) writeSnapshot(ep *Epoch) error {
	six := ep.ix.SlabIndex()
	if six == nil {
		return errors.New("ingest: epoch has no compact slab to snapshot")
	}
	rb := photo.NewBuilder(ep.ix.POIs().Dict())
	for _, p := range ing.cfg.Photos {
		rb.Add(p.Loc, p.Tags)
	}
	return snapshot.WriteFile(ing.cfg.SnapshotPath, &snapshot.Snapshot{
		Net:    ing.net,
		POIs:   ep.ix.POIs(),
		Photos: rb.Build(),
		Slab:   six.Slab(),
	})
}

// background drains the auto-publish and auto-compact signals until
// Close. Failures are retained in Err.
func (ing *Ingestor) background() {
	defer ing.wg.Done()
	for {
		select {
		case <-ing.done:
			return
		case <-ing.publishCh:
			if _, _, err := ing.Publish(); err != nil {
				ing.setErr(err)
			}
		case <-ing.compactCh:
			if _, _, err := ing.Compact(); err != nil {
				ing.setErr(err)
			}
		}
	}
}

func (ing *Ingestor) setErr(err error) {
	ing.mu.Lock()
	ing.lastErr = err
	ing.mu.Unlock()
}

// Close stops the background publisher/compactor and waits for it. The
// installed epoch stays live (it holds its install reference) so
// in-flight and subsequent reads remain safe; Close only quiesces the
// write path.
func (ing *Ingestor) Close() error {
	if ing.backgroundStarted {
		ing.backgroundStarted = false
		close(ing.done)
		ing.wg.Wait()
	}
	return nil
}

// LiveEpochs and RetiredEpochs expose the lifecycle gauges for tests.
func (ing *Ingestor) LiveEpochs() int64    { return ing.live.Load() }
func (ing *Ingestor) RetiredEpochs() int64 { return ing.retired.Load() }
