package ingest_test

// Golden test for the ingest path: one fixed-seed, fixed-schedule
// interleaving of appends, publishes, queries and a final compaction,
// with the observable outcomes pinned exactly — the post-compaction
// ranking down to the Float64bits of every interest score, the epoch
// and cache counters, and the delta-log vs compacted-base equivalence.
// Any change to fold order, epoch sequencing, cache keying or mass
// arithmetic shows up here as a bit-level diff before it can reach the
// (slower) differential harness.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/stats"
)

// goldenRank pins one result row: the street id and the exact bits of
// its interest and mass.
type goldenRank struct {
	street   uint32
	interest uint64
	mass     uint64
}

// golden pins the post-compaction answers of the fixed schedule below
// (seed 42: 20 base POIs, two published batches of 10). Regenerate by
// running the test with -run TestGoldenInterleaving -v after a
// deliberate semantic change; it prints the new table on mismatch.
var golden = map[int][]goldenRank{
	0: {
		{street: 3, interest: 0x4115c54fb4aab7f8, mass: 0x4008000000000000},
		{street: 4, interest: 0x410f8a81337d110a, mass: 0x4008000000000000},
		{street: 5, interest: 0x41050700ccfe0b5c, mass: 0x4000000000000000},
		{street: 6, interest: 0x41050700ccfe0b5c, mass: 0x4000000000000000},
	},
	1: {
		{street: 3, interest: 0x41367cd8de10444c, mass: 0x4024000000000000},
		{street: 5, interest: 0x412afc3770e051f5, mass: 0x4018000000000000},
		{street: 4, interest: 0x41267cd8de10444c, mass: 0x4014000000000000},
	},
	2: {
		{street: 4, interest: 0x4129cd67f29171be, mass: 0x4030000000000000},
		{street: 0, interest: 0x4127c48c27137047, mass: 0x4026000000000000},
		{street: 7, interest: 0x4127c48c27137047, mass: 0x4026000000000000},
		{street: 5, interest: 0x41259b68238608fb, mass: 0x4024000000000000},
		{street: 6, interest: 0x4124f6e475162c6a, mass: 0x402a000000000000},
		{street: 3, interest: 0x4121bd3776c3fe32, mass: 0x4026000000000000},
		{street: 1, interest: 0x4109edb02aa0d793, mass: 0x4008000000000000},
		{street: 2, interest: 0x4109cd67f29171be, mass: 0x4010000000000000},
	},
}

func TestGoldenInterleaving(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	rec := stats.NewRecorder()
	ing, err := ingest.New(testNet(t), randDeltas(r, 20), ingest.Config{
		CellSize: testCell,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	exec := engine.New(nil, engine.Config{Source: ing, Recorder: rec})

	do := func(qi int, wantCached bool, label string) engine.Result {
		t.Helper()
		res := exec.Do(testQueries[qi])
		if res.Err != nil {
			t.Fatalf("%s: %v", label, res.Err)
		}
		if res.Cached != wantCached {
			t.Fatalf("%s: cached = %t, want %t", label, res.Cached, wantCached)
		}
		return res
	}

	// Fixed schedule: epoch 1 (base) — q0 misses then hits; publish 10
	// more → epoch 2 — q0 must re-evaluate, q1 misses; publish 10 more
	// → epoch 3 — q1 and q2 miss; compaction → epoch 4 (same corpus as
	// 3) — every query misses once (fresh epoch key), then hits.
	do(0, false, "epoch 1 q0 first")
	do(0, true, "epoch 1 q0 repeat")

	ing.AddBatch(randDeltas(r, 10))
	if seq, folded, err := ing.Publish(); err != nil || seq != 2 || folded != 10 {
		t.Fatalf("publish 1 = (%d, %d, %v)", seq, folded, err)
	}
	do(0, false, "epoch 2 q0")
	do(1, false, "epoch 2 q1")

	ing.AddBatch(randDeltas(r, 10))
	if seq, folded, err := ing.Publish(); err != nil || seq != 3 || folded != 10 {
		t.Fatalf("publish 2 = (%d, %d, %v)", seq, folded, err)
	}
	pre := make([][]core.StreetResult, len(testQueries))
	for qi := range testQueries {
		pre[qi] = do(qi, false, fmt.Sprintf("epoch 3 q%d", qi)).Streets
	}

	if seq, folded, err := ing.Compact(); err != nil || seq != 4 || folded != 20 {
		t.Fatalf("compact = (%d, %d, %v)", seq, folded, err)
	}
	post := make([][]core.StreetResult, len(testQueries))
	for qi := range testQueries {
		post[qi] = do(qi, false, fmt.Sprintf("epoch 4 q%d first", qi)).Streets
		do(qi, true, fmt.Sprintf("epoch 4 q%d repeat", qi))
	}

	// Delta-log vs compacted-base equivalence: the compaction folded the
	// published deltas into the base, so every answer must be
	// bit-identical to the delta-log epoch it replaced.
	for qi := range testQueries {
		mustEqualResults(t, fmt.Sprintf("compacted vs delta-log, q%d", qi), post[qi], pre[qi])
	}

	// The pinned ranking, down to the float bits.
	for qi, want := range golden {
		got := post[qi]
		ok := len(got) == len(want)
		if ok {
			for i := range got {
				if uint32(got[i].Street) != want[i].street ||
					math.Float64bits(got[i].Interest) != want[i].interest ||
					math.Float64bits(got[i].Mass) != want[i].mass {
					ok = false
					break
				}
			}
		}
		if !ok {
			t.Errorf("q%d ranking diverged from golden; new table:", qi)
			for i := range got {
				t.Errorf("  {street: %d, interest: %#x, mass: %#x},",
					got[i].Street, math.Float64bits(got[i].Interest), math.Float64bits(got[i].Mass))
			}
		}
	}

	// Epoch and cache accounting, pinned exactly. 13 Do calls: 9 fresh
	// evaluations (misses), 4 epoch-keyed hits.
	snap := rec.Snapshot()
	ist := snap.Ingest
	if ist.EpochSeq != 4 || ist.Publishes != 2 || ist.Compactions != 1 ||
		ist.DeltasAppended != 20 || ist.DeltasPending != 0 ||
		ist.EpochsLive != 1 || ist.EpochsRetired != 3 {
		t.Errorf("ingest counters: %+v", ist)
	}
	if snap.Engine.ResultCacheHits != 4 || snap.Engine.ResultCacheMisses != 9 {
		t.Errorf("cache counters: hits %d misses %d, want 4 / 9",
			snap.Engine.ResultCacheHits, snap.Engine.ResultCacheMisses)
	}
	if b, p, pend := ing.Counts(); b != 40 || p != 0 || pend != 0 {
		t.Errorf("counts after compaction: (%d, %d, %d), want (40, 0, 0)", b, p, pend)
	}
}
