package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile encodes the snapshot and writes it atomically: the bytes land
// in a temporary file in the target directory which is fsynced and then
// renamed over path, so readers never observe a half-written snapshot.
func WriteFile(path string, s *Snapshot) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Mapping owns the backing memory of an opened snapshot. The Snapshot's
// slab aliases this memory, so Close must not be called while the
// snapshot (or any index built over its slab) is still in use.
type Mapping struct {
	data    []byte
	mmapped bool
}

// Data returns the raw snapshot bytes.
func (m *Mapping) Data() []byte { return m.data }

// Mmapped reports whether the bytes are a file mapping (true) or a heap
// copy read with os.ReadFile (false, the non-Unix fallback).
func (m *Mapping) Mmapped() bool { return m.mmapped }

// Close releases the mapping. It is safe to call on a nil Mapping and to
// call twice.
func (m *Mapping) Close() error {
	if m == nil || m.data == nil {
		return nil
	}
	data, mmapped := m.data, m.mmapped
	m.data = nil
	if !mmapped {
		return nil
	}
	return munmap(data)
}

// Open memory-maps the snapshot file (falling back to a plain read where
// mmap is unavailable), validates every section checksum and returns the
// decoded snapshot together with the mapping that backs it. The caller
// must keep the mapping open for as long as the snapshot's slab — or any
// index built from it — is in use, then Close it.
func Open(path string) (*Snapshot, *Mapping, error) {
	m, err := openMapping(path)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %w", err)
	}
	s, err := Decode(m.data)
	if err != nil {
		m.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, m, nil
}
