// Package snapshot defines the versioned on-disk index snapshot (.soi
// file). A snapshot packages everything a serving process needs — the
// road network, the POI and photo corpora, the shared keyword
// dictionary, and the prebuilt compact slab index — into one
// position-independent binary blob that can be memory-mapped and served
// without any rebuild work.
//
// # File layout (version 1)
//
//	offset  size  field
//	0       8     magic "SOISNAP1"
//	8       4     layout version (uint32 LE)
//	12      4     section count (uint32 LE)
//	16      24×n  section table: {id u32, crc32c u32, offset u64, length u64}
//	...           section payloads, each 8-byte aligned
//
// Every integer is little-endian. Each table entry carries a CRC-32C
// (Castagnoli) checksum of its payload; Decode verifies every checksum
// before parsing any payload, so a flipped bit anywhere in a section is
// reported as ErrChecksum rather than surfacing as garbage data. The
// slab section reuses the grid.Slab binary codec verbatim and is
// 8-byte aligned so a memory-mapped load can alias its arrays in place.
//
// Reconstruction is exact: vertices, polylines, weights and the slab
// arrays round-trip bit-for-bit, so an index rebuilt from a snapshot
// returns bit-identical query answers to the index that produced it.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// Magic identifies a snapshot file; it doubles as the layout's byte-order
// witness since it is read as raw bytes.
const Magic = "SOISNAP1"

// Version is the current layout version. Decoders reject snapshots with
// any other version: the format is a cache, so readers and writers are
// expected to be upgraded together and no cross-version compatibility is
// attempted.
const Version = 1

// Section identifiers of the version-1 layout.
const (
	secMeta    = 1
	secVocab   = 2
	secNetwork = 3
	secPOIs    = 4
	secPhotos  = 5
	secSlab    = 6
)

const (
	headerSize = 16
	entrySize  = 24
)

// Typed decode failures. Every error returned by Decode wraps exactly one
// of these, so callers can distinguish "not a snapshot" from "damaged
// snapshot" from "snapshot from a different build".
var (
	// ErrBadMagic means the input does not start with the snapshot magic:
	// it is not a snapshot file at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion means the snapshot was written with a different layout
	// version; regenerate it with the current binary.
	ErrVersion = errors.New("snapshot: unsupported layout version")
	// ErrTruncated means the input ends before the header, table or a
	// section payload does.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrChecksum means a section payload does not match its CRC-32C.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrMalformed means the container framing was intact but a section
	// payload failed structural validation.
	ErrMalformed = errors.New("snapshot: malformed")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is the in-memory form of a snapshot file: the four corpora a
// serving engine is built from. All corpora share one dictionary
// (POIs.Dict() == Photos.Dict()).
type Snapshot struct {
	Net    *network.Network
	POIs   *poi.Corpus
	Photos *photo.Corpus
	Slab   *grid.Slab
}

// Encode serializes the snapshot into a fresh byte slice.
func Encode(s *Snapshot) ([]byte, error) {
	if s.Net == nil || s.POIs == nil || s.Photos == nil || s.Slab == nil {
		return nil, errors.New("snapshot: all of Net, POIs, Photos and Slab are required")
	}
	if s.Slab.NumObjects != s.POIs.Len() {
		return nil, fmt.Errorf("snapshot: slab indexes %d objects, corpus has %d", s.Slab.NumObjects, s.POIs.Len())
	}
	dict := s.POIs.Dict()
	sections := []struct {
		id      uint32
		payload []byte
	}{
		{secMeta, encodeMeta(s)},
		{secVocab, encodeVocab(dict)},
		{secNetwork, encodeNetwork(s.Net)},
		{secPOIs, encodePOIs(s.POIs)},
		{secPhotos, encodePhotos(s.Photos)},
		{secSlab, s.Slab.AppendBinary(nil)},
	}

	tableEnd := headerSize + entrySize*len(sections)
	buf := make([]byte, 0, tableEnd)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sections)))

	// Reserve the table; fill it in as payloads are appended.
	buf = append(buf, make([]byte, entrySize*len(sections))...)
	for i, sec := range sections {
		for len(buf)%8 != 0 {
			buf = append(buf, 0)
		}
		off := uint64(len(buf))
		buf = append(buf, sec.payload...)
		entry := buf[headerSize+i*entrySize:]
		binary.LittleEndian.PutUint32(entry[0:], sec.id)
		binary.LittleEndian.PutUint32(entry[4:], crc32.Checksum(sec.payload, castagnoli))
		binary.LittleEndian.PutUint64(entry[8:], off)
		binary.LittleEndian.PutUint64(entry[16:], uint64(len(sec.payload)))
	}
	return buf, nil
}

// Decode parses and validates a snapshot. The returned Snapshot's slab
// aliases data where alignment permits (it does for Encode output and
// mmap'd files), so data must stay valid and unmodified for the life of
// the snapshot; everything else is copied out.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d header bytes", ErrTruncated, len(data), headerSize)
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersion, v, Version)
	}
	n := int(binary.LittleEndian.Uint32(data[12:]))
	if n > (len(data)-headerSize)/entrySize {
		return nil, fmt.Errorf("%w: table of %d entries exceeds file size", ErrTruncated, n)
	}

	// Locate and checksum every section before parsing any of them.
	payloads := make(map[uint32][]byte, n)
	for i := 0; i < n; i++ {
		entry := data[headerSize+i*entrySize:]
		id := binary.LittleEndian.Uint32(entry[0:])
		crc := binary.LittleEndian.Uint32(entry[4:])
		off := binary.LittleEndian.Uint64(entry[8:])
		length := binary.LittleEndian.Uint64(entry[16:])
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %d spans [%d, %d+%d) beyond %d bytes", ErrTruncated, id, off, off, length, len(data))
		}
		payload := data[off : off+length]
		if got := crc32.Checksum(payload, castagnoli); got != crc {
			return nil, fmt.Errorf("%w: section %d crc %08x, want %08x", ErrChecksum, id, got, crc)
		}
		if _, dup := payloads[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrMalformed, id)
		}
		payloads[id] = payload
	}
	for _, id := range []uint32{secMeta, secVocab, secNetwork, secPOIs, secPhotos, secSlab} {
		if _, ok := payloads[id]; !ok {
			return nil, fmt.Errorf("%w: missing section %d", ErrMalformed, id)
		}
	}

	dict, err := decodeVocab(payloads[secVocab])
	if err != nil {
		return nil, err
	}
	net, err := decodeNetwork(payloads[secNetwork])
	if err != nil {
		return nil, err
	}
	pois, err := decodePOIs(payloads[secPOIs], dict)
	if err != nil {
		return nil, err
	}
	photos, err := decodePhotos(payloads[secPhotos], dict)
	if err != nil {
		return nil, err
	}
	slab, err := grid.DecodeSlab(payloads[secSlab])
	if err != nil {
		return nil, fmt.Errorf("%w: slab section: %v", ErrMalformed, err)
	}
	s := &Snapshot{Net: net, POIs: pois, Photos: photos, Slab: slab}
	if err := checkMeta(payloads[secMeta], s, dict); err != nil {
		return nil, err
	}
	return s, nil
}

// --- meta section -----------------------------------------------------
//
// Counts of every other section, used as a cheap cross-section
// consistency check: a snapshot assembled from mismatched pieces fails
// here with a clear message instead of deep inside index construction.

func encodeMeta(s *Snapshot) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Net.NumVertices()))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Net.NumSegments()))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Net.NumStreets()))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.POIs.Len()))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Photos.Len()))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.POIs.Dict().Len()))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Slab.CellSize))
	return b
}

func checkMeta(p []byte, s *Snapshot, dict *vocab.Dictionary) error {
	if len(p) != 56 {
		return fmt.Errorf("%w: meta section is %d bytes, want 56", ErrMalformed, len(p))
	}
	want := [6]uint64{
		uint64(s.Net.NumVertices()), uint64(s.Net.NumSegments()), uint64(s.Net.NumStreets()),
		uint64(s.POIs.Len()), uint64(s.Photos.Len()), uint64(dict.Len()),
	}
	names := [6]string{"vertices", "segments", "streets", "pois", "photos", "keywords"}
	for i, w := range want {
		if got := binary.LittleEndian.Uint64(p[i*8:]); got != w {
			return fmt.Errorf("%w: meta declares %d %s, sections contain %d", ErrMalformed, got, names[i], w)
		}
	}
	if cs := math.Float64frombits(binary.LittleEndian.Uint64(p[48:])); cs != s.Slab.CellSize {
		return fmt.Errorf("%w: meta cell size %v, slab has %v", ErrMalformed, cs, s.Slab.CellSize)
	}
	return nil
}

// --- vocab section ----------------------------------------------------
//
// Keyword names in dictionary-id order as a CSR of UTF-8 bytes; decoding
// re-interns them in order, reproducing identical ids.

func encodeVocab(d *vocab.Dictionary) []byte {
	var b []byte
	n := d.Len()
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	off := uint32(0)
	for i := 0; i < n; i++ {
		off += uint32(len(d.Name(vocab.ID(i))))
		b = binary.LittleEndian.AppendUint32(b, off)
	}
	for i := 0; i < n; i++ {
		b = append(b, d.Name(vocab.ID(i))...)
	}
	return b
}

func decodeVocab(p []byte) (*vocab.Dictionary, error) {
	r := &reader{data: p, section: "vocab"}
	n, err := r.count(4)
	if err != nil {
		return nil, err
	}
	ends, err := r.u32s(n)
	if err != nil {
		return nil, err
	}
	dict := vocab.NewDictionary()
	prev := uint32(0)
	for i, end := range ends {
		if end < prev {
			return nil, fmt.Errorf("%w: vocab offsets not monotone at %d", ErrMalformed, i)
		}
		name, err := r.bytes(int(end - prev))
		if err != nil {
			return nil, err
		}
		s := string(name)
		if s != vocab.Normalize(s) {
			// The dictionary stores normalized names; anything else would be
			// silently rewritten by Intern and break id stability.
			return nil, fmt.Errorf("%w: vocab entry %d (%q) is not normalized", ErrMalformed, i, s)
		}
		if got := dict.Intern(s); got != vocab.ID(i) {
			return nil, fmt.Errorf("%w: vocab entry %d duplicates entry %d (%q)", ErrMalformed, i, got, s)
		}
		prev = end
	}
	return dict, r.done()
}

// --- network section --------------------------------------------------
//
// Vertices in id order plus, per street, its name and its polyline as
// vertex ids. Decoding re-adds vertices then streets in order, so vertex
// interning reproduces identical ids and segment geometry reuses the
// exact stored coordinates.

func encodeNetwork(n *network.Network) []byte {
	var b []byte
	nv := n.NumVertices()
	b = binary.LittleEndian.AppendUint32(b, uint32(nv))
	for i := 0; i < nv; i++ {
		v := n.Vertex(network.VertexID(i))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Y))
	}
	streets := n.Streets()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(streets)))
	nameEnd, polyEnd := uint32(0), uint32(0)
	for i := range streets {
		nameEnd += uint32(len(streets[i].Name))
		polyEnd += uint32(len(streets[i].Segments)) + 1
		b = binary.LittleEndian.AppendUint32(b, nameEnd)
		b = binary.LittleEndian.AppendUint32(b, polyEnd)
	}
	for i := range streets {
		b = append(b, streets[i].Name...)
	}
	for i := range streets {
		segs := streets[i].Segments
		b = binary.LittleEndian.AppendUint32(b, n.Segment(segs[0]).From)
		for _, sid := range segs {
			b = binary.LittleEndian.AppendUint32(b, n.Segment(sid).To)
		}
	}
	return b
}

func decodeNetwork(p []byte) (*network.Network, error) {
	r := &reader{data: p, section: "network"}
	nv, err := r.count(16)
	if err != nil {
		return nil, err
	}
	verts := make([]geo.Point, nv)
	for i := range verts {
		x, err := r.f64()
		if err != nil {
			return nil, err
		}
		y, err := r.f64()
		if err != nil {
			return nil, err
		}
		verts[i] = geo.Point{X: x, Y: y}
	}
	ns, err := r.count(8)
	if err != nil {
		return nil, err
	}
	nameEnds := make([]uint32, ns)
	polyEnds := make([]uint32, ns)
	for i := 0; i < ns; i++ {
		if nameEnds[i], err = r.u32(); err != nil {
			return nil, err
		}
		if polyEnds[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	names := make([]string, ns)
	prev := uint32(0)
	for i, end := range nameEnds {
		if end < prev {
			return nil, fmt.Errorf("%w: network name offsets not monotone at %d", ErrMalformed, i)
		}
		raw, err := r.bytes(int(end - prev))
		if err != nil {
			return nil, err
		}
		names[i] = string(raw)
		prev = end
	}
	nb := network.NewBuilder()
	for _, v := range verts {
		nb.AddVertex(v)
	}
	prev = 0
	var poly []geo.Point
	for i, end := range polyEnds {
		if end < prev+2 {
			return nil, fmt.Errorf("%w: street %d polyline has %d points, want >= 2", ErrMalformed, i, int(end)-int(prev))
		}
		ids, err := r.u32s(int(end - prev))
		if err != nil {
			return nil, err
		}
		poly = poly[:0]
		for _, id := range ids {
			if int(id) >= nv {
				return nil, fmt.Errorf("%w: street %d references vertex %d of %d", ErrMalformed, i, id, nv)
			}
			poly = append(poly, verts[id])
		}
		nb.AddStreet(names[i], poly)
		prev = end
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	net, err := nb.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: network: %v", ErrMalformed, err)
	}
	if net.NumVertices() != nv {
		// A vertex listed twice would be interned once, silently renumbering
		// every later reference.
		return nil, fmt.Errorf("%w: network has duplicate vertices", ErrMalformed)
	}
	return net, nil
}

// --- poi and photo sections -------------------------------------------
//
// Locations and weights as parallel float64 arrays, keyword sets as one
// CSR over dictionary ids.

func encodePOIs(c *poi.Corpus) []byte {
	var b []byte
	all := c.All()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(all)))
	kwEnd := uint32(0)
	for i := range all {
		kwEnd += uint32(len(all[i].Keywords))
		b = binary.LittleEndian.AppendUint32(b, kwEnd)
	}
	for i := range all {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(all[i].Loc.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(all[i].Loc.Y))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(all[i].Weight))
	}
	for i := range all {
		for _, kw := range all[i].Keywords {
			b = binary.LittleEndian.AppendUint32(b, kw)
		}
	}
	return b
}

func decodePOIs(p []byte, dict *vocab.Dictionary) (*poi.Corpus, error) {
	r := &reader{data: p, section: "pois"}
	n, err := r.count(28)
	if err != nil {
		return nil, err
	}
	kwEnds, err := r.u32s(n)
	if err != nil {
		return nil, err
	}
	type rec struct {
		x, y, w float64
	}
	recs := make([]rec, n)
	for i := range recs {
		if recs[i].x, err = r.f64(); err != nil {
			return nil, err
		}
		if recs[i].y, err = r.f64(); err != nil {
			return nil, err
		}
		if recs[i].w, err = r.f64(); err != nil {
			return nil, err
		}
	}
	pb := poi.NewBuilder(dict)
	prev := uint32(0)
	for i, end := range kwEnds {
		if end < prev {
			return nil, fmt.Errorf("%w: poi keyword offsets not monotone at %d", ErrMalformed, i)
		}
		set, err := r.kwSet(int(end-prev), dict, "poi", i)
		if err != nil {
			return nil, err
		}
		pb.AddSet(geo.Point{X: recs[i].x, Y: recs[i].y}, set, recs[i].w)
		prev = end
	}
	return pb.Build(), r.done()
}

func encodePhotos(c *photo.Corpus) []byte {
	var b []byte
	all := c.All()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(all)))
	tagEnd := uint32(0)
	for i := range all {
		tagEnd += uint32(len(all[i].Tags))
		b = binary.LittleEndian.AppendUint32(b, tagEnd)
	}
	for i := range all {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(all[i].Loc.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(all[i].Loc.Y))
	}
	for i := range all {
		for _, tag := range all[i].Tags {
			b = binary.LittleEndian.AppendUint32(b, tag)
		}
	}
	return b
}

func decodePhotos(p []byte, dict *vocab.Dictionary) (*photo.Corpus, error) {
	r := &reader{data: p, section: "photos"}
	n, err := r.count(20)
	if err != nil {
		return nil, err
	}
	tagEnds, err := r.u32s(n)
	if err != nil {
		return nil, err
	}
	locs := make([]geo.Point, n)
	for i := range locs {
		if locs[i].X, err = r.f64(); err != nil {
			return nil, err
		}
		if locs[i].Y, err = r.f64(); err != nil {
			return nil, err
		}
	}
	rb := photo.NewBuilder(dict)
	prev := uint32(0)
	for i, end := range tagEnds {
		if end < prev {
			return nil, fmt.Errorf("%w: photo tag offsets not monotone at %d", ErrMalformed, i)
		}
		set, err := r.kwSet(int(end-prev), dict, "photo", i)
		if err != nil {
			return nil, err
		}
		rb.AddSet(locs[i], set)
		prev = end
	}
	return rb.Build(), r.done()
}

// --- section payload reader -------------------------------------------

// reader is a bounds-checked cursor over one section payload; every
// failure wraps ErrMalformed with the section name and offset.
type reader struct {
	data    []byte
	off     int
	section string
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || n > len(r.data)-r.off {
		return nil, fmt.Errorf("%w: %s section needs %d bytes at offset %d, %d remain",
			ErrMalformed, r.section, n, r.off, len(r.data)-r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) f64() (float64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// count reads a u32 element count and bounds it by the bytes each element
// needs at minimum, so a corrupt count cannot trigger a huge allocation.
func (r *reader) count(minPer int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(minPer) > int64(len(r.data)-r.off) {
		return 0, fmt.Errorf("%w: %s section declares %d elements, only %d bytes remain",
			ErrMalformed, r.section, n, len(r.data)-r.off)
	}
	return int(n), nil
}

func (r *reader) u32s(n int) ([]uint32, error) {
	b, err := r.bytes(4 * n)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out, nil
}

func (r *reader) kwSet(n int, dict *vocab.Dictionary, what string, idx int) (vocab.Set, error) {
	ids, err := r.u32s(n)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	set := make(vocab.Set, n)
	for j, id := range ids {
		if int(id) >= dict.Len() {
			return nil, fmt.Errorf("%w: %s %d references keyword %d of %d", ErrMalformed, what, idx, id, dict.Len())
		}
		set[j] = vocab.ID(id)
	}
	return set, nil
}

func (r *reader) done() error {
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %s section has %d trailing bytes", ErrMalformed, r.section, len(r.data)-r.off)
	}
	return nil
}
