//go:build unix

package snapshot

import (
	"fmt"
	"os"
	"syscall"
)

// openMapping maps the file read-only. Mapping shares pages with the page
// cache, so a multi-gigabyte snapshot opens in milliseconds and unread
// sections never touch memory. An empty file cannot be mapped; it decodes
// to ErrTruncated via a zero-length heap slice instead.
func openMapping(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{data: []byte{}}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("%s: size %d overflows the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap %s: %w", path, err)
	}
	return &Mapping{data: data, mmapped: true}, nil
}

func munmap(data []byte) error {
	return syscall.Munmap(data)
}
