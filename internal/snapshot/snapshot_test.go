package snapshot_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/snapshot"
)

func testSnapshot(tb testing.TB) *snapshot.Snapshot {
	tb.Helper()
	ds, err := datagen.Generate(datagen.Small(7))
	if err != nil {
		tb.Fatal(err)
	}
	pois := ds.WeightedPOIs()
	six, err := core.NewSlabIndex(ds.Network, pois, core.IndexConfig{CellSize: 0.01})
	if err != nil {
		tb.Fatal(err)
	}
	return &snapshot.Snapshot{Net: ds.Network, POIs: pois, Photos: ds.Photos, Slab: six.Slab()}
}

// TestRoundTrip checks that Encode/Decode reproduces every corpus
// exactly and that the encoding is canonical (decode→re-encode is
// byte-identical).
func TestRoundTrip(t *testing.T) {
	s := testSnapshot(t)
	data, err := snapshot.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	re, err := snapshot.Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, re) {
		t.Fatal("decode→encode is not byte-identical")
	}

	if got.Net.Stats() != s.Net.Stats() {
		t.Fatalf("network stats differ: %+v vs %+v", got.Net.Stats(), s.Net.Stats())
	}
	for i := 0; i < s.Net.NumStreets(); i++ {
		a, b := s.Net.Street(uint32(i)), got.Net.Street(uint32(i))
		if a.Name != b.Name || !reflect.DeepEqual(a.Segments, b.Segments) {
			t.Fatalf("street %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i := 0; i < s.Net.NumVertices(); i++ {
		if s.Net.Vertex(uint32(i)) != got.Net.Vertex(uint32(i)) {
			t.Fatalf("vertex %d differs", i)
		}
	}
	if !reflect.DeepEqual(got.POIs.All(), s.POIs.All()) {
		t.Fatal("POIs differ")
	}
	if !reflect.DeepEqual(got.Photos.All(), s.Photos.All()) {
		t.Fatal("photos differ")
	}
	da, db := s.POIs.Dict(), got.POIs.Dict()
	if da.Len() != db.Len() {
		t.Fatalf("dict sizes differ: %d vs %d", da.Len(), db.Len())
	}
	for i := 0; i < da.Len(); i++ {
		if da.Name(uint32(i)) != db.Name(uint32(i)) {
			t.Fatalf("dict entry %d differs: %q vs %q", i, da.Name(uint32(i)), db.Name(uint32(i)))
		}
	}
	if got.POIs.Dict() != got.Photos.Dict() {
		t.Fatal("decoded corpora do not share one dictionary")
	}
	if err := got.Slab.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRebuiltIndexAnswersIdentically is the contract the snapshot exists
// for: an index rebuilt from a decoded snapshot must return bit-identical
// k-SOI answers to an index built from the original data.
func TestRebuiltIndexAnswersIdentically(t *testing.T) {
	s := testSnapshot(t)
	data, err := snapshot.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := snapshot.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := core.NewIndex(s.Net, s.POIs, core.IndexConfig{CellSize: s.Slab.CellSize, Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := core.NewIndexFromSlab(dec.Net, dec.POIs, dec.Slab)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []core.Query{
		{Keywords: []string{"shop"}, K: 5, Epsilon: 0.01},
		{Keywords: []string{"shop", "food"}, K: 3, Epsilon: 0.02},
		{Keywords: []string{"museum"}, K: 10, Epsilon: 0.005},
	} {
		want, _, err := orig.SOI(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := loaded.SOI(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %+v differs:\n got %+v\nwant %+v", q, got, want)
		}
	}
}

// TestWriteFileOpen exercises the mmap loader, including its typed
// rejection of a file corrupted on disk.
func TestWriteFileOpen(t *testing.T) {
	s := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "world.soi")
	if err := snapshot.WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, m, err := snapshot.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Net.Stats() != s.Net.Stats() {
		t.Fatal("opened snapshot differs")
	}
	// The slab may alias the mapping, so all use happens before Close.
	if err := got.Slab.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}

	// Flip one payload byte on disk: Open must fail with ErrChecksum.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := snapshot.Open(path); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("corrupted file: got %v, want ErrChecksum", err)
	}
	if _, _, err := snapshot.Open(filepath.Join(t.TempDir(), "missing.soi")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// isTypedErr reports whether err wraps one of the snapshot package's
// typed decode failures.
func isTypedErr(err error) bool {
	for _, want := range []error{
		snapshot.ErrBadMagic, snapshot.ErrVersion, snapshot.ErrTruncated,
		snapshot.ErrChecksum, snapshot.ErrMalformed,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// TestDecodeCorrupt drives systematic damage through Decode: every
// truncation and a sweep of single-bit flips must yield a typed error or
// a snapshot that still re-encodes — never a panic or an untyped error.
func TestDecodeCorrupt(t *testing.T) {
	s := testSnapshot(t)
	data, err := snapshot.Encode(s)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := snapshot.Decode([]byte("NOTASNAP0000000000000000")); !errors.Is(err, snapshot.ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	future := append([]byte(nil), data...)
	future[8] = 99
	if _, err := snapshot.Decode(future); !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("future version: got %v", err)
	}

	for n := 0; n < len(data); n += 97 {
		if _, err := snapshot.Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		} else if !isTypedErr(err) {
			t.Fatalf("truncation to %d: untyped error %v", n, err)
		}
	}

	for pos := 0; pos < len(data); pos += 131 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 1 << (pos % 8)
		dec, err := snapshot.Decode(mut)
		if err != nil {
			if !isTypedErr(err) {
				t.Fatalf("flip at %d: untyped error %v", pos, err)
			}
			continue
		}
		// Flips in inter-section padding can decode; the result must still
		// be coherent.
		if _, err := snapshot.Encode(dec); err != nil {
			t.Fatalf("flip at %d decoded but re-encode failed: %v", pos, err)
		}
	}
}
