package snapshot_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/snapshot"
)

// FuzzSnapshot throws arbitrary bytes at the decoder. The invariants:
// Decode never panics, every failure is one of the package's typed
// errors, and any input it accepts round-trips through Encode/Decode to
// a byte-identical canonical form.
func FuzzSnapshot(f *testing.F) {
	// Seed with a miniature world: the mutator needs inputs it can
	// afford to decode thousands of times per second.
	ds, err := datagen.Generate(datagen.Tiny(3))
	if err != nil {
		f.Fatal(err)
	}
	six, err := core.NewSlabIndex(ds.Network, ds.POIs, core.IndexConfig{CellSize: 0.004})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := snapshot.Encode(&snapshot.Snapshot{
		Net: ds.Network, POIs: ds.POIs, Photos: ds.Photos, Slab: six.Slab(),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(snapshot.Magic))
	f.Add([]byte{})
	trunc := append([]byte(nil), valid[:200]...)
	f.Add(trunc)
	mut := append([]byte(nil), valid...)
	mut[len(mut)/3] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := snapshot.Decode(data)
		if err != nil {
			if !isTypedErr(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re, err := snapshot.Encode(dec)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		dec2, err := snapshot.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		re2, err := snapshot.Encode(dec2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
