//go:build !unix

package snapshot

import "os"

// openMapping reads the whole file into the heap on platforms without
// syscall.Mmap support; the Mapping contract is unchanged.
func openMapping(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data}, nil
}

func munmap([]byte) error { return nil }
