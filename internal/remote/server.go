package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/httperr"
)

// DefaultMaxBodyBytes caps the /shard/query request body when
// ServerConfig leaves MaxBodyBytes zero.
const DefaultMaxBodyBytes = 1 << 20

// ServerConfig tunes one shard server.
type ServerConfig struct {
	// Engine configures the admission/timeout stack every /shard/query
	// evaluation runs through: worker pool, bounded wait queue with load
	// shedding, per-query deadline, result cache, recorder. The zero
	// value serves with defaults (GOMAXPROCS workers, unbounded queue).
	Engine engine.Config
	// MaxBodyBytes caps the request body; 0 means DefaultMaxBodyBytes,
	// negative disables the cap.
	MaxBodyBytes int64
}

// Server answers per-shard k-SOI queries over HTTP — the process a
// remote scatter-gather coordinator fans out to. Evaluations run
// through an engine.Executor, so the shard inherits the whole
// single-process robustness stack: bounded admission (503 +
// Retry-After), per-query deadlines (504), cooperative cancellation
// (499 accounting) and panic isolation (500). Results are mapped to
// global street/segment ids before they leave the process.
type Server struct {
	d        ShardData
	exec     *engine.Executor
	mux      *http.ServeMux
	maxBody  int64
	draining atomic.Bool
}

// NewServer wires the handler set for one shard.
func NewServer(d ShardData, cfg ServerConfig) *Server {
	maxBody := cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	s := &Server{
		d:       d,
		exec:    engine.New(d.Index, cfg.Engine),
		mux:     http.NewServeMux(),
		maxBody: maxBody,
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/shard/meta", s.handleMeta)
	s.mux.HandleFunc("/shard/query", s.handleQuery)
	if rec := cfg.Engine.Recorder; rec != nil {
		s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = rec.Snapshot().WritePrometheus(w)
		})
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetDraining flips the readiness signal: a draining server keeps
// answering in-flight and new queries (graceful shutdown semantics) but
// reports 503 on /readyz so load balancers and half-open breaker probes
// steer new traffic away.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the current drain flag.
func (s *Server) Draining() bool { return s.draining.Load() }

type errBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleHealthz is pure liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: the shard index is loaded and the server
// is not draining. Half-open circuit breakers probe this endpoint
// before re-admitting traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.d.Index == nil:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "index not loaded"})
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Meta{
		Shard:    s.d.ShardID,
		Shards:   s.d.Shards,
		TileX:    s.d.TileX,
		TileY:    s.d.TileY,
		Halo:     s.d.Halo,
		CellSize: s.d.CellSize,
		Streets:  len(s.d.Streets),
		Segments: len(s.d.Segments),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errBody{Error: "POST only"})
		return
	}
	// The injected-5xx chaos mode: an Err fault at remote.serve makes
	// this shard answer 500 without touching the index, a Delay/Block
	// fault makes it slow or wedged (bounded by the client's context).
	if err := faults.InjectCtx(r.Context(), SiteServe); err != nil {
		writeJSON(w, http.StatusInternalServerError, errBody{Error: err.Error()})
		return
	}
	if s.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errBody{Error: fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errBody{Error: "decoding request: " + err.Error()})
		return
	}
	q := req.Query()
	if err := q.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
		return
	}
	if s.d.Halo > 0 && q.Epsilon > s.d.Halo {
		writeJSON(w, http.StatusBadRequest,
			errBody{Error: fmt.Sprintf("remote: query epsilon %v exceeds partition halo %v", q.Epsilon, s.d.Halo)})
		return
	}
	ub, err := s.d.Index.UnseenBound(q)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
		return
	}
	resp := QueryResponse{Shard: s.d.ShardID, UB: ub}
	if req.BoundOnly {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	res := s.exec.DoCtx(r.Context(), q)
	if res.Err != nil {
		status, retry := httperr.Status(res.Err, r.Context().Err() != nil)
		if retry {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, errBody{Error: res.Err.Error()})
		return
	}
	// Map to global ids into a fresh slice: res.Streets may be shared
	// with the executor's result cache and must stay untouched.
	resp.Results = make([]core.StreetResult, len(res.Streets))
	for i, sr := range res.Streets {
		sr.Street = s.d.Streets[sr.Street]
		sr.BestSegment = s.d.Segments[sr.BestSegment]
		resp.Results[i] = sr
	}
	resp.Stats = res.Stats
	writeJSON(w, http.StatusOK, resp)
}
