package remote_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/remote"
	"repro/internal/shard"
)

// testWorld builds a deterministic partitioned world for remote tests.
func testWorld(t *testing.T, tiles int, seed int64) *shard.World {
	t.Helper()
	ds, err := datagen.Generate(datagen.Tiny(seed))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	w, err := shard.Partition(ds.Network, ds.POIs, shard.Config{Tiles: tiles, Halo: 0.0012, CellSize: 0.0005})
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	return w
}

// shardData adapts one shard of a world to the server's input.
func shardData(w *shard.World, i int) remote.ShardData {
	s := w.Shards[i]
	return remote.ShardData{
		ShardID:  s.ID,
		Shards:   len(w.Shards),
		TileX:    s.TileX,
		TileY:    s.TileY,
		Halo:     w.Halo,
		CellSize: w.CellSize,
		Index:    s.Index,
		Streets:  s.Streets,
		Segments: s.Segments,
	}
}

// startShards serves every shard of a world over httptest and returns
// the servers plus the per-shard address table.
func startShards(t *testing.T, w *shard.World, cfg remote.ServerConfig) ([]*httptest.Server, [][]string) {
	t.Helper()
	servers := make([]*httptest.Server, len(w.Shards))
	addrs := make([][]string, len(w.Shards))
	for i := range w.Shards {
		hs := httptest.NewServer(remote.NewServer(shardData(w, i), cfg))
		t.Cleanup(hs.Close)
		servers[i] = hs
		addrs[i] = []string{hs.URL}
	}
	return servers, addrs
}

func testQuery() core.Query {
	return core.Query{Keywords: []string{"shop", "food"}, K: 5, Epsilon: 0.0005}
}

func postQuery(t *testing.T, url string, req remote.QueryRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/shard/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestServerQueryMatchesLocal: a /shard/query answer must be
// bit-identical to evaluating the shard's index in-process, with ids
// mapped to the global space — the wire must not perturb anything.
func TestServerQueryMatchesLocal(t *testing.T) {
	w := testWorld(t, 4, 1)
	servers, _ := startShards(t, w, remote.ServerConfig{})
	q := testQuery()
	for i, s := range w.Shards {
		want, _, err := s.Index.SOIContext(context.Background(), q, core.CostAware, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postQuery(t, servers[i].URL, remote.QueryRequest{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d: status %d: %s", i, resp.StatusCode, body)
		}
		var out remote.QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if out.Shard != i {
			t.Errorf("shard %d: response claims shard %d", i, out.Shard)
		}
		wantUB, err := s.Index.UnseenBound(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(out.UB) != math.Float64bits(wantUB) {
			t.Errorf("shard %d: UB %v != %v", i, out.UB, wantUB)
		}
		if len(out.Results) != len(want) {
			t.Fatalf("shard %d: %d results, want %d", i, len(out.Results), len(want))
		}
		for j, r := range out.Results {
			lw := want[j]
			if r.Street != s.Streets[lw.Street] || r.BestSegment != s.Segments[lw.BestSegment] {
				t.Errorf("shard %d result %d: ids %d/%d, want global %d/%d",
					i, j, r.Street, r.BestSegment, s.Streets[lw.Street], s.Segments[lw.BestSegment])
			}
			if math.Float64bits(r.Interest) != math.Float64bits(lw.Interest) ||
				math.Float64bits(r.Mass) != math.Float64bits(lw.Mass) {
				t.Errorf("shard %d result %d: interest/mass drifted across the wire", i, j)
			}
		}
	}
}

// TestServerBoundOnly: bound_only must skip evaluation and return just
// the shard's unseen upper bound.
func TestServerBoundOnly(t *testing.T) {
	w := testWorld(t, 2, 1)
	servers, _ := startShards(t, w, remote.ServerConfig{})
	q := testQuery()
	resp, body := postQuery(t, servers[0].URL,
		remote.QueryRequest{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon, BoundOnly: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out remote.QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results != nil {
		t.Errorf("bound-only answered %d results", len(out.Results))
	}
	want, err := w.Shards[0].Index.UnseenBound(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(out.UB) != math.Float64bits(want) {
		t.Errorf("UB %v != %v", out.UB, want)
	}
}

// TestServerValidation: method, body and query validation must answer
// the documented 4xx statuses.
func TestServerValidation(t *testing.T) {
	w := testWorld(t, 2, 1)
	servers, _ := startShards(t, w, remote.ServerConfig{MaxBodyBytes: 256})
	url := servers[0].URL

	if resp, err := http.Get(url + "/shard/query"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET: status %d, want 405", resp.StatusCode)
		}
	}

	resp, err := http.Post(url+"/shard/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	huge := fmt.Sprintf(`{"keywords":[%q],"k":5,"eps":0.0005}`, strings.Repeat("x", 512))
	resp, err = http.Post(url+"/shard/query", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}

	r2, body := postQuery(t, url, remote.QueryRequest{Keywords: []string{"shop"}, K: 0, Epsilon: 0.0005})
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("k=0: status %d (%s), want 400", r2.StatusCode, body)
	}

	r3, body := postQuery(t, url, remote.QueryRequest{Keywords: []string{"shop"}, K: 5, Epsilon: w.Halo * 2})
	if r3.StatusCode != http.StatusBadRequest {
		t.Errorf("eps>halo: status %d (%s), want 400", r3.StatusCode, body)
	}
}

// TestServerHealthReady: /healthz is pure liveness; /readyz follows the
// drain flag — the signal half-open breaker probes key off.
func TestServerHealthReady(t *testing.T) {
	w := testWorld(t, 2, 1)
	srv := remote.NewServer(shardData(w, 0), remote.ServerConfig{})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	check := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusOK)
	srv.SetDraining(true)
	check("/healthz", http.StatusOK) // draining is still alive
	check("/readyz", http.StatusServiceUnavailable)
	srv.SetDraining(false)
	check("/readyz", http.StatusOK)

	// No index loaded: ready must fail even without draining.
	empty := httptest.NewServer(remote.NewServer(remote.ShardData{}, remote.ServerConfig{}))
	defer empty.Close()
	resp, err := http.Get(empty.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz without index: status %d, want 503", resp.StatusCode)
	}
}

// TestServerMeta: /shard/meta must describe the shard and partition.
func TestServerMeta(t *testing.T) {
	w := testWorld(t, 4, 1)
	servers, _ := startShards(t, w, remote.ServerConfig{})
	for i, s := range w.Shards {
		resp, err := http.Get(servers[i].URL + "/shard/meta")
		if err != nil {
			t.Fatal(err)
		}
		var m remote.Meta
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if m.Shard != i || m.Shards != len(w.Shards) || m.TileX != s.TileX || m.TileY != s.TileY ||
			m.Halo != w.Halo || m.Streets != len(s.Streets) || m.Segments != len(s.Segments) {
			t.Errorf("shard %d meta %+v does not match world", i, m)
		}
	}
}

// TestServerInjected5xx: an Err fault at remote.serve must surface as a
// 500 — the chaos mode standing in for a shard whose process is broken
// but whose socket still answers.
func TestServerInjected5xx(t *testing.T) {
	defer faults.Reset()
	w := testWorld(t, 2, 1)
	servers, _ := startShards(t, w, remote.ServerConfig{})
	faults.Activate(remote.SiteServe, faults.Fault{Err: errors.New("injected shard fault"), Times: 1})
	q := testQuery()
	resp, body := postQuery(t, servers[0].URL, remote.QueryRequest{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500", resp.StatusCode, body)
	}
	// The fault window is exhausted: the next query succeeds.
	resp, body = postQuery(t, servers[0].URL, remote.QueryRequest{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after fault window: status %d (%s), want 200", resp.StatusCode, body)
	}
}
