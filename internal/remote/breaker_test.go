package remote

import (
	"testing"
	"time"
)

// TestBreakerLifecycle walks the full closed → open → half-open →
// closed cycle with an injected clock.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{Failures: 3, OpenFor: time.Second})

	// Closed: attempts flow, sub-threshold failures keep it closed.
	for i := 0; i < 2; i++ {
		if v := b.acquire(now); v != breakerAllow {
			t.Fatalf("closed acquire = %v, want allow", v)
		}
		if b.onFailure(now) {
			t.Fatalf("failure %d tripped a threshold-3 breaker", i+1)
		}
	}
	// A success resets the consecutive-failure count.
	b.onSuccess()
	for i := 0; i < 2; i++ {
		if b.onFailure(now) {
			t.Fatalf("failure %d after reset tripped the breaker", i+1)
		}
	}
	// The third consecutive failure trips it.
	if !b.onFailure(now) {
		t.Fatal("threshold failure did not trip the breaker")
	}
	if got := b.snapshotState(now); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	// Open: denied until the deadline.
	if v := b.acquire(now.Add(500 * time.Millisecond)); v != breakerDeny {
		t.Fatalf("open acquire = %v, want deny", v)
	}
	// Past the deadline: half-open, exactly one probe slot.
	later := now.Add(1100 * time.Millisecond)
	if v := b.acquire(later); v != breakerProbe {
		t.Fatalf("post-deadline acquire = %v, want probe", v)
	}
	if v := b.acquire(later); v != breakerDeny {
		t.Fatalf("second half-open acquire = %v, want deny (probe slot taken)", v)
	}
	// Probe failure: straight back to open for a fresh period.
	if !b.onFailure(later) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if v := b.acquire(later.Add(500 * time.Millisecond)); v != breakerDeny {
		t.Fatal("re-opened breaker admitted an attempt inside the open period")
	}
	// Next half-open probe succeeds: closed again, counters reset.
	evenLater := later.Add(1100 * time.Millisecond)
	if v := b.acquire(evenLater); v != breakerProbe {
		t.Fatal("expected a probe after the second open period")
	}
	b.onSuccess()
	if got := b.snapshotState(evenLater); got != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if v := b.acquire(evenLater); v != breakerAllow {
		t.Fatal("closed breaker denied an attempt")
	}
	// Re-closed means a fresh failure budget.
	if b.onFailure(evenLater) || b.onFailure(evenLater) {
		t.Fatal("breaker re-tripped before a fresh consecutive-failure run")
	}
}

// TestBreakerDisabled: negative Failures must disable breaking.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{Failures: -1})
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		if b.onFailure(now) {
			t.Fatal("disabled breaker tripped")
		}
	}
	if v := b.acquire(now); v != breakerAllow {
		t.Fatalf("disabled breaker acquire = %v, want allow", v)
	}
	if got := b.snapshotState(now); got != "disabled" {
		t.Fatalf("state = %q, want disabled", got)
	}
}

// TestBreakerDefaults: the zero config resolves to the documented
// defaults.
func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(BreakerConfig{})
	if b.cfg.Failures != DefaultBreakerFailures || b.cfg.OpenFor != DefaultBreakerOpenFor {
		t.Errorf("defaults = %+v", b.cfg)
	}
}
