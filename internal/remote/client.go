package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
)

// ErrAllBreakersOpen is returned (wrapped with the shard id) when every
// replica of a shard is short-circuited by an open breaker.
var ErrAllBreakersOpen = errors.New("remote: every replica breaker is open")

// PermanentError is a definitive per-request failure — the replica
// answered, but with a status retrying cannot fix (a malformed query, a
// body over the cap, a misconfigured route). The client returns it
// without burning retries and without counting a breaker failure: the
// replica is healthy, the request is not.
type PermanentError struct {
	Status int
	Msg    string
}

func (e *PermanentError) Error() string {
	return fmt.Sprintf("remote: permanent %d: %s", e.Status, e.Msg)
}

// HTTPStatus propagates the shard's status through the shared mapper
// (internal/httperr), so a 400 from a shard stays a 400 at the edge.
func (e *PermanentError) HTTPStatus() int { return e.Status }

// Config tunes the fault-tolerant shard client.
type Config struct {
	// Addrs[shard] lists the replica addresses serving that shard, in
	// failover order ("host:port" or a full http:// URL). Every shard
	// needs at least one address.
	Addrs [][]string
	// AttemptTimeout bounds one HTTP attempt. 0 means
	// DefaultAttemptTimeout.
	AttemptTimeout time.Duration
	// MaxAttempts bounds the retry rounds of one call (first try
	// included, hedges excluded). 0 means DefaultMaxAttempts.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// retry rounds (full jitter in [d/2, d)). Zero means
	// DefaultBackoffBase / DefaultBackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeDelay, when positive, launches a hedged second attempt on
	// another replica once the primary has been in flight this long.
	// Zero selects the adaptive delay: the shard's recent p95 latency,
	// once enough samples exist. Hedging only ever races idempotent
	// reads, so a duplicate evaluation is wasted work, never a wrong
	// answer.
	HedgeDelay time.Duration
	// DisableHedge turns hedging off entirely.
	DisableHedge bool
	// Breaker tunes the per-replica circuit breakers.
	Breaker BreakerConfig
	// Transport overrides the HTTP transport (tests inject
	// fault-injecting round-trippers; production uses the default).
	Transport http.RoundTripper
	// Recorder, when non-nil, receives the soi_remote_* counters.
	Recorder *stats.Recorder
}

// DefaultAttemptTimeout bounds one HTTP attempt when Config leaves it
// zero.
const DefaultAttemptTimeout = 2 * time.Second

// DefaultMaxAttempts is the per-call retry budget when Config leaves it
// zero.
const DefaultMaxAttempts = 3

// DefaultBackoffBase and DefaultBackoffMax shape the retry backoff when
// Config leaves them zero.
const (
	DefaultBackoffBase = 10 * time.Millisecond
	DefaultBackoffMax  = 250 * time.Millisecond
)

// maxResponseBytes caps a decoded /shard/query response.
const maxResponseBytes = 64 << 20

// latencyWindow is the per-shard success-latency ring used by adaptive
// hedging; minHedgeSamples gates hedging until the window has signal.
const (
	latencyWindow   = 64
	minHedgeSamples = 16
)

// replicaState is one address plus its circuit breaker.
type replicaState struct {
	addr string
	br   *breaker
}

// shardState is the client's view of one shard: its replicas, a
// rotation counter for failover spread, and the latency window driving
// adaptive hedging.
type shardState struct {
	replicas []*replicaState
	next     atomic.Uint64

	mu   sync.Mutex
	lats [latencyWindow]time.Duration
	nLat int
	iLat int
}

// pick returns the next replica an attempt may use: the first
// breaker-closed replica in rotation order, else the first half-open
// replica granting probe duty, else nil (all open).
func (ss *shardState) pick(now time.Time) (*replicaState, breakerVerdict) {
	n := len(ss.replicas)
	start := int(ss.next.Add(1)-1) % n
	for i := 0; i < n; i++ {
		rep := ss.replicas[(start+i)%n]
		if rep.br.allowFast(now) {
			return rep, breakerAllow
		}
	}
	for i := 0; i < n; i++ {
		rep := ss.replicas[(start+i)%n]
		if v := rep.br.acquire(now); v != breakerDeny {
			return rep, v
		}
	}
	return nil, breakerDeny
}

// pickHedge returns a breaker-closed replica for a hedged attempt,
// preferring one different from the primary. Hedges never take probe
// duty: a half-open breaker's single slot belongs to deliberate probes.
func (ss *shardState) pickHedge(now time.Time, primary *replicaState) *replicaState {
	for _, rep := range ss.replicas {
		if rep != primary && rep.br.allowFast(now) {
			return rep
		}
	}
	if primary.br.allowFast(now) {
		return primary // a second connection to the only healthy replica
	}
	return nil
}

// allowFast reports whether the breaker is closed (or disabled) without
// claiming half-open probe duty.
func (b *breaker) allowFast(now time.Time) bool {
	if b.cfg.Failures < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed
}

func (ss *shardState) observe(d time.Duration) {
	ss.mu.Lock()
	ss.lats[ss.iLat] = d
	ss.iLat = (ss.iLat + 1) % latencyWindow
	if ss.nLat < latencyWindow {
		ss.nLat++
	}
	ss.mu.Unlock()
}

// p95 returns the 95th-percentile success latency over the window, and
// whether enough samples exist to trust it.
func (ss *shardState) p95() (time.Duration, bool) {
	ss.mu.Lock()
	n := ss.nLat
	buf := make([]time.Duration, n)
	copy(buf, ss.lats[:n])
	ss.mu.Unlock()
	if n < minHedgeSamples {
		return 0, false
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(n*95+99)/100-1], true
}

// Client is the fault-tolerant side of the shard RPC: bounded retries
// with exponential backoff and jitter, hedged requests, per-replica
// circuit breakers with /readyz half-open probes, and replica failover.
// It is safe for concurrent use.
type Client struct {
	cfg    Config
	httpc  *http.Client
	shards []*shardState
	rec    *stats.Recorder
	// now is the breaker/hedge clock, swappable in tests.
	now func() time.Time
}

// NewClient validates the address table and builds a client.
func NewClient(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("remote: no shard addresses")
	}
	shards := make([]*shardState, len(cfg.Addrs))
	for i, reps := range cfg.Addrs {
		if len(reps) == 0 {
			return nil, fmt.Errorf("remote: shard %d has no replica addresses", i)
		}
		ss := &shardState{}
		for _, a := range reps {
			if strings.TrimSpace(a) == "" {
				return nil, fmt.Errorf("remote: shard %d has an empty replica address", i)
			}
			ss.replicas = append(ss.replicas, &replicaState{addr: a, br: newBreaker(cfg.Breaker)})
		}
		shards[i] = ss
	}
	transport := cfg.Transport
	if transport == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 16
		transport = t
	}
	return &Client{
		cfg:    cfg,
		httpc:  &http.Client{Transport: transport},
		shards: shards,
		rec:    cfg.Recorder,
		now:    time.Now,
	}, nil
}

// Shards returns the number of shards the client addresses.
func (c *Client) Shards() int { return len(c.shards) }

// Close releases idle transport connections.
func (c *Client) Close() {
	c.httpc.CloseIdleConnections()
}

// count bumps a recorder counter; nil-recorder safe.
func (c *Client) count(sel func(*stats.RemoteStats) *stats.Counter) {
	if c.rec != nil {
		sel(&c.rec.Remote).Add(1)
	}
}

// Bound fetches the shard's static unseen upper bound for q — the cheap
// first phase of a remote scatter round.
func (c *Client) Bound(ctx context.Context, shard int, q core.Query) (float64, error) {
	resp, err := c.call(ctx, shard, QueryRequest{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon, BoundOnly: true})
	if err != nil {
		return 0, err
	}
	return resp.UB, nil
}

// Query evaluates q on the shard and returns its local top-k (global
// ids) plus the bound and work counters.
func (c *Client) Query(ctx context.Context, shard int, q core.Query) (*QueryResponse, error) {
	return c.call(ctx, shard, QueryRequest{Keywords: q.Keywords, K: q.K, Epsilon: q.Epsilon})
}

// Meta fetches shard metadata from the first reachable replica, trying
// each in order without retries — a startup sanity check, not a serving
// path.
func (c *Client) Meta(ctx context.Context, shard int) (*Meta, error) {
	if shard < 0 || shard >= len(c.shards) {
		return nil, fmt.Errorf("remote: shard %d out of range", shard)
	}
	var lastErr error
	for _, rep := range c.shards[shard].replicas {
		actx, cancel := context.WithTimeout(ctx, c.attemptTimeout())
		req, err := http.NewRequestWithContext(actx, http.MethodGet, c.url(rep.addr)+"/shard/meta", nil)
		if err != nil {
			cancel()
			return nil, err
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		var m Meta
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m)
		resp.Body.Close()
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		return &m, nil
	}
	return nil, fmt.Errorf("remote: shard %d meta: %w", shard, lastErr)
}

func (c *Client) attemptTimeout() time.Duration {
	if c.cfg.AttemptTimeout > 0 {
		return c.cfg.AttemptTimeout
	}
	return DefaultAttemptTimeout
}

func (c *Client) maxAttempts() int {
	if c.cfg.MaxAttempts > 0 {
		return c.cfg.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (c *Client) url(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// hedgeDelay resolves the hedge trigger for one shard: the configured
// fixed delay, or the shard's recent p95 once the window has signal.
func (c *Client) hedgeDelay(ss *shardState) time.Duration {
	if c.cfg.DisableHedge {
		return 0
	}
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	p95, ok := ss.p95()
	if !ok {
		return 0
	}
	if min := time.Millisecond; p95 < min {
		p95 = min
	}
	if max := c.attemptTimeout() / 2; p95 > max {
		p95 = max
	}
	return p95
}

// backoff sleeps the jittered exponential delay before retry round
// `round` (1-based); it returns false when ctx expired first.
func (c *Client) backoff(ctx context.Context, round int) bool {
	base := c.cfg.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	max := c.cfg.BackoffMax
	if max <= 0 {
		max = DefaultBackoffMax
	}
	d := base << (round - 1)
	if d > max || d <= 0 {
		d = max
	}
	// Full jitter over [d/2, d): desynchronizes retry storms while
	// keeping the expected wait close to the schedule.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// call runs one logical shard call through the full resilience stack.
func (c *Client) call(ctx context.Context, shard int, req QueryRequest) (*QueryResponse, error) {
	if shard < 0 || shard >= len(c.shards) {
		return nil, fmt.Errorf("remote: shard %d out of range [0,%d)", shard, len(c.shards))
	}
	ss := c.shards[shard]
	c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.Calls })

	var lastErr error
	maxAttempts := c.maxAttempts()
	for round := 0; round < maxAttempts; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if round > 0 {
			c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.Retries })
			if !c.backoff(ctx, round) {
				return nil, ctx.Err()
			}
		}
		rep, verdict := ss.pick(c.now())
		if rep == nil {
			c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.BreakerShortCircuits })
			lastErr = fmt.Errorf("remote: shard %d: %w", shard, ErrAllBreakersOpen)
			continue
		}
		if verdict == breakerProbe {
			// Half-open: one /readyz probe decides between re-admitting
			// this replica and another open period.
			c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.BreakerProbes })
			if err := c.probe(ctx, rep.addr); err != nil {
				if rep.br.onFailure(c.now()) {
					c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.BreakerOpens })
				}
				lastErr = fmt.Errorf("remote: shard %d replica %s probe: %w", shard, rep.addr, err)
				continue
			}
			rep.br.onSuccess()
		}
		resp, err, terminal := c.round(ctx, ss, rep, req)
		if err == nil {
			return resp, nil
		}
		lastErr = fmt.Errorf("remote: shard %d: %w", shard, err)
		if terminal {
			if ctx.Err() == nil {
				c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.Errors })
			}
			return nil, lastErr
		}
	}
	c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.Errors })
	return nil, lastErr
}

// attemptOut is one attempt's outcome in a hedged race.
type attemptOut struct {
	resp   *QueryResponse
	err    error
	rep    *replicaState
	hedged bool
}

// round runs one retry round: a primary attempt, optionally raced
// against a hedged attempt on another replica once the hedge delay
// elapses. It returns terminal=true for outcomes retrying cannot
// improve (success, parent-context cancellation, permanent statuses).
func (c *Client) round(ctx context.Context, ss *shardState, primary *replicaState, req QueryRequest) (resp *QueryResponse, err error, terminal bool) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ch := make(chan attemptOut, 2)
	launch := func(rep *replicaState, hedged bool) {
		go func() {
			resp, err := c.attempt(rctx, ss, rep.addr, req)
			ch <- attemptOut{resp: resp, err: err, rep: rep, hedged: hedged}
		}()
	}
	launch(primary, false)
	inflight, hedged := 1, false

	var hedgeC <-chan time.Time
	if d := c.hedgeDelay(ss); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	for {
		select {
		case out := <-ch:
			inflight--
			if out.err == nil {
				out.rep.br.onSuccess()
				if hedged {
					if out.hedged {
						c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.HedgesWon })
					} else {
						c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.HedgesWasted })
					}
				}
				return out.resp, nil, true
			}
			if ctx.Err() != nil {
				// The caller gave up (deadline, or a coordinator pruning a
				// speculative scatter): not a replica failure.
				return nil, ctx.Err(), true
			}
			var pe *PermanentError
			if errors.As(out.err, &pe) {
				// The replica answered decisively; it is healthy and the
				// request will not get better. No breaker penalty, no retry.
				out.rep.br.onSuccess()
				return nil, out.err, true
			}
			if out.rep.br.onFailure(c.now()) {
				c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.BreakerOpens })
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %s: %w", out.rep.addr, out.err)
			}
			if inflight > 0 {
				continue // the race partner may still win
			}
			return nil, firstErr, false
		case <-hedgeC:
			hedgeC = nil
			if rep := ss.pickHedge(c.now(), primary); rep != nil {
				c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.HedgesStarted })
				launch(rep, true)
				inflight++
				hedged = true
			}
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
}

// attempt performs one HTTP request against one replica. The
// fault-injection sites model its network legs: dial (before the
// request), send (request transmission), recv (response stream).
func (c *Client) attempt(ctx context.Context, ss *shardState, addr string, req QueryRequest) (*QueryResponse, error) {
	c.count(func(r *stats.RemoteStats) *stats.Counter { return &r.Attempts })
	actx, cancel := context.WithTimeout(ctx, c.attemptTimeout())
	defer cancel()

	if err := faults.InjectCtx(actx, SiteDial); err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, c.url(addr)+"/shard/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if err := faults.InjectCtx(actx, SiteSend); err != nil {
		return nil, fmt.Errorf("send %s: %w", addr, err)
	}
	start := time.Now()
	hresp, err := c.httpc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(hresp.Body, 1<<16))
		hresp.Body.Close()
	}()
	if err := faults.InjectCtx(actx, SiteRecv); err != nil {
		return nil, fmt.Errorf("recv %s: %w", addr, err)
	}
	switch {
	case hresp.StatusCode == http.StatusOK:
		var out QueryResponse
		if err := json.NewDecoder(io.LimitReader(hresp.Body, maxResponseBytes)).Decode(&out); err != nil {
			return nil, fmt.Errorf("decoding %s response: %w", addr, err)
		}
		ss.observe(time.Since(start))
		return &out, nil
	case hresp.StatusCode >= 400 && hresp.StatusCode < 500 &&
		hresp.StatusCode != http.StatusRequestTimeout && hresp.StatusCode != http.StatusTooManyRequests:
		return nil, &PermanentError{Status: hresp.StatusCode, Msg: readErrBody(hresp.Body)}
	default:
		// 5xx, 408, 429: the replica (or its admission control) is
		// struggling; retry/failover may succeed.
		return nil, fmt.Errorf("%s answered %d: %s", addr, hresp.StatusCode, readErrBody(hresp.Body))
	}
}

// probe checks a half-open replica's /readyz before re-admitting it.
func (c *Client) probe(ctx context.Context, addr string) error {
	actx, cancel := context.WithTimeout(ctx, c.attemptTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.url(addr)+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz answered %d: %s", resp.StatusCode, readErrBody(resp.Body))
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	return nil
}

// readErrBody extracts the uniform JSON error payload, falling back to
// the raw (truncated) body.
func readErrBody(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 1<<12))
	if err != nil || len(raw) == 0 {
		return "<no body>"
	}
	var eb errBody
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	return strings.TrimSpace(string(raw))
}

// BreakerStates reports every replica breaker's current state, shard by
// shard — surfaced through /api/stats on the coordinator.
func (c *Client) BreakerStates() [][]string {
	now := c.now()
	out := make([][]string, len(c.shards))
	for i, ss := range c.shards {
		states := make([]string, len(ss.replicas))
		for j, rep := range ss.replicas {
			states[j] = rep.br.snapshotState(now)
		}
		out[i] = states
	}
	return out
}
