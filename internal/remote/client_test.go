package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/stats"
)

// fastClient returns a client config tuned so failure paths resolve in
// milliseconds instead of the production defaults.
func fastConfig(addrs [][]string, rec *stats.Recorder) remote.Config {
	return remote.Config{
		Addrs:          addrs,
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
		DisableHedge:   true,
		Recorder:       rec,
	}
}

// flakyShard is a handler that fails its first n /shard/query calls
// with the given status, then delegates to a healthy responder.
type flakyShard struct {
	failures atomic.Int64
	status   int
	calls    atomic.Int64
	resp     remote.QueryResponse
}

func (f *flakyShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/readyz", "/healthz":
		w.WriteHeader(http.StatusOK)
		return
	case "/shard/query":
		n := f.calls.Add(1)
		if n <= f.failures.Load() {
			http.Error(w, "injected failure", f.status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(f.resp)
	default:
		http.NotFound(w, r)
	}
}

// TestClientRetriesTransientFailures: two 500s then success must
// resolve within one call, with the retry counters telling the story.
func TestClientRetriesTransientFailures(t *testing.T) {
	fs := &flakyShard{status: http.StatusInternalServerError, resp: remote.QueryResponse{Shard: 0, UB: 1.5}}
	fs.failures.Store(2)
	hs := httptest.NewServer(fs)
	defer hs.Close()

	rec := stats.NewRecorder()
	c, err := remote.NewClient(fastConfig([][]string{{hs.URL}}, rec))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query(context.Background(), 0, testQuery())
	if err != nil {
		t.Fatalf("call failed despite retry budget: %v", err)
	}
	if resp.UB != 1.5 {
		t.Errorf("UB = %v, want 1.5", resp.UB)
	}
	if got := rec.Remote.Retries.Load(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := rec.Remote.Attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if got := rec.Remote.Errors.Load(); got != 0 {
		t.Errorf("errors = %d, want 0 (the call succeeded)", got)
	}
}

// TestClientExhaustsRetries: a shard that never recovers must fail the
// call after exactly MaxAttempts rounds — bounded, never hanging.
func TestClientExhaustsRetries(t *testing.T) {
	fs := &flakyShard{status: http.StatusInternalServerError}
	fs.failures.Store(1 << 30)
	hs := httptest.NewServer(fs)
	defer hs.Close()

	rec := stats.NewRecorder()
	c, err := remote.NewClient(fastConfig([][]string{{hs.URL}}, rec))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(context.Background(), 0, testQuery()); err == nil {
		t.Fatal("call succeeded against a permanently failing shard")
	}
	if got := rec.Remote.Attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (MaxAttempts)", got)
	}
	if got := rec.Remote.Errors.Load(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
}

// TestClientPermanentErrorNoRetry: a 4xx is the request's fault; the
// client must return it immediately, typed, without burning retries.
func TestClientPermanentErrorNoRetry(t *testing.T) {
	fs := &flakyShard{status: http.StatusBadRequest}
	fs.failures.Store(1 << 30)
	hs := httptest.NewServer(fs)
	defer hs.Close()

	rec := stats.NewRecorder()
	c, err := remote.NewClient(fastConfig([][]string{{hs.URL}}, rec))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(context.Background(), 0, testQuery())
	var pe *remote.PermanentError
	if !errors.As(err, &pe) || pe.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *PermanentError with status 400", err)
	}
	if got := rec.Remote.Attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on permanent errors)", got)
	}
}

// TestClientFailover: with the first replica down, the call must
// succeed through the second without exhausting the retry budget.
func TestClientFailover(t *testing.T) {
	good := &flakyShard{resp: remote.QueryResponse{Shard: 0, UB: 2.5}}
	hs := httptest.NewServer(good)
	defer hs.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // a closed listener: connection refused

	rec := stats.NewRecorder()
	c, err := remote.NewClient(fastConfig([][]string{{dead.URL, hs.URL}}, rec))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The rotation counter decides which replica goes first; both orders
	// must converge on the live one within the retry budget.
	for i := 0; i < 4; i++ {
		resp, err := c.Query(context.Background(), 0, testQuery())
		if err != nil {
			t.Fatalf("call %d failed despite a live replica: %v", i, err)
		}
		if resp.UB != 2.5 {
			t.Errorf("call %d: UB = %v, want 2.5", i, resp.UB)
		}
	}
}

// TestClientBreakerTripsAndRecovers: consecutive failures must trip the
// breaker (short-circuiting later calls), and a successful /readyz
// probe after the open period must re-admit the replica.
func TestClientBreakerTripsAndRecovers(t *testing.T) {
	fs := &flakyShard{status: http.StatusInternalServerError, resp: remote.QueryResponse{Shard: 0, UB: 3.5}}
	fs.failures.Store(1 << 30)
	hs := httptest.NewServer(fs)
	defer hs.Close()

	rec := stats.NewRecorder()
	cfg := fastConfig([][]string{{hs.URL}}, rec)
	cfg.Breaker = remote.BreakerConfig{Failures: 3, OpenFor: 30 * time.Millisecond}
	c, err := remote.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One call = 3 attempts = 3 consecutive failures: trips the breaker.
	if _, err := c.Query(context.Background(), 0, testQuery()); err == nil {
		t.Fatal("call succeeded against a failing shard")
	}
	if got := rec.Remote.BreakerOpens.Load(); got != 1 {
		t.Fatalf("breaker opens = %d, want 1", got)
	}
	// While open, calls short-circuit without touching the network.
	before := fs.calls.Load()
	if _, err := c.Query(context.Background(), 0, testQuery()); !errors.Is(err, remote.ErrAllBreakersOpen) {
		t.Fatalf("err = %v, want ErrAllBreakersOpen", err)
	}
	if fs.calls.Load() != before {
		t.Errorf("open breaker still let %d requests through", fs.calls.Load()-before)
	}
	if rec.Remote.BreakerShortCircuits.Load() == 0 {
		t.Error("no short circuits recorded")
	}

	// Heal the shard, wait out the open period: the half-open probe must
	// re-admit it and the next call succeeds.
	fs.failures.Store(fs.calls.Load())
	time.Sleep(40 * time.Millisecond)
	resp, err := c.Query(context.Background(), 0, testQuery())
	if err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
	if resp.UB != 3.5 {
		t.Errorf("UB = %v, want 3.5", resp.UB)
	}
	if rec.Remote.BreakerProbes.Load() == 0 {
		t.Error("recovery did not go through a half-open probe")
	}
	states := c.BreakerStates()
	if states[0][0] != "closed" {
		t.Errorf("breaker state after recovery = %q, want closed", states[0][0])
	}
}

// TestClientHedging: a primary stuck past the hedge delay must be
// raced by a second replica, and the fast replica's answer wins.
func TestClientHedging(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/shard/query" {
			time.Sleep(400 * time.Millisecond)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(remote.QueryResponse{Shard: 0, UB: 1})
	})
	fast := &flakyShard{resp: remote.QueryResponse{Shard: 0, UB: 9}}
	hsSlow := httptest.NewServer(slow)
	defer hsSlow.Close()
	hsFast := httptest.NewServer(fast)
	defer hsFast.Close()

	rec := stats.NewRecorder()
	cfg := remote.Config{
		Addrs:          [][]string{{hsSlow.URL, hsFast.URL}},
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    1,
		HedgeDelay:     20 * time.Millisecond,
		Recorder:       rec,
	}
	c, err := remote.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Whichever replica the rotation picks first, a slow primary hedges
	// to the fast replica; a fast primary answers before the hedge
	// timer. Drive until the slow replica is primary at least once.
	sawHedgeWin := false
	start := time.Now()
	for i := 0; i < 4 && !sawHedgeWin; i++ {
		resp, err := c.Query(context.Background(), 0, testQuery())
		if err != nil {
			t.Fatalf("hedged call %d: %v", i, err)
		}
		if resp.UB == 9 && rec.Remote.HedgesWon.Load() > 0 {
			sawHedgeWin = true
		}
	}
	if !sawHedgeWin {
		t.Fatalf("no hedge won in 4 calls (hedges started: %d, won: %d)",
			rec.Remote.HedgesStarted.Load(), rec.Remote.HedgesWon.Load())
	}
	// The winning path must beat the slow replica's 400ms sleep.
	if elapsed := time.Since(start); elapsed > 4*350*time.Millisecond {
		t.Errorf("hedging saved no time: %v elapsed", elapsed)
	}
}

// TestClientContextCancellation: cancelling the caller's context must
// abort the call promptly with the context error, not an exhausted
// retry loop, and not count a client-visible error.
func TestClientContextCancellation(t *testing.T) {
	stuck := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only watches for the peer
		// closing the connection once the request body has been consumed.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	})
	hs := httptest.NewServer(stuck)
	defer hs.Close()

	rec := stats.NewRecorder()
	c, err := remote.NewClient(fastConfig([][]string{{hs.URL}}, rec))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, 0, testQuery())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call did not abort after cancellation")
	}
	if got := rec.Remote.Errors.Load(); got != 0 {
		t.Errorf("errors = %d, want 0 (caller cancelled, shard fine)", got)
	}
}

// TestClientBoundRoundTrip: Bound against a real shard server must
// return the index's exact unseen bound.
func TestClientBoundRoundTrip(t *testing.T) {
	w := testWorld(t, 2, 1)
	_, addrs := startShards(t, w, remote.ServerConfig{})
	c, err := remote.NewClient(fastConfig(addrs, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := testQuery()
	for i, s := range w.Shards {
		got, err := c.Bound(context.Background(), i, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Index.UnseenBound(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("shard %d: bound %v != %v", i, got, want)
		}
	}
}

// TestClientMeta: Meta must fail over dead replicas and validate
// against the world.
func TestClientMeta(t *testing.T) {
	w := testWorld(t, 2, 1)
	_, addrs := startShards(t, w, remote.ServerConfig{})
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	addrs[0] = append([]string{dead.URL}, addrs[0]...)

	c, err := remote.NewClient(fastConfig(addrs, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.Meta(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shard != 0 || m.Shards != len(w.Shards) {
		t.Errorf("meta %+v does not match world", m)
	}
}

func TestParseAddrs(t *testing.T) {
	got, err := remote.ParseAddrs("a:1,b:1; c:2 ;d:3,e:3,f:3")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a:1", "b:1"}, {"c:2"}, {"d:3", "e:3", "f:3"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseAddrs = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "a:1;;b:2", ";a:1", "a:1;,"} {
		if _, err := remote.ParseAddrs(bad); err == nil {
			t.Errorf("ParseAddrs(%q) accepted a gapped table", bad)
		}
	}
}

// TestClientConfigValidation: an empty or gapped address table must be
// rejected at construction.
func TestClientConfigValidation(t *testing.T) {
	if _, err := remote.NewClient(remote.Config{}); err == nil {
		t.Error("NewClient accepted an empty address table")
	}
	if _, err := remote.NewClient(remote.Config{Addrs: [][]string{{"a:1"}, {}}}); err == nil {
		t.Error("NewClient accepted a shard with no replicas")
	}
	if _, err := remote.NewClient(remote.Config{Addrs: [][]string{{" "}}}); err == nil {
		t.Error("NewClient accepted a blank address")
	}
	c, err := remote.NewClient(remote.Config{Addrs: [][]string{{"a:1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), 5, core.Query{Keywords: []string{"x"}, K: 1, Epsilon: 0.1}); err == nil {
		t.Error("out-of-range shard accepted")
	}
}
