// Package remote moves the scatter half of the k-SOI scatter-gather
// coordinator across process boundaries: a per-shard HTTP query server
// (Server, wrapped by cmd/soishard) and a fault-tolerant client
// (Client) that the shard.RemoteCoordinator fans out through.
//
// The wire protocol is deliberately small — one POST endpoint answering
// a shard-local k-SOI evaluation (or just its unseen upper bound), one
// metadata endpoint, and the liveness/readiness pair:
//
//	GET  /healthz      liveness: the process is up
//	GET  /readyz       readiness: index loaded and not draining
//	GET  /shard/meta   shard id, tile grid, halo, cell size, sizes
//	POST /shard/query  {"keywords":[...],"k":..,"eps":..[,"bound_only":true]}
//
// Responses carry street and segment ids already mapped to the global
// id space, so the coordinator needs no per-shard id tables. All floats
// travel as JSON numbers: encoding/json emits the shortest decimal that
// round-trips to the same float64, so interests and masses survive the
// wire bit-exactly and a non-degraded remote answer can be compared
// bit-for-bit against the single-process oracle.
//
// The client survives an unreliable network: per-attempt timeouts,
// bounded retries with exponential backoff and jitter (k-SOI queries
// are idempotent reads), hedged second attempts once a call outlives
// the shard's recent latency, per-replica circuit breakers
// (closed/open/half-open with a /readyz probe) and replica failover.
// Chaos suites drive all of it deterministically through the
// internal/faults sites below.
package remote

import (
	"repro/internal/core"
	"repro/internal/network"
)

// Fault-injection sites (internal/faults) modelling the network legs of
// one attempt. Delay = latency, Block = wedge, Err = drop; the serving
// site's Err maps to an injected 5xx.
const (
	// SiteDial fires client-side before the HTTP request is issued —
	// the connection-establishment leg.
	SiteDial = "remote.dial"
	// SiteSend fires client-side between dial and the round trip — the
	// request-transmission leg.
	SiteSend = "remote.send"
	// SiteRecv fires client-side after the response header arrives,
	// before the body is decoded — the response-stream leg.
	SiteRecv = "remote.recv"
	// SiteServe fires server-side before a shard evaluation; an Err
	// fault here surfaces as a 500 to the client (the injected-5xx
	// chaos mode).
	SiteServe = "remote.serve"
)

// QueryRequest is the /shard/query request body: the paper's q = ⟨Ψ, k,
// ε⟩ plus the bound-only flag the coordinator's first phase uses.
type QueryRequest struct {
	Keywords []string `json:"keywords"`
	K        int      `json:"k"`
	Epsilon  float64  `json:"eps"`
	// BoundOnly asks for the shard's static unseen upper bound without
	// running Algorithm 1 — the cheap first phase of a remote
	// scatter-gather round.
	BoundOnly bool `json:"bound_only,omitempty"`
}

// Query converts the wire form back to a core query.
func (r QueryRequest) Query() core.Query {
	return core.Query{Keywords: r.Keywords, K: r.K, Epsilon: r.Epsilon}
}

// QueryResponse is the /shard/query response body. Results carry global
// street/segment ids; Stats are the shard evaluation's Algorithm 1 work
// counters (zero for bound-only calls).
type QueryResponse struct {
	Shard   int                 `json:"shard"`
	UB      float64             `json:"ub"`
	Results []core.StreetResult `json:"results,omitempty"`
	Stats   core.Stats          `json:"stats,omitempty"`
}

// Meta is the /shard/meta response body: enough for a coordinator to
// sanity-check that an address really serves the shard it was
// configured for, over the partition it expects.
type Meta struct {
	Shard    int     `json:"shard"`
	Shards   int     `json:"shards"`
	TileX    int     `json:"tile_x"`
	TileY    int     `json:"tile_y"`
	Halo     float64 `json:"halo"`
	CellSize float64 `json:"cell_size"`
	Streets  int     `json:"streets"`
	Segments int     `json:"segments"`
}

// ShardData is everything a Server needs to answer queries for one
// shard. It mirrors shard.Shard plus the partition-level constants, but
// stays a plain struct so this package does not import internal/shard
// (which imports this package for the remote coordinator).
type ShardData struct {
	ShardID  int
	Shards   int
	TileX    int
	TileY    int
	Halo     float64
	CellSize float64
	Index    *core.Index
	// Streets[local] / Segments[local] map the shard's local ids to the
	// global id space (strictly ascending, preserving tie-breaks).
	Streets  []network.StreetID
	Segments []network.SegmentID
}
