package remote

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-replica circuit breakers.
type BreakerConfig struct {
	// Failures is the number of consecutive attempt failures that trips
	// a replica's breaker open. 0 means DefaultBreakerFailures; negative
	// disables breaking entirely.
	Failures int
	// OpenFor is how long a tripped breaker rejects attempts before
	// moving to half-open and admitting a single readiness probe. 0
	// means DefaultBreakerOpenFor.
	OpenFor time.Duration
}

// DefaultBreakerFailures is the consecutive-failure trip threshold when
// BreakerConfig leaves Failures zero.
const DefaultBreakerFailures = 5

// DefaultBreakerOpenFor is the open period when BreakerConfig leaves
// OpenFor zero.
const DefaultBreakerOpenFor = time.Second

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breakerVerdict is what acquire tells an attempt about one replica.
type breakerVerdict int

const (
	// breakerAllow: the replica is believed healthy; send the attempt.
	breakerAllow breakerVerdict = iota
	// breakerProbe: the breaker is half-open and this caller won probe
	// duty — check /readyz before the real request, and report the
	// outcome so the breaker can close or re-open.
	breakerProbe
	// breakerDeny: the breaker is open (or another caller holds the
	// half-open probe slot); skip this replica.
	breakerDeny
)

// breaker is a per-replica circuit breaker with the classic three-state
// lifecycle: closed (counting consecutive failures), open (rejecting
// until a deadline), half-open (admitting exactly one probe whose
// outcome decides between closing and re-opening). Time is passed in by
// the caller so tests can drive transitions deterministically.
type breaker struct {
	cfg BreakerConfig

	mu      sync.Mutex
	state   breakerState
	fails   int
	until   time.Time // when an open breaker moves to half-open
	probing bool      // a half-open probe is in flight
}

func newBreaker(cfg BreakerConfig) *breaker {
	if cfg.Failures == 0 {
		cfg.Failures = DefaultBreakerFailures
	}
	if cfg.OpenFor == 0 {
		cfg.OpenFor = DefaultBreakerOpenFor
	}
	return &breaker{cfg: cfg}
}

// acquire decides whether an attempt may use this replica now.
func (b *breaker) acquire(now time.Time) breakerVerdict {
	if b.cfg.Failures < 0 {
		return breakerAllow
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return breakerAllow
	case breakerOpen:
		if now.Before(b.until) {
			return breakerDeny
		}
		b.state = breakerHalfOpen
		b.probing = true
		return breakerProbe
	default: // half-open
		if b.probing {
			return breakerDeny
		}
		b.probing = true
		return breakerProbe
	}
}

// onSuccess records a successful attempt (or probe): the replica is
// healthy again, whatever state the breaker was in.
func (b *breaker) onSuccess() {
	if b.cfg.Failures < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// onFailure records a failed attempt. It returns true when this failure
// tripped the breaker from closed (or half-open) to open — the
// transition the soi_remote_breaker_opens counter tracks.
func (b *breaker) onFailure(now time.Time) (opened bool) {
	if b.cfg.Failures < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: straight back to open for a fresh period.
		b.state = breakerOpen
		b.until = now.Add(b.cfg.OpenFor)
		b.probing = false
		return true
	case breakerClosed:
		b.fails++
		if b.fails >= b.cfg.Failures {
			b.state = breakerOpen
			b.until = now.Add(b.cfg.OpenFor)
			return true
		}
	}
	return false
}

// snapshotState reports the current state for observability ("closed",
// "open", "half-open").
func (b *breaker) snapshotState(now time.Time) string {
	if b.cfg.Failures < 0 {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Before(b.until) {
			return "open"
		}
		return "half-open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
