package remote

import (
	"fmt"
	"strings"
)

// ParseAddrs parses the -shard-addrs syntax: per-shard replica address
// lists, shards separated by ';', replicas within a shard by ','.
//
//	"host:9100;host:9101"                   two shards, one replica each
//	"host:9100,host:9200;host:9101"         shard 0 has a second replica
//
// Empty shard entries and empty replica entries are rejected: a silent
// gap in the table would make a shard permanently unreachable.
func ParseAddrs(s string) ([][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("remote: empty shard address list")
	}
	var out [][]string
	for i, group := range strings.Split(s, ";") {
		var reps []string
		for _, a := range strings.Split(group, ",") {
			if t := strings.TrimSpace(a); t != "" {
				reps = append(reps, t)
			}
		}
		if len(reps) == 0 {
			return nil, fmt.Errorf("remote: shard %d has no replica addresses", i)
		}
		out = append(out, reps)
	}
	return out, nil
}
