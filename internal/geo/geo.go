// Package geo provides the planar geometry substrate used throughout the
// SOI library: points, line segments, axis-aligned rectangles, and the
// distance computations the paper's definitions rely on (point-to-segment
// distance for POI/photo mass, rectangle-to-segment distance for the
// ε-augmented cell↔segment maps, and min/max point-to-rectangle distances
// for the diversification bounds).
//
// Following the paper, coordinates are planar (longitude/latitude treated
// as Euclidean); all distances are Euclidean in coordinate space.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is a convenience constructor for Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// R is a convenience constructor for Rect.
func R(minX, minY, maxX, maxY float64) Rect {
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns the translation of p by (dx, dy).
func (p Point) Add(dx, dy float64) Point {
	return Point{p.X + dx, p.Y + dy}
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.X, p.Y)
}

// Segment is a directed line segment between two points. The direction is
// irrelevant to every distance computation; it only records how street
// geometry was digitized.
type Segment struct {
	A, B Point
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 {
	return s.A.Dist(s.B)
}

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// ClosestPoint returns the point on s closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	lenSq := dx*dx + dy*dy
	if lenSq == 0 {
		// Degenerate segment: a single point.
		return s.A
	}
	t := ((p.X-s.A.X)*dx + (p.Y-s.A.Y)*dy) / lenSq
	switch {
	case t <= 0:
		return s.A
	case t >= 1:
		return s.B
	}
	return Point{s.A.X + t*dx, s.A.Y + t*dy}
}

// DistToPoint returns the minimum Euclidean distance between p and any
// point on the segment. This realizes the paper's dist(p, ℓ).
func (s Segment) DistToPoint(p Point) float64 {
	return p.Dist(s.ClosestPoint(p))
}

// DistToPointSq returns the squared minimum distance between p and s.
func (s Segment) DistToPointSq(p Point) float64 {
	return p.DistSq(s.ClosestPoint(p))
}

// AccumWeightsWithin streams the points (xs[i], ys[i]) through the
// point-to-segment distance test and returns the sum of ws[i] over the
// points within distance √epsSq of s, accumulated in index order. The
// per-point arithmetic is identical to DistToPointSq (the segment-side
// invariants are merely hoisted out of the loop), so the result is
// bit-for-bit the sum a DistToPointSq loop would produce; hot paths use
// it to avoid per-point call overhead and slice indexing checks.
func (s Segment) AccumWeightsWithin(xs, ys, ws []float64, epsSq float64) float64 {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	lenSq := dx*dx + dy*dy
	ax, ay := s.A.X, s.A.Y
	bx, by := s.B.X, s.B.Y
	var sum float64
	if lenSq == 0 {
		// Degenerate segment: distance to the single point A.
		for i, px := range xs {
			ddx, ddy := px-ax, ys[i]-ay
			if ddx*ddx+ddy*ddy <= epsSq {
				sum += ws[i]
			}
		}
		return sum
	}
	for i, px := range xs {
		py := ys[i]
		t := ((px-ax)*dx + (py-ay)*dy) / lenSq
		var cx, cy float64
		switch {
		case t <= 0:
			cx, cy = ax, ay
		case t >= 1:
			cx, cy = bx, by
		default:
			cx, cy = ax+t*dx, ay+t*dy
		}
		ddx, ddy := px-cx, py-cy
		if ddx*ddx+ddy*ddy <= epsSq {
			sum += ws[i]
		}
	}
	return sum
}

// Bounds returns the minimum bounding rectangle of the segment.
func (s Segment) Bounds() Rect {
	return Rect{
		MinX: math.Min(s.A.X, s.B.X),
		MinY: math.Min(s.A.Y, s.B.Y),
		MaxX: math.Max(s.A.X, s.B.X),
		MaxY: math.Max(s.A.Y, s.B.Y),
	}
}

// orient returns the sign of the cross product (b-a)×(c-a): positive for a
// counter-clockwise turn, negative for clockwise, zero for collinear.
func orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether collinear point c lies within the bounding box
// of segment ab.
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X) <= c.X && c.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= c.Y && c.Y <= math.Max(a.Y, b.Y)
}

// Intersects reports whether the two segments share at least one point.
func (s Segment) Intersects(t Segment) bool {
	d1 := orient(t.A, t.B, s.A)
	d2 := orient(t.A, t.B, s.B)
	d3 := orient(s.A, s.B, t.A)
	d4 := orient(s.A, s.B, t.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	if d1 == 0 && onSegment(t.A, t.B, s.A) {
		return true
	}
	if d2 == 0 && onSegment(t.A, t.B, s.B) {
		return true
	}
	if d3 == 0 && onSegment(s.A, s.B, t.A) {
		return true
	}
	if d4 == 0 && onSegment(s.A, s.B, t.B) {
		return true
	}
	return false
}

// DistToSegment returns the minimum distance between any point of s and
// any point of t; zero when the segments intersect.
func (s Segment) DistToSegment(t Segment) float64 {
	if s.Intersects(t) {
		return 0
	}
	d := s.DistToPoint(t.A)
	if v := s.DistToPoint(t.B); v < d {
		d = v
	}
	if v := t.DistToPoint(s.A); v < d {
		d = v
	}
	if v := t.DistToPoint(s.B); v < d {
		d = v
	}
	return d
}

// Rect is an axis-aligned rectangle, closed on all sides.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X),
		MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X),
		MaxY: math.Max(a.Y, b.Y),
	}
}

// IsValid reports whether the rectangle is non-degenerate (Min ≤ Max on
// both axes). A zero-area rectangle (a point) is valid.
func (r Rect) IsValid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Diagonal returns the length of the rectangle's diagonal. The paper uses
// the diagonal of the ε-buffered street MBR as the normalizer maxD(s).
func (r Rect) Diagonal() float64 {
	return math.Hypot(r.Width(), r.Height())
}

// Center returns the center point of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Expand returns the rectangle grown by d on every side. Negative d
// shrinks the rectangle and may make it invalid.
func (r Rect) Expand(d float64) Rect {
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX),
		MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX),
		MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// Intersects reports whether r and o share at least one point.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX &&
		r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// MinDistToPoint returns the minimum distance from p to any point of r;
// zero when p is inside r. This is mindist(r, c) in the paper's
// cell-to-photo spatial diversity bound (Eq. 15).
func (r Rect) MinDistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// MaxDistToPoint returns the maximum distance from p to any point of r,
// attained at one of the four corners. This is maxdist(r, c) in the
// paper's cell-to-photo spatial diversity bound (Eq. 16).
func (r Rect) MaxDistToPoint(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// Edges returns the four boundary segments of the rectangle.
func (r Rect) Edges() [4]Segment {
	bl := Point{r.MinX, r.MinY}
	br := Point{r.MaxX, r.MinY}
	tr := Point{r.MaxX, r.MaxY}
	tl := Point{r.MinX, r.MaxY}
	return [4]Segment{{bl, br}, {br, tr}, {tr, tl}, {tl, bl}}
}

// DistToSegment returns the minimum distance between any point of r and
// any point of s; zero when s intersects or lies inside r. It realizes
// dist(c, ℓ) for building the ε-augmented cell↔segment maps.
func (r Rect) DistToSegment(s Segment) float64 {
	if r.Contains(s.A) || r.Contains(s.B) {
		return 0
	}
	d := math.Inf(1)
	for _, e := range r.Edges() {
		if s.Intersects(e) {
			return 0
		}
		if v := s.DistToSegment(e); v < d {
			d = v
		}
	}
	return d
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6f,%.6f]x[%.6f,%.6f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
