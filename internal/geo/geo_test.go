package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"345 triangle", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); !almostEq(got, tc.want) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
			if got := tc.p.DistSq(tc.q); !almostEq(got, tc.want*tc.want) {
				t.Errorf("DistSq(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
			}
		})
	}
}

func TestPointDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		p := Point{float64(ax) / 64, float64(ay) / 64}
		q := Point{float64(bx) / 64, float64(by) / 64}
		return almostEq(p.Dist(q), q.Dist(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointDistTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Point{rng.NormFloat64(), rng.NormFloat64()}
		b := Point{rng.NormFloat64(), rng.NormFloat64()}
		c := Point{rng.NormFloat64(), rng.NormFloat64()}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated: a=%v b=%v c=%v", a, b, c)
		}
	}
}

func TestPointAdd(t *testing.T) {
	p := Point{1, 2}.Add(3, -4)
	if p != (Point{4, -2}) {
		t.Errorf("Add = %v, want (4,-2)", p)
	}
}

func TestSegmentLength(t *testing.T) {
	s := Segment{Point{0, 0}, Point{3, 4}}
	if got := s.Length(); !almostEq(got, 5) {
		t.Errorf("Length = %v, want 5", got)
	}
	deg := Segment{Point{7, 7}, Point{7, 7}}
	if got := deg.Length(); got != 0 {
		t.Errorf("degenerate Length = %v, want 0", got)
	}
}

func TestSegmentMidpoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 4}}
	if got := s.Midpoint(); got != (Point{1, 2}) {
		t.Errorf("Midpoint = %v, want (1,2)", got)
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	tests := []struct {
		name string
		p    Point
		want Point
	}{
		{"projects inside", Point{5, 3}, Point{5, 0}},
		{"clamps to A", Point{-2, 1}, Point{0, 0}},
		{"clamps to B", Point{12, -1}, Point{10, 0}},
		{"on the segment", Point{4, 0}, Point{4, 0}},
		{"at endpoint", Point{0, 0}, Point{0, 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := s.ClosestPoint(tc.p)
			if !almostEq(got.X, tc.want.X) || !almostEq(got.Y, tc.want.Y) {
				t.Errorf("ClosestPoint(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"above middle", Point{5, 3}, 3},
		{"beyond A", Point{-3, 4}, 5},
		{"beyond B", Point{13, -4}, 5},
		{"on segment", Point{7, 0}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.DistToPoint(tc.p); !almostEq(got, tc.want) {
				t.Errorf("DistToPoint(%v) = %v, want %v", tc.p, got, tc.want)
			}
			if got := s.DistToPointSq(tc.p); !almostEq(got, tc.want*tc.want) {
				t.Errorf("DistToPointSq(%v) = %v, want %v", tc.p, got, tc.want*tc.want)
			}
		})
	}
}

func TestSegmentDistToPointDegenerate(t *testing.T) {
	s := Segment{Point{2, 2}, Point{2, 2}}
	if got := s.DistToPoint(Point{5, 6}); !almostEq(got, 5) {
		t.Errorf("degenerate DistToPoint = %v, want 5", got)
	}
}

// Property: the point-to-segment distance is never larger than the
// distance to either endpoint, and never negative.
func TestSegmentDistToPointBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		s := Segment{
			Point{rng.NormFloat64(), rng.NormFloat64()},
			Point{rng.NormFloat64(), rng.NormFloat64()},
		}
		p := Point{rng.NormFloat64(), rng.NormFloat64()}
		d := s.DistToPoint(p)
		if d < 0 {
			t.Fatalf("negative distance %v", d)
		}
		if d > p.Dist(s.A)+1e-9 || d > p.Dist(s.B)+1e-9 {
			t.Fatalf("distance %v exceeds endpoint distances %v/%v", d, p.Dist(s.A), p.Dist(s.B))
		}
	}
}

// Property: the closest point always lies on the segment (within epsilon),
// verified by checking that |A-c| + |c-B| ≈ |A-B|.
func TestSegmentClosestPointOnSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		s := Segment{
			Point{rng.NormFloat64(), rng.NormFloat64()},
			Point{rng.NormFloat64(), rng.NormFloat64()},
		}
		p := Point{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		c := s.ClosestPoint(p)
		if sum := s.A.Dist(c) + c.Dist(s.B); !almostEq(sum, s.Length()) {
			t.Fatalf("closest point %v off segment %v..%v (sum %v, len %v)",
				c, s.A, s.B, sum, s.Length())
		}
	}
}

func TestSegmentIntersects(t *testing.T) {
	tests := []struct {
		name string
		s, u Segment
		want bool
	}{
		{"crossing X", Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{0, 2}, Point{2, 0}}, true},
		{"parallel apart", Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{0, 1}, Point{2, 1}}, false},
		{"touching at endpoint", Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{1, 1}, Point{2, 0}}, true},
		{"collinear overlapping", Segment{Point{0, 0}, Point{3, 0}}, Segment{Point{2, 0}, Point{5, 0}}, true},
		{"collinear disjoint", Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{2, 0}, Point{3, 0}}, false},
		{"T junction", Segment{Point{0, 0}, Point{4, 0}}, Segment{Point{2, -1}, Point{2, 0}}, true},
		{"near miss", Segment{Point{0, 0}, Point{4, 0}}, Segment{Point{2, 0.001}, Point{2, 1}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Intersects(tc.u); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			if got := tc.u.Intersects(tc.s); got != tc.want {
				t.Errorf("Intersects (swapped) = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSegmentDistToSegment(t *testing.T) {
	tests := []struct {
		name string
		s, u Segment
		want float64
	}{
		{"intersecting", Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{0, 2}, Point{2, 0}}, 0},
		{"parallel", Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{0, 3}, Point{2, 3}}, 3},
		{"endpoint to interior", Segment{Point{0, 0}, Point{10, 0}}, Segment{Point{5, 2}, Point{5, 9}}, 2},
		{"corner to corner", Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{4, 4}, Point{9, 9}}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.DistToSegment(tc.u); !almostEq(got, tc.want) {
				t.Errorf("DistToSegment = %v, want %v", got, tc.want)
			}
			if got := tc.u.DistToSegment(tc.s); !almostEq(got, tc.want) {
				t.Errorf("DistToSegment (swapped) = %v, want %v", got, tc.want)
			}
		})
	}
}

// Property: segment-segment distance agrees with a dense point sampling.
func TestSegmentDistToSegmentSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		s := Segment{
			Point{rng.Float64() * 10, rng.Float64() * 10},
			Point{rng.Float64() * 10, rng.Float64() * 10},
		}
		u := Segment{
			Point{rng.Float64() * 10, rng.Float64() * 10},
			Point{rng.Float64() * 10, rng.Float64() * 10},
		}
		got := s.DistToSegment(u)
		// Sample points along u and take the min distance to s.
		best := math.Inf(1)
		const n = 200
		for j := 0; j <= n; j++ {
			tfrac := float64(j) / n
			p := Point{u.A.X + tfrac*(u.B.X-u.A.X), u.A.Y + tfrac*(u.B.Y-u.A.Y)}
			if d := s.DistToPoint(p); d < best {
				best = d
			}
		}
		// The true distance is ≤ every sampled distance, and sampling
		// can only overshoot by the sampling step.
		if got > best+1e-9 {
			t.Fatalf("DistToSegment=%v exceeds sampled min %v for s=%v u=%v", got, best, s, u)
		}
		if best-got > u.Length()/n+1e-9 {
			t.Fatalf("DistToSegment=%v far below sampled min %v for s=%v u=%v", got, best, s, u)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{3, 1}, Point{0, 5})
	if r != (Rect{0, 1, 3, 5}) {
		t.Fatalf("NewRect = %v", r)
	}
	if !r.IsValid() {
		t.Error("expected valid rect")
	}
	if got := r.Width(); !almostEq(got, 3) {
		t.Errorf("Width = %v", got)
	}
	if got := r.Height(); !almostEq(got, 4) {
		t.Errorf("Height = %v", got)
	}
	if got := r.Diagonal(); !almostEq(got, 5) {
		t.Errorf("Diagonal = %v", got)
	}
	if got := r.Center(); got != (Point{1.5, 3}) {
		t.Errorf("Center = %v", got)
	}
	if bad := (Rect{2, 0, 1, 1}); bad.IsValid() {
		t.Error("expected invalid rect")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	for _, p := range []Point{{0, 0}, {2, 2}, {1, 1}, {0, 2}} {
		if !r.Contains(p) {
			t.Errorf("expected %v inside %v", p, r)
		}
	}
	for _, p := range []Point{{-0.001, 0}, {2.001, 1}, {1, 3}} {
		if r.Contains(p) {
			t.Errorf("expected %v outside %v", p, r)
		}
	}
}

func TestRectExpandUnionIntersects(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	e := r.Expand(0.5)
	if e != (Rect{-0.5, -0.5, 1.5, 1.5}) {
		t.Errorf("Expand = %v", e)
	}
	u := r.Union(Rect{2, 2, 3, 3})
	if u != (Rect{0, 0, 3, 3}) {
		t.Errorf("Union = %v", u)
	}
	if !r.Intersects(Rect{1, 1, 2, 2}) {
		t.Error("touching rects should intersect")
	}
	if r.Intersects(Rect{1.1, 1.1, 2, 2}) {
		t.Error("separated rects should not intersect")
	}
}

func TestRectMinMaxDistToPoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	tests := []struct {
		name     string
		p        Point
		min, max float64
	}{
		{"inside", Point{1, 1}, 0, math.Sqrt2},
		{"right of", Point{5, 1}, 3, math.Hypot(5, 1)},
		{"diag corner", Point{5, 6}, 5, math.Hypot(5, 6)},
		{"on boundary", Point{2, 1}, 0, math.Hypot(2, 1)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.MinDistToPoint(tc.p); !almostEq(got, tc.min) {
				t.Errorf("MinDist = %v, want %v", got, tc.min)
			}
			if got := r.MaxDistToPoint(tc.p); !almostEq(got, tc.max) {
				t.Errorf("MaxDist = %v, want %v", got, tc.max)
			}
		})
	}
}

// Property: for any point q inside rect r and probe p,
// MinDist(p) ≤ dist(p,q) ≤ MaxDist(p).
func TestRectDistSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		r := NewRect(
			Point{rng.NormFloat64(), rng.NormFloat64()},
			Point{rng.NormFloat64(), rng.NormFloat64()},
		)
		q := Point{
			r.MinX + rng.Float64()*r.Width(),
			r.MinY + rng.Float64()*r.Height(),
		}
		p := Point{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		d := p.Dist(q)
		if lo := r.MinDistToPoint(p); d < lo-1e-9 {
			t.Fatalf("MinDist %v > actual %v (r=%v p=%v q=%v)", lo, d, r, p, q)
		}
		if hi := r.MaxDistToPoint(p); d > hi+1e-9 {
			t.Fatalf("MaxDist %v < actual %v (r=%v p=%v q=%v)", hi, d, r, p, q)
		}
	}
}

func TestRectDistToSegment(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	tests := []struct {
		name string
		s    Segment
		want float64
	}{
		{"inside", Segment{Point{0.5, 0.5}, Point{1.5, 1.5}}, 0},
		{"crossing", Segment{Point{-1, 1}, Point{3, 1}}, 0},
		{"touching boundary", Segment{Point{2, 1}, Point{4, 1}}, 0},
		{"right of", Segment{Point{3, 0}, Point{3, 2}}, 1},
		{"diagonal away", Segment{Point{5, 6}, Point{9, 9}}, 5},
		{"one endpoint inside", Segment{Point{1, 1}, Point{5, 5}}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.DistToSegment(tc.s); !almostEq(got, tc.want) {
				t.Errorf("DistToSegment = %v, want %v", got, tc.want)
			}
		})
	}
}

// Property: rect-to-segment distance lower-bounds point-to-segment
// distance for every point inside the rect (the coverage property the
// ε-augmented cell↔segment maps depend on).
func TestRectDistToSegmentCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		r := NewRect(
			Point{rng.Float64() * 10, rng.Float64() * 10},
			Point{rng.Float64() * 10, rng.Float64() * 10},
		)
		s := Segment{
			Point{rng.Float64() * 10, rng.Float64() * 10},
			Point{rng.Float64() * 10, rng.Float64() * 10},
		}
		lo := r.DistToSegment(s)
		for j := 0; j < 20; j++ {
			q := Point{
				r.MinX + rng.Float64()*r.Width(),
				r.MinY + rng.Float64()*r.Height(),
			}
			if d := s.DistToPoint(q); d < lo-1e-9 {
				t.Fatalf("point %v in rect %v at dist %v < rect dist %v (s=%v)", q, r, d, lo, s)
			}
		}
	}
}

func TestRectEdges(t *testing.T) {
	r := Rect{0, 0, 1, 2}
	var perim float64
	for _, e := range r.Edges() {
		perim += e.Length()
	}
	if !almostEq(perim, 6) {
		t.Errorf("perimeter = %v, want 6", perim)
	}
}

func TestSegmentBounds(t *testing.T) {
	s := Segment{Point{3, -1}, Point{-2, 4}}
	if got := s.Bounds(); got != (Rect{-2, -1, 3, 4}) {
		t.Errorf("Bounds = %v", got)
	}
}

func TestStringers(t *testing.T) {
	if s := (Point{1, 2}).String(); s == "" {
		t.Error("empty Point string")
	}
	if s := (Rect{0, 0, 1, 1}).String(); s == "" {
		t.Error("empty Rect string")
	}
}
