package traj

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/network"
)

// lattice builds an n×n unit lattice: horizontal streets "h" and
// vertical streets "v", all intersecting at shared vertices.
func lattice(t *testing.T, n int) *network.Network {
	t.Helper()
	b := network.NewBuilder()
	for i := 0; i < n; i++ {
		pts := make([]geo.Point, n)
		for j := 0; j < n; j++ {
			pts[j] = geo.Pt(float64(j), float64(i))
		}
		b.AddStreet("h", pts)
	}
	for j := 0; j < n; j++ {
		pts := make([]geo.Point, n)
		for i := 0; i < n; i++ {
			pts[i] = geo.Pt(float64(j), float64(i))
		}
		b.AddStreet("v", pts)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// vertexAt finds the vertex with exact coordinates.
func vertexAt(t *testing.T, net *network.Network, x, y float64) network.VertexID {
	t.Helper()
	for v := 0; v < net.NumVertices(); v++ {
		if net.Vertex(network.VertexID(v)) == geo.Pt(x, y) {
			return network.VertexID(v)
		}
	}
	t.Fatalf("no vertex at (%v,%v)", x, y)
	return 0
}

// hashInterest is a deterministic synthetic interest function.
func hashInterest(sid network.SegmentID) float64 {
	return float64((uint64(sid)*2654435761)%1000) / 997
}

func TestGraphCanonicalAdjacency(t *testing.T) {
	net := lattice(t, 4)
	g := NewGraph(net, 0)
	degreeSum := 0
	for v := 0; v < g.NumVertices(); v++ {
		es := g.Adjacent(network.VertexID(v))
		degreeSum += len(es)
		for i := 1; i < len(es); i++ {
			a, b := es[i-1], es[i]
			if a.To > b.To || (a.To == b.To && a.Seg >= b.Seg) {
				t.Fatalf("vertex %d adjacency not canonical: %+v before %+v", v, a, b)
			}
		}
		// Every edge has a mirror at its target.
		for _, e := range es {
			found := false
			for _, back := range g.Adjacent(e.To) {
				if back.To == network.VertexID(v) && back.Seg == e.Seg {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d seg %d has no mirror", v, e.To, e.Seg)
			}
		}
	}
	if degreeSum != 2*net.NumSegments() {
		t.Fatalf("degree sum %d, want %d (every segment twice)", degreeSum, 2*net.NumSegments())
	}
}

func TestGraphConnectors(t *testing.T) {
	// Two streets whose endpoints nearly touch but share no vertex.
	b := network.NewBuilder()
	b.AddStreet("a", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	b.AddStreet("b", []geo.Point{geo.Pt(1.05, 0), geo.Pt(2, 0)})
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	plain := NewGraph(net, 0)
	if d := plain.Distances(0); !math.IsInf(d[2], 1) {
		t.Fatalf("disconnected streets reachable without connectors: %v", d)
	}
	g := NewGraph(net, 0.1)
	d := g.Distances(0)
	if math.IsInf(d[3], 1) {
		t.Fatal("connector did not join the near-miss endpoints")
	}
	// Connector edges carry no segment id.
	sawConnector := false
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Adjacent(network.VertexID(v)) {
			if e.Seg == ConnectorSeg {
				sawConnector = true
				if e.Len <= 0 || e.Len > 0.1 {
					t.Fatalf("connector length %v out of (0, snap]", e.Len)
				}
			}
		}
	}
	if !sawConnector {
		t.Fatal("no connector edges built")
	}
}

func TestNearestVertexTieBreak(t *testing.T) {
	b := network.NewBuilder()
	b.AddStreet("s", []geo.Point{geo.Pt(0, 0), geo.Pt(2, 0)})
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// (1, 5) is exactly equidistant from both endpoints: lowest id wins.
	v, ok := NearestVertex(net, geo.Pt(1, 5))
	if !ok || v != 0 {
		t.Fatalf("NearestVertex tie = %d/%v, want vertex 0", v, ok)
	}
}

func TestDistancesLine(t *testing.T) {
	b := network.NewBuilder()
	b.AddStreet("line", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0)})
	b.AddStreet("island", []geo.Point{geo.Pt(50, 50), geo.Pt(51, 50)})
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(net, 0)
	d := g.Distances(0)
	if d[0] != 0 || d[1] != 1 || d[2] != 2 {
		t.Fatalf("line distances = %v", d[:3])
	}
	if !math.IsInf(d[3], 1) || !math.IsInf(d[4], 1) {
		t.Fatalf("island distances = %v, want +Inf", d[3:])
	}
}

func TestRouteQueryValidation(t *testing.T) {
	g := NewGraph(lattice(t, 3), 0)
	ctx := context.Background()
	bad := []RouteQuery{
		{Src: 0, Dst: 1, K: 0, Budget: 5},
		{Src: 0, Dst: 1, K: 1, Budget: 0},
		{Src: 0, Dst: 1, K: 1, Budget: 5, Alpha: -1},
		{Src: 0, Dst: 9999, K: 1, Budget: 5},
		{Src: 0, Dst: 1, K: 1, Budget: math.NaN()},
		{Src: 0, Dst: 1, K: 1, Budget: math.Inf(1)},
		{Src: 0, Dst: 1, K: 1, Budget: 5, Alpha: math.NaN()},
		{Src: 0, Dst: 1, K: 1, Budget: 5, Alpha: math.Inf(1)},
	}
	for i, q := range bad {
		if _, _, err := TopKRoutes(ctx, g, hashInterest, q, SearchOptions{}); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, q)
		}
	}
}

func TestTopKRoutesTrivialAndUnreachable(t *testing.T) {
	b := network.NewBuilder()
	b.AddStreet("a", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	b.AddStreet("island", []geo.Point{geo.Pt(50, 50), geo.Pt(51, 50)})
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(net, 0)
	ctx := context.Background()

	// src == dst: exactly the empty walk.
	rs, _, err := TopKRoutes(ctx, g, hashInterest, RouteQuery{Src: 0, Dst: 0, K: 3, Budget: 10}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Length != 0 || len(rs[0].Segments) != 0 || rs[0].Score != 0 {
		t.Fatalf("self route = %+v", rs)
	}

	// Disconnected endpoints: empty non-nil answer, no error.
	rs, _, err = TopKRoutes(ctx, g, hashInterest, RouteQuery{Src: 0, Dst: 2, K: 3, Budget: 1000}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs == nil || len(rs) != 0 {
		t.Fatalf("unreachable answer = %#v, want empty non-nil", rs)
	}
}

// Property: every returned route is a vertex-simple src→dst walk over
// real adjacency edges, within budget, with interest and length exactly
// re-derivable by traversal-order accumulation, in canonical order.
func TestTopKRoutesInvariants(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(4200 + int64(trial)))
		net := lattice(t, 3+rng.Intn(2))
		g := NewGraph(net, 0)
		interests := make([]float64, net.NumSegments())
		for i := range interests {
			interests[i] = rng.Float64() * 3
		}
		interest := func(sid network.SegmentID) float64 { return interests[sid] }
		src := network.VertexID(rng.Intn(g.NumVertices()))
		dst := network.VertexID(rng.Intn(g.NumVertices()))
		q := RouteQuery{
			Src: src, Dst: dst,
			K:      1 + rng.Intn(4),
			Budget: 2 + rng.Float64()*4,
			Alpha:  []float64{0, 0.5}[rng.Intn(2)],
		}
		rs, st, err := TopKRoutes(context.Background(), g, interest, q, SearchOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(rs) > q.K {
			t.Fatalf("trial %d: %d routes for k=%d", trial, len(rs), q.K)
		}
		if st.Completed < len(rs) {
			t.Fatalf("trial %d: stats completed %d < %d returned", trial, st.Completed, len(rs))
		}
		for ri, r := range rs {
			if r.Vertices[0] != src || r.Vertices[len(r.Vertices)-1] != dst {
				t.Fatalf("trial %d route %d: endpoints %v", trial, ri, r.Vertices)
			}
			seen := map[network.VertexID]bool{}
			for _, v := range r.Vertices {
				if seen[v] {
					t.Fatalf("trial %d route %d: vertex %d repeats", trial, ri, v)
				}
				seen[v] = true
			}
			if r.Length > q.Budget {
				t.Fatalf("trial %d route %d: length %v over budget %v", trial, ri, r.Length, q.Budget)
			}
			// Re-walk the route edge by edge in traversal order; the
			// accumulated floats must be bit-identical.
			var length, isum float64
			segIdx := 0
			for i := 0; i+1 < len(r.Vertices); i++ {
				u, v := r.Vertices[i], r.Vertices[i+1]
				var found *Edge
				for _, e := range g.Adjacent(u) {
					if e.To != v {
						continue
					}
					// Prefer the segment the route names at this hop.
					if segIdx < len(r.Segments) && e.Seg == int32(r.Segments[segIdx]) {
						ec := e
						found = &ec
						break
					}
					if e.Seg == ConnectorSeg && found == nil {
						ec := e
						found = &ec
					}
				}
				if found == nil {
					t.Fatalf("trial %d route %d: no edge %d->%d", trial, ri, u, v)
				}
				length += found.Len
				if found.Seg != ConnectorSeg {
					isum += interests[found.Seg]
					segIdx++
				}
			}
			if segIdx != len(r.Segments) {
				t.Fatalf("trial %d route %d: walked %d segments, route lists %d", trial, ri, segIdx, len(r.Segments))
			}
			if math.Float64bits(length) != math.Float64bits(r.Length) {
				t.Fatalf("trial %d route %d: length %v != re-walk %v", trial, ri, r.Length, length)
			}
			if math.Float64bits(isum) != math.Float64bits(r.Interest) {
				t.Fatalf("trial %d route %d: interest %v != re-walk %v", trial, ri, r.Interest, isum)
			}
			wantScore := r.Interest - q.Alpha*r.Length
			if math.Float64bits(wantScore) != math.Float64bits(r.Score) {
				t.Fatalf("trial %d route %d: score %v != %v", trial, ri, r.Score, wantScore)
			}
		}
		// Canonical order.
		for i := 1; i < len(rs); i++ {
			a, b := rs[i-1], rs[i]
			if b.Score > a.Score || (b.Score == a.Score && b.Length < a.Length) {
				t.Fatalf("trial %d: routes out of canonical order at %d", trial, i)
			}
		}
	}
}

func TestTopKRoutesExpansionGuard(t *testing.T) {
	net := lattice(t, 4)
	g := NewGraph(net, 0)
	src := vertexAt(t, net, 0, 0)
	dst := vertexAt(t, net, 3, 3)
	_, _, err := TopKRoutes(context.Background(), g, hashInterest,
		RouteQuery{Src: src, Dst: dst, K: 3, Budget: 12}, SearchOptions{MaxExpansions: 2})
	if !errors.Is(err, ErrSearchBudget) {
		t.Fatalf("err = %v, want ErrSearchBudget", err)
	}
}

func TestTopKRoutesContextCancel(t *testing.T) {
	net := lattice(t, 5)
	g := NewGraph(net, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := TopKRoutes(ctx, g, hashInterest,
		RouteQuery{Src: 0, Dst: network.VertexID(g.NumVertices() - 1), K: 2, Budget: 20}, SearchOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Property: grid matching equals a brute-force full ascending scan with
// a strict-improvement rule, including the in/out-of-radius decision.
func TestMatcherMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(5100 + int64(trial)))
		net := lattice(t, 3+rng.Intn(3))
		radius := 0.05 + rng.Float64()*0.5
		m := NewMatcher(net, radius)
		for i := 0; i < 300; i++ {
			p := geo.Pt(rng.Float64()*6-1, rng.Float64()*6-1)
			gotSid, gotOK := m.Match(p)

			best, bestD2 := network.SegmentID(0), math.Inf(1)
			for sid := 0; sid < net.NumSegments(); sid++ {
				if d2 := net.Segment(network.SegmentID(sid)).Geom.DistToPointSq(p); d2 < bestD2 {
					best, bestD2 = network.SegmentID(sid), d2
				}
			}
			wantOK := bestD2 <= radius*radius
			if gotOK != wantOK || (wantOK && gotSid != best) {
				t.Fatalf("trial %d point %v: match = (%d,%v), brute = (%d,%v)",
					trial, p, gotSid, gotOK, best, wantOK)
			}
		}
	}
}

// Regression: an adversarially tiny snap radius must not blow up grid
// construction (the cell size is floored at extent/maxMatchCellsPerDim),
// and matching must stay exact — on-segment points snap, anything
// farther than the radius does not.
func TestMatcherTinyRadiusBounded(t *testing.T) {
	net := lattice(t, 4) // extent 3×3
	m := NewMatcher(net, 1e-12)
	if got, ok := m.Match(geo.Pt(0.5, 0)); !ok || net.Segment(got).Geom.DistToPointSq(geo.Pt(0.5, 0)) != 0 {
		t.Fatalf("on-segment point match = (%d,%v), want exact-distance hit", got, ok)
	}
	if _, ok := m.Match(geo.Pt(0.5, 1e-6)); ok {
		t.Fatal("point 1e-6 away matched at radius 1e-12")
	}
	// Extreme and non-finite query points must neither panic nor match.
	for _, p := range []geo.Point{geo.Pt(1e300, -1e300), geo.Pt(math.NaN(), 0), geo.Pt(math.Inf(1), math.Inf(-1))} {
		if _, ok := m.Match(p); ok {
			t.Fatalf("far point %v matched at radius 1e-12", p)
		}
	}
}

// A matcher built with a NaN radius matches nothing instead of
// corrupting its grid arithmetic.
func TestMatcherNaNRadius(t *testing.T) {
	net := lattice(t, 3)
	m := NewMatcher(net, math.NaN())
	if _, ok := m.Match(geo.Pt(0.5, 0)); ok {
		t.Fatal("NaN-radius matcher matched a point")
	}
}

// Regression: with α = 0 the old bound (posTotal − α·length) never fell
// below the completion threshold, so the search degenerated to
// exhaustive enumeration of every budget-feasible simple path. The
// tightened bound — collected + budget-reachable uncollected positive
// interest − α·(length + distToDst) — must actually prune there.
func TestTopKRoutesBoundPrunesAtAlphaZero(t *testing.T) {
	net := lattice(t, 5)
	g := NewGraph(net, 0)
	src := vertexAt(t, net, 0, 0)
	dst := vertexAt(t, net, 4, 4)
	rs, st, err := TopKRoutes(context.Background(), g, hashInterest,
		RouteQuery{Src: src, Dst: dst, K: 2, Budget: 12, Alpha: 0}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("routes = %d, want 2", len(rs))
	}
	if st.PrunedBound == 0 {
		t.Fatalf("no bound prunes at alpha=0: %+v", st)
	}
}

func TestTrajQueryValidation(t *testing.T) {
	net := lattice(t, 3)
	m := NewMatcher(net, 0.2)
	ctx := context.Background()
	tr := [][]geo.Point{{geo.Pt(0, 0)}}
	bad := []TrajQuery{
		{Traces: tr, K: 0, Radius: 0.2},
		{Traces: tr, K: 1, Radius: 0},
		{Traces: nil, K: 1, Radius: 0.2},
		{Traces: tr, K: 1, Radius: math.NaN()},
		{Traces: tr, K: 1, Radius: math.Inf(1)},
	}
	for i, q := range bad {
		if _, _, err := TrajectorySOI(ctx, m, hashInterest, q); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	// Radius mismatch between query and matcher is rejected loudly.
	if _, _, err := TrajectorySOI(ctx, m, hashInterest, TrajQuery{Traces: tr, K: 1, Radius: 0.3}); err == nil {
		t.Fatal("expected radius-mismatch error")
	}
}

func TestTrajectorySOISmall(t *testing.T) {
	// One horizontal and one vertical street; a trace along the
	// horizontal one covers only its segments.
	b := network.NewBuilder()
	b.AddStreet("main", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0)})
	b.AddStreet("cross", []geo.Point{geo.Pt(1, -1), geo.Pt(1, 1)})
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(net, 0.1)
	one := func(network.SegmentID) float64 { return 1 }
	trace := []geo.Point{geo.Pt(0.5, 0.01), geo.Pt(1.5, -0.01)}
	res, st, err := TrajectorySOI(context.Background(), m, one, TrajQuery{
		Traces: [][]geo.Point{trace}, K: 5, Radius: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TracePoints != 2 || st.Matched != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if len(res) != 1 || res[0].Name != "main" {
		t.Fatalf("results = %+v, want only main", res)
	}
	if res[0].Coverage <= 0 || res[0].Coverage > 1 {
		t.Fatalf("coverage = %v", res[0].Coverage)
	}
	// Both segments of main are covered (one point each): coverage 1.
	if math.Abs(res[0].Coverage-1) > 1e-12 {
		t.Fatalf("coverage = %v, want 1 (both segments touched)", res[0].Coverage)
	}
	if res[0].Score != res[0].Coverage*res[0].Interest {
		t.Fatalf("score = %v", res[0].Score)
	}
}

func TestCorridorRankingDropsZeroScores(t *testing.T) {
	net := lattice(t, 3)
	covered := make([]bool, net.NumSegments())
	covered[0] = true
	zero := func(network.SegmentID) float64 { return 0 }
	if out := CorridorRanking(net, covered, zero, 5, nil); len(out) != 0 {
		t.Fatalf("zero-interest corridor ranked: %+v", out)
	}
}
