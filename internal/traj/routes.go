package traj

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/network"
)

// RouteQuery asks for the k most interesting loopless routes between two
// network vertices under a walking-length budget. The score of a route
// blends accumulated segment interest with travel cost:
//
//	score = Σ interest(ℓ) over traversed segments − α · length
//
// α = 0 ranks purely by collected interest; larger α penalizes detours.
type RouteQuery struct {
	Src, Dst network.VertexID
	// K is the number of routes to return.
	K int
	// Budget caps the route's total walking length (segments plus
	// connectors), in coordinate units.
	Budget float64
	// Alpha is the travel-cost weight α (per unit length).
	Alpha float64
}

// Validate reports whether the query is well formed for the graph.
func (q RouteQuery) Validate(g *Graph) error {
	if q.K <= 0 {
		return fmt.Errorf("traj: non-positive k %d", q.K)
	}
	if q.Budget <= 0 {
		return fmt.Errorf("traj: non-positive budget %v", q.Budget)
	}
	if q.Alpha < 0 {
		return fmt.Errorf("traj: negative alpha %v", q.Alpha)
	}
	if int(q.Src) >= g.NumVertices() || int(q.Dst) >= g.NumVertices() {
		return fmt.Errorf("traj: vertex out of range (src=%d dst=%d of %d)", q.Src, q.Dst, g.NumVertices())
	}
	return nil
}

// Route is one ranked answer of a k-routes query: a vertex-simple path
// from source to destination.
type Route struct {
	// Vertices is the walked vertex sequence, source first.
	Vertices []network.VertexID
	// Segments are the traversed street segments in walk order
	// (connector hops contribute length but no segment).
	Segments []network.SegmentID
	// Length is the total walked length including connectors.
	Length float64
	// Interest is the summed segment interest collected along the path,
	// accumulated in traversal order.
	Interest float64
	// Score is Interest − α·Length, the ranking key.
	Score float64
}

// SearchStats reports the work one route search performed.
type SearchStats struct {
	// Expansions counts partial paths popped from the frontier.
	Expansions int
	// Generated counts partial paths pushed onto the frontier.
	Generated int
	// PrunedBudget counts extensions discarded because no completion
	// within the length budget is possible (exact overrun, or the
	// Dijkstra remaining-distance bound).
	PrunedBudget int
	// PrunedBound counts partials discarded because their admissible
	// score upper bound fell below the current kth-best completion.
	PrunedBound int
	// Completed counts source→destination paths found within budget.
	Completed int
}

// SearchOptions tunes the search's resource guards.
type SearchOptions struct {
	// MaxExpansions bounds frontier pops before the search gives up with
	// ErrSearchBudget; 0 means DefaultMaxExpansions.
	MaxExpansions int
}

// DefaultMaxExpansions is the expansion guard used when SearchOptions
// leaves it zero — far above any harness world, low enough to bound a
// pathological serving query.
const DefaultMaxExpansions = 500_000

// ErrSearchBudget is returned when the search exceeds its expansion
// guard before the frontier drains.
var ErrSearchBudget = errors.New("traj: route search exceeded its expansion budget")

// ctxPollInterval is how many frontier pops pass between context polls.
const ctxPollInterval = 64

// boundSlack is the relative slack the bound-pruning test concedes to
// floating point: a partial is pruned only when its upper bound is below
// the kth-best score by more than this relative margin, so last-bit
// rounding in the (admissible) bound can never eliminate a true top-k
// path. Pruning therefore only removes strict losers, and the final
// canonical sort makes the answer independent of pruning decisions.
const boundSlack = 1e-9

// partial is one frontier entry: a vertex-simple path from the source.
type partial struct {
	verts    []network.VertexID
	segs     []network.SegmentID
	length   float64
	interest float64
	// ub is the admissible score upper bound: every positive interest
	// not yet collected, minus the travel cost already paid.
	ub float64
}

// frontier orders partials best-first: upper bound descending, then
// length ascending, then lexicographic vertex sequence — a total,
// deterministic order.
type frontier []*partial

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	a, b := f[i], f[j]
	if a.ub != b.ub {
		return a.ub > b.ub
	}
	if a.length != b.length {
		return a.length < b.length
	}
	return lessVertSeq(a.verts, b.verts)
}
func (f frontier) Swap(i, j int)       { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x interface{}) { *f = append(*f, x.(*partial)) }
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	p := old[n-1]
	*f = old[:n-1]
	return p
}

func lessVertSeq(a, b []network.VertexID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func lessSegSeq(a, b []network.SegmentID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// SortRoutes puts routes in the canonical answer order: score
// descending, then length ascending, then lexicographic vertex sequence,
// then lexicographic segment sequence (parallel edges). Both the pruned
// search and the brute-force oracle finish with this sort, so their
// answers are comparable rank by rank.
func SortRoutes(rs []Route) {
	sortRoutesBy(rs, func(a, b Route) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Length != b.Length {
			return a.Length < b.Length
		}
		if v := lessVertSeq(a.Vertices, b.Vertices); v || lessVertSeq(b.Vertices, a.Vertices) {
			return v
		}
		return lessSegSeq(a.Segments, b.Segments)
	})
}

func sortRoutesBy(rs []Route, less func(a, b Route) bool) {
	// Insertion sort: route lists are small (k plus survivors) and the
	// comparator is total, so stability concerns do not arise.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// TopKRoutes runs the best-first k most interesting routes search. The
// frontier holds vertex-simple partial paths ordered by an admissible
// score upper bound; partials are pruned when they cannot reach the
// destination within the budget (Dijkstra remaining-distance bound) or
// when their upper bound falls below the kth-best completed score by
// more than a float-safety margin. Interest and length are accumulated
// strictly in traversal order, so a route's score is bit-identical to
// the brute-force oracle's for the same path, and the canonical final
// sort makes the ranking independent of exploration order.
//
// An unreachable source/destination pair yields an empty answer, not an
// error. The search observes ctx at a cooperative polling interval.
func TopKRoutes(ctx context.Context, g *Graph, interest InterestFunc, q RouteQuery, opt SearchOptions) ([]Route, SearchStats, error) {
	var st SearchStats
	if err := q.Validate(g); err != nil {
		return nil, st, err
	}
	maxExp := opt.MaxExpansions
	if maxExp <= 0 {
		maxExp = DefaultMaxExpansions
	}

	distToDst := g.Distances(q.Dst)
	if math.IsInf(distToDst[q.Src], 1) {
		return []Route{}, st, nil
	}

	// Exact per-segment interests, computed once; posTotal is the sum of
	// every positive interest — the "everything still collectible" part
	// of the admissible upper bound.
	interests := make([]float64, g.net.NumSegments())
	var posTotal float64
	for sid := range interests {
		interests[sid] = interest(network.SegmentID(sid))
		if interests[sid] > 0 {
			posTotal += interests[sid]
		}
	}

	budgetCap := q.Budget * (1 + boundSlack)
	var completions []Route
	// top holds the k best completion scores; threshold is its minimum
	// once full.
	var top scoreHeap
	threshold := math.Inf(-1)

	f := frontier{&partial{
		verts: []network.VertexID{q.Src},
		ub:    posTotal,
	}}
	heap.Init(&f)

	for f.Len() > 0 {
		if st.Expansions%ctxPollInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, st, err
			}
		}
		if err := faults.InjectCtx(ctx, "traj.search"); err != nil {
			return nil, st, err
		}
		if st.Expansions >= maxExp {
			return nil, st, fmt.Errorf("%w (%d expansions)", ErrSearchBudget, st.Expansions)
		}
		p := heap.Pop(&f).(*partial)
		st.Expansions++
		if belowThreshold(p.ub, threshold) {
			st.PrunedBound++
			continue
		}
		last := p.verts[len(p.verts)-1]
		if last == q.Dst {
			// A vertex-simple path cannot revisit the destination, so
			// this partial is exactly one completed route.
			score := p.interest - q.Alpha*p.length
			completions = append(completions, Route{
				Vertices: p.verts,
				Segments: p.segs,
				Length:   p.length,
				Interest: p.interest,
				Score:    score,
			})
			st.Completed++
			if top.Len() < q.K {
				heap.Push(&top, score)
			} else if score > top[0] {
				top[0] = score
				heap.Fix(&top, 0)
			}
			if top.Len() == q.K {
				threshold = top[0]
			}
			continue
		}
		for _, e := range g.adj[last] {
			if containsVert(p.verts, e.To) {
				continue // loopless: vertex-simple paths only
			}
			newLen := p.length + e.Len
			if newLen > q.Budget {
				st.PrunedBudget++
				continue // the exact budget rule, identical to the oracle
			}
			if newLen+distToDst[e.To] > budgetCap {
				st.PrunedBudget++
				continue // cannot reach dst within budget (slack-guarded)
			}
			newInterest := p.interest
			if e.Seg != ConnectorSeg {
				newInterest += interests[e.Seg]
			}
			ub := posTotal - q.Alpha*newLen
			if belowThreshold(ub, threshold) {
				st.PrunedBound++
				continue
			}
			child := &partial{
				verts:    append(append(make([]network.VertexID, 0, len(p.verts)+1), p.verts...), e.To),
				segs:     p.segs,
				length:   newLen,
				interest: newInterest,
				ub:       ub,
			}
			if e.Seg != ConnectorSeg {
				child.segs = append(append(make([]network.SegmentID, 0, len(p.segs)+1), p.segs...), network.SegmentID(e.Seg))
			}
			heap.Push(&f, child)
			st.Generated++
		}
	}

	SortRoutes(completions)
	if len(completions) > q.K {
		completions = completions[:q.K]
	}
	return completions, st, nil
}

// belowThreshold reports whether an admissible upper bound is so far
// under the kth-best score that the partial can be discarded even after
// conceding a relative float-rounding margin.
func belowThreshold(ub, threshold float64) bool {
	if math.IsInf(threshold, -1) {
		return false
	}
	slack := boundSlack * (math.Abs(ub) + math.Abs(threshold) + 1)
	return ub+slack < threshold
}

func containsVert(vs []network.VertexID, v network.VertexID) bool {
	for _, u := range vs {
		if u == v {
			return true
		}
	}
	return false
}

// scoreHeap is a min-heap of the best completion scores seen so far.
type scoreHeap []float64

func (h scoreHeap) Len() int            { return len(h) }
func (h scoreHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h scoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *scoreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
