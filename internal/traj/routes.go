package traj

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/network"
)

// RouteQuery asks for the k most interesting loopless routes between two
// network vertices under a walking-length budget. The score of a route
// blends accumulated segment interest with travel cost:
//
//	score = Σ interest(ℓ) over traversed segments − α · length
//
// α = 0 ranks purely by collected interest; larger α penalizes detours.
type RouteQuery struct {
	Src, Dst network.VertexID
	// K is the number of routes to return.
	K int
	// Budget caps the route's total walking length (segments plus
	// connectors), in coordinate units.
	Budget float64
	// Alpha is the travel-cost weight α (per unit length).
	Alpha float64
}

// Validate reports whether the query is well formed for the graph.
func (q RouteQuery) Validate(g *Graph) error {
	if q.K <= 0 {
		return fmt.Errorf("traj: non-positive k %d", q.K)
	}
	if math.IsNaN(q.Budget) || math.IsInf(q.Budget, 0) {
		return fmt.Errorf("traj: non-finite budget %v", q.Budget)
	}
	if q.Budget <= 0 {
		return fmt.Errorf("traj: non-positive budget %v", q.Budget)
	}
	if math.IsNaN(q.Alpha) || math.IsInf(q.Alpha, 0) {
		return fmt.Errorf("traj: non-finite alpha %v", q.Alpha)
	}
	if q.Alpha < 0 {
		return fmt.Errorf("traj: negative alpha %v", q.Alpha)
	}
	if int(q.Src) >= g.NumVertices() || int(q.Dst) >= g.NumVertices() {
		return fmt.Errorf("traj: vertex out of range (src=%d dst=%d of %d)", q.Src, q.Dst, g.NumVertices())
	}
	return nil
}

// Route is one ranked answer of a k-routes query: a vertex-simple path
// from source to destination.
type Route struct {
	// Vertices is the walked vertex sequence, source first.
	Vertices []network.VertexID
	// Segments are the traversed street segments in walk order
	// (connector hops contribute length but no segment).
	Segments []network.SegmentID
	// Length is the total walked length including connectors.
	Length float64
	// Interest is the summed segment interest collected along the path,
	// accumulated in traversal order.
	Interest float64
	// Score is Interest − α·Length, the ranking key.
	Score float64
}

// SearchStats reports the work one route search performed.
type SearchStats struct {
	// Expansions counts partial paths popped from the frontier.
	Expansions int
	// Generated counts partial paths pushed onto the frontier.
	Generated int
	// PrunedBudget counts extensions discarded because no completion
	// within the length budget is possible (exact overrun, or the
	// Dijkstra remaining-distance bound).
	PrunedBudget int
	// PrunedBound counts partials discarded because their admissible
	// score upper bound fell below the current kth-best completion.
	PrunedBound int
	// Completed counts source→destination paths found within budget.
	Completed int
}

// SearchOptions tunes the search's resource guards.
type SearchOptions struct {
	// MaxExpansions bounds frontier pops before the search gives up with
	// ErrSearchBudget; 0 means DefaultMaxExpansions.
	MaxExpansions int
}

// DefaultMaxExpansions is the expansion guard used when SearchOptions
// leaves it zero — far above any harness world, low enough to bound a
// pathological serving query.
const DefaultMaxExpansions = 500_000

// ErrSearchBudget is returned when the search exceeds its expansion
// guard before the frontier drains.
var ErrSearchBudget = errors.New("traj: route search exceeded its expansion budget")

// ctxPollInterval is how many frontier pops pass between context polls.
const ctxPollInterval = 64

// boundSlack is the relative slack the bound-pruning test concedes to
// floating point: a partial is pruned only when its upper bound is below
// the kth-best score by more than this relative margin, so last-bit
// rounding in the (admissible) bound can never eliminate a true top-k
// path. Pruning therefore only removes strict losers, and the final
// canonical sort makes the answer independent of pruning decisions.
const boundSlack = 1e-9

// partial is one frontier entry: a vertex-simple path from the source.
type partial struct {
	verts    []network.VertexID
	segs     []network.SegmentID
	length   float64
	interest float64
	// remPos is the positive interest not yet collected by this path,
	// over the budget-feasible segment set.
	remPos float64
	// ub is the admissible score upper bound: collected interest, plus
	// the uncollected positive interest still collectible within the
	// remaining budget, minus α times the best-case completed length.
	ub float64
}

// frontier orders partials best-first: upper bound descending, then
// length ascending, then lexicographic vertex sequence — a total,
// deterministic order.
type frontier []*partial

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	a, b := f[i], f[j]
	if a.ub != b.ub {
		return a.ub > b.ub
	}
	if a.length != b.length {
		return a.length < b.length
	}
	return lessVertSeq(a.verts, b.verts)
}
func (f frontier) Swap(i, j int)       { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x interface{}) { *f = append(*f, x.(*partial)) }
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	p := old[n-1]
	*f = old[:n-1]
	return p
}

func lessVertSeq(a, b []network.VertexID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func lessSegSeq(a, b []network.SegmentID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// SortRoutes puts routes in the canonical answer order: score
// descending, then length ascending, then lexicographic vertex sequence,
// then lexicographic segment sequence (parallel edges). Both the pruned
// search and the brute-force oracle finish with this sort, so their
// answers are comparable rank by rank.
func SortRoutes(rs []Route) {
	sortRoutesBy(rs, func(a, b Route) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Length != b.Length {
			return a.Length < b.Length
		}
		if v := lessVertSeq(a.Vertices, b.Vertices); v || lessVertSeq(b.Vertices, a.Vertices) {
			return v
		}
		return lessSegSeq(a.Segments, b.Segments)
	})
}

func sortRoutesBy(rs []Route, less func(a, b Route) bool) {
	// Insertion sort: route lists are small (k plus survivors) and the
	// comparator is total, so stability concerns do not arise.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// TopKRoutes runs the best-first k most interesting routes search. The
// frontier holds vertex-simple partial paths ordered by an admissible
// score upper bound — collected interest, plus the uncollected positive
// interest still collectible within the remaining budget, minus α times
// the best-case completed length (newLen + distToDst) — so the bound
// keeps tightening, and therefore pruning, even at α = 0. Partials are
// pruned when they cannot reach the destination within the budget
// (Dijkstra remaining-distance bound) or when their upper bound falls
// below the kth-best completed score by more than a float-safety
// margin. Per-segment interests are only evaluated for segments some
// budget-feasible path can traverse. Interest and length are accumulated
// strictly in traversal order, so a route's score is bit-identical to
// the brute-force oracle's for the same path, and the canonical final
// sort makes the ranking independent of exploration order.
//
// An unreachable source/destination pair yields an empty answer, not an
// error. The search observes ctx at a cooperative polling interval.
func TopKRoutes(ctx context.Context, g *Graph, interest InterestFunc, q RouteQuery, opt SearchOptions) ([]Route, SearchStats, error) {
	var st SearchStats
	if err := q.Validate(g); err != nil {
		return nil, st, err
	}
	maxExp := opt.MaxExpansions
	if maxExp <= 0 {
		maxExp = DefaultMaxExpansions
	}

	distToDst := g.Distances(q.Dst)
	if math.IsInf(distToDst[q.Src], 1) {
		return []Route{}, st, nil
	}
	distFromSrc := g.Distances(q.Src)

	budgetCap := q.Budget * (1 + boundSlack)

	// Exact per-segment interests, computed once — but only for segments
	// some budget-feasible path can traverse (a directed edge u→v with
	// distFromSrc[u] + len + distToDst[v] within the slack-extended
	// budget). Every other segment is unreachable by the search, so its
	// interest fold is never needed and contributes nothing to any bound.
	interests := make([]float64, g.net.NumSegments())
	evaluated := make([]bool, g.net.NumSegments())
	// needs/prefixPos support the per-partial collectible bound: a
	// completion suffix that traverses segment s and then reaches the
	// destination is at least need(s) = len(s) + min(distToDst over s's
	// endpoints) long, so a partial with remaining budget r can only
	// still collect segments with need ≤ r. Sorting feasible positive
	// interests by need with a prefix sum turns "positive interest still
	// collectible within r" into one binary search.
	type needEntry struct{ need, pos float64 }
	var entries []needEntry
	for u := range g.adj {
		du := distFromSrc[u]
		if math.IsInf(du, 1) {
			continue
		}
		for _, e := range g.adj[u] {
			if e.Seg == ConnectorSeg {
				continue
			}
			if du+e.Len+distToDst[e.To] > budgetCap {
				continue
			}
			if evaluated[e.Seg] {
				continue
			}
			evaluated[e.Seg] = true
			iv := interest(network.SegmentID(e.Seg))
			interests[e.Seg] = iv
			if iv > 0 {
				entries = append(entries, needEntry{
					need: e.Len + math.Min(distToDst[network.VertexID(u)], distToDst[e.To]),
					pos:  iv,
				})
			}
		}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].need < entries[j].need })
	needs := make([]float64, len(entries))
	prefixPos := make([]float64, len(entries)+1)
	for i, en := range entries {
		needs[i] = en.need
		prefixPos[i+1] = prefixPos[i] + en.pos
	}
	// reachPos bounds the positive interest collectible with remaining
	// budget r. posTotal is reachPos over the whole budget: the sum of
	// every feasible positive interest.
	reachPos := func(r float64) float64 {
		return prefixPos[sort.Search(len(needs), func(i int) bool { return needs[i] > r })]
	}
	posTotal := prefixPos[len(entries)]

	var completions []Route
	// top holds the k best completion scores; threshold is its minimum
	// once full.
	var top scoreHeap
	threshold := math.Inf(-1)

	f := frontier{&partial{
		verts:  []network.VertexID{q.Src},
		remPos: posTotal,
		ub:     posTotal - q.Alpha*distToDst[q.Src],
	}}
	heap.Init(&f)

	for f.Len() > 0 {
		if st.Expansions%ctxPollInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, st, err
			}
		}
		if err := faults.InjectCtx(ctx, "traj.search"); err != nil {
			return nil, st, err
		}
		if st.Expansions >= maxExp {
			return nil, st, fmt.Errorf("%w (%d expansions)", ErrSearchBudget, st.Expansions)
		}
		p := heap.Pop(&f).(*partial)
		st.Expansions++
		if belowThreshold(p.ub, threshold) {
			st.PrunedBound++
			continue
		}
		last := p.verts[len(p.verts)-1]
		if last == q.Dst {
			// A vertex-simple path cannot revisit the destination, so
			// this partial is exactly one completed route.
			score := p.interest - q.Alpha*p.length
			completions = append(completions, Route{
				Vertices: p.verts,
				Segments: p.segs,
				Length:   p.length,
				Interest: p.interest,
				Score:    score,
			})
			st.Completed++
			if top.Len() < q.K {
				heap.Push(&top, score)
			} else if score > top[0] {
				top[0] = score
				heap.Fix(&top, 0)
			}
			if top.Len() == q.K {
				threshold = top[0]
			}
			continue
		}
		for _, e := range g.adj[last] {
			if containsVert(p.verts, e.To) {
				continue // loopless: vertex-simple paths only
			}
			newLen := p.length + e.Len
			if newLen > q.Budget {
				st.PrunedBudget++
				continue // the exact budget rule, identical to the oracle
			}
			if newLen+distToDst[e.To] > budgetCap {
				st.PrunedBudget++
				continue // cannot reach dst within budget (slack-guarded)
			}
			newInterest := p.interest
			newRemPos := p.remPos
			if e.Seg != ConnectorSeg {
				iv := interests[e.Seg]
				newInterest += iv
				if iv > 0 {
					newRemPos -= iv
				}
			}
			// Admissible bound: any completion collects at most the
			// uncollected positive interest (remPos) that is also still
			// reachable within the remaining budget (reachPos), and walks
			// at least distToDst further. Both restrictions only drop
			// provably uncollectible interest, and the slack-guarded
			// threshold test below absorbs float rounding, so no true
			// top-k path is ever pruned.
			rem := newRemPos
			if rp := reachPos(budgetCap - newLen); rp < rem {
				rem = rp
			}
			ub := newInterest + rem - q.Alpha*(newLen+distToDst[e.To])
			if belowThreshold(ub, threshold) {
				st.PrunedBound++
				continue
			}
			child := &partial{
				verts:    append(append(make([]network.VertexID, 0, len(p.verts)+1), p.verts...), e.To),
				segs:     p.segs,
				length:   newLen,
				interest: newInterest,
				remPos:   newRemPos,
				ub:       ub,
			}
			if e.Seg != ConnectorSeg {
				child.segs = append(append(make([]network.SegmentID, 0, len(p.segs)+1), p.segs...), network.SegmentID(e.Seg))
			}
			heap.Push(&f, child)
			st.Generated++
		}
	}

	SortRoutes(completions)
	if len(completions) > q.K {
		completions = completions[:q.K]
	}
	return completions, st, nil
}

// belowThreshold reports whether an admissible upper bound is so far
// under the kth-best score that the partial can be discarded even after
// conceding a relative float-rounding margin.
func belowThreshold(ub, threshold float64) bool {
	if math.IsInf(threshold, -1) {
		return false
	}
	slack := boundSlack * (math.Abs(ub) + math.Abs(threshold) + 1)
	return ub+slack < threshold
}

func containsVert(vs []network.VertexID, v network.VertexID) bool {
	for _, u := range vs {
		if u == v {
			return true
		}
	}
	return false
}

// scoreHeap is a min-heap of the best completion scores seen so far.
type scoreHeap []float64

func (h scoreHeap) Len() int            { return len(h) }
func (h scoreHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h scoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *scoreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
