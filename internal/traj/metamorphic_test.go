package traj

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/network"
)

// Metamorphic checks for TopKRoutes. Both assertions are EXACT float
// comparisons, not tolerance-based; they are justified by two facts
// about IEEE-754 rounding: fl(a+b) >= a for b >= 0, and fl(a op b) is
// monotone in each operand. Budget monotonicity holds because the set of
// feasible paths under a smaller budget nests inside the larger one's;
// interest dominance holds because a pointwise-larger interest function
// makes every path's accumulated interest (and hence score) at least as
// large, operand by operand.

func randomRouteSetup(t *testing.T, trial int) (*Graph, []float64, RouteQuery) {
	t.Helper()
	rng := rand.New(rand.NewSource(6300 + int64(trial)))
	net := lattice(t, 3+rng.Intn(3))
	g := NewGraph(net, 0)
	interests := make([]float64, net.NumSegments())
	for i := range interests {
		interests[i] = rng.Float64() * 2
	}
	q := RouteQuery{
		Src:    network.VertexID(rng.Intn(g.NumVertices())),
		Dst:    network.VertexID(rng.Intn(g.NumVertices())),
		K:      1 + rng.Intn(3),
		Budget: 2 + rng.Float64()*5,
		Alpha:  []float64{0, 0.3}[rng.Intn(2)],
	}
	return g, interests, q
}

// A larger budget can only improve (or preserve) the best route's score:
// every route feasible under the smaller budget stays feasible.
func TestRoutesBudgetMonotonicity(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		g, interests, q := randomRouteSetup(t, trial)
		interest := func(sid network.SegmentID) float64 { return interests[sid] }

		small, _, err := TopKRoutes(context.Background(), g, interest, q, SearchOptions{})
		if err != nil {
			t.Fatalf("trial %d small: %v", trial, err)
		}
		qBig := q
		qBig.Budget = q.Budget * 1.5
		big, _, err := TopKRoutes(context.Background(), g, interest, qBig, SearchOptions{})
		if err != nil {
			t.Fatalf("trial %d big: %v", trial, err)
		}
		if len(small) == 0 {
			continue
		}
		if len(big) == 0 {
			t.Fatalf("trial %d: larger budget lost all routes", trial)
		}
		if big[0].Score < small[0].Score {
			t.Fatalf("trial %d: top score regressed %v -> %v under larger budget (%v -> %v)",
				trial, small[0].Score, big[0].Score, q.Budget, qBig.Budget)
		}
		// Each rank present in both answers is at least as good.
		for i := 0; i < len(small) && i < len(big); i++ {
			if big[i].Score < small[i].Score {
				t.Fatalf("trial %d rank %d: score regressed %v -> %v", trial, i, small[i].Score, big[i].Score)
			}
		}
	}
}

// A pointwise-larger interest function can only raise (or preserve) the
// best route's score. This models keyword-superset monotonicity: adding
// keywords to a query can only raise each segment's interest.
func TestRoutesInterestDominance(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		g, interests, q := randomRouteSetup(t, trial)
		rng := rand.New(rand.NewSource(8800 + int64(trial)))
		boosted := make([]float64, len(interests))
		for i := range boosted {
			boosted[i] = interests[i] + rng.Float64()
		}
		base := func(sid network.SegmentID) float64 { return interests[sid] }
		dom := func(sid network.SegmentID) float64 { return boosted[sid] }

		lo, _, err := TopKRoutes(context.Background(), g, base, q, SearchOptions{})
		if err != nil {
			t.Fatalf("trial %d base: %v", trial, err)
		}
		hi, _, err := TopKRoutes(context.Background(), g, dom, q, SearchOptions{})
		if err != nil {
			t.Fatalf("trial %d dominated: %v", trial, err)
		}
		if len(lo) == 0 {
			continue
		}
		if len(hi) == 0 {
			t.Fatalf("trial %d: dominating interests lost all routes", trial)
		}
		if hi[0].Score < lo[0].Score {
			t.Fatalf("trial %d: top score regressed %v -> %v under dominating interests",
				trial, lo[0].Score, hi[0].Score)
		}
	}
}

// Raising K never changes the routes already returned: the top-k answer
// is a prefix of the top-(k+m) answer.
func TestRoutesKPrefixStability(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		g, interests, q := randomRouteSetup(t, trial)
		interest := func(sid network.SegmentID) float64 { return interests[sid] }
		q.K = 2
		two, _, err := TopKRoutes(context.Background(), g, interest, q, SearchOptions{})
		if err != nil {
			t.Fatalf("trial %d k=2: %v", trial, err)
		}
		q.K = 5
		five, _, err := TopKRoutes(context.Background(), g, interest, q, SearchOptions{})
		if err != nil {
			t.Fatalf("trial %d k=5: %v", trial, err)
		}
		if len(five) < len(two) {
			t.Fatalf("trial %d: k=5 returned fewer routes (%d) than k=2 (%d)", trial, len(five), len(two))
		}
		for i := range two {
			if !sameRoute(two[i], five[i]) {
				t.Fatalf("trial %d rank %d: k=2 route %+v != k=5 route %+v", trial, i, two[i], five[i])
			}
		}
	}
}

func sameRoute(a, b Route) bool {
	if math.Float64bits(a.Score) != math.Float64bits(b.Score) ||
		math.Float64bits(a.Length) != math.Float64bits(b.Length) ||
		math.Float64bits(a.Interest) != math.Float64bits(b.Interest) ||
		len(a.Vertices) != len(b.Vertices) || len(a.Segments) != len(b.Segments) {
		return false
	}
	for i := range a.Vertices {
		if a.Vertices[i] != b.Vertices[i] {
			return false
		}
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			return false
		}
	}
	return true
}
