// Package traj opens the trajectory query family over the road network:
// the k most interesting routes between two points (a best-first path
// search whose edge weight blends travel cost with per-segment interest
// mass) and trajectory-aware SOI (streets ranked by interest restricted
// to corridors actually traveled by user movement traces).
//
// Both queries are deliberately split from their inputs' provenance: the
// search and the matcher consume a per-segment interest function, so the
// production engine can plug in the slab index's segment mass folds while
// the brute-force oracle plugs in its exhaustive pairwise scan. Because
// the index's SegmentMass is pinned bit-identical to the oracle's (the
// metamorphic suite's per-segment differential), the two sides feed the
// search identical floats — any disagreement in the answers isolates a
// bug in the search or the pruning, which is exactly what the
// differential harness wants to test.
//
// Determinism contract: every result list is canonically ordered (score
// descending, then length ascending, then lexicographic vertex sequence
// for routes; score descending then ascending street id for corridor
// rankings), path sums are accumulated in traversal order, and all
// tie-breaks are explicit — so answers are reproducible bit for bit
// across runs, worker counts and pruning decisions.
package traj

import (
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/network"
)

// InterestFunc returns the exact interest of one segment under the
// query's keyword set and ε (Def. 2). The production engine backs it
// with the index's segment mass fold; the oracle with an exhaustive
// scan. It must be deterministic and non-negative.
type InterestFunc func(sid network.SegmentID) float64

// ConnectorSeg marks an adjacency edge that is a pedestrian connector
// between two near-miss vertices rather than a street segment.
const ConnectorSeg = int32(-1)

// Edge is one adjacency entry of the trajectory graph.
type Edge struct {
	To network.VertexID
	// Seg is the traversed segment id, or ConnectorSeg.
	Seg int32
	// Len is the edge's walking length.
	Len float64
}

// Graph is the adjacency-list view of the network the trajectory queries
// search over: every street segment as a bidirectional edge plus
// pedestrian connectors joining vertices closer than the snap radius.
// Adjacency lists are canonically sorted (ascending target vertex, then
// ascending segment id), so exploration order is deterministic.
type Graph struct {
	net *network.Network
	adj [][]Edge
}

// NewGraph builds the trajectory graph. A positive snap joins every
// vertex pair closer than snap with a connector edge weighted by its
// Euclidean distance (grid-bucketed, so construction is near-linear);
// snap <= 0 keeps only street segments.
func NewGraph(net *network.Network, snap float64) *Graph {
	g := &Graph{net: net, adj: make([][]Edge, net.NumVertices())}
	for _, seg := range net.Segments() {
		g.adj[seg.From] = append(g.adj[seg.From], Edge{To: seg.To, Seg: int32(seg.ID), Len: seg.Length()})
		g.adj[seg.To] = append(g.adj[seg.To], Edge{To: seg.From, Seg: int32(seg.ID), Len: seg.Length()})
	}
	if snap > 0 && net.NumVertices() > 0 {
		type cellKey struct{ x, y int32 }
		buckets := make(map[cellKey][]network.VertexID)
		keyOf := func(v network.VertexID) cellKey {
			p := net.Vertex(v)
			return cellKey{int32(math.Floor(p.X / snap)), int32(math.Floor(p.Y / snap))}
		}
		for v := 0; v < net.NumVertices(); v++ {
			k := keyOf(network.VertexID(v))
			buckets[k] = append(buckets[k], network.VertexID(v))
		}
		for v := 0; v < net.NumVertices(); v++ {
			vid := network.VertexID(v)
			pv := net.Vertex(vid)
			k := keyOf(vid)
			for dx := int32(-1); dx <= 1; dx++ {
				for dy := int32(-1); dy <= 1; dy++ {
					for _, u := range buckets[cellKey{k.x + dx, k.y + dy}] {
						if u <= vid {
							continue // each pair once, no self loops
						}
						if d := pv.Dist(net.Vertex(u)); d <= snap {
							g.adj[vid] = append(g.adj[vid], Edge{To: u, Seg: ConnectorSeg, Len: d})
							g.adj[u] = append(g.adj[u], Edge{To: vid, Seg: ConnectorSeg, Len: d})
						}
					}
				}
			}
		}
	}
	for v := range g.adj {
		es := g.adj[v]
		sort.Slice(es, func(i, j int) bool {
			if es[i].To != es[j].To {
				return es[i].To < es[j].To
			}
			return es[i].Seg < es[j].Seg
		})
	}
	return g
}

// Network returns the underlying road network.
func (g *Graph) Network() *network.Network { return g.net }

// Adjacent returns the canonical adjacency list of a vertex. The slice
// is shared with the graph and must not be mutated.
func (g *Graph) Adjacent(v network.VertexID) []Edge { return g.adj[v] }

// NumVertices returns the graph's vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// DefaultSnapFactor sizes the connector snap radius relative to the
// network's mean segment length. It is deliberately tighter than the
// tour planner's 1.5 so the path search's branching factor stays small.
const DefaultSnapFactor = 0.75

// DefaultSnap returns the connector snap radius used when callers have
// no better estimate: DefaultSnapFactor times the mean segment length
// (0 for an empty network).
func DefaultSnap(net *network.Network) float64 {
	st := net.Stats()
	if st.NumSegments == 0 {
		return 0
	}
	return DefaultSnapFactor * st.TotalLen / float64(st.NumSegments)
}

// NearestVertex snaps a free point to the network vertex nearest to it,
// breaking exact distance ties by the lowest vertex id. The boolean is
// false only for an empty network.
func NearestVertex(net *network.Network, p geo.Point) (network.VertexID, bool) {
	if net.NumVertices() == 0 {
		return 0, false
	}
	best := network.VertexID(0)
	bestD := p.DistSq(net.Vertex(0))
	for v := 1; v < net.NumVertices(); v++ {
		if d := p.DistSq(net.Vertex(network.VertexID(v))); d < bestD {
			best, bestD = network.VertexID(v), d
		}
	}
	return best, true
}

// Distances runs Dijkstra from src over the graph, returning the
// shortest walking distance to every vertex (+Inf when unreachable).
// The route search uses it as the admissible remaining-distance bound
// for budget-feasibility pruning.
func (g *Graph) Distances(src network.VertexID) []float64 {
	dist := make([]float64, len(g.adj))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if int(src) >= len(g.adj) {
		return dist
	}
	dist[src] = 0
	h := &distHeap{{v: src, d: 0}}
	for h.Len() > 0 {
		it := h.pop()
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range g.adj[it.v] {
			if nd := it.d + e.Len; nd < dist[e.To] {
				dist[e.To] = nd
				h.push(distItem{v: e.To, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v network.VertexID
	d float64
}

// distHeap is a minimal binary min-heap over (distance, vertex).
type distHeap []distItem

func (h distHeap) Len() int { return len(h) }

func (h *distHeap) push(it distItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h)[i].less((*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l].less((*h)[smallest]) {
			smallest = l
		}
		if r < n && (*h)[r].less((*h)[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

func (a distItem) less(b distItem) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.v < b.v
}
