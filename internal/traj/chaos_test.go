package traj

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/network"
)

// Fault sites are process-global, so these tests never run in parallel
// with each other; each one resets the registry on exit.

func TestChaosSearchError(t *testing.T) {
	defer faults.Reset()
	net := lattice(t, 4)
	g := NewGraph(net, 0)
	q := RouteQuery{Src: 0, Dst: network.VertexID(g.NumVertices() - 1), K: 2, Budget: 12}

	injected := errors.New("injected search failure")
	faults.Activate("traj.search", faults.Fault{Err: injected, After: 3, Times: 1})
	_, _, err := TopKRoutes(context.Background(), g, hashInterest, q, SearchOptions{})
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if faults.Fired("traj.search") != 1 {
		t.Fatalf("fired %d times, want 1", faults.Fired("traj.search"))
	}

	// The graph is untouched state; the same query succeeds once the
	// fault is cleared.
	faults.Deactivate("traj.search")
	rs, _, err := TopKRoutes(context.Background(), g, hashInterest, q, SearchOptions{})
	if err != nil || len(rs) == 0 {
		t.Fatalf("retry after fault clear: routes=%d err=%v", len(rs), err)
	}
}

func TestChaosMatchError(t *testing.T) {
	defer faults.Reset()
	net := lattice(t, 3)
	m := NewMatcher(net, 0.2)
	q := TrajQuery{
		Traces: [][]geo.Point{{geo.Pt(0.5, 0)}, {geo.Pt(1.5, 0)}},
		K:      3,
		Radius: 0.2,
	}

	injected := errors.New("injected match failure")
	faults.Activate("traj.match", faults.Fault{Err: injected, After: 1, Times: 1})
	_, _, err := TrajectorySOI(context.Background(), m, hashInterest, q)
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}

	faults.Deactivate("traj.match")
	res, st, err := TrajectorySOI(context.Background(), m, hashInterest, q)
	if err != nil {
		t.Fatalf("retry after fault clear: %v", err)
	}
	if st.TracePoints != 2 || len(res) == 0 {
		t.Fatalf("retry results: stats=%+v res=%d", st, len(res))
	}
}

func TestChaosSearchBlockedUntilCancel(t *testing.T) {
	defer faults.Reset()
	net := lattice(t, 4)
	g := NewGraph(net, 0)
	q := RouteQuery{Src: 0, Dst: network.VertexID(g.NumVertices() - 1), K: 2, Budget: 12}

	block := make(chan struct{})
	faults.Activate("traj.search", faults.Fault{Block: block, Times: 1})
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		_, _, err := TopKRoutes(ctx, g, hashInterest, q, SearchOptions{})
		done <- err
	}()
	// The search parks on the blocked fault site; cancel, then release.
	time.Sleep(10 * time.Millisecond)
	cancel()
	close(block)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("search did not return after cancel+release")
	}
}

// Shared Graph and Matcher values are read-only after construction;
// concurrent queries with fault delays armed must stay race-free.
func TestChaosConcurrentQueries(t *testing.T) {
	defer faults.Reset()
	net := lattice(t, 4)
	g := NewGraph(net, 0)
	m := NewMatcher(net, 0.2)
	faults.Activate("traj.search", faults.Fault{Delay: time.Microsecond})
	faults.Activate("traj.match", faults.Fault{Delay: time.Microsecond})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if w%2 == 0 {
					q := RouteQuery{
						Src:    network.VertexID(w % g.NumVertices()),
						Dst:    network.VertexID((w + 7 + i) % g.NumVertices()),
						K:      2,
						Budget: 10,
					}
					if _, _, err := TopKRoutes(context.Background(), g, hashInterest, q, SearchOptions{}); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				} else {
					q := TrajQuery{
						Traces: [][]geo.Point{{geo.Pt(float64(i%3)+0.5, float64(w%3))}},
						K:      3,
						Radius: 0.2,
					}
					if _, _, err := TrajectorySOI(context.Background(), m, hashInterest, q); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if faults.Visits("traj.search") == 0 || faults.Visits("traj.match") == 0 {
		t.Fatalf("fault sites not exercised: search=%d match=%d",
			faults.Visits("traj.search"), faults.Visits("traj.match"))
	}
}
