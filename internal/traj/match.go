package traj

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/network"
)

// TrajQuery ranks streets by interest restricted to the corridors a set
// of user movement traces actually traveled.
type TrajQuery struct {
	// Traces are the raw movement polylines (sampled GPS-like points).
	Traces [][]geo.Point
	// K is the number of streets to return.
	K int
	// Radius is the map-matching snap radius: a trace point matches the
	// nearest segment within this distance, or no segment at all.
	Radius float64
}

// Validate reports whether the query is well formed.
func (q TrajQuery) Validate() error {
	if q.K <= 0 {
		return fmt.Errorf("traj: non-positive k %d", q.K)
	}
	if math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0) {
		return fmt.Errorf("traj: non-finite radius %v", q.Radius)
	}
	if q.Radius <= 0 {
		return fmt.Errorf("traj: non-positive radius %v", q.Radius)
	}
	if len(q.Traces) == 0 {
		return fmt.Errorf("traj: no traces")
	}
	return nil
}

// CorridorResult is one ranked street of a trajectory-SOI query.
type CorridorResult struct {
	// Street is the street id.
	Street network.StreetID
	// Name is the street's display name.
	Name string
	// Coverage is the traveled fraction of the street: the summed length
	// of its segments touched by any trace point, divided by the
	// street's total length. In (0, 1].
	Coverage float64
	// Interest is the maximum segment interest among the street's
	// traveled segments.
	Interest float64
	// Score = Coverage × Interest, the ranking key.
	Score float64
}

// MatchStats reports the map-matching work one trajectory query did.
type MatchStats struct {
	// TracePoints counts trace points examined.
	TracePoints int
	// Matched counts trace points that snapped to a segment.
	Matched int
	// CoveredSegments counts distinct segments touched by any trace.
	CoveredSegments int
}

// Matcher snaps free points to their nearest street segment within a
// fixed radius, using a uniform grid of segment buckets so each lookup
// only scans nearby candidates. Matching is deterministic: the winner is
// the globally nearest segment within the radius, exact distance ties
// broken by the lowest segment id — identical to a full ascending scan
// over every segment, which is what the oracle does.
type Matcher struct {
	net     *network.Network
	radius  float64
	r2      float64
	cell    float64
	buckets map[matchCell][]network.SegmentID
}

type matchCell struct{ x, y int32 }

// maxMatchCellsPerDim bounds the matcher grid's resolution along each
// axis relative to the network extent. The cell size is floored at
// extent/maxMatchCellsPerDim, so an adversarially tiny snap radius
// (radius is request-controlled on the serving path) cannot make grid
// construction enumerate an unbounded number of cells — only the 3×3
// lookup invariant (cell ≥ radius) matters for correctness, not cell
// equality with the radius.
const maxMatchCellsPerDim = 1024

// NewMatcher builds the segment grid for one snap radius. The cell size
// is the radius floored at extent/maxMatchCellsPerDim; cell ≥ radius
// guarantees any segment within radius of a point is bucketed somewhere
// in the 3×3 cell block around it. Segments are bucketed into every
// cell their bounding box overlaps. A non-positive or NaN radius yields
// a matcher that matches nothing.
func NewMatcher(net *network.Network, radius float64) *Matcher {
	m := &Matcher{
		net:     net,
		radius:  radius,
		r2:      radius * radius,
		buckets: make(map[matchCell][]network.SegmentID),
	}
	if !(radius > 0) {
		return m
	}
	m.cell = radius
	nb := net.Bounds()
	if extent := math.Max(nb.MaxX-nb.MinX, nb.MaxY-nb.MinY); extent > 0 {
		if floor := extent / maxMatchCellsPerDim; m.cell < floor {
			m.cell = floor
		}
	}
	for i := range net.Segments() {
		seg := net.Segment(network.SegmentID(i))
		b := seg.Geom.Bounds()
		x0 := cellIndex(b.MinX / m.cell)
		x1 := cellIndex(b.MaxX / m.cell)
		y0 := cellIndex(b.MinY / m.cell)
		y1 := cellIndex(b.MaxY / m.cell)
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				k := matchCell{x, y}
				m.buckets[k] = append(m.buckets[k], network.SegmentID(i))
			}
		}
	}
	// Buckets were filled in ascending segment order, so each list is
	// already sorted; candidate merging below relies on that.
	return m
}

// cellIndex converts a scaled coordinate to a grid index, clamping just
// inside the int32 range instead of relying on Go's
// implementation-defined overflowing float→int conversion. Staying one
// off the extremes keeps the bucket-fill loop's x++ and the 3×3
// lookup's ±1 neighbor arithmetic from wrapping. Clamping is monotone,
// so two values within one cell of each other still land at most one
// index apart — the property the 3×3 lookup needs.
func cellIndex(v float64) int32 {
	switch {
	case math.IsNaN(v):
		return 0
	case v <= math.MinInt32+1:
		return math.MinInt32 + 1
	case v >= math.MaxInt32-1:
		return math.MaxInt32 - 1
	}
	return int32(math.Floor(v))
}

// Radius returns the matcher's snap radius.
func (m *Matcher) Radius() float64 { return m.radius }

// Match snaps p to the nearest segment within the radius. The boolean is
// false when no segment is close enough.
func (m *Matcher) Match(p geo.Point) (network.SegmentID, bool) {
	if !(m.radius > 0) {
		return 0, false
	}
	cx := cellIndex(p.X / m.cell)
	cy := cellIndex(p.Y / m.cell)
	var cands []network.SegmentID
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			cands = append(cands, m.buckets[matchCell{cx + dx, cy + dy}]...)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	// Scan candidates in ascending segment id with a strict < improvement
	// test: exact distance ties resolve to the lowest id, matching the
	// oracle's full scan. Duplicates (a segment bucketed in several of
	// the nine cells) are skipped by the ascending-order walk.
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	var (
		best   network.SegmentID
		bestD2 = math.Inf(1)
		prev   = network.SegmentID(math.MaxUint32)
	)
	for _, sid := range cands {
		if sid == prev {
			continue
		}
		prev = sid
		if d2 := m.net.Segment(sid).Geom.DistToPointSq(p); d2 < bestD2 {
			best, bestD2 = sid, d2
		}
	}
	if bestD2 <= m.r2 {
		return best, true
	}
	return 0, false
}

// TrajectorySOI map-matches every trace point and ranks streets by
// interest restricted to the traveled corridor. For each street with at
// least one matched segment:
//
//	coverage = Σ len(matched segments) / len(street)
//	interest = max segment interest over matched segments
//	score    = coverage × interest
//
// Sums and maxima run in ascending segment-id order with explicit
// tie-breaks, so the result is bit-identical to the oracle's exhaustive
// computation for the same matched corridor. Streets with zero score are
// omitted; results order by score descending, then street id ascending,
// truncated to K.
func TrajectorySOI(ctx context.Context, m *Matcher, interest InterestFunc, q TrajQuery) ([]CorridorResult, MatchStats, error) {
	var st MatchStats
	if err := q.Validate(); err != nil {
		return nil, st, err
	}
	if q.Radius != m.radius {
		return nil, st, fmt.Errorf("traj: query radius %v does not match matcher radius %v", q.Radius, m.radius)
	}
	covered := make([]bool, m.net.NumSegments())
	for _, trace := range q.Traces {
		if err := faults.InjectCtx(ctx, "traj.match"); err != nil {
			return nil, st, err
		}
		for _, p := range trace {
			if st.TracePoints%ctxPollInterval == 0 {
				if err := ctx.Err(); err != nil {
					return nil, st, err
				}
			}
			st.TracePoints++
			if sid, ok := m.Match(p); ok {
				st.Matched++
				covered[sid] = true
			}
		}
	}
	results := CorridorRanking(m.net, covered, interest, q.K, &st)
	return results, st, nil
}

// CorridorRanking turns a covered-segment set into the canonical street
// ranking. It is shared by the pruned implementation and the oracle so
// the aggregation arithmetic — the part both sides must agree on given
// the same corridor and interests — is computed one way only; the
// differential then isolates disagreements to matching and interest
// provenance. stats may be nil.
func CorridorRanking(net *network.Network, covered []bool, interest InterestFunc, k int, stats *MatchStats) []CorridorResult {
	type agg struct {
		street  network.StreetID
		lenSum  float64
		maxI    float64
		touched bool
	}
	perStreet := make([]agg, net.NumStreets())
	// Ascending segment id: float sums and max tie-breaks are ordered.
	for sid := 0; sid < net.NumSegments(); sid++ {
		if !covered[sid] {
			continue
		}
		if stats != nil {
			stats.CoveredSegments++
		}
		seg := net.Segment(network.SegmentID(sid))
		a := &perStreet[seg.Street]
		a.street = seg.Street
		a.lenSum += seg.Length()
		if i := interest(network.SegmentID(sid)); !a.touched || i > a.maxI {
			a.maxI = i
		}
		a.touched = true
	}
	var out []CorridorResult
	for id := range perStreet {
		a := &perStreet[id]
		if !a.touched {
			continue
		}
		street := net.Street(network.StreetID(id))
		coverage := a.lenSum / street.Length()
		score := coverage * a.maxI
		if score == 0 {
			continue
		}
		out = append(out, CorridorResult{
			Street:   network.StreetID(id),
			Name:     street.Name,
			Coverage: coverage,
			Interest: a.maxI,
			Score:    score,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Street < out[j].Street
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
