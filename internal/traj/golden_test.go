package traj

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/network"
)

// Golden tests pin the exact (Float64bits) rankings of fixed-seed
// trajectory queries over the Tiny synthetic city. Any change to the
// search order, pruning, accumulation order or matcher tie-breaking
// shows up here as a bit-level diff. When an intentional change lands,
// re-derive the literals by flipping printGolden to true and running
// `go test -run TestGolden -v ./internal/traj/`.
const printGolden = false

func goldenSetup(t *testing.T) (*core.Index, *network.Network, *Graph, InterestFunc) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Tiny(42))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.NewIndex(ds.Network, ds.POIs, core.IndexConfig{CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	set, missing := ds.POIs.Dict().LookupAll([]string{"shop"})
	if len(missing) > 0 {
		t.Fatalf("vocabulary lost %v", missing)
	}
	g := NewGraph(ds.Network, DefaultSnap(ds.Network))
	interest := func(sid network.SegmentID) float64 {
		return ix.SegmentInterest(sid, set, 0.0005)
	}
	return ix, ds.Network, g, interest
}

type goldenRoute struct {
	score, length, interest uint64
	nVerts, nSegs           int
}

var goldenRoutes = []goldenRoute{
	{score: 0x413a0402bd755f3f, length: 0x3f7edf16e6866e50, interest: 0x413a0402be6c57f6, nVerts: 7, nSegs: 4},
	{score: 0x413a0402bd755f3f, length: 0x3f7edf16e6866e50, interest: 0x413a0402be6c57f6, nVerts: 7, nSegs: 3},
	{score: 0x413456905087a539, length: 0x3f7be75ec7180e22, interest: 0x413456905166e02f, nVerts: 7, nSegs: 3},
}

func TestGoldenRoutes(t *testing.T) {
	_, net, g, interest := goldenSetup(t)
	src, ok := NearestVertex(net, net.Vertex(0))
	if !ok {
		t.Fatal("empty network")
	}
	// Deterministic destination at moderate range: the reachable vertex
	// with the largest shortest-path distance not exceeding four mean
	// segment lengths. Keeps the loopless path space tractable.
	var total float64
	for sid := 0; sid < net.NumSegments(); sid++ {
		total += net.Segment(network.SegmentID(sid)).Length()
	}
	maxDist := 4 * total / float64(net.NumSegments())
	dist := g.Distances(src)
	dst, best := src, 0.0
	for v, d := range dist {
		if !math.IsInf(d, 1) && d > best && d <= maxDist {
			dst, best = network.VertexID(v), d
		}
	}
	q := RouteQuery{Src: src, Dst: dst, K: 3, Budget: 1.2 * best, Alpha: 0.5}
	rs, _, err := TopKRoutes(context.Background(), g, interest, q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if printGolden {
		var b strings.Builder
		for _, r := range rs {
			fmt.Fprintf(&b, "\t{score: %#x, length: %#x, interest: %#x, nVerts: %d, nSegs: %d},\n",
				math.Float64bits(r.Score), math.Float64bits(r.Length), math.Float64bits(r.Interest),
				len(r.Vertices), len(r.Segments))
		}
		t.Fatalf("golden routes:\n%s", b.String())
	}
	if len(rs) != len(goldenRoutes) {
		t.Fatalf("%d routes, golden has %d", len(rs), len(goldenRoutes))
	}
	for i, r := range rs {
		want := goldenRoutes[i]
		got := goldenRoute{
			score:    math.Float64bits(r.Score),
			length:   math.Float64bits(r.Length),
			interest: math.Float64bits(r.Interest),
			nVerts:   len(r.Vertices),
			nSegs:    len(r.Segments),
		}
		if got != want {
			t.Errorf("route %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

type goldenCorridor struct {
	name                      string
	coverage, interest, score uint64
}

var goldenCorridors = []goldenCorridor{
	{name: "Münzstraße", coverage: 0x3fed15560be9750e, interest: 0x417bc9e794de8efe, score: 0x4179418117d9e71a},
	{name: "Neue Schönhauser Straße", coverage: 0x3fd14a318ae07e3d, interest: 0x417d4518223c5f4a, score: 0x415fa123d5a703b9},
	{name: "Tinytown Diagonal 1", coverage: 0x3fe3b78713b096ae, interest: 0x4161c9d8beb2dfc0, score: 0x4155ebbc2e7255d1},
	{name: "Kurfürstendamm", coverage: 0x3fe45636b4b872f5, interest: 0x41606c3a4a83047d, score: 0x4154dfc6bd37e3b2},
	{name: "Tinytown Local Street 2", coverage: 0x3fe68966e51746e2, interest: 0x415c5b3d0cf8d45f, score: 0x4153f87bc41ec1f0},
}

func TestGoldenTrajectorySOI(t *testing.T) {
	_, net, _, interest := goldenSetup(t)
	radius := DefaultSnap(net)
	m := NewMatcher(net, radius)
	traces := datagen.Traces(net, 42, 24)
	res, st, err := TrajectorySOI(context.Background(), m, interest, TrajQuery{
		Traces: traces, K: 5, Radius: radius,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TracePoints == 0 || st.Matched == 0 {
		t.Fatalf("degenerate stats %+v", st)
	}
	if printGolden {
		var b strings.Builder
		for _, r := range res {
			fmt.Fprintf(&b, "\t{name: %q, coverage: %#x, interest: %#x, score: %#x},\n",
				r.Name, math.Float64bits(r.Coverage), math.Float64bits(r.Interest), math.Float64bits(r.Score))
		}
		t.Fatalf("golden corridors:\n%s", b.String())
	}
	if len(res) != len(goldenCorridors) {
		t.Fatalf("%d corridors, golden has %d", len(res), len(goldenCorridors))
	}
	for i, r := range res {
		want := goldenCorridors[i]
		got := goldenCorridor{
			name:     r.Name,
			coverage: math.Float64bits(r.Coverage),
			interest: math.Float64bits(r.Interest),
			score:    math.Float64bits(r.Score),
		}
		if got != want {
			t.Errorf("corridor %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
}
