package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestInjectUnarmedIsNoop(t *testing.T) {
	Reset()
	Inject("nowhere")
	if err := InjectCtx(context.Background(), "nowhere"); err != nil {
		t.Fatalf("unarmed InjectCtx returned %v", err)
	}
	if Visits("nowhere") != 0 {
		t.Fatalf("unarmed site recorded visits")
	}
}

func TestDelayFires(t *testing.T) {
	defer Reset()
	Activate("t.delay", Fault{Delay: 20 * time.Millisecond})
	start := time.Now()
	Inject("t.delay")
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delay fault slept only %v", elapsed)
	}
	if Visits("t.delay") != 1 || Fired("t.delay") != 1 {
		t.Fatalf("visits=%d fired=%d, want 1/1", Visits("t.delay"), Fired("t.delay"))
	}
}

func TestAfterAndTimesWindow(t *testing.T) {
	defer Reset()
	Activate("t.window", Fault{Delay: time.Nanosecond, After: 2, Times: 1})
	for i := 0; i < 5; i++ {
		Inject("t.window")
	}
	if Visits("t.window") != 5 {
		t.Fatalf("visits = %d, want 5", Visits("t.window"))
	}
	if Fired("t.window") != 1 {
		t.Fatalf("fired = %d, want exactly 1 (After=2, Times=1)", Fired("t.window"))
	}
}

func TestPanicFault(t *testing.T) {
	defer Reset()
	Activate("t.panic", Fault{Panic: true, PanicValue: "boom"})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Inject("t.panic")
	t.Fatal("Inject did not panic")
}

func TestBlockReleasedByClose(t *testing.T) {
	defer Reset()
	release := make(chan struct{})
	Activate("t.block", Fault{Block: release})
	done := make(chan struct{})
	go func() {
		Inject("t.block")
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("blocked visit returned before release")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("blocked visit not released by close")
	}
}

func TestInjectCtxHonorsCancellation(t *testing.T) {
	defer Reset()
	Activate("t.ctx", Fault{Block: make(chan struct{})})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- InjectCtx(ctx, "t.ctx") }()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("InjectCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("InjectCtx did not observe cancellation")
	}
}

func TestInjectCtxExpiredDelay(t *testing.T) {
	defer Reset()
	Activate("t.expired", Fault{Delay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := InjectCtx(ctx, "t.expired")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("InjectCtx returned %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("InjectCtx slept past the deadline")
	}
}

func TestDeactivateDisarms(t *testing.T) {
	defer Reset()
	Activate("t.off", Fault{Panic: true})
	Deactivate("t.off")
	Inject("t.off") // must not panic
	if armed.Load() != 0 {
		t.Fatalf("armed = %d after deactivate", armed.Load())
	}
}
