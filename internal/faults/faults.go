// Package faults is a deterministic fault-injection registry used by the
// chaos test suite to exercise the query path's robustness machinery:
// cancellation checkpoints, load shedding, panic isolation and graceful
// degradation.
//
// Production code marks named sites with Inject (or InjectCtx where a
// context is in scope). With no fault armed — the normal state — a site
// costs one atomic load and a predicted branch; no locks, no map lookup,
// no allocation. Tests arm faults with Activate:
//
//	defer faults.Deactivate("core.filter")
//	faults.Activate("core.filter", faults.Fault{Panic: true})
//
// Faults are deterministic: a fault fires on exactly the visits its
// After/Times window selects, in visit order, so a test's failure
// schedule is a pure function of the workload. The registry is safe for
// concurrent use and is process-global, mirroring how the sites it
// serves are spread across packages.
package faults

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what happens when an armed site is visited. Fields
// compose: a visit first sleeps Delay, then blocks on Block, then
// panics — so a single fault can model a slow-then-crashed evaluation.
type Fault struct {
	// Delay sleeps the visiting goroutine. InjectCtx returns early with
	// the context's error if the context expires first.
	Delay time.Duration
	// Block parks the visiting goroutine until the channel is closed (or,
	// for InjectCtx, the context is done). A nil channel never fires.
	// Closing the channel releases every parked visitor — the test's
	// "unwedge" switch.
	Block chan struct{}
	// Panic makes the visit panic with PanicValue (or a default string),
	// exercising recover-based isolation above the site.
	Panic bool
	// PanicValue is the value passed to panic when Panic is set.
	PanicValue any
	// Err makes InjectCtx return this error after Delay and Block have
	// run — the "drop" mode: a site that models a network operation
	// (dial, send, receive) propagates it exactly like a refused
	// connection or a reset stream, and a serving site can map it to a
	// 5xx response. Inject, which has no error channel, ignores it.
	Err error
	// After skips the first After visits before the fault fires.
	After int
	// Times bounds how many visits fire the fault; 0 means every visit
	// past After.
	Times int
}

// site is one armed site's state.
type site struct {
	fault  Fault
	visits int // total visits since arming, fired or not
	fired  int // visits that actually fired the fault
}

var (
	armed atomic.Int32 // number of armed sites; 0 = fast path
	mu    sync.Mutex
	sites = map[string]*site{}
)

// Activate arms a fault at the named site, replacing any previous fault
// there. Sites are plain strings agreed between the production code and
// the test (e.g. "core.filter", "engine.evaluate").
func Activate(name string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; !ok {
		armed.Add(1)
	}
	sites[name] = &site{fault: f}
}

// Deactivate disarms the named site; a no-op when it is not armed.
func Deactivate(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; ok {
		delete(sites, name)
		armed.Add(-1)
	}
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	if len(sites) > 0 {
		armed.Add(int32(-len(sites)))
		sites = map[string]*site{}
	}
}

// Visits returns how many times the named site has been visited since it
// was armed (0 when not armed).
func Visits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[name]; ok {
		return s.visits
	}
	return 0
}

// Fired returns how many visits actually fired the armed fault.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[name]; ok {
		return s.fired
	}
	return 0
}

// take records a visit and returns the fault to apply, if any.
func take(name string) (Fault, bool) {
	mu.Lock()
	defer mu.Unlock()
	s, ok := sites[name]
	if !ok {
		return Fault{}, false
	}
	s.visits++
	if s.visits <= s.fault.After {
		return Fault{}, false
	}
	if s.fault.Times > 0 && s.fired >= s.fault.Times {
		return Fault{}, false
	}
	s.fired++
	return s.fault, true
}

// Inject applies the fault armed at the named site, if any. The fast
// path — nothing armed anywhere — is one atomic load.
func Inject(name string) {
	if armed.Load() == 0 {
		return
	}
	f, ok := take(name)
	if !ok {
		return
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Block != nil {
		<-f.Block
	}
	if f.Panic {
		panicWith(f)
	}
}

// InjectCtx is Inject for sites with a context in scope: delays and
// blocks end early when the context is done, and the context error is
// returned so the site can propagate cancellation the same way a real
// slow operation would. A fault with Err set returns that error after
// its delay/block phases, modelling dropped connections and injected
// server faults. A nil error means the visit completed (or nothing was
// armed).
func InjectCtx(ctx context.Context, name string) error {
	if armed.Load() == 0 {
		return nil
	}
	f, ok := take(name)
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if f.Block != nil {
		select {
		case <-f.Block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if f.Panic {
		panicWith(f)
	}
	return f.Err
}

func panicWith(f Fault) {
	v := f.PanicValue
	if v == nil {
		v = "faults: injected panic"
	}
	panic(v)
}
