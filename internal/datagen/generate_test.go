package datagen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestGenerateSmallDeterministic(t *testing.T) {
	a, err := Generate(Small(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Small(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Network.NumSegments() != b.Network.NumSegments() {
		t.Fatalf("segments differ: %d vs %d", a.Network.NumSegments(), b.Network.NumSegments())
	}
	if a.POIs.Len() != b.POIs.Len() || a.Photos.Len() != b.Photos.Len() {
		t.Fatal("object counts differ between identical seeds")
	}
	// Spot check: first POI identical.
	if a.POIs.Get(0).Loc != b.POIs.Get(0).Loc {
		t.Fatal("POI placement not deterministic")
	}
	// A different seed must differ.
	c, err := Generate(Small(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.POIs.Get(0).Loc == c.POIs.Get(0).Loc {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestGenerateSmallStructure(t *testing.T) {
	ds, err := Generate(Small(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Network.Validate(); err != nil {
		t.Fatalf("network invalid: %v", err)
	}
	if ds.POIs.Len() < Small(1).NumPOIs {
		t.Fatalf("POIs = %d, want at least the background count %d", ds.POIs.Len(), Small(1).NumPOIs)
	}
	if ds.Photos.Len() < Small(1).NumPhotos {
		t.Fatalf("photos = %d", ds.Photos.Len())
	}
	// Every planted street must exist.
	for _, site := range ds.Profile.ShopSites {
		for _, name := range site.Streets {
			if ds.Network.StreetByName(name) == nil {
				t.Errorf("planted street %q missing", name)
			}
		}
	}
	if ds.Network.StreetByName(ds.Truth.PhotoStreet) == nil {
		t.Errorf("photo street %q missing", ds.Truth.PhotoStreet)
	}
	// Ground-truth ranking is ordered by planted density.
	if len(ds.Truth.ShoppingStreets) == 0 {
		t.Fatal("empty ground-truth ranking")
	}
	// The top ground-truth street comes from the densest site.
	densest := ds.Profile.ShopSites[0]
	for _, site := range ds.Profile.ShopSites {
		if site.Density > densest.Density {
			densest = site
		}
	}
	if ds.Truth.ShoppingStreets[0] != densest.Streets[0] {
		t.Errorf("top ground-truth street = %q, want %q", ds.Truth.ShoppingStreets[0], densest.Streets[0])
	}
}

func TestGenerateObjectsInsideExtent(t *testing.T) {
	ds, err := Generate(Small(2))
	if err != nil {
		t.Fatal(err)
	}
	// Objects are placed near streets; allow a generous margin beyond the
	// extent for perpendicular offsets and polyline overshoot.
	margin := 0.05
	bounds := ds.Profile.Extent.Expand(margin)
	for _, p := range ds.POIs.All() {
		if !bounds.Contains(p.Loc) {
			t.Fatalf("POI %d at %v far outside extent", p.ID, p.Loc)
		}
	}
	for _, r := range ds.Photos.All() {
		if !bounds.Contains(r.Loc) {
			t.Fatalf("photo %d at %v far outside extent", r.ID, r.Loc)
		}
	}
}

func TestGenerateKeywordPrevalence(t *testing.T) {
	p := Small(3)
	p.NumPOIs = 40_000
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range p.Categories {
		q, _ := ds.Dict.LookupAll([]string{cat.Name})
		got := float64(ds.POIs.CountRelevant(q)) / float64(p.NumPOIs)
		// Within 25% relative of the configured probability (planted shop
		// POIs inflate the denominator only slightly).
		if got < cat.Prob*0.75 || got > cat.Prob*1.35 {
			t.Errorf("category %q prevalence %v, configured %v", cat.Name, got, cat.Prob)
		}
	}
}

func TestPlantedStreetsRankTop(t *testing.T) {
	ds, err := Generate(Small(4))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.NewIndex(ds.Network, ds.POIs, core.IndexConfig{CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ix.SOI(core.Query{Keywords: []string{"shop"}, K: 10, Epsilon: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	planted := make(map[string]bool)
	for _, s := range ds.Truth.ShoppingStreets {
		planted[s] = true
	}
	hits := 0
	for _, r := range res {
		if planted[r.Name] {
			hits++
		}
	}
	// Most of the top-10 should be planted shopping streets.
	if hits < 6 {
		names := make([]string, len(res))
		for i, r := range res {
			names[i] = r.Name
		}
		t.Fatalf("only %d of top-10 are planted streets: %v", hits, names)
	}
	// The very top street should come from one of the two densest sites
	// (interest is noisy between near-equal densities).
	sites := ds.Profile.ShopSites
	topSite := make(map[string]bool)
	for _, site := range sites {
		if site.Density >= 0.9 {
			for _, s := range site.Streets {
				topSite[s] = true
			}
		}
	}
	if !topSite[res[0].Name] {
		t.Errorf("top street %q not from a dense site", res[0].Name)
	}
}

func TestPhotoStreetWorkload(t *testing.T) {
	ds, err := Generate(Small(5))
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Network.StreetByName(ds.Truth.PhotoStreet)
	if st == nil {
		t.Fatal("photo street missing")
	}
	count := 0
	for _, r := range ds.Photos.All() {
		if ds.Network.DistToStreet(r.Loc, st.ID) <= 0.0005 {
			count++
		}
	}
	want := ds.Profile.HotStreetPhotos
	if count < want*3/4 {
		t.Fatalf("photo street has %d nearby photos, want at least %d", count, want*3/4)
	}
}

func TestScale(t *testing.T) {
	p := London()
	s := Scale(p, 0.1)
	if s.NumPOIs != p.NumPOIs/10 {
		t.Errorf("NumPOIs = %d", s.NumPOIs)
	}
	if s.LocalStreets != p.LocalStreets/10 {
		t.Errorf("LocalStreets = %d", s.LocalStreets)
	}
	if got := Scale(p, 1); got.NumPOIs != p.NumPOIs {
		t.Error("Scale(1) changed the profile")
	}
	tiny := Scale(p, 1e-9)
	if tiny.AvenuesH < 1 {
		t.Error("Scale floored a positive knob to zero")
	}
}

func TestProfilesTable1Shape(t *testing.T) {
	// The three full profiles must be ordered like Table 1:
	// London > Berlin > Vienna in segments and POIs.
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("Profiles = %d", len(ps))
	}
	if !(ps[0].NumPOIs > ps[1].NumPOIs && ps[1].NumPOIs > ps[2].NumPOIs) {
		t.Error("POI counts not decreasing")
	}
	for _, p := range ps {
		if len(p.SourceLists[0]) != 5 || len(p.SourceLists[1]) != 5 {
			t.Errorf("%s: source lists must have 5 streets each", p.Name)
		}
		// Source lists only reference planted streets.
		planted := map[string]bool{}
		for _, site := range p.ShopSites {
			for _, s := range site.Streets {
				planted[s] = true
			}
		}
		for _, src := range p.SourceLists {
			for _, s := range src {
				if !planted[s] {
					t.Errorf("%s: source street %q not planted", p.Name, s)
				}
			}
		}
		if !planted[p.PhotoStreet] {
			t.Errorf("%s: photo street %q not planted", p.Name, p.PhotoStreet)
		}
	}
}

func TestPoissonish(t *testing.T) {
	for _, mean := range []float64{0, 0.5, 3, 50} {
		var sum float64
		const n = 20000
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < n; i++ {
			sum += float64(poissonish(rng, mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("poissonish mean %v: sampled %v", mean, got)
		}
	}
}

func TestSegmentLengthExtremes(t *testing.T) {
	ds, err := Generate(Small(10))
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Network.Stats()
	// The sliver lane gives a sub-2m minimum; the orbital motorway a
	// multi-km maximum.
	if st.MinSegmentLen > 2*degPerMeter {
		t.Errorf("min segment length %v deg too large", st.MinSegmentLen)
	}
	if st.MaxSegmentLen < 1000*degPerMeter {
		t.Errorf("max segment length %v deg too small", st.MaxSegmentLen)
	}
}
