package datagen

import (
	"math/rand"

	"repro/internal/geo"
	"repro/internal/network"
)

// Traces generates n synthetic user movement traces over the network:
// seeded street-following random walks sampled with GPS-like jitter.
// Each trace starts on a random segment, walks across shared vertices
// onto adjacent segments for a few hops, and emits a handful of sample
// points per traversed segment, each displaced by Gaussian noise scaled
// to the network's mean segment length. The output is deterministic for
// a (network, seed, n) triple.
func Traces(net *network.Network, seed int64, n int) [][]geo.Point {
	if net.NumSegments() == 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	st := net.Stats()
	meanLen := st.TotalLen / float64(st.NumSegments)
	jitter := 0.08 * meanLen

	// Vertex → incident segments, in segment-id order.
	incident := make([][]network.SegmentID, net.NumVertices())
	for i := range net.Segments() {
		seg := net.Segment(network.SegmentID(i))
		incident[seg.From] = append(incident[seg.From], network.SegmentID(i))
		incident[seg.To] = append(incident[seg.To], network.SegmentID(i))
	}

	traces := make([][]geo.Point, 0, n)
	for t := 0; t < n; t++ {
		sid := network.SegmentID(rng.Intn(net.NumSegments()))
		seg := net.Segment(sid)
		at := seg.From
		hops := 3 + rng.Intn(6)
		var trace []geo.Point
		for hop := 0; hop < hops; hop++ {
			// Walk the segment from the vertex we are at toward its
			// far end, sampling a few jittered points along the way.
			a, b := net.Vertex(seg.From), net.Vertex(seg.To)
			far := seg.To
			if at == seg.To {
				a, b = b, a
				far = seg.From
			}
			samples := 3 + rng.Intn(3)
			for i := 0; i < samples; i++ {
				f := (float64(i) + 0.5) / float64(samples)
				trace = append(trace, geo.Pt(
					a.X+(b.X-a.X)*f+rng.NormFloat64()*jitter,
					a.Y+(b.Y-a.Y)*f+rng.NormFloat64()*jitter,
				))
			}
			at = far
			// Hop to a random incident segment at the far vertex,
			// preferring not to double back.
			next := incident[at]
			if len(next) == 0 {
				break
			}
			cand := next[rng.Intn(len(next))]
			if cand == sid && len(next) > 1 {
				cand = next[rng.Intn(len(next))]
			}
			if cand == sid {
				break
			}
			sid = cand
			seg = net.Segment(sid)
			if at != seg.From && at != seg.To {
				break
			}
		}
		if len(trace) > 0 {
			traces = append(traces, trace)
		}
	}
	return traces
}
