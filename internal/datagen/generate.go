package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/photo"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// GroundTruth records what the generator planted, standing in for the
// external evaluation data of the paper's effectiveness study.
type GroundTruth struct {
	// ShoppingStreets lists the planted shopping streets in decreasing
	// planted density (the generator's own ranking).
	ShoppingStreets []string
	// SourceLists are the two "authoritative" street lists (Table 2's
	// Web sources).
	SourceLists [2][]string
	// PhotoStreet is the street carrying the photo hotspot workload.
	PhotoStreet string
}

// Dataset bundles one generated city.
type Dataset struct {
	Profile Profile
	Network *network.Network
	POIs    *poi.Corpus
	Photos  *photo.Corpus
	// Dict is the keyword dictionary shared by POIs and photos.
	Dict  *vocab.Dictionary
	Truth GroundTruth
	// prestige[i] is the importance weight POI i carries under the
	// ratings/check-ins metadata model the paper suggests in §5.1.1;
	// 1 for every POI outside a prestigious planted site. The default
	// corpus is unweighted; WeightedPOIs applies these.
	prestige []float64
}

// WeightedPOIs returns a copy of the POI corpus with the prestige
// importance weights applied — the paper's suggested fix for streets
// that "essentially house big luxury brands": few shops, each weighted
// by its ratings/check-ins.
func (ds *Dataset) WeightedPOIs() *poi.Corpus {
	pb := poi.NewBuilder(ds.Dict)
	for _, p := range ds.POIs.All() {
		w := 1.0
		if int(p.ID) < len(ds.prestige) {
			w = ds.prestige[p.ID]
		}
		pb.AddSet(p.Loc, p.Keywords, w)
	}
	return pb.Build()
}

// noiseWords is the long-tail vocabulary attached to POIs and photos.
var noiseWords = []string{
	"door", "window", "corner", "market", "stall", "bench", "lamp",
	"bridge", "river", "tower", "gate", "yard", "cafe", "bar", "cinema",
	"gallery", "office", "bank", "clinic", "garage", "bakery", "library",
	"square", "statue", "fountain", "garden", "plaza", "arcade", "mall",
	"terrace", "station", "stop", "line", "route", "view", "roof",
}

// photoMoodWords tag scattered photos.
var photoMoodWords = []string{
	"sunny", "rain", "night", "dawn", "crowd", "quiet", "xmas", "summer",
	"festival", "tram", "bus", "bike", "walk", "facade", "graffiti",
	"reflection", "umbrella", "coffee", "lights", "snow",
}

// Generate builds a complete synthetic city from the profile.
func Generate(p Profile) (*Dataset, error) {
	if p.NumPOIs < 0 || p.NumPhotos < 0 {
		return nil, fmt.Errorf("datagen: negative object counts in profile %q", p.Name)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	net, err := buildNetwork(p, rng)
	if err != nil {
		return nil, err
	}
	dict := vocab.NewDictionary()
	pois, prestige := buildPOIs(p, net, dict, rng)
	photos := buildPhotos(p, net, dict, rng)
	truth := GroundTruth{
		SourceLists: p.SourceLists,
		PhotoStreet: p.PhotoStreet,
	}
	// Planted ranking: site streets ordered by decreasing density, site
	// order breaking ties.
	type ranked struct {
		name    string
		density float64
	}
	var rs []ranked
	for _, site := range p.ShopSites {
		for _, s := range site.Streets {
			rs = append(rs, ranked{s, site.Density})
		}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].density > rs[j].density })
	for _, r := range rs {
		truth.ShoppingStreets = append(truth.ShoppingStreets, r.name)
	}
	return &Dataset{
		Profile:  p,
		Network:  net,
		POIs:     pois,
		Photos:   photos,
		Dict:     dict,
		Truth:    truth,
		prestige: prestige,
	}, nil
}

// buildNetwork lays out the road network: a jittered grid of long avenues,
// a few diagonals, and many short local streets; planted site streets are
// renamed onto the local streets nearest each site center.
func buildNetwork(p Profile, rng *rand.Rand) (*network.Network, error) {
	b := network.NewBuilder()
	w, h := p.Extent.Width(), p.Extent.Height()

	// polyline walks from (x, y) in direction (dx, dy) for n segments of
	// jittered length base, with small perpendicular wiggle.
	polyline := func(x, y, dx, dy, base float64, n int) []geo.Point {
		pts := make([]geo.Point, 0, n+1)
		pts = append(pts, geo.Pt(x, y))
		for i := 0; i < n; i++ {
			step := base * (0.4 + 1.2*rng.Float64())
			x += dx * step
			y += dy * step
			// Perpendicular wiggle keeps streets from being perfectly
			// straight, like digitized OSM ways.
			wig := base * 0.12 * rng.NormFloat64()
			pts = append(pts, geo.Pt(x-dy*wig, y+dx*wig))
		}
		return pts
	}

	// Horizontal avenues.
	for i := 0; i < p.AvenuesH; i++ {
		y := p.Extent.MinY + h*(float64(i)+0.5)/float64(p.AvenuesH) + rng.NormFloat64()*h*0.002
		n := int(w/p.AvenueSegLen + 0.5)
		if n < 2 {
			n = 2
		}
		b.AddStreet(fmt.Sprintf("%s East-West Avenue %d", p.Name, i+1),
			polyline(p.Extent.MinX, y, 1, 0, p.AvenueSegLen, n))
	}
	// Vertical avenues.
	for i := 0; i < p.AvenuesV; i++ {
		x := p.Extent.MinX + w*(float64(i)+0.5)/float64(p.AvenuesV) + rng.NormFloat64()*w*0.002
		n := int(h/p.AvenueSegLen + 0.5)
		if n < 2 {
			n = 2
		}
		b.AddStreet(fmt.Sprintf("%s North-South Avenue %d", p.Name, i+1),
			polyline(x, p.Extent.MinY, 0, 1, p.AvenueSegLen, n))
	}
	// Diagonal arterials.
	for i := 0; i < p.Diagonals; i++ {
		x := p.Extent.MinX + rng.Float64()*w*0.5
		y := p.Extent.MinY + rng.Float64()*h*0.5
		d := 1 / math.Sqrt2
		n := int(math.Min(w, h)/p.AvenueSegLen + 0.5)
		if n < 2 {
			n = 2
		}
		b.AddStreet(fmt.Sprintf("%s Diagonal %d", p.Name, i+1),
			polyline(x, y, d, d, p.AvenueSegLen, n))
	}

	// Local streets: short, randomly placed, axis-aligned.
	type local struct {
		id     network.StreetID
		center geo.Point
	}
	locals := make([]local, 0, p.LocalStreets)
	for i := 0; i < p.LocalStreets; i++ {
		x := p.Extent.MinX + rng.Float64()*w*0.96 + w*0.02
		y := p.Extent.MinY + rng.Float64()*h*0.96 + h*0.02
		n := p.LocalSegMin
		if p.LocalSegMax > p.LocalSegMin {
			n += rng.Intn(p.LocalSegMax - p.LocalSegMin + 1)
		}
		var pts []geo.Point
		if rng.Intn(2) == 0 {
			pts = polyline(x, y, 1, 0, p.LocalSegLen, n)
		} else {
			pts = polyline(x, y, 0, 1, p.LocalSegLen, n)
		}
		id := b.AddStreet(fmt.Sprintf("%s Local Street %d", p.Name, i+1), pts)
		locals = append(locals, local{id: id, center: pts[len(pts)/2]})
	}

	// Table 1 length extremes: one sliver street (sub-meter segment) and
	// one long arterial segment.
	sliver := 1.0 * degPerMeter * (0.1 + rng.Float64())
	b.AddStreet(fmt.Sprintf("%s Sliver Lane", p.Name), []geo.Point{
		geo.Pt(p.Extent.MinX+w*0.1, p.Extent.MinY+h*0.1),
		geo.Pt(p.Extent.MinX+w*0.1+sliver, p.Extent.MinY+h*0.1),
	})
	long := math.Min(w, h) * 0.3
	b.AddStreet(fmt.Sprintf("%s Orbital Motorway", p.Name), []geo.Point{
		geo.Pt(p.Extent.MinX+w*0.05, p.Extent.MinY+h*0.9),
		geo.Pt(p.Extent.MinX+w*0.05+long, p.Extent.MinY+h*0.9),
	})

	net, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Rename planted site streets onto the local streets nearest each
	// site center (each local street is used at most once).
	used := make(map[network.StreetID]bool)
	for _, site := range p.ShopSites {
		c := geo.Pt(
			p.Extent.MinX+site.Center.X*w,
			p.Extent.MinY+site.Center.Y*h,
		)
		order := make([]local, len(locals))
		copy(order, locals)
		sort.SliceStable(order, func(i, j int) bool {
			return order[i].center.DistSq(c) < order[j].center.DistSq(c)
		})
		i := 0
		for _, name := range site.Streets {
			for i < len(order) && used[order[i].id] {
				i++
			}
			if i >= len(order) {
				return nil, fmt.Errorf("datagen: not enough local streets to plant %q", name)
			}
			net.Street(order[i].id).Name = name
			used[order[i].id] = true
			i++
		}
	}
	return net, nil
}

// segmentPicker selects segments with probability proportional to length.
type segmentPicker struct {
	net *network.Network
	cum []float64
}

func newSegmentPicker(net *network.Network) *segmentPicker {
	cum := make([]float64, net.NumSegments())
	var total float64
	for i := range cum {
		total += net.Segment(network.SegmentID(i)).Length()
		cum[i] = total
	}
	return &segmentPicker{net: net, cum: cum}
}

// pick returns a random point near a length-weighted random segment,
// offset perpendicular to it by a N(0, sigma) distance.
func (sp *segmentPicker) pick(rng *rand.Rand, sigma float64) geo.Point {
	total := sp.cum[len(sp.cum)-1]
	target := rng.Float64() * total
	idx := sort.SearchFloat64s(sp.cum, target)
	if idx >= len(sp.cum) {
		idx = len(sp.cum) - 1
	}
	return pointNearSegment(sp.net.Segment(network.SegmentID(idx)).Geom, rng, sigma)
}

// pointNearSegment returns a point at a uniform position along the
// segment, displaced perpendicular by N(0, sigma).
func pointNearSegment(g geo.Segment, rng *rand.Rand, sigma float64) geo.Point {
	t := rng.Float64()
	x := g.A.X + t*(g.B.X-g.A.X)
	y := g.A.Y + t*(g.B.Y-g.A.Y)
	l := g.Length()
	var nx, ny float64
	if l > 0 {
		nx = -(g.B.Y - g.A.Y) / l
		ny = (g.B.X - g.A.X) / l
	} else {
		nx, ny = 1, 0
	}
	off := rng.NormFloat64() * sigma
	return geo.Pt(x+nx*off, y+ny*off)
}

// buildPOIs places background POIs along every street and dense "shop"
// POIs along the planted site streets. The returned prestige slice holds
// the per-POI importance weight of the ratings/check-ins model; the
// corpus itself is unweighted.
func buildPOIs(p Profile, net *network.Network, dict *vocab.Dictionary, rng *rand.Rand) (*poi.Corpus, []float64) {
	pb := poi.NewBuilder(dict)
	picker := newSegmentPicker(net)
	var prestige []float64

	catIDs := make([]vocab.ID, len(p.Categories))
	for i, c := range p.Categories {
		catIDs[i] = dict.Intern(c.Name)
	}
	shopID := dict.Intern("shop")
	noiseIDs := make([]vocab.ID, len(noiseWords))
	for i, wd := range noiseWords {
		noiseIDs[i] = dict.Intern(wd)
	}

	// Background POIs.
	for i := 0; i < p.NumPOIs; i++ {
		loc := picker.pick(rng, p.POIOffsetSigma)
		ids := make([]vocab.ID, 0, 3)
		for ci, c := range p.Categories {
			if rng.Float64() < c.Prob {
				ids = append(ids, catIDs[ci])
			}
		}
		if rng.Float64() < p.ShopBaseProb {
			ids = append(ids, shopID)
		}
		// Every POI carries one long-tail word so cells always have text.
		ids = append(ids, noiseIDs[rng.Intn(len(noiseIDs))])
		pb.AddSet(loc, vocab.NewSet(ids), 1)
		prestige = append(prestige, 1)
	}

	// Planted shop POIs: per site street, shops per unit length scaled by
	// the site density. The base rate is chosen so the planted streets
	// clearly dominate the background shop density.
	const shopsPerKm = 160.0 // at density 1.0
	kmPerDeg := 1 / (1000 * degPerMeter)
	for _, site := range p.ShopSites {
		weight := site.Prestige
		if weight == 0 {
			weight = 1
		}
		for _, name := range site.Streets {
			st := net.StreetByName(name)
			if st == nil {
				continue
			}
			for _, sid := range st.Segments {
				seg := net.Segment(sid)
				mean := shopsPerKm * site.Density * seg.Length() * kmPerDeg
				n := poissonish(rng, mean)
				for j := 0; j < n; j++ {
					loc := pointNearSegment(seg.Geom, rng, p.POIOffsetSigma*0.6)
					ids := []vocab.ID{shopID, noiseIDs[rng.Intn(len(noiseIDs))]}
					if rng.Float64() < 0.3 {
						ids = append(ids, catIDs[minIntDG(2, len(catIDs)-1)]) // often also "food"
					}
					pb.AddSet(loc, vocab.NewSet(ids), 1)
					prestige = append(prestige, weight)
				}
			}
		}
	}
	return pb.Build(), prestige
}

// poissonish draws an integer with the given mean: a Poisson sampled by
// inversion for small means, a rounded normal for large ones.
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(mean + rng.NormFloat64()*math.Sqrt(mean) + 0.5)
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

func minIntDG(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// buildPhotos scatters background photos along the network and builds the
// hotspot workload around the designated photo street: near-duplicate
// bursts (the Figure 3(a) failure mode), an event tag burst (Figure 3(b)),
// and a scattered long tail.
func buildPhotos(p Profile, net *network.Network, dict *vocab.Dictionary, rng *rand.Rand) *photo.Corpus {
	pb := photo.NewBuilder(dict)
	picker := newSegmentPicker(net)

	cityTag := dict.Intern(p.Name)
	streetTag := dict.Intern("street")
	moodIDs := make([]vocab.ID, len(photoMoodWords))
	for i, wd := range photoMoodWords {
		moodIDs[i] = dict.Intern(wd)
	}

	// Background photos.
	for i := 0; i < p.NumPhotos; i++ {
		loc := picker.pick(rng, p.POIOffsetSigma*2)
		ids := []vocab.ID{cityTag}
		if rng.Float64() < 0.4 {
			ids = append(ids, streetTag)
		}
		nm := rng.Intn(3)
		for j := 0; j < nm; j++ {
			ids = append(ids, moodIDs[rng.Intn(len(moodIDs))])
		}
		pb.AddSet(loc, vocab.NewSet(ids))
	}

	// Photo street workload.
	st := net.StreetByName(p.PhotoStreet)
	if st == nil || p.HotStreetPhotos == 0 {
		return pb.Build()
	}
	segs := st.Segments
	nameTag := dict.Intern(p.PhotoStreet)
	dupTags := [][]vocab.ID{
		{nameTag, dict.Intern("hmv"), dict.Intern("storefront"), dict.Intern("release")},
		{nameTag, dict.Intern("flagship"), dict.Intern("window"), dict.Intern("display")},
		{nameTag, dict.Intern("corner"), dict.Intern("landmark")},
	}
	eventTags := []vocab.ID{nameTag, dict.Intern("demo"), dict.Intern("protest"), dict.Intern("march"), dict.Intern("banner")}

	nDup := p.HotStreetPhotos * 35 / 100
	nEvent := p.HotStreetPhotos * 25 / 100
	nTail := p.HotStreetPhotos - nDup - nEvent

	// Near-duplicate bursts at fixed spots.
	spotSegs := make([]network.SegmentID, len(dupTags))
	for i := range spotSegs {
		spotSegs[i] = segs[rng.Intn(len(segs))]
	}
	for i := 0; i < nDup; i++ {
		spot := i % len(dupTags)
		g := net.Segment(spotSegs[spot]).Geom
		c := g.Midpoint()
		loc := geo.Pt(c.X+rng.NormFloat64()*2*degPerMeter, c.Y+rng.NormFloat64()*2*degPerMeter)
		ids := append([]vocab.ID(nil), dupTags[spot]...)
		pb.AddSet(loc, vocab.NewSet(ids))
	}
	// Event burst spread along the street.
	for i := 0; i < nEvent; i++ {
		seg := net.Segment(segs[rng.Intn(len(segs))])
		loc := pointNearSegment(seg.Geom, rng, 8*degPerMeter)
		ids := append([]vocab.ID(nil), eventTags...)
		if rng.Float64() < 0.5 {
			ids = append(ids, moodIDs[rng.Intn(len(moodIDs))])
		}
		pb.AddSet(loc, vocab.NewSet(ids))
	}
	// Long tail along the street.
	for i := 0; i < nTail; i++ {
		seg := net.Segment(segs[rng.Intn(len(segs))])
		loc := pointNearSegment(seg.Geom, rng, 15*degPerMeter)
		ids := []vocab.ID{nameTag, cityTag}
		nm := 1 + rng.Intn(3)
		for j := 0; j < nm; j++ {
			ids = append(ids, moodIDs[rng.Intn(len(moodIDs))])
		}
		if rng.Float64() < 0.2 {
			ids = append(ids, dict.Intern("construction"))
		}
		pb.AddSet(loc, vocab.NewSet(ids))
	}
	return pb.Build()
}
