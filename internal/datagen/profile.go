// Package datagen is the data substrate of the reproduction. The paper
// evaluates on road networks, POIs and photos crawled from OpenStreetMap,
// DBpedia, Wikimapia, Foursquare, Flickr and Panoramio for London, Berlin
// and Vienna; those crawls are not redistributable, so this package
// generates synthetic cities that preserve the statistics the algorithms
// are sensitive to:
//
//   - segment counts and the skewed segment-length distribution of
//     Table 1 (sub-meter breakpoint slivers up to multi-km arterials);
//   - per-keyword POI prevalences calibrated to the relevant-POI counts
//     of Table 4;
//   - planted high-density "shopping sites" that stand in for the
//     authoritative shopping-street lists of Table 2 (the Berlin profile
//     plants the streets of the paper's Table 2 by name);
//   - photo hotspots with near-duplicate bursts and tag bursts — the two
//     failure modes of Figure 3 — around a designated photo street whose
//     ε-neighborhood photo count matches the paper's Section 5.2.2
//     workload sizes.
//
// All generation is deterministic given the profile seed.
package datagen

import (
	"math"

	"repro/internal/geo"
)

// CategorySpec assigns a keyword category to POIs with a probability.
type CategorySpec struct {
	Name string
	Prob float64
}

// SiteSpec plants one shopping site: a cluster of named streets around a
// center, with a site-specific density of "shop" POIs per street meter.
type SiteSpec struct {
	// Streets are renamed onto generated streets nearest to Center, in
	// the given order.
	Streets []string
	// Center is the site location within the city extent (fractions of
	// the extent, each in [0,1]).
	Center geo.Point
	// Density scales the shop-POI placement rate along the site streets;
	// higher density ranks the site's streets higher.
	Density float64
	// Prestige is the importance weight of the site's shop POIs (0 means
	// the default 1). It models the ratings/check-ins metadata the paper
	// suggests for weighting POIs: a luxury street has few shops, each
	// highly rated.
	Prestige float64
}

// Profile parameterizes one synthetic city.
type Profile struct {
	Name   string
	Extent geo.Rect
	Seed   int64

	// Road network shape.
	AvenuesH, AvenuesV int     // long grid avenues spanning the extent
	Diagonals          int     // diagonal arterials
	AvenueSegLen       float64 // target avenue segment length (degrees)
	LocalStreets       int     // short side streets
	LocalSegMin        int     // min segments per local street
	LocalSegMax        int     // max segments per local street
	LocalSegLen        float64 // target local segment length (degrees)

	// POI layer.
	NumPOIs        int
	POIOffsetSigma float64 // perpendicular scatter around streets (degrees)
	Categories     []CategorySpec
	ShopBaseProb   float64 // background "shop" keyword probability

	// Planted shopping sites and their two "authoritative" source lists.
	ShopSites   []SiteSpec
	SourceLists [2][]string

	// Photo layer.
	NumPhotos       int    // background photos scattered near streets
	HotStreetPhotos int    // photos around the designated photo street
	PhotoStreet     string // name of the photo street (must be planted)
}

// degPerMeter approximates one meter in coordinate degrees (the paper
// works at European latitudes where 0.0005° ≈ 55 m).
const degPerMeter = 0.0005 / 55

// London returns the London-like profile: the largest city of Table 1
// (113,885 segments, 2,114,264 POIs; segment lengths 0.93 m – 5,834 m).
func London() Profile {
	return Profile{
		Name:   "London",
		Extent: geo.R(0, 0, 0.50, 0.40),
		Seed:   1,

		AvenuesH:     72,
		AvenuesV:     90,
		Diagonals:    24,
		AvenueSegLen: 0.0020,
		LocalStreets: 9000,
		LocalSegMin:  2,
		LocalSegMax:  12,
		LocalSegLen:  0.0012,

		NumPOIs:        2_114_264,
		POIOffsetSigma: 30 * degPerMeter,
		Categories: []CategorySpec{
			{Name: "religion", Prob: 0.00494},
			{Name: "education", Prob: 0.01052},
			{Name: "food", Prob: 0.03809},
			{Name: "services", Prob: 0.04206},
			{Name: "museum", Prob: 0.004},
			{Name: "park", Prob: 0.006},
			{Name: "hotel", Prob: 0.009},
		},
		ShopBaseProb: 0.013,

		ShopSites: []SiteSpec{
			{
				Streets: []string{"Oxford Street", "Regent Street", "Bond Street", "Carnaby Street"},
				Center:  geo.Pt(0.48, 0.52),
				Density: 1.0,
			},
			{
				Streets: []string{"Knightsbridge", "Sloane Street"},
				Center:  geo.Pt(0.38, 0.45),
				Density: 0.55,
			},
			{
				Streets: []string{"Covent Garden", "Neal Street"},
				Center:  geo.Pt(0.55, 0.50),
				Density: 0.45,
			},
			{
				Streets: []string{"Kings Road"},
				Center:  geo.Pt(0.33, 0.38),
				Density: 0.3,
			},
		},
		SourceLists: [2][]string{
			{"Oxford Street", "Regent Street", "Bond Street", "Knightsbridge", "Kings Road"},
			{"Oxford Street", "Regent Street", "Carnaby Street", "Covent Garden", "Sloane Street"},
		},

		NumPhotos:       120_000,
		HotStreetPhotos: 6_300,
		PhotoStreet:     "Oxford Street",
	}
}

// Berlin returns the Berlin-like profile (47,755 segments, 797,244 POIs),
// planting the streets of the paper's Table 2 by name: four shopping
// sites near Alte/Neue Schönhauser Straße, Kurfürstendamm, Friedrichstraße
// and Potsdamer Platz. The two source lists are the paper's authoritative
// Web sources.
func Berlin() Profile {
	return Profile{
		Name:   "Berlin",
		Extent: geo.R(0, 0, 0.40, 0.30),
		Seed:   2,

		AvenuesH:     48,
		AvenuesV:     56,
		Diagonals:    16,
		AvenueSegLen: 0.0022,
		LocalStreets: 4200,
		LocalSegMin:  2,
		LocalSegMax:  10,
		LocalSegLen:  0.0013,

		NumPOIs:        797_244,
		POIOffsetSigma: 30 * degPerMeter,
		Categories: []CategorySpec{
			{Name: "religion", Prob: 0.00247},
			{Name: "education", Prob: 0.01071},
			{Name: "food", Prob: 0.04697},
			{Name: "services", Prob: 0.03808},
			{Name: "museum", Prob: 0.004},
			{Name: "park", Prob: 0.007},
			{Name: "hotel", Prob: 0.008},
		},
		ShopBaseProb: 0.012,

		ShopSites: []SiteSpec{
			{
				// The paper's top-ranked site: dense little shops.
				Streets: []string{
					"Neue Schönhauser Straße", "Rosenthaler Straße", "Münzstraße",
					"Mulackstraße", "Alte Schönhauser Straße", "Weinmeisterstraße",
				},
				Center:  geo.Pt(0.60, 0.62),
				Density: 1.0,
			},
			{
				// Friedrichstraße with the Mäusetunnel pedestrian tunnel.
				Streets: []string{"Friedrichstraße", "Mäusetunnel"},
				Center:  geo.Pt(0.52, 0.50),
				Density: 1.3,
			},
			{
				// Tauentzienstraße: the dense end of the Kurfürstendamm
				// shopping site (the paper ranks it 10th).
				Streets: []string{"Tauentzienstraße"},
				Center:  geo.Pt(0.31, 0.41),
				Density: 1.05,
			},
			{
				// Potsdamer Platz: a mall on a square.
				Streets: []string{"Potsdamer Platz Arkaden", "Potsdamer Platz"},
				Center:  geo.Pt(0.45, 0.45),
				Density: 0.95,
			},
			{
				// Kurfürstendamm proper: big luxury brands, lower shop
				// density — the paper observes it ranks in the top-20 but
				// not the top-10.
				Streets:  []string{"Kurfürstendamm", "Fasanenstraße"},
				Center:   geo.Pt(0.29, 0.39),
				Density:  0.45,
				Prestige: 3, // few shops, big luxury brands (paper §5.1.1)
			},
		},
		SourceLists: [2][]string{
			// TripAdvisor-like source (paper's Source #1).
			{"Tauentzienstraße", "Fasanenstraße", "Friedrichstraße", "Alte Schönhauser Straße", "Münzstraße"},
			// GlobalBlue-like source (paper's Source #2).
			{"Kurfürstendamm", "Tauentzienstraße", "Potsdamer Platz", "Friedrichstraße", "Neue Schönhauser Straße"},
		},

		NumPhotos:       26_000,
		HotStreetPhotos: 700,
		PhotoStreet:     "Neue Schönhauser Straße",
	}
}

// Vienna returns the Vienna-like profile (22,211 segments, 408,712 POIs).
func Vienna() Profile {
	return Profile{
		Name:   "Vienna",
		Extent: geo.R(0, 0, 0.30, 0.22),
		Seed:   3,

		AvenuesH:     30,
		AvenuesV:     36,
		Diagonals:    10,
		AvenueSegLen: 0.0024,
		LocalStreets: 1900,
		LocalSegMin:  2,
		LocalSegMax:  10,
		LocalSegLen:  0.0014,

		NumPOIs:        408_712,
		POIOffsetSigma: 30 * degPerMeter,
		Categories: []CategorySpec{
			{Name: "religion", Prob: 0.00411},
			{Name: "education", Prob: 0.01464},
			{Name: "food", Prob: 0.04413},
			{Name: "services", Prob: 0.03863},
			{Name: "museum", Prob: 0.005},
			{Name: "park", Prob: 0.006},
			{Name: "hotel", Prob: 0.010},
		},
		ShopBaseProb: 0.013,

		ShopSites: []SiteSpec{
			{
				Streets: []string{"Mariahilfer Straße", "Neubaugasse"},
				Center:  geo.Pt(0.45, 0.50),
				Density: 1.0,
			},
			{
				Streets: []string{"Kärntner Straße", "Graben", "Kohlmarkt"},
				Center:  geo.Pt(0.55, 0.55),
				Density: 0.75,
			},
			{
				Streets: []string{"Landstraßer Hauptstraße"},
				Center:  geo.Pt(0.65, 0.45),
				Density: 0.4,
			},
			{
				Streets: []string{"Favoritenstraße"},
				Center:  geo.Pt(0.50, 0.30),
				Density: 0.35,
			},
		},
		SourceLists: [2][]string{
			{"Mariahilfer Straße", "Kärntner Straße", "Graben", "Kohlmarkt", "Favoritenstraße"},
			{"Mariahilfer Straße", "Kärntner Straße", "Graben", "Neubaugasse", "Landstraßer Hauptstraße"},
		},

		NumPhotos:       30_000,
		HotStreetPhotos: 1_450,
		PhotoStreet:     "Mariahilfer Straße",
	}
}

// Profiles returns the three city profiles in the paper's order.
func Profiles() []Profile {
	return []Profile{London(), Berlin(), Vienna()}
}

// Small returns a scaled-down city for tests and examples: the Berlin
// street plan with a few thousand POIs. It generates in milliseconds.
func Small(seed int64) Profile {
	p := Berlin()
	p.Name = "Smallville"
	p.Seed = seed
	p.Extent = geo.R(0, 0, 0.08, 0.06)
	p.AvenuesH, p.AvenuesV, p.Diagonals = 8, 10, 3
	p.LocalStreets = 150
	p.NumPOIs = 6_000
	p.NumPhotos = 1_200
	p.HotStreetPhotos = 250
	return p
}

// Tiny returns a miniature city for the correctness harness: a handful of
// avenues, a few dozen local streets and a few hundred POIs, small enough
// that the brute-force oracle (pairwise point-to-segment distances over
// every POI × segment pair) evaluates in microseconds, yet large enough to
// exercise multi-cell segments, street ties and planted-density skew.
// soicheck sweeps hundreds of Tiny seeds per run.
func Tiny(seed int64) Profile {
	p := Small(seed)
	p.Name = "Tinytown"
	p.Extent = geo.R(0, 0, 0.02, 0.016)
	p.AvenuesH, p.AvenuesV, p.Diagonals = 3, 4, 1
	p.LocalStreets = 24
	p.NumPOIs = 320
	p.NumPhotos = 160
	p.HotStreetPhotos = 60
	// One planted site is enough for skew; keep the densest Berlin site and
	// the luxury (weighted) site so both code paths stay covered.
	p.ShopSites = []SiteSpec{
		{
			Streets: []string{"Neue Schönhauser Straße", "Münzstraße"},
			Center:  geo.Pt(0.60, 0.62),
			Density: 1.0,
		},
		{
			Streets:  []string{"Kurfürstendamm"},
			Center:   geo.Pt(0.29, 0.39),
			Density:  0.45,
			Prestige: 3,
		},
	}
	p.SourceLists = [2][]string{
		{"Neue Schönhauser Straße", "Münzstraße"},
		{"Kurfürstendamm", "Neue Schönhauser Straße"},
	}
	p.PhotoStreet = "Neue Schönhauser Straße"
	return p
}

// Scale returns the profile with its data volume multiplied by f while
// preserving spatial density (the property the algorithms are sensitive
// to): the city extent and the avenue counts shrink by √f, so street
// spacing, POIs-per-area and segment lengths stay constant, and total
// segment/POI/photo counts scale by ≈f. Used to size benchmark runs.
func Scale(p Profile, f float64) Profile {
	if f == 1 {
		return p
	}
	lin := math.Sqrt(f)
	scaleBy := func(n int, factor float64) int {
		v := int(float64(n) * factor)
		if v < 1 && n > 0 {
			v = 1
		}
		return v
	}
	p.Extent = geo.R(
		p.Extent.MinX, p.Extent.MinY,
		p.Extent.MinX+p.Extent.Width()*lin,
		p.Extent.MinY+p.Extent.Height()*lin,
	)
	p.AvenuesH = scaleBy(p.AvenuesH, lin)
	p.AvenuesV = scaleBy(p.AvenuesV, lin)
	p.Diagonals = scaleBy(p.Diagonals, lin)
	p.LocalStreets = scaleBy(p.LocalStreets, f)
	p.NumPOIs = scaleBy(p.NumPOIs, f)
	p.NumPhotos = scaleBy(p.NumPhotos, f)
	p.HotStreetPhotos = scaleBy(p.HotStreetPhotos, f)
	return p
}
