package engine

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
)

// buildIndex creates a deterministic scenario with a handful of streets
// and enough POIs that queries do real work.
func buildIndex(t testing.TB) *core.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	nb := network.NewBuilder()
	for s := 0; s < 12; s++ {
		y := float64(s) * 0.7
		nb.AddStreet("street", []geo.Point{geo.Pt(0, y), geo.Pt(3, y+rng.Float64()*0.2)})
	}
	net, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	kws := []string{"shop", "food", "museum", "park"}
	pb := poi.NewBuilder(nil)
	for i := 0; i < 400; i++ {
		var tags []string
		for _, kw := range kws {
			if rng.Float64() < 0.4 {
				tags = append(tags, kw)
			}
		}
		pb.Add(geo.Pt(rng.Float64()*3, rng.Float64()*8), tags)
	}
	ix, err := core.NewIndex(net, pb.Build(), core.IndexConfig{CellSize: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// sameResults requires identical street/interest sequences.
func sameResults(t *testing.T, got, want []core.StreetResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Street != want[i].Street || math.Abs(got[i].Interest-want[i].Interest) > 1e-12 {
			t.Fatalf("rank %d: got (%d, %v), want (%d, %v)",
				i, got[i].Street, got[i].Interest, want[i].Street, want[i].Interest)
		}
	}
}

func testQueries() []core.Query {
	return []core.Query{
		{Keywords: []string{"shop"}, K: 3, Epsilon: 0.2},
		{Keywords: []string{"food", "museum"}, K: 5, Epsilon: 0.15},
		{Keywords: []string{"park"}, K: 2, Epsilon: 0.3},
		{Keywords: []string{"shop", "food", "park"}, K: 8, Epsilon: 0.25},
		{Keywords: []string{"museum"}, K: 1, Epsilon: 0.1},
	}
}

func TestDoMatchesSOI(t *testing.T) {
	ix := buildIndex(t)
	e := New(ix, Config{})
	for _, q := range testQueries() {
		want, _, err := ix.SOI(q)
		if err != nil {
			t.Fatal(err)
		}
		res := e.Do(q)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		sameResults(t, res.Streets, want)
	}
}

func TestCacheHitAndMetrics(t *testing.T) {
	ix := buildIndex(t)
	e := New(ix, Config{})
	q := testQueries()[0]
	first := e.Do(q)
	if first.Cached {
		t.Fatal("first evaluation reported cached")
	}
	second := e.Do(q)
	if !second.Cached {
		t.Fatal("second evaluation not served from cache")
	}
	sameResults(t, second.Streets, first.Streets)
	m := e.Metrics()
	if m.Queries != 2 || m.CacheHits != 1 || m.Evaluations != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	ix := buildIndex(t)
	e := New(ix, Config{})
	e.Do(core.Query{Keywords: []string{"shop", "food"}, K: 3, Epsilon: 0.2})
	res := e.Do(core.Query{Keywords: []string{" FOOD ", "Shop", "food"}, K: 3, Epsilon: 0.2})
	if !res.Cached {
		t.Fatal("normalized-equal query missed the cache")
	}
}

func TestLRUEviction(t *testing.T) {
	ix := buildIndex(t)
	e := New(ix, Config{CacheSize: 2})
	qs := testQueries()
	e.Do(qs[0])
	e.Do(qs[1])
	e.Do(qs[2]) // evicts qs[0]
	if e.cache.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", e.cache.len())
	}
	if res := e.Do(qs[0]); res.Cached {
		t.Fatal("evicted entry served from cache")
	}
	// qs[2] was most recently used before the qs[0] re-evaluation and
	// must have survived.
	if res := e.Do(qs[2]); !res.Cached {
		t.Fatal("recently used entry was evicted")
	}
}

func TestCacheDisabled(t *testing.T) {
	ix := buildIndex(t)
	e := New(ix, Config{CacheSize: -1})
	q := testQueries()[0]
	e.Do(q)
	if res := e.Do(q); res.Cached {
		t.Fatal("cache disabled but result served from cache")
	}
	if m := e.Metrics(); m.Evaluations != 2 {
		t.Fatalf("evaluations = %d, want 2", m.Evaluations)
	}
}

func TestInvalidate(t *testing.T) {
	ix := buildIndex(t)
	e := New(ix, Config{})
	q := testQueries()[0]
	e.Do(q)
	e.Invalidate()
	if res := e.Do(q); res.Cached {
		t.Fatal("cache not invalidated")
	}
}

func TestInvalidQuery(t *testing.T) {
	ix := buildIndex(t)
	e := New(ix, Config{})
	res := e.Do(core.Query{})
	if res.Err == nil {
		t.Fatal("expected validation error")
	}
	if res.Cached {
		t.Fatal("error result reported cached")
	}
}

func TestBatchOrderAndEquivalence(t *testing.T) {
	ix := buildIndex(t)
	// Cache disabled so every batch entry actually evaluates.
	e := New(ix, Config{Workers: 4, CacheSize: -1})
	qs := testQueries()
	// Repeat the workload so the batch exceeds the worker count.
	var batch []core.Query
	for i := 0; i < 8; i++ {
		batch = append(batch, qs...)
	}
	results := e.Batch(batch)
	if len(results) != len(batch) {
		t.Fatalf("got %d results, want %d", len(results), len(batch))
	}
	for i, q := range batch {
		want, _, err := ix.SOI(q)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Err != nil {
			t.Fatal(results[i].Err)
		}
		sameResults(t, results[i].Streets, want)
	}
}

func TestBatchEmpty(t *testing.T) {
	e := New(buildIndex(t), Config{})
	if res := e.Batch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}

// TestConcurrentMixedQueries is the shared-index concurrency test: many
// goroutines issue a mix of queries against one executor and every
// result must equal the sequential answer. Run under -race this also
// proves the index read paths are race-free.
func TestConcurrentMixedQueries(t *testing.T) {
	ix := buildIndex(t)
	qs := testQueries()
	want := make([][]core.StreetResult, len(qs))
	for i, q := range qs {
		res, _, err := ix.SOI(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	e := New(ix, Config{Workers: 8})
	const goroutines = 16
	const perG = 30
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				j := rng.Intn(len(qs))
				res := e.Do(qs[j])
				if res.Err != nil {
					errs <- res.Err.Error()
					return
				}
				if len(res.Streets) != len(want[j]) {
					errs <- "result length mismatch"
					return
				}
				for r := range res.Streets {
					if res.Streets[r].Street != want[j][r].Street ||
						res.Streets[r].Interest != want[j][r].Interest {
						errs <- "result mismatch vs sequential"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	m := e.Metrics()
	if m.Queries != goroutines*perG {
		t.Fatalf("queries = %d, want %d", m.Queries, goroutines*perG)
	}
	if m.Evaluations+m.CacheHits+m.DedupHits != m.Queries {
		t.Fatalf("counters do not add up: %+v", m)
	}
}

// TestConcurrentIdenticalQueries exercises the in-flight deduplication
// path: identical queries racing with caching disabled must all succeed
// and agree.
func TestConcurrentIdenticalQueries(t *testing.T) {
	ix := buildIndex(t)
	e := New(ix, Config{Workers: 8, CacheSize: -1})
	q := testQueries()[3]
	want, _, err := ix.SOI(q)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 32
	results := make([]Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = e.Do(q)
		}(g)
	}
	wg.Wait()
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		sameResults(t, res.Streets, want)
	}
	m := e.Metrics()
	if m.Evaluations+m.DedupHits != goroutines {
		t.Fatalf("counters do not add up: %+v", m)
	}
}
