package engine

// Tests for the executor's epoch threading: a Config.Source makes every
// evaluation resolve, pin and release the current index epoch, and keys
// the result cache by the epoch's sequence number so entries cached
// under one epoch can never answer queries after the next publish.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
)

// fakeSource is a hand-driven EpochSource: tests swap epochs explicitly
// and count acquire/release pairs.
type fakeSource struct {
	mu       sync.Mutex
	seq      uint64
	ix       *core.Index
	mass     *core.MassCache
	acquires atomic.Int64
	releases atomic.Int64
}

func (s *fakeSource) swap(seq uint64, ix *core.Index) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq, s.ix, s.mass = seq, ix, core.NewMassCache(0)
}

func (s *fakeSource) AcquireEpoch() (uint64, *core.Index, *core.MassCache, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acquires.Add(1)
	return s.seq, s.ix, s.mass, func() { s.releases.Add(1) }
}

// buildIndexWith builds an index over n seeded POIs (different n ⇒
// different answers, standing in for different epochs' corpora).
func buildIndexWith(t testing.TB, n int) *core.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	nb := network.NewBuilder()
	for s := 0; s < 12; s++ {
		y := float64(s) * 0.7
		nb.AddStreet("street", []geo.Point{geo.Pt(0, y), geo.Pt(3, y+rng.Float64()*0.2)})
	}
	net, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	kws := []string{"shop", "food", "museum", "park"}
	pb := poi.NewBuilder(nil)
	for i := 0; i < n; i++ {
		var tags []string
		for _, kw := range kws {
			if rng.Float64() < 0.4 {
				tags = append(tags, kw)
			}
		}
		pb.Add(geo.Pt(rng.Float64()*3, rng.Float64()*8), tags)
	}
	ix, err := core.NewIndex(net, pb.Build(), core.IndexConfig{CellSize: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestEpochKeyedCacheNeverServesAcrossEpochs(t *testing.T) {
	src := &fakeSource{}
	src.swap(1, buildIndexWith(t, 400))
	e := New(nil, Config{Source: src})
	q := core.Query{Keywords: []string{"shop"}, K: 5, Epsilon: 0.4}

	first := e.Do(q)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Epoch != 1 || first.Cached {
		t.Fatalf("first = {Epoch %d Cached %t}, want fresh epoch-1 evaluation", first.Epoch, first.Cached)
	}
	hit := e.Do(q)
	if !hit.Cached || hit.Epoch != 1 {
		t.Fatalf("repeat on same epoch = {Epoch %d Cached %t}, want epoch-1 cache hit", hit.Epoch, hit.Cached)
	}

	// Publish a different corpus as epoch 2: the same query must be
	// re-evaluated (the epoch-1 entry is unreachable by key) and answer
	// from the new index.
	src.swap(2, buildIndexWith(t, 150))
	second := e.Do(q)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if second.Cached || second.Epoch != 2 {
		t.Fatalf("post-publish = {Epoch %d Cached %t}, want fresh epoch-2 evaluation", second.Epoch, second.Cached)
	}
	if len(second.Streets) == len(first.Streets) {
		same := true
		for i := range second.Streets {
			if second.Streets[i].Street != first.Streets[i].Street ||
				second.Streets[i].Interest != first.Streets[i].Interest {
				same = false
				break
			}
		}
		if same {
			t.Fatal("post-publish answer identical to pre-publish answer over a different corpus: stale cache entry served")
		}
	}

	// The old epoch's entry must not shadow the new one even after the
	// new epoch is cached.
	hit2 := e.Do(q)
	if !hit2.Cached || hit2.Epoch != 2 {
		t.Fatalf("repeat on epoch 2 = {Epoch %d Cached %t}, want epoch-2 cache hit", hit2.Epoch, hit2.Cached)
	}
}

func TestEpochPinnedAndReleasedPerEvaluation(t *testing.T) {
	src := &fakeSource{}
	src.swap(1, buildIndexWith(t, 200))
	e := New(nil, Config{Source: src})
	if e.mass != nil {
		t.Fatal("executor built a static mass cache despite an epoch source; masses must be epoch-owned")
	}
	qs := []core.Query{
		{Keywords: []string{"shop"}, K: 3, Epsilon: 0.4},
		{Keywords: []string{"food"}, K: 5, Epsilon: 0.4},
		{Keywords: []string{"shop"}, K: 3, Epsilon: 0.4}, // cache hit still pins
	}
	for _, q := range qs {
		if res := e.Do(q); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	res := e.Batch(qs)
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Epoch != 1 {
			t.Fatalf("batch result epoch = %d, want 1", r.Epoch)
		}
	}
	if a, r := src.acquires.Load(), src.releases.Load(); a == 0 || a != r {
		t.Fatalf("acquires %d != releases %d; every evaluation must release its epoch pin", a, r)
	}
}

func TestStaticExecutorIsEpochZero(t *testing.T) {
	e := New(buildIndex(t), Config{})
	res := e.Do(core.Query{Keywords: []string{"shop"}, K: 3, Epsilon: 0.4})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Epoch != 0 {
		t.Fatalf("static executor epoch = %d, want 0", res.Epoch)
	}
}
