package engine

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// TestRecorderCounters runs a deterministic sequence through a recorded
// executor and checks the observability counters against exactly known
// traffic: one evaluation, one result-cache hit, one batch.
func TestRecorderCounters(t *testing.T) {
	ix := buildIndex(t)
	rec := stats.NewRecorder()
	e := New(ix, Config{Recorder: rec})
	if e.Recorder() != rec {
		t.Fatal("Recorder() does not return the configured recorder")
	}
	q := testQueries()[0]
	if res := e.Do(q); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := e.Do(q); res.Err != nil || !res.Cached {
		t.Fatalf("repeat query: cached=%v err=%v", res.Cached, res.Err)
	}
	for _, r := range e.Batch(testQueries()[1:3]) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	s := rec.Snapshot().Engine
	if s.Queries != 4 {
		t.Errorf("queries = %d, want 4", s.Queries)
	}
	if s.ResultCacheHits != 1 || s.ResultCacheMisses != 3 {
		t.Errorf("result cache hits/misses = %d/%d, want 1/3", s.ResultCacheHits, s.ResultCacheMisses)
	}
	if s.Evaluations != 3 {
		t.Errorf("evaluations = %d, want 3", s.Evaluations)
	}
	if s.BatchRequests != 1 || s.BatchQueries != 2 || s.BatchGroups != 2 {
		t.Errorf("batch = %d requests / %d queries / %d groups, want 1/2/2",
			s.BatchRequests, s.BatchQueries, s.BatchGroups)
	}
	if s.QueryLatency.Count != 3 {
		t.Errorf("latency observations = %d, want 3", s.QueryLatency.Count)
	}
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Errorf("idle gauges in_flight=%d queue_depth=%d, want 0/0", s.InFlight, s.QueueDepth)
	}
	if s.PeakInFlight < 1 {
		t.Errorf("peak in-flight = %d, want ≥ 1", s.PeakInFlight)
	}
	if s.BusyNanos <= 0 {
		t.Errorf("busy time = %d ns, want > 0", s.BusyNanos)
	}
	c := rec.Snapshot().Core
	if c.Evaluations != 3 {
		t.Errorf("core evaluations = %d, want 3", c.Evaluations)
	}
	if c.SL1CellsPopped == 0 || c.SegmentsFinal == 0 {
		t.Errorf("core counters carry no work: %+v", c)
	}
}

// TestRecorderConcurrent folds many concurrent evaluations through one
// recorder; under -race this is the proof the recording points are
// race-clean, and the query count must still be exact.
func TestRecorderConcurrent(t *testing.T) {
	ix := buildIndex(t)
	rec := stats.NewRecorder()
	e := New(ix, Config{Workers: 4, CacheSize: -1, Recorder: rec})
	queries := testQueries()
	const rounds = 20
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q core.Query) {
				defer wg.Done()
				if res := e.Do(q); res.Err != nil {
					t.Error(res.Err)
				}
			}(q)
		}
	}
	wg.Wait()
	s := rec.Snapshot().Engine
	total := int64(rounds * len(queries))
	if s.Queries != total {
		t.Errorf("queries = %d, want %d", s.Queries, total)
	}
	// Every query either ran or joined an identical in-flight run; the
	// cache is disabled so nothing is answered without an evaluation.
	if s.Evaluations+s.DedupJoins != total {
		t.Errorf("evaluations %d + dedup joins %d ≠ %d queries", s.Evaluations, s.DedupJoins, total)
	}
	if s.QueryLatency.Count != s.Evaluations {
		t.Errorf("latency observations = %d, want one per evaluation %d", s.QueryLatency.Count, s.Evaluations)
	}
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Errorf("idle gauges in_flight=%d queue_depth=%d, want 0/0", s.InFlight, s.QueueDepth)
	}
	if s.PeakInFlight > 4 {
		t.Errorf("peak in-flight = %d exceeds worker bound 4", s.PeakInFlight)
	}
}
