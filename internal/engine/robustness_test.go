package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
)

// robustQuery is a valid query distinct from testQueries so chaos tests
// don't collide with cached results from other tests' executors.
func robustQuery(k int) core.Query {
	return core.Query{Keywords: []string{"shop", "museum"}, K: k, Epsilon: 0.22}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestExpiredContextSkipsEvaluation: a context that is already past its
// deadline must fail with context.DeadlineExceeded before the SOI
// algorithm runs — the Evaluations counter stays put and the deadline
// counter accounts the query.
func TestExpiredContextSkipsEvaluation(t *testing.T) {
	rec := stats.NewRecorder()
	e := New(buildIndex(t), Config{Recorder: rec})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res := e.DoCtx(ctx, robustQuery(3))
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", res.Err)
	}
	m := e.Metrics()
	if m.Evaluations != 0 {
		t.Fatalf("evaluations = %d, want 0 (expired query must not evaluate)", m.Evaluations)
	}
	if m.DeadlineExceeded != 1 {
		t.Fatalf("deadline counter = %d, want 1", m.DeadlineExceeded)
	}
	if got := rec.Snapshot().Engine.DeadlineExceeded; got != 1 {
		t.Fatalf("recorder deadline counter = %d, want 1", got)
	}
}

// TestQueryTimeoutCutsLongEvaluation: the engine-level QueryTimeout must
// cut an evaluation wedged inside the algorithm (a Block fault at the
// core filter checkpoint) and report context.DeadlineExceeded promptly.
func TestQueryTimeoutCutsLongEvaluation(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	faults.Activate(core.SiteFilter, faults.Fault{Block: block})
	defer faults.Deactivate(core.SiteFilter)

	e := New(buildIndex(t), Config{QueryTimeout: 50 * time.Millisecond})
	done := make(chan Result, 1)
	go func() { done <- e.Do(robustQuery(3)) }()
	select {
	case res := <-done:
		if !errors.Is(res.Err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", res.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("QueryTimeout did not cut the wedged evaluation")
	}
	if m := e.Metrics(); m.DeadlineExceeded != 1 {
		t.Fatalf("deadline counter = %d, want 1", m.DeadlineExceeded)
	}
}

// TestCancellationObservedAtCheckpoint: cancelling the caller's context
// while the evaluation is parked inside the filter loop must return
// context.Canceled with bounded latency and bump the cancelled counter.
func TestCancellationObservedAtCheckpoint(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	faults.Activate(core.SiteFilter, faults.Fault{Block: block})
	defer faults.Deactivate(core.SiteFilter)

	e := New(buildIndex(t), Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() { done <- e.DoCtx(ctx, robustQuery(3)) }()
	waitFor(t, "filter checkpoint visit", func() bool { return faults.Visits(core.SiteFilter) > 0 })
	cancel()
	select {
	case res := <-done:
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", res.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation was not observed at a checkpoint")
	}
	if m := e.Metrics(); m.Cancelled != 1 {
		t.Fatalf("cancelled counter = %d, want 1", m.Cancelled)
	}
}

// TestShedWhenQueueFull: with one worker wedged and the wait queue at
// depth, the next query must be shed immediately with ErrOverloaded
// instead of queueing, and every admitted query must complete once the
// worker unwedges.
func TestShedWhenQueueFull(t *testing.T) {
	block := make(chan struct{})
	faults.Activate(SiteEvaluate, faults.Fault{Block: block})
	defer faults.Deactivate(SiteEvaluate)

	rec := stats.NewRecorder()
	e := New(buildIndex(t), Config{Workers: 1, QueueDepth: 1, CacheSize: -1, Recorder: rec})

	// q1 takes the only worker slot and parks at the evaluate site.
	r1 := make(chan Result, 1)
	go func() { r1 <- e.Do(robustQuery(1)) }()
	waitFor(t, "worker wedged", func() bool { return faults.Visits(SiteEvaluate) > 0 })

	// q2 (a distinct query, so it cannot dedup-join q1) fills the queue.
	r2 := make(chan Result, 1)
	go func() { r2 <- e.Do(robustQuery(2)) }()
	waitFor(t, "queue occupied", func() bool { return e.queued.Load() == 1 })

	// q3 finds the queue full and must be shed synchronously.
	res := e.Do(robustQuery(3))
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", res.Err)
	}

	close(block) // unwedge: both admitted queries must finish cleanly
	for i, ch := range []chan Result{r1, r2} {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("admitted query %d failed after unwedge: %v", i+1, r.Err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("admitted query %d never completed", i+1)
		}
	}
	if m := e.Metrics(); m.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", m.Shed)
	}
	if got := rec.Snapshot().Engine.Shed; got != 1 {
		t.Fatalf("recorder shed counter = %d, want 1", got)
	}
}

// TestShedOnMaxQueueWait: an admitted query whose queue wait exceeds
// MaxQueueWait is shed with ErrOverloaded rather than waiting forever.
func TestShedOnMaxQueueWait(t *testing.T) {
	block := make(chan struct{})
	faults.Activate(SiteEvaluate, faults.Fault{Block: block})
	defer faults.Deactivate(SiteEvaluate)

	e := New(buildIndex(t), Config{Workers: 1, MaxQueueWait: 20 * time.Millisecond, CacheSize: -1})
	r1 := make(chan Result, 1)
	go func() { r1 <- e.Do(robustQuery(1)) }()
	waitFor(t, "worker wedged", func() bool { return faults.Visits(SiteEvaluate) > 0 })

	res := e.Do(robustQuery(2))
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded after max queue wait", res.Err)
	}
	close(block)
	if r := <-r1; r.Err != nil {
		t.Fatalf("wedged query failed after unwedge: %v", r.Err)
	}
	if m := e.Metrics(); m.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", m.Shed)
	}
}

// TestPanicRecoveredIsolatedPerQuery: an injected evaluation panic must
// surface as a per-query *PanicError, bump the panics counter, release
// the worker slot, and leave the executor serving — a follow-up of the
// same query (re-evaluated, since errors are never cached) succeeds.
func TestPanicRecoveredIsolatedPerQuery(t *testing.T) {
	faults.Activate(SiteEvaluate, faults.Fault{Panic: true, PanicValue: "chaos", Times: 1})
	defer faults.Deactivate(SiteEvaluate)

	rec := stats.NewRecorder()
	e := New(buildIndex(t), Config{Workers: 1, Recorder: rec})
	res := e.Do(robustQuery(3))
	var pe *PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("err = %v, want *PanicError", res.Err)
	}
	if pe.Value != "chaos" {
		t.Fatalf("panic value = %v, want %q", pe.Value, "chaos")
	}
	if m := e.Metrics(); m.PanicsRecovered != 1 {
		t.Fatalf("panics counter = %d, want 1", m.PanicsRecovered)
	}
	if got := rec.Snapshot().Engine.PanicsRecovered; got != 1 {
		t.Fatalf("recorder panics counter = %d, want 1", got)
	}
	// The slot was released and the flight entry cleared: the retry runs.
	retry := e.Do(robustQuery(3))
	if retry.Err != nil {
		t.Fatalf("retry after recovered panic failed: %v", retry.Err)
	}
	if retry.Cached {
		t.Fatal("retry reported Cached, but errored results must never be cached")
	}
}

// TestDedupJoinedErrorNotCached is the regression test for the eval bug
// where a joiner inheriting a leader's *error* still reported
// Cached: true. The join branch is driven directly: a finished flight
// carrying an error is planted in the in-flight table, and the joining
// query must report the error with Cached false while still counting as
// a dedup join.
func TestDedupJoinedErrorNotCached(t *testing.T) {
	e := New(buildIndex(t), Config{})
	q := robustQuery(4)
	boom := errors.New("evaluation failed")
	f := &flight{done: make(chan struct{})}
	f.res = Result{Err: boom, Cached: true} // worst case: stale Cached bit
	close(f.done)
	key := queryKey(q, e.strat, 0)
	e.flightMu.Lock()
	e.flight[key] = f
	e.flightMu.Unlock()
	defer func() {
		e.flightMu.Lock()
		delete(e.flight, key)
		e.flightMu.Unlock()
	}()

	res := e.Do(q)
	if !errors.Is(res.Err, boom) {
		t.Fatalf("err = %v, want the joined flight's error", res.Err)
	}
	if res.Cached {
		t.Fatal("joined errored result reported Cached: true; errors are never cached")
	}
	if m := e.Metrics(); m.DedupHits != 1 {
		t.Fatalf("dedup hits = %d, want 1", m.DedupHits)
	}
}

// TestLeaderCancelledJoinerRetries: when a dedup leader is cancelled, a
// joiner whose own context is still live must not inherit the leader's
// context error — it retries the evaluation itself and returns the real
// answer.
func TestLeaderCancelledJoinerRetries(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	// Times: 1 — only the leader parks; the joiner's retry runs through.
	faults.Activate(SiteEvaluate, faults.Fault{Block: block, Times: 1})
	defer faults.Deactivate(SiteEvaluate)

	ix := buildIndex(t)
	e := New(ix, Config{CacheSize: -1})
	q := robustQuery(5)
	want, _, err := ix.SOI(q)
	if err != nil {
		t.Fatal(err)
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leader := make(chan Result, 1)
	go func() { leader <- e.DoCtx(leaderCtx, q) }()
	waitFor(t, "leader wedged", func() bool { return faults.Visits(SiteEvaluate) > 0 })

	joiner := make(chan Result, 1)
	go func() { joiner <- e.Do(q) }()
	// Give the joiner a beat to park on the leader's flight; if it loses
	// the race it simply evaluates as its own leader, which converges on
	// the same asserted outcome.
	time.Sleep(50 * time.Millisecond)
	cancelLeader()

	lres := <-leader
	if !errors.Is(lres.Err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", lres.Err)
	}
	select {
	case jres := <-joiner:
		if jres.Err != nil {
			t.Fatalf("joiner inherited the leader's failure: %v", jres.Err)
		}
		sameResults(t, jres.Streets, want)
	case <-time.After(2 * time.Second):
		t.Fatal("joiner never completed after the leader was cancelled")
	}
	if m := e.Metrics(); m.Cancelled != 1 {
		t.Fatalf("cancelled counter = %d, want 1 (leader only)", m.Cancelled)
	}
}

// TestBatchCtxClassifiesPerMember: a batch under an already-expired
// context fails every member with the context error and accounts each in
// the deadline counter.
func TestBatchCtxClassifiesPerMember(t *testing.T) {
	e := New(buildIndex(t), Config{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	qs := []core.Query{robustQuery(1), robustQuery(2), {Keywords: []string{"park"}, K: 2, Epsilon: 0.3}}
	out := e.BatchCtx(ctx, qs)
	for i, r := range out {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("batch[%d] err = %v, want context.DeadlineExceeded", i, r.Err)
		}
	}
	m := e.Metrics()
	// robustQuery(1) and robustQuery(2) coalesce into one group, the park
	// query is its own group; classification is per member, not per group.
	if m.DeadlineExceeded != uint64(len(qs)) {
		t.Fatalf("deadline counter = %d, want %d (one per batch member)", m.DeadlineExceeded, len(qs))
	}
	if m.Evaluations != 0 {
		t.Fatalf("evaluations = %d, want 0", m.Evaluations)
	}
}
