// Package engine provides the parallel k-SOI query engine: a batch
// executor that evaluates many ⟨Ψ, k, ε⟩ queries concurrently over one
// shared, read-only core.Index with a bounded worker pool, deduplicating
// identical in-flight queries and memoizing recent answers in an LRU
// cache keyed by the normalized query. Batches also share work below the
// result level: queries that differ only in k are coalesced into one
// evaluation at the largest k (every smaller answer is a rank prefix of
// the larger one), and exact segment masses are pooled in a
// core.MassCache keyed by ⟨segment, Ψ, ε⟩. A batch over one index
// therefore performs strictly less work than evaluating its queries in
// isolation, with bit-identical results.
//
// The executor relies on the Index read-only contract (see
// internal/core): after construction the index is immutable under query
// traffic, so any number of executor workers may read it concurrently.
// If the underlying index is mutated (core.Index.AddPOI), call
// Invalidate to drop the now-stale cached results.
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/vocab"
)

// ErrOverloaded is returned when admission control sheds a query instead
// of queueing it: the bounded wait queue was at depth, or the configured
// maximum queue wait elapsed before a worker slot freed up. Callers
// should treat it as retryable backpressure (HTTP servers map it to
// 503 with a Retry-After hint).
var ErrOverloaded = errors.New("engine: overloaded")

// PanicError is the per-query error a recovered evaluation panic is
// converted into. The process keeps serving; Value carries the panic
// payload for logging.
type PanicError struct {
	Value any
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: evaluation panicked: %v", e.Value)
}

// SiteEvaluate is the fault-injection site visited by every evaluation
// after it acquires a worker slot, before the SOI algorithm runs (see
// internal/faults). The chaos suite arms it to wedge or crash workers.
const SiteEvaluate = "engine.evaluate"

// EpochSource resolves the index generation a query evaluates against.
// It is implemented by internal/ingest's Ingestor: AcquireEpoch pins the
// current immutable epoch (an atomic load plus a refcount increment —
// readers never lock) and returns its dense sequence number, its index,
// its private mass cache (may be nil) and a release function the
// executor calls when the evaluation ends. The sequence number prefixes
// every result-cache and in-flight key, so entries cached under one
// epoch can never serve queries after a publish installs the next.
//
// The interface is defined here — in terms of core types only — so the
// ingest package can implement it without an import cycle.
type EpochSource interface {
	AcquireEpoch() (seq uint64, ix *core.Index, mass *core.MassCache, release func())
}

// Config controls executor construction.
type Config struct {
	// Workers bounds the number of queries evaluated concurrently by
	// Batch; 0 or negative means GOMAXPROCS.
	Workers int
	// CacheSize is the maximum number of query results kept in the LRU
	// cache. 0 means DefaultCacheSize; negative disables caching.
	CacheSize int
	// MassCacheEntries bounds the shared segment-mass cache through which
	// evaluations reuse each other's exact per-segment work. 0 means
	// core.DefaultMassCacheEntries; negative disables the cache. Sharing
	// changes only the work performed, never the results: cached masses
	// are bit-identical to standalone evaluation.
	MassCacheEntries int
	// Strategy is the source-list access strategy used for every query.
	Strategy core.Strategy
	// QueueDepth bounds how many queries may wait for a worker slot at
	// once; excess load is shed immediately with ErrOverloaded instead of
	// queueing unboundedly. 0 disables the bound (every query waits),
	// preserving the pre-admission-control behavior for embedded use.
	QueueDepth int
	// MaxQueueWait bounds how long an admitted query may wait for a
	// worker slot before being shed with ErrOverloaded. 0 means no bound.
	MaxQueueWait time.Duration
	// QueryTimeout is the per-query deadline applied to every Do/Batch
	// query on top of the caller's context. 0 means no engine-level
	// deadline; a caller deadline that is earlier always wins.
	QueryTimeout time.Duration
	// Recorder, when non-nil, receives cumulative observability counters
	// and latency histograms: cache traffic, worker-pool pressure,
	// per-query wall time, and the folded Algorithm 1 pruning counters of
	// every evaluation. A nil recorder disables recording at the cost of
	// one branch per query.
	Recorder *stats.Recorder
	// Source, when non-nil, makes the executor resolve the serving index
	// per query through the epoch source instead of the fixed index
	// passed to New (which may then be nil): each evaluation pins the
	// current epoch for its duration and its results are cached under
	// the epoch's sequence number. When nil, the executor serves the
	// fixed index as implicit epoch 0, preserving the static behavior.
	Source EpochSource
}

// DefaultCacheSize is the LRU capacity used when Config leaves it zero.
const DefaultCacheSize = 1024

// Result is the outcome of one query evaluation.
type Result struct {
	// Streets may be shared with the cache and other callers; treat it
	// as read-only.
	Streets []core.StreetResult
	Stats   core.Stats
	Err     error
	// Cached reports whether the result was served without a fresh
	// evaluation: from the LRU cache, or by joining an identical
	// in-flight evaluation that succeeded (Stats then describes the
	// original evaluation). Errored results are never cached, so a
	// joined error reports Cached false.
	Cached bool
	// Epoch is the sequence number of the index epoch the result was
	// evaluated against (0 for executors without an EpochSource). A
	// cached result reports the epoch it was originally evaluated at,
	// which — because cache keys are epoch-prefixed — always equals the
	// epoch current when the hit was served.
	Epoch uint64
}

// Metrics are the executor's cumulative counters; safe to read
// concurrently with query traffic.
type Metrics struct {
	// Queries counts every Do/Batch query received.
	Queries uint64
	// CacheHits counts queries answered from the LRU cache.
	CacheHits uint64
	// DedupHits counts queries that joined an identical in-flight
	// evaluation instead of starting their own.
	DedupHits uint64
	// Evaluations counts queries that ran the SOI algorithm.
	Evaluations uint64
	// Shed counts queries rejected by admission control (ErrOverloaded).
	Shed uint64
	// Cancelled counts queries that ended with context.Canceled.
	Cancelled uint64
	// DeadlineExceeded counts queries that ended with
	// context.DeadlineExceeded.
	DeadlineExceeded uint64
	// PanicsRecovered counts evaluations whose panic was isolated into a
	// per-query PanicError.
	PanicsRecovered uint64
}

// Executor evaluates k-SOI queries over one shared index. It is safe for
// concurrent use.
type Executor struct {
	ix      *core.Index
	workers int
	strat   core.Strategy
	sem     chan struct{}

	queueDepth   int           // 0 = unbounded wait queue
	maxQueueWait time.Duration // 0 = no wait bound
	queryTimeout time.Duration // 0 = no engine-level deadline
	queued       atomic.Int64  // queries currently waiting for a slot

	cache  *lruCache       // nil when result caching is disabled
	mass   *core.MassCache // nil when mass sharing is disabled
	rec    *stats.Recorder // nil when observability recording is disabled
	source EpochSource     // nil for a fixed-index executor

	flightMu sync.Mutex
	flight   map[string]*flight

	queries          atomic.Uint64
	cacheHits        atomic.Uint64
	dedupHits        atomic.Uint64
	evaluations      atomic.Uint64
	shed             atomic.Uint64
	cancelled        atomic.Uint64
	deadlineExceeded atomic.Uint64
	panicsRecovered  atomic.Uint64
}

// flight is one in-progress evaluation that late arrivals can join.
type flight struct {
	done chan struct{}
	res  Result
}

// New builds an executor over the index.
func New(ix *core.Index, cfg Config) *Executor {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{
		ix:           ix,
		workers:      workers,
		strat:        cfg.Strategy,
		sem:          make(chan struct{}, workers),
		queueDepth:   cfg.QueueDepth,
		maxQueueWait: cfg.MaxQueueWait,
		queryTimeout: cfg.QueryTimeout,
		flight:       make(map[string]*flight),
		rec:          cfg.Recorder,
		source:       cfg.Source,
	}
	switch {
	case cfg.CacheSize == 0:
		e.cache = newLRUCache(DefaultCacheSize)
	case cfg.CacheSize > 0:
		e.cache = newLRUCache(cfg.CacheSize)
	}
	// An epoch source carries a per-epoch mass cache; the executor-owned
	// cache exists only on the static path, where masses stay valid for
	// the executor's lifetime.
	if cfg.MassCacheEntries >= 0 && cfg.Source == nil {
		e.mass = core.NewMassCache(cfg.MassCacheEntries)
	}
	return e
}

// acquireEpoch resolves the epoch one evaluation runs against: the
// pinned current epoch of the source, or the fixed index as epoch 0.
func (e *Executor) acquireEpoch() (uint64, *core.Index, *core.MassCache, func()) {
	if e.source == nil {
		return 0, e.ix, e.mass, func() {}
	}
	return e.source.AcquireEpoch()
}

// Index returns the shared index the executor evaluates against.
func (e *Executor) Index() *core.Index { return e.ix }

// Workers returns the worker-pool bound.
func (e *Executor) Workers() int { return e.workers }

// Recorder returns the executor's observability recorder (nil when
// recording is disabled).
func (e *Executor) Recorder() *stats.Recorder { return e.rec }

// Metrics returns a snapshot of the cumulative counters.
func (e *Executor) Metrics() Metrics {
	return Metrics{
		Queries:          e.queries.Load(),
		CacheHits:        e.cacheHits.Load(),
		DedupHits:        e.dedupHits.Load(),
		Evaluations:      e.evaluations.Load(),
		Shed:             e.shed.Load(),
		Cancelled:        e.cancelled.Load(),
		DeadlineExceeded: e.deadlineExceeded.Load(),
		PanicsRecovered:  e.panicsRecovered.Load(),
	}
}

// Invalidate drops every cached result and shared mass contribution.
// Call after mutating the underlying index.
func (e *Executor) Invalidate() {
	if e.cache != nil {
		e.cache.clear()
	}
	if e.mass != nil {
		e.mass.Clear()
	}
}

// Do evaluates one query, consulting the cache and joining an identical
// in-flight evaluation when possible. Invalid queries yield a Result with
// Err set, mirroring core.Index.SOI.
func (e *Executor) Do(q core.Query) Result {
	return e.DoCtx(context.Background(), q)
}

// DoCtx is Do under a context: the query observes cancellation at the
// engine's queue, at dedup joins and at the algorithm's cooperative
// checkpoints, and the executor's QueryTimeout (if any) is applied on
// top of the caller's deadline. The outcome is classified into the
// shed/cancelled/deadline-exceeded counters.
func (e *Executor) DoCtx(ctx context.Context, q core.Query) Result {
	e.queries.Add(1)
	if e.rec != nil {
		e.rec.Engine.Queries.Add(1)
	}
	if err := q.Validate(); err != nil {
		// Invalid queries are not cached: the error is cheaper to
		// recompute than a cache slot.
		return Result{Err: err}
	}
	ctx, cancel := e.withTimeout(ctx)
	defer cancel()
	res := e.eval(ctx, q)
	e.classify(res.Err)
	return res
}

// withTimeout layers the engine's per-query deadline onto the caller's
// context; an earlier caller deadline always wins.
func (e *Executor) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.queryTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, e.queryTimeout)
}

// classify folds one query's terminal error into the robustness
// counters: shed (ErrOverloaded), cancelled (context.Canceled) and
// deadline-exceeded (context.DeadlineExceeded). Called exactly once per
// Do/Batch query, so the counters account queries, not evaluations.
func (e *Executor) classify(err error) {
	switch {
	case err == nil:
	case errors.Is(err, ErrOverloaded):
		e.shed.Add(1)
		if e.rec != nil {
			e.rec.Engine.Shed.Add(1)
		}
	case errors.Is(err, context.Canceled):
		e.cancelled.Add(1)
		if e.rec != nil {
			e.rec.Engine.Cancelled.Add(1)
		}
	case errors.Is(err, context.DeadlineExceeded):
		e.deadlineExceeded.Add(1)
		if e.rec != nil {
			e.rec.Engine.DeadlineExceeded.Add(1)
		}
	}
}

// isContextErr reports whether err is a cancellation or deadline error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// eval runs one validated query through the cache, the in-flight table
// and the bounded evaluation pool. Dedup joins are context-aware: a
// joiner abandons the wait when its own context ends, and a joiner whose
// leader was cancelled (a failure of the leader's context, not the
// joiner's) retries the evaluation itself instead of inheriting an error
// it did not cause.
func (e *Executor) eval(ctx context.Context, q core.Query) Result {
	seq, ix, mass, release := e.acquireEpoch()
	defer release()
	key := queryKey(q, e.strat, seq)
	for {
		if e.cache != nil {
			if res, ok := e.cache.get(key); ok {
				e.cacheHits.Add(1)
				if e.rec != nil {
					e.rec.Engine.ResultCacheHits.Add(1)
				}
				res.Cached = true
				return res
			}
			if e.rec != nil {
				e.rec.Engine.ResultCacheMisses.Add(1)
			}
		}
		e.flightMu.Lock()
		if f, ok := e.flight[key]; ok {
			e.flightMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return Result{Err: ctx.Err()}
			}
			res := f.res
			if res.Err == nil {
				e.dedupHits.Add(1)
				if e.rec != nil {
					e.rec.Engine.DedupJoins.Add(1)
				}
				res.Cached = true
				return res
			}
			if isContextErr(res.Err) && ctx.Err() == nil {
				// The leader's context ended, not ours: its flight entry
				// is gone, so loop and evaluate the query ourselves.
				continue
			}
			e.dedupHits.Add(1)
			if e.rec != nil {
				e.rec.Engine.DedupJoins.Add(1)
			}
			// Errors are never cached, so a joined error is Cached: false.
			res.Cached = false
			return res
		}
		f := &flight{done: make(chan struct{})}
		e.flight[key] = f
		e.flightMu.Unlock()

		streets, st, err := e.evaluate(ctx, q, ix, mass)
		f.res = Result{Streets: streets, Stats: st, Err: err, Epoch: seq}
		if err == nil && e.cache != nil {
			e.cache.put(key, f.res)
		}
		e.flightMu.Lock()
		delete(e.flight, key)
		e.flightMu.Unlock()
		close(f.done)
		return f.res
	}
}

// acquire claims a worker slot under admission control. A free slot is
// taken immediately; otherwise the query may wait only while the bounded
// queue has room, its context is live and the configured maximum queue
// wait has not elapsed — excess load is shed with ErrOverloaded rather
// than queued unboundedly.
func (e *Executor) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	default:
	}
	if e.queueDepth > 0 {
		if n := e.queued.Add(1); n > int64(e.queueDepth) {
			e.queued.Add(-1)
			return fmt.Errorf("%w: wait queue full (depth %d)", ErrOverloaded, e.queueDepth)
		}
		defer e.queued.Add(-1)
	}
	var timeout <-chan time.Time
	if e.maxQueueWait > 0 {
		t := time.NewTimer(e.maxQueueWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timeout:
		return fmt.Errorf("%w: queue wait exceeded %v", ErrOverloaded, e.maxQueueWait)
	}
}

// evaluate runs one SOI evaluation under the worker-pool semaphore,
// which bounds concurrent evaluations engine-wide, covering both Batch
// workers and direct Do callers (e.g. HTTP handlers). Admission control
// happens here: a query that cannot get a slot in time returns without
// evaluating. With a recorder attached it additionally observes queue
// depth, queue wait, in-flight count, evaluation wall time and the run's
// pruning counters; the nil-recorder path performs no time syscalls
// beyond the evaluation itself.
func (e *Executor) evaluate(ctx context.Context, q core.Query, ix *core.Index, mass *core.MassCache) ([]core.StreetResult, core.Stats, error) {
	rec := e.rec
	if rec == nil {
		if err := e.acquire(ctx); err != nil {
			return nil, core.Stats{}, err
		}
		defer func() { <-e.sem }()
		e.evaluations.Add(1)
		return e.run(ctx, q, ix, mass)
	}
	depth := rec.Engine.QueueDepth.Add(1)
	rec.Engine.PeakQueueDepth.SetMax(depth)
	waitStart := time.Now()
	err := e.acquire(ctx)
	rec.Engine.QueueDepth.Add(-1)
	rec.Engine.QueueWait.Observe(time.Since(waitStart))
	if err != nil {
		return nil, core.Stats{}, err
	}
	defer func() { <-e.sem }()
	e.evaluations.Add(1)
	inFlight := rec.Engine.InFlight.Add(1)
	rec.Engine.PeakInFlight.SetMax(inFlight)
	defer rec.Engine.InFlight.Add(-1)
	start := time.Now()
	streets, st, err := e.run(ctx, q, ix, mass)
	elapsed := time.Since(start)
	rec.Engine.Evaluations.Add(1)
	rec.Engine.BusyNanos.Add(elapsed.Nanoseconds())
	rec.Engine.QueryLatency.Observe(elapsed)
	st.Record(rec)
	return streets, st, err
}

// run executes one evaluation with panic isolation: a panic anywhere in
// the algorithm is recovered into a per-query *PanicError, so a crashed
// evaluation releases its worker slot (the caller's defer), wakes its
// dedup joiners with the error, and leaves the process serving.
func (e *Executor) run(ctx context.Context, q core.Query, ix *core.Index, mass *core.MassCache) (streets []core.StreetResult, st core.Stats, err error) {
	defer func() {
		if v := recover(); v != nil {
			streets, st = nil, core.Stats{}
			err = &PanicError{Value: v}
			e.panicsRecovered.Add(1)
			if e.rec != nil {
				e.rec.Engine.PanicsRecovered.Add(1)
			}
		}
	}()
	if ferr := faults.InjectCtx(ctx, SiteEvaluate); ferr != nil {
		return nil, core.Stats{}, ferr
	}
	return ix.SOIContext(ctx, q, e.strat, mass)
}

// Batch evaluates the queries concurrently over the shared index with at
// most Workers evaluations in flight, returning results in input order.
//
// Queries that share ⟨Ψ, ε, strategy⟩ and differ only in k are coalesced
// into a single evaluation at the group's largest k: the evaluation is
// exact and ranks canonically (interest descending, street id ascending),
// so every smaller-k answer is the first k entries of the larger one,
// bit-identical to evaluating it alone. A coalesced entry's Stats
// describe the shared evaluation.
func (e *Executor) Batch(qs []core.Query) []Result {
	return e.BatchCtx(context.Background(), qs)
}

// BatchCtx is Batch under a context: every group evaluation runs with
// the engine's QueryTimeout layered onto the caller's context, and a
// cancelled context fails the not-yet-evaluated remainder of the batch
// promptly (each entry independently, mirroring Batch's per-query error
// semantics).
func (e *Executor) BatchCtx(ctx context.Context, qs []core.Query) []Result {
	out := make([]Result, len(qs))
	type group struct {
		rep     core.Query // representative query; K is the group maximum
		members []int
	}
	groups := make(map[string]*group, len(qs))
	var order []string
	if e.rec != nil {
		e.rec.Engine.BatchRequests.Add(1)
		e.rec.Engine.BatchQueries.Add(int64(len(qs)))
		e.rec.Engine.Queries.Add(int64(len(qs)))
	}
	for i, q := range qs {
		e.queries.Add(1)
		if err := q.Validate(); err != nil {
			out[i] = Result{Err: err}
			continue
		}
		gk := groupKey(q, e.strat)
		g, ok := groups[gk]
		if !ok {
			g = &group{rep: q}
			groups[gk] = g
			order = append(order, gk)
		} else if q.K > g.rep.K {
			g.rep.K = q.K
		}
		g.members = append(g.members, i)
	}
	if e.rec != nil {
		e.rec.Engine.BatchGroups.Add(int64(len(order)))
	}
	workers := e.workers
	if workers > len(order) {
		workers = len(order)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				gi := int(next.Add(1)) - 1
				if gi >= len(order) {
					return
				}
				g := groups[order[gi]]
				res := e.groupEval(ctx, g.rep)
				for _, i := range g.members {
					out[i] = prefix(res, qs[i].K)
					e.classify(out[i].Err)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// groupEval evaluates one coalesced batch group with the per-query
// deadline applied per evaluation, not per batch.
func (e *Executor) groupEval(ctx context.Context, q core.Query) Result {
	ctx, cancel := e.withTimeout(ctx)
	defer cancel()
	return e.eval(ctx, q)
}

// prefix derives a smaller-k result from a shared evaluation at a larger
// k over the same ⟨Ψ, ε, strategy⟩. The slice header is re-cut rather
// than copied; Result.Streets is read-only by contract.
func prefix(res Result, k int) Result {
	if res.Err == nil && len(res.Streets) > k {
		res.Streets = res.Streets[:k]
	}
	return res
}

// writeKeyBase writes the query identity shared by every k: the keyword
// set normalized the way the index resolves it (lower-cased, trimmed,
// sorted, deduplicated), the exact bits of ε, and the access strategy.
func writeKeyBase(b *strings.Builder, q core.Query, strat core.Strategy) {
	kws := make([]string, 0, len(q.Keywords))
	for _, k := range q.Keywords {
		kws = append(kws, vocab.Normalize(k))
	}
	sort.Strings(kws)
	for i, k := range kws {
		if i > 0 && kws[i-1] == k {
			continue
		}
		b.WriteString(k)
		b.WriteByte(0x1f)
	}
	b.WriteString(strconv.FormatFloat(q.Epsilon, 'b', -1, 64))
	b.WriteByte(0x1f)
	b.WriteString(strconv.Itoa(int(strat)))
}

// queryKey is the full cache identity of a query: the epoch sequence
// number the evaluation is pinned to, the base identity, and k. The
// epoch prefix is what makes publishes invalidate by construction —
// post-publish queries look up under the new sequence and can never see
// an entry cached under an old epoch.
func queryKey(q core.Query, strat core.Strategy, seq uint64) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(seq, 10))
	b.WriteByte(0x1f)
	writeKeyBase(&b, q, strat)
	b.WriteByte(0x1f)
	b.WriteString(strconv.Itoa(q.K))
	return b.String()
}

// groupKey is the k-independent identity used to coalesce batch queries.
func groupKey(q core.Query, strat core.Strategy) string {
	var b strings.Builder
	writeKeyBase(&b, q, strat)
	return b.String()
}

// lruCache is a mutex-guarded LRU map from query key to Result.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	res Result
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) put(key string, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[string]*list.Element)
}

// len returns the number of cached results.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
