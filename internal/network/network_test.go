package network

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geo"
)

func buildL(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder()
	// Two streets forming an L with a shared corner vertex.
	b.AddStreet("Main St", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0)})
	b.AddStreet("Side St", []geo.Point{geo.Pt(2, 0), geo.Pt(2, 1)})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func TestBuilderBasic(t *testing.T) {
	n := buildL(t)
	if n.NumStreets() != 2 {
		t.Fatalf("NumStreets = %d", n.NumStreets())
	}
	if n.NumSegments() != 3 {
		t.Fatalf("NumSegments = %d", n.NumSegments())
	}
	// Corner vertex (2,0) is shared: 4 distinct vertices total.
	if n.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", n.NumVertices())
	}
	main := n.StreetByName("Main St")
	if main == nil || len(main.Segments) != 2 {
		t.Fatalf("Main St = %+v", main)
	}
	if got := main.Length(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Main St length = %v", got)
	}
	if n.StreetByName("Nope") != nil {
		t.Error("StreetByName found a ghost")
	}
}

func TestSegmentFields(t *testing.T) {
	n := buildL(t)
	for _, seg := range n.Segments() {
		if got := seg.Geom.Length(); math.Abs(got-seg.Length()) > 1e-12 {
			t.Errorf("segment %d cached length %v != geom %v", seg.ID, seg.Length(), got)
		}
		if n.Vertex(seg.From) != seg.Geom.A || n.Vertex(seg.To) != seg.Geom.B {
			t.Errorf("segment %d endpoints disagree with vertices", seg.ID)
		}
		if int(seg.Street) >= n.NumStreets() {
			t.Errorf("segment %d street out of range", seg.ID)
		}
	}
}

func TestBounds(t *testing.T) {
	n := buildL(t)
	if got := n.Bounds(); got != (geo.R(0, 0, 2, 1)) {
		t.Errorf("Bounds = %v", got)
	}
}

func TestStreetBounds(t *testing.T) {
	n := buildL(t)
	main := n.StreetByName("Main St")
	if got := n.StreetBounds(main.ID); got != (geo.R(0, 0, 2, 0)) {
		t.Errorf("StreetBounds = %v", got)
	}
}

func TestDistToStreet(t *testing.T) {
	n := buildL(t)
	main := n.StreetByName("Main St")
	if got := n.DistToStreet(geo.Pt(1, 2), main.ID); math.Abs(got-2) > 1e-12 {
		t.Errorf("DistToStreet = %v", got)
	}
	if got := n.DistToStreet(geo.Pt(1.5, 0), main.ID); got != 0 {
		t.Errorf("on-street DistToStreet = %v", got)
	}
}

func TestStats(t *testing.T) {
	n := buildL(t)
	st := n.Stats()
	if st.NumSegments != 3 || st.NumStreets != 2 || st.NumVertices != 4 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.MinSegmentLen != 1 || st.MaxSegmentLen != 1 {
		t.Errorf("segment length stats = %+v", st)
	}
	if math.Abs(st.TotalLen-3) > 1e-12 {
		t.Errorf("TotalLen = %v", st.TotalLen)
	}
}

func TestStatsEmpty(t *testing.T) {
	n := &Network{}
	st := n.Stats()
	if st.MinSegmentLen != 0 || st.MaxSegmentLen != 0 || st.NumSegments != 0 {
		t.Errorf("empty Stats = %+v", st)
	}
}

func TestBuilderRejectsShortPolyline(t *testing.T) {
	b := NewBuilder()
	b.AddStreet("bad", []geo.Point{geo.Pt(0, 0)})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for 1-point polyline")
	}
}

func TestBuilderSharedVertices(t *testing.T) {
	b := NewBuilder()
	b.AddStreet("a", []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)})
	b.AddStreet("b", []geo.Point{geo.Pt(1, 1), geo.Pt(2, 2)})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3 (shared corner)", n.NumVertices())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(n *Network)
		wantSub string
	}{
		{
			"segment stolen by wrong street",
			func(n *Network) { n.segments[0].Street = 1 },
			"street field",
		},
		{
			"broken consecutiveness",
			func(n *Network) { n.segments[1].From = n.segments[0].From },
			"not consecutive",
		},
		{
			"empty street",
			func(n *Network) { n.streets[0].Segments = nil },
			"no segments",
		},
		{
			"unknown segment reference",
			func(n *Network) { n.streets[0].Segments = []SegmentID{99} },
			"unknown segment",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			n := buildL(t)
			tc.corrupt(n)
			err := n.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidateDoubleOwnership(t *testing.T) {
	n := buildL(t)
	// Make street 1 also claim segment 0 and fix its street field so the
	// earlier checks pass and the double-ownership check fires.
	n.streets[1].Segments = append([]SegmentID{}, n.streets[1].Segments...)
	n.streets[1].Segments = append(n.streets[1].Segments, 0)
	n.segments[0].Street = 0
	err := n.Validate()
	if err == nil {
		t.Fatal("expected validation error")
	}
}

func TestValidateOrphanSegment(t *testing.T) {
	n := buildL(t)
	// Street 1 drops its only segment; give that segment no owner.
	n.streets[1].Segments = []SegmentID{n.streets[1].Segments[0]}
	n.segments[2].Street = 1
	// Remove segment 2 from street 1 to orphan it.
	n.streets[1].Segments = nil
	if err := n.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

// Property: random polylines always build into valid networks whose
// street lengths are the sums of their segment lengths.
func TestRandomNetworksValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder()
		nStreets := rng.Intn(20) + 1
		for s := 0; s < nStreets; s++ {
			nPts := rng.Intn(6) + 2
			pts := make([]geo.Point, nPts)
			for i := range pts {
				pts[i] = geo.Pt(rng.Float64()*10, rng.Float64()*10)
			}
			b.AddStreet("S", pts)
		}
		n, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		for _, st := range n.Streets() {
			var sum float64
			for _, sid := range st.Segments {
				sum += n.Segment(sid).Length()
			}
			if math.Abs(sum-st.Length()) > 1e-9 {
				t.Fatalf("street length %v != segment sum %v", st.Length(), sum)
			}
		}
	}
}
