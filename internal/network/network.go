// Package network models the road network substrate of the paper: a
// directed graph G = (V, L) whose vertices are street intersections or
// breakpoints and whose links are street segments (line segments), grouped
// into streets. Each street is a simple path of consecutive segments, each
// segment belongs to exactly one street, and segment/street lengths follow
// the paper's Euclidean definitions.
package network

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geo"
)

// VertexID identifies a vertex (intersection or breakpoint).
type VertexID = uint32

// SegmentID identifies a street segment (a link of G).
type SegmentID = uint32

// StreetID identifies a street (a simple path of consecutive segments).
type StreetID = uint32

// Segment is one link of the road network.
type Segment struct {
	ID     SegmentID
	Street StreetID
	From   VertexID
	To     VertexID
	Geom   geo.Segment
	length float64
}

// Length returns the Euclidean length of the segment, cached at build
// time (len(ℓ) in the paper).
func (s *Segment) Length() float64 { return s.length }

// Street is a named simple path of consecutive segments.
type Street struct {
	ID       StreetID
	Name     string
	Segments []SegmentID
	length   float64
}

// Length returns the total length of the street's segments (len(s)).
func (s *Street) Length() float64 { return s.length }

// Network is an immutable road network. Build one with a Builder.
type Network struct {
	vertices []geo.Point
	segments []Segment
	streets  []Street
	bounds   geo.Rect
}

// NumVertices returns |V|.
func (n *Network) NumVertices() int { return len(n.vertices) }

// NumSegments returns |L|.
func (n *Network) NumSegments() int { return len(n.segments) }

// NumStreets returns |S|.
func (n *Network) NumStreets() int { return len(n.streets) }

// Vertex returns the coordinates of vertex id.
func (n *Network) Vertex(id VertexID) geo.Point { return n.vertices[id] }

// Segment returns the segment with the given id.
func (n *Network) Segment(id SegmentID) *Segment { return &n.segments[id] }

// Street returns the street with the given id.
func (n *Network) Street(id StreetID) *Street { return &n.streets[id] }

// Segments returns the underlying segment slice; callers must not modify it.
func (n *Network) Segments() []Segment { return n.segments }

// Streets returns the underlying street slice; callers must not modify it.
func (n *Network) Streets() []Street { return n.streets }

// Bounds returns the bounding rectangle of all vertices. The zero Rect is
// returned for an empty network.
func (n *Network) Bounds() geo.Rect { return n.bounds }

// StreetByName returns the first street with the given name, or nil.
func (n *Network) StreetByName(name string) *Street {
	for i := range n.streets {
		if n.streets[i].Name == name {
			return &n.streets[i]
		}
	}
	return nil
}

// StreetBounds returns the minimum bounding rectangle of street s.
func (n *Network) StreetBounds(id StreetID) geo.Rect {
	st := n.Street(id)
	var r geo.Rect
	for i, sid := range st.Segments {
		b := n.Segment(sid).Geom.Bounds()
		if i == 0 {
			r = b
		} else {
			r = r.Union(b)
		}
	}
	return r
}

// DistToStreet returns the minimum distance from p to any segment of the
// street (dist(p, s) = min over ℓ∈s of dist(p, ℓ)).
func (n *Network) DistToStreet(p geo.Point, id StreetID) float64 {
	st := n.Street(id)
	d := math.Inf(1)
	for _, sid := range st.Segments {
		if v := n.Segment(sid).Geom.DistToPoint(p); v < d {
			d = v
		}
	}
	return d
}

// Stats summarizes a network in the shape of the paper's Table 1.
type Stats struct {
	NumVertices   int
	NumSegments   int
	NumStreets    int
	MinSegmentLen float64
	MaxSegmentLen float64
	TotalLen      float64
}

// Stats computes summary statistics over the network's segments.
func (n *Network) Stats() Stats {
	st := Stats{
		NumVertices:   len(n.vertices),
		NumSegments:   len(n.segments),
		NumStreets:    len(n.streets),
		MinSegmentLen: math.Inf(1),
	}
	if len(n.segments) == 0 {
		st.MinSegmentLen = 0
		return st
	}
	for i := range n.segments {
		l := n.segments[i].length
		st.TotalLen += l
		if l < st.MinSegmentLen {
			st.MinSegmentLen = l
		}
		if l > st.MaxSegmentLen {
			st.MaxSegmentLen = l
		}
	}
	return st
}

// Validate checks the structural invariants the algorithms rely on:
// every segment belongs to exactly one street, street segment lists are
// consecutive (each segment starts where the previous one ended), and all
// vertex references are in range. It returns the first violation found.
func (n *Network) Validate() error {
	owner := make([]int32, len(n.segments))
	for i := range owner {
		owner[i] = -1
	}
	for si := range n.streets {
		st := &n.streets[si]
		if len(st.Segments) == 0 {
			return fmt.Errorf("network: street %d (%q) has no segments", st.ID, st.Name)
		}
		var prev *Segment
		for _, sid := range st.Segments {
			if int(sid) >= len(n.segments) {
				return fmt.Errorf("network: street %d references unknown segment %d", st.ID, sid)
			}
			seg := &n.segments[sid]
			if seg.Street != st.ID {
				return fmt.Errorf("network: segment %d street field %d != owning street %d", sid, seg.Street, st.ID)
			}
			if owner[sid] != -1 {
				return fmt.Errorf("network: segment %d owned by streets %d and %d", sid, owner[sid], st.ID)
			}
			owner[sid] = int32(st.ID)
			if int(seg.From) >= len(n.vertices) || int(seg.To) >= len(n.vertices) {
				return fmt.Errorf("network: segment %d references unknown vertex", sid)
			}
			if prev != nil && prev.To != seg.From {
				return fmt.Errorf("network: street %d not consecutive at segment %d (prev.To=%d, seg.From=%d)",
					st.ID, sid, prev.To, seg.From)
			}
			prev = seg
		}
	}
	for sid, o := range owner {
		if o == -1 {
			return fmt.Errorf("network: segment %d belongs to no street", sid)
		}
	}
	return nil
}

// Builder incrementally assembles a Network.
type Builder struct {
	vertices  []geo.Point
	vertexIdx map[geo.Point]VertexID
	segments  []Segment
	streets   []Street
	err       error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{vertexIdx: make(map[geo.Point]VertexID)}
}

// AddVertex interns a vertex at p, returning its id. Vertices at identical
// coordinates are shared.
func (b *Builder) AddVertex(p geo.Point) VertexID {
	if id, ok := b.vertexIdx[p]; ok {
		return id
	}
	id := VertexID(len(b.vertices))
	b.vertices = append(b.vertices, p)
	b.vertexIdx[p] = id
	return id
}

// AddStreet appends a street given its polyline of vertex points. Each
// consecutive point pair becomes one segment. At least two points are
// required; zero-length segments are allowed (the paper's datasets contain
// near-zero segments) but identical consecutive points are rejected when
// strict is true elsewhere — here they are kept to mirror real data.
func (b *Builder) AddStreet(name string, polyline []geo.Point) StreetID {
	if b.err != nil {
		return 0
	}
	if len(polyline) < 2 {
		b.err = errors.New("network: street polyline needs at least 2 points")
		return 0
	}
	sid := StreetID(len(b.streets))
	street := Street{ID: sid, Name: name}
	prev := b.AddVertex(polyline[0])
	for _, p := range polyline[1:] {
		cur := b.AddVertex(p)
		segID := SegmentID(len(b.segments))
		g := geo.Segment{A: b.vertices[prev], B: b.vertices[cur]}
		b.segments = append(b.segments, Segment{
			ID:     segID,
			Street: sid,
			From:   prev,
			To:     cur,
			Geom:   g,
			length: g.Length(),
		})
		street.Segments = append(street.Segments, segID)
		street.length += g.Length()
		prev = cur
	}
	b.streets = append(b.streets, street)
	return sid
}

// Build finalizes the network and validates it.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := &Network{vertices: b.vertices, segments: b.segments, streets: b.streets}
	for i, v := range b.vertices {
		r := geo.Rect{MinX: v.X, MinY: v.Y, MaxX: v.X, MaxY: v.Y}
		if i == 0 {
			n.bounds = r
		} else {
			n.bounds = n.bounds.Union(r)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
