package shard

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
)

// chaosWorld builds a small partitioned world for fault injection.
func chaosWorld(t *testing.T, tiles int) *Coordinator {
	t.Helper()
	net, pois := tinyWorld(t, 9)
	w, err := Partition(net, pois, Config{Tiles: tiles, Halo: 0.0012, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	return NewCoordinator(w)
}

func chaosQuery() core.Query {
	return core.Query{Keywords: []string{"shop", "food"}, K: 5, Epsilon: 0.0005}
}

// checkNoLeaks fails if the goroutine count has not settled back to the
// pre-test level: the coordinator must join every scatter goroutine on
// every exit path.
func checkNoLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosSlowShardStillExact: one shard's evaluation is delayed; the
// answer must still arrive, bit-identical, with identical counters —
// slowness cannot change what gets merged or pruned.
func TestChaosSlowShardStillExact(t *testing.T) {
	defer faults.Reset()
	coord := chaosWorld(t, 4)
	want, wantGS, err := coord.TopK(context.Background(), chaosQuery())
	if err != nil {
		t.Fatal(err)
	}
	// Delay a single scatter visit (the second shard to launch).
	faults.Activate(SiteScatter, faults.Fault{Delay: 50 * time.Millisecond, After: 1, Times: 1})
	before := runtime.NumGoroutine()
	got, gs, err := coord.TopK(context.Background(), chaosQuery())
	if err != nil {
		t.Fatalf("slow shard: %v", err)
	}
	if d := diffResults(got, want); d != "" {
		t.Errorf("slow shard changed the answer: %s", d)
	}
	if gs.ShardsTotal != wantGS.ShardsTotal || gs.ShardsEvaluated != wantGS.ShardsEvaluated || gs.ShardsPruned != wantGS.ShardsPruned {
		t.Errorf("slow shard changed counters: %+v vs %+v", gs, wantGS)
	}
	checkNoLeaks(t, before)
}

// TestChaosPanickingShard: a shard evaluation panics; TopK must return
// a typed *ShardError wrapping *engine.PanicError, join every
// goroutine, and leave the coordinator usable for the next query.
func TestChaosPanickingShard(t *testing.T) {
	defer faults.Reset()
	coord := chaosWorld(t, 4)
	// Every shard panics, so the first gathered shard — which is never
	// pruned while the merged set is empty — deterministically reports.
	faults.Activate(SiteScatter, faults.Fault{Panic: true, PanicValue: "shard blew up"})
	before := runtime.NumGoroutine()
	_, _, err := coord.TopK(context.Background(), chaosQuery())
	if err == nil {
		t.Fatal("expected an error from the panicking shard")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not a *ShardError: %v", err, err)
	}
	var pe *engine.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not wrap *engine.PanicError", err)
	}
	if pe.Value != "shard blew up" {
		t.Errorf("panic value = %v", pe.Value)
	}
	checkNoLeaks(t, before)

	// Panic isolation: the same coordinator keeps answering once the
	// fault is gone.
	faults.Reset()
	if _, _, err := coord.TopK(context.Background(), chaosQuery()); err != nil {
		t.Fatalf("coordinator unusable after panic: %v", err)
	}
}

// TestChaosCancelledMidGather: the caller's context is cancelled while
// a shard is wedged at the scatter site; TopK must return
// context.Canceled promptly and join the wedged goroutine once the
// block clears.
func TestChaosCancelledMidGather(t *testing.T) {
	defer faults.Reset()
	coord := chaosWorld(t, 4)
	// Wedge every shard, so the gather is guaranteed to be parked on a
	// shard when the cancellation lands.
	block := make(chan struct{})
	faults.Activate(SiteScatter, faults.Fault{Block: block})
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := coord.TopK(ctx, chaosQuery())
		errc <- err
	}()
	// Let the scatter goroutines park, then pull the plug.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		// InjectCtx unblocks on context cancellation, so the wedged
		// shard reports Canceled — either via the gather wait or the
		// shard's own error, both wrapping context.Canceled.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled gather returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TopK did not return after cancellation")
	}
	close(block)
	checkNoLeaks(t, before)
}

// TestChaosGatherSiteCancelled: cancellation observed at the gather
// site itself (not inside a shard) also exits with the context error
// and no leaks.
func TestChaosGatherSiteCancelled(t *testing.T) {
	defer faults.Reset()
	coord := chaosWorld(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	faults.Activate(SiteGather, faults.Fault{Delay: time.Millisecond})
	before := runtime.NumGoroutine()
	_, _, err := coord.TopK(ctx, chaosQuery())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	checkNoLeaks(t, before)
}

// TestChaosSlowShardGetsPruned: the benchmark-style property that makes
// early termination worth having — a pruned shard never blocks the
// gather. The world is partitioned so at least one shard is pruned for
// the golden query (seed 42, 4 tiles → 2 pruned); that shard's
// evaluation is wedged forever, yet TopK completes because the gather
// loop cancels it without waiting.
func TestChaosSlowShardGetsPruned(t *testing.T) {
	defer faults.Reset()
	net, pois := tinyWorld(t, 42)
	w, err := Partition(net, pois, Config{Tiles: 4, Halo: 0.0012, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(w)
	q := goldenQuery()

	// Order of scatter launches == gather order (UB desc, id asc); the
	// golden counters say shards at positions 2 and 3 are pruned. Wedge
	// the last-launched shard: it must never be waited on.
	block := make(chan struct{})
	defer close(block)
	faults.Activate(SiteScatter, faults.Fault{Block: block, After: 3, Times: 1})
	before := runtime.NumGoroutine()
	done := make(chan struct{})
	var got []core.StreetResult
	var gs GatherStats
	go func() {
		defer close(done)
		got, gs, err = coord.TopK(context.Background(), q)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("TopK blocked on a pruned shard")
	}
	if err != nil {
		t.Fatal(err)
	}
	if gs.ShardsPruned != 2 {
		t.Errorf("pruned = %d, want 2", gs.ShardsPruned)
	}
	if len(got) != q.K {
		t.Errorf("got %d results, want %d", len(got), q.K)
	}
	checkNoLeaks(t, before)
}
