package shard

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
	"repro/internal/vocab"
)

// tinyWorld generates a deterministic test city.
func tinyWorld(t *testing.T, seed int64) (*network.Network, *poi.Corpus) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Tiny(seed))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds.Network, ds.POIs
}

// diffResults compares two rankings bit-exactly: same order, same ids,
// same Float64bits of interest and mass.
func diffResults(got, want []core.StreetResult) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d != %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Street != w.Street || g.Name != w.Name || g.BestSegment != w.BestSegment {
			return fmt.Sprintf("rank %d: got street=%d name=%q seg=%d, want street=%d name=%q seg=%d",
				i, g.Street, g.Name, g.BestSegment, w.Street, w.Name, w.BestSegment)
		}
		if math.Float64bits(g.Interest) != math.Float64bits(w.Interest) {
			return fmt.Sprintf("rank %d street %d: interest bits %x != %x (%v vs %v)",
				i, g.Street, math.Float64bits(g.Interest), math.Float64bits(w.Interest), g.Interest, w.Interest)
		}
		if math.Float64bits(g.Mass) != math.Float64bits(w.Mass) {
			return fmt.Sprintf("rank %d street %d: mass bits %x != %x",
				i, g.Street, math.Float64bits(g.Mass), math.Float64bits(w.Mass))
		}
	}
	return ""
}

func TestSplitTiles(t *testing.T) {
	cases := []struct{ n, gx, gy int }{
		{1, 1, 1}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2}, {5, 3, 2},
		{6, 3, 2}, {9, 3, 3}, {12, 4, 3}, {16, 4, 4}, {0, 1, 1},
	}
	for _, c := range cases {
		gx, gy := SplitTiles(c.n)
		if gx != c.gx || gy != c.gy {
			t.Errorf("SplitTiles(%d) = %d×%d, want %d×%d", c.n, gx, gy, c.gx, c.gy)
		}
		if c.n >= 1 && gx*gy < c.n {
			t.Errorf("SplitTiles(%d) = %d×%d holds fewer than n tiles", c.n, gx, gy)
		}
	}
}

// TestShardEquivalence is the heart of the PR's acceptance gate: the
// scatter-gather answer must be bit-identical to the single slab index
// at every shard count, for every ε (small relative to tile size, and
// equal to the halo so border replication is fully exercised).
func TestShardEquivalence(t *testing.T) {
	const halo = 0.0012
	queries := []core.Query{
		{Keywords: []string{"shop"}, K: 3, Epsilon: 0.0002},
		{Keywords: []string{"shop"}, K: 1, Epsilon: 0.0005},
		{Keywords: []string{"shop", "food"}, K: 25, Epsilon: 0.0005},
		{Keywords: []string{"food", "cafe", "market"}, K: 3, Epsilon: halo},
		{Keywords: []string{"quixotic"}, K: 3, Epsilon: 0.0005},
	}
	for _, seed := range []int64{1, 7, 42} {
		net, pois := tinyWorld(t, seed)
		single, err := core.NewSlabIndex(net, pois, core.IndexConfig{CellSize: 0.0005})
		if err != nil {
			t.Fatalf("seed %d: single index: %v", seed, err)
		}
		for _, tiles := range []int{2, 4, 9} {
			w, err := Partition(net, pois, Config{Tiles: tiles, Halo: halo, CellSize: 0.0005})
			if err != nil {
				t.Fatalf("seed %d tiles %d: partition: %v", seed, tiles, err)
			}
			coord := NewCoordinator(w)
			for qi, q := range queries {
				want, _, err := single.SOI(q)
				if err != nil {
					t.Fatalf("seed %d q%d: single SOI: %v", seed, qi, err)
				}
				got, gs, err := coord.TopK(context.Background(), q)
				if err != nil {
					t.Fatalf("seed %d tiles %d q%d: TopK: %v", seed, tiles, qi, err)
				}
				if d := diffResults(got, want); d != "" {
					t.Errorf("seed %d tiles %d q%d: sharded != single: %s", seed, tiles, qi, d)
				}
				if gs.ShardsEvaluated+gs.ShardsPruned != gs.ShardsTotal {
					t.Errorf("seed %d tiles %d q%d: counters don't partition the shards: %+v", seed, tiles, qi, gs)
				}
			}
		}
	}
}

// TestShardEquivalenceVsMapIndex cross-checks the coordinator against
// the map-based index path too (both cell sizes of the oracle matrix).
func TestShardEquivalenceVsMapIndex(t *testing.T) {
	net, pois := tinyWorld(t, 3)
	q := core.Query{Keywords: []string{"shop", "food"}, K: 5, Epsilon: 0.0005}
	for _, cell := range []float64{0.0005, 0.0013} {
		ix, err := core.NewIndex(net, pois, core.IndexConfig{CellSize: cell})
		if err != nil {
			t.Fatalf("index: %v", err)
		}
		want, _, err := ix.SOI(q)
		if err != nil {
			t.Fatalf("SOI: %v", err)
		}
		w, err := Partition(net, pois, Config{Tiles: 4, Halo: 0.0012, CellSize: cell})
		if err != nil {
			t.Fatalf("partition: %v", err)
		}
		got, _, err := NewCoordinator(w).TopK(context.Background(), q)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		if d := diffResults(got, want); d != "" {
			t.Errorf("cell %v: sharded != map index: %s", cell, d)
		}
	}
}

// TestPartitionDeterminism re-partitions the same dataset and demands an
// identical shard layout: same street assignment, POI subsets and maps.
func TestPartitionDeterminism(t *testing.T) {
	net, pois := tinyWorld(t, 11)
	a, err := Partition(net, pois, Config{Tiles: 4, Halo: 0.001, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(net, pois, Config{Tiles: 4, Halo: 0.001, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Shards) != len(b.Shards) {
		t.Fatalf("shard counts differ: %d vs %d", len(a.Shards), len(b.Shards))
	}
	for i := range a.Shards {
		sa, sb := a.Shards[i], b.Shards[i]
		if sa.TileX != sb.TileX || sa.TileY != sb.TileY {
			t.Errorf("shard %d tile differs", i)
		}
		if fmt.Sprint(sa.Streets) != fmt.Sprint(sb.Streets) {
			t.Errorf("shard %d street maps differ", i)
		}
		if fmt.Sprint(sa.Segments) != fmt.Sprint(sb.Segments) {
			t.Errorf("shard %d segment maps differ", i)
		}
		if sa.POIs.Len() != sb.POIs.Len() {
			t.Errorf("shard %d POI subsets differ: %d vs %d", i, sa.POIs.Len(), sb.POIs.Len())
		}
	}
}

// TestPartitionInvariants checks the structural contract: every street
// in exactly one shard, id maps strictly ascending (the property that
// transports tie-breaks), and every POI within Halo of a shard street
// present in that shard's corpus.
func TestPartitionInvariants(t *testing.T) {
	net, pois := tinyWorld(t, 5)
	const halo = 0.0012
	w, err := Partition(net, pois, Config{Tiles: 9, Halo: halo, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	seenStreet := make(map[network.StreetID]int)
	seenSeg := make(map[network.SegmentID]int)
	for _, s := range w.Shards {
		for i, gid := range s.Streets {
			if i > 0 && s.Streets[i-1] >= gid {
				t.Fatalf("shard %d: street map not strictly ascending at %d", s.ID, i)
			}
			seenStreet[gid]++
		}
		for i, gid := range s.Segments {
			if i > 0 && s.Segments[i-1] >= gid {
				t.Fatalf("shard %d: segment map not strictly ascending at %d", s.ID, i)
			}
			seenSeg[gid]++
		}
		if s.Net.NumStreets() != len(s.Streets) || s.Net.NumSegments() != len(s.Segments) {
			t.Fatalf("shard %d: map sizes don't match local network", s.ID)
		}
		// Halo sufficiency: every global POI within halo distance of a
		// local street must be in the shard corpus. Count by location.
		inShard := make(map[geo.Point]int)
		for _, p := range s.POIs.All() {
			inShard[p.Loc]++
		}
		for _, p := range pois.All() {
			near := false
			for local := range s.Streets {
				if s.Net.DistToStreet(p.Loc, network.StreetID(local)) <= halo {
					near = true
					break
				}
			}
			if near && inShard[p.Loc] == 0 {
				t.Fatalf("shard %d: POI at %v within halo of a shard street but absent", s.ID, p.Loc)
			}
		}
	}
	for id := 0; id < net.NumStreets(); id++ {
		if seenStreet[network.StreetID(id)] != 1 {
			t.Fatalf("street %d assigned to %d shards, want exactly 1", id, seenStreet[network.StreetID(id)])
		}
	}
	for id := 0; id < net.NumSegments(); id++ {
		if seenSeg[network.SegmentID(id)] != 1 {
			t.Fatalf("segment %d assigned to %d shards, want exactly 1", id, seenSeg[network.SegmentID(id)])
		}
	}
}

func TestEpsilonExceedsHalo(t *testing.T) {
	net, pois := tinyWorld(t, 1)
	w, err := Partition(net, pois, Config{Tiles: 2, Halo: 0.0005, CellSize: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = NewCoordinator(w).TopK(context.Background(), core.Query{
		Keywords: []string{"shop"}, K: 3, Epsilon: 0.0012,
	})
	if err == nil {
		t.Fatal("expected error for ε > halo")
	}
	if !errorsIs(err, ErrEpsilonExceedsHalo) {
		t.Fatalf("error %v does not wrap ErrEpsilonExceedsHalo", err)
	}
}

func TestPartitionRejectsBadConfig(t *testing.T) {
	net, pois := tinyWorld(t, 1)
	for _, cfg := range []Config{
		{Tiles: 0, Halo: 0.001, CellSize: 0.0005},
		{Tiles: 2, Halo: -1, CellSize: 0.0005},
		{Tiles: 2, Halo: math.NaN(), CellSize: 0.0005},
		{Tiles: 2, Halo: 0.001, CellSize: 0},
	} {
		if _, err := Partition(net, pois, cfg); err == nil {
			t.Errorf("Partition(%+v) accepted invalid config", cfg)
		}
	}
	if _, err := Partition(mustEmptyNetwork(t), pois, Config{Tiles: 2, Halo: 0.001, CellSize: 0.0005}); err == nil {
		t.Error("Partition accepted an empty network")
	}
}

func mustEmptyNetwork(t *testing.T) *network.Network {
	t.Helper()
	n, err := network.NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// errorsIs avoids importing errors alongside the fmt-based helpers.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// crossTieWorld builds a synthetic dataset with two geometrically
// congruent streets placed far apart — guaranteed different tiles at
// every tested shard count — each carrying an identically-placed POI, so
// their interests are exactly equal (same mass, same length, same ε).
// Every coordinate is dyadic, so lengths and offsets are computed
// without rounding and the tie is bit-exact by construction.
func crossTieWorld(t *testing.T) (*network.Network, *poi.Corpus) {
	t.Helper()
	nb := network.NewBuilder()
	// Street 0 in the west tile, street 1 congruent in the east tile.
	nb.AddStreet("west twin", []geo.Point{geo.Pt(0.125, 0.25), geo.Pt(0.375, 0.25)})
	nb.AddStreet("east twin", []geo.Point{geo.Pt(1.625, 0.25), geo.Pt(1.875, 0.25)})
	// A third street with strictly more mass, to make k=2 interesting.
	nb.AddStreet("anchor", []geo.Point{geo.Pt(0.875, 0.0625), geo.Pt(1.125, 0.0625)})
	net, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	dict := vocab.NewDictionary()
	pb := poi.NewBuilder(dict)
	add := func(x, y float64) {
		pb.Add(geo.Pt(x, y), []string{"shop"})
	}
	add(0.25, 0.3125) // same offset along the west twin...
	add(1.75, 0.3125) // ...and along the east twin
	add(0.9375, 0.078125)
	add(1.0625, 0.078125) // anchor carries two POIs
	return net, pb.Build()
}

// TestCrossShardTies pins the tie-break contract: streets in different
// shards with bit-equal interest are ordered by global street id, and
// the loser of a k=1 tie is the same street the single index drops.
func TestCrossShardTies(t *testing.T) {
	net, pois := crossTieWorld(t)
	single, err := core.NewIndex(net, pois, core.IndexConfig{CellSize: 0.0625})
	if err != nil {
		t.Fatal(err)
	}
	for _, tiles := range []int{2, 4, 9} {
		w, err := Partition(net, pois, Config{Tiles: tiles, Halo: 0.125, CellSize: 0.0625})
		if err != nil {
			t.Fatal(err)
		}
		coord := NewCoordinator(w)
		for _, k := range []int{1, 2, 3} {
			q := core.Query{Keywords: []string{"shop"}, K: k, Epsilon: 0.125}
			want, _, err := single.SOI(q)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := coord.TopK(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if d := diffResults(got, want); d != "" {
				t.Errorf("tiles=%d k=%d: %s", tiles, k, d)
			}
		}
		// The twins tie exactly; order must be west (id 0) then east (id 1).
		got, _, err := coord.TopK(context.Background(), core.Query{Keywords: []string{"shop"}, K: 3, Epsilon: 0.125})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("tiles=%d: got %d results, want 3", tiles, len(got))
		}
		if got[1].Street != 0 || got[2].Street != 1 {
			t.Errorf("tiles=%d: tie order %d,%d, want streets 0,1", tiles, got[1].Street, got[2].Street)
		}
		if math.Float64bits(got[1].Interest) != math.Float64bits(got[2].Interest) {
			t.Errorf("tiles=%d: twins do not tie bit-exactly: %v vs %v", tiles, got[1].Interest, got[2].Interest)
		}
	}
}
