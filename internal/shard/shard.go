// Package shard partitions a world into spatial tiles and answers k-SOI
// queries over the partitions by scatter-gather, bit-identically to the
// single-index path.
//
// Partitioning assigns every street to exactly one tile by the center of
// its bounding box. POIs are replicated into every shard whose ε-halo —
// the union of the shard's street bounding boxes expanded by the
// configured halo radius — contains them, so a border street sees every
// point within distance ≤ Halo of any of its segments and computes the
// exact global mass. Each shard carries its own slab index built over
// the unpartitioned world's bounds, which pins all shards to the global
// cell lattice: identical cell ids, identical Cε(ℓ) traversal order, and
// therefore bit-identical IEEE-754 mass folds (see DESIGN.md §12 for the
// subsequence argument).
package shard

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/network"
	"repro/internal/poi"
)

// Config controls partitioning.
type Config struct {
	// Tiles is the requested number of spatial tiles (≥ 1). The tile
	// grid is SplitTiles(Tiles); tiles that receive no street produce
	// no shard, so the resulting world may hold fewer shards.
	Tiles int
	// Halo is the POI replication radius (≥ the largest query ε the
	// world must answer exactly). Queries with Epsilon > Halo are
	// rejected by the coordinator.
	Halo float64
	// CellSize is the grid cell size for every per-shard index.
	CellSize float64
	// Compact builds slab-backed per-shard indexes (required for
	// snapshot emission; the coordinator works either way).
	Compact bool
}

// Shard is one spatial partition: a self-contained network + POI subset
// with its own index, plus monotone local→global id maps.
type Shard struct {
	ID    int
	TileX int
	TileY int
	// Halo is the shard's POI admission rectangle: the union of its
	// street bounding boxes expanded by Config.Halo.
	Halo geo.Rect

	Net   *network.Network
	POIs  *poi.Corpus
	Index *core.Index

	// Streets[local] and Segments[local] give the global id of a local
	// street/segment. Both are strictly ascending: streets are re-added
	// in global id order and AddStreet numbers segments consecutively,
	// so local order mirrors global order and every tie-break on ids is
	// preserved across the mapping.
	Streets  []network.StreetID
	Segments []network.SegmentID
}

// World is a partitioned dataset ready for scatter-gather queries.
type World struct {
	Shards   []*Shard
	Bounds   geo.Rect
	TilesX   int
	TilesY   int
	Halo     float64
	CellSize float64

	// mappings holds snapshot mmaps backing shard indexes loaded from
	// disk; empty for worlds built in memory by Partition.
	mappings []io.Closer
}

// Close releases snapshot mappings backing a world loaded from disk. It
// must not be called while queries are in flight. Worlds built by
// Partition hold no mappings and Close is a no-op.
func (w *World) Close() error {
	var first error
	for _, m := range w.mappings {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	w.mappings = nil
	return first
}

// SplitTiles factors a requested tile count into a near-square grid:
// gx = ⌈√n⌉ columns and gy = ⌈n/gx⌉ rows (2 → 2×1, 4 → 2×2, 9 → 3×3).
func SplitTiles(n int) (gx, gy int) {
	if n < 1 {
		return 1, 1
	}
	gx = int(math.Ceil(math.Sqrt(float64(n))))
	gy = (n + gx - 1) / gx
	return gx, gy
}

// Partition splits a world into spatial shards. The street assignment,
// POI replication and shard numbering are pure functions of the inputs,
// so the same dataset always partitions identically.
func Partition(net *network.Network, pois *poi.Corpus, cfg Config) (*World, error) {
	if cfg.Tiles < 1 {
		return nil, fmt.Errorf("shard: tile count %d < 1", cfg.Tiles)
	}
	if cfg.Halo < 0 || math.IsNaN(cfg.Halo) {
		return nil, fmt.Errorf("shard: invalid halo %v", cfg.Halo)
	}
	if cfg.CellSize <= 0 {
		return nil, fmt.Errorf("shard: non-positive cell size %v", cfg.CellSize)
	}
	if net.NumStreets() == 0 {
		return nil, fmt.Errorf("shard: cannot partition an empty network")
	}
	bounds := net.Bounds()
	for _, p := range pois.All() {
		bounds = bounds.Union(geo.Rect{MinX: p.Loc.X, MinY: p.Loc.Y, MaxX: p.Loc.X, MaxY: p.Loc.Y})
	}
	if !bounds.IsValid() {
		return nil, fmt.Errorf("shard: cannot derive bounds from network and corpus")
	}

	gx, gy := SplitTiles(cfg.Tiles)
	tileW := bounds.Width() / float64(gx)
	tileH := bounds.Height() / float64(gy)

	// Assign every street to the tile containing its bbox center,
	// clamping degenerate extents onto the border tiles.
	tileOf := func(id network.StreetID) int {
		c := net.StreetBounds(id).Center()
		tx, ty := 0, 0
		if tileW > 0 {
			tx = int((c.X - bounds.MinX) / tileW)
		}
		if tileH > 0 {
			ty = int((c.Y - bounds.MinY) / tileH)
		}
		if tx < 0 {
			tx = 0
		} else if tx >= gx {
			tx = gx - 1
		}
		if ty < 0 {
			ty = 0
		} else if ty >= gy {
			ty = gy - 1
		}
		return ty*gx + tx
	}
	streetsByTile := make([][]network.StreetID, gx*gy)
	for id := 0; id < net.NumStreets(); id++ {
		t := tileOf(network.StreetID(id))
		streetsByTile[t] = append(streetsByTile[t], network.StreetID(id))
	}

	w := &World{
		Bounds:   bounds,
		TilesX:   gx,
		TilesY:   gy,
		Halo:     cfg.Halo,
		CellSize: cfg.CellSize,
	}
	for t, streets := range streetsByTile {
		if len(streets) == 0 {
			continue // empty tiles produce no shard, deterministically
		}
		s, err := buildShard(net, pois, cfg, bounds, streets)
		if err != nil {
			return nil, fmt.Errorf("shard: tile %d: %w", t, err)
		}
		s.ID = len(w.Shards)
		s.TileX = t % gx
		s.TileY = t / gx
		w.Shards = append(w.Shards, s)
	}
	return w, nil
}

// buildShard assembles one shard: its streets re-added in global id
// order, its POI subset taken in global id order from the halo
// rectangle, and its index pinned to the global bounds.
func buildShard(net *network.Network, pois *poi.Corpus, cfg Config, bounds geo.Rect, streets []network.StreetID) (*Shard, error) {
	halo := net.StreetBounds(streets[0]).Expand(cfg.Halo)
	for _, id := range streets[1:] {
		halo = halo.Union(net.StreetBounds(id).Expand(cfg.Halo))
	}

	nb := network.NewBuilder()
	var segMap []network.SegmentID
	for _, gid := range streets {
		st := net.Street(gid)
		poly := make([]geo.Point, 0, len(st.Segments)+1)
		poly = append(poly, net.Segment(st.Segments[0]).Geom.A)
		for _, sid := range st.Segments {
			poly = append(poly, net.Segment(sid).Geom.B)
		}
		nb.AddStreet(st.Name, poly)
		// AddStreet numbers the new street's segments consecutively in
		// polyline order, which is exactly st.Segments' global order.
		segMap = append(segMap, st.Segments...)
	}
	snet, err := nb.Build()
	if err != nil {
		return nil, err
	}

	pb := poi.NewBuilder(pois.Dict())
	for _, p := range pois.All() {
		if halo.Contains(p.Loc) {
			pb.AddSet(p.Loc, p.Keywords, p.Weight)
		}
	}
	spois := pb.Build()

	ix, err := core.NewIndex(snet, spois, core.IndexConfig{
		CellSize: cfg.CellSize,
		Compact:  cfg.Compact,
		Bounds:   bounds,
	})
	if err != nil {
		return nil, err
	}
	return &Shard{
		Halo:     halo,
		Net:      snet,
		POIs:     spois,
		Index:    ix,
		Streets:  append([]network.StreetID(nil), streets...),
		Segments: segMap,
	}, nil
}
